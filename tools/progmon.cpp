// progmon: run a workload against a single telemetry-enabled Database and
// watch it live (DESIGN.md §9, EXPERIMENTS.md "Telemetry runbook").
//
//   progmon --workload tpcc --batches 200 --batch-size 200 --refresh 25
//   progmon --workload catalog --export-prom metrics.prom --check-prom
//   progmon --workload micro --trace trace.json        # open in Perfetto
//   progmon --workload tpcc --trace-sample 8 --trace-batch 16
//   progmon --workload tpcc --trace-sample 8 --check-spans
//
// The dashboard differences successive registry snapshots, so the panel
// shows *windowed* rates and percentiles (since the previous refresh), not
// lifetime averages. --export-prom / --export-json dump the final
// cumulative snapshot; --trace records every batch's BatchTrace and writes
// a Chrome trace_event file loadable in https://ui.perfetto.dev.
//
// Causal tracing (DESIGN.md §11): --trace-sample N turns on the obs::tracing
// flight recorder and head-samples every Nth batch. --trace-batch SEQ prints
// the sampled batch's span tree (per-phase durations, attempt counts);
// --check-spans runs the span/flow-event validator over the recorded stream
// and exits 1 on any structural violation (the CI tracing job's teeth);
// --trace-perfetto FILE dumps the recorded spans as a second Perfetto file
// (real timestamps, flow arrows — complementary to --trace's modeled view).
//
// Pipelined apply (DESIGN.md §14): --cluster-depth N swaps the single
// Database for a 3-replica durable cluster (simulated fsync latency via
// --fsync-us) with apply-pipeline depth N, and the dashboard grows the
// pipeline panel: configured depth plus the windowed stall-cause breakdown
// (snapshot-boundary / fsync-watermark / queue-full). The --trace* options
// are single-node only.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "consensus/replicated_db.hpp"
#include "db/database.hpp"
#include "dur/fault_vfs.hpp"
#include "lang/bytecode/bytecode.hpp"
#include "lang/bytecode/pred_program.hpp"
#include "obs/dashboard.hpp"
#include "obs/export.hpp"
#include "obs/trace_export.hpp"
#include "obs/tracing/tracing.hpp"
#include "obs/tracing/validator.hpp"
#include "sched/trace.hpp"
#include "workloads/microbench.hpp"
#include "workloads/tpcc.hpp"

namespace {

using namespace prog;  // tool, not library code

struct Args {
  std::string workload = "tpcc";
  unsigned batches = 200;
  std::size_t batch_size = 200;
  unsigned workers = 4;
  unsigned refresh = 25;  ///< dashboard ticks every N batches; 0 = quiet
  int warehouses = 4;
  std::uint64_t seed = 42;
  std::string export_prom;
  std::string export_json;
  std::string trace_file;
  bool check_prom = false;
  unsigned trace_sample = 0;   ///< 0 = flight recorder off
  std::uint64_t trace_batch = 0;  ///< print this batch's span tree (0 = off)
  bool trace_batch_set = false;
  bool check_spans = false;
  std::string trace_perfetto;
  int cluster_depth = -1;       ///< >= 0: 3-replica cluster, pipeline depth N
  std::uint64_t fsync_us = 200; ///< simulated fsync latency (cluster mode)
  std::string dump_bytecode;    ///< print PROC's compiled programs and exit
};

int usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " [options]\n"
      << "  --workload tpcc|catalog|micro   workload mix (default tpcc)\n"
      << "  --batches N                     batches to run (default 200)\n"
      << "  --batch-size N                  transactions per batch (default "
         "200)\n"
      << "  --workers N                     engine worker threads (default 4)\n"
      << "  --refresh N                     dashboard refresh every N batches;"
         " 0 = quiet (default 25)\n"
      << "  --warehouses N                  TPC-C warehouses (default 4)\n"
      << "  --seed N                        workload RNG seed (default 42)\n"
      << "  --export-prom FILE              write Prometheus text exposition\n"
      << "  --export-json FILE              write JSON snapshot\n"
      << "  --trace FILE                    write Chrome trace_event JSON "
         "(Perfetto)\n"
      << "  --check-prom                    validate the exposition dump; "
         "exit 1 on failure\n"
      << "  --trace-sample N                flight-record every Nth batch "
         "(0 = off)\n"
      << "  --trace-batch SEQ               print the span tree of batch SEQ "
         "(implies --trace-sample 1 when unset)\n"
      << "  --check-spans                   validate the recorded span "
         "stream; exit 1 on failure\n"
      << "  --trace-perfetto FILE           write the recorded spans as "
         "Perfetto JSON (real timestamps + flow arrows)\n"
      << "  --cluster-depth N               run a 3-replica durable cluster "
         "with apply-pipeline depth N (0 = serial) and show the pipeline "
         "panel\n"
      << "  --fsync-us N                    simulated fsync latency in "
         "cluster mode (default 200)\n"
      << "  --dump-bytecode PROC            print PROC's compiled execution "
         "and prediction bytecode (from the selected --workload) and exit\n";
  return 2;
}

bool parse(int argc, char** argv, Args& a) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) return nullptr;
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string f = argv[i];
    const char* v = nullptr;
    if (f == "--workload" && (v = need(i))) {
      a.workload = v;
    } else if (f == "--batches" && (v = need(i))) {
      a.batches = static_cast<unsigned>(std::stoul(v));
    } else if (f == "--batch-size" && (v = need(i))) {
      a.batch_size = static_cast<std::size_t>(std::stoul(v));
    } else if (f == "--workers" && (v = need(i))) {
      a.workers = static_cast<unsigned>(std::stoul(v));
    } else if (f == "--refresh" && (v = need(i))) {
      a.refresh = static_cast<unsigned>(std::stoul(v));
    } else if (f == "--warehouses" && (v = need(i))) {
      a.warehouses = std::stoi(v);
    } else if (f == "--seed" && (v = need(i))) {
      a.seed = std::stoull(v);
    } else if (f == "--export-prom" && (v = need(i))) {
      a.export_prom = v;
    } else if (f == "--export-json" && (v = need(i))) {
      a.export_json = v;
    } else if (f == "--trace" && (v = need(i))) {
      a.trace_file = v;
    } else if (f == "--check-prom") {
      a.check_prom = true;
    } else if (f == "--trace-sample" && (v = need(i))) {
      a.trace_sample = static_cast<unsigned>(std::stoul(v));
    } else if (f == "--trace-batch" && (v = need(i))) {
      a.trace_batch = std::stoull(v);
      a.trace_batch_set = true;
    } else if (f == "--check-spans") {
      a.check_spans = true;
    } else if (f == "--trace-perfetto" && (v = need(i))) {
      a.trace_perfetto = v;
    } else if (f == "--cluster-depth" && (v = need(i))) {
      a.cluster_depth = std::stoi(v);
    } else if (f == "--fsync-us" && (v = need(i))) {
      a.fsync_us = std::stoull(v);
    } else if (f == "--dump-bytecode" && (v = need(i))) {
      a.dump_bytecode = v;
    } else {
      return false;
    }
  }
  // Any span consumer needs the recorder on; --trace-batch without an
  // explicit rate samples everything so the requested batch is present.
  if ((a.trace_batch_set || a.check_spans || !a.trace_perfetto.empty()) &&
      a.trace_sample == 0) {
    a.trace_sample = 1;
  }
  return a.workload == "tpcc" || a.workload == "catalog" ||
         a.workload == "micro";
}

bool write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "progmon: cannot write " << path << "\n";
    return false;
  }
  out << body;
  return static_cast<bool>(out);
}

/// Workload adapter: owns the Database and stamps batches.
struct Runner {
  db::Database db;
  std::unique_ptr<workloads::tpcc::Workload> tpcc;
  std::unique_ptr<workloads::micro::CatalogWorkload> catalog;
  std::unique_ptr<workloads::micro::Workload> micro;
  std::uint64_t batch_no = 0;

  explicit Runner(const Args& a) : db(make_config(a)) {
    if (a.workload == "tpcc") {
      tpcc = std::make_unique<workloads::tpcc::Workload>(
          db, workloads::tpcc::Scale::small(a.warehouses));
    } else if (a.workload == "catalog") {
      catalog = std::make_unique<workloads::micro::CatalogWorkload>(
          db, workloads::micro::CatalogOptions{});
    } else {
      workloads::micro::Options opts;
      opts.zipf_theta = 0.9;
      micro = std::make_unique<workloads::micro::Workload>(db, opts);
    }
    db.store().set_access_delay_ns(1000);  // see DESIGN.md "Substitutions"
  }

  static sched::EngineConfig make_config(const Args& a) {
    sched::EngineConfig cfg;
    cfg.workers = a.workers;
    cfg.telemetry = true;
    cfg.trace_sample_n = a.trace_sample;
    return cfg;
  }

  std::vector<sched::TxRequest> make_batch(std::size_t n, Rng& rng) {
    ++batch_no;
    if (tpcc) return tpcc->batch(n, rng);
    if (catalog) {
      // A reprice wave every 8th batch, like the catalog ablation bench.
      const std::size_t reprices = batch_no % 8 == 0 ? n / 64 + 1 : 0;
      return catalog->batch(n, reprices, rng);
    }
    return micro->batch(n, rng);
  }
};

/// Cluster mode (--cluster-depth): a 3-replica durable ReplicatedDb on a
/// FaultVfs with simulated fsync latency. The dashboard ingests the
/// cluster registry merged with the leader's engine registry, so the
/// engine rows and the replica/pipeline panels render together.
int run_cluster(const Args& args) {
  namespace wl = workloads;
  db::Database gen_db{sched::EngineConfig{}};
  std::unique_ptr<wl::tpcc::Workload> tpcc_gen;
  std::unique_ptr<wl::micro::CatalogWorkload> cat_gen;
  std::unique_ptr<wl::micro::Workload> micro_gen;
  consensus::ReplicatedDb::SetupFn setup;
  if (args.workload == "tpcc") {
    tpcc_gen = std::make_unique<wl::tpcc::Workload>(
        gen_db, wl::tpcc::Scale::tiny(args.warehouses));
    setup = [w = args.warehouses](db::Database& d) {
      wl::tpcc::Workload ld(d, wl::tpcc::Scale::tiny(w));
    };
  } else if (args.workload == "catalog") {
    cat_gen = std::make_unique<wl::micro::CatalogWorkload>(
        gen_db, wl::micro::CatalogOptions{});
    setup = [](db::Database& d) {
      wl::micro::CatalogWorkload ld(d, wl::micro::CatalogOptions{});
    };
  } else {
    wl::micro::Options opts;
    opts.zipf_theta = 0.9;
    micro_gen = std::make_unique<wl::micro::Workload>(gen_db, opts);
    setup = [opts](db::Database& d) { wl::micro::Workload ld(d, opts); };
  }

  dur::FaultVfs vfs(args.seed);
  vfs.set_sync_delay(args.fsync_us);
  consensus::RecoveryOptions rec;
  rec.checkpoint_interval = 16;
  rec.vfs = &vfs;
  rec.dur_dir = "dur";
  sched::EngineConfig cfg;
  cfg.workers = args.workers;
  cfg.telemetry = true;
  cfg.pipeline_depth = static_cast<unsigned>(args.cluster_depth);
  consensus::ReplicatedDb rdb(3, args.seed, setup, cfg, {}, rec);
  rdb.run_ms(1000);

  auto merged_snapshot = [&rdb] {
    std::vector<obs::MetricSnapshot> snap = rdb.telemetry().snapshot();
    const int leader = rdb.raft().leader();
    const obs::Registry* er =
        rdb.replica(leader < 0 ? 0 : static_cast<unsigned>(leader))
            .telemetry();
    if (er != nullptr) {
      const auto engine = er->snapshot();
      snap.insert(snap.end(), engine.begin(), engine.end());
    }
    return snap;
  };

  obs::Dashboard dash("progmon · " + args.workload + " · 3 replicas · depth " +
                      std::to_string(args.cluster_depth));
  Rng rng(args.seed);
  Stopwatch tick_sw;
  std::uint64_t batch_no = 0;
  for (unsigned b = 0; b < args.batches; ++b) {
    ++batch_no;
    std::vector<sched::TxRequest> batch;
    if (tpcc_gen) {
      batch = tpcc_gen->batch(args.batch_size, rng);
    } else if (cat_gen) {
      const std::size_t reprices =
          batch_no % 8 == 0 ? args.batch_size / 64 + 1 : 0;
      batch = cat_gen->batch(args.batch_size, reprices, rng);
    } else {
      batch = micro_gen->batch(args.batch_size, rng);
    }
    if (!rdb.submit_with_retry(std::move(batch))) {
      std::cerr << "progmon: cluster submit failed at batch " << b << "\n";
      return 1;
    }
    if (args.refresh != 0 && (b + 1) % args.refresh == 0) {
      const double elapsed_s =
          static_cast<double>(tick_sw.elapsed_micros()) / 1e6;
      tick_sw = Stopwatch();
      dash.tick(merged_snapshot(), elapsed_s);
      std::cout << dash.render() << std::flush;
    }
  }
  rdb.run_ms(2000);
  if (!rdb.converged()) {
    std::cerr << "progmon: cluster failed to converge\n";
    return 1;
  }
  std::cout << "progmon: " << args.batches << " batches, "
            << rdb.recovery_stats().submit_acked_durable
            << " durable acks, pipeline depth " << args.cluster_depth << "\n";

  int rc = 0;
  if (!args.export_prom.empty() || args.check_prom) {
    const std::string text = obs::to_prometheus(merged_snapshot());
    if (args.check_prom) {
      std::string err;
      if (!obs::validate_prometheus(text, &err)) {
        std::cerr << "progmon: exposition format INVALID: " << err << "\n";
        rc = 1;
      } else {
        std::cout << "progmon: exposition format OK ("
                  << merged_snapshot().size() << " series)\n";
      }
    }
    if (!args.export_prom.empty() && !write_file(args.export_prom, text)) {
      rc = 1;
    }
  }
  if (!args.export_json.empty() &&
      !write_file(args.export_json, obs::to_json(merged_snapshot()))) {
    rc = 1;
  }
  return rc;
}

/// --dump-bytecode PROC: print the compiled execution program and, when the
/// PSC tree lowered, the prediction program, then exit. Disassembly comes
/// straight from the registered (and therefore actually executed) programs,
/// not a recompilation.
int dump_bytecode(const Args& args) {
  Runner runner(args);
  sched::ProcId id;
  try {
    id = runner.db.find_procedure(args.dump_bytecode);
  } catch (const UsageError&) {
    std::cerr << "progmon: unknown procedure '" << args.dump_bytecode
              << "' in workload '" << args.workload << "'; registered:\n";
    for (sched::ProcId i = 0; i < runner.db.procedure_count(); ++i) {
      std::cerr << "  " << runner.db.procedure(i).name << "\n";
    }
    return 1;
  }
  const lang::Proc& proc = runner.db.procedure(id);
  PROG_CHECK(proc.code != nullptr);  // compiled at registration
  std::cout << bytecode::disassemble(*proc.code);
  const sym::TxProfile& profile = runner.db.profile(id);
  if (profile.pred_code() != nullptr) {
    std::cout << "\n" << bytecode::disassemble_prediction(*profile.pred_code());
  } else {
    std::cout << "\n(prediction: tree-walk fallback; the PSC tree did not "
                 "lower)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return usage(argv[0]);

  if (!args.dump_bytecode.empty()) return dump_bytecode(args);

  if (args.cluster_depth >= 0) {
    if (args.trace_sample > 0 || !args.trace_file.empty()) {
      std::cerr << "progmon: --trace* options are single-node only (drop "
                   "--cluster-depth)\n";
      return 2;
    }
    return run_cluster(args);
  }

  Runner runner(args);
  Rng rng(args.seed);
  if (args.trace_sample > 0) {
    // Enabled after the workload loaders ran, so the recorded stream holds
    // only the measured batches.
    obs::tracing::FlightRecorder::instance().enable();
  }
  obs::Dashboard dash("progmon · " + args.workload);
  obs::ChromeTraceWriter tracer(args.workers);
  sched::BatchTrace trace;

  const obs::Registry* reg = runner.db.telemetry();
  if (reg == nullptr) {
    std::cerr << "progmon: engine built without telemetry\n";
    return 1;
  }

  Stopwatch tick_sw;
  std::uint64_t committed = 0;
  for (unsigned b = 0; b < args.batches; ++b) {
    auto batch = runner.make_batch(args.batch_size, rng);
    sched::BatchResult r =
        args.trace_file.empty()
            ? runner.db.execute(std::move(batch))
            : runner.db.execute_traced(std::move(batch), &trace);
    committed += r.committed;
    if (!args.trace_file.empty()) tracer.add_batch(trace, r.batch);

    if (args.refresh != 0 && (b + 1) % args.refresh == 0) {
      const double elapsed_s =
          static_cast<double>(tick_sw.elapsed_micros()) / 1e6;
      tick_sw = Stopwatch();
      dash.tick(reg->snapshot(), elapsed_s);
      std::cout << dash.render() << std::flush;
    }
  }

  std::cout << "progmon: " << args.batches << " batches, " << committed
            << " transactions committed\n";

  int rc = 0;
  if (!args.export_prom.empty() || args.check_prom) {
    const std::string text = obs::to_prometheus(reg->snapshot());
    if (args.check_prom) {
      std::string err;
      if (!obs::validate_prometheus(text, &err)) {
        std::cerr << "progmon: exposition format INVALID: " << err << "\n";
        rc = 1;
      } else {
        std::cout << "progmon: exposition format OK ("
                  << reg->snapshot().size() << " series)\n";
      }
    }
    if (!args.export_prom.empty() && !write_file(args.export_prom, text)) {
      rc = 1;
    }
  }
  if (!args.export_json.empty() &&
      !write_file(args.export_json, obs::to_json(reg->snapshot()))) {
    rc = 1;
  }
  if (!args.trace_file.empty() &&
      !write_file(args.trace_file, tracer.json())) {
    rc = 1;
  }

  if (args.trace_sample > 0) {
    auto& rec = obs::tracing::FlightRecorder::instance();
    rec.disable();
    const std::vector<obs::tracing::SpanEvent> spans = rec.snapshot();
    std::cout << "progmon: flight recorder holds " << spans.size()
              << " spans (sample 1/" << args.trace_sample << ")\n";
    if (args.check_spans) {
      const obs::tracing::ValidateReport vr =
          obs::tracing::validate_spans(spans);
      if (!vr.ok()) {
        for (const std::string& e : vr.errors) {
          std::cerr << "progmon: span validator: " << e << "\n";
        }
        std::cerr << "progmon: span stream INVALID (" << vr.errors.size()
                  << " errors over " << vr.events << " events)\n";
        rc = 1;
      } else {
        std::cout << "progmon: span stream OK (" << vr.events << " events, "
                  << vr.batches << " batches, " << vr.flows << " flows)\n";
      }
    }
    if (args.trace_batch_set) {
      const std::string tree =
          obs::tracing::format_span_tree(spans, args.trace_batch);
      if (tree.empty()) {
        std::cerr << "progmon: batch " << args.trace_batch
                  << " has no recorded spans (is it a sampled batch? "
                     "sample rate is 1/"
                  << args.trace_sample << ")\n";
        rc = 1;
      } else {
        std::cout << tree;
      }
    }
    if (!args.trace_perfetto.empty() &&
        !write_file(args.trace_perfetto,
                    obs::tracing::to_perfetto_json(spans))) {
      rc = 1;
    }
  }
  return rc;
}
