#!/usr/bin/env python3
"""Soft perf gate for checked-in bench baselines.

Compares a freshly produced bench JSON against the checked-in baseline and
gates on per-case regression of the bench's declared gate metric. Any bench
binary that emits the shape below can be gated — bench_hotpath and
bench_durability both do:

  {
    "bench": "<name>",                    # must match between the two files
    "gate": {"field": "<case field>",     # which per-case number to compare
             "direction": "lower"},       # "lower" or "higher" is better
    "cases": {"<case>": {"<field>": 123.4, ...}, ...}
  }

When the doc carries no "gate" object the legacy bench_hotpath convention is
assumed: field "speedup", higher is better. Ratio metrics (old speedup) are
host-portable; absolute metrics (cpu_us_per_batch, records/s) are not — CI
passes looser --warn/--fail for those, and the tight thresholds are reserved
for quiet reference hosts (see EXPERIMENTS.md).

Policy (per case):
  - regression >= --fail (default 25%) relative to baseline     -> exit 1
  - regression >= --warn (default 10%)                          -> warn only
  - case present in baseline but missing from the run           -> exit 1
  - new case not in the baseline                                -> note only

When the baseline file itself does not exist (a fresh branch, a renamed
bench, a CI cache miss) the gate warns and passes: there is nothing to
regress against, and failing would just train people to delete the gate.
A baseline that exists but cannot be parsed is still a hard error — that
is corruption, not absence.

Usage:
  tools/perf_gate.py --baseline BENCH_hotpath.json --run /tmp/run.json
  tools/perf_gate.py --baseline BENCH_durability.json --run run.json \
      --warn 0.25 --fail 0.60
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_gate: cannot read {path}: {e}")
    if not isinstance(doc.get("bench"), str) or "cases" not in doc:
        sys.exit(f"perf_gate: {path} is not a bench result "
                 "(missing \"bench\"/\"cases\")")
    return doc


def gate_spec(doc: dict, path: str) -> tuple[str, bool]:
    """Returns (field, lower_is_better) from the doc's gate object."""
    gate = doc.get("gate")
    if gate is None:
        return "speedup", False  # legacy bench_hotpath convention
    field = gate.get("field")
    direction = gate.get("direction")
    if not isinstance(field, str) or direction not in ("lower", "higher"):
        sys.exit(f"perf_gate: {path} carries a malformed \"gate\" object "
                 "(want {\"field\": str, \"direction\": \"lower\"|\"higher\"})")
    return field, direction == "lower"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="checked-in baseline JSON (e.g. BENCH_hotpath.json)")
    ap.add_argument("--run", required=True,
                    help="freshly produced bench JSON")
    ap.add_argument("--warn", type=float, default=0.10,
                    help="warn at this fractional regression (default 0.10)")
    ap.add_argument("--fail", type=float, default=0.25,
                    help="fail at this fractional regression (default 0.25)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"perf_gate: WARN no baseline at {args.baseline} — nothing to "
              "compare against, passing. Commit a baseline (full-mode run on "
              "a quiet host, see EXPERIMENTS.md) to arm the gate.")
        return 0

    base = load(args.baseline)
    run = load(args.run)
    if base["bench"] != run["bench"]:
        sys.exit(f"perf_gate: bench mismatch: baseline is "
                 f"\"{base['bench']}\", run is \"{run['bench']}\"")
    field, lower_better = gate_spec(base, args.baseline)
    run_field, run_lower = gate_spec(run, args.run)
    if (field, lower_better) != (run_field, run_lower):
        sys.exit("perf_gate: gate spec mismatch between baseline and run "
                 f"({field}/{lower_better} vs {run_field}/{run_lower}) — "
                 "refresh the baseline after changing a bench's gate")
    base_cases = base["cases"]
    run_cases = run["cases"]

    failed = False
    for name, b in sorted(base_cases.items()):
        r = run_cases.get(name)
        if r is None:
            print(f"FAIL  {name}: present in baseline but missing from run")
            failed = True
            continue
        if field not in b or field not in r:
            print(f"FAIL  {name}: gate field \"{field}\" missing")
            failed = True
            continue
        bv, rv = float(b[field]), float(r[field])
        if bv <= 0:
            print(f"FAIL  {name}: baseline {field} {bv} is not positive")
            failed = True
            continue
        # Regression is always "how much worse than baseline", as a fraction
        # of baseline, regardless of which direction is better.
        drop = (rv - bv) / bv if lower_better else (bv - rv) / bv
        tag = "ok   "
        if drop >= args.fail:
            tag, failed = "FAIL ", True
        elif drop >= args.warn:
            tag = "WARN "
        print(f"{tag} {name}: {field} baseline {bv:.3f} -> run {rv:.3f} "
              f"({'-' if drop >= 0 else '+'}{abs(drop) * 100:.1f}%)")

    for name in sorted(set(run_cases) - set(base_cases)):
        val = run_cases[name].get(field)
        print(f"note  {name}: new case, no baseline entry "
              f"(run {field} {float(val):.3f})" if val is not None else
              f"note  {name}: new case, no baseline entry")

    if failed:
        print(f"perf_gate: FAIL ({field} regression >= "
              f"{args.fail * 100:.0f}% vs baseline; refresh the baseline "
              "only with a full-mode run on a quiet host — see "
              "EXPERIMENTS.md)")
        return 1
    print("perf_gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
