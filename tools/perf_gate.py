#!/usr/bin/env python3
"""Soft perf gate for bench_hotpath (ISSUE 4 satellite).

Compares a fresh BENCH_hotpath.json against the checked-in baseline and
gates on the *speedup ratio* (legacy us / new us), not on absolute times:
CI runners differ wildly in clock speed, but the legacy and new arms run
in the same process on the same host, so the ratio is the portable signal.

Policy (per case):
  - speedup drop >= --fail (default 25%) relative to baseline  -> exit 1
  - speedup drop >= --warn (default 10%)                       -> warn only
  - case present in baseline but missing from the run          -> exit 1
  - new case not in the baseline                               -> note only

When the baseline file itself does not exist (a fresh branch, a renamed
bench, a CI cache miss) the gate warns and passes: there is nothing to
regress against, and failing would just train people to delete the gate.
A baseline that exists but cannot be parsed is still a hard error — that
is corruption, not absence.

Usage:
  tools/perf_gate.py --baseline BENCH_hotpath.json --run /tmp/run.json
  tools/perf_gate.py --baseline BENCH_hotpath.json --run run.json \
      --warn 0.10 --fail 0.25
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"perf_gate: cannot read {path}: {e}")
    if doc.get("bench") != "hotpath" or "cases" not in doc:
        sys.exit(f"perf_gate: {path} is not a bench_hotpath result")
    return doc


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_hotpath.json")
    ap.add_argument("--run", required=True,
                    help="freshly produced BENCH_hotpath.json")
    ap.add_argument("--warn", type=float, default=0.10,
                    help="warn at this fractional speedup drop (default 0.10)")
    ap.add_argument("--fail", type=float, default=0.25,
                    help="fail at this fractional speedup drop (default 0.25)")
    args = ap.parse_args()

    if not os.path.exists(args.baseline):
        print(f"perf_gate: WARN no baseline at {args.baseline} — nothing to "
              "compare against, passing. Commit a baseline (full-mode run on "
              "a quiet host, see EXPERIMENTS.md) to arm the gate.")
        return 0

    base = load(args.baseline)
    run = load(args.run)
    base_cases = base["cases"]
    run_cases = run["cases"]

    failed = False
    for name, b in sorted(base_cases.items()):
        r = run_cases.get(name)
        if r is None:
            print(f"FAIL  {name}: present in baseline but missing from run")
            failed = True
            continue
        bs, rs = float(b["speedup"]), float(r["speedup"])
        if bs <= 0:
            print(f"FAIL  {name}: baseline speedup {bs} is not positive")
            failed = True
            continue
        drop = (bs - rs) / bs
        tag = "ok   "
        if drop >= args.fail:
            tag, failed = "FAIL ", True
        elif drop >= args.warn:
            tag = "WARN "
        print(f"{tag} {name}: baseline {bs:.3f}x -> run {rs:.3f}x "
              f"({'-' if drop >= 0 else '+'}{abs(drop) * 100:.1f}%)")

    for name in sorted(set(run_cases) - set(base_cases)):
        print(f"note  {name}: new case, no baseline entry "
              f"(run speedup {float(run_cases[name]['speedup']):.3f}x)")

    if failed:
        print(f"perf_gate: FAIL (speedup regression >= {args.fail * 100:.0f}% "
              "vs baseline; refresh the baseline only with a full-mode run "
              "on a quiet host — see EXPERIMENTS.md)")
        return 1
    print("perf_gate: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
