// txlint — static transaction-analysis driver.
//
// Runs all three txlint passes over every built-in workload's stored
// procedures:
//   1. dataflow classification (ROT/IT/DT + table footprints), differentially
//      cross-checked against a fresh symbolic-execution profile;
//   2. determinism/SE-friendliness lint (structured diagnostics);
//   3. per-workload static conflict matrix.
//
// Exit status: 0 when every procedure is clean; 1 when any error-severity
// diagnostic or cross-check failure is found (warnings alone do not fail).
//
// Usage:
//   txlint [--workload tpcc|rubis|micro] [--matrix-only] [--serialize]
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/conflict_matrix.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "sym/symexec.hpp"
#include "workloads/microbench.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace {

using prog::analysis::ConflictMatrix;
using prog::analysis::Diagnostic;
using prog::analysis::Severity;
using prog::analysis::StaticSummary;
using prog::analysis::TableFootprint;

struct Report {
  int procs = 0;
  int warnings = 0;
  int errors = 0;
};

/// Runs all passes over one workload's procedure set.
void run_workload(const std::string& name, std::vector<prog::lang::Proc> procs,
                  bool matrix_only, bool serialize, Report& rep) {
  std::cout << "== workload " << name << " ==\n";
  ConflictMatrix matrix;
  for (const prog::lang::Proc& p : procs) {
    ++rep.procs;
    // Pass 1: classification + differential oracle against the SE profile.
    const std::unique_ptr<prog::sym::TxProfile> profile =
        prog::sym::Profiler::profile(p, {});
    StaticSummary summary;
    try {
      summary = prog::analysis::classify_checked(p, *profile);
    } catch (const prog::InvariantError& e) {
      std::cout << p.name << ": CROSS-CHECK FAILURE: " << e.what() << '\n';
      ++rep.errors;
      summary = prog::analysis::classify(p);
    }
    matrix.add(p.name,
               TableFootprint{summary.tables_touched, summary.tables_written});
    if (!matrix_only) {
      std::cout << p.name << ": class=" << prog::sym::to_string(summary.klass)
                << " (SE agrees: "
                << (summary.klass == profile->klass() ? "yes" : "NO") << ")"
                << " pivots=" << summary.pivot_handles.size() << '\n';
      // Pass 2: determinism lint.
      const std::vector<Diagnostic> diags = prog::analysis::lint(p);
      std::cout << prog::analysis::render(p, diags);
      for (const Diagnostic& d : diags) {
        if (d.severity == Severity::kError) {
          ++rep.errors;
        } else if (d.severity == Severity::kWarning) {
          ++rep.warnings;
        }
      }
    }
  }
  // Pass 3: the conflict matrix.
  std::cout << matrix.to_string();
  if (serialize) std::cout << matrix.serialize();
  std::cout << '\n';
}

std::vector<prog::lang::Proc> tpcc_procs() {
  const auto sc = prog::workloads::tpcc::Scale::tiny(1);
  std::vector<prog::lang::Proc> v;
  v.push_back(prog::workloads::tpcc::build_new_order(sc));
  v.push_back(prog::workloads::tpcc::build_payment(sc));
  v.push_back(prog::workloads::tpcc::build_delivery(sc));
  v.push_back(prog::workloads::tpcc::build_order_status(sc));
  v.push_back(prog::workloads::tpcc::build_stock_level(sc));
  return v;
}

std::vector<prog::lang::Proc> rubis_procs() {
  const auto sc = prog::workloads::rubis::Scale::small();
  std::vector<prog::lang::Proc> v;
  v.push_back(prog::workloads::rubis::build_store_bid(sc));
  v.push_back(prog::workloads::rubis::build_store_buy_now(sc));
  v.push_back(prog::workloads::rubis::build_store_comment(sc));
  v.push_back(prog::workloads::rubis::build_register_user(sc));
  v.push_back(prog::workloads::rubis::build_register_item(sc));
  return v;
}

std::vector<prog::lang::Proc> micro_procs() {
  const prog::workloads::micro::Options o;
  const prog::workloads::micro::CatalogOptions c;
  std::vector<prog::lang::Proc> v;
  v.push_back(prog::workloads::micro::build_rmw(o));
  v.push_back(prog::workloads::micro::build_scan(o));
  v.push_back(prog::workloads::micro::build_order(c));
  v.push_back(prog::workloads::micro::build_reprice(c));
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  bool matrix_only = false;
  bool serialize = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--workload" && i + 1 < argc) {
      only = argv[++i];
    } else if (arg == "--matrix-only") {
      matrix_only = true;
    } else if (arg == "--serialize") {
      serialize = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: txlint [--workload tpcc|rubis|micro] "
                   "[--matrix-only] [--serialize]\n";
      return 0;
    } else {
      std::cerr << "txlint: unknown argument '" << arg << "'\n";
      return 2;
    }
  }

  Report rep;
  try {
    if (only.empty() || only == "tpcc") {
      run_workload("tpcc", tpcc_procs(), matrix_only, serialize, rep);
    }
    if (only.empty() || only == "rubis") {
      run_workload("rubis", rubis_procs(), matrix_only, serialize, rep);
    }
    if (only.empty() || only == "micro") {
      run_workload("micro", micro_procs(), matrix_only, serialize, rep);
    }
  } catch (const std::exception& e) {
    std::cerr << "txlint: fatal: " << e.what() << '\n';
    return 2;
  }
  if (rep.procs == 0) {
    std::cerr << "txlint: unknown workload '" << only << "'\n";
    return 2;
  }
  std::cout << "txlint: " << rep.procs << " procedure(s), " << rep.errors
            << " error(s), " << rep.warnings << " warning(s)\n";
  return rep.errors > 0 ? 1 : 0;
}
