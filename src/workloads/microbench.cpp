#include "workloads/microbench.hpp"

#include <cmath>

#include "common/check.hpp"
#include "lang/builder.hpp"

namespace prog::workloads::micro {

Zipf::Zipf(std::int64_t n, double theta) : n_(n), theta_(theta) {
  PROG_CHECK(n > 0);
  if (theta_ <= 0.0) {
    alpha_ = zetan_ = eta_ = 0.0;
    return;
  }
  double zetan = 0.0;
  // Exact zeta for small n, sampled approximation for large n (the sampler
  // only needs a few digits of precision).
  const std::int64_t exact = std::min<std::int64_t>(n_, 10000);
  for (std::int64_t i = 1; i <= exact; ++i) {
    zetan += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  if (n_ > exact) {
    // Integral tail approximation.
    zetan += (std::pow(static_cast<double>(n_), 1.0 - theta_) -
              std::pow(static_cast<double>(exact), 1.0 - theta_)) /
             (1.0 - theta_);
  }
  zetan_ = zetan;
  alpha_ = 1.0 / (1.0 - theta_);
  double zeta2 = 0.0;
  for (int i = 1; i <= 2; ++i) {
    zeta2 += 1.0 / std::pow(static_cast<double>(i), theta_);
  }
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::int64_t Zipf::next(Rng& rng) const {
  if (theta_ <= 0.0) {
    return rng.uniform(0, n_ - 1);
  }
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto v = static_cast<std::int64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return std::clamp<std::int64_t>(v, 0, n_ - 1);
}

lang::Proc build_rmw(const Options& opts) {
  lang::ProcBuilder b("micro_rmw");
  auto keys = b.param_array("keys", static_cast<std::uint32_t>(opts.ops_per_tx),
                            0, opts.keys - 1);
  for (int i = 0; i < opts.ops_per_tx; ++i) {
    auto h = b.get(kTable, keys[i]);
    b.put(kTable, keys[i], {{kValue, h.field(kValue) + 1}});
  }
  return std::move(b).build();
}

lang::Proc build_scan(const Options& opts) {
  lang::ProcBuilder b("micro_scan");
  auto keys = b.param_array("keys", static_cast<std::uint32_t>(opts.ops_per_tx),
                            0, opts.keys - 1);
  auto acc = b.let("acc", b.lit(0));
  for (int i = 0; i < opts.ops_per_tx; ++i) {
    auto h = b.get(kTable, keys[i]);
    b.assign(acc, acc + h.field(kValue));
  }
  b.emit(acc);
  return std::move(b).build();
}

Workload::Workload(db::Database& db, Options opts)
    : opts_(opts), db_(&db), zipf_(opts.keys, opts.zipf_theta) {
  PROG_CHECK(opts.ops_per_tx >= 1 && opts.ops_per_tx <= 16);
  rmw_ = db.register_procedure(build_rmw(opts));
  scan_ = db.register_procedure(build_scan(opts));
  for (std::int64_t k = 0; k < opts.keys; ++k) {
    db.store().put({kTable, static_cast<Key>(k)}, store::Row{{kValue, 0}}, 0);
  }
  db.finalize();
}

sched::TxRequest Workload::next(Rng& rng) const {
  sched::TxRequest r;
  r.proc = rng.percent(opts_.read_only_pct) ? scan_ : rmw_;
  std::vector<Value> keys;
  keys.reserve(static_cast<std::size_t>(opts_.ops_per_tx));
  for (int i = 0; i < opts_.ops_per_tx; ++i) {
    keys.push_back(zipf_.next(rng));
  }
  r.input.add_array(std::move(keys));
  return r;
}

std::vector<sched::TxRequest> Workload::batch(std::size_t n, Rng& rng) const {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next(rng));
  return out;
}

std::int64_t total_value(const store::VersionedStore& store,
                         const Options& opts) {
  std::int64_t total = 0;
  for (std::int64_t k = 0; k < opts.keys; ++k) {
    const store::RowPtr row = store.get({kTable, static_cast<Key>(k)});
    if (row != nullptr) total += row->get_or(kValue);
  }
  return total;
}

lang::Proc build_order(const CatalogOptions& opts) {
  lang::ProcBuilder b("micro_order");
  lang::Val acct;
  lang::ArrParam accts;
  if (opts.settle_accounts > 1) {
    accts = b.param_array("accts",
                          static_cast<std::uint32_t>(opts.settle_accounts), 0,
                          opts.accounts - 1);
  } else {
    acct = b.param("acct", 0, opts.accounts - 1);
  }
  auto items = b.param_array(
      "items", static_cast<std::uint32_t>(opts.reads_per_tx), 0,
      opts.catalog_keys - 1);
  lang::Val oid;
  if (opts.order_log_keys > 0) {
    oid = b.param("oid", 0, opts.order_log_keys - 1);
  }
  auto total = b.let("total", b.lit(0));
  for (int i = 0; i < opts.reads_per_tx; ++i) {
    auto h = b.get(kCatalog, items[i]);
    b.assign(total, total + h.field(kPrice));
    if (opts.order_log_keys > 0) {
      // One order-line row per priced item: line key is a pure function of
      // the order id, so the transaction stays independent (IT).
      b.put(kOrderLog, oid * static_cast<Value>(opts.reads_per_tx) + i,
            {{kItem, items[i]}});
    }
  }
  if (opts.settle_accounts > 1) {
    for (int j = 0; j < opts.settle_accounts; ++j) {
      auto a = b.get(kAccount, accts[j]);
      b.put(kAccount, accts[j], {{kSpent, a.field(kSpent) + total}});
    }
  } else {
    auto a = b.get(kAccount, acct);
    b.put(kAccount, acct, {{kSpent, a.field(kSpent) + total}});
  }
  return std::move(b).build();
}

lang::Proc build_reprice(const CatalogOptions& opts) {
  lang::ProcBuilder b("micro_reprice");
  auto item = b.param("item", 0, opts.catalog_keys - 1);
  auto delta = b.param("delta", -100, 100);
  auto h = b.get(kCatalog, item);
  b.put(kCatalog, item, {{kPrice, h.field(kPrice) + delta}});
  return std::move(b).build();
}

void load_catalog(store::VersionedStore& store, const CatalogOptions& opts) {
  for (std::int64_t k = 0; k < opts.catalog_keys; ++k) {
    store.put({kCatalog, static_cast<Key>(k)},
              store::Row{{kPrice, (k % 90) + 10}}, 0);
  }
  for (std::int64_t k = 0; k < opts.accounts; ++k) {
    store.put({kAccount, static_cast<Key>(k)}, store::Row{{kSpent, 0}}, 0);
  }
}

CatalogWorkload::CatalogWorkload(db::Database& db, CatalogOptions opts)
    : opts_(opts), db_(&db), zipf_(opts.catalog_keys, opts.zipf_theta) {
  PROG_CHECK(opts.reads_per_tx >= 1 && opts.reads_per_tx <= 16);
  order_ = db.register_procedure(build_order(opts));
  reprice_ = db.register_procedure(build_reprice(opts));
  load_catalog(db.store(), opts);
  db.finalize();
}

CatalogWorkload::CatalogWorkload(db::Database& db, CatalogOptions opts,
                                 AttachOnly)
    : opts_(opts), db_(&db), zipf_(opts.catalog_keys, opts.zipf_theta) {
  order_ = db.find_procedure("micro_order");
  reprice_ = db.find_procedure("micro_reprice");
  if (!db.finalized()) db.finalize();
}

sched::TxRequest CatalogWorkload::next_order(Rng& rng) const {
  sched::TxRequest r;
  r.proc = order_;
  if (opts_.settle_accounts > 1) {
    std::vector<Value> accts;
    accts.reserve(static_cast<std::size_t>(opts_.settle_accounts));
    for (int j = 0; j < opts_.settle_accounts; ++j) {
      accts.push_back(rng.uniform(0, opts_.accounts - 1));
    }
    r.input.add_array(std::move(accts));
  } else {
    r.input.add(rng.uniform(0, opts_.accounts - 1));
  }
  std::vector<Value> items;
  items.reserve(static_cast<std::size_t>(opts_.reads_per_tx));
  for (int i = 0; i < opts_.reads_per_tx; ++i) {
    items.push_back(zipf_.next(rng));
  }
  r.input.add_array(std::move(items));
  if (opts_.order_log_keys > 0) {
    r.input.add(rng.uniform(0, opts_.order_log_keys - 1));
  }
  return r;
}

sched::TxRequest CatalogWorkload::next_reprice(Rng& rng) const {
  sched::TxRequest r;
  r.proc = reprice_;
  r.input.add(rng.uniform(0, opts_.catalog_keys - 1));
  r.input.add(rng.uniform(-100, 100));
  return r;
}

std::vector<sched::TxRequest> CatalogWorkload::batch(
    std::size_t n, std::size_t reprice_count, Rng& rng) const {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic placement: reprices spread evenly through the batch.
    const bool rep =
        reprice_count > 0 && n > 0 && i % (n / reprice_count + 1) == 0 &&
        i / (n / reprice_count + 1) < reprice_count;
    out.push_back(rep ? next_reprice(rng) : next_order(rng));
  }
  return out;
}

std::int64_t total_spent(const store::VersionedStore& store,
                         const CatalogOptions& opts) {
  std::int64_t total = 0;
  for (std::int64_t k = 0; k < opts.accounts; ++k) {
    const store::RowPtr row = store.get({kAccount, static_cast<Key>(k)});
    if (row != nullptr) total += row->get_or(kSpent);
  }
  return total;
}

}  // namespace prog::workloads::micro
