// TPC-C for the key/value data model (paper, Section IV).
//
// All five transactions are expressed in the DSL:
//   new_order   — DT  (order ids come from the district's next_o_id pivot)
//   payment     — IT  (all keys derive from inputs; the history id is
//                      client-generated, as in the paper where payment is IT)
//   delivery    — DT  (per-district pending-order pointers are pivots;
//                      2^10 path-sets, matching the paper's 1024 key-sets)
//   order_status— ROT
//   stock_level — ROT
//
// Key packing keeps every key a linear function of inputs/pivots:
//   district   = w * 10 + d
//   customer   = district * C + c
//   stock      = w * I + i
//   order      = district * kMaxOrders + o
//   order line = order * (kMaxLines + 1) + line
//
// Deviations from the full spec (documented in DESIGN.md): customer lookup
// is by id (no last-name index), and the data volume is scaled by `Scale`
// so benchmarks fit in memory; contention structure (per-district and
// per-key conflicts) is preserved.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "sched/engine.hpp"

namespace prog::workloads::tpcc {

// --- schema -----------------------------------------------------------------

enum Table : TableId {
  kWarehouse = 1,  // static info (tax)
  kDistrict = 2,   // static info (tax) + next_o_id sequence
  kCustomer = 3,   // static info (discount)
  kItem = 4,
  kStock = 5,
  kOrder = 6,
  kOrderLine = 7,
  kNewOrder = 8,   // pending-delivery markers
  kDelivPtr = 9,   // per-district last-delivered order id
  kHistory = 10,
  // Write-hot column groups live under their own keys, as in any serious KV
  // port of TPC-C: payment's YTD/balance updates must not invalidate
  // new_order's next_o_id pivot (row-hash validation is per key).
  kWarehouseYtd = 11,
  kDistrictYtd = 12,
  kCustomerBal = 13,
};

// Field ids (per table; values are int64).
enum Field : FieldId {
  // warehouse / district
  kYtd = 0,
  kTax = 1,
  kNextOid = 2,
  // customer
  kBalance = 0,
  kDiscount = 1,
  kPaymentCnt = 2,
  kDeliveryCnt = 3,
  // item / stock
  kPrice = 0,
  kQuantity = 1,
  kStockYtd = 2,
  kOrderCnt = 3,
  // order
  kOCid = 0,
  kOlCnt = 1,
  kAmount = 2,
  kCarrier = 3,
  // order line
  kOlItem = 0,
  kOlSupplyW = 1,
  kOlQuantity = 2,
  kOlAmount = 3,
  // history / new-order marker
  kHAmount = 0,
  kPresent = 0,
};

constexpr int kDistrictsPerWarehouse = 10;
constexpr std::int64_t kMaxOrders = 1 << 22;  // order-id space per district
constexpr int kMaxLines = 15;
constexpr int kMinLines = 5;

/// Data volume knobs. `spec()` follows spec proportions; `small()` is the
/// memory-friendly default used by benches and tests. The item count must
/// stay large relative to per-batch line items: the lock table takes
/// exclusive per-key locks on ITEM reads, so an artificially tiny catalog
/// would create chains real TPC-C does not have. `tiny()` is for unit tests
/// only.
struct Scale {
  int warehouses = 1;
  int customers_per_district = 60;
  int items = 10000;
  int preloaded_orders = 40;  // per district; last 10 are undelivered

  static Scale tiny(int warehouses) { return Scale{warehouses, 30, 500, 40}; }
  static Scale small(int warehouses) {
    return Scale{warehouses, 60, 10000, 40};
  }
  static Scale spec(int warehouses) {
    return Scale{warehouses, 3000, 100000, 3000};
  }
};

// --- key packing --------------------------------------------------------------

constexpr std::int64_t district_key(std::int64_t w, std::int64_t d) {
  return w * kDistrictsPerWarehouse + d;
}
constexpr std::int64_t customer_key(const Scale& sc, std::int64_t w,
                                    std::int64_t d, std::int64_t c) {
  return district_key(w, d) * sc.customers_per_district + c;
}
constexpr std::int64_t stock_key(const Scale& sc, std::int64_t w,
                                 std::int64_t i) {
  return w * sc.items + i;
}
constexpr std::int64_t order_key(std::int64_t dkey, std::int64_t o) {
  return dkey * kMaxOrders + o;
}
constexpr std::int64_t order_line_key(std::int64_t okey, std::int64_t line) {
  return okey * (kMaxLines + 1) + line;
}

// --- workload -----------------------------------------------------------------

/// Registers the five TPC-C procedures on `db`, loads the initial state
/// (batch 0), and generates the standard transaction mix.
class Workload {
 public:
  /// Registers procedures and loads data. `db` must not be finalized yet;
  /// this calls db.finalize().
  Workload(db::Database& db, Scale scale);

  /// Attach-only: the five procedures are already registered on `db` (e.g.
  /// shared pre-analyzed profiles) and the data is already loaded (e.g.
  /// cloned from a template store). Finalizes `db` if needed.
  struct AttachOnly {};
  Workload(db::Database& db, Scale scale, AttachOnly);

  /// One transaction drawn from the standard mix
  /// (45% new_order, 43% payment, 4% delivery, 4% stock_level, 4% order_status).
  sched::TxRequest next(Rng& rng) const;

  /// A batch of `n` transactions from the mix.
  std::vector<sched::TxRequest> batch(std::size_t n, Rng& rng) const;

  const Scale& scale() const noexcept { return scale_; }
  sched::ProcId new_order() const noexcept { return new_order_; }
  sched::ProcId payment() const noexcept { return payment_; }
  sched::ProcId delivery() const noexcept { return delivery_; }
  sched::ProcId order_status() const noexcept { return order_status_; }
  sched::ProcId stock_level() const noexcept { return stock_level_; }

 private:
  sched::TxRequest make_new_order(Rng& rng) const;
  sched::TxRequest make_payment(Rng& rng) const;
  sched::TxRequest make_delivery(Rng& rng) const;
  sched::TxRequest make_order_status(Rng& rng) const;
  sched::TxRequest make_stock_level(Rng& rng) const;

  Scale scale_;
  db::Database* db_;
  /// Client-generated unique history ids (deterministic per workload).
  mutable std::atomic<std::int64_t> next_history_id_{1};
  sched::ProcId new_order_ = 0;
  sched::ProcId payment_ = 0;
  sched::ProcId delivery_ = 0;
  sched::ProcId order_status_ = 0;
  sched::ProcId stock_level_ = 0;
};

/// Builds the five procedures (exposed separately so the SE analysis bench
/// can profile them with custom options, e.g. pinned loop bounds).
lang::Proc build_new_order(const Scale& sc, int min_lines = kMinLines,
                           int max_lines = kMaxLines);
lang::Proc build_payment(const Scale& sc);
lang::Proc build_delivery(const Scale& sc);
lang::Proc build_order_status(const Scale& sc);
lang::Proc build_stock_level(const Scale& sc);

/// Populates `store` (as batch 0) with the initial TPC-C state.
void load(store::VersionedStore& store, const Scale& sc);

/// Consistency checks after a run (TPC-C §3.3-style invariants, adapted to
/// the KV schema). Returns human-readable violations; empty == consistent.
std::vector<std::string> check_invariants(const store::VersionedStore& store,
                                          const Scale& sc);

}  // namespace prog::workloads::tpcc
