#include "workloads/tpcc.hpp"

#include <atomic>

#include "common/check.hpp"
#include "lang/builder.hpp"

namespace prog::workloads::tpcc {

using lang::ProcBuilder;
using lang::Val;

// --- procedures ---------------------------------------------------------------

lang::Proc build_new_order(const Scale& sc, int min_lines, int max_lines) {
  ProcBuilder b("new_order");
  auto w = b.param("w_id", 0, sc.warehouses - 1);
  auto d = b.param("d_id", 0, kDistrictsPerWarehouse - 1);
  auto c = b.param("c_id", 0, sc.customers_per_district - 1);
  auto ol_cnt = b.param("ol_cnt", min_lines, max_lines);
  // Item id sc.items marks the 1% "invalid item" rollback of the spec.
  auto items = b.param_array("item_ids", kMaxLines, 0, sc.items);
  auto supply = b.param_array("supply_w", kMaxLines, 0, sc.warehouses - 1);
  auto qty = b.param_array("quantities", kMaxLines, 1, 10);

  auto dk = b.let("dk", w * kDistrictsPerWarehouse + d);
  auto dist = b.get(kDistrict, dk);
  auto o_id = b.let("o_id", dist.field(kNextOid));
  b.put(kDistrict, dk, {{kNextOid, o_id + 1}});

  auto wh = b.get(kWarehouse, w);
  auto cust = b.get(kCustomer, dk * sc.customers_per_district + c);
  auto okey = b.let("okey", dk * kMaxOrders + o_id);
  auto total = b.let("total", b.lit(0));

  b.for_(b.lit(0), ol_cnt, kMaxLines, [&](ProcBuilder& body, Val i) {
    auto item = body.get(kItem, items[i]);
    body.abort_if(!item.exists());  // spec: invalid item rolls back
    auto sk = body.let("sk", supply[i] * sc.items + items[i]);
    auto st = body.get(kStock, sk);
    auto q = body.let("q", qty[i]);
    // Classic Algorithm-2 branch: affects only the written quantity value,
    // so symbolic execution follows it concolically.
    auto nq = body.let("nq", body.lit(0));
    body.if_(
        st.field(kQuantity) - q >= 10,
        [&](ProcBuilder& t) { t.assign(nq, st.field(kQuantity) - q); },
        [&](ProcBuilder& e) { e.assign(nq, st.field(kQuantity) - q + 91); });
    body.put(kStock, sk,
             {{kQuantity, nq},
              {kStockYtd, st.field(kStockYtd) + q},
              {kOrderCnt, st.field(kOrderCnt) + 1}});
    auto amount = body.let("amount", q * item.field(kPrice));
    body.assign(total, total + amount);
    body.put(kOrderLine, okey * (kMaxLines + 1) + i,
             {{kOlItem, items[i]},
              {kOlSupplyW, supply[i]},
              {kOlQuantity, q},
              {kOlAmount, amount}});
  });

  // total * (1 + w_tax + d_tax) * (1 - c_discount), in basis points.
  auto adj = b.let("adj", total * (b.lit(100) + wh.field(kTax) +
                                   dist.field(kTax)) *
                              (b.lit(100) - cust.field(kDiscount)) /
                              b.lit(10000));
  b.put(kOrder, okey,
        {{kOCid, c}, {kOlCnt, ol_cnt}, {kAmount, adj}, {kCarrier, b.lit(0)}});
  b.put(kNewOrder, okey, {{kPresent, b.lit(1)}});
  b.emit(o_id);
  return std::move(b).build();
}

lang::Proc build_payment(const Scale& sc) {
  ProcBuilder b("payment");
  auto w = b.param("w_id", 0, sc.warehouses - 1);
  auto d = b.param("d_id", 0, kDistrictsPerWarehouse - 1);
  auto c = b.param("c_id", 0, sc.customers_per_district - 1);
  auto amount = b.param("amount", 1, 5000);
  // History ids are generated client-side, which is what keeps payment an
  // independent transaction (the paper classifies payment as IT).
  auto h_id = b.param("h_id", 0, INT64_C(1) << 40);

  auto wh = b.get(kWarehouseYtd, w);
  b.put(kWarehouseYtd, w, {{kYtd, wh.field(kYtd) + amount}});
  auto dk = b.let("dk", w * kDistrictsPerWarehouse + d);
  auto dist = b.get(kDistrictYtd, dk);
  b.put(kDistrictYtd, dk, {{kYtd, dist.field(kYtd) + amount}});
  auto ck = b.let("ck", dk * sc.customers_per_district + c);
  auto cust = b.get(kCustomerBal, ck);
  b.put(kCustomerBal, ck,
        {{kBalance, cust.field(kBalance) - amount},
         {kPaymentCnt, cust.field(kPaymentCnt) + 1}});
  b.put(kHistory, h_id, {{kHAmount, amount}});
  return std::move(b).build();
}

lang::Proc build_delivery(const Scale& sc) {
  ProcBuilder b("delivery");
  auto w = b.param("w_id", 0, sc.warehouses - 1);
  auto carrier = b.param("carrier", 1, 10);

  b.for_(b.lit(0), b.lit(kDistrictsPerWarehouse), kDistrictsPerWarehouse,
         [&](ProcBuilder& body, Val d) {
           auto dk = body.let("dk", w * kDistrictsPerWarehouse + d);
           auto ptr = body.get(kDelivPtr, dk);           // pivot
           auto next_o = body.let("next_o", ptr.field(kPresent) + 1);
           auto okey = body.let("okey", dk * kMaxOrders + next_o);
           auto marker = body.get(kNewOrder, okey);      // pivot (existence)
           body.if_(marker.exists(), [&](ProcBuilder& t) {
             auto ord = t.get(kOrder, okey);             // pivot (c_id)
             auto ck = t.let("ck", dk * sc.customers_per_district +
                                        ord.field(kOCid));
             auto cust = t.get(kCustomerBal, ck);
             t.put(kCustomerBal, ck,
                   {{kBalance, cust.field(kBalance) + ord.field(kAmount)},
                    {kDeliveryCnt, cust.field(kDeliveryCnt) + 1}});
             t.put(kOrder, okey, {{kCarrier, carrier}});
             t.del(kNewOrder, okey);
             t.put(kDelivPtr, dk, {{kPresent, next_o}});
           });
         });
  return std::move(b).build();
}

lang::Proc build_order_status(const Scale& sc) {
  ProcBuilder b("order_status");
  auto w = b.param("w_id", 0, sc.warehouses - 1);
  auto d = b.param("d_id", 0, kDistrictsPerWarehouse - 1);
  auto c = b.param("c_id", 0, sc.customers_per_district - 1);

  auto dk = b.let("dk", w * kDistrictsPerWarehouse + d);
  auto cust = b.get(kCustomerBal, dk * sc.customers_per_district + c);
  b.emit(cust.field(kBalance));
  auto dist = b.get(kDistrict, dk);
  auto next = b.let("next", dist.field(kNextOid));
  // Scan the 20 most recent orders for this customer's latest. Every GET is
  // unconditional so the scan stays a single execution path; the customer
  // filter guards only emits.
  b.for_(b.lit(1), b.lit(21), 21, [&](ProcBuilder& body, Val i) {
    auto oid = body.let("oid", body.max(next - i, body.lit(0)));
    auto o = body.get(kOrder, dk * kMaxOrders + oid);
    body.if_(o.exists() && (o.field(kOCid) == c), [&](ProcBuilder& t) {
      t.emit(oid);
      t.emit(o.field(kAmount));
      t.emit(o.field(kCarrier));
    });
  });
  return std::move(b).build();
}

lang::Proc build_stock_level(const Scale& sc) {
  ProcBuilder b("stock_level");
  auto w = b.param("w_id", 0, sc.warehouses - 1);
  auto d = b.param("d_id", 0, kDistrictsPerWarehouse - 1);
  auto threshold = b.param("threshold", 10, 20);

  auto dk = b.let("dk", w * kDistrictsPerWarehouse + d);
  auto dist = b.get(kDistrict, dk);
  auto next = b.let("next", dist.field(kNextOid));
  auto count = b.let("count", b.lit(0));
  b.for_(b.lit(1), b.lit(21), 21, [&](ProcBuilder& body, Val i) {
    auto oid = body.let("oid", body.max(next - i, body.lit(0)));
    auto okey = body.let("okey", dk * kMaxOrders + oid);
    body.for_(body.lit(0), body.lit(kMaxLines), kMaxLines,
              [&](ProcBuilder& inner, Val l) {
                auto line = inner.get(kOrderLine, okey * (kMaxLines + 1) + l);
                auto st = inner.get(kStock,
                                    w * sc.items + line.field(kOlItem));
                inner.if_(line.exists() &&
                              (st.field(kQuantity) < threshold),
                          [&](ProcBuilder& t) { t.assign(count, count + 1); });
              });
  });
  b.emit(count);
  return std::move(b).build();
}

// --- loader -------------------------------------------------------------------

void load(store::VersionedStore& store, const Scale& sc) {
  PROG_CHECK_MSG(sc.preloaded_orders >= 10,
                 "need at least 10 preloaded orders per district");
  for (std::int64_t i = 0; i < sc.items; ++i) {
    store.put({kItem, static_cast<Key>(i)},
              store::Row{{kPrice, 100 + i % 900}}, 0);
  }
  for (std::int64_t w = 0; w < sc.warehouses; ++w) {
    store.put({kWarehouse, static_cast<Key>(w)}, store::Row{{kTax, 5}}, 0);
    store.put({kWarehouseYtd, static_cast<Key>(w)}, store::Row{{kYtd, 0}}, 0);
    for (std::int64_t i = 0; i < sc.items; ++i) {
      store.put({kStock, static_cast<Key>(stock_key(sc, w, i))},
                store::Row{{kQuantity, 500}, {kStockYtd, 0}, {kOrderCnt, 0}},
                0);
    }
    for (std::int64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      const std::int64_t dk = district_key(w, d);
      store.put({kDistrict, static_cast<Key>(dk)},
                store::Row{{kTax, 7}, {kNextOid, sc.preloaded_orders + 1}},
                0);
      store.put({kDistrictYtd, static_cast<Key>(dk)}, store::Row{{kYtd, 0}},
                0);
      // Orders preloaded_orders-9 .. preloaded_orders are undelivered.
      store.put({kDelivPtr, static_cast<Key>(dk)},
                store::Row{{kPresent, sc.preloaded_orders - 10}}, 0);
      for (std::int64_t c = 0; c < sc.customers_per_district; ++c) {
        const Key ck = static_cast<Key>(customer_key(sc, w, d, c));
        store.put({kCustomer, ck}, store::Row{{kDiscount, c % 40}}, 0);
        store.put({kCustomerBal, ck},
                  store::Row{{kBalance, 0},
                             {kPaymentCnt, 0},
                             {kDeliveryCnt, 0}},
                  0);
      }
      for (std::int64_t o = 1; o <= sc.preloaded_orders; ++o) {
        const std::int64_t okey = order_key(dk, o);
        const std::int64_t ol_cnt = kMinLines + (o % (kMaxLines - kMinLines + 1));
        const bool delivered = o <= sc.preloaded_orders - 10;
        store.put({kOrder, static_cast<Key>(okey)},
                  store::Row{{kOCid, o % sc.customers_per_district},
                             {kOlCnt, ol_cnt},
                             {kAmount, 1000 + o},
                             {kCarrier, delivered ? 1 + o % 10 : 0}},
                  0);
        for (std::int64_t l = 0; l < ol_cnt; ++l) {
          store.put({kOrderLine, static_cast<Key>(order_line_key(okey, l))},
                    store::Row{{kOlItem, (o * 7 + l * 3) % sc.items},
                               {kOlSupplyW, w},
                               {kOlQuantity, 5},
                               {kOlAmount, 200}},
                    0);
        }
        if (!delivered) {
          store.put({kNewOrder, static_cast<Key>(okey)},
                    store::Row{{kPresent, 1}}, 0);
        }
      }
    }
  }
}

// --- workload ------------------------------------------------------------------

namespace {

/// TPC-C NURand non-uniform distribution.
std::int64_t nurand(Rng& rng, std::int64_t a, std::int64_t x, std::int64_t y) {
  const std::int64_t c = a / 2;
  return (((rng.uniform(0, a) | rng.uniform(x, y)) + c) % (y - x + 1)) + x;
}

/// Spec uses A=8191 for the 100k item range; scale A with the range so the
/// skew of a shrunken catalog matches the spec's.
std::int64_t nurand_a(std::int64_t range) {
  if (range >= 50000) return 8191;
  if (range >= 5000) return 1023;
  return 255;
}

}  // namespace

Workload::Workload(db::Database& db, Scale scale) : scale_(scale), db_(&db) {
  new_order_ = db.register_procedure(build_new_order(scale));
  payment_ = db.register_procedure(build_payment(scale));
  delivery_ = db.register_procedure(build_delivery(scale));
  order_status_ = db.register_procedure(build_order_status(scale));
  stock_level_ = db.register_procedure(build_stock_level(scale));
  load(db.store(), scale);
  db.finalize();
}

Workload::Workload(db::Database& db, Scale scale, AttachOnly)
    : scale_(scale), db_(&db) {
  new_order_ = db.find_procedure("new_order");
  payment_ = db.find_procedure("payment");
  delivery_ = db.find_procedure("delivery");
  order_status_ = db.find_procedure("order_status");
  stock_level_ = db.find_procedure("stock_level");
  if (!db.finalized()) db.finalize();
}

sched::TxRequest Workload::make_new_order(Rng& rng) const {
  sched::TxRequest r;
  r.proc = new_order_;
  const std::int64_t w = rng.uniform(0, scale_.warehouses - 1);
  const std::int64_t ol_cnt = rng.uniform(kMinLines, kMaxLines);
  r.input.add(w);
  r.input.add(rng.uniform(0, kDistrictsPerWarehouse - 1));
  r.input.add(nurand(rng, 1023, 0, scale_.customers_per_district - 1));
  r.input.add(ol_cnt);
  std::vector<Value> items(kMaxLines, 0), supply(kMaxLines, 0),
      qty(kMaxLines, 1);
  for (std::int64_t i = 0; i < ol_cnt; ++i) {
    items[static_cast<std::size_t>(i)] =
        nurand(rng, nurand_a(scale_.items), 0, scale_.items - 1);
    // 1% remote warehouse (when there is more than one).
    supply[static_cast<std::size_t>(i)] =
        (scale_.warehouses > 1 && rng.percent(1))
            ? rng.uniform(0, scale_.warehouses - 1)
            : w;
    qty[static_cast<std::size_t>(i)] = rng.uniform(1, 10);
  }
  // 1% of new orders reference an invalid item and roll back (spec §2.4.1.5).
  if (rng.percent(1)) {
    items[static_cast<std::size_t>(ol_cnt - 1)] = scale_.items;
  }
  r.input.add_array(std::move(items));
  r.input.add_array(std::move(supply));
  r.input.add_array(std::move(qty));
  return r;
}

sched::TxRequest Workload::make_payment(Rng& rng) const {
  sched::TxRequest r;
  r.proc = payment_;
  r.input.add(rng.uniform(0, scale_.warehouses - 1));
  r.input.add(rng.uniform(0, kDistrictsPerWarehouse - 1));
  r.input.add(nurand(rng, 1023, 0, scale_.customers_per_district - 1));
  r.input.add(rng.uniform(1, 5000));
  r.input.add(next_history_id_.fetch_add(1, std::memory_order_relaxed));
  return r;
}

sched::TxRequest Workload::make_delivery(Rng& rng) const {
  sched::TxRequest r;
  r.proc = delivery_;
  r.input.add(rng.uniform(0, scale_.warehouses - 1));
  r.input.add(rng.uniform(1, 10));
  return r;
}

sched::TxRequest Workload::make_order_status(Rng& rng) const {
  sched::TxRequest r;
  r.proc = order_status_;
  r.input.add(rng.uniform(0, scale_.warehouses - 1));
  r.input.add(rng.uniform(0, kDistrictsPerWarehouse - 1));
  r.input.add(nurand(rng, 1023, 0, scale_.customers_per_district - 1));
  return r;
}

sched::TxRequest Workload::make_stock_level(Rng& rng) const {
  sched::TxRequest r;
  r.proc = stock_level_;
  r.input.add(rng.uniform(0, scale_.warehouses - 1));
  r.input.add(rng.uniform(0, kDistrictsPerWarehouse - 1));
  r.input.add(rng.uniform(10, 20));
  return r;
}

sched::TxRequest Workload::next(Rng& rng) const {
  const std::uint64_t roll = rng.bounded(100);
  if (roll < 45) return make_new_order(rng);
  if (roll < 88) return make_payment(rng);
  if (roll < 92) return make_delivery(rng);
  if (roll < 96) return make_stock_level(rng);
  return make_order_status(rng);
}

std::vector<sched::TxRequest> Workload::batch(std::size_t n, Rng& rng) const {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next(rng));
  return out;
}

// --- invariants ----------------------------------------------------------------

std::vector<std::string> check_invariants(const store::VersionedStore& store,
                                          const Scale& sc) {
  std::vector<std::string> bad;
  auto complain = [&](std::string msg) { bad.push_back(std::move(msg)); };

  for (std::int64_t w = 0; w < sc.warehouses; ++w) {
    const store::RowPtr wh = store.get({kWarehouseYtd, static_cast<Key>(w)});
    if (wh == nullptr) {
      complain("missing warehouse " + std::to_string(w));
      continue;
    }
    std::int64_t district_ytd = 0;
    for (std::int64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      const std::int64_t dk = district_key(w, d);
      const store::RowPtr dist = store.get({kDistrict, static_cast<Key>(dk)});
      const store::RowPtr dytd =
          store.get({kDistrictYtd, static_cast<Key>(dk)});
      if (dist == nullptr || dytd == nullptr) {
        complain("missing district " + std::to_string(dk));
        continue;
      }
      district_ytd += dytd->at(kYtd);
      const std::int64_t next = dist->at(kNextOid);
      if (next < sc.preloaded_orders + 1) {
        complain("district " + std::to_string(dk) + " next_o_id went back");
      }
      // Every order id below next exists; the one at next does not.
      for (std::int64_t o = std::max<std::int64_t>(1, next - 25); o < next;
           ++o) {
        const store::RowPtr ord =
            store.get({kOrder, static_cast<Key>(order_key(dk, o))});
        if (ord == nullptr) {
          complain("district " + std::to_string(dk) + " missing order " +
                   std::to_string(o));
          continue;
        }
        // Order lines 0..ol_cnt-1 exist.
        const std::int64_t ol_cnt = ord->at(kOlCnt);
        for (std::int64_t l = 0; l < ol_cnt; ++l) {
          if (store.get({kOrderLine, static_cast<Key>(order_line_key(
                                         order_key(dk, o), l))}) == nullptr) {
            complain("order " + std::to_string(order_key(dk, o)) +
                     " missing line " + std::to_string(l));
          }
        }
      }
      if (store.get({kOrder, static_cast<Key>(order_key(dk, next))}) !=
          nullptr) {
        complain("district " + std::to_string(dk) +
                 " has an order beyond next_o_id");
      }
      // Undelivered markers are exactly (deliv_ptr, next).
      const store::RowPtr ptr = store.get({kDelivPtr, static_cast<Key>(dk)});
      if (ptr == nullptr) {
        complain("missing deliv_ptr " + std::to_string(dk));
        continue;
      }
      const std::int64_t last_delivered = ptr->at(kPresent);
      if (last_delivered >= next) {
        complain("district " + std::to_string(dk) +
                 " delivered beyond next_o_id");
      }
      for (std::int64_t o = last_delivered + 1; o < next; ++o) {
        if (store.get({kNewOrder, static_cast<Key>(order_key(dk, o))}) ==
            nullptr) {
          complain("district " + std::to_string(dk) +
                   " missing undelivered marker for order " +
                   std::to_string(o));
        }
      }
      if (last_delivered >= 1 &&
          store.get({kNewOrder,
                     static_cast<Key>(order_key(dk, last_delivered))}) !=
              nullptr) {
        complain("district " + std::to_string(dk) +
                 " has a marker for a delivered order");
      }
    }
    // TPC-C consistency condition 1: W_YTD == sum(D_YTD).
    if (wh->at(kYtd) != district_ytd) {
      complain("warehouse " + std::to_string(w) + " YTD " +
               std::to_string(wh->at(kYtd)) + " != districts " +
               std::to_string(district_ytd));
    }
  }
  return bad;
}

}  // namespace prog::workloads::tpcc
