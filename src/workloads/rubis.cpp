#include "workloads/rubis.hpp"

#include "common/check.hpp"
#include "lang/builder.hpp"

namespace prog::workloads::rubis {

using lang::ProcBuilder;
using lang::Val;

lang::Proc build_store_bid(const Scale& sc) {
  ProcBuilder b("store_bid");
  auto bidder = b.param("bidder", 0, sc.users - 1);
  auto item = b.param("item", 0, sc.items - 1);
  auto amount = b.param("amount", 1, 100000);

  // The bid id is the item's current bid count (pivot): consulting the
  // "respective table" for the next unique identifier.
  auto it = b.get(kItems, item);
  auto seq = b.let("seq", it.field(kBidCount));
  b.put(kBids, item * kMaxBidsPerItem + seq,
        {{kBidder, bidder}, {kItemRef, item}, {kBidAmount, amount}});

  auto bu = b.get(kUsers, bidder);  // bidder profile (rating shown in UI)
  b.emit(bu.field(kRating));
  // Max-bid update affects only written values: concolic, not a fork.
  auto new_max = b.let("new_max", it.field(kMaxBid));
  b.if_(amount > it.field(kMaxBid),
        [&](ProcBuilder& t) { t.assign(new_max, amount + 0); });
  b.put(kItems, item,
        {{kMaxBid, new_max}, {kBidCount, seq + 1}});
  b.emit(seq);
  return std::move(b).build();
}

lang::Proc build_store_buy_now(const Scale& sc) {
  ProcBuilder b("store_buy_now");
  auto buyer = b.param("buyer", 0, sc.users - 1);
  auto item = b.param("item", 0, sc.items - 1);
  auto qty = b.param("qty", 1, 5);

  auto it = b.get(kItems, item);
  auto seq = b.let("seq", it.field(kBuyCount));  // pivot
  b.put(kBuyNow, item * kMaxBidsPerItem + seq,
        {{kBidder, buyer}, {kItemRef, item}, {kBidAmount, qty}});

  auto left = b.let("left", it.field(kQuantity) - qty);
  // Sold out? Only the stored value changes, not the key-set.
  b.if_(left < 0, [&](ProcBuilder& t) { t.assign(left, t.lit(0)); });
  b.put(kItems, item, {{kQuantity, left}, {kBuyCount, seq + 1}});
  b.emit(seq);
  return std::move(b).build();
}

lang::Proc build_store_comment(const Scale& sc) {
  ProcBuilder b("store_comment");
  auto from = b.param("from", 0, sc.users - 1);
  auto to = b.param("to", 0, sc.users - 1);
  auto rating = b.param("rating", -5, 5);

  auto target = b.get(kUsers, to);
  auto seq = b.let("seq", target.field(kCommentCnt));  // pivot
  b.put(kComments, to * kMaxCommentsPerUser + seq,
        {{kFromUser, from}, {kToUser, to}, {kCommentRating, rating}});
  b.put(kUsers, to, {{kRating, target.field(kRating) + rating},
                     {kCommentCnt, seq + 1}});
  b.emit(seq);
  return std::move(b).build();
}

lang::Proc build_register_user(const Scale&) {
  ProcBuilder b("register_user");
  auto rating = b.param("rating", 0, 0);

  auto ctr = b.get(kCounters, b.lit(kUserCtr));
  auto id = b.let("id", ctr.field(kNext));
  b.put(kCounters, b.lit(kUserCtr), {{kNext, id + 1}});
  b.put(kUsers, id,
        {{kRating, rating}, {kListings, b.lit(0)}, {kCommentCnt, b.lit(0)}});
  b.emit(id);
  return std::move(b).build();
}

lang::Proc build_register_item(const Scale& sc) {
  ProcBuilder b("register_item");
  auto seller = b.param("seller", 0, sc.users - 1);
  auto qty = b.param("qty", 1, 10);
  auto reserve = b.param("reserve", 0, 100000);

  auto ctr = b.get(kCounters, b.lit(kItemCtr));
  auto id = b.let("id", ctr.field(kNext));
  b.put(kCounters, b.lit(kItemCtr), {{kNext, id + 1}});
  b.put(kItems, id,
        {{kSeller, seller},
         {kQuantity, qty},
         {kMaxBid, b.lit(0)},
         {kBidCount, b.lit(0)},
         {kReserve, reserve},
         {kBuyCount, b.lit(0)}});
  auto s = b.get(kUsers, seller);
  b.put(kUsers, seller, {{kListings, s.field(kListings) + 1}});
  b.emit(id);
  return std::move(b).build();
}

void load(store::VersionedStore& store, const Scale& sc) {
  for (std::int64_t u = 0; u < sc.users; ++u) {
    store.put({kUsers, static_cast<Key>(u)},
              store::Row{{kRating, 0}, {kListings, 0}, {kCommentCnt, 0}}, 0);
  }
  for (std::int64_t i = 0; i < sc.items; ++i) {
    store.put({kItems, static_cast<Key>(i)},
              store::Row{{kSeller, i % sc.users},
                         {kQuantity, 10},
                         {kMaxBid, 0},
                         {kBidCount, 0},
                         {kReserve, 100},
                         {kBuyCount, 0}},
              0);
  }
  store.put({kCounters, kUserCtr}, store::Row{{kNext, sc.users}}, 0);
  store.put({kCounters, kItemCtr}, store::Row{{kNext, sc.items}}, 0);
}

Workload::Workload(db::Database& db, Scale scale) : scale_(scale), db_(&db) {
  store_bid_ = db.register_procedure(build_store_bid(scale));
  store_buy_now_ = db.register_procedure(build_store_buy_now(scale));
  store_comment_ = db.register_procedure(build_store_comment(scale));
  register_user_ = db.register_procedure(build_register_user(scale));
  register_item_ = db.register_procedure(build_register_item(scale));
  load(db.store(), scale);
  db.finalize();
}

Workload::Workload(db::Database& db, Scale scale, AttachOnly)
    : scale_(scale), db_(&db) {
  store_bid_ = db.find_procedure("store_bid");
  store_buy_now_ = db.find_procedure("store_buy_now");
  store_comment_ = db.find_procedure("store_comment");
  register_user_ = db.find_procedure("register_user");
  register_item_ = db.find_procedure("register_item");
  if (!db.finalized()) db.finalize();
}

sched::TxRequest Workload::next(Rng& rng) const {
  sched::TxRequest r;
  const std::uint64_t roll = rng.bounded(8);
  if (roll < 4) {  // 50% store_bid
    r.proc = store_bid_;
    r.input.add(rng.uniform(0, scale_.users - 1));
    r.input.add(rng.uniform(0, scale_.items - 1));
    r.input.add(rng.uniform(1, 100000));
  } else if (roll == 4) {
    r.proc = store_buy_now_;
    r.input.add(rng.uniform(0, scale_.users - 1));
    r.input.add(rng.uniform(0, scale_.items - 1));
    r.input.add(rng.uniform(1, 5));
  } else if (roll == 5) {
    r.proc = store_comment_;
    r.input.add(rng.uniform(0, scale_.users - 1));
    r.input.add(rng.uniform(0, scale_.users - 1));
    r.input.add(rng.uniform(-5, 5));
  } else if (roll == 6) {
    r.proc = register_user_;
    r.input.add(0);
  } else {
    r.proc = register_item_;
    r.input.add(rng.uniform(0, scale_.users - 1));
    r.input.add(rng.uniform(1, 10));
    r.input.add(rng.uniform(0, 100000));
  }
  return r;
}

std::vector<sched::TxRequest> Workload::batch(std::size_t n, Rng& rng) const {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next(rng));
  return out;
}

std::vector<std::string> check_invariants(const store::VersionedStore& store,
                                          const Scale& sc) {
  std::vector<std::string> bad;
  auto counter = [&](Key which) -> std::int64_t {
    const store::RowPtr row = store.get({kCounters, which});
    if (row == nullptr) {
      bad.push_back("missing counter " + std::to_string(which));
      return -1;
    }
    return row->at(kNext);
  };

  // Global sequences: every id below the counter exists, the counter's own
  // id does not (registration never skips or duplicates ids).
  const std::int64_t user_next = counter(kUserCtr);
  const std::int64_t item_next = counter(kItemCtr);
  struct Seq {
    TableId table;
    std::int64_t next;
  };
  for (const Seq& s : {Seq{kUsers, user_next}, Seq{kItems, item_next}}) {
    if (s.next < 0) continue;
    for (std::int64_t id = std::max<std::int64_t>(0, s.next - 50);
         id < s.next; ++id) {
      if (store.get({s.table, static_cast<Key>(id)}) == nullptr) {
        bad.push_back("table " + std::to_string(s.table) + " missing id " +
                      std::to_string(id));
      }
    }
    if (store.get({s.table, static_cast<Key>(s.next)}) != nullptr) {
      bad.push_back("table " + std::to_string(s.table) +
                    " has a row beyond its counter");
    }
  }

  // Per-entity sequences are dense: an item with bid count n has bids
  // exactly at (item, 0..n-1); same for buy-nows and per-user comments.
  for (std::int64_t i = 0; i < item_next; ++i) {
    const store::RowPtr item = store.get({kItems, static_cast<Key>(i)});
    if (item == nullptr) {
      if (i < sc.items) bad.push_back("missing item " + std::to_string(i));
      continue;
    }
    struct PerItem {
      TableId table;
      std::int64_t count;
      const char* what;
    };
    for (const PerItem& p :
         {PerItem{kBids, item->get_or(kBidCount), "bid"},
          PerItem{kBuyNow, item->get_or(kBuyCount), "buy-now"}}) {
      for (std::int64_t s = 0; s < p.count; ++s) {
        if (store.get({p.table, static_cast<Key>(bid_key(i, s))}) ==
            nullptr) {
          bad.push_back("item " + std::to_string(i) + " missing " + p.what +
                        " #" + std::to_string(s));
        }
      }
      if (store.get({p.table, static_cast<Key>(bid_key(i, p.count))}) !=
          nullptr) {
        bad.push_back("item " + std::to_string(i) + " has a " + p.what +
                      " beyond its count");
      }
    }
    if (item->get_or(kQuantity) < 0) {
      bad.push_back("item " + std::to_string(i) + " oversold");
    }
  }
  for (std::int64_t u = 0; u < user_next; ++u) {
    const store::RowPtr user = store.get({kUsers, static_cast<Key>(u)});
    if (user == nullptr) {
      if (u < sc.users) bad.push_back("missing user " + std::to_string(u));
      continue;
    }
    const std::int64_t n = user->get_or(kCommentCnt);
    for (std::int64_t s = 0; s < n; ++s) {
      if (store.get({kComments, static_cast<Key>(comment_key(u, s))}) ==
          nullptr) {
        bad.push_back("user " + std::to_string(u) + " missing comment #" +
                      std::to_string(s));
      }
    }
    if (store.get({kComments, static_cast<Key>(comment_key(u, n))}) !=
        nullptr) {
      bad.push_back("user " + std::to_string(u) +
                    " has a comment beyond its count");
    }
  }
  return bad;
}

}  // namespace prog::workloads::rubis
