// YCSB-style micro-workload: read-modify-write transactions over a single
// table with Zipfian key popularity. Not part of the paper's evaluation —
// this is the "bring your own workload" template for library users, and the
// substrate for the contention-sweep ablation (how the deterministic
// engine's advantage over NODO/SEQ degrades as skew concentrates load on a
// few hot keys).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "sched/engine.hpp"

namespace prog::workloads::micro {

constexpr TableId kTable = 40;
constexpr FieldId kValue = 0;

struct Options {
  std::int64_t keys = 100000;
  /// Keys touched per transaction.
  int ops_per_tx = 4;
  /// Zipf skew: 0 = uniform; ~0.99 = classic YCSB; higher = hotter.
  double zipf_theta = 0.0;
  /// Percent of transactions that are read-only scans of the same keys.
  unsigned read_only_pct = 20;
};

/// Zipf(θ) sampler over [0, n) using the Gray et al. approximation.
class Zipf {
 public:
  Zipf(std::int64_t n, double theta);
  std::int64_t next(Rng& rng) const;

 private:
  std::int64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

class Workload {
 public:
  /// Registers the procedures, loads `opts.keys` rows, finalizes `db`.
  Workload(db::Database& db, Options opts);

  sched::TxRequest next(Rng& rng) const;
  std::vector<sched::TxRequest> batch(std::size_t n, Rng& rng) const;

  const Options& options() const noexcept { return opts_; }
  sched::ProcId rmw() const noexcept { return rmw_; }
  sched::ProcId scan() const noexcept { return scan_; }

 private:
  Options opts_;
  db::Database* db_;
  Zipf zipf_;
  sched::ProcId rmw_ = 0;
  sched::ProcId scan_ = 0;
};

/// Sum of all values equals the number of committed RMW ops (each op adds
/// exactly 1); used as the invariant check.
std::int64_t total_value(const store::VersionedStore& store,
                         const Options& opts);

}  // namespace prog::workloads::micro
