// YCSB-style micro-workload: read-modify-write transactions over a single
// table with Zipfian key popularity. Not part of the paper's evaluation —
// this is the "bring your own workload" template for library users, and the
// substrate for the contention-sweep ablation (how the deterministic
// engine's advantage over NODO/SEQ degrades as skew concentrates load on a
// few hot keys).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "sched/engine.hpp"

namespace prog::workloads::micro {

constexpr TableId kTable = 40;
constexpr FieldId kValue = 0;

struct Options {
  std::int64_t keys = 100000;
  /// Keys touched per transaction.
  int ops_per_tx = 4;
  /// Zipf skew: 0 = uniform; ~0.99 = classic YCSB; higher = hotter.
  double zipf_theta = 0.0;
  /// Percent of transactions that are read-only scans of the same keys.
  unsigned read_only_pct = 20;
};

/// Zipf(θ) sampler over [0, n) using the Gray et al. approximation.
class Zipf {
 public:
  Zipf(std::int64_t n, double theta);
  std::int64_t next(Rng& rng) const;

 private:
  std::int64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

class Workload {
 public:
  /// Registers the procedures, loads `opts.keys` rows, finalizes `db`.
  Workload(db::Database& db, Options opts);

  sched::TxRequest next(Rng& rng) const;
  std::vector<sched::TxRequest> batch(std::size_t n, Rng& rng) const;

  const Options& options() const noexcept { return opts_; }
  sched::ProcId rmw() const noexcept { return rmw_; }
  sched::ProcId scan() const noexcept { return scan_; }

 private:
  Options opts_;
  db::Database* db_;
  Zipf zipf_;
  sched::ProcId rmw_ = 0;
  sched::ProcId scan_ = 0;
};

/// Sum of all values equals the number of committed RMW ops (each op adds
/// exactly 1); used as the invariant check.
std::int64_t total_value(const store::VersionedStore& store,
                         const Options& opts);

lang::Proc build_rmw(const Options& opts);
lang::Proc build_scan(const Options& opts);

// ---------------------------------------------------------------------------
// Catalog mix: the low-conflict substrate for the static-conflict-matrix
// lock-elision ablation (txlint pass 3).
//
// Two transaction types over two tables:
//   micro_order    reads `reads_per_tx` catalog rows (Zipf-popular prices)
//                  and writes one account row with their sum — an IT that
//                  *reads* kCatalog and *writes* kAccount;
//   micro_reprice  rewrites one catalog price — an IT that writes kCatalog.
//
// kCatalog is written by *some* registered procedure, so the engine's
// whole-schema immutable-table elision can never skip its read locks. But
// in any batch that happens to contain no reprice transactions, the
// per-round conflict census proves all catalog accesses are reads and
// elides every one of their lock-table entries — exactly the gap between
// schema-level and batch-level static knowledge the ablation measures.

constexpr TableId kCatalog = 41;
constexpr TableId kAccount = 42;
constexpr TableId kOrderLog = 43;
constexpr FieldId kPrice = 0;
constexpr FieldId kSpent = 0;
constexpr FieldId kItem = 0;

struct CatalogOptions {
  std::int64_t catalog_keys = 1000;
  std::int64_t accounts = 100000;
  /// Catalog rows priced per order.
  int reads_per_tx = 8;
  /// Zipf skew of catalog popularity (hot items ⇒ hot read locks).
  double zipf_theta = 0.9;
  /// When > 0, each order also inserts one order-line row per priced item
  /// into kOrderLog (TPC-C NewOrder-style: a contended read mix that still
  /// appends fresh rows). Line keys derive from a per-order id drawn from
  /// [0, order_log_keys), so the log churns distinct keys every batch.
  std::int64_t order_log_keys = 0;
  /// Accounts each order settles (buyer, seller, fees, ...). Values > 1
  /// switch the "acct" parameter to an array and spread the charge across
  /// that many distinct account rows — read-modify-writes over a large
  /// preloaded table, i.e. lock-table churn without store growth.
  int settle_accounts = 1;
};

class CatalogWorkload {
 public:
  /// Registers both procedures, loads catalog + accounts, finalizes `db`.
  CatalogWorkload(db::Database& db, CatalogOptions opts);

  /// Attach-only: procedures already registered (shared pre-analyzed
  /// profiles) and data already loaded. Finalizes `db` if needed.
  struct AttachOnly {};
  CatalogWorkload(db::Database& db, CatalogOptions opts, AttachOnly);

  sched::TxRequest next_order(Rng& rng) const;
  sched::TxRequest next_reprice(Rng& rng) const;
  /// `reprice_count` transactions of the batch are reprices (0 ⇒ the batch
  /// is provably catalog-read-only and the census elides its read locks).
  std::vector<sched::TxRequest> batch(std::size_t n,
                                      std::size_t reprice_count,
                                      Rng& rng) const;

  const CatalogOptions& options() const noexcept { return opts_; }
  sched::ProcId order() const noexcept { return order_; }
  sched::ProcId reprice() const noexcept { return reprice_; }

 private:
  CatalogOptions opts_;
  db::Database* db_;
  Zipf zipf_;
  sched::ProcId order_ = 0;
  sched::ProcId reprice_ = 0;
};

lang::Proc build_order(const CatalogOptions& opts);
lang::Proc build_reprice(const CatalogOptions& opts);

/// Populates `store` (as batch 0) with the catalog and account rows.
void load_catalog(store::VersionedStore& store, const CatalogOptions& opts);

/// Invariant check: sum of account `kSpent` minus total catalog price mass
/// moved by reprices is reproducible across engine configurations; we use
/// the cheaper "sum of everything" state hash in tests, this helper exists
/// for targeted assertions.
std::int64_t total_spent(const store::VersionedStore& store,
                         const CatalogOptions& opts);

}  // namespace prog::workloads::micro
