#include "obs/engine_metrics.hpp"

namespace prog::obs {

EngineMetrics EngineMetrics::create(Registry& reg) {
  EngineMetrics m;
  const Determinism det = Determinism::kDeterministic;

  m.batches = &reg.counter("engine_batches_total",
                           "Batches executed to completion", det);
  for (unsigned c = 0; c < kTxClasses; ++c) {
    const Labels cls = {{"class", kTxClassNames[c]}};
    m.committed[c] = &reg.counter(
        "engine_txn_committed_total",
        "Transactions finished (incl. deterministic business rollbacks)", det,
        cls);
    m.rolled_back[c] = &reg.counter(
        "engine_txn_rolled_back_total",
        "Deterministic business rollbacks (AbortIf)", det, cls);
    m.validation_aborts[c] = &reg.counter(
        "engine_txn_validation_aborts_total",
        "Failed executions (pivot or key-set validation), all rounds", det,
        cls);
    m.txn_latency_us[c] =
        &reg.histogram("engine_txn_service_us",
                       "Per-attempt transaction service time", cls);
  }
  m.rounds = &reg.counter("engine_rounds_total",
                          "Failed-transaction re-execution rounds", det);
  m.mf_fallback_txns =
      &reg.counter("engine_mf_fallback_txns_total",
                   "Transactions finished via the post-cap SF fallback", det);
  m.mf_fallback_batches =
      &reg.counter("engine_mf_fallback_batches_total",
                   "Batches in which the MF round cap triggered", det);

  m.it_memo_hits = &reg.counter(
      "engine_it_memo_hits_total",
      "IT prediction-memo hits (timing-dependent: per-participant banks)",
      Determinism::kTimingDependent);
  m.it_memo_misses = &reg.counter(
      "engine_it_memo_misses_total",
      "IT prediction-memo misses (timing-dependent: per-participant banks)",
      Determinism::kTimingDependent);

  m.batch_wall_us =
      &reg.histogram("engine_batch_wall_us", "Batch wall-clock duration");
  auto phase = [&](const char* name) {
    return &reg.histogram("engine_phase_us", "Per-batch phase duration",
                          {{"phase", name}});
  };
  m.phase_prepare_us = phase("prepare");
  m.phase_enqueue_us = phase("enqueue");
  m.phase_exec_us = phase("execute");
  m.phase_validate_us = phase("validate");
  m.phase_mf_us = phase("mf_rounds");
  m.phase_sf_us = phase("sf_tail");
  m.batch_size_txns =
      &reg.histogram("engine_batch_size_txns", "Requests per batch");
  m.locks_enqueued = &reg.histogram(
      "engine_locks_enqueued", "Lock-table entries populated per batch");

  m.lock_table_depth = &reg.gauge(
      "engine_lock_table_depth",
      "Lock-table entries right after lock population (per round)");
  m.ready_queue_depth = &reg.gauge(
      "engine_ready_queue_depth",
      "Ready-queue occupancy right after lock population (per round)");
  return m;
}

}  // namespace prog::obs
