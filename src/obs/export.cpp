#include "obs/export.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace prog::obs {

namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(s[0])) return false;
  return std::all_of(s.begin() + 1, s.end(), tail);
}

bool valid_label_key(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(s[0])) return false;
  return std::all_of(s.begin() + 1, s.end(), [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  });
}

bool valid_value(const std::string& s) {
  if (s.empty()) return false;
  if (s == "+Inf" || s == "-Inf" || s == "NaN") return true;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Splits `name{labels} value` into its parts. Returns false on syntax
/// error. Labels come back as key->value (escapes left in place).
bool parse_sample(const std::string& line, std::string& name,
                  std::map<std::string, std::string>& labels,
                  std::string& value, std::string& err) {
  std::size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  name = line.substr(0, i);
  labels.clear();
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      std::size_t eq = line.find('=', i);
      if (eq == std::string::npos || eq + 1 >= line.size() ||
          line[eq + 1] != '"') {
        err = "malformed label pair";
        return false;
      }
      const std::string key = line.substr(i, eq - i);
      if (!valid_label_key(key)) {
        err = "invalid label key '" + key + "'";
        return false;
      }
      std::size_t j = eq + 2;
      std::string val;
      while (j < line.size() && line[j] != '"') {
        if (line[j] == '\\' && j + 1 < line.size()) ++j;
        val += line[j++];
      }
      if (j >= line.size()) {
        err = "unterminated label value";
        return false;
      }
      labels.emplace(key, val);
      i = j + 1;
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      err = "unterminated label set";
      return false;
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    err = "missing value separator";
    return false;
  }
  value = line.substr(i + 1);
  // Optional timestamp: "value ts" — we emit none, but accept it.
  const std::size_t sp = value.find(' ');
  if (sp != std::string::npos) value = value.substr(0, sp);
  return true;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string to_prometheus(const std::vector<MetricSnapshot>& snap,
                          const std::string& prefix) {
  std::string out;
  std::string current_family;
  for (const MetricSnapshot& s : snap) {
    const std::string name = prefix + s.name;
    if (s.name != current_family) {
      current_family = s.name;
      out += "# HELP " + name + ' ' + (s.help.empty() ? s.name : s.help) +
             '\n';
      out += "# TYPE " + name + ' ' + to_string(s.kind) + '\n';
    }
    const std::string braced =
        s.labels.empty() ? "" : '{' + s.labels + '}';
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        out += name + braced + ' ' + std::to_string(s.value) + '\n';
        break;
      case MetricKind::kHistogram: {
        const std::string lead =
            s.labels.empty() ? "{" : '{' + s.labels + ',';
        std::uint64_t cum = 0;
        for (unsigned i = 0; i < s.buckets.size(); ++i) {
          if (s.buckets[i] == 0) continue;  // cumulative value unchanged
          cum += s.buckets[i];
          out += name + "_bucket" + lead + "le=\"" +
                 std::to_string(Histogram::bucket_bound(i)) + "\"} " +
                 std::to_string(cum) + '\n';
        }
        out += name + "_bucket" + lead + "le=\"+Inf\"} " +
               std::to_string(s.count) + '\n';
        out += name + "_sum" + braced + ' ' + std::to_string(s.sum) + '\n';
        out += name + "_count" + braced + ' ' + std::to_string(s.count) +
               '\n';
        break;
      }
    }
  }
  return out;
}

std::string to_json(const std::vector<MetricSnapshot>& snap) {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const MetricSnapshot& s : snap) {
    if (!first) os << ",";
    first = false;
    os << "\n  {\"name\":\"" << json_escape(s.name) << "\",\"kind\":\""
       << to_string(s.kind) << "\",\"deterministic\":"
       << (s.deterministic() ? "true" : "false");
    os << ",\"labels\":{";
    // s.labels is canonical `a="x",b="y"`; re-emit as JSON pairs.
    bool lf = true;
    std::size_t i = 0;
    while (i < s.labels.size()) {
      const std::size_t eq = s.labels.find('=', i);
      if (eq == std::string::npos) break;
      std::size_t j = eq + 2;
      std::string val;
      while (j < s.labels.size() && s.labels[j] != '"') {
        if (s.labels[j] == '\\' && j + 1 < s.labels.size()) ++j;
        val += s.labels[j++];
      }
      if (!lf) os << ",";
      lf = false;
      os << '"' << json_escape(s.labels.substr(i, eq - i)) << "\":\""
         << json_escape(val) << '"';
      i = j + 1;
      if (i < s.labels.size() && s.labels[i] == ',') ++i;
    }
    os << "}";
    if (s.kind == MetricKind::kHistogram) {
      os << ",\"count\":" << s.count << ",\"sum\":" << s.sum
         << ",\"buckets\":[";
      bool bf = true;
      for (unsigned b = 0; b < s.buckets.size(); ++b) {
        if (s.buckets[b] == 0) continue;
        if (!bf) os << ",";
        bf = false;
        os << '[' << Histogram::bucket_bound(b) << ',' << s.buckets[b]
           << ']';
      }
      os << "]";
    } else {
      os << ",\"value\":" << s.value;
    }
    os << "}";
  }
  os << "\n]\n";
  return os.str();
}

bool validate_prometheus(const std::string& text, std::string* error) {
  auto fail = [&](int line_no, const std::string& why) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line_no) + ": " + why;
    }
    return false;
  };
  std::map<std::string, std::string> family_type;  // name -> TYPE
  // Histogram bookkeeping: per (family, labels-minus-le) cumulative check.
  std::map<std::string, std::uint64_t> hist_last_cum;
  std::map<std::string, bool> hist_saw_inf;

  std::istringstream in(text);
  std::string line;
  int n = 0;
  bool any_sample = false;
  while (std::getline(in, line)) {
    ++n;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kw, name;
      ls >> hash >> kw >> name;
      if (kw != "HELP" && kw != "TYPE") {
        continue;  // free-form comment — allowed by the format
      }
      if (!valid_metric_name(name)) {
        return fail(n, "invalid metric name in " + kw + " line");
      }
      if (kw == "TYPE") {
        std::string type;
        ls >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped") {
          return fail(n, "unknown TYPE '" + type + "'");
        }
        if (family_type.contains(name)) {
          return fail(n, "duplicate TYPE for family " + name);
        }
        family_type[name] = type;
      }
      continue;
    }
    std::string name, value, why;
    std::map<std::string, std::string> labels;
    if (!parse_sample(line, name, labels, value, why)) return fail(n, why);
    if (!valid_metric_name(name)) {
      return fail(n, "invalid metric name '" + name + "'");
    }
    if (!valid_value(value)) {
      return fail(n, "invalid sample value '" + value + "'");
    }
    any_sample = true;
    // Resolve the family: exact, or histogram suffix.
    std::string family = name;
    std::string suffix;
    if (!family_type.contains(family)) {
      for (const char* suf : {"_bucket", "_sum", "_count"}) {
        const std::string s = suf;
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0) {
          const std::string base = name.substr(0, name.size() - s.size());
          if (family_type.contains(base) &&
              family_type[base] == "histogram") {
            family = base;
            suffix = s;
            break;
          }
        }
      }
    }
    if (!family_type.contains(family)) {
      return fail(n, "sample '" + name + "' has no preceding TYPE");
    }
    const std::string& type = family_type[family];
    if (type == "histogram" && suffix.empty() && family == name) {
      return fail(n, "bare sample for histogram family " + family);
    }
    if (suffix == "_bucket") {
      auto le = labels.find("le");
      if (le == labels.end()) {
        return fail(n, "_bucket sample without le label");
      }
      std::string key = family + '{';
      for (const auto& [k, v] : labels) {
        if (k != "le") key += k + '=' + v + ',';
      }
      key += '}';
      const std::uint64_t cum =
          static_cast<std::uint64_t>(std::strtoull(value.c_str(), nullptr, 10));
      if (le->second == "+Inf") {
        if (cum < hist_last_cum[key]) {
          return fail(n, "+Inf bucket below cumulative count");
        }
        hist_saw_inf[key] = true;
      } else {
        auto seen = hist_saw_inf.find(key);
        if (seen != hist_saw_inf.end() && seen->second) {
          return fail(n, "bucket after le=\"+Inf\"");
        }
        hist_saw_inf[key] = false;  // register the series for the final check
        if (cum < hist_last_cum[key]) {
          return fail(n, "non-monotone cumulative bucket");
        }
        hist_last_cum[key] = cum;
      }
    }
  }
  for (const auto& [key, saw] : hist_saw_inf) {
    if (!saw) return fail(n, "histogram series missing le=\"+Inf\": " + key);
  }
  if (!any_sample) return fail(n, "no samples in exposition");
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace prog::obs
