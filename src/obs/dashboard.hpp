// Live text dashboard over a metric registry (tools/progmon).
//
// Feed it a snapshot per refresh interval; it differences successive
// snapshots to turn cumulative counters and histograms into windowed rates
// and percentiles, and renders a fixed-width ASCII panel: throughput,
// p50/p99 batch latency, abort rate, per-class commit mix, per-phase time
// split, and queue depths. Unknown families are ignored, so the same
// dashboard works over an engine registry, a replica registry, or a merged
// one.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace prog::obs {

class Dashboard {
 public:
  explicit Dashboard(std::string title = "progmon") : title_(std::move(title)) {}

  /// Ingests the newest snapshot; `elapsed_s` is wall time since the
  /// previous tick (<= 0 suppresses rates on the first tick).
  void tick(const std::vector<MetricSnapshot>& snap, double elapsed_s);

  /// The rendered panel for the latest tick.
  std::string render() const;

 private:
  struct Cell {
    std::int64_t value = 0;          // counters/gauges
    std::uint64_t count = 0;         // histograms
    std::int64_t sum = 0;
    std::vector<std::uint64_t> buckets;
  };
  using Table = std::map<std::string, Cell>;  // "name|labels" -> cell

  static Table index(const std::vector<MetricSnapshot>& snap);
  const Cell* cell(const std::string& key) const;
  const Cell* prev_cell(const std::string& key) const;

  std::string title_;
  double elapsed_s_ = 0;
  Table cur_;
  Table prev_;
  std::uint64_t ticks_ = 0;
};

}  // namespace prog::obs
