#include "obs/replica_metrics.hpp"

namespace prog::obs {

ReplicaMetrics ReplicaMetrics::create(Registry& reg) {
  // Cluster-level counters are *not* marked deterministic: which replica
  // takes a checkpoint or needs an InstallSnapshot depends on the fault
  // schedule and election timing, not on the batch sequence alone. The
  // cross-replica divergence oracle uses the per-replica engine counters
  // (see ReplicatedDb::deterministic_counter_snapshot), not these.
  ReplicaMetrics m;
  auto c = [&](const char* name, const char* help) {
    return &reg.counter(name, help);
  };
  m.checkpoints =
      c("replica_checkpoints_total", "Deterministic checkpoints taken");
  m.checkpoint_restores = c("replica_checkpoint_restores_total",
                            "Restarts/re-syncs restored from a checkpoint");
  m.snapshot_installs = c("replica_snapshot_installs_total",
                          "Leader-driven InstallSnapshot transfers accepted");
  m.full_rebuilds = c("replica_full_rebuilds_total",
                      "Restarts/re-syncs replayed from the initial state");
  m.divergences =
      c("replica_divergences_total", "State-hash divergences detected");
  m.quarantines =
      c("replica_quarantines_total", "Replicas quarantined for divergence");
  m.resyncs = c("replica_resyncs_total",
                "Quarantined replicas successfully re-synced");
  m.pool_reclaimed = c("replica_pool_reclaimed_total",
                       "Batch-pool entries superseded before committing");
  m.submit_retries =
      c("replica_submit_retries_total", "submit_with_retry backoff rounds");
  m.submit_timeouts =
      c("replica_submit_timeouts_total",
        "submit_with_retry calls that gave up at the overall deadline");
  m.batches_submitted =
      c("replica_batches_submitted_total", "Batches accepted by submit");
  m.batches_applied = c("replica_batches_applied_total",
                        "Batch applications across all replicas");
  m.submit_acked_durable =
      c("replica_submit_acked_durable_total",
        "Acks released by a quorum of durable WAL-fsync watermarks");

  m.pipeline_stall_snapshot =
      c("replica_pipeline_stall_snapshot_total",
        "Pipelined batches whose prepare waited on the previous batch's "
        "snapshot boundary");
  m.pipeline_stall_fsync =
      c("replica_pipeline_stall_fsync_total",
        "Checkpoint publications that waited on the async fsync watermark");
  m.pipeline_stall_queue_full =
      c("replica_pipeline_stall_queue_full_total",
        "Applies that blocked on a full commit-queue in-flight window");

  m.chaos_crashes =
      c("chaos_crashes_total", "Injected full-replica crashes (memory loss)");
  m.chaos_pauses = c("chaos_pauses_total", "Injected process pauses");
  m.chaos_restarts =
      c("chaos_restarts_total", "Replica restarts and pause resumes");
  m.chaos_partitions =
      c("chaos_partitions_total", "Injected minority partitions");
  m.chaos_heals = c("chaos_heals_total", "Partition heals / node revivals");
  m.chaos_bursts = c("chaos_bursts_total", "Message-drop burst windows");

  m.batch_lag = &reg.gauge(
      "replica_batch_lag",
      "Submitted batches minus the slowest live replica's applied count");
  m.replicas_down = &reg.gauge("replica_down", "Replicas currently crashed");
  m.replicas_quarantined =
      &reg.gauge("replica_quarantined", "Replicas currently quarantined");
  m.pipeline_depth = &reg.gauge(
      "replica_pipeline_depth",
      "Configured apply-pipeline depth (0 = legacy serial apply)");
  return m;
}

}  // namespace prog::obs
