// Exporters for registry snapshots (DESIGN.md §9).
//
//   - to_prometheus(): the Prometheus text exposition format (version
//     0.0.4) — `# HELP` / `# TYPE` headers, histograms as cumulative
//     `_bucket{le="..."}` series plus `_sum` / `_count`;
//   - to_json(): a flat JSON array of metric objects (machine-readable
//     snapshot for dashboards and tests);
//   - validate_prometheus(): a strict grammar check of an exposition dump —
//     the checked-in schema test CI runs against the scrape output.
//
// Both exporters consume the stable-ordered snapshot, so their output is
// byte-stable for a fixed set of values.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace prog::obs {

/// Prometheus text exposition of a snapshot. `prefix` is prepended to every
/// family name (e.g. "prog_").
std::string to_prometheus(const std::vector<MetricSnapshot>& snap,
                          const std::string& prefix = "prog_");

/// Flat JSON array: [{"name":..., "labels":{...}, "kind":..., "value":...,
/// "deterministic":...}, ...]; histograms carry "count", "sum", "buckets"
/// (pairs of [upper_bound, count], zero buckets elided).
std::string to_json(const std::vector<MetricSnapshot>& snap);

/// Validates `text` against the exposition grammar: HELP/TYPE comment
/// shape, known TYPE values, metric-line syntax `name{labels} value`,
/// metric names matching [a-zA-Z_:][a-zA-Z0-9_:]*, every sample preceded by
/// a TYPE for its family, histogram families carrying _bucket/_sum/_count
/// series with monotone cumulative buckets ending at le="+Inf". On failure
/// returns false and, when `error` is non-null, a line-numbered reason.
bool validate_prometheus(const std::string& text, std::string* error);

/// Minimal JSON string escaping (shared by the JSON and trace exporters).
std::string json_escape(const std::string& s);

}  // namespace prog::obs
