// Chrome trace_event export of engine batch traces (DESIGN.md §9).
//
// Renders the engine's BatchTrace — per-attempt service times, the
// lock-table dependency DAG, phase structure — as a Chrome `trace_event`
// JSON file loadable in Perfetto (https://ui.perfetto.dev) or
// about://tracing. Tracks:
//
//   tid 0         the queuer: prepare / enqueue / SF-tail spans per batch;
//   tid 1..W      workers: transaction attempts, placed by the same greedy
//                 list-scheduling discipline the benchutil throughput model
//                 uses (an attempt starts when a worker is free AND all its
//                 lock-table predecessors of the round have finished).
//
// The placement is a *reconstruction* for visualization — service times are
// measured, start times are modeled — which is exactly what makes the trace
// machine-independent: the same recorded trace renders identically anywhere.
//
// Lock-table dependency edges additionally render as Perfetto flow events
// ("s"/"f" arrows): each attempt draws an arrow from every predecessor that
// blocked it in its round, so grant cascades are visible as arrow chains
// across worker tracks.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sched/trace.hpp"

namespace prog::obs {

class ChromeTraceWriter {
 public:
  /// `workers` = number of worker tracks to schedule attempts onto.
  explicit ChromeTraceWriter(unsigned workers = 4);

  /// Appends one batch's spans at the current time cursor and advances the
  /// cursor past the batch (plus a 50µs inter-batch gap for readability).
  void add_batch(const sched::BatchTrace& trace, std::uint64_t batch_id);

  /// Number of batches added so far.
  std::size_t batches() const noexcept { return batches_; }

  /// Complete trace JSON: {"traceEvents": [...], ...}.
  std::string json() const;

 private:
  void event(const std::string& name, unsigned tid, std::int64_t ts_us,
             std::int64_t dur_us, const std::string& args_json);
  /// One "s"→"f" flow-event pair: an arrow from (from_tid, from_ts) to
  /// (to_tid, to_ts), binding a lock-table dependency edge across tracks.
  void flow(unsigned from_tid, std::int64_t from_ts, unsigned to_tid,
            std::int64_t to_ts);

  unsigned workers_;
  std::int64_t cursor_us_ = 0;
  std::size_t batches_ = 0;
  std::uint64_t flow_id_ = 1;
  std::vector<std::string> events_;
};

}  // namespace prog::obs
