// progmon — low-overhead, deterministic-safe telemetry (DESIGN.md §9).
//
// A metric registry in the Prometheus mold, specialized for a deterministic
// database:
//
//   - three instrument kinds: Counter (monotonic u64), Gauge (signed level),
//     and Histogram (log2-bucketed value distribution);
//   - labeled families: `registry.counter("txn_committed", ..., {{"class",
//     "rot"}})` returns a stable reference; registration is idempotent and
//     the returned handle is valid for the registry's lifetime, so hot paths
//     pre-resolve handles once and then pay exactly one relaxed atomic add
//     per event;
//   - lock-sharded registration: families are sharded by name hash; the
//     shard mutex is touched only at registration/snapshot time, never on
//     the increment path;
//   - a stable-ordered snapshot API: snapshot() returns metrics sorted by
//     (name, label-string), so two registries holding the same values
//     serialize to byte-identical text — which is what lets deterministic
//     counters double as a cross-replica divergence oracle alongside state
//     hashes (see consensus::ReplicatedDb::deterministic_counter_snapshot).
//
// Determinism contract: a metric is registered as kDeterministic only when
// its value is a pure function of the applied batch sequence (committed,
// aborts, rounds, ...). Wall-clock histograms, queue-occupancy samples and
// anything else that depends on thread interleaving must be registered as
// kTimingDependent; serialize_deterministic() excludes them. Only Counters
// may be deterministic — they are the only instrument whose value can be
// restored exactly from a checkpoint (Counter::reset_for_restore).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace prog::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

const char* to_string(MetricKind k) noexcept;

/// Whether a metric's value is a pure function of the applied batch
/// sequence (identical across replicas) or depends on wall-clock timing.
enum class Determinism : std::uint8_t { kDeterministic, kTimingDependent };

/// One label set, e.g. {{"class","rot"},{"phase","prepare"}}. Keys must be
/// unique; the registry canonicalizes the order by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. inc() is a single relaxed
/// fetch_add — safe from any thread, any phase.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  /// Checkpoint restore only (recovery layer): counters are otherwise
  /// monotonic. Not for hot paths.
  void reset_for_restore(std::uint64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Signed instantaneous level (queue depth, lag, occupancy).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept {
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::int64_t n) noexcept {
    v_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of non-negative values (typically microseconds).
/// Bucket i counts observations with bit_width(v) == i, i.e. upper bounds
/// 0, 1, 3, 7, ..., 2^k - 1 — exact enough for p50/p99 at a fixed 2x
/// resolution, and two relaxed atomic adds per observe().
class Histogram {
 public:
  static constexpr unsigned kBuckets = 40;  // covers [0, 2^39) ≈ 9 minutes µs

  void observe(std::int64_t v) noexcept {
    const std::uint64_t u = v > 0 ? static_cast<std::uint64_t>(v) : 0;
    unsigned b = static_cast<unsigned>(std::bit_width(u));
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(static_cast<std::int64_t>(u), std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    std::uint64_t c = 0;
    for (const auto& b : buckets_) c += b.load(std::memory_order_relaxed);
    return c;
  }
  std::int64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t bucket(unsigned i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Inclusive upper bound of bucket i (largest value it can hold).
  static std::uint64_t bucket_bound(unsigned i) noexcept {
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::int64_t> sum_{0};
};

/// One metric's state, copied out of the registry. The snapshot vector is
/// sorted by (name, labels) — the stable order every exporter relies on.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  Determinism det = Determinism::kTimingDependent;
  /// Canonical label string: `a="x",b="y"` (sorted by key), "" when none.
  std::string labels;
  /// Counter/Gauge value (counters as non-negative i64).
  std::int64_t value = 0;
  /// Histogram payload (empty for counters/gauges).
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  std::int64_t sum = 0;

  bool deterministic() const noexcept {
    return det == Determinism::kDeterministic;
  }
};

/// Percentile estimate from a histogram snapshot's buckets (upper-bound
/// interpolation; q in [0,1]). Returns 0 for an empty histogram.
double snapshot_quantile(const MetricSnapshot& h, double q) noexcept;

/// Lock-sharded metric registry. Registration and snapshotting take shard
/// mutexes; returned instrument references live as long as the registry and
/// are updated lock-free.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registers (or finds) a counter. `det` and `help` are fixed by the
  /// first registration of the family; re-registration with a different
  /// kind aborts (programming error).
  Counter& counter(const std::string& name, const std::string& help,
                   Determinism det = Determinism::kTimingDependent,
                   const Labels& labels = {});
  Gauge& gauge(const std::string& name, const std::string& help,
               const Labels& labels = {});
  Histogram& histogram(const std::string& name, const std::string& help,
                       const Labels& labels = {});

  /// Stable-ordered copy of every metric (see MetricSnapshot).
  std::vector<MetricSnapshot> snapshot() const;
  /// Only the deterministic metrics — the cross-replica comparable subset.
  std::vector<MetricSnapshot> deterministic_snapshot() const;

  /// Canonical one-line-per-metric text of the deterministic subset:
  /// `name{labels} value\n`, stable-ordered — byte-identical across
  /// replicas that applied the same batch sequence.
  std::string serialize_deterministic() const;

  std::size_t families() const;

 private:
  struct Instrument {
    std::string labels;  // canonical label string
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    Determinism det = Determinism::kTimingDependent;
    std::vector<Instrument> instruments;  // small-N linear scan
  };
  static constexpr unsigned kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<Family>> families;
  };

  Instrument& instrument(const std::string& name, const std::string& help,
                         MetricKind kind, Determinism det,
                         const Labels& labels);

  Shard shards_[kShards];
};

/// Canonicalizes a label set into the exporter form `a="x",b="y"` (sorted
/// by key; values backslash-escape `\`, `"` and newline).
std::string canonical_labels(Labels labels);

}  // namespace prog::obs
