// Pre-resolved metric handles for the replication/recovery layer
// (consensus::ReplicatedDb) and the chaos harness. All cold-path: these
// families count checkpoints, restores, state transfers, divergence
// quarantines, submit retries and injected chaos events — none of them sit
// on the per-transaction hot path, so the bundle is always maintained (no
// toggle needed).
#pragma once

#include "obs/metrics.hpp"

namespace prog::obs {

struct ReplicaMetrics {
  // --- recovery counters ---------------------------------------------------
  Counter* checkpoints = nullptr;
  Counter* checkpoint_restores = nullptr;
  Counter* snapshot_installs = nullptr;
  Counter* full_rebuilds = nullptr;
  Counter* divergences = nullptr;
  Counter* quarantines = nullptr;
  Counter* resyncs = nullptr;
  Counter* pool_reclaimed = nullptr;
  Counter* submit_retries = nullptr;
  Counter* submit_timeouts = nullptr;  ///< submit_with_retry deadline expiries
  Counter* batches_submitted = nullptr;
  Counter* batches_applied = nullptr;  ///< across all replicas
  /// Durable-mode acks released by the durable watermark: submit_with_retry
  /// observed a quorum of replica WAL fsync watermarks at/past the batch.
  Counter* submit_acked_durable = nullptr;

  // --- pipelined apply (DESIGN.md §14) -------------------------------------
  /// Stall-cause breakdown of the pipelined apply path.
  Counter* pipeline_stall_snapshot = nullptr;    ///< waiting-on-snapshot
  Counter* pipeline_stall_fsync = nullptr;       ///< waiting-on-fsync barrier
  Counter* pipeline_stall_queue_full = nullptr;  ///< commit-queue window full

  // --- chaos-event counters (incremented by consensus::run_chaos) ----------
  Counter* chaos_crashes = nullptr;
  Counter* chaos_pauses = nullptr;
  Counter* chaos_restarts = nullptr;
  Counter* chaos_partitions = nullptr;
  Counter* chaos_heals = nullptr;
  Counter* chaos_bursts = nullptr;

  // --- gauges --------------------------------------------------------------
  /// Submitted batches minus the slowest live replica's applied count.
  Gauge* batch_lag = nullptr;
  Gauge* replicas_down = nullptr;
  Gauge* replicas_quarantined = nullptr;
  /// Configured EngineConfig::pipeline_depth (0 = legacy serial apply).
  Gauge* pipeline_depth = nullptr;

  static ReplicaMetrics create(Registry& reg);
};

}  // namespace prog::obs
