// End-to-end causal transaction tracing + anomaly flight recorder
// (DESIGN.md §11).
//
// A traced batch gets a *deterministic* identity — (replica, batch_seq,
// slot) — so the same span names the same work on every replica and on
// every re-run from the same seed. Spans follow a batch end-to-end:
//
//   client submit → raft agreement (context rides the SimNet message
//   closures) → scheduler phases (predict, lock grant, execute, MF rounds,
//   SF tail) → WAL group-commit fsync → batch done
//
// Recording is head-sampled (EngineConfig::trace_sample_n: every Nth batch)
// into the process-wide FlightRecorder: one lock-free single-writer ring
// per thread, continuously overwriting the oldest events. When an anomaly
// fires (divergence quarantine, WAL record quarantine, SF fallback,
// recovery, crash-fuzz mismatch) the recorder snapshots the recent rings
// into a bounded dump — human-readable text plus a Perfetto-loadable
// trace_event JSON with flow events binding the cross-replica chain.
//
// Cost model: when disabled (or the batch is unsampled) every site is a
// single predictable branch. When sampled, an emit is one relaxed
// fetch_add (the global causal stamp) plus a store into the thread's ring.
// Memory is bounded at configure() time: lanes × capacity × sizeof(SpanEvent).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace prog::obs::tracing {

/// Sentinel replica id: client-side / standalone (no consensus context).
inline constexpr std::uint32_t kNoReplica = 0xFFFFFFFFu;
/// Sentinel slot id: the span describes the batch, not one transaction.
inline constexpr std::uint32_t kBatchSlot = 0xFFFFFFFFu;

enum class SpanKind : std::uint8_t {
  kSubmit,    // client handed the batch to the consensus layer
  kMsgSend,   // SimNet message left `replica` for `peer` carrying the trace
  kMsgRecv,   // SimNet message from `peer` delivered at `replica`
  kAgree,     // replica applies the agreed batch (raft apply callback)
  kPredict,   // per-tx key-set prediction (slot = tx index)
  kEnqueue,   // lock-table population of one round (arg = entries granted)
  kExecute,   // per-tx committed execution attempt (arg = tx class)
  kAbort,     // per-tx failed execution attempt (validation abort)
  kMfRound,   // one parallel re-execution round (round = which)
  kSfTail,    // serial SF tail (arg = transactions finished serially)
  kWalFsync,  // WAL append + group-commit fsync barrier (arg = bytes)
  kBatchDone, // batch finished at this replica (arg = committed count)
  kAnomaly,   // anomaly marker (see Anomaly)
  kPrepare,   // pipelined stage P: predict + lock-table population for the
              // batch, before its execute phase (arg = lock-table entries)
  kAckDurable,// client ack released by the durable watermark: a quorum of
              // replicas fsynced the batch (arg = quorum size reached)
};

const char* to_string(SpanKind k) noexcept;

enum class Anomaly : std::uint8_t {
  kNone,
  kDivergence,     // state-hash divergence quarantine (replicated_db)
  kWalQuarantine,  // corrupt WAL suffix quarantined at recovery (dur)
  kSfFallback,     // MF round cap hit; stragglers finished on the SF path
  kRecovery,       // replica restart recovered from durable state
  kFuzzMismatch,   // crash-fuzz witness hash mismatch (recovery_fuzz)
};

const char* to_string(Anomaly a) noexcept;

/// One recorded span/event. POD: rings copy these around freely.
struct SpanEvent {
  std::uint64_t seq = 0;        ///< global causal stamp (assigned by emit)
  std::uint64_t batch_seq = 0;  ///< trace id: agreed batch sequence
  std::uint64_t arg = 0;        ///< kind-specific payload (bytes, count, ...)
  std::int64_t ts_us = 0;       ///< span start, recorder-epoch microseconds
  std::int64_t dur_us = 0;      ///< span duration (0 = instant event)
  std::uint32_t replica = kNoReplica;  ///< trace id: replica
  std::uint32_t slot = kBatchSlot;     ///< trace id: batch-local tx index
  std::uint16_t peer = 0;   ///< kMsgSend/kMsgRecv: the other node
  std::uint16_t round = 0;  ///< scheduler round the span belongs to
  std::uint16_t lane = 0;   ///< recorder lane (thread) that emitted it
  SpanKind kind = SpanKind::kSubmit;
  Anomaly anomaly = Anomaly::kNone;
};
static_assert(std::is_trivially_copyable_v<SpanEvent>);

/// Trace context carried across layers (and across SimNet messages): which
/// batch the current call stack works for, and whether it is sampled.
/// Thread-local; the discrete-event simulator restores it around every
/// delivered message so raft handlers inherit the sender's context.
struct TraceContext {
  std::uint64_t batch_seq = 0;
  std::uint32_t replica = kNoReplica;
  bool sampled = false;
};

const TraceContext& current() noexcept;
void set_current(const TraceContext& ctx) noexcept;

/// RAII: install `ctx`, restore the previous context on destruction.
class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& ctx) : prev_(current()) {
    set_current(ctx);
  }
  ~ScopedContext() { set_current(prev_); }
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext prev_;
};

namespace detail {
inline std::atomic<bool> g_enabled{false};
}

/// One predictable branch: the whole tracing layer when recording is off.
inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// A bounded anomaly dump handed to the installed handler.
struct AnomalyDump {
  Anomaly anomaly = Anomaly::kNone;
  std::string detail;             ///< one-line trigger description
  std::vector<SpanEvent> events;  ///< recent events, seq-ordered, bounded
  std::string text;               ///< human-readable rendering
  std::string perfetto_json;      ///< Chrome trace_event JSON (flow events)
};

/// Process-wide flight recorder. Lock-free per-thread rings; every thread
/// that emits gets its own lane (single writer), snapshots merge the lanes.
class FlightRecorder {
 public:
  struct Options {
    /// Maximum distinct emitting threads; later threads drop their events.
    std::size_t lanes = 32;
    /// Events retained per lane (rounded up to a power of two).
    std::size_t lane_capacity = 4096;
    /// Newest events included in an anomaly dump.
    std::size_t dump_max_events = 4096;
  };

  static FlightRecorder& instance();

  /// (Re)configures ring geometry and starts recording. Must not race
  /// concurrent emitters — call while the engines are quiesced.
  void enable(const Options& opts);
  void enable() { enable(Options{}); }
  /// Stops recording (emit sites fall back to their single branch).
  void disable();

  /// Records one event: assigns the causal stamp, the lane and the start
  /// timestamp (now − dur). No-op when disabled or the lane table is full.
  void emit(SpanEvent ev) noexcept;

  /// Merged view of every lane's retained events, ordered by causal stamp.
  /// Concurrent emitters may overwrite the oldest retained events while the
  /// copy runs; the newest events (the ones a dump is about) are stable.
  std::vector<SpanEvent> snapshot() const;

  /// Drops all retained events (keeps the configuration and enabled state).
  void clear();

  using DumpHandler = std::function<void(const AnomalyDump&)>;
  /// Installs the anomaly sink (nullptr to remove). The handler runs on the
  /// triggering thread; it must not emit.
  void set_dump_handler(DumpHandler handler);

  /// Fires an anomaly: records a kAnomaly event under the current context
  /// and, when a handler is installed, snapshots the rings into a bounded
  /// AnomalyDump and invokes it. Cheap when disabled (single branch).
  void trigger(Anomaly a, const std::string& detail);

  /// Anomalies fired since enable() (kAnomaly events may have been evicted
  /// from the rings; this count is not).
  std::uint64_t anomalies() const noexcept {
    return anomalies_.load(std::memory_order_relaxed);
  }

  const Options& options() const noexcept { return opts_; }

 private:
  FlightRecorder() = default;

  struct Lane;
  Lane* lane_for_this_thread() noexcept;

  Options opts_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<std::size_t> next_lane_{0};
  std::atomic<std::uint64_t> next_seq_{1};
  std::atomic<std::uint64_t> anomalies_{0};
  std::int64_t epoch_ns_ = 0;
  DumpHandler handler_;

  std::int64_t now_us() const noexcept;
};

/// Convenience: FlightRecorder::instance().emit(ev) behind the enabled()
/// branch. The single call sites should use.
inline void emit(SpanEvent ev) noexcept {
  if (enabled()) FlightRecorder::instance().emit(ev);
}

/// Convenience: fire an anomaly through the global recorder.
inline void trigger(Anomaly a, const std::string& detail) {
  if (enabled()) FlightRecorder::instance().trigger(a, detail);
}

// --- renderings -------------------------------------------------------------

/// Human-readable rendering: one line per event, seq-ordered, with the
/// (replica, batch_seq, slot) trace id spelled out.
std::string format_text(const std::vector<SpanEvent>& events);

/// Chrome trace_event JSON loadable in https://ui.perfetto.dev: one process
/// per replica, one thread per recorder lane, "X" spans for durations and
/// flow events ("s"/"f") binding kMsgSend→kMsgRecv pairs and the
/// submit→agree chain so the cross-replica causality renders as arrows.
std::string to_perfetto_json(const std::vector<SpanEvent>& events);

/// Span-tree rendering of one traced batch (progmon --trace-batch): the
/// causal tree grouped per replica with per-phase durations and per-class
/// attempt counts. Empty string when the batch has no recorded events.
std::string format_span_tree(const std::vector<SpanEvent>& events,
                             std::uint64_t batch_seq);

}  // namespace prog::obs::tracing
