// Span/flow-event validator: structural checks over a recorded span stream
// (DESIGN.md §11.4). Used by the tracing tests, the chaos flight-recorder
// test, and CI (`progmon --check-spans`).
//
// The checks encode the causal contract of the pipeline:
//   * causal stamps are unique (the global fetch_add order is the ground
//     truth the rest of the checks lean on);
//   * per batch: at most one client submit, and it precedes every agreement;
//   * every message receive pairs with an earlier send of the same batch
//     with the endpoints swapped (unless allow_partial — anomaly dumps may
//     have evicted the send);
//   * per (batch, replica): agreement precedes the engine spans, which
//     precede the WAL fsync (presence-conditional: standalone runs have no
//     agreement, fsync-less configs no WAL span);
//   * per (batch, replica, slot): at most one committed execution, and
//     every abort happens in an earlier-or-equal round;
//   * connectivity: each replica that agrees on a batch after the first must
//     be reachable through recorded message traffic from a replica that
//     agreed earlier — the "connected span tree" acceptance criterion;
//   * fsync ≤ ack: a batch carrying a durable-ack span (kAckDurable) must
//     show a quorum — majority of the replicas that agreed on it — of
//     kWalFsync events stamped before the ack (the durable watermark gate).
//
// The report additionally counts pipeline overlap witnesses: prepare(N)
// spans stamped before the same replica's fsync(N-1) — evidence the
// pipelined apply path actually overlapped stages (never an error).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracing/tracing.hpp"

namespace prog::obs::tracing {

struct ValidateOptions {
  /// Tolerate missing counterparts (evicted ring events): skips the
  /// recv-without-send and connectivity errors, keeps ordering checks.
  bool allow_partial = false;
};

struct ValidateReport {
  std::vector<std::string> errors;
  std::uint64_t events = 0;
  std::uint64_t batches = 0;   ///< distinct batch_seq values seen
  std::uint64_t flows = 0;     ///< matched send→recv pairs
  /// Pipeline overlap witnesses (not errors): kPrepare of batch N at a
  /// replica stamped before that replica's kWalFsync of batch N-1 — the
  /// prepare(N) ∥ fsync(N-1) overlap the pipelined apply path exists to
  /// create. Always 0 for serial (depth-0) traces.
  std::uint64_t pipeline_overlaps = 0;
  bool ok() const { return errors.empty(); }
};

ValidateReport validate_spans(const std::vector<SpanEvent>& events,
                              const ValidateOptions& opts = {});

}  // namespace prog::obs::tracing
