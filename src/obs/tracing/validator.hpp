// Span/flow-event validator: structural checks over a recorded span stream
// (DESIGN.md §11.4). Used by the tracing tests, the chaos flight-recorder
// test, and CI (`progmon --check-spans`).
//
// The checks encode the causal contract of the pipeline:
//   * causal stamps are unique (the global fetch_add order is the ground
//     truth the rest of the checks lean on);
//   * per batch: at most one client submit, and it precedes every agreement;
//   * every message receive pairs with an earlier send of the same batch
//     with the endpoints swapped (unless allow_partial — anomaly dumps may
//     have evicted the send);
//   * per (batch, replica): agreement precedes the engine spans, which
//     precede the WAL fsync (presence-conditional: standalone runs have no
//     agreement, fsync-less configs no WAL span);
//   * per (batch, replica, slot): at most one committed execution, and
//     every abort happens in an earlier-or-equal round;
//   * connectivity: each replica that agrees on a batch after the first must
//     be reachable through recorded message traffic from a replica that
//     agreed earlier — the "connected span tree" acceptance criterion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/tracing/tracing.hpp"

namespace prog::obs::tracing {

struct ValidateOptions {
  /// Tolerate missing counterparts (evicted ring events): skips the
  /// recv-without-send and connectivity errors, keeps ordering checks.
  bool allow_partial = false;
};

struct ValidateReport {
  std::vector<std::string> errors;
  std::uint64_t events = 0;
  std::uint64_t batches = 0;   ///< distinct batch_seq values seen
  std::uint64_t flows = 0;     ///< matched send→recv pairs
  bool ok() const { return errors.empty(); }
};

ValidateReport validate_spans(const std::vector<SpanEvent>& events,
                              const ValidateOptions& opts = {});

}  // namespace prog::obs::tracing
