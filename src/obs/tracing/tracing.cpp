#include "obs/tracing/tracing.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <tuple>
#include <unordered_map>

namespace prog::obs::tracing {

const char* to_string(SpanKind k) noexcept {
  switch (k) {
    case SpanKind::kSubmit: return "submit";
    case SpanKind::kMsgSend: return "msg_send";
    case SpanKind::kMsgRecv: return "msg_recv";
    case SpanKind::kAgree: return "agree";
    case SpanKind::kPredict: return "predict";
    case SpanKind::kEnqueue: return "enqueue";
    case SpanKind::kExecute: return "execute";
    case SpanKind::kAbort: return "abort";
    case SpanKind::kMfRound: return "mf_round";
    case SpanKind::kSfTail: return "sf_tail";
    case SpanKind::kWalFsync: return "wal_fsync";
    case SpanKind::kBatchDone: return "batch_done";
    case SpanKind::kAnomaly: return "anomaly";
    case SpanKind::kPrepare: return "prepare";
    case SpanKind::kAckDurable: return "ack_durable";
  }
  return "?";
}

const char* to_string(Anomaly a) noexcept {
  switch (a) {
    case Anomaly::kNone: return "none";
    case Anomaly::kDivergence: return "divergence";
    case Anomaly::kWalQuarantine: return "wal_quarantine";
    case Anomaly::kSfFallback: return "sf_fallback";
    case Anomaly::kRecovery: return "recovery";
    case Anomaly::kFuzzMismatch: return "fuzz_mismatch";
  }
  return "?";
}

// --- trace context ----------------------------------------------------------

namespace {
thread_local TraceContext t_ctx;
}

const TraceContext& current() noexcept { return t_ctx; }
void set_current(const TraceContext& ctx) noexcept { t_ctx = ctx; }

// --- flight recorder --------------------------------------------------------

// Single-writer ring. The owning thread stores the event, then publishes the
// new head with release so a snapshotting thread's acquire load sees fully
// written events. Eviction is implicit: slot (head % capacity) is
// overwritten; a racing snapshot may read a torn *oldest* event, which is
// filtered out by the seq-window check below.
struct FlightRecorder::Lane {
  explicit Lane(std::size_t capacity)
      : mask(capacity - 1), slots(capacity) {}

  const std::size_t mask;
  std::vector<SpanEvent> slots;
  std::atomic<std::uint64_t> head{0};  // events ever written to this lane
  std::atomic<std::uint64_t> owner{0};  // debug: thread registration marker
};

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder rec;
  return rec;
}

std::int64_t FlightRecorder::now_us() const noexcept {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() -
          epoch_ns_) /
         1000;
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
// Thread → lane assignment. A plain thread_local index into the recorder's
// lane table; re-enabling the recorder bumps the epoch so stale assignments
// re-register against the new table.
thread_local std::size_t t_lane = SIZE_MAX;
thread_local std::uint64_t t_lane_epoch = 0;
std::atomic<std::uint64_t> g_lane_epoch{1};
}  // namespace

void FlightRecorder::enable(const Options& opts) {
  disable();
  opts_ = opts;
  opts_.lanes = std::max<std::size_t>(1, opts_.lanes);
  opts_.lane_capacity = round_up_pow2(std::max<std::size_t>(8, opts_.lane_capacity));
  opts_.dump_max_events = std::max<std::size_t>(16, opts_.dump_max_events);
  lanes_.clear();
  lanes_.reserve(opts_.lanes);
  for (std::size_t i = 0; i < opts_.lanes; ++i) {
    lanes_.push_back(std::make_unique<Lane>(opts_.lane_capacity));
  }
  next_lane_.store(0, std::memory_order_relaxed);
  next_seq_.store(1, std::memory_order_relaxed);
  anomalies_.store(0, std::memory_order_relaxed);
  epoch_ns_ = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now().time_since_epoch())
                  .count();
  g_lane_epoch.fetch_add(1, std::memory_order_relaxed);
  detail::g_enabled.store(true, std::memory_order_release);
}

void FlightRecorder::disable() {
  detail::g_enabled.store(false, std::memory_order_release);
}

FlightRecorder::Lane* FlightRecorder::lane_for_this_thread() noexcept {
  const std::uint64_t epoch = g_lane_epoch.load(std::memory_order_relaxed);
  if (t_lane_epoch != epoch) {
    t_lane_epoch = epoch;
    t_lane = next_lane_.fetch_add(1, std::memory_order_relaxed);
  }
  if (t_lane >= lanes_.size()) return nullptr;  // lane table full: drop
  return lanes_[t_lane].get();
}

void FlightRecorder::emit(SpanEvent ev) noexcept {
  if (!enabled()) return;
  Lane* lane = lane_for_this_thread();
  if (lane == nullptr) return;
  ev.seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  ev.lane = static_cast<std::uint16_t>(t_lane);
  if (ev.ts_us == 0) ev.ts_us = now_us() - ev.dur_us;  // span start
  const std::uint64_t h = lane->head.load(std::memory_order_relaxed);
  lane->slots[h & lane->mask] = ev;
  lane->head.store(h + 1, std::memory_order_release);
}

std::vector<SpanEvent> FlightRecorder::snapshot() const {
  std::vector<SpanEvent> out;
  for (const auto& lane : lanes_) {
    const std::uint64_t head = lane->head.load(std::memory_order_acquire);
    const std::uint64_t cap = lane->mask + 1;
    const std::uint64_t n = std::min<std::uint64_t>(head, cap);
    for (std::uint64_t i = head - n; i < head; ++i) {
      out.push_back(lane->slots[i & lane->mask]);
    }
  }
  // A concurrently-overwritten oldest slot can surface a newer event than the
  // head we read, or a half-written one with seq 0; both fall outside the
  // per-lane seq window implied by the merge order, and sorting + dropping
  // seq 0 keeps the merged view consistent.
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const SpanEvent& e) { return e.seq == 0; }),
            out.end());
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) { return a.seq < b.seq; });
  return out;
}

void FlightRecorder::clear() {
  for (auto& lane : lanes_) {
    lane->head.store(0, std::memory_order_release);
  }
}

void FlightRecorder::set_dump_handler(DumpHandler handler) {
  handler_ = std::move(handler);
}

void FlightRecorder::trigger(Anomaly a, const std::string& detail) {
  if (!enabled()) return;
  anomalies_.fetch_add(1, std::memory_order_relaxed);
  SpanEvent ev;
  ev.kind = SpanKind::kAnomaly;
  ev.anomaly = a;
  const TraceContext& ctx = current();
  ev.batch_seq = ctx.batch_seq;
  ev.replica = ctx.replica;
  emit(ev);
  if (!handler_) return;
  AnomalyDump dump;
  dump.anomaly = a;
  dump.detail = detail;
  dump.events = snapshot();
  if (dump.events.size() > opts_.dump_max_events) {
    dump.events.erase(dump.events.begin(),
                      dump.events.end() - opts_.dump_max_events);
  }
  dump.text = "anomaly: " + std::string(to_string(a)) + " — " + detail + "\n" +
              format_text(dump.events);
  dump.perfetto_json = to_perfetto_json(dump.events);
  handler_(dump);
}

// --- renderings -------------------------------------------------------------

namespace {

std::string id_str(const SpanEvent& e) {
  std::ostringstream os;
  os << "(r=";
  if (e.replica == kNoReplica) {
    os << "-";
  } else {
    os << e.replica;
  }
  os << ",b=" << e.batch_seq;
  if (e.slot != kBatchSlot) os << ",s=" << e.slot;
  os << ")";
  return os.str();
}

}  // namespace

std::string format_text(const std::vector<SpanEvent>& events) {
  std::ostringstream os;
  for (const SpanEvent& e : events) {
    os << "#" << e.seq << " t=" << e.ts_us << "us " << to_string(e.kind) << " "
       << id_str(e);
    if (e.dur_us > 0) os << " dur=" << e.dur_us << "us";
    if (e.kind == SpanKind::kMsgSend) os << " to=" << e.peer;
    if (e.kind == SpanKind::kMsgRecv) os << " from=" << e.peer;
    if (e.round != 0) os << " round=" << e.round;
    if (e.arg != 0) os << " arg=" << e.arg;
    if (e.kind == SpanKind::kAnomaly) os << " !" << to_string(e.anomaly);
    os << "\n";
  }
  return os.str();
}

namespace {

void json_escape_into(std::ostringstream& os, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      os << ' ';
    } else {
      os << c;
    }
  }
}

// pid layout for Perfetto: 0 = client/standalone, replica r = r+1.
std::uint32_t pid_of(const SpanEvent& e) {
  return e.replica == kNoReplica ? 0u : e.replica + 1;
}

void emit_event_common(std::ostringstream& os, const SpanEvent& e,
                       const char* ph, std::int64_t ts) {
  os << "{\"name\":\"" << to_string(e.kind);
  if (e.kind == SpanKind::kAnomaly) os << ":" << to_string(e.anomaly);
  os << "\",\"cat\":\"trace\",\"ph\":\"" << ph << "\",\"pid\":" << pid_of(e)
     << ",\"tid\":" << e.lane << ",\"ts\":" << ts;
}

void emit_args(std::ostringstream& os, const SpanEvent& e) {
  os << ",\"args\":{\"batch\":" << e.batch_seq << ",\"seq\":" << e.seq;
  if (e.slot != kBatchSlot) os << ",\"slot\":" << e.slot;
  if (e.round != 0) os << ",\"round\":" << e.round;
  if (e.arg != 0) os << ",\"arg\":" << e.arg;
  if (e.kind == SpanKind::kMsgSend || e.kind == SpanKind::kMsgRecv) {
    os << ",\"peer\":" << e.peer;
  }
  os << "}";
}

}  // namespace

std::string to_perfetto_json(const std::vector<SpanEvent>& events) {
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Process names: one per replica seen, plus the client process.
  std::map<std::uint32_t, std::string> procs;
  for (const SpanEvent& e : events) {
    const std::uint32_t pid = pid_of(e);
    if (procs.count(pid)) continue;
    procs[pid] = pid == 0 ? "client" : "replica " + std::to_string(pid - 1);
  }
  for (const auto& [pid, name] : procs) {
    sep();
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"";
    json_escape_into(os, name);
    os << "\"}}";
  }

  // Duration/instant events.
  for (const SpanEvent& e : events) {
    sep();
    if (e.dur_us > 0) {
      emit_event_common(os, e, "X", e.ts_us);
      os << ",\"dur\":" << e.dur_us;
    } else {
      emit_event_common(os, e, "i", e.ts_us);
      os << ",\"s\":\"t\"";
    }
    emit_args(os, e);
    os << "}";
  }

  // Flow events: arrows binding the cross-thread/cross-replica chain.
  //   1. kMsgSend → kMsgRecv, matched by (batch, from, to) in seq order;
  //   2. kSubmit → each replica's kAgree for the same batch.
  std::uint64_t flow_id = 1;
  auto flow = [&](const SpanEvent& a, const SpanEvent& b, std::uint64_t id) {
    sep();
    os << "{\"name\":\"flow\",\"cat\":\"trace\",\"ph\":\"s\",\"pid\":"
       << pid_of(a) << ",\"tid\":" << a.lane << ",\"ts\":"
       << a.ts_us + a.dur_us << ",\"id\":" << id << "}";
    sep();
    os << "{\"name\":\"flow\",\"cat\":\"trace\",\"ph\":\"f\",\"bp\":\"e\","
       << "\"pid\":" << pid_of(b) << ",\"tid\":" << b.lane
       << ",\"ts\":" << b.ts_us << ",\"id\":" << id << "}";
  };

  // msg_send → msg_recv pairing: key (batch, from, to); FIFO per key (SimNet
  // delivery within one (from, to) pair preserves send order).
  std::map<std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>,
           std::vector<const SpanEvent*>>
      pending;
  for (const SpanEvent& e : events) {
    if (e.kind == SpanKind::kMsgSend) {
      pending[{e.batch_seq, e.replica, e.peer}].push_back(&e);
    } else if (e.kind == SpanKind::kMsgRecv) {
      auto it = pending.find({e.batch_seq, e.peer, e.replica});
      if (it != pending.end() && !it->second.empty()) {
        flow(*it->second.front(), e, flow_id++);
        it->second.erase(it->second.begin());
      }
    }
  }

  // submit → agree chains.
  std::unordered_map<std::uint64_t, const SpanEvent*> submits;
  for (const SpanEvent& e : events) {
    if (e.kind == SpanKind::kSubmit) submits[e.batch_seq] = &e;
  }
  for (const SpanEvent& e : events) {
    if (e.kind != SpanKind::kAgree) continue;
    auto it = submits.find(e.batch_seq);
    if (it != submits.end()) flow(*it->second, e, flow_id++);
  }

  os << "\n]}\n";
  return os.str();
}

std::string format_span_tree(const std::vector<SpanEvent>& events,
                             std::uint64_t batch_seq) {
  std::vector<const SpanEvent*> batch;
  for (const SpanEvent& e : events) {
    if (e.batch_seq == batch_seq) batch.push_back(&e);
  }
  if (batch.empty()) return "";
  std::ostringstream os;
  os << "batch " << batch_seq << " — " << batch.size() << " events\n";

  // Client-side root (submit + message traffic emitted under kNoReplica).
  const SpanEvent* submit = nullptr;
  for (const SpanEvent* e : batch) {
    if (e->kind == SpanKind::kSubmit) submit = e;
  }
  if (submit != nullptr) {
    os << "└ submit  seq#" << submit->seq << "  t=" << submit->ts_us << "us\n";
  }

  // Group by replica, preserving causal (seq) order inside each group.
  std::map<std::uint32_t, std::vector<const SpanEvent*>> per_replica;
  for (const SpanEvent* e : batch) {
    if (e->replica == kNoReplica) continue;
    per_replica[e->replica].push_back(e);
  }
  for (const auto& [replica, evs] : per_replica) {
    // Phase rollups for the summary line.
    std::int64_t predict_us = 0, exec_us = 0, enqueue_us = 0, mf_us = 0,
                 sf_us = 0, wal_us = 0, prepare_us = 0;
    std::uint64_t execs = 0, aborts = 0, msgs = 0;
    std::uint16_t rounds = 0;
    for (const SpanEvent* e : evs) {
      switch (e->kind) {
        case SpanKind::kPredict: predict_us += e->dur_us; break;
        case SpanKind::kPrepare: prepare_us += e->dur_us; break;
        case SpanKind::kEnqueue: enqueue_us += e->dur_us; break;
        case SpanKind::kExecute: exec_us += e->dur_us; ++execs; break;
        case SpanKind::kAbort: ++aborts; break;
        case SpanKind::kMfRound:
          mf_us += e->dur_us;
          rounds = std::max(rounds, e->round);
          break;
        case SpanKind::kSfTail: sf_us += e->dur_us; break;
        case SpanKind::kWalFsync: wal_us += e->dur_us; break;
        case SpanKind::kMsgSend:
        case SpanKind::kMsgRecv: ++msgs; break;
        default: break;
      }
    }
    os << "└ replica " << replica << "  (" << evs.size() << " events, "
       << msgs << " msgs)\n";
    for (const SpanEvent* e : evs) {
      // Per-tx spans are summarised in the rollup, not listed one-per-line;
      // phase and anomaly spans print individually.
      if (e->kind == SpanKind::kPredict || e->kind == SpanKind::kExecute ||
          e->kind == SpanKind::kAbort || e->kind == SpanKind::kMsgSend ||
          e->kind == SpanKind::kMsgRecv) {
        continue;
      }
      os << "  ├ " << to_string(e->kind);
      if (e->dur_us > 0) os << "  " << e->dur_us << "us";
      if (e->round != 0) os << "  round=" << e->round;
      if (e->arg != 0) os << "  arg=" << e->arg;
      if (e->kind == SpanKind::kAnomaly) os << "  !" << to_string(e->anomaly);
      os << "  seq#" << e->seq << "\n";
    }
    os << "  └ phases: predict=" << predict_us << "us";
    if (prepare_us > 0) os << " prepare=" << prepare_us << "us";
    os << " enqueue=" << enqueue_us << "us exec=" << exec_us << "us ("
       << execs << " commits, " << aborts << " aborts) mf=" << mf_us
       << "us (" << rounds << " rounds) sf=" << sf_us
       << "us wal_fsync=" << wal_us << "us\n";
  }
  return os.str();
}

}  // namespace prog::obs::tracing
