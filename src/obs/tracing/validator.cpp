#include "obs/tracing/validator.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

namespace prog::obs::tracing {

namespace {

std::string where(const SpanEvent& e) {
  std::ostringstream os;
  os << to_string(e.kind) << " seq#" << e.seq << " batch=" << e.batch_seq;
  if (e.replica != kNoReplica) os << " replica=" << e.replica;
  return os.str();
}

}  // namespace

ValidateReport validate_spans(const std::vector<SpanEvent>& events,
                              const ValidateOptions& opts) {
  ValidateReport rep;
  rep.events = events.size();
  auto err = [&rep](const std::string& msg) { rep.errors.push_back(msg); };

  // 1. causal stamps unique (and present).
  std::unordered_set<std::uint64_t> seqs;
  seqs.reserve(events.size());
  for (const SpanEvent& e : events) {
    if (e.seq == 0) {
      err("event with unassigned seq 0: " + where(e));
      continue;
    }
    if (!seqs.insert(e.seq).second) {
      err("duplicate causal stamp: " + where(e));
    }
  }

  // Index per batch, in causal order.
  std::map<std::uint64_t, std::vector<const SpanEvent*>> by_batch;
  std::vector<const SpanEvent*> ordered;
  ordered.reserve(events.size());
  for (const SpanEvent& e : events) ordered.push_back(&e);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanEvent* a, const SpanEvent* b) {
              return a->seq < b->seq;
            });
  for (const SpanEvent* e : ordered) by_batch[e->batch_seq].push_back(e);
  rep.batches = by_batch.size();

  // (batch, replica) → causal stamp, filled by the per-batch walk below and
  // consumed by the cross-batch pipeline-overlap count at the end.
  std::map<std::pair<std::uint64_t, std::uint32_t>, std::uint64_t>
      prepare_stamp, fsync_stamp;

  for (const auto& [batch, evs] : by_batch) {
    // 2. one submit, before every agree.
    const SpanEvent* submit = nullptr;
    for (const SpanEvent* e : evs) {
      if (e->kind != SpanKind::kSubmit) continue;
      if (submit != nullptr) {
        err("batch " + std::to_string(batch) + ": multiple submits (seq#" +
            std::to_string(submit->seq) + ", seq#" + std::to_string(e->seq) +
            ")");
      }
      submit = e;
    }
    for (const SpanEvent* e : evs) {
      if (e->kind == SpanKind::kAgree && submit != nullptr &&
          e->seq < submit->seq) {
        err("batch " + std::to_string(batch) + ": agree before submit (" +
            where(*e) + ")");
      }
    }

    // 3. recv pairs with an earlier send, endpoints swapped, FIFO per pair.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> sends;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::size_t> recvs;
    for (const SpanEvent* e : evs) {
      if (e->kind == SpanKind::kMsgSend) {
        ++sends[{e->replica, e->peer}];
      } else if (e->kind == SpanKind::kMsgRecv) {
        auto& sent = sends[{static_cast<std::uint32_t>(e->peer), e->replica}];
        auto& got = recvs[{static_cast<std::uint32_t>(e->peer), e->replica}];
        if (got >= sent) {
          if (!opts.allow_partial) {
            err("batch " + std::to_string(batch) +
                ": recv without a prior matching send (" + where(*e) + ")");
          }
        } else {
          ++got;
          ++rep.flows;
        }
      }
    }

    // 4. per (batch, replica) phase order, 5. per-slot execution contract.
    std::map<std::uint32_t, std::vector<const SpanEvent*>> per_replica;
    for (const SpanEvent* e : evs) {
      if (e->replica != kNoReplica) per_replica[e->replica].push_back(e);
    }
    std::vector<std::pair<std::uint64_t, std::uint32_t>> agreed;  // (seq, r)
    for (const auto& [replica, revs] : per_replica) {
      std::uint64_t agree_seq = 0, first_engine_seq = 0, wal_seq = 0,
                    last_engine_seq = 0;
      std::map<std::uint32_t, const SpanEvent*> commit_of_slot;
      std::map<std::uint32_t, std::uint16_t> commit_round;
      for (const SpanEvent* e : revs) {
        switch (e->kind) {
          case SpanKind::kAgree:
            agree_seq = e->seq;
            agreed.push_back({e->seq, replica});
            break;
          case SpanKind::kPrepare:
            if (prepare_stamp.find({batch, replica}) == prepare_stamp.end()) {
              prepare_stamp[{batch, replica}] = e->seq;
            }
            if (first_engine_seq == 0) first_engine_seq = e->seq;
            last_engine_seq = e->seq;
            break;
          case SpanKind::kPredict:
          case SpanKind::kEnqueue:
          case SpanKind::kMfRound:
          case SpanKind::kSfTail:
            if (first_engine_seq == 0) first_engine_seq = e->seq;
            last_engine_seq = e->seq;
            break;
          case SpanKind::kExecute: {
            if (first_engine_seq == 0) first_engine_seq = e->seq;
            last_engine_seq = e->seq;
            if (e->slot == kBatchSlot) break;
            auto [it, fresh] = commit_of_slot.insert({e->slot, e});
            if (!fresh) {
              err("batch " + std::to_string(batch) + " replica " +
                  std::to_string(replica) + " slot " + std::to_string(e->slot) +
                  ": committed twice (seq#" + std::to_string(it->second->seq) +
                  ", seq#" + std::to_string(e->seq) + ")");
            } else {
              commit_round[e->slot] = e->round;
            }
            break;
          }
          case SpanKind::kAbort:
            if (first_engine_seq == 0) first_engine_seq = e->seq;
            last_engine_seq = e->seq;
            break;
          case SpanKind::kWalFsync:
            wal_seq = e->seq;
            fsync_stamp[{batch, replica}] = e->seq;
            break;
          default:
            break;
        }
      }
      // Aborts must precede (be in an earlier-or-equal round than) the
      // slot's commit — a commit is final.
      for (const SpanEvent* e : revs) {
        if (e->kind != SpanKind::kAbort || e->slot == kBatchSlot) continue;
        auto it = commit_round.find(e->slot);
        if (it != commit_round.end() && e->round > it->second) {
          err("batch " + std::to_string(batch) + " replica " +
              std::to_string(replica) + " slot " + std::to_string(e->slot) +
              ": abort in round " + std::to_string(e->round) +
              " after commit in round " + std::to_string(it->second));
        }
      }
      if (agree_seq != 0 && first_engine_seq != 0 &&
          first_engine_seq < agree_seq) {
        err("batch " + std::to_string(batch) + " replica " +
            std::to_string(replica) + ": engine span before agreement");
      }
      if (wal_seq != 0 && last_engine_seq != 0 && wal_seq < last_engine_seq) {
        err("batch " + std::to_string(batch) + " replica " +
            std::to_string(replica) + ": WAL fsync before the engine finished");
      }
    }

    // 6. connectivity: replicas agreeing after the first must be reachable
    // through recorded message traffic from an earlier-agreeing replica.
    if (!opts.allow_partial && agreed.size() > 1) {
      std::sort(agreed.begin(), agreed.end());
      std::set<std::uint32_t> reached = {agreed.front().second};
      for (std::size_t i = 1; i < agreed.size(); ++i) {
        const std::uint32_t r = agreed[i].second;
        bool linked = false;
        for (const SpanEvent* e : evs) {
          if (e->seq >= agreed[i].first) break;
          if (e->kind == SpanKind::kMsgRecv && e->replica == r &&
              reached.count(e->peer)) {
            linked = true;
            break;
          }
        }
        if (!linked) {
          err("batch " + std::to_string(batch) + ": replica " +
              std::to_string(r) +
              " agreed without recorded message traffic from an "
              "earlier-agreeing replica");
        }
        reached.insert(r);
      }
    }

    // 7. fsync ≤ ack: a durable ack must be preceded by a quorum (majority
    // of the replicas that agreed on the batch) of WAL fsync spans — the
    // durable-watermark gate the pipelined apply path enforces. Skipped
    // under allow_partial: the fsync spans may have been evicted.
    if (!opts.allow_partial) {
      std::set<std::uint32_t> agree_replicas;
      for (const auto& [seq, r] : agreed) agree_replicas.insert(r);
      for (const SpanEvent* e : evs) {
        if (e->kind != SpanKind::kAckDurable) continue;
        if (agree_replicas.empty()) break;  // standalone trace: vacuous
        std::size_t durable = 0;
        for (const std::uint32_t r : agree_replicas) {
          auto it = fsync_stamp.find({batch, r});
          if (it != fsync_stamp.end() && it->second < e->seq) ++durable;
        }
        const std::size_t quorum = agree_replicas.size() / 2 + 1;
        if (durable < quorum) {
          err("batch " + std::to_string(batch) + ": durable ack (seq#" +
              std::to_string(e->seq) + ") preceded by only " +
              std::to_string(durable) + "/" + std::to_string(quorum) +
              " quorum WAL fsyncs");
        }
      }
    }
  }

  // Pipeline overlap witnesses: prepare(N) stamped before the same
  // replica's fsync(N-1). Not an error — the evidence the pipelined apply
  // overlapped stage P with stage D.
  for (const auto& [key, pseq] : prepare_stamp) {
    const auto& [batch, replica] = key;
    if (batch == 0) continue;
    auto it = fsync_stamp.find({batch - 1, replica});
    if (it != fsync_stamp.end() && pseq < it->second) ++rep.pipeline_overlaps;
  }
  return rep;
}

}  // namespace prog::obs::tracing
