#include "obs/trace_export.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "obs/export.hpp"

namespace prog::obs {

ChromeTraceWriter::ChromeTraceWriter(unsigned workers)
    : workers_(workers == 0 ? 1 : workers) {}

void ChromeTraceWriter::event(const std::string& name, unsigned tid,
                              std::int64_t ts_us, std::int64_t dur_us,
                              const std::string& args_json) {
  std::string e = "{\"name\":\"" + json_escape(name) +
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
                  ",\"ts\":" + std::to_string(ts_us) +
                  ",\"dur\":" + std::to_string(std::max<std::int64_t>(
                                    dur_us, 1));
  if (!args_json.empty()) e += ",\"args\":" + args_json;
  e += "}";
  events_.push_back(std::move(e));
}

void ChromeTraceWriter::flow(unsigned from_tid, std::int64_t from_ts,
                             unsigned to_tid, std::int64_t to_ts) {
  const std::string id = std::to_string(flow_id_++);
  // "s" anchors at the predecessor's end, "f" (with "bp":"e" so the arrow
  // binds to the enclosing slice) at the successor's start.
  events_.push_back("{\"name\":\"grant\",\"cat\":\"dep\",\"ph\":\"s\","
                    "\"pid\":1,\"tid\":" +
                    std::to_string(from_tid) +
                    ",\"ts\":" + std::to_string(from_ts) + ",\"id\":" + id +
                    "}");
  events_.push_back("{\"name\":\"grant\",\"cat\":\"dep\",\"ph\":\"f\","
                    "\"bp\":\"e\",\"pid\":1,\"tid\":" +
                    std::to_string(to_tid) +
                    ",\"ts\":" + std::to_string(to_ts) + ",\"id\":" + id +
                    "}");
}

void ChromeTraceWriter::add_batch(const sched::BatchTrace& trace,
                                  std::uint64_t batch_id) {
  const std::int64_t t0 = cursor_us_;
  std::int64_t t = t0;

  // --- phase 1: ROT drain (workers) + key-set preparation (queuer span) ----
  std::vector<std::int64_t> avail(workers_ + 1, t);  // [0]=queuer, 1..W
  if (trace.prepare_total_us > 0) {
    event("prepare", 0, t, trace.prepare_total_us,
          "{\"us\":" + std::to_string(trace.prepare_total_us) + "}");
    avail[0] = t + trace.prepare_total_us;
  }
  for (const sched::TraceAttempt& a : trace.attempts) {
    if (!a.rot) continue;
    // Greedy: earliest-available worker track.
    unsigned best = 1;
    for (unsigned w = 2; w <= workers_; ++w) {
      if (avail[w] < avail[best]) best = w;
    }
    event("rot tx" + std::to_string(a.tx), best, avail[best], a.service_us,
          "{\"tx\":" + std::to_string(a.tx) + ",\"class\":\"rot\"}");
    avail[best] += std::max<std::int64_t>(a.service_us, 1);
  }
  for (unsigned w = 0; w <= workers_; ++w) t = std::max(t, avail[w]);

  // --- enqueue (queuer) ----------------------------------------------------
  if (trace.enqueue_us > 0) {
    event("enqueue", 0, t, trace.enqueue_us, "");
    t += trace.enqueue_us;
  }

  // --- update rounds: list-schedule each round's DAG -----------------------
  std::uint16_t max_round = 0;
  for (const sched::TraceAttempt& a : trace.attempts) {
    if (!a.rot) max_round = std::max(max_round, a.round);
  }
  for (std::uint16_t r = 0; r <= max_round; ++r) {
    std::fill(avail.begin(), avail.end(), t);
    // tx -> (finish time, worker track): the track feeds the flow arrows.
    std::unordered_map<sched::TxIdx, std::pair<std::int64_t, unsigned>> finish;
    bool any = false;
    for (const sched::TraceAttempt& a : trace.attempts) {
      if (a.rot || a.round != r) continue;
      any = true;
      std::int64_t ready = t;
      for (sched::TxIdx p : a.preds) {
        auto it = finish.find(p);
        if (it != finish.end()) ready = std::max(ready, it->second.first);
      }
      unsigned best = 1;
      for (unsigned w = 2; w <= workers_; ++w) {
        if (avail[w] < avail[best]) best = w;
      }
      const std::int64_t start = std::max(ready, avail[best]);
      const char* cls = a.failed ? "abort" : "commit";
      event(std::string(a.failed ? "abort tx" : "tx") + std::to_string(a.tx),
            best, start, a.service_us,
            "{\"tx\":" + std::to_string(a.tx) +
                ",\"round\":" + std::to_string(r) + ",\"outcome\":\"" + cls +
                "\"}");
      for (sched::TxIdx p : a.preds) {
        auto it = finish.find(p);
        if (it != finish.end()) {
          flow(it->second.second, it->second.first, best, start);
        }
      }
      const std::int64_t end = start + std::max<std::int64_t>(a.service_us, 1);
      avail[best] = end;
      finish[a.tx] = {end, best};
    }
    if (!any) continue;
    std::int64_t round_end = t;
    for (unsigned w = 0; w <= workers_; ++w) {
      round_end = std::max(round_end, avail[w]);
    }
    event("round " + std::to_string(r), 0, t, round_end - t, "");
    t = round_end;
  }

  // --- SF tail (queuer-serial) --------------------------------------------
  if (trace.sf_serial_us > 0) {
    event("sf tail", 0, t, trace.sf_serial_us, "");
    t += trace.sf_serial_us;
  }

  event("batch " + std::to_string(batch_id), workers_ + 1, t0, t - t0,
        "{\"attempts\":" + std::to_string(trace.attempts.size()) +
            ",\"rounds\":" + std::to_string(trace.rounds) + "}");
  cursor_us_ = t + 50;
  ++batches_;
}

std::string ChromeTraceWriter::json() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  // Track-name metadata events first.
  auto meta = [&](unsigned tid, const std::string& name) {
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
           std::to_string(tid) + ",\"args\":{\"name\":\"" + json_escape(name) +
           "\"}},\n";
  };
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"prognosticator engine\"}},\n";
  meta(0, "queuer");
  for (unsigned w = 1; w <= workers_; ++w) {
    meta(w, "worker " + std::to_string(w - 1));
  }
  meta(workers_ + 1, "batches");
  for (std::size_t i = 0; i < events_.size(); ++i) {
    out += events_[i];
    if (i + 1 < events_.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

}  // namespace prog::obs
