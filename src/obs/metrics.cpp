#include "obs/metrics.hpp"

#include <algorithm>
#include <functional>

#include "common/check.hpp"

namespace prog::obs {

const char* to_string(MetricKind k) noexcept {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

std::string canonical_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += "=\"";
    for (char c : labels[i].second) {
      if (c == '\\' || c == '"') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
  }
  return out;
}

double snapshot_quantile(const MetricSnapshot& h, double q) noexcept {
  if (h.count == 0 || h.buckets.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(h.count);
  std::uint64_t seen = 0;
  for (unsigned i = 0; i < h.buckets.size(); ++i) {
    seen += h.buckets[i];
    if (static_cast<double>(seen) >= target && h.buckets[i] > 0) {
      return static_cast<double>(Histogram::bucket_bound(i));
    }
  }
  return static_cast<double>(
      Histogram::bucket_bound(static_cast<unsigned>(h.buckets.size()) - 1));
}

Registry::Instrument& Registry::instrument(const std::string& name,
                                           const std::string& help,
                                           MetricKind kind, Determinism det,
                                           const Labels& labels) {
  PROG_CHECK_MSG(!name.empty(), "metric name must be non-empty");
  PROG_CHECK_MSG(kind == MetricKind::kCounter ||
                     det == Determinism::kTimingDependent,
                 "only counters may be registered deterministic (they alone "
                 "restore exactly from checkpoints)");
  const std::string ls = canonical_labels(labels);
  Shard& sh = shards_[std::hash<std::string>{}(name) % kShards];
  std::scoped_lock lock(sh.mu);
  Family* fam = nullptr;
  for (auto& f : sh.families) {
    if (f->name == name) {
      fam = f.get();
      break;
    }
  }
  if (fam == nullptr) {
    sh.families.push_back(std::make_unique<Family>());
    fam = sh.families.back().get();
    fam->name = name;
    fam->help = help;
    fam->kind = kind;
    fam->det = det;
  } else {
    PROG_CHECK_MSG(fam->kind == kind,
                   "metric family re-registered with a different kind: " +
                       name);
  }
  for (auto& inst : fam->instruments) {
    if (inst.labels == ls) return inst;
  }
  fam->instruments.emplace_back();
  Instrument& inst = fam->instruments.back();
  inst.labels = ls;
  switch (kind) {
    case MetricKind::kCounter:
      inst.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      inst.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      inst.histogram = std::make_unique<Histogram>();
      break;
  }
  return inst;
}

Counter& Registry::counter(const std::string& name, const std::string& help,
                           Determinism det, const Labels& labels) {
  return *instrument(name, help, MetricKind::kCounter, det, labels).counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help,
                       const Labels& labels) {
  return *instrument(name, help, MetricKind::kGauge,
                     Determinism::kTimingDependent, labels)
              .gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& help,
                               const Labels& labels) {
  return *instrument(name, help, MetricKind::kHistogram,
                     Determinism::kTimingDependent, labels)
              .histogram;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::vector<MetricSnapshot> out;
  for (const Shard& sh : shards_) {
    std::scoped_lock lock(sh.mu);
    for (const auto& fam : sh.families) {
      for (const auto& inst : fam->instruments) {
        MetricSnapshot s;
        s.name = fam->name;
        s.help = fam->help;
        s.kind = fam->kind;
        s.det = fam->det;
        s.labels = inst.labels;
        switch (fam->kind) {
          case MetricKind::kCounter:
            s.value = static_cast<std::int64_t>(inst.counter->value());
            break;
          case MetricKind::kGauge:
            s.value = inst.gauge->value();
            break;
          case MetricKind::kHistogram: {
            s.buckets.resize(Histogram::kBuckets);
            for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
              s.buckets[i] = inst.histogram->bucket(i);
            }
            std::uint64_t c = 0;
            for (std::uint64_t b : s.buckets) c += b;
            s.count = c;
            s.sum = inst.histogram->sum();
            break;
          }
        }
        out.push_back(std::move(s));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
  return out;
}

std::vector<MetricSnapshot> Registry::deterministic_snapshot() const {
  std::vector<MetricSnapshot> all = snapshot();
  std::erase_if(all,
                [](const MetricSnapshot& s) { return !s.deterministic(); });
  return all;
}

std::string Registry::serialize_deterministic() const {
  std::string out;
  for (const MetricSnapshot& s : deterministic_snapshot()) {
    out += s.name;
    if (!s.labels.empty()) {
      out += '{';
      out += s.labels;
      out += '}';
    }
    out += ' ';
    out += std::to_string(s.value);
    out += '\n';
  }
  return out;
}

std::size_t Registry::families() const {
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::scoped_lock lock(sh.mu);
    n += sh.families.size();
  }
  return n;
}

}  // namespace prog::obs
