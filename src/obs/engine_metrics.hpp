// Pre-resolved metric handles for the execution engine (DESIGN.md §9).
//
// The engine resolves every family/label combination once at construction
// (registration takes the shard mutex) and then updates raw pointers — the
// hot-path cost of telemetry is a relaxed atomic add per event, and zero
// when EngineConfig::telemetry is off (the engine holds no bundle at all).
//
// Class indexing matches sym::TxClass: 0 = rot, 1 = it, 2 = dt. The bundle
// deliberately depends only on obs so it can also be used standalone (e.g.
// the recovery layer rebuilds a registry from carried EngineStats to
// serialize a replica's deterministic counter snapshot).
#pragma once

#include "obs/metrics.hpp"

namespace prog::obs {

inline constexpr unsigned kTxClasses = 3;
inline const char* const kTxClassNames[kTxClasses] = {"rot", "it", "dt"};

struct EngineMetrics {
  // --- deterministic counters (pure functions of the batch sequence) -------
  Counter* batches = nullptr;
  Counter* committed[kTxClasses] = {};       ///< commits incl. rollbacks
  Counter* rolled_back[kTxClasses] = {};     ///< AbortIf business rollbacks
  Counter* validation_aborts[kTxClasses] = {};
  Counter* rounds = nullptr;                 ///< failed-transaction rounds
  Counter* mf_fallback_txns = nullptr;
  Counter* mf_fallback_batches = nullptr;

  // --- timing-dependent counters -------------------------------------------
  /// IT prediction-memo outcomes (EngineConfig::it_memo). Timing-dependent:
  /// the hit distribution depends on which participant thread claimed which
  /// prepare ticket, even though the predictions themselves are identical.
  Counter* it_memo_hits = nullptr;
  Counter* it_memo_misses = nullptr;

  // --- timing-dependent histograms (µs unless noted) -----------------------
  Histogram* txn_latency_us[kTxClasses] = {};  ///< per-attempt service time
  Histogram* batch_wall_us = nullptr;
  Histogram* phase_prepare_us = nullptr;   ///< phase 1: ROTs + key-set prep
  Histogram* phase_enqueue_us = nullptr;   ///< lock-table population
  Histogram* phase_exec_us = nullptr;      ///< main update round
  Histogram* phase_validate_us = nullptr;  ///< DT pivot re-validation, summed
  Histogram* phase_mf_us = nullptr;        ///< MF re-execution rounds, summed
  Histogram* phase_sf_us = nullptr;        ///< serial SF tail
  Histogram* batch_size_txns = nullptr;    ///< requests per batch
  Histogram* locks_enqueued = nullptr;     ///< lock-table entries per batch

  // --- occupancy gauges (sampled at phase boundaries) ----------------------
  Gauge* lock_table_depth = nullptr;  ///< entries after lock population
  Gauge* ready_queue_depth = nullptr; ///< ready txns after lock population

  /// Registers (idempotently) every engine family in `reg` and returns the
  /// resolved handle bundle. Safe to call for multiple engines sharing a
  /// registry — they then share the instruments.
  static EngineMetrics create(Registry& reg);
};

}  // namespace prog::obs
