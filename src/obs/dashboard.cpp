#include "obs/dashboard.hpp"

#include "obs/engine_metrics.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace prog::obs {

namespace {

std::string fmt_si(double v) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  if (std::fabs(v) >= 1e6) {
    os.precision(2);
    os << v / 1e6 << "M";
  } else if (std::fabs(v) >= 1e3) {
    os.precision(1);
    os << v / 1e3 << "k";
  } else {
    os.precision(v == std::floor(v) ? 0 : 1);
    os << v;
  }
  return os.str();
}

std::string fmt_ms(double us) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  os << us / 1000.0 << "ms";
  return os.str();
}

std::string pct(double num, double den) {
  if (den <= 0) return "-";
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << 100.0 * num / den << "%";
  return os.str();
}

/// Quantile over a *windowed* (delta) histogram.
double delta_quantile(const std::vector<std::uint64_t>& cur,
                      const std::vector<std::uint64_t>& prev, double q) {
  MetricSnapshot tmp;
  tmp.kind = MetricKind::kHistogram;
  tmp.buckets.resize(cur.size());
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < cur.size(); ++i) {
    const std::uint64_t p = i < prev.size() ? prev[i] : 0;
    tmp.buckets[i] = cur[i] >= p ? cur[i] - p : 0;
    n += tmp.buckets[i];
  }
  tmp.count = n;
  return snapshot_quantile(tmp, q);
}

}  // namespace

Dashboard::Table Dashboard::index(const std::vector<MetricSnapshot>& snap) {
  Table t;
  for (const MetricSnapshot& s : snap) {
    Cell c;
    c.value = s.value;
    c.count = s.count;
    c.sum = s.sum;
    c.buckets = s.buckets;
    t.emplace(s.name + '|' + s.labels, std::move(c));
  }
  return t;
}

const Dashboard::Cell* Dashboard::cell(const std::string& key) const {
  auto it = cur_.find(key);
  return it == cur_.end() ? nullptr : &it->second;
}

const Dashboard::Cell* Dashboard::prev_cell(const std::string& key) const {
  auto it = prev_.find(key);
  return it == prev_.end() ? nullptr : &it->second;
}

void Dashboard::tick(const std::vector<MetricSnapshot>& snap,
                     double elapsed_s) {
  prev_ = std::move(cur_);
  cur_ = index(snap);
  elapsed_s_ = elapsed_s;
  ++ticks_;
}

std::string Dashboard::render() const {
  auto val = [&](const std::string& key) -> std::int64_t {
    const Cell* c = cell(key);
    return c == nullptr ? 0 : c->value;
  };
  auto delta = [&](const std::string& key) -> double {
    const Cell* c = cell(key);
    if (c == nullptr) return 0;
    const Cell* p = prev_cell(key);
    return static_cast<double>(c->value - (p == nullptr ? 0 : p->value));
  };
  auto hist_delta = [&](const std::string& key, double& cnt, double& sum) {
    const Cell* c = cell(key);
    const Cell* p = prev_cell(key);
    cnt = c == nullptr
              ? 0
              : static_cast<double>(c->count - (p == nullptr ? 0 : p->count));
    sum = c == nullptr
              ? 0
              : static_cast<double>(c->sum - (p == nullptr ? 0 : p->sum));
  };

  const double dt = elapsed_s_ > 0 ? elapsed_s_ : 1.0;
  double committed = 0, aborts = 0;
  double by_class[kTxClasses] = {};
  for (unsigned c = 0; c < kTxClasses; ++c) {
    const std::string cls = std::string("class=\"") + kTxClassNames[c] + '"';
    by_class[c] = delta("engine_txn_committed_total|" + cls);
    committed += by_class[c];
    aborts += delta("engine_txn_validation_aborts_total|" + cls);
  }
  const double batches = delta("engine_batches_total|");
  const double rounds = delta("engine_rounds_total|");

  double p50 = 0, p99 = 0;
  {
    const Cell* c = cell("engine_batch_wall_us|");
    const Cell* p = prev_cell("engine_batch_wall_us|");
    static const std::vector<std::uint64_t> kEmpty;
    if (c != nullptr) {
      const auto& pb = p == nullptr ? kEmpty : p->buckets;
      p50 = delta_quantile(c->buckets, pb, 0.50);
      p99 = delta_quantile(c->buckets, pb, 0.99);
    }
  }

  std::vector<std::string> lines;
  lines.push_back("batches  " + fmt_si(batches) + "  (" +
                  fmt_si(batches / dt) + "/s)    txns  " + fmt_si(committed) +
                  "  (" + fmt_si(committed / dt) + "/s)");
  lines.push_back("batch latency  p50 " + fmt_ms(p50) + "   p99 " +
                  fmt_ms(p99));
  lines.push_back(
      "aborts  " + pct(aborts, committed + aborts) + "    rounds/batch  " +
      (batches > 0 ? fmt_si(rounds / batches) : std::string("-")));
  lines.push_back("commit mix  rot " + pct(by_class[0], committed) + "  it " +
                  pct(by_class[1], committed) + "  dt " +
                  pct(by_class[2], committed));
  {
    std::string phases = "phase us/batch ";
    for (const char* ph :
         {"prepare", "enqueue", "execute", "validate", "mf_rounds",
          "sf_tail"}) {
      double cnt = 0, sum = 0;
      hist_delta(std::string("engine_phase_us|phase=\"") + ph + '"', cnt,
                 sum);
      const double denom = batches > 0 ? batches : 1;
      phases += std::string(" ") + (ph[0] == 'm' ? "mf" : ph) + " " +
                fmt_si(sum / denom);
    }
    lines.push_back(phases);
  }
  lines.push_back(
      "queues  lock-table " + fmt_si(static_cast<double>(
                                  val("engine_lock_table_depth|"))) +
      "   ready " +
      fmt_si(static_cast<double>(val("engine_ready_queue_depth|"))));
  // Replica section (present only when consensus families are registered).
  if (cell("replica_batch_lag|") != nullptr ||
      cell("replica_checkpoints_total|") != nullptr) {
    lines.push_back(
        "replicas  lag " + fmt_si(static_cast<double>(
                               val("replica_batch_lag|"))) +
        "   checkpoints " +
        fmt_si(static_cast<double>(val("replica_checkpoints_total|"))) +
        "   installs " +
        fmt_si(static_cast<double>(val("replica_snapshot_installs_total|"))) +
        "   quarantines " +
        fmt_si(static_cast<double>(val("replica_quarantines_total|"))));
  }
  // Pipelined-apply section (DESIGN.md §14): configured depth plus the
  // windowed stall-cause breakdown. The three causes are disjoint by
  // construction — snapshot (prepare waited on the previous batch's
  // boundary), fsync (a checkpoint waited on the durable watermark), and
  // queue-full (an apply blocked on the commit-queue window).
  if (cell("replica_pipeline_depth|") != nullptr) {
    const double s_snap = delta("replica_pipeline_stall_snapshot_total|");
    const double s_fsync = delta("replica_pipeline_stall_fsync_total|");
    const double s_qfull = delta("replica_pipeline_stall_queue_full_total|");
    const double stalls = s_snap + s_fsync + s_qfull;
    lines.push_back(
        "pipeline  depth " +
        fmt_si(static_cast<double>(val("replica_pipeline_depth|"))) +
        "   stalls " + fmt_si(stalls) + "  (snapshot " + pct(s_snap, stalls) +
        "  fsync " + pct(s_fsync, stalls) + "  queue-full " +
        pct(s_qfull, stalls) + ")");
  }

  std::size_t width = title_.size() + 4;
  for (const std::string& l : lines) width = std::max(width, l.size() + 4);
  std::string out = "+- " + title_ + ' ';
  out += std::string(width - title_.size() - 4, '-');
  out += "+\n";
  for (const std::string& l : lines) {
    out += "| " + l + std::string(width - l.size() - 3, ' ') + " |\n";
  }
  out += '+' + std::string(width - 1, '-') + "+\n";
  return out;
}

}  // namespace prog::obs
