// Public facade: a single-replica deterministic database instance.
//
// Usage:
//   db::Database db(config);
//   ProcId transfer = db.register_procedure(build_transfer());  // runs SE
//   ... load initial state via db.store() (batch 0) ...
//   db.finalize();
//   BatchResult r = db.execute(batch);   // one totally-ordered batch
//
// register_procedure runs the offline symbolic analysis and keeps the
// profile; finalize() constructs the execution engine. For replication,
// create one Database per replica with the same procedures and feed every
// replica the same batch sequence (see consensus::ReplicatedDb).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/engine.hpp"
#include "store/store.hpp"
#include "sym/symexec.hpp"

namespace prog::db {

class Database {
 public:
  explicit Database(sched::EngineConfig config = {});
  ~Database();

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers a stored procedure: runs the offline SE analysis and stores
  /// the transaction profile. Must be called before finalize().
  sched::ProcId register_procedure(lang::Proc proc,
                                   const sym::Profiler::Options& opts = {});

  /// Registers a pre-analyzed procedure (profiles are immutable and may be
  /// shared across database instances — e.g. every replica, or benchmark
  /// trials stamped from a template).
  sched::ProcId register_procedure_shared(
      std::shared_ptr<const lang::Proc> proc,
      std::shared_ptr<const sym::TxProfile> profile);

  /// Builds the execution engine. Loading initial state through store()
  /// must happen before the first execute() (it is tagged batch 0).
  void finalize();

  /// Executes one totally-ordered batch (runs the queuer on this thread).
  sched::BatchResult execute(std::vector<sched::TxRequest> requests);

  /// Like execute(), additionally recording the scheduling trace used by
  /// the benchutil throughput model.
  sched::BatchResult execute_traced(std::vector<sched::TxRequest> requests,
                                    sched::BatchTrace* trace);

  /// Stage P of the pipelined replica apply (DESIGN.md §14): classify,
  /// predict and populate the batch's lock-table bank without executing.
  /// Pair with execute_prepared(); outcome-identical to execute().
  void prepare_batch(std::vector<sched::TxRequest> requests);

  /// Stage X: runs the prepared batch to completion.
  sched::BatchResult execute_prepared();

  store::VersionedStore& store() noexcept { return store_; }
  const store::VersionedStore& store() const noexcept { return store_; }

  const lang::Proc& procedure(sched::ProcId id) const;
  const sym::TxProfile& profile(sched::ProcId id) const;
  sched::ProcId find_procedure(const std::string& name) const;
  std::size_t procedure_count() const noexcept { return procs_.size(); }

  /// Commutative hash of the full visible state (replica comparison).
  std::uint64_t state_hash() const { return store_.state_hash(); }

  /// Batches executed so far (0 before the first execute()); also the
  /// newest store version tag, which is where a state-image restore writes.
  BatchId applied_batches() const;

  /// Cumulative engine counters (empty before finalize()). The recovery
  /// layer folds these into its per-replica bookkeeping before a rebuild so
  /// they survive crash/restore cycles ("resume-safe").
  sched::EngineStats engine_stats() const;

  /// Reconciles the visible store state to `image` (store::serialize_visible
  /// format), tagged with the current applied-batch watermark. Used by
  /// replica recovery: restore a checkpoint, then replay the batch suffix.
  void restore_state(const std::string& image);

  /// Client-side key-set prediction (paper, Section III-C): for independent
  /// transactions the key-set is a pure function of the inputs, so clients
  /// can compute it and ship it with the request. Returns nullptr for
  /// ROT/DT procedures. Attach the result to TxRequest::client_pred and set
  /// EngineConfig::accept_client_predictions.
  std::shared_ptr<const sym::Prediction> predict_client(
      sched::ProcId id, const lang::TxInput& input) const;

  /// Engine telemetry registry, or nullptr before finalize() or when
  /// EngineConfig::telemetry is off (DESIGN.md §9).
  const obs::Registry* telemetry() const noexcept {
    return engine_ != nullptr ? engine_->telemetry() : nullptr;
  }
  obs::Registry* telemetry() noexcept {
    return engine_ != nullptr ? engine_->telemetry() : nullptr;
  }

  const sched::EngineConfig& config() const noexcept { return config_; }
  bool finalized() const noexcept { return engine_ != nullptr; }

  /// The execution engine (diagnostics/tests). Only valid after finalize().
  const sched::Engine& engine() const { return *engine_; }

 private:
  sched::EngineConfig config_;
  store::VersionedStore store_;
  std::vector<std::shared_ptr<const lang::Proc>> procs_;
  std::vector<std::shared_ptr<const sym::TxProfile>> profiles_;
  std::vector<sched::ProcEntry> entries_;
  std::unique_ptr<sched::Engine> engine_;
};

}  // namespace prog::db
