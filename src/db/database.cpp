#include "db/database.hpp"

#include "analysis/dataflow.hpp"
#include "common/check.hpp"
#include "lang/bytecode/bytecode.hpp"
#include "store/snapshot.hpp"

namespace prog::db {

Database::Database(sched::EngineConfig config) : config_(config) {}

Database::~Database() = default;

sched::ProcId Database::register_procedure(
    lang::Proc proc, const sym::Profiler::Options& opts) {
  // Normally a no-op (ProcBuilder::build already compiled); covers Procs
  // assembled by other paths so registration always yields VM-ready code.
  bytecode::ensure_compiled(proc);
  auto owned = std::make_shared<const lang::Proc>(std::move(proc));
  std::shared_ptr<const sym::TxProfile> profile =
      sym::Profiler::profile(*owned, opts);
  return register_procedure_shared(std::move(owned), std::move(profile));
}

sched::ProcId Database::register_procedure_shared(
    std::shared_ptr<const lang::Proc> proc,
    std::shared_ptr<const sym::TxProfile> profile) {
  PROG_CHECK_MSG(engine_ == nullptr,
                 "register_procedure after finalize() is not allowed");
  PROG_CHECK(proc != nullptr && profile != nullptr);
  PROG_CHECK_MSG(&profile->proc() == proc.get(),
                 "profile was built for a different procedure instance");
  for (const auto& p : procs_) {
    if (p->name == proc->name) {
      throw UsageError("duplicate procedure name: " + proc->name);
    }
  }
  // txlint differential oracle: the static dataflow classifier and the
  // symbolic profile are independent derivations of the same facts; a
  // disagreement a sound analysis cannot produce means one of them is
  // broken, and scheduling on a corrupt profile would silently diverge.
  analysis::classify_checked(*proc, *profile);
  procs_.push_back(std::move(proc));
  profiles_.push_back(std::move(profile));
  entries_.push_back({procs_.back().get(), profiles_.back().get()});
  return static_cast<sched::ProcId>(entries_.size() - 1);
}

void Database::finalize() {
  PROG_CHECK_MSG(engine_ == nullptr, "finalize() called twice");
  engine_ = std::make_unique<sched::Engine>(store_, entries_, config_);
}

sched::BatchResult Database::execute(
    std::vector<sched::TxRequest> requests) {
  PROG_CHECK_MSG(engine_ != nullptr, "execute() before finalize()");
  return engine_->run_batch(std::move(requests));
}

void Database::prepare_batch(std::vector<sched::TxRequest> requests) {
  PROG_CHECK_MSG(engine_ != nullptr, "prepare_batch() before finalize()");
  engine_->prepare_batch(std::move(requests));
}

sched::BatchResult Database::execute_prepared() {
  PROG_CHECK_MSG(engine_ != nullptr, "execute_prepared() before finalize()");
  return engine_->execute_prepared();
}

sched::BatchResult Database::execute_traced(
    std::vector<sched::TxRequest> requests, sched::BatchTrace* trace) {
  PROG_CHECK_MSG(engine_ != nullptr, "execute_traced() before finalize()");
  engine_->set_trace_sink(trace);
  sched::BatchResult r = engine_->run_batch(std::move(requests));
  engine_->set_trace_sink(nullptr);
  return r;
}

BatchId Database::applied_batches() const {
  return engine_ != nullptr ? engine_->next_batch() - 1 : 0;
}

sched::EngineStats Database::engine_stats() const {
  return engine_ != nullptr ? engine_->stats() : sched::EngineStats{};
}

void Database::restore_state(const std::string& image) {
  store::restore_visible(store_, image, applied_batches());
}

const lang::Proc& Database::procedure(sched::ProcId id) const {
  PROG_CHECK(id < procs_.size());
  return *procs_[id];
}

const sym::TxProfile& Database::profile(sched::ProcId id) const {
  PROG_CHECK(id < profiles_.size());
  return *profiles_[id];
}

namespace {
/// Clients hold no data: an IT prediction must never touch the store.
class NoDataView final : public store::ReadView {
 public:
  store::RowPtr get(TKey) const override {
    throw InvariantError(
        "client-side prediction attempted a data-store read (not an IT?)");
  }
};
}  // namespace

std::shared_ptr<const sym::Prediction> Database::predict_client(
    sched::ProcId id, const lang::TxInput& input) const {
  const sym::TxProfile& prof = profile(id);
  if (prof.klass() != sym::TxClass::kIndependent) return nullptr;
  NoDataView view;
  return std::make_shared<const sym::Prediction>(prof.predict(input, view));
}

sched::ProcId Database::find_procedure(const std::string& name) const {
  for (sched::ProcId i = 0; i < procs_.size(); ++i) {
    if (procs_[i]->name == name) return i;
  }
  throw UsageError("unknown procedure: " + name);
}

}  // namespace prog::db
