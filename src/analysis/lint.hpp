// txlint pass 2 — determinism / SE-friendliness lint.
//
// Walks a procedure's AST and emits structured diagnostics for patterns
// that either break the offline-analysis contract or blow up the symbolic
// executor:
//
//   uninit-var           (error)   a variable may be read before any
//                                  assignment on some path
//   mixed-branch-pivots  (error)   a key expression mixes row handles
//                                  obtained in mutually exclusive branches
//                                  of the same conditional — at least one
//                                  of them is never fresh
//   loop-unbounded       (error)   a loop has no positive declared static
//                                  bound (`max_iters`), so SE cannot bound
//                                  its unrolling; promoted from warning to
//                                  error when the trip count additionally
//                                  depends on store reads
//   loop-data-trip       (warning) a loop's trip count depends on store
//                                  reads (each possible count is a separate
//                                  path-set; bound it by a constant)
//   dead-write           (warning) a PUT is completely overwritten by a
//                                  later PUT/DEL to the same key with no
//                                  intervening read of that table
//   fork-no-access       (warning) the relevance pass forks a branch whose
//                                  subtree performs no accesses (it only
//                                  assigns RWS-relevant variables) —
//                                  restructure to avoid path explosion
//
// Statements are located by a structural path (e.g. `body[2].then[0]`)
// since the DSL has no source positions.
#pragma once

#include <string>
#include <vector>

#include "lang/ast.hpp"

namespace prog::analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

const char* to_string(Severity s) noexcept;

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string check;     // e.g. "uninit-var"
  std::string location;  // structural path, e.g. "body[2].then[0]"
  std::string message;
  std::string fix_hint;
};

/// Runs every lint check over `proc`. Diagnostics are emitted in document
/// order (deterministic), errors and warnings interleaved.
std::vector<Diagnostic> lint(const lang::Proc& proc);

/// True when any diagnostic has error severity.
bool has_errors(const std::vector<Diagnostic>& diags);

/// Stable human-readable rendering (one diagnostic per line, plus a hint
/// line when present) — the golden-test format and the CLI output.
std::string render(const lang::Proc& proc,
                   const std::vector<Diagnostic>& diags);

}  // namespace prog::analysis
