// txlint pass 3 — static conflict matrix over transaction *types*.
//
// For every registered procedure the dataflow classifier (dataflow.hpp)
// yields a table-level footprint: the tables any execution may touch and
// the subset it may write. Two transaction types can conflict only when one
// may write a table the other may touch. Because the footprints come from
// the AST (not from the explored profile tree) they cover *every* path,
// including ones a capped symbolic analysis never reached — so decisions
// based on them are sound for recon-predicted and incomplete-profile
// transactions too.
//
// The scheduler consumes the per-type footprints to elide lock-table
// traffic: within one enqueue round, a transaction's key needs a lock entry
// only if (a) its type may write the key's table and some *other*
// transaction of the round may touch it, or (b) its type only reads the
// table but some other transaction of the round may write it. This strictly
// generalizes the paper's ROT bypass and the engine's immutable-table
// elision from "no procedure ever writes T" to "no transaction in this
// round writes T".
//
// The matrix itself (pairwise may-conflict bits) is the shippable offline
// artifact: serialized next to the profiles (sym/serialize) and printed by
// tools/txlint.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lang/ast.hpp"

namespace prog::analysis {

/// Sorted, deduplicated table-level access footprint of one procedure.
struct TableFootprint {
  std::vector<TableId> touched;  // read or written on some path
  std::vector<TableId> written;  // written (PUT/DEL) on some path

  bool touches(TableId t) const noexcept;
  bool writes(TableId t) const noexcept;
};

/// Symmetric boolean matrix over procedure types: `may_conflict(i, j)` is
/// true iff type i may write a table type j touches, or vice versa. The
/// diagonal is true for any type that writes at all (two instances of the
/// same update type always conflict at table granularity).
class ConflictMatrix {
 public:
  ConflictMatrix() = default;

  /// Appends one procedure type. Footprint vectors are sorted/deduplicated
  /// on entry. Returns the row index.
  std::size_t add(std::string name, TableFootprint fp);

  /// Builds the matrix by running the dataflow classifier over each proc.
  static ConflictMatrix from_procs(
      const std::vector<const lang::Proc*>& procs);

  std::size_t size() const noexcept { return names_.size(); }
  const std::string& name(std::size_t i) const { return names_.at(i); }
  const TableFootprint& footprint(std::size_t i) const { return fps_.at(i); }

  bool may_conflict(std::size_t i, std::size_t j) const {
    return bits_.at(i * names_.size() + j);
  }

  /// Line-oriented text encoding (round-trips via deserialize):
  ///   conflict-matrix <format-version>
  ///   proc <name> touched <n> <t>... written <m> <t>...
  ///   end
  std::string serialize() const;

  /// Parses the text form. Throws UsageError on malformed input.
  static ConflictMatrix deserialize(const std::string& text);

  /// Human-readable grid for the CLI: one row per type, `X` = may conflict,
  /// `.` = provably disjoint.
  std::string to_string() const;

 private:
  void rebuild_bits();

  std::vector<std::string> names_;
  std::vector<TableFootprint> fps_;
  std::vector<bool> bits_;  // size() * size(), row-major
};

}  // namespace prog::analysis
