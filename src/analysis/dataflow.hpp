// txlint pass 1 — static taint/dataflow transaction classifier.
//
// Predicts a procedure's TxClass (ROT/IT/DT) and table-level read/write
// footprint directly from the AST, *without* running symbolic execution.
// The algorithm is a backward slice from the RWS-determining expressions:
//
//   1. collect sinks: every GET/PUT/DEL key expression, plus (implicit
//      flows) every enclosing branch condition and enclosing loop bound of
//      an access;
//   2. seed the relevant-variable set from the variables and row handles
//      those sinks mention;
//   3. propagate to fixpoint through assignments (rhs + enclosing control
//      predicates of the assignment) and loop-variable bindings.
//
// A procedure is DT iff it writes and some GET handle ends up relevant —
// i.e. a store-read value can shape the read/write-set; IT iff it writes
// with no relevant handle; ROT iff it never writes.
//
// This deliberately re-derives what `lang::analyze_relevance` plus the
// symbolic executor compute through a different algorithm, so it can serve
// as a *differential oracle*: `cross_check` hard-errors when the static
// summary and a symbolic `sym::TxProfile` disagree in a way sound analyses
// cannot (see the function comment). The offline pipeline
// (`db::Database::register_procedure`) runs the cross-check on every
// registration.
#pragma once

#include <vector>

#include "lang/ast.hpp"
#include "sym/profile.hpp"

namespace prog::analysis {

/// Product of the static classifier.
struct StaticSummary {
  sym::TxClass klass = sym::TxClass::kIndependent;
  std::vector<TableId> tables_touched;  // sorted, deduplicated
  std::vector<TableId> tables_written;  // sorted, deduplicated (PUT/DEL)
  /// GET handles whose row values can influence the RWS (static pivots).
  std::vector<VarId> pivot_handles;  // sorted
};

/// Runs the taint/dataflow classification. Pure function of the AST.
StaticSummary classify(const lang::Proc& proc);

/// Total order used by the oracle: a sound static analysis may only
/// over-approximate dependency (ROT < IT < DT).
inline int klass_rank(sym::TxClass c) noexcept {
  return static_cast<int>(c);
}

/// Differential oracle between the static summary and the SE profile.
/// Throws InvariantError when they disagree in a way that cannot be
/// explained by SE's extra precision:
///   - the static class ranks *below* the profile class (a sound static
///     analysis must over-approximate dependency);
///   - the profile's table footprint is not a subset of the static one;
///   - the classes differ although SE reports no precision-gaining events
///     (no solver-pruned paths and no same-RWS subtree merges).
/// Incomplete (state-capped) profiles are exempt: their class is forced to
/// DT regardless of the code.
void cross_check(const lang::Proc& proc, const StaticSummary& summary,
                 const sym::TxProfile& profile);

/// classify() + cross_check() in one step.
StaticSummary classify_checked(const lang::Proc& proc,
                               const sym::TxProfile& profile);

}  // namespace prog::analysis
