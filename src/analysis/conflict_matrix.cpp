#include "analysis/conflict_matrix.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/dataflow.hpp"
#include "common/check.hpp"

namespace prog::analysis {

namespace {

void normalize(std::vector<TableId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

bool intersects(const std::vector<TableId>& a, const std::vector<TableId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

void write_tables(std::ostringstream& os, const std::vector<TableId>& ts) {
  os << ts.size();
  for (TableId t : ts) os << ' ' << t;
}

}  // namespace

bool TableFootprint::touches(TableId t) const noexcept {
  return std::binary_search(touched.begin(), touched.end(), t);
}

bool TableFootprint::writes(TableId t) const noexcept {
  return std::binary_search(written.begin(), written.end(), t);
}

std::size_t ConflictMatrix::add(std::string name, TableFootprint fp) {
  normalize(fp.touched);
  normalize(fp.written);
  PROG_CHECK_MSG(
      std::includes(fp.touched.begin(), fp.touched.end(), fp.written.begin(),
                    fp.written.end()),
      "footprint written-set must be a subset of its touched-set");
  names_.push_back(std::move(name));
  fps_.push_back(std::move(fp));
  rebuild_bits();
  return names_.size() - 1;
}

ConflictMatrix ConflictMatrix::from_procs(
    const std::vector<const lang::Proc*>& procs) {
  ConflictMatrix m;
  for (const lang::Proc* p : procs) {
    PROG_CHECK_MSG(p != nullptr, "null Proc in ConflictMatrix::from_procs");
    const StaticSummary s = classify(*p);
    m.add(p->name, TableFootprint{s.tables_touched, s.tables_written});
  }
  return m;
}

void ConflictMatrix::rebuild_bits() {
  const std::size_t n = names_.size();
  bits_.assign(n * n, false);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const bool c = intersects(fps_[i].written, fps_[j].touched) ||
                     intersects(fps_[j].written, fps_[i].touched);
      bits_[i * n + j] = c;
      bits_[j * n + i] = c;
    }
  }
}

std::string ConflictMatrix::serialize() const {
  std::ostringstream os;
  os << "conflict-matrix 1\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << "proc " << names_[i] << " touched ";
    write_tables(os, fps_[i].touched);
    os << " written ";
    write_tables(os, fps_[i].written);
    os << '\n';
  }
  os << "end\n";
  return os.str();
}

ConflictMatrix ConflictMatrix::deserialize(const std::string& text) {
  std::istringstream in(text);
  auto bad = [](const std::string& why) -> void {
    throw UsageError("ConflictMatrix::deserialize: " + why);
  };
  std::string line;
  if (!std::getline(in, line) || line != "conflict-matrix 1") {
    bad("missing/unsupported header");
  }
  ConflictMatrix m;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::istringstream ls(line);
    std::string tok, name;
    if (!(ls >> tok >> name) || tok != "proc") bad("expected 'proc' record");
    TableFootprint fp;
    auto read_tables = [&](const char* keyword, std::vector<TableId>& out) {
      std::size_t n = 0;
      if (!(ls >> tok >> n) || tok != keyword) {
        bad(std::string("expected '") + keyword + "' list");
      }
      for (std::size_t i = 0; i < n; ++i) {
        TableId t = 0;
        if (!(ls >> t)) bad("truncated table list");
        out.push_back(t);
      }
    };
    read_tables("touched", fp.touched);
    read_tables("written", fp.written);
    m.add(std::move(name), std::move(fp));
  }
  if (!saw_end) bad("missing 'end' trailer");
  return m;
}

std::string ConflictMatrix::to_string() const {
  std::ostringstream os;
  std::size_t w = 4;
  for (const std::string& n : names_) w = std::max(w, n.size());
  os << "conflict matrix (" << names_.size() << " transaction types; X = may"
     << " conflict, . = provably disjoint)\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << "  " << names_[i]
       << std::string(w - names_[i].size() + 1, ' ');
    for (std::size_t j = 0; j < names_.size(); ++j) {
      os << (may_conflict(i, j) ? " X" : " .");
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace prog::analysis
