#include "analysis/lint.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"
#include "lang/relevance.hpp"

namespace prog::analysis {

namespace {

using lang::EKind;
using lang::ExprId;
using lang::Proc;
using lang::SExpr;
using lang::SKind;
using lang::Stmt;

template <typename Fn>
void each_var(const Proc& proc, ExprId id, const Fn& fn) {
  if (id == lang::kNoExpr) return;
  const SExpr& e = proc.expr(id);
  switch (e.kind) {
    case EKind::kConst:
    case EKind::kParam:
      return;
    case EKind::kParamElem:
      each_var(proc, e.a, fn);
      return;
    case EKind::kVar:
    case EKind::kField:
      fn(e.var, e.kind == EKind::kField);
      return;
    default:
      each_var(proc, e.a, fn);
      each_var(proc, e.b, fn);
      return;
  }
}

/// Structural equality of two expression trees (same arena).
bool expr_equal(const Proc& proc, ExprId a, ExprId b) {
  if (a == b) return true;
  if (a == lang::kNoExpr || b == lang::kNoExpr) return false;
  const SExpr& ea = proc.expr(a);
  const SExpr& eb = proc.expr(b);
  if (ea.kind != eb.kind || ea.cval != eb.cval || ea.param != eb.param ||
      ea.var != eb.var || ea.field != eb.field) {
    return false;
  }
  return expr_equal(proc, ea.a, eb.a) && expr_equal(proc, ea.b, eb.b);
}

bool contains_access(const std::vector<Stmt>& block) {
  for (const Stmt& s : block) {
    switch (s.kind) {
      case SKind::kGet:
      case SKind::kPut:
      case SKind::kDel:
        return true;
      case SKind::kIf:
        if (contains_access(s.body) || contains_access(s.else_body)) {
          return true;
        }
        break;
      case SKind::kFor:
        if (contains_access(s.body)) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

/// Forward store-taint: a scalar variable is tainted when its value derives
/// (through assignments or loop bounds) from a row field. Row handles are
/// store values by construction.
std::vector<bool> store_taint(const Proc& proc) {
  std::vector<bool> tainted(proc.var_types.size(), false);
  for (VarId v = 0; v < proc.var_types.size(); ++v) {
    if (proc.var_types[v] == lang::VarType::kHandle) tainted[v] = true;
  }
  auto expr_tainted = [&](ExprId e) {
    bool t = false;
    each_var(proc, e, [&](VarId v, bool is_field) {
      t = t || is_field || tainted[v];
    });
    return t;
  };
  bool changed = true;
  auto walk = [&](const auto& self, const std::vector<Stmt>& block) -> void {
    for (const Stmt& s : block) {
      switch (s.kind) {
        case SKind::kAssign:
          if (!tainted[s.var] && expr_tainted(s.a)) {
            tainted[s.var] = true;
            changed = true;
          }
          break;
        case SKind::kFor:
          if (!tainted[s.var] &&
              (expr_tainted(s.a) || expr_tainted(s.b))) {
            tainted[s.var] = true;
            changed = true;
          }
          self(self, s.body);
          break;
        case SKind::kIf:
          self(self, s.body);
          self(self, s.else_body);
          break;
        default:
          break;
      }
    }
  };
  while (changed) {
    changed = false;
    walk(walk, proc.body);
  }
  return tainted;
}

/// Branch-arm context: the chain of (If statement, took-then-arm) choices a
/// statement sits under.
using ArmPath = std::vector<std::pair<const Stmt*, bool>>;

struct PendingPut {
  std::string location;
  TableId table = 0;
  ExprId key = lang::kNoExpr;
  std::vector<FieldId> fields;  // sorted
};

class Linter {
 public:
  explicit Linter(const Proc& proc)
      : proc_(proc),
        taint_(store_taint(proc)),
        rel_(lang::analyze_relevance(proc)) {}

  std::vector<Diagnostic> run() {
    std::vector<PendingPut> pending;
    walk(proc_.body, "body", assigned_, pending);
    // Deterministic order: document order by location, then check name.
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic& a, const Diagnostic& b) {
                       return a.location < b.location;
                     });
    return std::move(diags_);
  }

 private:
  void emit(Severity sev, std::string check, std::string loc,
            std::string message, std::string hint) {
    diags_.push_back({sev, std::move(check), std::move(loc),
                      std::move(message), std::move(hint)});
  }

  std::string var_name(VarId v) const {
    if (v < proc_.var_names.size()) return proc_.var_names[v];
    std::string s = "v";
    s += std::to_string(v);
    return s;
  }

  bool expr_store_tainted(ExprId e) const {
    bool t = false;
    each_var(proc_, e, [&](VarId v, bool is_field) {
      t = t || is_field || taint_[v];
    });
    return t;
  }

  // --- check: uninit-var ---------------------------------------------------
  void check_uses(ExprId e, const std::string& loc,
                  const std::unordered_set<VarId>& assigned) {
    std::set<VarId> missing;
    each_var(proc_, e, [&](VarId v, bool) {
      if (!assigned.contains(v)) missing.insert(v);
    });
    for (VarId v : missing) {
      if (reported_uninit_.insert({loc, v}).second) {
        const bool handle = proc_.var_types[v] == lang::VarType::kHandle;
        emit(Severity::kError, "uninit-var", loc,
             std::string(handle ? "row handle '" : "variable '") +
                 var_name(v) + "' may be read before assignment",
             handle ? "perform the GET on every path that reaches this use"
                    : "initialize '" + var_name(v) +
                          "' on every path before this use");
      }
    }
  }

  // --- check: mixed-branch-pivots ------------------------------------------
  void check_key_mix(ExprId key, const std::string& loc) {
    std::set<VarId> handles;
    each_var(proc_, key, [&](VarId v, bool is_field) {
      if (is_field) handles.insert(v);
    });
    if (handles.size() < 2) return;
    const std::vector<VarId> hs(handles.begin(), handles.end());
    for (std::size_t i = 0; i < hs.size(); ++i) {
      for (std::size_t j = i + 1; j < hs.size(); ++j) {
        auto a = handle_arms_.find(hs[i]);
        auto b = handle_arms_.find(hs[j]);
        if (a == handle_arms_.end() || b == handle_arms_.end()) continue;
        for (const auto& [stmt_a, arm_a] : a->second) {
          for (const auto& [stmt_b, arm_b] : b->second) {
            if (stmt_a == stmt_b && arm_a != arm_b) {
              emit(Severity::kError, "mixed-branch-pivots", loc,
                   "key expression mixes pivot fields of '" +
                       var_name(hs[i]) + "' and '" + var_name(hs[j]) +
                       "', which are read in mutually exclusive branches",
                   "at most one of these handles is fresh on any "
                   "execution; restructure so the key uses handles from "
                   "one branch arm");
              return;
            }
          }
        }
      }
    }
  }

  // --- check: dead-write ---------------------------------------------------
  void note_put(const Stmt& s, const std::string& loc,
                std::vector<PendingPut>& pending) {
    std::vector<FieldId> fields;
    fields.reserve(s.fields.size());
    for (const auto& [f, e] : s.fields) fields.push_back(f);
    std::sort(fields.begin(), fields.end());
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->table == s.table && expr_equal(proc_, it->key, s.a) &&
          std::includes(fields.begin(), fields.end(), it->fields.begin(),
                        it->fields.end())) {
        emit(Severity::kWarning, "dead-write", it->location,
             "PUT is completely overwritten by the PUT at " + loc +
                 " before any read of table " + std::to_string(s.table),
             "drop the earlier PUT or merge the two writes");
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
    pending.push_back({loc, s.table, s.a, std::move(fields)});
  }

  void note_del(const Stmt& s, const std::string& loc,
                std::vector<PendingPut>& pending) {
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->table == s.table && expr_equal(proc_, it->key, s.a)) {
        emit(Severity::kWarning, "dead-write", it->location,
             "PUT is deleted again by the DEL at " + loc +
                 " before any read of table " + std::to_string(s.table),
             "drop the PUT (the row is removed before anyone reads it)");
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  }

  // --- walker --------------------------------------------------------------
  void walk(const std::vector<Stmt>& block, const std::string& prefix,
            std::unordered_set<VarId>& assigned,
            std::vector<PendingPut>& pending) {
    for (std::size_t i = 0; i < block.size(); ++i) {
      const Stmt& s = block[i];
      const std::string loc = prefix + "[" + std::to_string(i) + "]";
      switch (s.kind) {
        case SKind::kAssign:
          check_uses(s.a, loc, assigned);
          assigned.insert(s.var);
          break;
        case SKind::kGet:
          check_uses(s.a, loc, assigned);
          check_key_mix(s.a, loc);
          assigned.insert(s.var);
          handle_arms_[s.var] = arms_;
          // The read may observe earlier buffered writes to this table.
          std::erase_if(pending, [&](const PendingPut& p) {
            return p.table == s.table;
          });
          break;
        case SKind::kPut:
          check_uses(s.a, loc, assigned);
          for (const auto& [f, e] : s.fields) check_uses(e, loc, assigned);
          check_key_mix(s.a, loc);
          note_put(s, loc, pending);
          break;
        case SKind::kDel:
          check_uses(s.a, loc, assigned);
          check_key_mix(s.a, loc);
          note_del(s, loc, pending);
          break;
        case SKind::kAbortIf:
          // A rollback voids *all* buffered writes, so an overwritten PUT
          // stays dead on the commit path: keep `pending`.
          check_uses(s.a, loc, assigned);
          break;
        case SKind::kEmit:
          check_uses(s.a, loc, assigned);
          break;
        case SKind::kIf: {
          check_uses(s.a, loc, assigned);
          check_fork(s, loc);
          // Branch arms: definite assignment is the intersection of both
          // arms; pending writes do not survive control flow (conservative).
          std::vector<PendingPut> p_then, p_else;
          std::unordered_set<VarId> a_then = assigned;
          std::unordered_set<VarId> a_else = assigned;
          arms_.emplace_back(&s, true);
          walk(s.body, loc + ".then", a_then, p_then);
          arms_.back().second = false;
          walk(s.else_body, loc + ".else", a_else, p_else);
          arms_.pop_back();
          for (VarId v : a_then) {
            if (a_else.contains(v)) assigned.insert(v);
          }
          pending.clear();
          break;
        }
        case SKind::kFor: {
          check_uses(s.a, loc, assigned);
          check_uses(s.b, loc, assigned);
          check_fork(s, loc);
          check_loop(s, loc);
          // The body may run zero times: its definitions (and the loop
          // variable) are not definitely assigned afterwards.
          std::unordered_set<VarId> a_body = assigned;
          a_body.insert(s.var);
          std::vector<PendingPut> p_body;
          walk(s.body, loc + ".for", a_body, p_body);
          pending.clear();
          break;
        }
      }
    }
  }

  // --- check: loop-unbounded / loop-data-trip ------------------------------
  void check_loop(const Stmt& s, const std::string& loc) {
    const bool data_trip =
        expr_store_tainted(s.a) || expr_store_tainted(s.b);
    if (s.max_iters <= 0) {
      emit(data_trip ? Severity::kError : Severity::kWarning,
           "loop-unbounded", loc,
           std::string("loop has no positive declared static bound") +
               (data_trip ? " and its trip count depends on store reads"
                          : ""),
           "declare max_iters > 0 so symbolic execution can bound the "
           "unrolling");
    } else if (data_trip) {
      emit(Severity::kWarning, "loop-data-trip", loc,
           "loop trip count depends on store reads — every possible count "
           "is a separate path-set (up to " +
               std::to_string(s.max_iters) + ")",
           "bound the loop by a declared constant and filter inside the "
           "body instead");
    }
  }

  // --- check: fork-no-access -----------------------------------------------
  void check_fork(const Stmt& s, const std::string& loc) {
    if (!rel_.is_forking(proc_, s)) return;
    const bool access = s.kind == SKind::kIf
                            ? (contains_access(s.body) ||
                               contains_access(s.else_body))
                            : contains_access(s.body);
    if (access) return;
    emit(Severity::kWarning, "fork-no-access", loc,
         "symbolic execution forks here although the subtree performs no "
         "accesses (it assigns RWS-relevant variables)",
         "hoist the relevant assignment out of the branch, or make the "
         "branch outcome explicit in the key expression (e.g. min/max)");
  }

  const Proc& proc_;
  std::vector<bool> taint_;
  lang::Relevance rel_;
  std::unordered_set<VarId> assigned_;
  std::unordered_map<VarId, ArmPath> handle_arms_;
  ArmPath arms_;
  std::set<std::pair<std::string, VarId>> reported_uninit_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

std::vector<Diagnostic> lint(const lang::Proc& proc) {
  return Linter(proc).run();
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

std::string render(const lang::Proc& proc,
                   const std::vector<Diagnostic>& diags) {
  std::ostringstream os;
  if (diags.empty()) {
    os << proc.name << ": clean\n";
    return os.str();
  }
  os << proc.name << ": " << diags.size() << " diagnostic(s)\n";
  for (const Diagnostic& d : diags) {
    os << "  [" << to_string(d.severity) << "] " << d.check << " at "
       << d.location << ": " << d.message << "\n";
    if (!d.fix_hint.empty()) os << "    fix: " << d.fix_hint << "\n";
  }
  return os.str();
}

}  // namespace prog::analysis
