#include "analysis/dataflow.hpp"

#include <algorithm>
#include <set>
#include <sstream>
#include <unordered_set>

#include "common/check.hpp"

namespace prog::analysis {

namespace {

using lang::EKind;
using lang::ExprId;
using lang::Proc;
using lang::SExpr;
using lang::SKind;
using lang::Stmt;

/// Calls `fn(VarId)` for every variable (scalar or row handle) mentioned in
/// the expression tree rooted at `id`.
template <typename Fn>
void each_var(const Proc& proc, ExprId id, const Fn& fn) {
  if (id == lang::kNoExpr) return;
  const SExpr& e = proc.expr(id);
  switch (e.kind) {
    case EKind::kConst:
    case EKind::kParam:
      return;
    case EKind::kParamElem:
      each_var(proc, e.a, fn);
      return;
    case EKind::kVar:
    case EKind::kField:
      fn(e.var);
      return;
    default:
      each_var(proc, e.a, fn);
      each_var(proc, e.b, fn);
      return;
  }
}

/// One assignment edge: `var` receives a value computed from `sources`
/// (the rhs expression plus the control predicates the assignment sits
/// under — the implicit flow).
struct DefEdge {
  VarId var = 0;
  std::vector<ExprId> sources;
};

class Classifier {
 public:
  explicit Classifier(const Proc& proc) : proc_(proc) {}

  StaticSummary run() {
    walk(proc_.body);

    // Seed: variables mentioned by any sink expression.
    std::vector<VarId> work;
    auto mark = [&](VarId v) {
      if (relevant_.insert(v).second) work.push_back(v);
    };
    for (ExprId s : sinks_) each_var(proc_, s, mark);

    // Propagate backward through assignment edges to fixpoint.
    while (!work.empty()) {
      const VarId v = work.back();
      work.pop_back();
      for (const DefEdge& d : defs_) {
        if (d.var != v) continue;
        for (ExprId src : d.sources) each_var(proc_, src, mark);
      }
    }

    StaticSummary out;
    out.tables_touched.assign(touched_.begin(), touched_.end());
    out.tables_written.assign(written_.begin(), written_.end());
    for (VarId v = 0; v < proc_.var_types.size(); ++v) {
      if (proc_.var_types[v] == lang::VarType::kHandle &&
          relevant_.contains(v)) {
        out.pivot_handles.push_back(v);
      }
    }
    if (written_.empty()) {
      out.klass = sym::TxClass::kReadOnly;
    } else if (out.pivot_handles.empty()) {
      out.klass = sym::TxClass::kIndependent;
    } else {
      out.klass = sym::TxClass::kDependent;
    }
    return out;
  }

 private:
  void add_context_sources(std::vector<ExprId>& sources) const {
    sources.insert(sources.end(), context_.begin(), context_.end());
  }

  void sink(ExprId e) {
    if (e != lang::kNoExpr) sinks_.push_back(e);
  }

  /// Records an access: key expression and every enclosing predicate/bound
  /// determine the RWS.
  void access(const Stmt& s) {
    sink(s.a);
    for (ExprId c : context_) sink(c);
  }

  void walk(const std::vector<Stmt>& block) {
    for (const Stmt& s : block) {
      switch (s.kind) {
        case SKind::kAssign: {
          DefEdge d;
          d.var = s.var;
          d.sources.push_back(s.a);
          add_context_sources(d.sources);
          defs_.push_back(std::move(d));
          break;
        }
        case SKind::kGet: {
          touched_.insert(s.table);
          access(s);
          // The handle's *identity* (which row it denotes) flows from the
          // key and the enclosing predicates; its *value* comes from the
          // store, which is what makes it a pivot when relevant.
          DefEdge d;
          d.var = s.var;
          d.sources.push_back(s.a);
          add_context_sources(d.sources);
          defs_.push_back(std::move(d));
          break;
        }
        case SKind::kPut:
        case SKind::kDel:
          touched_.insert(s.table);
          written_.insert(s.table);
          access(s);
          break;
        case SKind::kIf:
          context_.push_back(s.a);
          walk(s.body);
          walk(s.else_body);
          context_.pop_back();
          break;
        case SKind::kFor: {
          // The loop variable is bound from the bounds; body statements are
          // control-dependent on the trip-count expressions.
          DefEdge d;
          d.var = s.var;
          d.sources.push_back(s.a);
          d.sources.push_back(s.b);
          add_context_sources(d.sources);
          defs_.push_back(std::move(d));
          context_.push_back(s.a);
          context_.push_back(s.b);
          walk(s.body);
          context_.pop_back();
          context_.pop_back();
          break;
        }
        case SKind::kAbortIf:
          // Rollback shrinks the actual RWS; profiles over-approximate
          // instead of forking (DESIGN.md "Known deviations"), so abort
          // predicates carry no relevance here either.
          break;
        case SKind::kEmit:
          break;
      }
    }
  }

  const Proc& proc_;
  std::set<TableId> touched_;
  std::set<TableId> written_;
  std::vector<ExprId> sinks_;
  std::vector<DefEdge> defs_;
  std::vector<ExprId> context_;
  std::unordered_set<VarId> relevant_;
};

bool subset(const std::vector<TableId>& inner,
            const std::vector<TableId>& outer) {
  return std::includes(outer.begin(), outer.end(), inner.begin(),
                       inner.end());
}

std::string tables_str(const std::vector<TableId>& ts) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (i != 0) os << ',';
    os << ts[i];
  }
  os << '}';
  return os.str();
}

}  // namespace

StaticSummary classify(const lang::Proc& proc) {
  return Classifier(proc).run();
}

void cross_check(const lang::Proc& proc, const StaticSummary& summary,
                 const sym::TxProfile& profile) {
  if (!profile.complete()) return;  // class forced to DT by the cap
  const sym::TxClass st = summary.klass;
  const sym::TxClass se = profile.klass();
  auto fail = [&](const std::string& what) {
    throw InvariantError("txlint cross-check failed for '" + proc.name +
                         "': " + what);
  };
  if (klass_rank(st) < klass_rank(se)) {
    fail(std::string("static class ") + sym::to_string(st) +
         " under-approximates SE class " + sym::to_string(se) +
         " — the dataflow classifier missed a store→key flow");
  }
  if (!subset(profile.tables_touched(), summary.tables_touched)) {
    fail("SE touched tables " + tables_str(profile.tables_touched()) +
         " escape the static footprint " +
         tables_str(summary.tables_touched));
  }
  if (!subset(profile.tables_written(), summary.tables_written)) {
    fail("SE written tables " + tables_str(profile.tables_written()) +
         " escape the static write footprint " +
         tables_str(summary.tables_written));
  }
  const sym::SeMetrics& m = profile.metrics();
  if (st != se && m.infeasible_paths == 0 && m.merged_branches == 0) {
    fail(std::string("static class ") + sym::to_string(st) +
         " != SE class " + sym::to_string(se) +
         " although SE pruned no paths and merged no subtrees");
  }
}

StaticSummary classify_checked(const lang::Proc& proc,
                               const sym::TxProfile& profile) {
  StaticSummary s = classify(proc);
  cross_check(proc, s, profile);
  return s;
}

}  // namespace prog::analysis
