#include "sym/profile.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "lang/bytecode/pred_program.hpp"

namespace prog::sym {

const char* to_string(TxClass c) noexcept {
  switch (c) {
    case TxClass::kReadOnly:
      return "ROT";
    case TxClass::kIndependent:
      return "IT";
    case TxClass::kDependent:
      return "DT";
  }
  return "?";
}

namespace {

/// EvalContext over concrete inputs plus lazily resolved pivot rows.
class PredictCtx final : public expr::EvalContext {
 public:
  explicit PredictCtx(const lang::TxInput& input) : input_(input) {}

  Value input(std::uint32_t slot) const override {
    return input_.scalar(slot);
  }
  Value input_elem(std::uint32_t slot, Value index) const override {
    return input_.elem(slot, index);
  }
  Value pivot(std::uint32_t site, FieldId field) const override {
    const store::RowPtr* row = find(site);
    PROG_CHECK_MSG(row != nullptr,
                   "prediction referenced an unresolved pivot site");
    if (field == lang::kExistsField) return *row != nullptr ? 1 : 0;
    return *row != nullptr ? (*row)->get_or(field, 0) : 0;
  }

  void resolve(std::uint32_t site, store::RowPtr row) {
    for (std::size_t i = 0; i < count_; ++i) {
      if (sites_[i] == site) {
        rows_[i] = std::move(row);
        return;
      }
    }
    for (auto& [s, r] : spill_) {
      if (s == site) {
        r = std::move(row);
        return;
      }
    }
    if (count_ < kInline) {
      sites_[count_] = site;
      rows_[count_] = std::move(row);
      ++count_;
      return;
    }
    spill_.emplace_back(site, std::move(row));
  }

 private:
  /// Pivot sites per path are a small handful in every evaluated workload;
  /// inline storage + linear scan keeps prediction allocation-free (the
  /// unordered_map this replaces cost one heap node per DT pivot).
  static constexpr std::size_t kInline = 8;

  const store::RowPtr* find(std::uint32_t site) const {
    for (std::size_t i = 0; i < count_; ++i) {
      if (sites_[i] == site) return &rows_[i];
    }
    for (const auto& [s, row] : spill_) {
      if (s == site) return &row;
    }
    return nullptr;
  }

  const lang::TxInput& input_;
  std::uint32_t sites_[kInline] = {};
  store::RowPtr rows_[kInline];
  std::size_t count_ = 0;
  std::vector<std::pair<std::uint32_t, store::RowPtr>> spill_;
};

}  // namespace

Prediction TxProfile::predict(const lang::TxInput& input,
                              const store::ReadView& view) const {
  Prediction out;
  predict_into(input, view, out);
  return out;
}

void TxProfile::predict_into(const lang::TxInput& input,
                             const store::ReadView& view, Prediction& out,
                             bool tree_walk) const {
  if (pred_code_ != nullptr && !tree_walk) {
    bytecode::predict_run(*pred_code_, input, view, out);
    return;
  }
  PROG_CHECK(root_ != nullptr);
  out.clear();
  PredictCtx ctx(input);

  const ProfileNode* node = root_.get();
  while (node != nullptr) {
    for (const GetSite& g : node->seg.gets) {
      const TKey key{g.table, static_cast<Key>(expr::eval(g.key, ctx))};
      out.keys.push_back(key);
      if (used_sites_.contains(g.id)) {
        store::RowPtr row = view.get(key);
        out.pivots.push_back({key, observation_hash(row)});
        ctx.resolve(g.id, std::move(row));
      }
    }
    for (const WriteRef& w : node->seg.writes) {
      const TKey key{w.table, static_cast<Key>(expr::eval(w.key, ctx))};
      out.keys.push_back(key);
      out.write_keys.push_back(key);
    }
    if (node->is_leaf()) break;
    const Value c = expr::eval(node->cond, ctx);
    node = c != 0 ? node->then_child.get() : node->else_child.get();
  }

  auto dedup = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(out.keys);
  dedup(out.write_keys);
}

bool TxProfile::validate_pivots(const Prediction& p,
                                const store::VersionedStore& store,
                                BatchId snapshot) {
  for (const PivotObservation& obs : p.pivots) {
    const store::RowPtr cur = store.get(obs.key, snapshot);
    if (observation_hash(cur) != obs.version_hash) return false;
  }
  return true;
}

namespace {

void dump_node(const ProfileNode& node, int depth, std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  for (const GetSite& g : node.seg.gets) {
    os << pad << "GET  t" << g.table << " key=" << expr::to_string(g.key)
       << "  (site " << g.id << ")\n";
  }
  for (const WriteRef& w : node.seg.writes) {
    os << pad << "PUT  t" << w.table << " key=" << expr::to_string(w.key)
       << '\n';
  }
  if (node.is_leaf()) {
    os << pad << "<leaf>\n";
    return;
  }
  os << pad << "IF " << expr::to_string(node.cond) << '\n';
  os << pad << "then:\n";
  if (node.then_child) dump_node(*node.then_child, depth + 1, os);
  os << pad << "else:\n";
  if (node.else_child) dump_node(*node.else_child, depth + 1, os);
}

}  // namespace

std::string TxProfile::dump() const {
  std::ostringstream os;
  os << "profile(" << (proc_ != nullptr ? proc_->name : "?") << ") class "
     << to_string(klass_) << ", " << used_sites_.size() << " pivot site(s)\n";
  if (root_ != nullptr) dump_node(*root_, 1, os);
  return os.str();
}

}  // namespace prog::sym
