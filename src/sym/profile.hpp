// Transaction profiles — the product of offline symbolic execution.
//
// A profile is the paper's tree of <PSC, RWS> pairs (Section III-B): inner
// nodes carry a branch condition in symbolic form; edges partition the
// execution paths; every node carries the accesses performed between its
// parent's condition and its own. Key identities are symbolic expressions
// over the transaction inputs (direct) and over *pivot* items read from the
// store (indirect).
//
// At run time the profile answers, in one tree walk, "which concrete keys
// will this invocation touch?" — reading only the pivot items, never running
// the transaction logic (that is the whole advantage over reconnaissance).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/small_vec.hpp"
#include "expr/expr.hpp"
#include "lang/ast.hpp"
#include "solver/solver.hpp"
#include "store/store.hpp"

namespace prog::sym {
class TxProfile;
}

namespace prog::bytecode {
struct PredProgram;  // lang/bytecode/pred_program.hpp
bool ensure_pred_compiled(sym::TxProfile& profile) noexcept;
}  // namespace prog::bytecode

namespace prog::sym {

/// Paper taxonomy: read-only / independent / dependent transactions.
enum class TxClass : std::uint8_t { kReadOnly, kIndependent, kDependent };

const char* to_string(TxClass c) noexcept;

/// One GET executed along a path. `id` names the pivot values this site
/// produces (expr::Op::kPivotField nodes reference it).
struct GetSite {
  std::uint32_t id = 0;
  TableId table = 0;
  const expr::Expr* key = nullptr;
};

/// One PUT/DEL executed along a path.
struct WriteRef {
  TableId table = 0;
  const expr::Expr* key = nullptr;
};

/// Straight-line accesses between two branch points.
struct Segment {
  std::vector<GetSite> gets;
  std::vector<WriteRef> writes;
};

struct ProfileNode {
  Segment seg;
  /// Branch condition; nullptr for leaves.
  const expr::Expr* cond = nullptr;
  std::unique_ptr<ProfileNode> then_child;
  std::unique_ptr<ProfileNode> else_child;

  bool is_leaf() const noexcept { return cond == nullptr; }
};

/// Offline-analysis cost/shape metrics (Table I of the paper).
struct SeMetrics {
  std::uint64_t states_explored = 0;     // tree nodes materialized
  std::uint64_t states_total_est = 0;    // estimate without optimizations
  std::uint32_t depth = 0;               // max branch nodes on a path
  std::uint32_t depth_max = 0;           // incl. concolically skipped branches
  std::uint64_t unique_key_sets = 0;     // distinct symbolic RWS over leaves
  std::uint32_t pivot_sites = 0;         // "indirect keys" column
  std::size_t memory_bytes = 0;
  double analysis_seconds = 0.0;
  std::uint64_t merged_branches = 0;     // same-RWS subtree prunes
  std::uint64_t concolic_skips = 0;      // branches followed concretely
  std::uint64_t infeasible_paths = 0;    // pruned by the solver
};

/// Observed pivot value used to validate a prediction at execution time.
struct PivotObservation {
  TKey key;
  std::uint64_t version_hash = 0;  // 0 == absent at the prepare snapshot
};

/// Content-hash token for pivot observations; 0 is reserved for "absent".
/// Both predict() and reconnaissance-based predictors must use this so that
/// validate_pivots compares like with like.
inline std::uint64_t observation_hash(const store::RowPtr& row) noexcept {
  return row == nullptr ? 0 : (row->hash() | 1);
}

/// Small-buffer key-set storage (DESIGN.md §10): the evaluated workloads
/// predict 2–23 keys per transaction, so the common case lives inline in the
/// engine's reused TxnSlot and steady-state prediction allocates nothing.
using KeySet = SmallVec<TKey, 12>;
using WriteKeySet = SmallVec<TKey, 8>;
using PivotSet = SmallVec<PivotObservation, 4>;

/// Concrete key-set prediction for one invocation.
struct Prediction {
  KeySet keys;            // all accessed keys, sorted, deduplicated
  WriteKeySet write_keys;  // subset that is written (sorted)
  PivotSet pivots;         // empty for ITs

  /// Drops contents, keeping spill buffers — slot-reuse contract.
  void clear() noexcept {
    keys.clear();
    write_keys.clear();
    pivots.clear();
  }
};

/// The complete profile of one stored procedure.
class TxProfile {
 public:
  TxProfile() = default;
  TxProfile(const TxProfile&) = delete;
  TxProfile& operator=(const TxProfile&) = delete;

  const lang::Proc& proc() const { return *proc_; }
  TxClass klass() const noexcept { return klass_; }

  /// False when the analysis hit its state cap; the engine must then fall
  /// back to reconnaissance-style prediction (paper, Section IV-A).
  bool complete() const noexcept { return complete_; }
  const SeMetrics& metrics() const noexcept { return metrics_; }
  const ProfileNode& root() const { return *root_; }

  /// Tables any path may touch — the NODO-style coarse conflict classes.
  const std::vector<TableId>& tables_touched() const {
    return tables_touched_;
  }

  /// Tables any path may write. The engine intersects these across all
  /// registered procedures: a table no procedure ever writes is immutable,
  /// and reads of it need no lock-table entries.
  const std::vector<TableId>& tables_written() const {
    return tables_written_;
  }

  /// Pivot reads one execution performs — max over paths (the paper's
  /// "indirect keys" column).
  std::uint32_t pivot_site_count() const noexcept {
    return metrics_.pivot_sites;
  }

  /// GET sites whose value feeds a later key or branch (the pivot sites).
  const std::unordered_set<std::uint32_t>& used_sites() const noexcept {
    return used_sites_;
  }

  /// Compiled prediction program (lang/bytecode/pred_program.hpp); nullptr
  /// means predict_into tree-walks. Attached by Profiler::profile and
  /// profile deserialization via bytecode::ensure_pred_compiled.
  const std::shared_ptr<const bytecode::PredProgram>& pred_code()
      const noexcept {
    return pred_code_;
  }

  /// Predicts the concrete key-set of `input` against `view` (normally the
  /// snapshot produced by the previous batch). Reads only pivot items.
  Prediction predict(const lang::TxInput& input,
                     const store::ReadView& view) const;

  /// Allocation-free variant: clears and fills `out` in place, reusing its
  /// buffers. The engine's hot path calls this with the slot's arena.
  /// `tree_walk` forces the PSC-tree walk even when a compiled prediction
  /// program is attached (EngineConfig::tree_walk_ablation, DESIGN.md §15).
  void predict_into(const lang::TxInput& input, const store::ReadView& view,
                    Prediction& out, bool tree_walk = false) const;

  /// Re-checks the recorded pivot observations against `view`; true when
  /// every pivot still has the same version (the DT may execute safely).
  static bool validate_pivots(const Prediction& p,
                              const store::VersionedStore& store,
                              BatchId snapshot = store::VersionedStore::kLatest);

  /// Multi-line debug rendering of the PSC tree.
  std::string dump() const;

 private:
  friend class Profiler;
  friend class Engine;     // the symbolic-execution engine (symexec.cpp)
  friend class ProfileIO;  // serialization (serialize.cpp)
  friend bool bytecode::ensure_pred_compiled(TxProfile&) noexcept;

  const lang::Proc* proc_ = nullptr;
  bool complete_ = true;
  std::unique_ptr<expr::ExprPool> pool_;
  std::unique_ptr<ProfileNode> root_;
  TxClass klass_ = TxClass::kIndependent;
  std::unordered_set<std::uint32_t> used_sites_;  // sites whose value is used
  std::unordered_map<std::uint32_t, const GetSite*> site_index_;
  SeMetrics metrics_;
  std::vector<TableId> tables_touched_;
  std::vector<TableId> tables_written_;
  std::shared_ptr<const bytecode::PredProgram> pred_code_;
};

}  // namespace prog::sym
