// Transaction-profile serialization.
//
// The paper's SE analysis is an offline step run once per application
// version; its product — the transaction profiles — is shipped to every
// client and replica. This module gives that artifact a durable form: a
// line-oriented text encoding of the expression DAG and PSC tree that
// round-trips exactly (deserialize(serialize(p)) predicts identically).
//
// Format (one record per line):
//   profile <format-version> <proc-name>
//   class <ROT|IT|DT> complete <0|1>
//   metrics <states> <depth> <depthmax> <keysets> <pivots>
//   expr <id> const <value>
//   expr <id> input <slot>
//   expr <id> elem <slot> <index-expr-id>
//   expr <id> pivot <site> <field>
//   expr <id> op <opcode> <lhs-id> [<rhs-id>]
//   used <site>...
//   node <id> [get <site> <table> <key-expr>]... [put <table> <key-expr>]...
//             [cond <expr> then <node> else <node>]
//   root <node-id>
#pragma once

#include <memory>
#include <string>

#include "lang/ast.hpp"
#include "sym/profile.hpp"

namespace prog::sym {

/// Serializes `profile` to the text form above.
std::string serialize(const TxProfile& profile);

/// Reconstructs a profile for `proc` (which must be the same procedure the
/// profile was built from — the name is checked). Throws UsageError on
/// malformed input.
std::unique_ptr<TxProfile> deserialize(const std::string& text,
                                       const lang::Proc& proc);

}  // namespace prog::sym
