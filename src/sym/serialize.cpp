#include "sym/serialize.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "expr/expr.hpp"
#include "lang/bytecode/pred_program.hpp"

namespace prog::sym {

namespace {

using expr::Expr;
using expr::ExprPool;
using expr::Op;

const char* op_name(Op op) {
  switch (op) {
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kNeg: return "neg";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kNot: return "not";
    default: throw InvariantError("op_name: leaf op has no name");
  }
}

Op op_from_name(const std::string& s) {
  static const std::unordered_map<std::string, Op> kMap = {
      {"add", Op::kAdd}, {"sub", Op::kSub}, {"mul", Op::kMul},
      {"div", Op::kDiv}, {"mod", Op::kMod}, {"neg", Op::kNeg},
      {"min", Op::kMin}, {"max", Op::kMax}, {"eq", Op::kEq},
      {"ne", Op::kNe},   {"lt", Op::kLt},   {"le", Op::kLe},
      {"gt", Op::kGt},   {"ge", Op::kGe},   {"and", Op::kAnd},
      {"or", Op::kOr},   {"not", Op::kNot}};
  auto it = kMap.find(s);
  if (it == kMap.end()) throw UsageError("profile: unknown operator " + s);
  return it->second;
}

}  // namespace

/// Befriended by TxProfile: encodes/decodes its private representation.
class ProfileIO {
 public:
  static std::string write(const TxProfile& p) {
    PROG_CHECK(p.root_ != nullptr);
    std::ostringstream os;
    os << "profile 1 " << p.proc_->name << "\n";
    os << "class " << to_string(p.klass_) << " complete "
       << (p.complete_ ? 1 : 0) << "\n";
    const SeMetrics& m = p.metrics_;
    os << "metrics " << m.states_explored << ' ' << m.depth << ' '
       << m.depth_max << ' ' << m.unique_key_sets << ' ' << m.pivot_sites
       << "\n";

    ProfileIO io;
    io.collect_node(p.root_.get());
    for (const auto* e : io.expr_order_) io.write_expr(os, e);
    std::vector<std::uint32_t> used(p.used_sites_.begin(),
                                    p.used_sites_.end());
    std::sort(used.begin(), used.end());
    os << "used";
    for (std::uint32_t s : used) os << ' ' << s;
    os << "\n";
    io.write_node(os, p.root_.get());
    os << "root " << io.node_ids_.at(p.root_.get()) << "\n";
    os << "tables";
    for (TableId t : p.tables_touched_) os << ' ' << t;
    os << "\n";
    os << "written";
    for (TableId t : p.tables_written_) os << ' ' << t;
    os << "\n";
    return os.str();
  }

  static std::unique_ptr<TxProfile> read(const std::string& text,
                                         const lang::Proc& proc) {
    auto profile = std::make_unique<TxProfile>();
    profile->proc_ = &proc;
    profile->pool_ = std::make_unique<ExprPool>();
    ExprPool& pool = *profile->pool_;

    std::istringstream is(text);
    std::string line;
    std::vector<const Expr*> exprs;
    std::unordered_map<int, std::unique_ptr<ProfileNode>> nodes;
    std::unordered_map<int, std::pair<int, int>> children;  // id -> (t, e)
    int root_id = -1;

    auto expr_at = [&](int id) -> const Expr* {
      if (id < 0 || static_cast<std::size_t>(id) >= exprs.size()) {
        throw UsageError("profile: bad expression reference");
      }
      return exprs[static_cast<std::size_t>(id)];
    };

    while (std::getline(is, line)) {
      if (line.empty()) continue;
      std::istringstream ls(line);
      std::string tag;
      ls >> tag;
      if (tag == "profile") {
        int version = 0;
        std::string name;
        ls >> version >> name;
        if (version != 1) throw UsageError("profile: unsupported version");
        if (name != proc.name) {
          throw UsageError("profile was built for procedure '" + name +
                           "', not '" + proc.name + "'");
        }
      } else if (tag == "class") {
        std::string klass, completeword;
        int complete = 1;
        ls >> klass >> completeword >> complete;
        profile->complete_ = complete != 0;
        if (klass == "ROT") {
          profile->klass_ = TxClass::kReadOnly;
        } else if (klass == "IT") {
          profile->klass_ = TxClass::kIndependent;
        } else if (klass == "DT") {
          profile->klass_ = TxClass::kDependent;
        } else {
          throw UsageError("profile: unknown class " + klass);
        }
      } else if (tag == "metrics") {
        SeMetrics& m = profile->metrics_;
        ls >> m.states_explored >> m.depth >> m.depth_max >>
            m.unique_key_sets >> m.pivot_sites;
      } else if (tag == "expr") {
        int id = 0;
        std::string kind;
        ls >> id >> kind;
        if (static_cast<std::size_t>(id) != exprs.size()) {
          throw UsageError("profile: expressions must be numbered densely");
        }
        if (kind == "const") {
          Value v = 0;
          ls >> v;
          exprs.push_back(pool.constant(v));
        } else if (kind == "input") {
          std::uint32_t slot = 0;
          ls >> slot;
          exprs.push_back(pool.input(slot));
        } else if (kind == "elem") {
          std::uint32_t slot = 0;
          int idx = 0;
          ls >> slot >> idx;
          exprs.push_back(pool.input_elem(slot, expr_at(idx)));
        } else if (kind == "pivot") {
          std::uint32_t site = 0;
          FieldId field = 0;
          ls >> site >> field;
          exprs.push_back(pool.pivot_field(site, field));
        } else if (kind == "op") {
          std::string name;
          int a = -1, b = -1;
          ls >> name >> a;
          const Op op = op_from_name(name);
          if (op == Op::kNot) {
            exprs.push_back(pool.logical_not(expr_at(a)));
          } else {
            ls >> b;
            exprs.push_back(rebuild(pool, op, expr_at(a), expr_at(b)));
          }
        } else {
          throw UsageError("profile: unknown expr kind " + kind);
        }
      } else if (tag == "used") {
        std::uint32_t s = 0;
        while (ls >> s) profile->used_sites_.insert(s);
      } else if (tag == "node") {
        int id = 0;
        ls >> id;
        auto node = std::make_unique<ProfileNode>();
        std::string word;
        while (ls >> word) {
          if (word == "get") {
            GetSite g;
            int key = -1;
            ls >> g.id >> g.table >> key;
            g.key = expr_at(key);
            node->seg.gets.push_back(g);
          } else if (word == "put") {
            WriteRef w;
            int key = -1;
            ls >> w.table >> key;
            w.key = expr_at(key);
            node->seg.writes.push_back(w);
          } else if (word == "cond") {
            int cond = -1, then_id = -1, else_id = -1;
            std::string tword, eword;
            ls >> cond >> tword >> then_id >> eword >> else_id;
            node->cond = expr_at(cond);
            children[id] = {then_id, else_id};
          } else {
            throw UsageError("profile: unknown node item " + word);
          }
        }
        nodes[id] = std::move(node);
      } else if (tag == "root") {
        ls >> root_id;
      } else if (tag == "tables") {
        TableId t = 0;
        while (ls >> t) profile->tables_touched_.push_back(t);
      } else if (tag == "written") {
        TableId t = 0;
        while (ls >> t) profile->tables_written_.push_back(t);
      } else {
        throw UsageError("profile: unknown record " + tag);
      }
    }

    // Link children. Raw pointers stay valid when ownership moves, so the
    // link order does not matter (each node is the child of at most one
    // parent and is moved exactly once).
    std::unordered_map<int, ProfileNode*> raw;
    for (const auto& [id, node] : nodes) raw[id] = node.get();
    auto take = [&](int id) -> std::unique_ptr<ProfileNode> {
      auto it = nodes.find(id);
      if (it == nodes.end() || it->second == nullptr) {
        throw UsageError("profile: dangling or doubly-owned node reference");
      }
      return std::move(it->second);
    };
    for (const auto& [id, kids] : children) {
      auto parent = raw.find(id);
      if (parent == raw.end()) {
        throw UsageError("profile: dangling node reference");
      }
      parent->second->then_child = take(kids.first);
      parent->second->else_child = take(kids.second);
    }
    profile->root_ = take(root_id);
    index_sites(*profile, profile->root_.get());
    bytecode::ensure_pred_compiled(*profile);
    return profile;
  }

 private:
  static const Expr* rebuild(ExprPool& pool, Op op, const Expr* a,
                             const Expr* b) {
    switch (op) {
      case Op::kAdd: return pool.add(a, b);
      case Op::kSub: return pool.sub(a, b);
      case Op::kMul: return pool.mul(a, b);
      case Op::kDiv: return pool.div(a, b);
      case Op::kMod: return pool.mod(a, b);
      case Op::kMin: return pool.min(a, b);
      case Op::kMax: return pool.max(a, b);
      case Op::kAnd: return pool.logical_and(a, b);
      case Op::kOr: return pool.logical_or(a, b);
      default: return pool.cmp(op, a, b);
    }
  }

  static void index_sites(TxProfile& p, const ProfileNode* n) {
    for (const GetSite& g : n->seg.gets) p.site_index_[g.id] = &g;
    if (!n->is_leaf()) {
      index_sites(p, n->then_child.get());
      index_sites(p, n->else_child.get());
    }
  }

  void collect_expr(const Expr* e) {
    if (e == nullptr || expr_ids_.contains(e)) return;
    collect_expr(e->lhs);
    collect_expr(e->rhs);
    expr_ids_[e] = static_cast<int>(expr_order_.size());
    expr_order_.push_back(e);
  }

  void collect_node(const ProfileNode* n) {
    node_ids_[n] = static_cast<int>(node_ids_.size());
    for (const GetSite& g : n->seg.gets) collect_expr(g.key);
    for (const WriteRef& w : n->seg.writes) collect_expr(w.key);
    if (!n->is_leaf()) {
      collect_expr(n->cond);
      collect_node(n->then_child.get());
      collect_node(n->else_child.get());
    }
  }

  void write_expr(std::ostream& os, const Expr* e) const {
    os << "expr " << expr_ids_.at(e) << ' ';
    switch (e->op) {
      case Op::kConst:
        os << "const " << e->cval;
        break;
      case Op::kInput:
        os << "input " << e->slot;
        break;
      case Op::kInputElem:
        os << "elem " << e->slot << ' ' << expr_ids_.at(e->lhs);
        break;
      case Op::kPivotField:
        os << "pivot " << e->slot << ' ' << e->field;
        break;
      case Op::kNot:
        os << "op not " << expr_ids_.at(e->lhs);
        break;
      default:
        os << "op " << op_name(e->op) << ' ' << expr_ids_.at(e->lhs) << ' '
           << expr_ids_.at(e->rhs);
        break;
    }
    os << "\n";
  }

  void write_node(std::ostream& os, const ProfileNode* n) const {
    os << "node " << node_ids_.at(n);
    for (const GetSite& g : n->seg.gets) {
      os << " get " << g.id << ' ' << g.table << ' ' << expr_ids_.at(g.key);
    }
    for (const WriteRef& w : n->seg.writes) {
      os << " put " << w.table << ' ' << expr_ids_.at(w.key);
    }
    if (!n->is_leaf()) {
      os << " cond " << expr_ids_.at(n->cond) << " then "
         << node_ids_.at(n->then_child.get()) << " else "
         << node_ids_.at(n->else_child.get());
    }
    os << "\n";
    if (!n->is_leaf()) {
      write_node(os, n->then_child.get());
      write_node(os, n->else_child.get());
    }
  }

  std::unordered_map<const Expr*, int> expr_ids_;
  std::vector<const Expr*> expr_order_;
  std::unordered_map<const ProfileNode*, int> node_ids_;
};

std::string serialize(const TxProfile& profile) {
  return ProfileIO::write(profile);
}

std::unique_ptr<TxProfile> deserialize(const std::string& text,
                                       const lang::Proc& proc) {
  return ProfileIO::read(text, proc);
}

}  // namespace prog::sym
