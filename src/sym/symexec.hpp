// The symbolic executor (JPF / Symbolic PathFinder stand-in).
//
// Profiler::profile() interprets a DSL procedure with symbolic values,
// exploring the execution paths depth-first and materializing the profile
// tree. It implements the paper's three state-explosion countermeasures
// (Section III-B):
//   1. solver-based infeasible-path pruning — a branch side whose path
//      constraint is UNSAT is folded away;
//   2. concolic execution of *irrelevant* branches — conditionals that the
//      static relevance analysis proves cannot affect the RWS are followed
//      on a single concrete path;
//   3. same-RWS subtree merging at backtrack time — if both sides of a fork
//      produced equal subtrees (up to a consistent renaming of pivot sites),
//      the fork is pruned and the subtree hoisted into the parent.
//
// Loops are unrolled against their declared static bound; the per-iteration
// guard is an ordinary branch, so a loop whose trip count is a bounded
// symbolic input yields one path-set per trip count (and the linear-form
// folding in ExprPool::cmp collapses guards like (next-20+k) < next that do
// not actually depend on the symbolic state).
#pragma once

#include <memory>

#include "lang/ast.hpp"
#include "lang/relevance.hpp"
#include "solver/solver.hpp"
#include "sym/profile.hpp"

namespace prog::sym {

class Profiler {
 public:
  struct Options {
    /// Concolic execution of irrelevant branches (optimization 2).
    bool use_relevance = true;
    /// Same-RWS subtree merging (optimization 3).
    bool merge_subtrees = true;
    /// Infeasible-path pruning (optimization 1). When off, both sides of
    /// every symbolic branch are explored.
    bool use_solver = true;
    /// Tree-node cap; beyond it the profile is marked incomplete and the
    /// engine falls back to reconnaissance (paper, Section IV-A).
    std::uint64_t max_states = 1u << 21;
    /// Shadow value fed to concrete evaluation of pivot fields.
    Value concrete_seed = 1;
    solver::Solver::Options solver_opts = {};
  };

  /// Analyzes `proc` and returns its transaction profile. The profile keeps
  /// a pointer to `proc`, which must outlive it.
  static std::unique_ptr<TxProfile> profile(const lang::Proc& proc,
                                            const Options& opts);

  static std::unique_ptr<TxProfile> profile(const lang::Proc& proc) {
    return profile(proc, Options{});
  }
};

}  // namespace prog::sym
