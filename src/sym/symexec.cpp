#include "sym/symexec.hpp"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "lang/bytecode/pred_program.hpp"

namespace prog::sym {

namespace {

using expr::Expr;
using lang::EKind;
using lang::ExprId;
using lang::Proc;
using lang::SExpr;
using lang::SKind;
using lang::Stmt;

/// Thrown when the analysis exceeds its state cap.
struct CapExceeded {};

/// What a row-handle variable currently denotes on a path.
struct HandleRef {
  enum class Kind : std::uint8_t { kNone, kSite, kOverlay };
  Kind kind = Kind::kNone;
  std::uint32_t idx = 0;  // site id or overlay index
};

/// A symbolic write buffered on the current path (read-own-write support).
struct OverlayRow {
  TableId table = 0;
  const Expr* key = nullptr;  // syntactic identity (hash-consed pointer)
  SmallMap<FieldId, const Expr*> fields;
  bool tombstone = false;
  bool has_base_site = false;
  std::uint32_t base_site = 0;  // pre-write snapshot fall-through
};

/// Continuation frames of the symbolic interpreter. Block frames walk a
/// statement list; loop frames re-test the guard after each unrolled body.
struct FrameB {
  const std::vector<Stmt>* block = nullptr;
  std::size_t idx = 0;
};
struct FrameL {
  const Stmt* stmt = nullptr;
  std::int64_t iter = 0;
};
struct Frame {
  enum class Kind : std::uint8_t { kBlock, kLoop } kind = Kind::kBlock;
  FrameB b;
  FrameL l;
  static Frame block(const std::vector<Stmt>* blk) {
    Frame f;
    f.kind = Kind::kBlock;
    f.b = {blk, 0};
    return f;
  }
  static Frame loop(const Stmt* s) {
    Frame f;
    f.kind = Kind::kLoop;
    f.l = {s, 0};
    return f;
  }
};

}  // namespace

// Engine and its helpers live at namespace scope (not the anonymous
// namespace) so TxProfile can befriend the engine.
struct SiteKey {
  TableId table;
  const Expr* key;
  friend bool operator==(const SiteKey&, const SiteKey&) = default;
};
struct SiteKeyHash {
  std::size_t operator()(const SiteKey& k) const noexcept {
    return static_cast<std::size_t>(
        mix64(reinterpret_cast<std::uintptr_t>(k.key) ^
              (std::uint64_t{k.table} << 48)));
  }
};

struct SymState {
  std::vector<const Expr*> vars;
  std::vector<Value> cvars;  // concrete shadow (concolic execution)
  std::vector<HandleRef> handles;
  std::vector<OverlayRow> overlay;
  std::vector<const Expr*> path;  // accumulated path constraints
  std::vector<Frame> frames;
  /// (table, key expr) -> site id: reuse GET sites for repeated reads.
  std::unordered_map<SiteKey, std::uint32_t, SiteKeyHash> site_cache;
  std::uint32_t depth = 0;      // materialized fork nodes on this path
  std::uint32_t depth_max = 0;  // plus concolically skipped branches
  std::uint32_t skips = 0;      // concolic skips on this path
};

class Engine {
 public:
  Engine(const Proc& proc, const Profiler::Options& opts)
      : proc_(proc),
        opts_(opts),
        relevance_(lang::analyze_relevance(proc)),
        solver_(opts.solver_opts) {
    pool_ = std::make_unique<expr::ExprPool>();
    // Declared parameter domains feed the feasibility solver.
    for (std::uint32_t i = 0; i < proc.params.size(); ++i) {
      const lang::Param& p = proc.params[i];
      if (!p.is_array) {
        domains_.declare(pool_->input(i), {p.lo, p.hi});
      }
    }
  }

  std::unique_ptr<TxProfile> run() {
    auto profile = std::make_unique<TxProfile>();
    Stopwatch timer;

    root_ = std::make_unique<ProfileNode>();
    ++nodes_created_;

    SymState st;
    st.vars.resize(proc_.var_types.size(), pool_->constant(0));
    st.cvars.resize(proc_.var_types.size(), 0);
    st.handles.resize(proc_.var_types.size());
    st.frames.push_back(Frame::block(&proc_.body));

    bool capped = false;
    try {
      exec(std::move(st), root_.get());
    } catch (const CapExceeded&) {
      capped = true;
    }

    metrics_.states_explored = nodes_created_;
    metrics_.analysis_seconds = timer.elapsed_seconds();

    profile->proc_ = &proc_;
    profile->complete_ = !capped;
    profile->root_ = std::move(root_);
    finalize(*profile);
    metrics_.memory_bytes =
        pool_->memory_bytes() + nodes_created_ * sizeof(ProfileNode);
    profile->metrics_ = metrics_;
    profile->pool_ = std::move(pool_);
    return profile;
  }

 private:
  // --- symbolic expression evaluation ------------------------------------

  const Expr* seval(ExprId id, SymState& st) {
    const SExpr& e = proc_.expr(id);
    switch (e.kind) {
      case EKind::kConst:
        return pool_->constant(e.cval);
      case EKind::kParam:
        return pool_->input(e.param);
      case EKind::kParamElem: {
        const Expr* idx = seval(e.a, st);
        const Expr* elem = pool_->input_elem(e.param, idx);
        const lang::Param& p = proc_.params[e.param];
        domains_.declare(elem, {p.lo, p.hi});
        return elem;
      }
      case EKind::kVar:
        return st.vars[e.var];
      case EKind::kField:
        return field_of(st, e.var, e.field);
      case EKind::kAdd:
        return pool_->add(seval(e.a, st), seval(e.b, st));
      case EKind::kSub:
        return pool_->sub(seval(e.a, st), seval(e.b, st));
      case EKind::kMul:
        return pool_->mul(seval(e.a, st), seval(e.b, st));
      case EKind::kDiv:
        return pool_->div(seval(e.a, st), seval(e.b, st));
      case EKind::kMod:
        return pool_->mod(seval(e.a, st), seval(e.b, st));
      case EKind::kMin:
        return pool_->min(seval(e.a, st), seval(e.b, st));
      case EKind::kMax:
        return pool_->max(seval(e.a, st), seval(e.b, st));
      case EKind::kEq:
        return pool_->cmp(expr::Op::kEq, seval(e.a, st), seval(e.b, st));
      case EKind::kNe:
        return pool_->cmp(expr::Op::kNe, seval(e.a, st), seval(e.b, st));
      case EKind::kLt:
        return pool_->cmp(expr::Op::kLt, seval(e.a, st), seval(e.b, st));
      case EKind::kLe:
        return pool_->cmp(expr::Op::kLe, seval(e.a, st), seval(e.b, st));
      case EKind::kGt:
        return pool_->cmp(expr::Op::kGt, seval(e.a, st), seval(e.b, st));
      case EKind::kGe:
        return pool_->cmp(expr::Op::kGe, seval(e.a, st), seval(e.b, st));
      case EKind::kAnd:
        return pool_->logical_and(seval(e.a, st), seval(e.b, st));
      case EKind::kOr:
        return pool_->logical_or(seval(e.a, st), seval(e.b, st));
      case EKind::kNot:
        return pool_->logical_not(seval(e.a, st));
    }
    throw InvariantError("seval: unknown expression kind");
  }

  const Expr* field_of(SymState& st, VarId handle_var, FieldId field) {
    const HandleRef h = st.handles[handle_var];
    switch (h.kind) {
      case HandleRef::Kind::kNone:
        // Field of a never-assigned handle: absent row semantics.
        return pool_->constant(0);
      case HandleRef::Kind::kSite:
        return pool_->pivot_field(h.idx, field);
      case HandleRef::Kind::kOverlay: {
        OverlayRow& row = st.overlay[h.idx];
        if (row.tombstone) return pool_->constant(0);
        if (field == lang::kExistsField) return pool_->constant(1);
        if (const auto* v = row.fields.find(field); v != nullptr) return *v;
        // Unwritten field falls through to the pre-write snapshot value.
        if (!row.has_base_site) {
          row.base_site = new_site(st, row.table, row.key);
          row.has_base_site = true;
        }
        return pool_->pivot_field(row.base_site, field);
      }
    }
    throw InvariantError("field_of: bad handle");
  }

  // --- concrete shadow evaluation (concolic) ------------------------------

  Value ceval(ExprId id, const SymState& st) const {
    const SExpr& e = proc_.expr(id);
    switch (e.kind) {
      case EKind::kConst:
        return e.cval;
      case EKind::kParam:
        return seed_scalar(e.param);
      case EKind::kParamElem:
        return seed_scalar(e.param);
      case EKind::kVar:
        return st.cvars[e.var];
      case EKind::kField:
        return e.field == lang::kExistsField ? 1 : opts_.concrete_seed;
      case EKind::kAdd:
        return ceval(e.a, st) + ceval(e.b, st);
      case EKind::kSub:
        return ceval(e.a, st) - ceval(e.b, st);
      case EKind::kMul:
        return ceval(e.a, st) * ceval(e.b, st);
      case EKind::kDiv: {
        const Value d = ceval(e.b, st);
        return d == 0 ? 0 : ceval(e.a, st) / d;
      }
      case EKind::kMod: {
        const Value d = ceval(e.b, st);
        return d == 0 ? 0 : ceval(e.a, st) % d;
      }
      case EKind::kMin:
        return std::min(ceval(e.a, st), ceval(e.b, st));
      case EKind::kMax:
        return std::max(ceval(e.a, st), ceval(e.b, st));
      case EKind::kEq:
        return ceval(e.a, st) == ceval(e.b, st);
      case EKind::kNe:
        return ceval(e.a, st) != ceval(e.b, st);
      case EKind::kLt:
        return ceval(e.a, st) < ceval(e.b, st);
      case EKind::kLe:
        return ceval(e.a, st) <= ceval(e.b, st);
      case EKind::kGt:
        return ceval(e.a, st) > ceval(e.b, st);
      case EKind::kGe:
        return ceval(e.a, st) >= ceval(e.b, st);
      case EKind::kAnd:
        return (ceval(e.a, st) != 0 && ceval(e.b, st) != 0) ? 1 : 0;
      case EKind::kOr:
        return (ceval(e.a, st) != 0 || ceval(e.b, st) != 0) ? 1 : 0;
      case EKind::kNot:
        return ceval(e.a, st) == 0 ? 1 : 0;
    }
    throw InvariantError("ceval: unknown expression kind");
  }

  Value seed_scalar(std::uint32_t param) const {
    const lang::Param& p = proc_.params[param];
    return p.lo + (p.hi - p.lo) / 2;
  }

  // --- site management -----------------------------------------------------

  std::uint32_t new_site(SymState& st, TableId table, const Expr* key) {
    // Reuse an existing site for the same (table, key expr) on this path.
    const SiteKey ck{table, key};
    if (auto it = st.site_cache.find(ck); it != st.site_cache.end()) {
      return it->second;
    }
    const std::uint32_t id = next_site_++;
    current_->seg.gets.push_back({id, table, key});
    st.site_cache.emplace(ck, id);
    return id;
  }

  // --- main DFS loop -------------------------------------------------------

  void exec(SymState st, ProfileNode* node) {
    current_ = node;
    for (;;) {
      if (st.frames.empty()) {
        leaf(st);
        return;
      }
      Frame& f = st.frames.back();
      if (f.kind == Frame::Kind::kBlock) {
        if (f.b.idx >= f.b.block->size()) {
          st.frames.pop_back();
          continue;
        }
        const Stmt& s = (*f.b.block)[f.b.idx++];
        if (!step(s, st, node)) return;  // step forked and finished both sides
      } else {
        const Stmt& s = *f.l.stmt;
        if (f.l.iter > 0) {
          // i = i + 1 before re-testing the guard.
          st.vars[s.var] = pool_->add(st.vars[s.var], pool_->constant(1));
          st.cvars[s.var] = st.cvars[s.var] + 1;
        }
        PROG_CHECK_MSG(f.l.iter <= s.max_iters,
                       "symbolic loop exceeded its static bound in " +
                           proc_.name);
        ++f.l.iter;
        const Expr* guard =
            pool_->cmp(expr::Op::kLt, st.vars[s.var], seval(s.b, st));
        const bool cguard = st.cvars[s.var] < ceval(s.b, st);
        // then: run the body once more (loop frame stays); else: exit loop.
        if (!branch(
                st, node, guard, cguard, relevance_.is_forking(proc_, s),
                [&](SymState& next) {
                  next.frames.push_back(Frame::block(&s.body));
                },
                [&](SymState& next) { next.frames.pop_back(); })) {
          return;
        }
        node = current_;
      }
    }
  }

  /// Executes one statement. Returns false when the statement forked and
  /// completed both subtrees (the caller's path is finished).
  bool step(const Stmt& s, SymState& st, ProfileNode*& node) {
    switch (s.kind) {
      case SKind::kAssign:
        st.vars[s.var] = seval(s.a, st);
        st.cvars[s.var] = ceval(s.a, st);
        return true;
      case SKind::kGet: {
        const Expr* key = seval(s.a, st);
        // Read-own-write: a GET whose key matches a buffered PUT/DEL sees
        // the overlay, not a fresh pivot site.
        for (std::size_t i = st.overlay.size(); i-- > 0;) {
          if (st.overlay[i].table == s.table && st.overlay[i].key == key) {
            st.handles[s.var] = {HandleRef::Kind::kOverlay,
                                 static_cast<std::uint32_t>(i)};
            return true;
          }
        }
        const std::uint32_t site = new_site(st, s.table, key);
        st.handles[s.var] = {HandleRef::Kind::kSite, site};
        return true;
      }
      case SKind::kPut: {
        const Expr* key = seval(s.a, st);
        OverlayRow row;
        row.table = s.table;
        row.key = key;
        // Merge over a previous buffered write to the same key expr.
        for (std::size_t i = st.overlay.size(); i-- > 0;) {
          if (st.overlay[i].table == s.table && st.overlay[i].key == key) {
            if (!st.overlay[i].tombstone) row = st.overlay[i];
            break;
          }
        }
        row.tombstone = false;
        for (const auto& [field, eid] : s.fields) {
          row.fields.set(field, seval(eid, st));
        }
        if (auto it = st.site_cache.find(SiteKey{s.table, key});
            it != st.site_cache.end() && !row.has_base_site) {
          row.has_base_site = true;
          row.base_site = it->second;
        }
        st.overlay.push_back(std::move(row));
        current_->seg.writes.push_back({s.table, key});
        return true;
      }
      case SKind::kDel: {
        const Expr* key = seval(s.a, st);
        OverlayRow row;
        row.table = s.table;
        row.key = key;
        row.tombstone = true;
        st.overlay.push_back(std::move(row));
        current_->seg.writes.push_back({s.table, key});
        return true;
      }
      case SKind::kIf: {
        const Expr* cond = seval(s.a, st);
        const bool ccond = ceval(s.a, st) != 0;
        return branch(
            st, node, cond, ccond, relevance_.is_forking(proc_, s),
            [&](SymState& next) {
              if (!s.body.empty()) {
                next.frames.push_back(Frame::block(&s.body));
              }
            },
            [&](SymState& next) {
              if (!s.else_body.empty()) {
                next.frames.push_back(Frame::block(&s.else_body));
              }
            });
      }
      case SKind::kFor: {
        st.vars[s.var] = seval(s.a, st);
        st.cvars[s.var] = ceval(s.a, st);
        st.frames.push_back(Frame::loop(&s));
        return true;
      }
      case SKind::kAbortIf:
        // Profiles over-approximate: the abort path's accesses are a subset
        // of the continue path's, so locking the latter is always safe.
        return true;
      case SKind::kEmit:
        return true;
    }
    throw InvariantError("step: unknown statement kind");
  }

  /// Handles a two-way branch on `cond`. then_fn/else_fn adjust the state's
  /// continuation for the respective side. Returns false when both sides
  /// were explored recursively (the current path is complete).
  template <typename ThenFn, typename ElseFn>
  bool branch(SymState& st, ProfileNode*& node, const Expr* cond, bool ccond,
              bool forking, const ThenFn& then_fn, const ElseFn& else_fn) {
    if (cond->is_const()) {
      if (cond->cval != 0) {
        then_fn(st);
      } else {
        else_fn(st);
      }
      return true;
    }
    if (opts_.use_relevance && !forking) {
      // Irrelevant branch: both sides provably produce the same RWS; follow
      // the concrete shadow, record the would-have-forked depth.
      ++metrics_.concolic_skips;
      ++st.skips;
      ++st.depth_max;
      if (ccond) {
        then_fn(st);
      } else {
        else_fn(st);
      }
      return true;
    }

    const Expr* not_cond = pool_->logical_not(cond);
    bool go_then = true;
    bool go_else = true;
    if (opts_.use_solver) {
      st.path.push_back(cond);
      go_then = solver_.check(st.path, domains_) != solver::Sat::kUnsat;
      st.path.back() = not_cond;
      go_else = solver_.check(st.path, domains_) != solver::Sat::kUnsat;
      st.path.pop_back();
    }

    if (go_then && !go_else) {
      ++metrics_.infeasible_paths;
      st.path.push_back(cond);
      then_fn(st);
      return true;
    }
    if (!go_then && go_else) {
      ++metrics_.infeasible_paths;
      st.path.push_back(not_cond);
      else_fn(st);
      return true;
    }
    if (!go_then && !go_else) {
      // Contradictory path constraint (possible under solver approximation):
      // terminate this path without a leaf.
      ++metrics_.infeasible_paths;
      return false;
    }

    // Real fork: materialize a tree node and explore both sides DFS.
    if (nodes_created_ + 2 > opts_.max_states) throw CapExceeded{};
    node->cond = cond;
    node->then_child = std::make_unique<ProfileNode>();
    node->else_child = std::make_unique<ProfileNode>();
    nodes_created_ += 2;

    SymState then_st = st;  // copy for the first side
    then_st.path.push_back(cond);
    ++then_st.depth;
    ++then_st.depth_max;
    then_fn(then_st);
    exec(std::move(then_st), node->then_child.get());

    SymState else_st = std::move(st);
    else_st.path.push_back(not_cond);
    ++else_st.depth;
    ++else_st.depth_max;
    else_fn(else_st);
    exec(std::move(else_st), node->else_child.get());

    if (opts_.merge_subtrees) try_merge(node);
    return false;
  }

  void leaf(const SymState& st) {
    metrics_.depth = std::max(metrics_.depth, st.depth);
    metrics_.depth_max = std::max(metrics_.depth_max, st.depth_max);
    const std::uint32_t shift = std::min<std::uint32_t>(st.skips, 62);
    metrics_.states_total_est += std::uint64_t{1} << shift;
  }

  // --- subtree merging ------------------------------------------------------

  /// Structural equality of expressions up to a pivot-site bijection built
  /// incrementally in `map` (then-side site -> else-side site).
  bool expr_equal(const Expr* a, const Expr* b,
                  const std::unordered_map<std::uint32_t, std::uint32_t>& map)
      const {
    if (a == b) return true;
    if (a == nullptr || b == nullptr) return false;
    if (a->op != b->op || a->cval != b->cval || a->field != b->field) {
      return false;
    }
    if (a->op == expr::Op::kPivotField) {
      auto it = map.find(a->slot);
      const std::uint32_t translated = it != map.end() ? it->second : a->slot;
      return translated == b->slot;
    }
    if (a->slot != b->slot) return false;
    return expr_equal(a->lhs, b->lhs, map) && expr_equal(a->rhs, b->rhs, map);
  }

  bool subtree_equal(const ProfileNode* a, const ProfileNode* b,
                     std::unordered_map<std::uint32_t, std::uint32_t>& map)
      const {
    if (a->seg.gets.size() != b->seg.gets.size() ||
        a->seg.writes.size() != b->seg.writes.size()) {
      return false;
    }
    for (std::size_t i = 0; i < a->seg.gets.size(); ++i) {
      const GetSite& ga = a->seg.gets[i];
      const GetSite& gb = b->seg.gets[i];
      if (ga.table != gb.table || !expr_equal(ga.key, gb.key, map)) {
        return false;
      }
      map[ga.id] = gb.id;
    }
    for (std::size_t i = 0; i < a->seg.writes.size(); ++i) {
      const WriteRef& wa = a->seg.writes[i];
      const WriteRef& wb = b->seg.writes[i];
      if (wa.table != wb.table || !expr_equal(wa.key, wb.key, map)) {
        return false;
      }
    }
    if (a->is_leaf() != b->is_leaf()) return false;
    if (a->is_leaf()) return true;
    if (!expr_equal(a->cond, b->cond, map)) return false;
    return subtree_equal(a->then_child.get(), b->then_child.get(), map) &&
           subtree_equal(a->else_child.get(), b->else_child.get(), map);
  }

  void try_merge(ProfileNode* node) {
    std::unordered_map<std::uint32_t, std::uint32_t> map;
    if (!subtree_equal(node->then_child.get(), node->else_child.get(), map)) {
      return;
    }
    // Both outcomes access the same data: prune the fork, hoist the
    // then-subtree into the parent (paper: "the left and right branches are
    // pruned and their RWSs are added to the ones of the parent node").
    ++metrics_.merged_branches;
    std::unique_ptr<ProfileNode> keep = std::move(node->then_child);
    node->seg.gets.insert(node->seg.gets.end(), keep->seg.gets.begin(),
                          keep->seg.gets.end());
    node->seg.writes.insert(node->seg.writes.end(), keep->seg.writes.begin(),
                            keep->seg.writes.end());
    node->cond = keep->cond;
    node->then_child = std::move(keep->then_child);
    node->else_child = std::move(keep->else_child);
  }

  // --- finalization ----------------------------------------------------------

  void collect_used_sites(const ProfileNode* n,
                          std::unordered_set<std::uint32_t>& used) const {
    for (const GetSite& g : n->seg.gets) {
      expr::collect_pivot_sites(g.key, used);
    }
    for (const WriteRef& w : n->seg.writes) {
      expr::collect_pivot_sites(w.key, used);
    }
    if (!n->is_leaf()) {
      expr::collect_pivot_sites(n->cond, used);
      collect_used_sites(n->then_child.get(), used);
      collect_used_sites(n->else_child.get(), used);
    }
  }

  void key_sets(const ProfileNode* n, std::vector<std::uint64_t>& acc,
                std::set<std::vector<std::uint64_t>>& out) const {
    const std::size_t mark = acc.size();
    for (const GetSite& g : n->seg.gets) {
      acc.push_back((std::uint64_t{g.table} << 33) | (g.key->id << 1));
    }
    for (const WriteRef& w : n->seg.writes) {
      acc.push_back((std::uint64_t{w.table} << 33) | (w.key->id << 1) | 1);
    }
    if (n->is_leaf()) {
      std::vector<std::uint64_t> sorted = acc;
      std::sort(sorted.begin(), sorted.end());
      sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
      out.insert(std::move(sorted));
    } else {
      key_sets(n->then_child.get(), acc, out);
      key_sets(n->else_child.get(), acc, out);
    }
    acc.resize(mark);
  }

  void collect_tables(const ProfileNode* n, std::set<TableId>& reads,
                      std::set<TableId>& writes) const {
    for (const GetSite& g : n->seg.gets) reads.insert(g.table);
    for (const WriteRef& w : n->seg.writes) writes.insert(w.table);
    if (!n->is_leaf()) {
      collect_tables(n->then_child.get(), reads, writes);
      collect_tables(n->else_child.get(), reads, writes);
    }
  }

  bool has_writes(const ProfileNode* n) const {
    if (!n->seg.writes.empty()) return true;
    if (n->is_leaf()) return false;
    return has_writes(n->then_child.get()) || has_writes(n->else_child.get());
  }

  void index_sites(const ProfileNode* n, TxProfile& p) const {
    for (const GetSite& g : n->seg.gets) p.site_index_[g.id] = &g;
    if (!n->is_leaf()) {
      index_sites(n->then_child.get(), p);
      index_sites(n->else_child.get(), p);
    }
  }

  void finalize(TxProfile& p) {
    const ProfileNode* root = p.root_.get();
    collect_used_sites(root, p.used_sites_);
    index_sites(root, p);

    std::set<TableId> reads, writes;
    collect_tables(root, reads, writes);
    reads.insert(writes.begin(), writes.end());
    p.tables_touched_.assign(reads.begin(), reads.end());
    p.tables_written_.assign(writes.begin(), writes.end());

    std::set<std::vector<std::uint64_t>> sets;
    std::vector<std::uint64_t> acc;
    key_sets(root, acc, sets);
    metrics_.unique_key_sets = sets.size();
    // The paper's "indirect keys" column counts the pivot reads one
    // execution performs, i.e. the maximum over root-to-leaf paths (the
    // tree duplicates suffixes, so the global distinct-site count would
    // overstate it).
    metrics_.pivot_sites = max_path_pivots(root, p.used_sites_);

    if (!p.complete_) {
      // Capped analysis: conservatively dependent; the engine must use
      // reconnaissance for this procedure.
      p.klass_ = TxClass::kDependent;
    } else if (!has_writes(root)) {
      p.klass_ = TxClass::kReadOnly;
    } else if (p.used_sites_.empty()) {
      p.klass_ = TxClass::kIndependent;
    } else {
      p.klass_ = TxClass::kDependent;
    }
  }

  std::uint32_t max_path_pivots(
      const ProfileNode* n,
      const std::unordered_set<std::uint32_t>& used) const {
    std::uint32_t here = 0;
    for (const GetSite& g : n->seg.gets) here += used.contains(g.id) ? 1 : 0;
    if (n->is_leaf()) return here;
    return here + std::max(max_path_pivots(n->then_child.get(), used),
                           max_path_pivots(n->else_child.get(), used));
  }

  const Proc& proc_;
  const Profiler::Options& opts_;
  lang::Relevance relevance_;
  solver::Solver solver_;
  solver::DomainMap domains_;
  std::unique_ptr<expr::ExprPool> pool_;
  std::unique_ptr<ProfileNode> root_;
  ProfileNode* current_ = nullptr;
  std::uint32_t next_site_ = 0;
  std::uint64_t nodes_created_ = 0;
  SeMetrics metrics_;
};

std::unique_ptr<TxProfile> Profiler::profile(const lang::Proc& proc,
                                             const Options& opts) {
  std::unique_ptr<TxProfile> p = Engine(proc, opts).run();
  bytecode::ensure_pred_compiled(*p);
  return p;
}

}  // namespace prog::sym
