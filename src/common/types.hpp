// Core identifier types shared by every Prognosticator module.
//
// The data model follows the paper's key/value GET/PUT interface: a data item
// is addressed by a (table, key) pair, where the key is a 64-bit integer.
// Composite benchmark keys (e.g. TPC-C's (warehouse, district)) are packed
// arithmetically so that symbolic key expressions stay linear in the inputs.
#pragma once

#include <cstdint>
#include <functional>

namespace prog {

/// Identifies a table (conflict-class namespace) in the store.
using TableId = std::uint16_t;

/// Identifies a record within a table.
using Key = std::uint64_t;

/// Identifies a field within a row. Rows are small field->int64 maps.
using FieldId = std::uint16_t;

/// Identifies a DSL variable inside one procedure.
using VarId = std::uint32_t;

/// Position of a transaction in the total order agreed by consensus.
using TxSeq = std::uint64_t;

/// Monotonically increasing batch number; also the store version tag.
using BatchId = std::uint64_t;

/// All scalar values in the system are 64-bit integers (strings are interned).
using Value = std::int64_t;

/// Fully-qualified key of a data item: the unit of conflict detection.
struct TKey {
  TableId table = 0;
  Key key = 0;

  friend bool operator==(const TKey&, const TKey&) = default;
  friend auto operator<=>(const TKey&, const TKey&) = default;
};

/// 64-bit finalizer from SplitMix64; good avalanche for hash tables.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct TKeyHash {
  std::size_t operator()(const TKey& k) const noexcept {
    return static_cast<std::size_t>(
        mix64((static_cast<std::uint64_t>(k.table) << 48) ^ k.key));
  }
};

}  // namespace prog

template <>
struct std::hash<prog::TKey> {
  std::size_t operator()(const prog::TKey& k) const noexcept {
    return prog::TKeyHash{}(k);
  }
};
