// Deterministic, seedable random number generation.
//
// Everything that injects randomness (workload generators, simulated network,
// concolic seed values) must go through Rng so that runs are reproducible from
// a single seed — a prerequisite for the determinism property tests.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/types.hpp"

namespace prog {

/// xoshiro256** — fast, high-quality, 2^256-1 period. Seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) noexcept {
    if (lo >= hi) return lo;
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(bounded(span));
  }

  /// Uniform integer in [0, n) with Lemire-style rejection to avoid modulo bias.
  std::uint64_t bounded(std::uint64_t n) noexcept {
    if (n <= 1) return 0;
    const std::uint64_t threshold = (0 - n) % n;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % n;
    }
  }

  /// True with probability pct/100.
  bool percent(unsigned pct) noexcept { return bounded(100) < pct; }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace prog
