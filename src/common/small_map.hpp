// Sorted small flat map: the storage representation of a Row.
//
// Rows in the evaluated benchmarks have at most ~16 fields, so a sorted
// vector beats node-based maps on every axis that matters here (copy cost for
// MVCC version chains, cache behaviour, allocation count).
#pragma once

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

namespace prog {

template <typename K, typename V>
class SmallMap {
 public:
  using value_type = std::pair<K, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  /// Inserts or overwrites.
  void set(K key, V value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
    } else {
      entries_.insert(it, {std::move(key), std::move(value)});
    }
  }

  std::optional<V> get(const K& key) const {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return std::nullopt;
  }

  const V* find(const K& key) const {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return &it->second;
    return nullptr;
  }

  bool contains(const K& key) const { return find(key) != nullptr; }

  bool erase(const K& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }

  /// Merges `other` into this map, overwriting on collision.
  void merge_from(const SmallMap& other) {
    for (const auto& [k, v] : other.entries_) set(k, v);
  }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  friend bool operator==(const SmallMap&, const SmallMap&) = default;

 private:
  auto lower_bound(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }
  auto lower_bound(const K& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const K& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

}  // namespace prog
