// Always-on invariant checks.
//
// PROG_CHECK is used for conditions that must hold in a correct build of the
// system (scheduler invariants, profile soundness at runtime, ...). Unlike
// assert() it is active in release builds: a deterministic database that
// silently diverges is worse than one that stops.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace prog {

/// Thrown when an internal invariant is violated.
class InvariantError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown on user-facing misuse of the public API (bad DSL, bad config, ...).
class UsageError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "PROG_CHECK failed: " << cond << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}

}  // namespace prog

#define PROG_CHECK(cond)                                          \
  do {                                                            \
    if (!(cond)) ::prog::check_failed(#cond, __FILE__, __LINE__, {}); \
  } while (false)

#define PROG_CHECK_MSG(cond, msg)                                    \
  do {                                                               \
    if (!(cond)) ::prog::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
