// String interning: the store holds only int64 values, so user-visible strings
// (customer names, RUBiS comments, ...) are mapped to dense integer ids.
// Interning is append-only; ids are stable for the lifetime of the interner.
#pragma once

#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace prog {

/// Thread-safe bidirectional string <-> int64 mapping.
class StringInterner {
 public:
  /// Returns the id for `s`, creating one on first sight.
  Value intern(std::string_view s) {
    std::scoped_lock lock(mu_);
    auto it = ids_.find(std::string(s));
    if (it != ids_.end()) return it->second;
    const Value id = static_cast<Value>(strings_.size());
    strings_.emplace_back(s);
    ids_.emplace(strings_.back(), id);
    return id;
  }

  /// Reverse lookup; throws UsageError for unknown ids.
  std::string lookup(Value id) const {
    std::scoped_lock lock(mu_);
    if (id < 0 || static_cast<std::size_t>(id) >= strings_.size()) {
      throw UsageError("StringInterner::lookup: unknown id " +
                       std::to_string(id));
    }
    return strings_[static_cast<std::size_t>(id)];
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return strings_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, Value> ids_;
};

}  // namespace prog
