// Monotonic-clock timing helpers for the benchmark harness and SE metrics.
#pragma once

#include <chrono>
#include <cstdint>

namespace prog {

class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::int64_t elapsed_micros() const noexcept {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  std::int64_t elapsed_nanos() const noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace prog
