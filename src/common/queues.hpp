// Queue building blocks for the deterministic scheduler.
//
// The engine needs two shapes:
//  - TicketDispenser: fan out a fixed, already-ordered work list (the DT
//    prepare list, per-worker ROT queues) with a single fetch_add;
//  - MpmcQueue: the "ready queue" of the paper, fed by the queuer and by
//    workers releasing lock-table heads, drained concurrently by workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "common/check.hpp"

namespace prog {

/// Distributes indexes [0, size) to concurrent claimants. Wait-free.
class TicketDispenser {
 public:
  explicit TicketDispenser(std::size_t size = 0) : size_(size) {}

  void reset(std::size_t size) {
    size_ = size;
    next_.store(0, std::memory_order_relaxed);
  }

  /// Claims the next index, or nullopt when the list is exhausted.
  std::optional<std::size_t> claim() noexcept {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= size_) return std::nullopt;
    return i;
  }

  std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_ = 0;
  std::atomic<std::size_t> next_{0};
};

/// Unbounded multi-producer multi-consumer FIFO. A mutex-guarded deque is
/// deliberately chosen over a lock-free ring: ready-queue operations are a few
/// dozen nanoseconds against transaction executions of microseconds, and the
/// deterministic-state property must not depend on queue internals anyway.
template <typename T>
class MpmcQueue {
 public:
  void push(T value) {
    std::scoped_lock lock(mu_);
    items_.push_back(std::move(value));
  }

  template <typename It>
  void push_many(It first, It last) {
    std::scoped_lock lock(mu_);
    items_.insert(items_.end(), first, last);
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  bool empty() const {
    std::scoped_lock lock(mu_);
    return items_.empty();
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  void clear() {
    std::scoped_lock lock(mu_);
    items_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace prog
