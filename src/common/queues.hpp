// Queue building blocks for the deterministic scheduler.
//
// The engine needs three shapes:
//  - TicketDispenser: fan out a fixed, already-ordered work list (the DT
//    prepare list, per-worker ROT queues) with a single fetch_add;
//  - WorkStealingDeque: the per-worker ready deques of the hot-path overhaul
//    (DESIGN.md §10) — owner pushes/pops LIFO for cache locality, idle
//    workers steal FIFO from the opposite end;
//  - MpmcQueue: a general-purpose mutex-guarded FIFO, used off the engine
//    hot path (test harnesses, tools).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace prog {

/// Distributes indexes [0, size) to concurrent claimants. Wait-free.
class TicketDispenser {
 public:
  explicit TicketDispenser(std::size_t size = 0) : size_(size) {}

  void reset(std::size_t size) {
    size_ = size;
    next_.store(0, std::memory_order_relaxed);
  }

  /// Claims the next index, or nullopt when the list is exhausted.
  std::optional<std::size_t> claim() noexcept {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= size_) return std::nullopt;
    return i;
  }

  std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_ = 0;
  std::atomic<std::size_t> next_{0};
};

/// Chase–Lev work-stealing deque (Le et al.'s C11 formulation) specialized
/// to trivially copyable payloads.
///
/// Disciplines the engine relies on:
///   - push()/pop() are OWNER-ONLY: at most one thread (the deque's owner)
///     may call them concurrently. During quiesced phases (workers parked at
///     a barrier) any single thread may act as the owner — the queuer seeds
///     worker deques this way before the execution phase starts.
///   - steal() may be called by any thread concurrently with owner ops. It
///     takes from the opposite (FIFO) end and may fail spuriously when
///     racing another thief; callers are retry loops anyway.
///   - clear() requires full quiescence; it also releases buffers retired by
///     growth (thieves may hold references to a retired buffer until then).
///
/// The circular buffer grows geometrically; retired buffers are kept alive
/// until clear() so racing thieves never read freed memory. Determinism of
/// the engine never depends on pop/steal ordering — the lock table alone
/// serializes conflicts.
template <typename T>
class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WorkStealingDeque is restricted to trivially copyable types");

 public:
  explicit WorkStealingDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 8;
    while (cap < initial_capacity) cap *= 2;
    cur_ = std::make_unique<Buffer>(cap);
    buf_.store(cur_.get(), std::memory_order_relaxed);
  }

  WorkStealingDeque(const WorkStealingDeque&) = delete;
  WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

  /// Owner only. Appends at the bottom (LIFO end).
  void push(T value) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* a = buf_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->slot(b).store(value, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    // Release store (not relaxed as in Le et al.): free on x86 (same plain
    // mov) and gives TSan — which does not model standalone fences — the
    // happens-before edge from the owner's preceding writes to a thief's
    // post-steal reads, so instrumented runs don't report false races on
    // the payload handed across the deque.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner only. Takes from the bottom (LIFO — the most recently pushed,
  /// cache-warm element).
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* a = buf_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      T v = a->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_relaxed);
          return std::nullopt;  // a thief got there first
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return v;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Any thread. Takes from the top (FIFO end). May fail spuriously when
  /// racing the owner's pop of the last element or another thief.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return std::nullopt;
    Buffer* a = buf_.load(std::memory_order_acquire);
    T v = a->slot(t).load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;  // lost the race
    }
    return v;
  }

  /// Racy size estimate (exact when quiesced); telemetry only.
  std::size_t size_approx() const noexcept {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

  bool empty_approx() const noexcept { return size_approx() == 0; }

  /// Quiesced only: resets the deque and frees buffers retired by growth.
  void clear() {
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(0, std::memory_order_relaxed);
    retired_.clear();
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(cap)) {}
    std::atomic<T>& slot(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask];
    }
    const std::size_t capacity;
    const std::size_t mask;
    const std::unique_ptr<std::atomic<T>[]> slots;
  };

  /// Owner only: doubles the buffer, copying live elements [t, b). The old
  /// buffer is retired, not freed — thieves may still be reading it.
  Buffer* grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto fresh = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) {
      fresh->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    Buffer* raw = fresh.get();
    retired_.push_back(std::move(cur_));
    cur_ = std::move(fresh);
    buf_.store(raw, std::memory_order_release);
    return raw;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buf_{nullptr};
  std::unique_ptr<Buffer> cur_;                    // owner's handle
  std::vector<std::unique_ptr<Buffer>> retired_;  // freed on clear()
};

/// Unbounded multi-producer multi-consumer FIFO. A mutex-guarded deque is
/// deliberately chosen over a lock-free ring: its users are off the hot path
/// (the engine's ready work moved to per-worker WorkStealingDeques), and the
/// deterministic-state property must not depend on queue internals anyway.
template <typename T>
class MpmcQueue {
 public:
  void push(T value) {
    std::scoped_lock lock(mu_);
    items_.push_back(std::move(value));
  }

  template <typename It>
  void push_many(It first, It last) {
    std::scoped_lock lock(mu_);
    items_.insert(items_.end(), first, last);
  }

  std::optional<T> try_pop() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  bool empty() const {
    std::scoped_lock lock(mu_);
    return items_.empty();
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

  void clear() {
    std::scoped_lock lock(mu_);
    items_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace prog
