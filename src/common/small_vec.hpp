// Small-buffer vector for the scheduling hot path.
//
// Predicted key-sets are tiny in every evaluated workload (TPC-C new_order
// predicts ~23 keys, payment 4, the micro mixes 2–9), yet the engine used to
// heap-allocate three std::vectors per transaction per batch to hold them.
// SmallVec keeps the first `N` elements inline in the owning object — for the
// common case the whole key-set lives inside the (reused) TxnSlot and the
// steady-state allocation count is zero. Larger sets spill to the heap once;
// `clear()` keeps the spill buffer, so a reused slot never re-allocates for a
// workload it has already seen (the "per-slot prediction arena").
//
// Restricted to trivially copyable element types: growth and erase are then
// plain memcpy/memmove, relocation out of the inline buffer needs no
// per-element move semantics, and a moved-from SmallVec is simply empty.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace prog {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec is restricted to trivially copyable types");
  static_assert(N > 0, "inline capacity must be non-zero");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() noexcept = default;
  SmallVec(std::initializer_list<T> init) { assign(init.begin(), init.end()); }

  SmallVec(const SmallVec& other) { assign(other.begin(), other.end()); }

  SmallVec(SmallVec&& other) noexcept { steal_from(other); }

  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }

  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      release_heap();
      steal_from(other);
    }
    return *this;
  }

  ~SmallVec() { release_heap(); }

  // --- element access ------------------------------------------------------
  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }
  T& front() noexcept { return data_[0]; }
  const T& front() const noexcept { return data_[0]; }
  T& back() noexcept { return data_[size_ - 1]; }
  const T& back() const noexcept { return data_[size_ - 1]; }

  iterator begin() noexcept { return data_; }
  iterator end() noexcept { return data_ + size_; }
  const_iterator begin() const noexcept { return data_; }
  const_iterator end() const noexcept { return data_ + size_; }
  const_iterator cbegin() const noexcept { return data_; }
  const_iterator cend() const noexcept { return data_ + size_; }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool is_inline() const noexcept { return data_ == inline_data(); }

  // --- modifiers -----------------------------------------------------------
  void push_back(const T& v) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_++] = v;
  }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) grow(size_ + 1);
    data_[size_] = T{static_cast<Args&&>(args)...};
    return data_[size_++];
  }

  void pop_back() noexcept { --size_; }

  /// Drops all elements but keeps the current buffer (inline or spilled) —
  /// the reuse contract that makes slot recycling allocation-free.
  void clear() noexcept { size_ = 0; }

  void reserve(std::size_t cap) {
    if (cap > capacity_) grow(cap);
  }

  void resize(std::size_t n) {
    if (n > capacity_) grow(n);
    if (n > size_) std::memset(data_ + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  template <typename It>
  void assign(It first, It last) {
    clear();
    append(first, last);
  }

  template <typename It>
  void append(It first, It last) {
    const std::size_t n = static_cast<std::size_t>(std::distance(first, last));
    if (size_ + n > capacity_) grow(size_ + n);
    for (; first != last; ++first) data_[size_++] = *first;
  }

  /// Erases [first, last); the std::unique/erase dedup idiom depends on it.
  iterator erase(const_iterator first, const_iterator last) {
    T* f = data_ + (first - data_);
    const std::size_t tail = static_cast<std::size_t>(end() - last);
    if (tail > 0) std::memmove(f, last, tail * sizeof(T));
    size_ -= static_cast<std::size_t>(last - first);
    return f;
  }

  // --- comparisons (incl. against std::vector, for tests) -----------------
  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const SmallVec& a, const std::vector<T>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<T>& a, const SmallVec& b) {
    return b == a;
  }

 private:
  T* inline_data() noexcept { return reinterpret_cast<T*>(inline_); }
  const T* inline_data() const noexcept {
    return reinterpret_cast<const T*>(inline_);
  }

  void release_heap() noexcept {
    if (!is_inline()) delete[] data_;
  }

  void steal_from(SmallVec& other) noexcept {
    if (other.is_inline()) {
      data_ = inline_data();
      capacity_ = N;
      size_ = other.size_;
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
    } else {
      data_ = other.data_;
      capacity_ = other.capacity_;
      size_ = other.size_;
      other.data_ = other.inline_data();
      other.capacity_ = N;
    }
    other.size_ = 0;
  }

  void grow(std::size_t min_cap) {
    std::size_t cap = capacity_ * 2;
    if (cap < min_cap) cap = min_cap;
    T* fresh = new T[cap];
    std::memcpy(fresh, data_, size_ * sizeof(T));
    release_heap();
    data_ = fresh;
    capacity_ = cap;
  }

  alignas(T) unsigned char inline_[N * sizeof(T)];
  T* data_ = inline_data();
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace prog
