// Light-weight synchronization primitives used by the execution engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "common/check.hpp"

namespace prog {

/// Test-and-test-and-set spin lock for very short critical sections
/// (individual lock-table queues). Satisfies Lockable.
class SpinLock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        std::this_thread::yield();
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Sense-reversing barrier for the worker-thread phase transitions
/// (ROT phase -> update phase -> failed-tx rounds). Reusable across batches.
class PhaseBarrier {
 public:
  explicit PhaseBarrier(unsigned parties) : parties_(parties) {
    PROG_CHECK(parties > 0);
  }

  /// Blocks until all parties arrive. Returns true for exactly one caller
  /// (the "serial" party), which may run a phase-transition action.
  bool arrive_and_wait() {
    std::unique_lock lock(mu_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == parties_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
    return false;
  }

 private:
  const unsigned parties_;
  unsigned arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

/// One-shot latch used to release workers into a batch.
class Gate {
 public:
  void open() {
    {
      std::scoped_lock lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }

  void close() {
    std::scoped_lock lock(mu_);
    open_ = false;
  }

  void wait() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return open_; });
  }

 private:
  bool open_ = false;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace prog
