// Canonical state-image serialization — the checkpoint format.
//
// A StateImage is the full visible key->row map of a VersionedStore at one
// snapshot, flattened into a canonical, line-oriented text encoding. The
// encoding is *byte-identical* across replicas: keys are emitted in sorted
// (table, key) order and row fields are sorted (Row keeps them sorted), so
// two stores with equal visible state serialize to equal bytes regardless of
// the insertion/interleaving history that produced them. That property is
// what lets the replication layer key checkpoints by (batch_seq, state_hash)
// and ship them byte-for-byte as InstallSnapshot payloads.
//
// Format (one record per line):
//   state v1 <row-count> <state-hash>
//   r <table> <key> <field-count> [<field> <value>]...
//   end
//
// restore_visible() reconciles a live store to an image *in place*: every
// image row is (re)written and every visible key absent from the image is
// tombstoned, all tagged with the caller's batch id. This supports both the
// bootstrap path (restore over freshly loaded batch-0 state) and the
// catch-up path (restore over a live store that lags the cluster).
#pragma once

#include <cstdint>
#include <string>

#include "store/store.hpp"

namespace prog::store {

/// Serializes the state visible at `snapshot` into the canonical text form.
std::string serialize_visible(const VersionedStore& store,
                              BatchId snapshot = VersionedStore::kLatest);

/// Parses the header of an image without materializing rows. Returns the
/// state hash recorded at serialization time. Throws UsageError on garbage.
std::uint64_t image_state_hash(const std::string& image);

/// Reconciles `dst`'s visible state to equal `image`, writing every change
/// as version `at` (puts for image rows, tombstones for stale keys). `at`
/// must be >= the newest version already installed for any touched key —
/// recovery uses the replica's last-applied batch id. Throws UsageError on
/// malformed input.
void restore_visible(VersionedStore& dst, const std::string& image,
                     BatchId at);

}  // namespace prog::store
