#include "store/snapshot.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace prog::store {

namespace {

constexpr const char* kHeader = "state v1";

struct ImageRow {
  TKey key;
  const Row* row;
};

[[noreturn]] void malformed(const std::string& why) {
  throw UsageError("state image: " + why);
}

}  // namespace

std::string serialize_visible(const VersionedStore& store, BatchId snapshot) {
  // Collect and sort so the bytes are canonical: two stores with equal
  // visible state produce identical images no matter how they got there.
  std::vector<ImageRow> rows;
  store.for_each_visible(snapshot, [&rows](TKey key, const Row& row) {
    rows.push_back({key, &row});
  });
  std::sort(rows.begin(), rows.end(),
            [](const ImageRow& a, const ImageRow& b) { return a.key < b.key; });

  std::ostringstream os;
  os << kHeader << ' ' << rows.size() << ' ' << store.state_hash(snapshot)
     << '\n';
  for (const ImageRow& r : rows) {
    os << "r " << r.key.table << ' ' << r.key.key << ' '
       << r.row->field_count();
    for (const auto& [f, v] : *r.row) os << ' ' << f << ' ' << v;
    os << '\n';
  }
  os << "end\n";
  return os.str();
}

std::uint64_t image_state_hash(const std::string& image) {
  std::istringstream is(image);
  std::string word, version;
  std::size_t count = 0;
  std::uint64_t hash = 0;
  if (!(is >> word >> version >> count >> hash) || word != "state" ||
      version != "v1") {
    malformed("bad header");
  }
  return hash;
}

void restore_visible(VersionedStore& dst, const std::string& image,
                     BatchId at) {
  std::istringstream is(image);
  std::string word, version;
  std::size_t count = 0;
  std::uint64_t want_hash = 0;
  if (!(is >> word >> version >> count >> want_hash) || word != "state" ||
      version != "v1") {
    malformed("bad header");
  }

  // Pass 1: install every image row.
  std::vector<TKey> image_keys;
  image_keys.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t table = 0, key = 0;
    std::size_t nfields = 0;
    if (!(is >> word >> table >> key >> nfields) || word != "r") {
      malformed("bad row record");
    }
    Row row;
    for (std::size_t f = 0; f < nfields; ++f) {
      std::uint64_t fid = 0;
      Value v = 0;
      if (!(is >> fid >> v)) malformed("bad field");
      row.set(static_cast<FieldId>(fid), v);
    }
    const TKey tkey{static_cast<TableId>(table), key};
    image_keys.push_back(tkey);
    // Skip the write when the destination already holds this exact row —
    // keeps version chains (and GC pressure) minimal on mostly-equal stores.
    const RowPtr cur = dst.get(tkey);
    if (cur == nullptr || !(*cur == row)) dst.put(tkey, std::move(row), at);
  }
  if (!(is >> word) || word != "end") malformed("missing trailer");

  // Pass 2: tombstone every visible key the image does not contain.
  std::sort(image_keys.begin(), image_keys.end());
  std::vector<TKey> stale;
  dst.for_each_visible(VersionedStore::kLatest, [&](TKey key, const Row&) {
    if (!std::binary_search(image_keys.begin(), image_keys.end(), key)) {
      stale.push_back(key);
    }
  });
  for (TKey key : stale) dst.del(key, at);

  PROG_CHECK_MSG(dst.state_hash() == want_hash,
                 "restored state hash does not match the image header");
}

}  // namespace prog::store
