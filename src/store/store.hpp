// Multi-versioned key/value store — the RocksDB stand-in.
//
// Versions are tagged with the batch that produced them, which is exactly the
// granularity the deterministic engine needs:
//   - read-only transactions and the "prepare indirect keys" phase read the
//     snapshot left by the previous batch (lock-free, always consistent);
//   - the Calvin baseline prepares against an older snapshot to emulate the
//     client-side reconnaissance lag;
//   - update-phase reads see "latest", which is deterministic because the
//     lock table serializes conflicting writers.
//
// The store is sharded; each shard is guarded by a shared_mutex. Within a
// batch the lock table guarantees write-write exclusion per key, so shard
// locks only order the map operations themselves.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "store/row.hpp"

namespace prog::store {

struct StoreStats {
  std::atomic<std::uint64_t> gets{0};
  std::atomic<std::uint64_t> puts{0};
  std::atomic<std::uint64_t> dels{0};
};

/// Abstract read interface so the interpreter and the profile predictor can
/// run against a snapshot, the live head, or a transaction write buffer.
class ReadView {
 public:
  virtual ~ReadView() = default;
  /// nullptr means "no such record (at this snapshot)".
  virtual RowPtr get(TKey key) const = 0;

  /// Borrowing read for the bytecode VM hot loop (DESIGN.md §15): returns a
  /// raw pointer valid for the duration of the current batch phase. The
  /// default implementation pins the row via `keepalive` so the borrow is
  /// safe against any view; views whose rows are already pinned elsewhere
  /// (SnapshotView — snapshot versions are never replaced mid-batch and GC
  /// runs quiesced) override this to skip the refcount round-trip.
  virtual const Row* get_raw(TKey key, RowPtr& keepalive) const {
    keepalive = get(key);
    return keepalive.get();
  }
};

class VersionedStore {
 public:
  /// Snapshot id that sees every installed version.
  static constexpr BatchId kLatest = ~BatchId{0};

  explicit VersionedStore(unsigned shard_count = 64);

  VersionedStore(const VersionedStore&) = delete;
  VersionedStore& operator=(const VersionedStore&) = delete;

  /// Latest version with batch <= snapshot, or nullptr (absent/tombstone).
  RowPtr get(TKey key, BatchId snapshot = kLatest) const;

  /// Borrowing variant of get(): returns the raw row pointer without
  /// touching the shared_ptr control block. Only safe when the caller can
  /// guarantee the version outlives the borrow — i.e. fixed snapshots whose
  /// versions are never replaced and with GC quiesced (the engine's batch
  /// snapshots). Counted in stats().gets like get().
  const Row* get_ptr(TKey key, BatchId snapshot = kLatest) const;

  /// Installs `row` as the version for `batch`. A second put for the same
  /// (key, batch) replaces it — the lock table serializes such writers.
  void put(TKey key, Row row, BatchId batch);

  /// Installs a tombstone for `batch`.
  void del(TKey key, BatchId batch);

  /// Hash of the version (0 when absent) — cheap pivot-validation token.
  std::uint64_t version_hash(TKey key, BatchId snapshot = kLatest) const;

  /// Drops versions that no snapshot >= `watermark` can observe.
  void gc_before(BatchId watermark);

  /// Commutative hash of the full visible state at `snapshot`; equal on two
  /// stores iff the visible key->row maps are equal. Used by the determinism
  /// and replication tests.
  std::uint64_t state_hash(BatchId snapshot = kLatest) const;

  /// Copies the state visible at `snapshot` into `dst` as its batch-0
  /// image (rows are shared, not deep-copied — they are immutable). `dst`
  /// must be empty. Used to stamp out identical initial states cheaply
  /// (benchmark trials, replica bootstrap/state transfer).
  void clone_visible_into(VersionedStore& dst,
                          BatchId snapshot = kLatest) const;

  /// Number of live (non-tombstone) keys at `snapshot`.
  std::size_t size(BatchId snapshot = kLatest) const;

  /// Invokes `fn(key, row)` for every live key visible at `snapshot`.
  /// Iteration order is unspecified (shard/map order) — callers needing a
  /// canonical order sort, as store::serialize_visible does.
  void for_each_visible(
      BatchId snapshot,
      const std::function<void(TKey, const Row&)>& fn) const;

  /// Total versions currently retained (GC observability).
  std::size_t version_count() const;

  /// Emulates a slower backing store (e.g. the paper's RocksDB-over-JNI):
  /// every get/put/del busy-waits this many nanoseconds. 0 disables.
  /// Benches use this; tests and loaders leave it off.
  void set_access_delay_ns(std::uint64_t ns) noexcept {
    access_delay_ns_.store(ns, std::memory_order_relaxed);
  }

  const StoreStats& stats() const noexcept { return stats_; }

 private:
  struct Version {
    BatchId batch;
    RowPtr row;  // nullptr == tombstone
  };
  struct Chain {
    std::vector<Version> versions;  // ascending by batch
  };
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<TKey, Chain, TKeyHash> map;
  };

  const Shard& shard_for(TKey key) const {
    return shards_[TKeyHash{}(key) % shards_.size()];
  }
  Shard& shard_for(TKey key) {
    return shards_[TKeyHash{}(key) % shards_.size()];
  }

  static const Version* visible(const Chain& chain, BatchId snapshot);

  void access_delay() const;

  std::vector<Shard> shards_;
  mutable StoreStats stats_;
  std::atomic<std::uint64_t> access_delay_ns_{0};
};

/// ReadView pinned to one snapshot of one store.
class SnapshotView final : public ReadView {
 public:
  SnapshotView(const VersionedStore& store, BatchId snapshot)
      : store_(store), snapshot_(snapshot) {}

  RowPtr get(TKey key) const override { return store_.get(key, snapshot_); }
  const Row* get_raw(TKey key, RowPtr& keepalive) const override {
    (void)keepalive;  // snapshot versions are pinned by the store itself
    return store_.get_ptr(key, snapshot_);
  }
  BatchId snapshot() const noexcept { return snapshot_; }

 private:
  const VersionedStore& store_;
  BatchId snapshot_;
};

/// ReadView over the live head of the store.
class LiveView final : public ReadView {
 public:
  explicit LiveView(const VersionedStore& store) : store_(store) {}
  RowPtr get(TKey key) const override {
    return store_.get(key, VersionedStore::kLatest);
  }

 private:
  const VersionedStore& store_;
};

}  // namespace prog::store
