// Row: the value type of the store — a small, sorted field->int64 map.
//
// Rows are immutable once installed in a version chain (shared_ptr<const Row>)
// so snapshot readers never race with writers installing new versions.
#pragma once

#include <initializer_list>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "common/small_map.hpp"
#include "common/types.hpp"

namespace prog::store {

class Row {
 public:
  Row() = default;
  Row(std::initializer_list<std::pair<FieldId, Value>> fields) {
    for (const auto& [f, v] : fields) fields_.set(f, v);
  }

  void set(FieldId f, Value v) { fields_.set(f, v); }

  /// Field value or `fallback` when absent.
  Value get_or(FieldId f, Value fallback = 0) const {
    const Value* p = fields_.find(f);
    return p != nullptr ? *p : fallback;
  }

  /// Field value; throws UsageError when absent.
  Value at(FieldId f) const {
    const Value* p = fields_.find(f);
    if (p == nullptr) {
      throw UsageError("Row::at: missing field " + std::to_string(f));
    }
    return *p;
  }

  bool has(FieldId f) const { return fields_.contains(f); }

  /// Overwrites this row's fields with those of `other` (partial update).
  void merge_from(const Row& other) { fields_.merge_from(other.fields_); }

  std::size_t field_count() const noexcept { return fields_.size(); }

  auto begin() const noexcept { return fields_.begin(); }
  auto end() const noexcept { return fields_.end(); }

  /// Content hash; order-stable because fields are sorted.
  std::uint64_t hash() const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const auto& [f, v] : fields_) {
      h = mix64(h ^ f);
      h = mix64(h ^ static_cast<std::uint64_t>(v));
    }
    return h;
  }

  friend bool operator==(const Row&, const Row&) = default;

 private:
  SmallMap<FieldId, Value> fields_;
};

using RowPtr = std::shared_ptr<const Row>;

inline RowPtr make_row(Row r) { return std::make_shared<const Row>(std::move(r)); }

}  // namespace prog::store
