#include "store/store.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>

#include "common/check.hpp"

namespace prog::store {

VersionedStore::VersionedStore(unsigned shard_count)
    : shards_(shard_count == 0 ? 1 : shard_count) {}

void VersionedStore::access_delay() const {
  const std::uint64_t ns = access_delay_ns_.load(std::memory_order_relaxed);
  if (ns == 0) return;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(ns);
  while (std::chrono::steady_clock::now() < until) {
    // busy-wait: emulated storage-access latency
  }
}

const VersionedStore::Version* VersionedStore::visible(const Chain& chain,
                                                       BatchId snapshot) {
  // Chains are short (GC keeps them bounded); scan from the newest version.
  for (auto it = chain.versions.rbegin(); it != chain.versions.rend(); ++it) {
    if (it->batch <= snapshot) return &*it;
  }
  return nullptr;
}

RowPtr VersionedStore::get(TKey key, BatchId snapshot) const {
  access_delay();
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = shard_for(key);
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  const Version* v = visible(it->second, snapshot);
  return v != nullptr ? v->row : nullptr;
}

const Row* VersionedStore::get_ptr(TKey key, BatchId snapshot) const {
  access_delay();
  stats_.gets.fetch_add(1, std::memory_order_relaxed);
  const Shard& shard = shard_for(key);
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  const Version* v = visible(it->second, snapshot);
  return v != nullptr ? v->row.get() : nullptr;
}

void VersionedStore::put(TKey key, Row row, BatchId batch) {
  access_delay();
  stats_.puts.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(key);
  std::unique_lock lock(shard.mu);
  Chain& chain = shard.map[key];
  if (!chain.versions.empty() && chain.versions.back().batch == batch) {
    chain.versions.back().row = make_row(std::move(row));
    return;
  }
  PROG_CHECK_MSG(chain.versions.empty() || chain.versions.back().batch < batch,
                 "store writes must carry monotonically increasing batches");
  chain.versions.push_back({batch, make_row(std::move(row))});
}

void VersionedStore::del(TKey key, BatchId batch) {
  access_delay();
  stats_.dels.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = shard_for(key);
  std::unique_lock lock(shard.mu);
  Chain& chain = shard.map[key];
  if (!chain.versions.empty() && chain.versions.back().batch == batch) {
    chain.versions.back().row = nullptr;
    return;
  }
  PROG_CHECK_MSG(chain.versions.empty() || chain.versions.back().batch < batch,
                 "store writes must carry monotonically increasing batches");
  chain.versions.push_back({batch, nullptr});
}

std::uint64_t VersionedStore::version_hash(TKey key, BatchId snapshot) const {
  const Shard& shard = shard_for(key);
  std::shared_lock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return 0;
  const Version* v = visible(it->second, snapshot);
  if (v == nullptr || v->row == nullptr) return 0;
  // Tag with the batch so an ABA rewrite of identical bytes still validates,
  // while distinct versions virtually never collide.
  return mix64(v->row->hash() ^ v->batch) | 1;
}

void VersionedStore::gc_before(BatchId watermark) {
  for (Shard& shard : shards_) {
    std::unique_lock lock(shard.mu);
    for (auto it = shard.map.begin(); it != shard.map.end();) {
      auto& versions = it->second.versions;
      // Keep the newest version with batch <= watermark plus all later ones.
      auto keep = std::find_if(
          versions.rbegin(), versions.rend(),
          [&](const Version& v) { return v.batch <= watermark; });
      if (keep != versions.rend()) {
        versions.erase(versions.begin(),
                       versions.begin() + (versions.rend() - keep - 1));
      }
      // Fully-dead key: single tombstone at or below the watermark.
      if (versions.size() == 1 && versions[0].row == nullptr &&
          versions[0].batch <= watermark) {
        it = shard.map.erase(it);
      } else {
        ++it;
      }
    }
  }
}

std::uint64_t VersionedStore::state_hash(BatchId snapshot) const {
  std::uint64_t acc = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, chain] : shard.map) {
      const Version* v = visible(chain, snapshot);
      if (v == nullptr || v->row == nullptr) continue;
      const std::uint64_t k =
          mix64((static_cast<std::uint64_t>(key.table) << 48) ^ key.key);
      acc += mix64(k ^ v->row->hash());  // commutative combine
    }
  }
  return acc;
}

std::size_t VersionedStore::size(BatchId snapshot) const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, chain] : shard.map) {
      const Version* v = visible(chain, snapshot);
      if (v != nullptr && v->row != nullptr) ++n;
    }
  }
  return n;
}

void VersionedStore::clone_visible_into(VersionedStore& dst,
                                        BatchId snapshot) const {
  PROG_CHECK_MSG(dst.version_count() == 0,
                 "clone_visible_into requires an empty destination");
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, chain] : shard.map) {
      const Version* v = visible(chain, snapshot);
      if (v == nullptr || v->row == nullptr) continue;
      Shard& dshard = dst.shard_for(key);
      // Single-threaded bootstrap path: no dst locking contention expected,
      // but take the lock for interface consistency.
      std::unique_lock dlock(dshard.mu);
      dshard.map[key].versions.push_back({0, v->row});
    }
  }
}

void VersionedStore::for_each_visible(
    BatchId snapshot, const std::function<void(TKey, const Row&)>& fn) const {
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, chain] : shard.map) {
      const Version* v = visible(chain, snapshot);
      if (v == nullptr || v->row == nullptr) continue;
      fn(key, *v->row);
    }
  }
}

std::size_t VersionedStore::version_count() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock lock(shard.mu);
    for (const auto& [key, chain] : shard.map) n += chain.versions.size();
  }
  return n;
}

}  // namespace prog::store
