// Crash-recovery fuzzing for the durable replicated database.
//
// One fuzz case = one seeded end-to-end scenario on a FaultVfs:
//
//   1. build a durable ReplicatedDb on a fresh FaultVfs and feed it
//      `warmup_rounds` workload batches (checkpoints and WAL segments
//      accumulate on the simulated disk);
//   2. arm the victim replica's storage with a seeded FaultPlan — a fault
//      mode (torn tail / partial write / bit flip / lying fsync) plus a
//      kill-at-the-k-th-syscall budget — and keep feeding batches until the
//      budget runs out (the moment of death lands at a random syscall inside
//      the write path: mid-append, mid-fsync, or mid-checkpoint-publish);
//   3. pull the plug: crash the replica, power-fail its directory (the
//      platter reverts to the fsync horizon with the armed fault applied to
//      the in-flight tail), restart it — recovery must repair the WAL
//      (truncate / quarantine), restore the newest checkpoint, replay the
//      verified suffix, and rejoin;
//   4. drain to convergence and compare every replica against a freshly
//      replayed never-crashed witness (byte-identical state hash), then run
//      `post_rounds` more batches and re-check convergence + the
//      deterministic counter oracle.
//
// The whole scenario — workload, fault plan, timing — is a pure function of
// (seed, options): a failing seed replays exactly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "consensus/chaos.hpp"
#include "consensus/replicated_db.hpp"
#include "dur/fault_vfs.hpp"

namespace prog::consensus {

struct RecoveryFuzzOptions {
  unsigned replicas = 3;
  /// Batches fed before the fault is armed (builds up disk state).
  unsigned warmup_rounds = 10;
  /// Batch-feeding rounds allowed for the armed syscall budget to run out;
  /// the plug is pulled when it does (or after this many rounds regardless).
  unsigned armed_rounds = 10;
  /// Batches fed after recovery, to prove the replica keeps up.
  unsigned post_rounds = 4;
  std::size_t batch_size = 10;
  SimTime round_ms = 100;
  SimTime submit_wait_ms = 600;
  SimTime drain_ms = 2000;
  /// Fault applied to the victim's in-flight tail at the moment of death.
  dur::FaultMode mode = dur::FaultMode::kTornTail;
  /// Upper bound (exclusive) on the seeded kill-at-syscall budget counted
  /// from the moment of arming; the draw is uniform in [1, this].
  std::uint64_t max_crash_syscalls = 60;
  /// Cluster recovery knobs. `vfs`/`dur_dir` are overwritten by the
  /// harness; everything else (checkpoint interval, retention, ...) is
  /// honored.
  RecoveryOptions recovery{};
  sched::EngineConfig config{};
};

struct RecoveryFuzzReport {
  /// Every replica converged to the identical applied sequence.
  bool converged = false;
  /// All live state hashes identical and nonzero at quiescence.
  bool hashes_match = false;
  /// Every replica's hash equals the never-crashed witness replay.
  bool witness_match = false;
  /// Deterministic counter snapshots byte-identical at quiescence.
  bool counters_match = false;
  bool ok() const noexcept {
    return converged && hashes_match && witness_match && counters_match;
  }

  unsigned victim = 0;
  dur::FaultMode mode = dur::FaultMode::kNone;
  std::uint64_t crash_syscall_budget = 0;
  /// Whether the syscall budget actually ran out before the plug was pulled
  /// (false = the fault hit a quiet replica; still a valid recovery case).
  bool crash_triggered = false;
  std::uint64_t state_hash = 0;
  std::uint64_t witness_hash = 0;
  std::size_t batches_submitted = 0;
  RecoveryStats recovery;
  // Durability-layer observations for the run (from the obs registry).
  std::uint64_t torn_tails_truncated = 0;
  std::uint64_t records_quarantined = 0;
  std::uint64_t io_errors = 0;
  std::vector<std::string> trace;
};

/// Runs one seeded crash-recovery scenario. `setup` registers procedures +
/// initial state (same contract as ReplicatedDb); `make_batch` generates
/// workload batches.
RecoveryFuzzReport run_recovery_fuzz(const ReplicatedDb::SetupFn& setup,
                                     const BatchFn& make_batch,
                                     const RecoveryFuzzOptions& opts,
                                     std::uint64_t seed);

}  // namespace prog::consensus
