// Seeded chaos harness for the replicated database (DESIGN.md §8).
//
// Drives a ReplicatedDb through a randomized-but-deterministic schedule of
// faults — full replica crashes (in-memory loss + wipe), process pauses,
// minority partitions, heals, and message-drop bursts — while continuously
// feeding it workload batches. The entire run, fault schedule included, is a
// pure function of (cluster seed, chaos seed, options): re-running with the
// same seeds replays the identical event sequence and must reach the
// identical final state hash.
//
// At the end the harness heals every fault, drains until the cluster
// converges, and reports the quiescent-point invariants the chaos tests
// assert: identical applied sequences on every replica and byte-identical
// state hashes (the determinism claim under fire), plus the recovery-layer
// counters (checkpoints, restores, snapshot installs, resyncs) so directed
// tests can check that specific recovery paths were actually exercised.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "consensus/replicated_db.hpp"

namespace prog::consensus {

struct ChaosOptions {
  /// Event rounds: each round injects at most one fault, submits one batch,
  /// and advances virtual time by round_ms.
  unsigned rounds = 40;
  std::size_t batch_size = 15;
  SimTime round_ms = 100;
  /// Virtual-time budget submit_with_retry may spend per round waiting out
  /// an election gap.
  SimTime submit_wait_ms = 600;
  /// Drain slice after the final heal; repeated (bounded) until converged.
  SimTime drain_ms = 2000;

  // Per-round fault probabilities, in percent; their sum must be <= 100.
  // At most one event fires per round.
  unsigned crash_pct = 8;      ///< crash_replica: full in-memory loss
  unsigned pause_pct = 8;      ///< raft crash: process pause, state survives
  unsigned partition_pct = 8;  ///< isolate a random minority group
  unsigned heal_pct = 25;      ///< heal the split / restart one downed node
  unsigned burst_pct = 8;      ///< message-drop burst window

  unsigned burst_drop_percent = 60;
  SimTime burst_len_ms = 300;
  /// Rounds between reclaim_superseded() sweeps (0 = never).
  unsigned reclaim_every = 10;
};

struct ChaosEventCounts {
  unsigned crashes = 0;
  unsigned pauses = 0;
  unsigned restarts = 0;  ///< replica restarts + pause resumes (incl. final)
  unsigned partitions = 0;
  unsigned heals = 0;
  unsigned bursts = 0;
};

struct ChaosReport {
  /// Every replica applied the same batch sequence at quiescence.
  bool converged = false;
  /// Every replica's state hash is identical (and nonzero).
  bool hashes_match = false;
  /// Every replica's deterministic-counter snapshot is byte-identical at
  /// quiescence (telemetry divergence oracle, DESIGN.md §9). Catches
  /// counting nondeterminism — e.g. a restore double-counting replayed
  /// batches — even when the state hashes still agree.
  bool counters_match = false;
  bool ok() const noexcept {
    return converged && hashes_match && counters_match;
  }

  std::uint64_t state_hash = 0;
  std::size_t batches_submitted = 0;
  std::size_t batches_applied = 0;
  std::size_t submit_failures = 0;
  ChaosEventCounts events;
  RecoveryStats recovery;
  /// Replica 0's deterministic-counter snapshot at quiescence (canonical
  /// `name{labels} value` lines) — the value every replica must agree on.
  std::string counter_snapshot;
  /// Deterministic human-readable fault schedule ("t=1200 crash replica 2").
  std::vector<std::string> trace;
};

/// Generates one workload batch of `n` transactions using `rng`.
using BatchFn =
    std::function<std::vector<sched::TxRequest>(std::size_t n, Rng& rng)>;

/// Runs the chaos schedule against `rdb`. The harness never takes down more
/// than a minority of nodes at once (wipe() safety: a majority must keep its
/// state), so the cluster can always make progress after heals.
ChaosReport run_chaos(ReplicatedDb& rdb, const BatchFn& make_batch,
                      const ChaosOptions& opts, std::uint64_t seed);

}  // namespace prog::consensus
