// Replicated deterministic database: N full replicas fed by the Raft
// sequencer. This is the paper's end-to-end picture — clients agree on a
// total order of batches via consensus, every replica executes them with the
// deterministic engine, and replica state never diverges (asserted by tests
// via state hashes, not assumed).
//
// On top of the sequencing substrate this layer implements replica
// *recovery* (DESIGN.md §8):
//
//   - deterministic checkpoints: every `checkpoint_interval` applied batches
//     a replica serializes its visible state into a canonical image keyed by
//     (batch_seq, state_hash) — byte-identical across replicas by
//     construction — and optionally compacts its Raft log up to the
//     checkpoint boundary;
//   - crash/restart recovery: crash_replica() models full in-memory state
//     loss (the checkpoint store survives, like a disk directory);
//     restart_replica() restores the newest local checkpoint, rejoins the
//     Raft group at that boundary, and replays the committed batch suffix
//     from the sequencer log — or, when the leader has compacted past the
//     replica's restore point, receives an InstallSnapshot-style state
//     transfer from the leader's checkpoint store;
//   - divergence detection: replicas piggyback a per-batch state hash; a
//     replica whose hash disagrees with the recorded history is
//     deterministically quarantined and re-synced from a checkpoint whose
//     hash the history vouches for, replaying the suffix;
//   - submit_with_retry: bounded deterministic backoff around the "no
//     leader yet" dance, plus reclamation of batch-pool entries whose
//     command was superseded by a term change before committing.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "consensus/checkpoint.hpp"
#include "consensus/raft.hpp"
#include "db/database.hpp"
#include "dur/commit_queue.hpp"
#include "dur/storage.hpp"
#include "obs/metrics.hpp"
#include "obs/replica_metrics.hpp"
#include "obs/tracing/tracing.hpp"

namespace prog::consensus {

struct RecoveryOptions {
  /// Applied batches between checkpoints; 0 disables checkpointing (a
  /// restarted replica then rebuilds by full replay).
  unsigned checkpoint_interval = 4;
  /// Checkpoints retained per replica (oldest evicted first).
  std::size_t max_checkpoints = 4;
  /// Compact each replica's Raft log up to its newest checkpoint boundary
  /// (minus log_keep_tail); lagging peers then catch up via InstallSnapshot.
  bool compact_logs = true;
  /// Entries to keep above the compaction point (0 = compact to boundary).
  LogIndex log_keep_tail = 0;
  /// Cross-check every replica's per-batch state hash against the recorded
  /// history; mismatch quarantines + re-syncs the replica.
  bool divergence_check = true;
  /// submit_with_retry backoff: first wait, doubling up to the cap.
  SimTime retry_step_ms = 25;
  SimTime retry_max_step_ms = 400;
  /// Overall submit_with_retry deadline: the effective budget is
  /// min(caller's max_wait_ms, this), so a client facing a permanently
  /// leaderless cluster times out in bounded virtual time no matter what
  /// the call site passed. Expiries count as submit_timeouts.
  SimTime submit_deadline_ms = 2000;

  // --- durability (nullptr = the pre-durability in-memory model) -----------
  /// When set, every replica persists through a DurableReplicaStorage
  /// rooted at `<dur_dir>/r<i>` on this Vfs: group-committed batch WAL,
  /// atomic checkpoint slots, raft term/vote metadata. Crash/restart then
  /// recovers from disk (checkpoint + WAL suffix replay, hash-verified)
  /// before falling back to leader catch-up, and construction itself
  /// cold-starts from whatever the directory holds. The Vfs must outlive
  /// the ReplicatedDb.
  dur::Vfs* vfs = nullptr;
  std::string dur_dir = "dur";
  dur::StorageOptions storage{};
};

struct RecoveryStats {
  std::uint64_t checkpoints_taken = 0;
  /// Restarts that restored a local checkpoint before rejoining.
  std::uint64_t checkpoint_restores = 0;
  /// Leader-driven InstallSnapshot state transfers accepted.
  std::uint64_t snapshot_installs = 0;
  /// Restarts/re-syncs that had to replay from the initial state.
  std::uint64_t full_rebuilds = 0;
  std::uint64_t divergences_detected = 0;
  std::uint64_t quarantines = 0;
  /// Quarantined replicas successfully re-synced (hash matches again).
  std::uint64_t resyncs = 0;
  /// Batch-pool entries whose command was superseded before committing.
  std::uint64_t pool_reclaimed = 0;
  std::uint64_t submit_retries = 0;
  /// submit_with_retry calls that gave up at the overall deadline.
  std::uint64_t submit_timeouts = 0;
  /// Durable recovery: WAL batches re-executed on restart, and how many of
  /// those disagreed with the persisted state hash (forcing leader resync).
  std::uint64_t wal_records_replayed = 0;
  std::uint64_t replay_hash_mismatches = 0;
  /// Restarts recovered from local disk (checkpoint and/or WAL).
  std::uint64_t durable_recoveries = 0;
  /// Durable-mode acks released by the durable watermark (a quorum of
  /// replicas fsynced the batch), not merely by leader acceptance.
  std::uint64_t submit_acked_durable = 0;
  /// Checkpoint publications that waited on the async fsync watermark.
  std::uint64_t pipeline_fsync_stalls = 0;
};

class ReplicatedDb {
 public:
  /// Applied identically to every replica before the first batch: register
  /// procedures and load the initial state (batch 0). Re-invoked on a fresh
  /// Database whenever a replica is rebuilt, so it must be repeatable.
  using SetupFn = std::function<void(db::Database&)>;

  ReplicatedDb(unsigned replicas, std::uint64_t seed, const SetupFn& setup,
               sched::EngineConfig config = {}, SimNet::Options net_opts = {},
               RecoveryOptions recovery = {});

  /// Hands a batch to the consensus layer. False when no leader is known
  /// yet (caller retries after run_ms(), or uses submit_with_retry).
  bool submit_batch(std::vector<sched::TxRequest> batch);

  /// submit_batch with bounded deterministic backoff: on "no leader",
  /// advances virtual time by retry_step_ms (doubling, capped) and retries
  /// until the submit succeeds or `max_wait_ms` of virtual time is spent.
  bool submit_with_retry(std::vector<sched::TxRequest> batch,
                         SimTime max_wait_ms = 2000);

  /// Drops batch-pool entries whose command can no longer commit (present
  /// in no node's log and no applied record — i.e. appended under a leader
  /// that lost its term before replicating). Returns the number reclaimed.
  std::size_t reclaim_superseded();

  /// Advances virtual time; committed batches are applied as they commit.
  void run_ms(SimTime ms) { cluster_.run_ms(ms); }

  /// True when every replica has applied the same batch sequence.
  bool converged() const {
    const unsigned n = cluster_.size();
    std::size_t applied = cluster_.applied(0).size();
    for (NodeId i = 1; i < n; ++i) {
      if (cluster_.applied(i).size() != applied) return false;
    }
    return true;
  }

  /// Per-replica state hashes (0 for a replica that is currently crashed).
  std::vector<std::uint64_t> state_hashes() const {
    std::vector<std::uint64_t> out;
    for (const auto& r : replicas_) {
      out.push_back(r != nullptr ? r->state_hash() : 0);
    }
    return out;
  }

  // --- fault injection / recovery ------------------------------------------
  /// Full in-memory loss: the replica's database AND its Raft state are
  /// gone; only the checkpoint store (durable by construction) survives.
  /// Contrast with raft().crash(i), which models a process pause.
  void crash_replica(NodeId i);
  /// Rebuilds the replica (setup + newest local checkpoint, if any) and
  /// rejoins the Raft group at the restored boundary; the committed suffix
  /// streams back in from the leader (AppendEntries or InstallSnapshot).
  void restart_replica(NodeId i);
  bool replica_down(NodeId i) const { return replicas_[i] == nullptr; }
  bool quarantined(NodeId i) const { return quarantined_[i] != 0; }
  /// Rebuild + replay a quarantined (or any live) replica from its best
  /// trusted checkpoint; true when its hash matches the history again.
  bool resync(NodeId i);

  /// Ground truth for crash-recovery fuzzing: replays replica 0's applied
  /// command sequence through a *fresh* database that never crashed and
  /// returns its state hash. Any recovered replica at the same applied
  /// prefix must hash identically.
  std::uint64_t witness_state_hash() const;

  /// True when replicas persist through a Vfs (RecoveryOptions::vfs).
  bool durable() const noexcept { return opts_.vfs != nullptr; }
  /// Durability metric handles; only populated when durable().
  const dur::DurMetrics* dur_metrics() const noexcept {
    return dm_.has_value() ? &*dm_ : nullptr;
  }

  /// Replica `i`'s durable watermark: the highest batch sequence known to
  /// have passed a WAL group-commit barrier there. With the async commit
  /// queue (pipeline_depth > 0) this is the queue's watermark; with inline
  /// appends it tracks apply directly. 0 when not durable.
  std::uint64_t durable_watermark(unsigned i) const noexcept {
    if (queues_[i] != nullptr) return queues_[i]->watermark();
    return durable_mark_[i];
  }
  /// True when a majority of replicas have durable_watermark() >= idx.
  bool durable_quorum_at(LogIndex idx) const noexcept;
  /// Per-replica async commit queue; nullptr when not durable or depth 0.
  /// Exposed for the chaos harness (pause/resume around an injected kill).
  dur::DurableCommitQueue* commit_queue(unsigned i) noexcept {
    return queues_[i].get();
  }

  db::Database& replica(unsigned i) { return *replicas_[i]; }
  RaftCluster& raft() noexcept { return cluster_; }
  const RecoveryStats& recovery_stats() const noexcept { return stats_; }
  const CheckpointStore& checkpoints(unsigned i) const {
    return cp_stores_[i];
  }
  /// Batches accepted by submit so far (committed or still in flight).
  std::size_t batches_submitted() const noexcept {
    return static_cast<std::size_t>(next_cmd_);
  }
  /// Cumulative *logical* engine counters for replica `i`, surviving
  /// rebuilds: the baseline carried across a restore is the checkpoint's own
  /// stats snapshot, so batches replayed after a crash/restore/install are
  /// counted exactly once. At quiescence (equal applied prefixes) the result
  /// is identical on every replica — the deterministic-counter divergence
  /// oracle builds on this (see deterministic_counter_snapshot).
  sched::EngineStats replica_engine_stats(unsigned i) const {
    sched::EngineStats s = carried_stats_[i];
    if (replicas_[i] != nullptr) s += replicas_[i]->engine_stats();
    return s;
  }

  /// Canonical text serialization of replica `i`'s deterministic engine
  /// counters (obs::Registry::serialize_deterministic over a registry
  /// populated from replica_engine_stats). Byte-identical across replicas
  /// that applied the same batch prefix — a cheap cross-replica divergence
  /// oracle that catches counting nondeterminism even when state hashes
  /// still agree. Works whether or not EngineConfig::telemetry is on
  /// (EngineStats is always maintained).
  std::string deterministic_counter_snapshot(unsigned i) const;

  /// Cluster-level telemetry registry (recovery/chaos counters + gauges).
  /// Always maintained: every update is cold-path.
  obs::Registry& telemetry() noexcept { return *registry_; }
  const obs::Registry& telemetry() const noexcept { return *registry_; }
  /// Pre-resolved handles into telemetry() — the chaos harness increments
  /// the chaos_* event counters through this.
  obs::ReplicaMetrics& replica_metrics() noexcept { return rm_; }

  /// Recomputes the cluster gauges (batch lag, replicas down/quarantined)
  /// from current state. Called by exporters/dashboards before scraping.
  void refresh_gauges();

  const RecoveryOptions& recovery_options() const noexcept { return opts_; }

 private:
  /// Head sampling for causal tracing (DESIGN.md §11): batch `seq` is traced
  /// iff the engine config samples every Nth batch and the flight recorder
  /// is recording. Pure — every replica (and the client side) decides the
  /// same way for the same agreed sequence number.
  bool trace_sampled(std::uint64_t seq) const noexcept {
    const unsigned n = config_.trace_sample_n;
    return n != 0 && obs::tracing::enabled() && seq % n == 0;
  }

  void apply(NodeId node, LogIndex idx, Command cmd);
  void on_install(NodeId follower, NodeId leader, LogIndex upto);
  void take_checkpoint(NodeId node, LogIndex idx);
  void check_divergence(NodeId node, LogIndex idx);
  std::unique_ptr<db::Database> build_replica() const;
  void fold_stats(NodeId node);
  const std::vector<sched::TxRequest>& pool_batch(Command cmd) const;
  const std::optional<std::uint64_t>& recorded_hash(LogIndex idx) const;
  void record_hash(LogIndex idx, std::uint64_t hash);
  /// Disk-first restart: restore meta + newest decodable checkpoint, replay
  /// the WAL suffix with per-record hash verification, rejoin at the final
  /// recovered boundary. Falls back to leader catch-up for whatever the
  /// disk could not vouch for.
  void durable_restart(NodeId i);
  /// (Re)creates replica `i`'s async commit queue seeded with the current
  /// applied boundary as its watermark. No-op unless durable and
  /// pipeline_depth > 0.
  void make_commit_queue(NodeId i);
  /// Durable-mode ack gate: after acceptance, drives virtual time (within
  /// the remaining submit deadline) until a quorum of durable watermarks
  /// covers the accepted index, then counts the ack and emits kAckDurable.
  /// Never fails the submission.
  void wait_durable_ack(SimTime& waited, SimTime deadline);
  /// Quiesces replica `i`'s commit queue before direct storage access that
  /// rotates the WAL tail (checkpoint publication), counting the wait as a
  /// waiting-on-fsync pipeline stall when the watermark lags `idx`.
  void quiesce_queue(NodeId i, LogIndex idx);

  sched::EngineConfig config_;
  RecoveryOptions opts_;
  SetupFn setup_;
  std::vector<std::unique_ptr<db::Database>> replicas_;
  std::vector<CheckpointStore> cp_stores_;
  std::vector<sched::EngineStats> carried_stats_;
  std::vector<char> quarantined_;
  /// Submitted batches by command id. Entries stay until reclaimed (a
  /// lagging replica may replay arbitrarily old commands).
  std::unordered_map<Command, std::vector<sched::TxRequest>> batch_pool_;
  Command next_cmd_ = 0;
  /// Recorded per-batch state hash, indexed by log index - 1. The first
  /// applier (always the leader: it commits first) defines the record; in a
  /// real deployment this hash rides on AppendEntries.
  std::vector<std::optional<std::uint64_t>> hash_history_;
  RecoveryStats stats_;
  /// Cluster telemetry. Initialized before cluster_ (whose apply callbacks
  /// update the counters).
  std::shared_ptr<obs::Registry> registry_;
  obs::ReplicaMetrics rm_;
  /// Durability metric handles (populated only in durable mode).
  std::optional<dur::DurMetrics> dm_;
  /// Per-replica durable storage; empty slots when not durable. Declared
  /// before cluster_: apply callbacks write through it.
  std::vector<std::unique_ptr<dur::DurableReplicaStorage>> dur_;
  /// Per-replica async commit queues (stage D of the pipelined apply);
  /// populated only when durable and pipeline_depth > 0. Declared after
  /// dur_ (queue destructors drain into the storage) and before cluster_.
  std::vector<std::unique_ptr<dur::DurableCommitQueue>> queues_;
  /// Inline durable watermark per replica (durable mode at depth 0, where
  /// append_batch fsyncs on the apply path): batch seq of the last inline
  /// group commit. The commit queue supersedes it at depth > 0.
  std::vector<std::uint64_t> durable_mark_;
  /// Last observed queue_full_waits per replica (for counter deltas).
  std::vector<std::uint64_t> qfw_seen_;
  /// Last member: its callbacks touch everything above.
  RaftCluster cluster_;
};

}  // namespace prog::consensus
