// Replicated deterministic database: N full replicas fed by the Raft
// sequencer. This is the paper's end-to-end picture — clients agree on a
// total order of batches via consensus, every replica executes them with the
// deterministic engine, and replica state never diverges (asserted by tests
// via state hashes, not assumed).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "consensus/raft.hpp"
#include "db/database.hpp"

namespace prog::consensus {

class ReplicatedDb {
 public:
  /// Applied identically to every replica before the first batch: register
  /// procedures and load the initial state (batch 0).
  using SetupFn = std::function<void(db::Database&)>;

  ReplicatedDb(unsigned replicas, std::uint64_t seed, const SetupFn& setup,
               sched::EngineConfig config = {},
               SimNet::Options net_opts = {})
      : cluster_(replicas, seed, net_opts,
                 [this](NodeId node, LogIndex, Command cmd) {
                   apply(node, cmd);
                 }) {
    for (unsigned i = 0; i < replicas; ++i) {
      replicas_.push_back(std::make_unique<db::Database>(config));
      setup(*replicas_.back());
    }
  }

  /// Hands a batch to the consensus layer. False when no leader is known
  /// yet (caller retries after run_ms()).
  bool submit_batch(std::vector<sched::TxRequest> batch) {
    const Command cmd = static_cast<Command>(batch_pool_.size());
    batch_pool_.push_back(std::move(batch));
    if (!cluster_.submit(cmd)) {
      batch_pool_.pop_back();
      return false;
    }
    return true;
  }

  /// Advances virtual time; committed batches are applied as they commit.
  void run_ms(SimTime ms) { cluster_.run_ms(ms); }

  /// True when every live replica has applied the same batch sequence.
  bool converged() const {
    const unsigned n = cluster_.size();
    std::size_t applied = cluster_.applied(0).size();
    for (NodeId i = 1; i < n; ++i) {
      if (cluster_.applied(i).size() != applied) return false;
    }
    return true;
  }

  std::vector<std::uint64_t> state_hashes() const {
    std::vector<std::uint64_t> out;
    for (const auto& r : replicas_) out.push_back(r->state_hash());
    return out;
  }

  db::Database& replica(unsigned i) { return *replicas_[i]; }
  RaftCluster& raft() noexcept { return cluster_; }
  std::size_t batches_submitted() const noexcept { return batch_pool_.size(); }

 private:
  void apply(NodeId node, Command cmd) {
    PROG_CHECK(cmd < batch_pool_.size());
    // Copy: every replica consumes its own instance of the batch.
    replicas_[node]->execute(batch_pool_[static_cast<std::size_t>(cmd)]);
  }

  std::vector<std::unique_ptr<db::Database>> replicas_;
  std::vector<std::vector<sched::TxRequest>> batch_pool_;
  RaftCluster cluster_;
};

}  // namespace prog::consensus
