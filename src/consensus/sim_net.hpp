// Deterministic discrete-event network simulator.
//
// The paper treats the consensus layer as a black box that delivers batches
// in the same order to every replica. We reproduce it with a Raft-lite
// sequencer (consensus/raft.hpp) running over this simulator: virtual time,
// seeded message delays, probabilistic drops, crash and partition injection —
// everything reproducible from one seed, so the consensus safety tests are
// exact, not flaky.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "obs/tracing/tracing.hpp"

namespace prog::consensus {

using NodeId = std::uint32_t;
using SimTime = std::uint64_t;  // virtual milliseconds

class SimNet {
 public:
  struct Options {
    SimTime min_delay_ms = 1;
    SimTime max_delay_ms = 5;
    /// Probability (percent) that a message is silently dropped. Applied at
    /// *delivery* time, like crashes and partitions, so a trace attributes a
    /// lost message to the fault regime in force when it would have arrived
    /// (a message sent just before a partition and arriving inside it is a
    /// partition casualty, not a random drop).
    unsigned drop_percent = 0;
  };

  /// `deliver(to, from, payload_index)` is resolved by the owner; the net
  /// stores opaque callbacks instead so any message type works.
  explicit SimNet(std::uint64_t seed) : SimNet(seed, Options{}) {}
  SimNet(std::uint64_t seed, Options opts) : rng_(seed), opts_(opts) {}

  SimTime now() const noexcept { return now_; }
  Rng& rng() noexcept { return rng_; }

  /// Schedules `fn` to run at now() + delay_ms (a timer; never dropped).
  void schedule(SimTime delay_ms, std::function<void()> fn) {
    queue_.push({now_ + delay_ms, seq_++, std::move(fn)});
  }

  /// Schedules `fn` as a network message from `from` to `to`: subject to
  /// random delay, drops, crashes and partitions — all at *delivery* time.
  ///
  /// Trace context propagation (DESIGN.md §11): the sender's TraceContext is
  /// captured into the message "header" here and restored around delivery,
  /// so a raft handler runs under the context of the batch whose submission
  /// caused the message — causality crosses the (simulated) wire exactly
  /// like a real tracing header would. Sampled messages additionally record
  /// kMsgSend/kMsgRecv spans, which the validator pairs into flow edges.
  void send(NodeId from, NodeId to, std::function<void()> fn) {
    const SimTime delay =
        static_cast<SimTime>(rng_.uniform(
            static_cast<std::int64_t>(opts_.min_delay_ms),
            static_cast<std::int64_t>(opts_.max_delay_ms)));
    const obs::tracing::TraceContext ctx = obs::tracing::current();
    if (ctx.sampled && obs::tracing::enabled()) {
      obs::tracing::SpanEvent ev;
      ev.kind = obs::tracing::SpanKind::kMsgSend;
      ev.batch_seq = ctx.batch_seq;
      ev.replica = from;
      ev.peer = static_cast<std::uint16_t>(to);
      obs::tracing::emit(ev);
    }
    queue_.push(
        {now_ + delay, seq_++, [this, from, to, ctx, fn = std::move(fn)] {
           if (!can_deliver(from, to)) return;
           const unsigned pct = drop_percent_at(now_);
           if (pct > 0 && rng_.percent(pct)) return;
           obs::tracing::ScopedContext sc(ctx);
           if (ctx.sampled && obs::tracing::enabled()) {
             obs::tracing::SpanEvent ev;
             ev.kind = obs::tracing::SpanKind::kMsgRecv;
             ev.batch_seq = ctx.batch_seq;
             ev.replica = to;
             ev.peer = static_cast<std::uint16_t>(from);
             obs::tracing::emit(ev);
           }
           fn();
         }});
  }

  /// Runs all events with time <= until.
  void run_until(SimTime until) {
    while (!queue_.empty() && queue_.top().at <= until) {
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.at;
      ev.fn();
    }
    now_ = until;
  }

  void run_for(SimTime ms) { run_until(now_ + ms); }

  // --- fault injection -----------------------------------------------------
  void crash(NodeId n) { set_down(n, true); }
  void restart(NodeId n) { set_down(n, false); }
  bool is_down(NodeId n) const {
    return n < down_.size() && down_[n];
  }
  /// Splits the cluster: nodes in `group` can only talk to each other.
  void partition(std::vector<NodeId> group) { partition_ = std::move(group); }
  void heal() { partition_.clear(); }
  bool partitioned() const noexcept { return !partition_.empty(); }

  /// Elevated message loss inside the virtual-time window [from_ms, to_ms):
  /// any message *delivered* inside an active burst is dropped with the
  /// burst's probability (the max across overlapping bursts and the base
  /// drop_percent). Expired bursts are pruned lazily. Chaos-harness fuel.
  void drop_burst(SimTime from_ms, SimTime to_ms, unsigned percent) {
    PROG_CHECK_MSG(from_ms < to_ms, "drop_burst: empty window");
    PROG_CHECK_MSG(percent <= 100, "drop_burst: percent > 100");
    bursts_.push_back({from_ms, to_ms, percent});
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tie-break keeps the simulation deterministic
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  void set_down(NodeId n, bool v) {
    if (down_.size() <= n) down_.resize(n + 1, false);
    down_[n] = v;
  }

  bool in_partition(NodeId n) const {
    for (NodeId g : partition_) {
      if (g == n) return true;
    }
    return false;
  }

  bool can_deliver(NodeId from, NodeId to) const {
    if (is_down(from) || is_down(to)) return false;
    if (!partition_.empty() && in_partition(from) != in_partition(to)) {
      return false;
    }
    return true;
  }

  struct Burst {
    SimTime from;
    SimTime to;
    unsigned percent;
  };

  unsigned drop_percent_at(SimTime t) {
    unsigned pct = opts_.drop_percent;
    std::size_t live = 0;
    for (const Burst& b : bursts_) {
      if (b.to <= t) continue;  // expired: pruned below
      bursts_[live++] = b;
      if (b.from <= t && t < b.to) pct = std::max(pct, b.percent);
    }
    bursts_.resize(live);
    return pct;
  }

  Rng rng_;
  Options opts_;
  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<bool> down_;
  std::vector<NodeId> partition_;
  std::vector<Burst> bursts_;
};

}  // namespace prog::consensus
