#include "consensus/recovery_fuzz.hpp"

#include <sstream>

#include "common/check.hpp"
#include "obs/tracing/tracing.hpp"

namespace prog::consensus {

RecoveryFuzzReport run_recovery_fuzz(const ReplicatedDb::SetupFn& setup,
                                     const BatchFn& make_batch,
                                     const RecoveryFuzzOptions& opts,
                                     std::uint64_t seed) {
  PROG_CHECK_MSG(opts.replicas >= 1, "recovery fuzz needs replicas");
  RecoveryFuzzReport rep;
  rep.mode = opts.mode;

  // Distinct streams: workload randomness must not shift when the fault
  // plan draws change (and vice versa), or seeds stop being comparable
  // across fault modes.
  Rng rng(seed);
  Rng plan_rng(seed ^ 0x9E3779B97F4A7C15ull);

  dur::FaultVfs vfs(seed ^ 0xD1B54A32D192ED03ull);
  RecoveryOptions recovery = opts.recovery;
  recovery.vfs = &vfs;
  recovery.dur_dir = "fuzz";
  ReplicatedDb rdb(opts.replicas, seed, setup, opts.config, {}, recovery);

  auto note = [&](const std::string& what) {
    std::ostringstream os;
    os << "t=" << rdb.raft().net().now() << " " << what;
    rep.trace.push_back(os.str());
  };
  auto feed = [&](unsigned rounds) {
    for (unsigned r = 0; r < rounds; ++r) {
      auto batch = make_batch(opts.batch_size, rng);
      rdb.submit_with_retry(std::move(batch), opts.submit_wait_ms);
      rdb.run_ms(opts.round_ms);
    }
  };

  feed(opts.warmup_rounds);

  rep.victim =
      static_cast<unsigned>(plan_rng.bounded(std::max(1u, opts.replicas)));
  rep.crash_syscall_budget =
      1 + plan_rng.bounded(std::max<std::uint64_t>(opts.max_crash_syscalls, 1));
  const std::string victim_dir = "fuzz/r" + std::to_string(rep.victim);
  vfs.arm(victim_dir, {opts.mode, rep.crash_syscall_budget});
  note("arm " + victim_dir + " mode=" + dur::to_string(opts.mode) +
       " kill_at_syscall=" + std::to_string(rep.crash_syscall_budget));

  for (unsigned r = 0; r < opts.armed_rounds && !vfs.crash_triggered(); ++r) {
    feed(1);
  }
  rep.crash_triggered = vfs.crash_triggered();
  note(rep.crash_triggered ? "syscall budget exhausted — storage frozen"
                           : "budget never ran out — plug pulled anyway");

  // Pull the plug: process dies, platter reverts to the fsync horizon with
  // the armed fault applied to the in-flight tail.
  rdb.crash_replica(rep.victim);
  vfs.power_fail(victim_dir);
  note("power fail " + victim_dir);
  rdb.run_ms(opts.round_ms);  // let the survivors notice / re-elect
  rdb.restart_replica(rep.victim);
  note("restart replica " + std::to_string(rep.victim));

  for (int d = 0; d < 20 && !rdb.converged(); ++d) rdb.run_ms(opts.drain_ms);
  rdb.run_ms(opts.drain_ms);

  // Witness check at the recovered quiescent point: every replica must be
  // byte-identical to a replay that never saw the crash.
  rep.witness_hash = rdb.witness_state_hash();
  rep.witness_match = rdb.converged();
  for (const std::uint64_t h : rdb.state_hashes()) {
    if (h != rep.witness_hash) rep.witness_match = false;
  }
  note("witness hash " + std::to_string(rep.witness_hash) +
       (rep.witness_match ? " — matched by all replicas" : " — MISMATCH"));
  if (!rep.witness_match && obs::tracing::enabled()) {
    obs::tracing::trigger(
        obs::tracing::Anomaly::kFuzzMismatch,
        "crash-fuzz witness mismatch: mode " +
            std::string(dur::to_string(opts.mode)) + ", seed " +
            std::to_string(seed) + ", victim replica " +
            std::to_string(rep.victim) + ", witness hash " +
            std::to_string(rep.witness_hash));
  }

  // Prove the recovered replica keeps up with live traffic, then settle.
  feed(opts.post_rounds);
  for (int d = 0; d < 20 && !rdb.converged(); ++d) rdb.run_ms(opts.drain_ms);
  rdb.run_ms(opts.drain_ms);

  rep.converged = rdb.converged();
  const auto hashes = rdb.state_hashes();
  rep.hashes_match = !hashes.empty();
  for (const std::uint64_t h : hashes) {
    if (h == 0 || h != hashes[0]) rep.hashes_match = false;
  }
  rep.state_hash = hashes.empty() ? 0 : hashes[0];
  rep.batches_submitted = rdb.batches_submitted();
  rep.recovery = rdb.recovery_stats();

  const std::string snap0 = rdb.deterministic_counter_snapshot(0);
  rep.counters_match = rep.converged && !snap0.empty();
  for (unsigned i = 1; i < opts.replicas; ++i) {
    if (rdb.deterministic_counter_snapshot(i) != snap0) {
      rep.counters_match = false;
    }
  }

  if (const dur::DurMetrics* dm = rdb.dur_metrics()) {
    rep.torn_tails_truncated = dm->torn_tails_truncated->value();
    rep.records_quarantined = dm->records_quarantined->value();
    rep.io_errors = dm->io_errors->value();
  }
  rdb.refresh_gauges();
  return rep;
}

}  // namespace prog::consensus
