#include "consensus/raft.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace prog::consensus {

namespace {
constexpr SimTime kTickMs = 10;
constexpr SimTime kHeartbeatMs = 50;
constexpr SimTime kElectionMinMs = 150;
constexpr SimTime kElectionJitterMs = 150;
}  // namespace

RaftNode::RaftNode(NodeId id, unsigned cluster_size, RaftCluster& cluster)
    : id_(id), n_(cluster_size), cluster_(cluster) {
  next_index_.assign(n_, 1);
  match_index_.assign(n_, 0);
  reset_election_deadline();
  // Self-rescheduling tick for the lifetime of the simulation.
  cluster_.net_for_node().schedule(kTickMs, [this] { tick_pump(); });
}

void RaftNode::tick_pump() {
  if (!cluster_.node_down(id_)) tick();
  cluster_.net_for_node().schedule(kTickMs, [this] { tick_pump(); });
}

void RaftNode::reset_election_deadline() {
  election_deadline_ =
      cluster_.net_for_node().now() + kElectionMinMs +
      static_cast<SimTime>(cluster_.net_for_node().rng().bounded(
          kElectionJitterMs));
}

void RaftNode::on_restart() {
  role_ = Role::kFollower;
  votes_ = 0;
  next_index_.assign(n_, last_index() + 1);
  match_index_.assign(n_, 0);
  reset_election_deadline();
}

void RaftNode::wipe() {
  term_ = 0;
  voted_for_ = -1;
  log_.clear();
  snapshot_index_ = 0;
  snapshot_term_ = 0;
  commit_index_ = 0;
  last_applied_ = 0;
  on_restart();
}

void RaftNode::install_local_snapshot(LogIndex index, Term term) {
  PROG_CHECK_MSG(log_.empty() && snapshot_index_ == 0,
                 "install_local_snapshot requires a wiped node");
  snapshot_index_ = index;
  snapshot_term_ = term;
  commit_index_ = index;
  last_applied_ = index;
  term_ = std::max(term_, term);
  next_index_.assign(n_, last_index() + 1);
  persist_meta();
}

void RaftNode::compact_to(LogIndex upto) {
  upto = std::min(upto, last_applied_);
  if (upto <= snapshot_index_) return;
  const Term boundary_term = term_at(upto);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<std::ptrdiff_t>(upto - snapshot_index_));
  snapshot_index_ = upto;
  snapshot_term_ = boundary_term;
}

void RaftNode::become_follower(Term term) {
  term_ = term;
  role_ = Role::kFollower;
  voted_for_ = -1;
  votes_ = 0;
  reset_election_deadline();
  persist_meta();
}

void RaftNode::tick() {
  const SimTime now = cluster_.net_for_node().now();
  if (role_ == Role::kLeader) {
    if (now >= next_heartbeat_) {
      broadcast_append();
      next_heartbeat_ = now + kHeartbeatMs;
    }
    return;
  }
  if (now >= election_deadline_) start_election();
}

void RaftNode::start_election() {
  ++term_;
  role_ = Role::kCandidate;
  voted_for_ = static_cast<std::int64_t>(id_);
  votes_ = 1;
  persist_meta();
  reset_election_deadline();
  const RequestVote rv{term_, id_, last_index(), last_term()};
  for (NodeId p = 0; p < n_; ++p) {
    if (p == id_) continue;
    cluster_.rpc(id_, p, rv, &RaftNode::on_request_vote);
  }
}

void RaftNode::on_request_vote(const RequestVote& rv) {
  if (rv.term > term_) become_follower(rv.term);
  bool granted = false;
  if (rv.term == term_ &&
      (voted_for_ < 0 ||
       voted_for_ == static_cast<std::int64_t>(rv.candidate))) {
    // Up-to-date check (Raft §5.4.1).
    const bool up_to_date =
        rv.last_log_term > last_term() ||
        (rv.last_log_term == last_term() && rv.last_log_index >= last_index());
    if (up_to_date) {
      granted = true;
      voted_for_ = static_cast<std::int64_t>(rv.candidate);
      persist_meta();  // the vote must hit stable storage before the reply
      reset_election_deadline();
    }
  }
  cluster_.rpc(id_, rv.candidate, VoteReply{term_, granted, id_},
               &RaftNode::on_vote_reply);
}

void RaftNode::on_vote_reply(const VoteReply& vr) {
  if (vr.term > term_) {
    become_follower(vr.term);
    return;
  }
  if (role_ != Role::kCandidate || vr.term != term_ || !vr.granted) return;
  if (++votes_ > n_ / 2) become_leader();
}

void RaftNode::become_leader() {
  role_ = Role::kLeader;
  next_index_.assign(n_, last_index() + 1);
  match_index_.assign(n_, 0);
  match_index_[id_] = last_index();
  next_heartbeat_ = 0;
  broadcast_append();
}

bool RaftNode::submit(Command cmd) {
  if (role_ != Role::kLeader) return false;
  log_.push_back({term_, cmd});
  match_index_[id_] = last_index();
  broadcast_append();
  if (n_ == 1) {
    advance_commit();
  }
  return true;
}

void RaftNode::broadcast_append() {
  for (NodeId p = 0; p < n_; ++p) {
    if (p != id_) send_append_to(p);
  }
}

void RaftNode::send_append_to(NodeId peer) {
  if (next_index_[peer] <= snapshot_index_) {
    // The prefix the follower needs was compacted away: ship the snapshot
    // boundary instead; the cluster's install handler moves the state.
    cluster_.rpc(id_, peer,
                 InstallSnapshot{term_, id_, snapshot_index_, snapshot_term_},
                 &RaftNode::on_install_snapshot);
    return;
  }
  const LogIndex prev = next_index_[peer] - 1;
  AppendEntries ae;
  ae.term = term_;
  ae.leader = id_;
  ae.prev_index = prev;
  ae.prev_term = term_at(prev);
  ae.leader_commit = commit_index_;
  for (LogIndex i = next_index_[peer]; i <= last_index(); ++i) {
    ae.entries.push_back(entry_at(i));
  }
  cluster_.rpc(id_, peer, std::move(ae), &RaftNode::on_append_entries);
}

void RaftNode::on_append_entries(const AppendEntries& ae) {
  if (ae.term > term_) become_follower(ae.term);
  AppendReply reply{term_, false, id_, 0, last_index()};
  if (ae.term == term_) {
    if (role_ != Role::kFollower) role_ = Role::kFollower;
    reset_election_deadline();
    // Normalize a prev below our snapshot boundary: everything at or below
    // it is committed and identical in any log that contains it, so skip
    // the covered prefix of the entries instead of failing.
    LogIndex prev_index = ae.prev_index;
    std::size_t skip = 0;
    if (prev_index < snapshot_index_) {
      skip = static_cast<std::size_t>(
          std::min<LogIndex>(snapshot_index_ - prev_index, ae.entries.size()));
      prev_index += skip;
    }
    const bool prev_ok = prev_index >= snapshot_index_ &&
                         prev_index <= last_index() &&
                         (prev_index == ae.prev_index
                              ? term_at(prev_index) == ae.prev_term
                              : true);  // skipped prefix: committed, matches
    if (prev_ok) {
      // Append, truncating conflicting suffixes.
      LogIndex idx = prev_index;
      for (std::size_t e = skip; e < ae.entries.size(); ++e) {
        const LogEntry& entry = ae.entries[e];
        ++idx;
        if (idx <= last_index()) {
          if (term_at(idx) != entry.term) {
            log_.resize(static_cast<std::size_t>(idx - snapshot_index_ - 1));
            log_.push_back(entry);
          }
        } else {
          log_.push_back(entry);
        }
      }
      const LogIndex match = ae.prev_index + ae.entries.size();
      if (ae.leader_commit > commit_index_) {
        commit_index_ = std::min(ae.leader_commit, last_index());
        apply_committed();
      }
      reply.success = true;
      reply.match_index = match;
      reply.hint_last_index = last_index();
    }
  }
  cluster_.rpc(id_, ae.leader, reply, &RaftNode::on_append_reply);
}

void RaftNode::on_install_snapshot(const InstallSnapshot& is) {
  if (is.term > term_) become_follower(is.term);
  AppendReply reply{term_, false, id_, 0, last_index()};
  if (is.term == term_) {
    if (role_ != Role::kFollower) role_ = Role::kFollower;
    reset_election_deadline();
    if (is.last_index > last_applied_) {
      // Adopt the snapshot wholesale: any local suffix is either stale or
      // will be re-replicated by the leader from last_index on.
      log_.clear();
      snapshot_index_ = is.last_index;
      snapshot_term_ = is.last_term;
      commit_index_ = is.last_index;
      last_applied_ = is.last_index;
      cluster_.record_install(id_, is.leader, is.last_index);
    }
    reply.success = true;
    reply.match_index = std::max(is.last_index, commit_index_);
    reply.hint_last_index = last_index();
  }
  cluster_.rpc(id_, is.leader, reply, &RaftNode::on_append_reply);
}

void RaftNode::on_append_reply(const AppendReply& ar) {
  if (ar.term > term_) {
    become_follower(ar.term);
    return;
  }
  if (role_ != Role::kLeader || ar.term != term_) return;
  if (ar.success) {
    match_index_[ar.follower] =
        std::max(match_index_[ar.follower], ar.match_index);
    next_index_[ar.follower] = match_index_[ar.follower] + 1;
    advance_commit();
    // A lagging follower (e.g. fresh snapshot install) gets the remaining
    // suffix on the next heartbeat (<= 50 virtual ms away).
  } else {
    LogIndex next = next_index_[ar.follower];
    if (next > 1) --next;
    // Fast backoff: jump straight past the follower's log end instead of
    // probing one index per round trip (matters after wipe-restarts).
    if (ar.hint_last_index + 1 < next) next = ar.hint_last_index + 1;
    next_index_[ar.follower] = std::max<LogIndex>(next, 1);
    send_append_to(ar.follower);
  }
}

void RaftNode::advance_commit() {
  // Largest N with majority match and log[N].term == current term (§5.4.2).
  for (LogIndex n = last_index(); n > commit_index_; --n) {
    if (term_at(n) != term_) break;
    unsigned count = 0;
    for (NodeId p = 0; p < n_; ++p) {
      if (match_index_[p] >= n) ++count;
    }
    if (count > n_ / 2) {
      commit_index_ = n;
      apply_committed();
      break;
    }
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    // The apply callback may compact the log up to last_applied_ (the
    // replicated database checkpoints + compacts from inside apply), so
    // read the command before invoking it and use boundary-aware indexing.
    cluster_.record_apply(id_, entry_at(last_applied_).command);
  }
}

// --- cluster -------------------------------------------------------------------

RaftCluster::RaftCluster(unsigned n, std::uint64_t seed,
                         SimNet::Options net_opts, ApplyFn apply)
    : net_(seed, net_opts), applied_(n), apply_(std::move(apply)) {
  PROG_CHECK(n >= 1);
  nodes_.reserve(n);
  for (NodeId i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<RaftNode>(i, n, *this));
  }
}

int RaftCluster::leader() const {
  int best = -1;
  Term best_term = 0;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    const RaftNode& node = *nodes_[i];
    if (net_.is_down(i)) continue;
    if (node.role() == RaftNode::Role::kLeader && node.term() >= best_term) {
      best = static_cast<int>(i);
      best_term = node.term();
    }
  }
  return best;
}

bool RaftCluster::submit(Command cmd) {
  const int l = leader();
  if (l < 0) return false;
  return nodes_[static_cast<std::size_t>(l)]->submit(cmd);
}

}  // namespace prog::consensus
