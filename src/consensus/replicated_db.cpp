#include "consensus/replicated_db.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_set>
#include <utility>

#include "common/check.hpp"
#include "obs/engine_metrics.hpp"
#include "store/snapshot.hpp"

namespace prog::consensus {

namespace {

dur::CheckpointImage to_durable(const Checkpoint& cp) {
  dur::CheckpointImage ci;
  ci.seq = cp.batch_seq;
  ci.term = cp.term;
  ci.state_hash = cp.state_hash;
  ci.command_prefix = cp.command_prefix;
  ci.engine_stats = cp.engine_stats;
  ci.image = cp.image;
  return ci;
}

Checkpoint from_durable(const dur::CheckpointImage& ci) {
  Checkpoint cp;
  cp.batch_seq = ci.seq;
  cp.term = ci.term;
  cp.state_hash = ci.state_hash;
  cp.command_prefix = ci.command_prefix;
  cp.engine_stats = ci.engine_stats;
  cp.image = ci.image;
  return cp;
}

}  // namespace

ReplicatedDb::ReplicatedDb(unsigned replicas, std::uint64_t seed,
                           const SetupFn& setup, sched::EngineConfig config,
                           SimNet::Options net_opts, RecoveryOptions recovery)
    : config_(config),
      opts_(recovery),
      setup_(setup),
      cp_stores_(replicas),
      carried_stats_(replicas),
      quarantined_(replicas, 0),
      registry_(std::make_shared<obs::Registry>()),
      rm_(obs::ReplicaMetrics::create(*registry_)),
      cluster_(replicas, seed, net_opts,
               [this](NodeId node, LogIndex idx, Command cmd) {
                 apply(node, idx, cmd);
               }) {
  PROG_CHECK(setup_ != nullptr);
  for (unsigned i = 0; i < replicas; ++i) {
    replicas_.push_back(build_replica());
  }
  cluster_.set_install_handler(
      [this](NodeId follower, NodeId leader, LogIndex upto) {
        on_install(follower, leader, upto);
      });
  dur_.resize(replicas);
  queues_.resize(replicas);
  durable_mark_.resize(replicas, 0);
  qfw_seen_.resize(replicas, 0);
  if (opts_.vfs != nullptr) {
    dm_.emplace(dur::DurMetrics::create(*registry_));
    for (unsigned i = 0; i < replicas; ++i) {
      dur_[i] = std::make_unique<dur::DurableReplicaStorage>(
          *opts_.vfs, opts_.dur_dir + "/r" + std::to_string(i), opts_.storage,
          &*dm_);
      cluster_.node(i).set_meta_hook([this, i](Term t, std::int64_t vote) {
        dur_[i]->persist_meta(t, vote);
      });
    }
    // Cold start: whatever the directories already hold (a previous
    // incarnation's WAL + checkpoints) is recovered before the first batch,
    // so a ReplicatedDb can be torn down and rebuilt over the same Vfs.
    for (unsigned i = 0; i < replicas; ++i) durable_restart(i);
    // Commit queues come up only after recovery settled the boundary: the
    // queue's initial watermark is everything recovery proved durable.
    for (unsigned i = 0; i < replicas; ++i) make_commit_queue(i);
  }
  rm_.pipeline_depth->set(config_.pipeline_depth);
}

void ReplicatedDb::make_commit_queue(NodeId i) {
  if (opts_.vfs == nullptr || config_.pipeline_depth == 0) return;
  const std::uint64_t recovered = cluster_.applied(i).size();
  durable_mark_[i] = recovered;
  qfw_seen_[i] = 0;
  queues_[i] = std::make_unique<dur::DurableCommitQueue>(
      *dur_[i], i, config_.pipeline_depth, recovered);
}

void ReplicatedDb::quiesce_queue(NodeId i, LogIndex idx) {
  if (queues_[i] == nullptr) return;
  if (queues_[i]->watermark() < idx) {
    ++stats_.pipeline_fsync_stalls;
    rm_.pipeline_stall_fsync->inc();
  }
  queues_[i]->flush();
}

std::unique_ptr<db::Database> ReplicatedDb::build_replica() const {
  auto db = std::make_unique<db::Database>(config_);
  setup_(*db);
  return db;
}

// --- batch submission --------------------------------------------------------

bool ReplicatedDb::submit_batch(std::vector<sched::TxRequest> batch) {
  const Command cmd = next_cmd_;
  // Insert before submitting: a single-node cluster commits (and applies)
  // synchronously inside submit(), and apply() needs the pool entry.
  batch_pool_.insert_or_assign(cmd, std::move(batch));
  // Causal tracing: the submit-side trace id is the log index this command
  // will occupy in a quiet cluster (cmd + 1 — indexes are 1-based). The
  // context rides every message the submission causes (SimNet captures it),
  // and apply() re-derives the authoritative id from the actual log index.
  const std::uint64_t tseq = cmd + 1;
  obs::tracing::ScopedContext tsc(
      {tseq, obs::tracing::kNoReplica, trace_sampled(tseq)});
  if (trace_sampled(tseq)) {
    obs::tracing::SpanEvent ev;
    ev.kind = obs::tracing::SpanKind::kSubmit;
    ev.batch_seq = tseq;
    obs::tracing::emit(ev);
  }
  if (!cluster_.submit(cmd)) {
    batch_pool_.erase(cmd);
    return false;
  }
  ++next_cmd_;
  rm_.batches_submitted->inc();
  return true;
}

bool ReplicatedDb::submit_with_retry(std::vector<sched::TxRequest> batch,
                                     SimTime max_wait_ms) {
  // Overall deadline: the caller's budget, capped by the configured
  // cluster-wide bound — a client facing a permanently leaderless cluster
  // (e.g. a lost majority) times out instead of spinning forever.
  const SimTime deadline =
      std::min<SimTime>(max_wait_ms, std::max<SimTime>(opts_.submit_deadline_ms, 1));
  const Command cmd = next_cmd_;
  batch_pool_.insert_or_assign(cmd, std::move(batch));
  const std::uint64_t tseq = cmd + 1;
  obs::tracing::ScopedContext tsc(
      {tseq, obs::tracing::kNoReplica, trace_sampled(tseq)});
  if (trace_sampled(tseq)) {
    // One submit span per batch, however many retries the loop takes — the
    // retries are the same logical submission.
    obs::tracing::SpanEvent ev;
    ev.kind = obs::tracing::SpanKind::kSubmit;
    ev.batch_seq = tseq;
    obs::tracing::emit(ev);
  }
  SimTime waited = 0;
  SimTime step = std::max<SimTime>(opts_.retry_step_ms, 1);
  while (true) {
    if (cluster_.submit(cmd)) {
      ++next_cmd_;
      rm_.batches_submitted->inc();
      if (durable()) wait_durable_ack(waited, deadline);
      return true;
    }
    if (waited >= deadline) {
      batch_pool_.erase(cmd);
      ++stats_.submit_timeouts;
      rm_.submit_timeouts->inc();
      return false;
    }
    const SimTime slice = std::min(step, deadline - waited);
    cluster_.run_ms(slice);
    waited += slice;
    step = std::min<SimTime>(step * 2,
                             std::max<SimTime>(opts_.retry_max_step_ms, 1));
    ++stats_.submit_retries;
    rm_.submit_retries->inc();
  }
}

bool ReplicatedDb::durable_quorum_at(LogIndex idx) const noexcept {
  if (opts_.vfs == nullptr || idx == 0) return true;
  const unsigned n = cluster_.size();
  unsigned durable = 0;
  for (unsigned i = 0; i < n; ++i) {
    if (durable_watermark(i) >= idx) ++durable;
  }
  return durable >= n / 2 + 1;
}

void ReplicatedDb::wait_durable_ack(SimTime& waited, SimTime deadline) {
  // Durable ack semantics: leader acceptance is NOT an ack in durable mode.
  // The ack waits for the durable watermark — a quorum of replicas with the
  // batch past a WAL group-commit barrier — so a crash between agreement
  // and fsync can never lose an acked transaction. The acceptance already
  // happened: whatever the wait finds, this never turns into a failure (the
  // command is in the leader's log and will commit or be superseded on its
  // own terms); an expired deadline just means the caller resumes driving
  // virtual time itself.
  const int leader = cluster_.leader();
  if (leader < 0) return;
  const RaftNode& n = cluster_.node(static_cast<NodeId>(leader));
  const LogIndex idx =
      n.snapshot_index() + static_cast<LogIndex>(n.log().size());
  const unsigned quorum_n = cluster_.size() / 2 + 1;
  bool quorum = durable_quorum_at(idx);
  while (!quorum && waited < deadline) {
    cluster_.run_ms(1);
    ++waited;
    quorum = durable_quorum_at(idx);
    if (quorum || config_.pipeline_depth == 0) continue;
    // The fsync barriers run on real commit-queue threads. While the batch
    // is still replicating/applying in virtual time there is nothing to
    // wait on; once a quorum of replicas has *enqueued* the record, only
    // the barrier latency remains — park on the slowest queue's watermark
    // condition variable (event-driven, wakes on the fsync) instead of
    // burning sleep quanta in a poll loop.
    unsigned pushed = 0;
    for (unsigned i = 0; i < cluster_.size(); ++i) {
      if (queues_[i] != nullptr ? queues_[i]->pushed_mark() >= idx
                                : durable_mark_[i] >= idx) {
        ++pushed;
      }
    }
    if (pushed < quorum_n) continue;
    // One bounded park per virtual step, never a wall-only inner loop: the
    // outer run_ms(1) must keep flowing so replicas that are still
    // replicating (e.g. the non-quorum straggler) continue to make
    // progress in virtual time while we wait out the barrier latency.
    for (unsigned i = 0; i < cluster_.size(); ++i) {
      if (queues_[i] != nullptr && queues_[i]->pushed_mark() >= idx &&
          queues_[i]->watermark() < idx) {
        queues_[i]->wait_watermark(idx, std::chrono::microseconds(500));
        break;
      }
    }
    quorum = durable_quorum_at(idx);
  }
  if (!quorum) return;
  ++stats_.submit_acked_durable;
  rm_.submit_acked_durable->inc();
  if (trace_sampled(idx)) {
    unsigned reached = 0;
    for (unsigned i = 0; i < cluster_.size(); ++i) {
      if (durable_watermark(i) >= idx) ++reached;
    }
    obs::tracing::SpanEvent ev;
    ev.kind = obs::tracing::SpanKind::kAckDurable;
    ev.batch_seq = idx;
    ev.arg = reached;
    obs::tracing::emit(ev);
  }
}

std::size_t ReplicatedDb::reclaim_superseded() {
  // A pool entry is live iff its command can still (re)apply somewhere:
  // present in some node's applied record (a rebuilt replica replays it) or
  // in some node's log above its snapshot boundary (it may yet commit).
  // Everything else was appended under a leader that lost its term before
  // replicating — Raft's commit rules guarantee it can never commit.
  std::unordered_set<Command> live;
  const unsigned n = cluster_.size();
  for (NodeId i = 0; i < n; ++i) {
    for (Command c : cluster_.applied(i)) live.insert(c);
    for (const LogEntry& e : cluster_.node(i).log()) live.insert(e.command);
  }
  std::size_t reclaimed = 0;
  for (auto it = batch_pool_.begin(); it != batch_pool_.end();) {
    if (live.count(it->first) == 0) {
      it = batch_pool_.erase(it);
      ++reclaimed;
    } else {
      ++it;
    }
  }
  stats_.pool_reclaimed += reclaimed;
  rm_.pool_reclaimed->inc(reclaimed);
  return reclaimed;
}

const std::vector<sched::TxRequest>& ReplicatedDb::pool_batch(
    Command cmd) const {
  auto it = batch_pool_.find(cmd);
  PROG_CHECK_MSG(it != batch_pool_.end(),
                 "batch-pool entry missing (reclaimed while still needed?)");
  return it->second;
}

const std::optional<std::uint64_t>& ReplicatedDb::recorded_hash(
    LogIndex idx) const {
  static const std::optional<std::uint64_t> kNone;
  if (idx == 0 || idx > hash_history_.size()) return kNone;
  return hash_history_[static_cast<std::size_t>(idx - 1)];
}

void ReplicatedDb::record_hash(LogIndex idx, std::uint64_t hash) {
  if (idx == 0) return;
  if (idx > hash_history_.size()) {
    hash_history_.resize(static_cast<std::size_t>(idx));
  }
  std::optional<std::uint64_t>& rec =
      hash_history_[static_cast<std::size_t>(idx - 1)];
  if (!rec.has_value()) rec = hash;
}

// --- the apply path ----------------------------------------------------------

void ReplicatedDb::apply(NodeId node, LogIndex idx, Command cmd) {
  if (quarantined_[node] != 0) return;  // untrusted state: don't extend it
  PROG_CHECK_MSG(replicas_[node] != nullptr,
                 "apply on a crashed replica (raft node not crashed with it?)");
  // Causal tracing: the delivery context carried whatever batch caused this
  // message (often a later commit-index bump), so apply *overrides* it with
  // the authoritative identity of the batch being applied — (node, idx) —
  // for the engine and WAL spans executed below.
  obs::tracing::ScopedContext tsc({idx, node, trace_sampled(idx)});
  if (trace_sampled(idx)) {
    obs::tracing::SpanEvent ev;
    ev.kind = obs::tracing::SpanKind::kAgree;
    ev.batch_seq = idx;
    ev.replica = node;
    ev.arg = cmd;
    obs::tracing::emit(ev);
  }
  // Copy: every replica consumes its own instance of the batch.
  std::vector<sched::TxRequest> batch = pool_batch(cmd);
  if (config_.pipeline_depth > 0) {
    // Pipelined apply (DESIGN.md §14): stage P (predict + lock-table
    // population against the previous batch's snapshot) runs split from
    // stage X (worker execution), rotating the double-buffered lock-table
    // banks. Determinism forces P(N) to wait for X(N-1)'s snapshot
    // boundary, so every pipelined batch counts one structural
    // waiting-on-snapshot stall; the real overlap this buys is P/X of
    // batch N against stage D (the async fsync of N-1 and earlier).
    rm_.pipeline_stall_snapshot->inc();
    replicas_[node]->prepare_batch(std::move(batch));
    replicas_[node]->execute_prepared();
  } else {
    replicas_[node]->execute(std::move(batch));
  }
  rm_.batches_applied->inc();
  if (opts_.divergence_check) check_divergence(node, idx);
  if (quarantined_[node] != 0) return;  // divergence handling took over
  if (dur_[node] != nullptr) {
    // Group commit: one WAL record per agreed batch, carrying the
    // post-apply state hash for replay verification. At depth 0 the fsync
    // barrier runs inline on the apply path; at depth > 0 the record goes
    // to the async commit queue and the durable watermark advances once
    // the queue's shared barrier covers it.
    dur::WalRecord rec;
    rec.seq = idx;
    rec.term = cluster_.node(node).committed_term_at(idx);
    rec.command = cmd;
    rec.state_hash = replicas_[node]->state_hash();
    rec.batch = pool_batch(cmd);
    if (queues_[node] != nullptr) {
      queues_[node]->push(std::move(rec), trace_sampled(idx));
      const std::uint64_t qfw = queues_[node]->queue_full_waits();
      if (qfw > qfw_seen_[node]) {
        rm_.pipeline_stall_queue_full->inc(qfw - qfw_seen_[node]);
        qfw_seen_[node] = qfw;
      }
    } else {
      dur_[node]->append_batch(rec);
      durable_mark_[node] = idx;
    }
  }
  if (opts_.checkpoint_interval > 0 && idx % opts_.checkpoint_interval == 0) {
    take_checkpoint(node, idx);
  }
}

void ReplicatedDb::check_divergence(NodeId node, LogIndex idx) {
  const std::uint64_t hash = replicas_[node]->state_hash();
  if (idx > hash_history_.size()) {
    hash_history_.resize(static_cast<std::size_t>(idx));
  }
  std::optional<std::uint64_t>& rec =
      hash_history_[static_cast<std::size_t>(idx - 1)];
  if (!rec.has_value()) {
    // First applier defines the record. The leader always applies a batch
    // before any follower (it commits first), so a diverged follower can
    // never poison the history for the healthy majority.
    rec = hash;
    return;
  }
  if (*rec == hash) return;
  ++stats_.divergences_detected;
  ++stats_.quarantines;
  rm_.divergences->inc();
  rm_.quarantines->inc();
  quarantined_[node] = 1;
  if (obs::tracing::enabled()) {
    // The flight recorder's marquee trigger: dump the recent spans that
    // explain how this replica reached a different state hash.
    obs::tracing::trigger(
        obs::tracing::Anomaly::kDivergence,
        "replica " + std::to_string(node) + " state hash " +
            std::to_string(hash) + " != recorded " + std::to_string(*rec) +
            " at batch " + std::to_string(idx) + "; quarantined");
  }
  resync(node);
}

void ReplicatedDb::take_checkpoint(NodeId node, LogIndex idx) {
  const auto& prefix = cluster_.applied(node);
  PROG_CHECK_MSG(prefix.size() == idx,
                 "checkpoint boundary disagrees with the applied record");
  Checkpoint cp;
  cp.batch_seq = idx;
  cp.term = cluster_.node(node).committed_term_at(idx);
  cp.state_hash = replicas_[node]->state_hash();
  cp.image = store::serialize_visible(replicas_[node]->store());
  cp.command_prefix = prefix;
  // Stats baseline at the boundary: carried + live. Deterministic (counts
  // only), so every replica's checkpoint at `idx` carries the same values.
  cp.engine_stats = replica_engine_stats(node);
  if (dur_[node] != nullptr) {
    // Durable-watermark gate: checkpoint publication rotates the WAL tail,
    // so every record still in the async commit queue must reach its
    // barrier first (counted as a waiting-on-fsync stall when the
    // watermark lags the boundary).
    quiesce_queue(node, idx);
    dur_[node]->persist_checkpoint(to_durable(cp));
  }
  cp_stores_[node].add(std::move(cp), opts_.max_checkpoints);
  ++stats_.checkpoints_taken;
  rm_.checkpoints->inc();

  if (!opts_.compact_logs) return;
  // Compact to the newest checkpoint boundary at or below idx -
  // log_keep_tail. The boundary must be a checkpoint: an InstallSnapshot for
  // it is served from this node's checkpoint store.
  if (idx <= opts_.log_keep_tail) return;
  const Checkpoint* boundary =
      cp_stores_[node].latest_at_or_before(idx - opts_.log_keep_tail);
  if (boundary != nullptr && boundary->batch_seq > 0) {
    cluster_.node(node).compact_to(boundary->batch_seq);
    // Everything below the compaction point is reachable only through this
    // image: pin it against checkpoint-store retention.
    cp_stores_[node].set_anchor(static_cast<std::int64_t>(boundary->batch_seq));
  }
}

// --- crash / restart ---------------------------------------------------------

void ReplicatedDb::fold_stats(NodeId node) {
  if (replicas_[node] != nullptr) {
    carried_stats_[node] += replicas_[node]->engine_stats();
  }
}

void ReplicatedDb::crash_replica(NodeId i) {
  PROG_CHECK_MSG(replicas_[i] != nullptr, "crash_replica on a down replica");
  fold_stats(i);
  replicas_[i].reset();  // full in-memory loss
  quarantined_[i] = 0;
  cluster_.crash(i);
  // Durable mode: the in-memory checkpoint store dies with the process —
  // the disk (Vfs) is the only thing a crash spares. The non-durable model
  // keeps it, playing the role the Vfs now plays for real.
  if (dur_[i] != nullptr) {
    cp_stores_[i].clear();
    cp_stores_[i].set_anchor(-1);
  }
  if (queues_[i] != nullptr) {
    // Crash semantics for the async durability stage: records still queued
    // (agreed but never fsynced) die with the process, exactly like an OS
    // write-back queue. Recovery finds only what reached the platter.
    queues_[i]->stop_discard();
    queues_[i].reset();
  }
}

void ReplicatedDb::restart_replica(NodeId i) {
  PROG_CHECK_MSG(replicas_[i] == nullptr,
                 "restart_replica on a replica that is not down");
  replicas_[i] = build_replica();
  quarantined_[i] = 0;
  cluster_.restart(i);
  // The process lost everything but the checkpoint directory; the Raft node
  // models that as full disk loss, then (optionally) rejoins at the newest
  // local checkpoint as if it had installed a snapshot there.
  cluster_.node(i).wipe();
  if (dur_[i] != nullptr) {
    durable_restart(i);
    make_commit_queue(i);
    return;
  }
  const Checkpoint* cp = cp_stores_[i].latest();
  if (cp != nullptr && cp->batch_seq > 0) {
    replicas_[i]->restore_state(cp->image);
    cluster_.node(i).install_local_snapshot(cp->batch_seq, cp->term);
    cluster_.reset_applied(i, cp->command_prefix);
    // Reset the stats baseline to the checkpoint's own snapshot (discarding
    // the crash-time fold): the post-checkpoint suffix is about to be
    // replayed and must be counted exactly once.
    carried_stats_[i] = cp->engine_stats;
    ++stats_.checkpoint_restores;
    rm_.checkpoint_restores->inc();
    if (obs::tracing::enabled()) {
      obs::tracing::ScopedContext tsc({cp->batch_seq, i, true});
      obs::tracing::trigger(obs::tracing::Anomaly::kRecovery,
                            "replica " + std::to_string(i) +
                                " restarted from in-memory checkpoint at "
                                "batch " +
                                std::to_string(cp->batch_seq));
    }
  } else {
    cluster_.reset_applied(i, {});
    carried_stats_[i] = {};  // full replay recounts everything from zero
    ++stats_.full_rebuilds;
    rm_.full_rebuilds->inc();
  }
  // The committed suffix streams back in from the leader on its next
  // heartbeat (AppendEntries, or InstallSnapshot when compacted past us).
}

void ReplicatedDb::durable_restart(NodeId i) {
  dur::DurableReplicaStorage::Recovered rec = dur_[i]->recover();
  RaftNode& node = cluster_.node(i);
  if (rec.meta_ok) node.restore_meta(rec.term, rec.voted_for);

  // Repopulate the (volatile) checkpoint store from the surviving slots, so
  // this node can serve InstallSnapshot at its boundaries again.
  for (const dur::CheckpointImage& ci : rec.checkpoints) {
    cp_stores_[i].add(from_durable(ci), opts_.max_checkpoints);
  }

  // Restore the newest slot whose image actually reconciles (the CRC already
  // vouched for the bytes; this guards against writer bugs). On failure the
  // WAL suffix is unusable too — it only continues from the newest slot.
  const dur::CheckpointImage* chosen = nullptr;
  for (auto it = rec.checkpoints.rbegin(); it != rec.checkpoints.rend(); ++it) {
    try {
      replicas_[i]->restore_state(it->image);
      chosen = &*it;
      break;
    } catch (const std::exception&) {
      if (dm_.has_value()) dm_->checkpoint_decode_failures->inc();
      replicas_[i] = build_replica();  // a failed restore leaves partial state
    }
  }

  LogIndex base = 0;
  Term base_term = 0;
  std::vector<Command> prefix;
  if (chosen != nullptr) {
    base = chosen->seq;
    base_term = chosen->term;
    prefix = chosen->command_prefix;
    carried_stats_[i] = chosen->engine_stats;
    record_hash(base, chosen->state_hash);
  } else {
    carried_stats_[i] = {};
  }

  // The recovered WAL is the contiguous suffix above the newest decodable
  // slot; it lines up with `chosen` unless that slot failed to restore.
  LogIndex final_seq = base;
  Term final_term = base_term;
  std::size_t replayed = 0;
  LogIndex expect = base + 1;
  for (const dur::WalRecord& r : rec.wal) {
    if (r.seq != expect) break;
    std::vector<sched::TxRequest> batch = r.batch;
    replicas_[i]->execute(std::move(batch));
    ++stats_.wal_records_replayed;
    if (dm_.has_value()) dm_->wal_records_replayed->inc();
    if (replicas_[i]->state_hash() != r.state_hash) {
      // The record's hash disagrees with what re-execution produced: either
      // the persisted hash or the payload survived corrupted in a way the
      // CRC missed, or the dying replica had already diverged. Roll back to
      // the last verified boundary and let the leader re-stream the rest.
      ++stats_.replay_hash_mismatches;
      if (dm_.has_value()) dm_->replay_hash_mismatches->inc();
      replicas_[i] = build_replica();
      if (chosen != nullptr) replicas_[i]->restore_state(chosen->image);
      std::size_t redo = replayed;
      for (const dur::WalRecord& g : rec.wal) {
        if (redo == 0) break;
        std::vector<sched::TxRequest> again = g.batch;
        replicas_[i]->execute(std::move(again));
        --redo;
      }
      break;
    }
    // Verified by re-execution: as trustworthy as a first applier.
    record_hash(r.seq, r.state_hash);
    batch_pool_.emplace(r.command, r.batch);
    prefix.push_back(r.command);
    final_seq = r.seq;
    final_term = r.term;
    ++replayed;
    ++expect;
  }

  for (const Command c : prefix) next_cmd_ = std::max(next_cmd_, c + 1);

  if (final_seq == 0) {
    // Nothing locally recoverable: blank follower, leader re-streams all.
    cluster_.reset_applied(i, {});
    carried_stats_[i] = {};
    if (dm_.has_value() &&
        (rec.meta_ok || !rec.checkpoints.empty() || !rec.wal.empty())) {
      dm_->recovery_none->inc();
    }
    return;
  }

  node.install_local_snapshot(final_seq, final_term);
  cluster_.reset_applied(i, prefix);
  ++stats_.durable_recoveries;
  if (obs::tracing::enabled()) {
    obs::tracing::ScopedContext tsc({final_seq, i, true});
    obs::tracing::trigger(
        obs::tracing::Anomaly::kRecovery,
        "replica " + std::to_string(i) + " durably recovered to batch " +
            std::to_string(final_seq) + " (" +
            (chosen != nullptr ? "checkpoint + " : "") +
            std::to_string(replayed) + " WAL records replayed)");
  }
  if (chosen != nullptr) {
    ++stats_.checkpoint_restores;
    rm_.checkpoint_restores->inc();
  }
  if (dm_.has_value()) {
    if (chosen != nullptr && replayed > 0) {
      dm_->recovery_checkpoint_wal->inc();
    } else if (chosen != nullptr) {
      dm_->recovery_checkpoint->inc();
    } else {
      dm_->recovery_wal->inc();
    }
  }
  if (final_seq > base || chosen == nullptr) {
    // The rejoin boundary is above any stored checkpoint (WAL replay moved
    // it). Snapshot it now: if this node later leads and compacts here, the
    // install handler must find an image at exactly this seq.
    Checkpoint cp;
    cp.batch_seq = final_seq;
    cp.term = final_term;
    cp.state_hash = replicas_[i]->state_hash();
    cp.image = store::serialize_visible(replicas_[i]->store());
    cp.command_prefix = prefix;
    cp.engine_stats = replica_engine_stats(i);
    dur_[i]->persist_checkpoint(to_durable(cp));
    cp_stores_[i].add(std::move(cp), opts_.max_checkpoints);
    ++stats_.checkpoints_taken;
    rm_.checkpoints->inc();
  }
}

// --- leader-driven state transfer -------------------------------------------

void ReplicatedDb::on_install(NodeId follower, NodeId leader, LogIndex upto) {
  PROG_CHECK_MSG(replicas_[follower] != nullptr,
                 "InstallSnapshot delivered to a crashed replica");
  const Checkpoint* cp = cp_stores_[leader].latest_at_or_before(upto);
  PROG_CHECK_MSG(cp != nullptr && cp->batch_seq == upto,
                 "leader compacted its log past its own checkpoint store");
  // Rebuild rather than patch: the follower's engine counters cover whatever
  // prefix it executed locally, which the transferred image supersedes. A
  // fresh engine plus the checkpoint-carried baseline keeps
  // replica_engine_stats logical (each batch in the agreed prefix counted
  // exactly once).
  replicas_[follower] = build_replica();
  replicas_[follower]->restore_state(cp->image);
  carried_stats_[follower] = cp->engine_stats;
  // The transferred image is also a valid local checkpoint for the follower
  // (determinism: identical bytes regardless of which replica produced it).
  cp_stores_[follower].add(*cp, opts_.max_checkpoints);
  // The follower's log below `upto` is gone; pin the image that covers it.
  cp_stores_[follower].set_anchor(static_cast<std::int64_t>(cp->batch_seq));
  if (dur_[follower] != nullptr) {
    // Persist the transferred image and rotate the WAL to its boundary, so
    // a crash right after the install recovers locally instead of repeating
    // the transfer. The commit queue must quiesce first (the rotation pulls
    // the WAL tail out from under it) and restarts at the transferred
    // boundary: the checkpoint makes everything below `upto` durable.
    quiesce_queue(follower, upto);
    dur_[follower]->persist_checkpoint(to_durable(*cp));
    if (queues_[follower] != nullptr) {
      queues_[follower].reset();  // graceful: already drained
      make_commit_queue(follower);
    }
  }
  quarantined_[follower] = 0;
  ++stats_.snapshot_installs;
  rm_.snapshot_installs->inc();
}

// --- divergence re-sync ------------------------------------------------------

bool ReplicatedDb::resync(NodeId i) {
  if (replicas_[i] == nullptr) return false;
  // Copy: reset_applied is not called here, but the rebuild below must not
  // alias cluster state while we replay.
  const std::vector<Command> cmds = cluster_.applied(i);
  const LogIndex upto = static_cast<LogIndex>(cmds.size());

  replicas_[i] = build_replica();

  // Newest checkpoint whose (batch_seq, hash) the recorded history vouches
  // for. A diverged replica's later checkpoints carry corrupt images — the
  // hash cross-check rejects them deterministically.
  const Checkpoint* trusted = nullptr;
  const auto& entries = cp_stores_[i].entries();
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    const Checkpoint& cp = it->second;
    if (cp.batch_seq > upto) continue;
    const auto& rec = recorded_hash(cp.batch_seq);
    if (rec.has_value() && *rec == cp.state_hash) {
      trusted = &cp;
      break;
    }
  }

  // The rebuilt replica's stats baseline is the trusted checkpoint's (or
  // zero for a full replay). The diverged instance's counters are discarded
  // with its state — the logical record covers only the trusted prefix plus
  // the replay below, which is exactly what a healthy replica counted.
  LogIndex start = 0;
  if (trusted != nullptr) {
    replicas_[i]->restore_state(trusted->image);
    carried_stats_[i] = trusted->engine_stats;
    start = trusted->batch_seq;
    ++stats_.checkpoint_restores;
    rm_.checkpoint_restores->inc();
  } else {
    carried_stats_[i] = {};
    ++stats_.full_rebuilds;
    rm_.full_rebuilds->inc();
  }
  for (LogIndex k = start; k < upto; ++k) {
    auto it = batch_pool_.find(cmds[static_cast<std::size_t>(k)]);
    if (it == batch_pool_.end()) {
      // A cold-started durable cluster knows the pre-checkpoint prefix only
      // as state, not as pool entries — nothing local can re-execute it.
      // Wipe and let the leader re-stream the whole prefix (InstallSnapshot
      // clears the quarantine once the transferred state arrives).
      replicas_[i] = build_replica();
      carried_stats_[i] = {};
      cluster_.node(i).wipe();
      cluster_.reset_applied(i, {});
      quarantined_[i] = 0;
      ++stats_.full_rebuilds;
      rm_.full_rebuilds->inc();
      return false;
    }
    std::vector<sched::TxRequest> batch = it->second;
    replicas_[i]->execute(std::move(batch));
  }

  const bool was_quarantined = quarantined_[i] != 0;
  bool ok = true;
  if (upto > 0) {
    const auto& rec = recorded_hash(upto);
    ok = rec.has_value() && *rec == replicas_[i]->state_hash();
  }
  quarantined_[i] = ok ? 0 : 1;
  if (ok && was_quarantined) {
    ++stats_.resyncs;
    rm_.resyncs->inc();
  }
  return ok;
}

std::uint64_t ReplicatedDb::witness_state_hash() const {
  // A genuinely never-crashed witness: fresh database, the agreed command
  // sequence replayed start to finish. Recovery correctness means any
  // recovered replica at the same applied prefix hashes identically.
  std::unique_ptr<db::Database> witness = build_replica();
  for (const Command c : cluster_.applied(0)) {
    std::vector<sched::TxRequest> batch = pool_batch(c);
    witness->execute(std::move(batch));
  }
  return witness->state_hash();
}

// --- telemetry ---------------------------------------------------------------

void ReplicatedDb::refresh_gauges() {
  const unsigned n = cluster_.size();
  std::size_t min_applied = static_cast<std::size_t>(next_cmd_);
  unsigned down = 0;
  unsigned quar = 0;
  for (NodeId i = 0; i < n; ++i) {
    if (replicas_[i] == nullptr) {
      ++down;
      continue;
    }
    if (quarantined_[i] != 0) ++quar;
    min_applied = std::min(min_applied, cluster_.applied(i).size());
  }
  rm_.batch_lag->set(static_cast<std::int64_t>(next_cmd_) -
                     static_cast<std::int64_t>(min_applied));
  rm_.replicas_down->set(down);
  rm_.replicas_quarantined->set(quar);
  rm_.pipeline_depth->set(config_.pipeline_depth);
}

std::string ReplicatedDb::deterministic_counter_snapshot(unsigned i) const {
  const sched::EngineStats s = replica_engine_stats(i);
  // A private registry populated through the same handles the engine uses:
  // the snapshot's families, labels, and ordering match the live telemetry
  // exactly, so it can be diffed against a scrape.
  obs::Registry reg;
  obs::EngineMetrics em = obs::EngineMetrics::create(reg);
  em.batches->inc(s.batches);
  em.rounds->inc(s.rounds);
  em.mf_fallback_txns->inc(s.mf_fallback_txns);
  em.mf_fallback_batches->inc(s.mf_fallback_batches);
  for (unsigned c = 0; c < obs::kTxClasses; ++c) {
    em.committed[c]->inc(s.committed_by_class[c]);
    em.rolled_back[c]->inc(s.rolled_back_by_class[c]);
    em.validation_aborts[c]->inc(s.validation_aborts_by_class[c]);
  }
  return reg.serialize_deterministic();
}

}  // namespace prog::consensus
