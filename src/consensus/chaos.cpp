#include "consensus/chaos.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/check.hpp"

namespace prog::consensus {

namespace {

enum class NodeState : std::uint8_t { kUp, kCrashed, kPaused };

}  // namespace

ChaosReport run_chaos(ReplicatedDb& rdb, const BatchFn& make_batch,
                      const ChaosOptions& opts, std::uint64_t seed) {
  PROG_CHECK_MSG(opts.crash_pct + opts.pause_pct + opts.partition_pct +
                         opts.heal_pct + opts.burst_pct <=
                     100,
                 "chaos probabilities sum past 100%");
  Rng rng(seed);
  ChaosReport rep;
  const unsigned n = rdb.raft().size();
  const unsigned max_down = (n - 1) / 2;  // keep a state-bearing majority up
  std::vector<NodeState> st(n, NodeState::kUp);
  unsigned down = 0;
  SimNet& net = rdb.raft().net();
  obs::ReplicaMetrics& cm = rdb.replica_metrics();

  auto note = [&](const std::string& what) {
    std::ostringstream os;
    os << "t=" << net.now() << " " << what;
    rep.trace.push_back(os.str());
  };

  auto pick_up = [&]() -> int {
    std::vector<NodeId> ups;
    for (NodeId i = 0; i < n; ++i) {
      if (st[i] == NodeState::kUp) ups.push_back(i);
    }
    if (ups.empty()) return -1;
    return static_cast<int>(
        ups[static_cast<std::size_t>(rng.bounded(ups.size()))]);
  };

  auto heal_one = [&]() {
    if (net.partitioned()) {
      net.heal();
      ++rep.events.heals;
      cm.chaos_heals->inc();
      note("heal partition");
      return;
    }
    std::vector<NodeId> downs;
    for (NodeId i = 0; i < n; ++i) {
      if (st[i] != NodeState::kUp) downs.push_back(i);
    }
    if (downs.empty()) return;
    const NodeId v = downs[static_cast<std::size_t>(rng.bounded(downs.size()))];
    if (st[v] == NodeState::kCrashed) {
      rdb.restart_replica(v);
      note("restart replica " + std::to_string(v));
    } else {
      rdb.raft().restart(v);
      note("resume node " + std::to_string(v));
    }
    st[v] = NodeState::kUp;
    --down;
    ++rep.events.restarts;
    cm.chaos_restarts->inc();
  };

  for (unsigned round = 0; round < opts.rounds; ++round) {
    const unsigned roll = static_cast<unsigned>(rng.bounded(100));
    unsigned acc = 0;
    if (roll < (acc += opts.crash_pct)) {
      if (down < max_down) {
        const int v = pick_up();
        if (v >= 0) {
          rdb.crash_replica(static_cast<NodeId>(v));
          st[static_cast<std::size_t>(v)] = NodeState::kCrashed;
          ++down;
          ++rep.events.crashes;
          cm.chaos_crashes->inc();
          note("crash replica " + std::to_string(v));
        }
      }
    } else if (roll < (acc += opts.pause_pct)) {
      if (down < max_down) {
        const int v = pick_up();
        if (v >= 0) {
          rdb.raft().crash(static_cast<NodeId>(v));
          st[static_cast<std::size_t>(v)] = NodeState::kPaused;
          ++down;
          ++rep.events.pauses;
          cm.chaos_pauses->inc();
          note("pause node " + std::to_string(v));
        }
      }
    } else if (roll < (acc += opts.partition_pct)) {
      if (!net.partitioned() && n >= 3) {
        const unsigned m =
            1 + static_cast<unsigned>(rng.bounded(max_down));  // minority size
        std::vector<NodeId> all(n);
        std::iota(all.begin(), all.end(), 0);
        for (unsigned i = 0; i < m; ++i) {  // partial Fisher-Yates
          const std::size_t j =
              i + static_cast<std::size_t>(rng.bounded(n - i));
          std::swap(all[i], all[j]);
        }
        std::vector<NodeId> group(all.begin(), all.begin() + m);
        std::sort(group.begin(), group.end());
        std::ostringstream who;
        who << "partition minority {";
        for (NodeId g : group) who << " " << g;
        who << " }";
        net.partition(std::move(group));
        ++rep.events.partitions;
        cm.chaos_partitions->inc();
        note(who.str());
      }
    } else if (roll < (acc += opts.heal_pct)) {
      heal_one();
    } else if (roll < (acc += opts.burst_pct)) {
      net.drop_burst(net.now(), net.now() + opts.burst_len_ms,
                     opts.burst_drop_percent);
      ++rep.events.bursts;
      cm.chaos_bursts->inc();
      note("drop burst " + std::to_string(opts.burst_drop_percent) + "% for " +
           std::to_string(opts.burst_len_ms) + "ms");
    }

    auto batch = make_batch(opts.batch_size, rng);
    if (!rdb.submit_with_retry(std::move(batch), opts.submit_wait_ms)) {
      ++rep.submit_failures;
    }
    rdb.run_ms(opts.round_ms);
    if (opts.reclaim_every > 0 && (round + 1) % opts.reclaim_every == 0) {
      rdb.reclaim_superseded();
    }
  }

  // Quiesce: heal every outstanding fault, then drain until converged.
  if (net.partitioned()) {
    net.heal();
    ++rep.events.heals;
    cm.chaos_heals->inc();
    note("final heal");
  }
  for (NodeId i = 0; i < n; ++i) {
    if (st[i] == NodeState::kCrashed) {
      rdb.restart_replica(i);
      ++rep.events.restarts;
      cm.chaos_restarts->inc();
      note("final restart replica " + std::to_string(i));
    } else if (st[i] == NodeState::kPaused) {
      rdb.raft().restart(i);
      ++rep.events.restarts;
      cm.chaos_restarts->inc();
      note("final resume node " + std::to_string(i));
    }
    st[i] = NodeState::kUp;
  }
  for (int d = 0; d < 20 && !rdb.converged(); ++d) rdb.run_ms(opts.drain_ms);
  rdb.run_ms(opts.drain_ms);  // settle trailing heartbeats/checkpoints

  rep.converged = rdb.converged();
  const auto hashes = rdb.state_hashes();
  rep.hashes_match = !hashes.empty();
  for (std::uint64_t h : hashes) {
    if (h == 0 || h != hashes[0]) rep.hashes_match = false;
  }
  rep.state_hash = hashes.empty() ? 0 : hashes[0];
  rep.batches_submitted = rdb.batches_submitted();
  rep.batches_applied = rdb.raft().applied(0).size();
  rep.recovery = rdb.recovery_stats();

  // Telemetry divergence oracle: at quiescence every replica's deterministic
  // counter snapshot must be byte-identical (DESIGN.md §9).
  rep.counter_snapshot = rdb.deterministic_counter_snapshot(0);
  rep.counters_match = rep.converged && !rep.counter_snapshot.empty();
  for (NodeId i = 1; i < n; ++i) {
    if (rdb.deterministic_counter_snapshot(i) != rep.counter_snapshot) {
      rep.counters_match = false;
    }
  }
  rdb.refresh_gauges();
  return rep;
}

}  // namespace prog::consensus
