// Deterministic replica checkpoints.
//
// A checkpoint is the canonical state image of one replica after applying a
// prefix of the agreed batch sequence, keyed by (batch_seq, state_hash).
// Determinism makes checkpoints free of coordination: every replica that
// applies the same prefix produces the *byte-identical* image, so any
// replica's checkpoint can seed any other replica (InstallSnapshot state
// transfer), and a checkpoint whose hash disagrees with the cluster's hash
// history is evidence of divergence, never of timing.
//
// The store is in-memory (the simulated deployment's stand-in for a durable
// checkpoint directory) and survives replica crashes by construction — the
// recovery layer owns it outside the Database object it rebuilds.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "consensus/raft.hpp"
#include "sched/engine.hpp"

namespace prog::consensus {

struct Checkpoint {
  /// Number of committed batches folded into the image (= the log index of
  /// the last batch included).
  LogIndex batch_seq = 0;
  /// Raft term of entry `batch_seq` — lets a restarted node rejoin at this
  /// boundary as if it had installed a snapshot there.
  Term term = 0;
  /// state_hash() of the image; with batch_seq, the checkpoint's identity.
  std::uint64_t state_hash = 0;
  /// Canonical serialized visible state (store::serialize_visible).
  std::string image;
  /// Commands (batch ids) applied to reach this state, in order — the
  /// applied record a rejoining node fast-forwards to.
  std::vector<Command> command_prefix;
  /// Cumulative deterministic engine counters at this boundary. Restoring a
  /// checkpoint resets the replica's stats baseline to this value, so a
  /// batch replayed after a restore is counted exactly once — the
  /// deterministic-counter snapshot (telemetry divergence oracle, DESIGN.md
  /// §9) stays byte-identical to a replica that never crashed. Only the
  /// deterministic fields matter for that contract; timing fields in
  /// EngineStats are zero by construction (EngineStats holds counts only).
  sched::EngineStats engine_stats{};
};

/// Retention-bounded collection of checkpoints, keyed (batch_seq, hash).
class CheckpointStore {
 public:
  using Key = std::pair<LogIndex, std::uint64_t>;  // (batch_seq, state_hash)

  /// Inserts `cp` (idempotent for an identical (batch_seq, hash) key) and
  /// drops the oldest entries beyond `max_retained`. The recovery anchor
  /// (set_anchor) is never dropped: it is the newest checkpoint at or below
  /// the log compaction point, i.e. the only image from which a rejoining
  /// node can still reach the retained log suffix. Pruning it would leave a
  /// gap no replay can cross.
  void add(Checkpoint cp, std::size_t max_retained) {
    const Key key{cp.batch_seq, cp.state_hash};
    map_.insert_or_assign(key, std::move(cp));
    auto it = map_.begin();
    std::size_t kept = map_.size();
    while (max_retained > 0 && kept > max_retained && it != map_.end()) {
      if (anchor_ >= 0 && it->first.first == static_cast<LogIndex>(anchor_)) {
        ++it;  // anchored: exempt from retention
        continue;
      }
      it = map_.erase(it);
      --kept;
    }
  }

  /// Pins the checkpoint(s) at batch_seq `seq` against retention. Pass -1
  /// to clear. The anchor tracks the log compaction point: everything below
  /// it is unreachable by log replay, so the anchor image must survive.
  void set_anchor(std::int64_t seq) { anchor_ = seq; }
  std::int64_t anchor() const noexcept { return anchor_; }

  /// Newest checkpoint, or nullptr when empty.
  const Checkpoint* latest() const {
    return map_.empty() ? nullptr : &map_.rbegin()->second;
  }

  /// Newest checkpoint with batch_seq <= seq, or nullptr.
  const Checkpoint* latest_at_or_before(LogIndex seq) const {
    const Checkpoint* best = nullptr;
    for (const auto& [key, cp] : map_) {
      if (key.first > seq) break;
      best = &cp;
    }
    return best;
  }

  /// Exact lookup by batch_seq (any hash), or nullptr.
  const Checkpoint* at(LogIndex seq) const {
    auto it = map_.lower_bound({seq, 0});
    if (it == map_.end() || it->first.first != seq) return nullptr;
    return &it->second;
  }

  /// Exact lookup by the full (batch_seq, state_hash) key, or nullptr.
  const Checkpoint* find(LogIndex seq, std::uint64_t hash) const {
    auto it = map_.find({seq, hash});
    return it == map_.end() ? nullptr : &it->second;
  }

  /// Ordered (oldest-first) view — recovery scans it newest-first looking
  /// for a checkpoint the hash history vouches for.
  const std::map<Key, Checkpoint>& entries() const noexcept { return map_; }

  std::size_t size() const noexcept { return map_.size(); }
  bool empty() const noexcept { return map_.empty(); }
  void clear() { map_.clear(); }

 private:
  std::map<Key, Checkpoint> map_;
  std::int64_t anchor_ = -1;  ///< batch_seq pinned against pruning; -1 = none
};

}  // namespace prog::consensus
