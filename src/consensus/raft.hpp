// Raft-lite: leader election + log replication over the simulated network.
//
// Orders opaque 64-bit commands (the replicated database maps them to
// transaction batches). Implements the core Raft safety machinery: terms,
// randomized election timeouts, vote granting with the up-to-date-log check,
// AppendEntries consistency checking with conflict truncation, and
// majority-match commit advancement restricted to the leader's current term.
//
// Simplifications relative to the full protocol (documented in DESIGN.md):
// no snapshotting/log compaction, and commitIndex/lastApplied survive
// restarts (equivalent to a node restoring from a durable snapshot), so the
// apply callback fires exactly once per (node, index).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "consensus/sim_net.hpp"

namespace prog::consensus {

using Command = std::uint64_t;
using Term = std::uint64_t;
using LogIndex = std::uint64_t;  // 1-based; 0 is the sentinel

struct LogEntry {
  Term term = 0;
  Command command = 0;
};

class RaftCluster;

class RaftNode {
 public:
  enum class Role : std::uint8_t { kFollower, kCandidate, kLeader };

  RaftNode(NodeId id, unsigned cluster_size, RaftCluster& cluster);

  NodeId id() const noexcept { return id_; }
  Role role() const noexcept { return role_; }
  Term term() const noexcept { return term_; }
  LogIndex commit_index() const noexcept { return commit_index_; }
  const std::vector<LogEntry>& log() const noexcept { return log_; }

  /// Leader-only: appends a command for replication. False if not leader.
  bool submit(Command cmd);

  // --- driven by the cluster/simulator ------------------------------------
  void tick();
  /// Self-rescheduling timer pump (skips logic while the node is down).
  void tick_pump();
  void on_restart();

  struct RequestVote {
    Term term;
    NodeId candidate;
    LogIndex last_log_index;
    Term last_log_term;
  };
  struct VoteReply {
    Term term;
    bool granted;
    NodeId voter;
  };
  struct AppendEntries {
    Term term;
    NodeId leader;
    LogIndex prev_index;
    Term prev_term;
    std::vector<LogEntry> entries;
    LogIndex leader_commit;
  };
  struct AppendReply {
    Term term;
    bool success;
    NodeId follower;
    LogIndex match_index;
  };

  void on_request_vote(const RequestVote& rv);
  void on_vote_reply(const VoteReply& vr);
  void on_append_entries(const AppendEntries& ae);
  void on_append_reply(const AppendReply& ar);

 private:
  void become_follower(Term term);
  void start_election();
  void become_leader();
  void broadcast_append();
  void send_append_to(NodeId peer);
  void advance_commit();
  void apply_committed();
  void reset_election_deadline();

  LogIndex last_index() const noexcept {
    return static_cast<LogIndex>(log_.size());
  }
  Term last_term() const noexcept {
    return log_.empty() ? 0 : log_.back().term;
  }
  Term term_at(LogIndex i) const {
    return i == 0 ? 0 : log_[static_cast<std::size_t>(i - 1)].term;
  }

  const NodeId id_;
  const unsigned n_;
  RaftCluster& cluster_;

  // Persistent state.
  Term term_ = 0;
  std::int64_t voted_for_ = -1;
  std::vector<LogEntry> log_;

  // Volatile state.
  Role role_ = Role::kFollower;
  unsigned votes_ = 0;
  LogIndex commit_index_ = 0;  // persisted here (snapshot simplification)
  LogIndex last_applied_ = 0;
  std::vector<LogIndex> next_index_;
  std::vector<LogIndex> match_index_;
  SimTime election_deadline_ = 0;
  SimTime next_heartbeat_ = 0;
};

/// Owns the nodes and the simulated network; wires RPCs and timers.
class RaftCluster {
 public:
  /// `apply(node, index, command)` fires when `node` applies a committed
  /// entry — exactly once per (node, index), in index order.
  using ApplyFn = std::function<void(NodeId, LogIndex, Command)>;

  RaftCluster(unsigned n, std::uint64_t seed, SimNet::Options net_opts = {},
              ApplyFn apply = {});

  void run_ms(SimTime ms) { net_.run_until(net_.now() + ms); }

  /// Current leader with the highest term, or -1 when none is visible.
  int leader() const;

  /// Submits to the current leader. False when there is no leader.
  bool submit(Command cmd);

  /// Commands node `i` has applied so far, in order.
  const std::vector<Command>& applied(NodeId i) const {
    return applied_[i];
  }

  RaftNode& node(NodeId i) { return *nodes_[i]; }
  const RaftNode& node(NodeId i) const { return *nodes_[i]; }
  unsigned size() const noexcept { return static_cast<unsigned>(nodes_.size()); }
  SimNet& net() noexcept { return net_; }

  void crash(NodeId i) { net_.crash(i); }
  void restart(NodeId i) {
    net_.restart(i);
    nodes_[i]->on_restart();
  }

  // --- internal plumbing used by RaftNode ----------------------------------
  template <typename Msg, typename Handler>
  void rpc(NodeId from, NodeId to, Msg msg, Handler handler) {
    net_.send(from, to, [this, to, msg = std::move(msg), handler] {
      (nodes_[to].get()->*handler)(msg);
    });
  }
  SimNet& net_for_node() noexcept { return net_; }
  bool node_down(NodeId i) const { return net_.is_down(i); }
  void record_apply(NodeId node, Command cmd) {
    applied_[node].push_back(cmd);
    if (apply_) {
      apply_(node, static_cast<LogIndex>(applied_[node].size()), cmd);
    }
  }

 private:
  SimNet net_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::vector<std::vector<Command>> applied_;
  ApplyFn apply_;

  friend class RaftNode;
};

}  // namespace prog::consensus
