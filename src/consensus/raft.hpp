// Raft-lite: leader election + log replication over the simulated network.
//
// Orders opaque 64-bit commands (the replicated database maps them to
// transaction batches). Implements the core Raft safety machinery: terms,
// randomized election timeouts, vote granting with the up-to-date-log check,
// AppendEntries consistency checking with conflict truncation, and
// majority-match commit advancement restricted to the leader's current term.
//
// Also implements the recovery machinery the replicated database layers on
// top of: log compaction up to a snapshot boundary (compact_to), an
// InstallSnapshot-style catch-up RPC for followers whose needed prefix was
// compacted away (the cluster delegates the actual state transfer to the
// application through an install handler), full-state-loss restarts (wipe),
// and rejoin-from-local-checkpoint (install_local_snapshot).
//
// Simplifications relative to the full protocol (documented in DESIGN.md):
// commitIndex/lastApplied survive plain crash()/restart() (equivalent to a
// node restoring from a durable snapshot), so the apply callback fires
// exactly once per (node, index); wipe() models full disk loss and is only
// safe while a majority of nodes keeps its state (the chaos harness and the
// recovery layer maintain that invariant).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "consensus/sim_net.hpp"

namespace prog::consensus {

using Command = std::uint64_t;
using Term = std::uint64_t;
using LogIndex = std::uint64_t;  // 1-based; 0 is the sentinel

struct LogEntry {
  Term term = 0;
  Command command = 0;
};

class RaftCluster;

class RaftNode {
 public:
  enum class Role : std::uint8_t { kFollower, kCandidate, kLeader };

  RaftNode(NodeId id, unsigned cluster_size, RaftCluster& cluster);

  NodeId id() const noexcept { return id_; }
  Role role() const noexcept { return role_; }
  Term term() const noexcept { return term_; }
  LogIndex commit_index() const noexcept { return commit_index_; }
  LogIndex last_applied() const noexcept { return last_applied_; }
  /// Entries above the snapshot boundary (entry i is log()[i - 1 -
  /// snapshot_index()]).
  const std::vector<LogEntry>& log() const noexcept { return log_; }
  /// Highest index folded into this node's snapshot (0 = none). Entries at
  /// or below it have been compacted away and are only reachable as state.
  LogIndex snapshot_index() const noexcept { return snapshot_index_; }
  Term snapshot_term() const noexcept { return snapshot_term_; }

  /// Leader-only: appends a command for replication. False if not leader.
  bool submit(Command cmd);

  /// Discards log entries up to min(upto, last_applied): they are folded
  /// into the snapshot boundary. A follower that later needs them receives
  /// an InstallSnapshot instead of AppendEntries.
  void compact_to(LogIndex upto);

  /// Raft term of committed entry `index` (still in the log or exactly at
  /// the snapshot boundary) — recorded in checkpoints so a restarted node
  /// can rejoin at that boundary.
  Term committed_term_at(LogIndex index) const { return term_at(index); }

  // --- driven by the cluster/simulator ------------------------------------
  void tick();
  /// Self-rescheduling timer pump (skips logic while the node is down).
  void tick_pump();
  void on_restart();
  /// Full state loss (disk gone): term, vote, log, snapshot, commit and
  /// apply cursors all reset. The node rejoins as a blank follower.
  void wipe();
  /// After wipe(): rejoin at a locally restored checkpoint — the node
  /// behaves as if it had installed a snapshot at (index, term). The cluster
  /// must fast-forward the applied record to match (reset_applied).
  void install_local_snapshot(LogIndex index, Term term);

  /// Fired after every durable change to the (term, voted_for) pair — the
  /// election-safety state Raft requires on stable storage before answering
  /// an RPC. The durability layer persists it; wipe() deliberately does NOT
  /// fire the hook (wiping models losing the disk, and clobbering the
  /// on-disk meta before recovery reads it would defeat the point).
  using MetaHook = std::function<void(Term, std::int64_t)>;
  void set_meta_hook(MetaHook hook) { meta_hook_ = std::move(hook); }

  /// Reinstates persisted (term, voted_for) after a wipe, before the node
  /// rejoins — the counterpart of the meta hook. Does not re-fire the hook.
  void restore_meta(Term term, std::int64_t voted_for) {
    term_ = term;
    voted_for_ = voted_for;
  }

  struct RequestVote {
    Term term;
    NodeId candidate;
    LogIndex last_log_index;
    Term last_log_term;
  };
  struct VoteReply {
    Term term;
    bool granted;
    NodeId voter;
  };
  struct AppendEntries {
    Term term;
    NodeId leader;
    LogIndex prev_index;
    Term prev_term;
    std::vector<LogEntry> entries;
    LogIndex leader_commit;
  };
  struct AppendReply {
    Term term;
    bool success;
    NodeId follower;
    LogIndex match_index;
    /// Follower's last_index — lets the leader skip the one-step next_index
    /// walk and jump straight to the follower's log end (or decide the gap
    /// is below its snapshot boundary and send InstallSnapshot).
    LogIndex hint_last_index = 0;
  };
  /// Catch-up for followers whose needed prefix the leader compacted. The
  /// log metadata travels here; the cluster's install handler performs the
  /// application-level state transfer (checkpoint bytes).
  struct InstallSnapshot {
    Term term;
    NodeId leader;
    LogIndex last_index;
    Term last_term;
  };

  void on_request_vote(const RequestVote& rv);
  void on_vote_reply(const VoteReply& vr);
  void on_append_entries(const AppendEntries& ae);
  void on_append_reply(const AppendReply& ar);
  void on_install_snapshot(const InstallSnapshot& is);

 private:
  void become_follower(Term term);
  void start_election();
  void become_leader();
  void broadcast_append();
  void send_append_to(NodeId peer);
  void advance_commit();
  void apply_committed();
  void reset_election_deadline();
  void persist_meta() {
    if (meta_hook_) meta_hook_(term_, voted_for_);
  }

  LogIndex last_index() const noexcept {
    return snapshot_index_ + static_cast<LogIndex>(log_.size());
  }
  Term last_term() const noexcept {
    return log_.empty() ? snapshot_term_ : log_.back().term;
  }
  /// Entry at 1-based index `i`; i must be above the snapshot boundary.
  const LogEntry& entry_at(LogIndex i) const {
    return log_[static_cast<std::size_t>(i - snapshot_index_ - 1)];
  }
  Term term_at(LogIndex i) const {
    if (i == snapshot_index_) return snapshot_term_;
    PROG_CHECK_MSG(i > snapshot_index_ && i <= last_index(),
                   "term_at below the snapshot boundary");
    return entry_at(i).term;
  }

  const NodeId id_;
  const unsigned n_;
  RaftCluster& cluster_;

  // Persistent state.
  Term term_ = 0;
  std::int64_t voted_for_ = -1;
  std::vector<LogEntry> log_;  // entries above the snapshot boundary
  LogIndex snapshot_index_ = 0;
  Term snapshot_term_ = 0;

  // Volatile state.
  Role role_ = Role::kFollower;
  unsigned votes_ = 0;
  LogIndex commit_index_ = 0;  // persisted here (snapshot simplification)
  LogIndex last_applied_ = 0;
  std::vector<LogIndex> next_index_;
  std::vector<LogIndex> match_index_;
  SimTime election_deadline_ = 0;
  SimTime next_heartbeat_ = 0;
  MetaHook meta_hook_;
};

/// Owns the nodes and the simulated network; wires RPCs and timers.
class RaftCluster {
 public:
  /// `apply(node, index, command)` fires when `node` applies a committed
  /// entry — exactly once per (node, index), in index order (a snapshot
  /// install fast-forwards the applied record without firing apply; the
  /// install handler is responsible for the equivalent state transfer).
  using ApplyFn = std::function<void(NodeId, LogIndex, Command)>;
  /// `install(follower, leader, upto)` fires when `follower` accepts an
  /// InstallSnapshot covering entries 1..upto from `leader`. The handler
  /// must transfer the application state for that prefix (e.g. restore the
  /// leader's checkpoint into the follower's replica).
  using InstallFn = std::function<void(NodeId, NodeId, LogIndex)>;

  RaftCluster(unsigned n, std::uint64_t seed, SimNet::Options net_opts = {},
              ApplyFn apply = {});

  void run_ms(SimTime ms) { net_.run_until(net_.now() + ms); }

  /// Current leader with the highest term, or -1 when none is visible.
  int leader() const;

  /// Submits to the current leader. False when there is no leader.
  bool submit(Command cmd);

  /// Commands node `i` has applied so far, in order.
  const std::vector<Command>& applied(NodeId i) const {
    return applied_[i];
  }

  RaftNode& node(NodeId i) { return *nodes_[i]; }
  const RaftNode& node(NodeId i) const { return *nodes_[i]; }
  unsigned size() const noexcept { return static_cast<unsigned>(nodes_.size()); }
  SimNet& net() noexcept { return net_; }

  void crash(NodeId i) { net_.crash(i); }
  void restart(NodeId i) {
    net_.restart(i);
    nodes_[i]->on_restart();
  }

  void set_install_handler(InstallFn install) {
    install_ = std::move(install);
  }

  /// Overwrites node `i`'s applied-command record with `prefix` — used when
  /// the node rejoins from a checkpoint covering exactly those commands.
  void reset_applied(NodeId i, std::vector<Command> prefix) {
    applied_[i] = std::move(prefix);
  }

  // --- internal plumbing used by RaftNode ----------------------------------
  template <typename Msg, typename Handler>
  void rpc(NodeId from, NodeId to, Msg msg, Handler handler) {
    net_.send(from, to, [this, to, msg = std::move(msg), handler] {
      (nodes_[to].get()->*handler)(msg);
    });
  }
  SimNet& net_for_node() noexcept { return net_; }
  bool node_down(NodeId i) const { return net_.is_down(i); }
  void record_apply(NodeId node, Command cmd) {
    applied_[node].push_back(cmd);
    if (apply_) {
      apply_(node, static_cast<LogIndex>(applied_[node].size()), cmd);
    }
  }
  /// Snapshot install accepted: fast-forward the follower's applied record
  /// to the leader's committed prefix, then hand the state transfer to the
  /// application. Every command <= upto is committed, so the prefix is
  /// identical on any node that applied it.
  void record_install(NodeId follower, NodeId leader, LogIndex upto) {
    const auto& src = applied_[leader];
    PROG_CHECK_MSG(src.size() >= upto,
                   "snapshot leader has not applied its own snapshot prefix");
    applied_[follower].assign(src.begin(),
                              src.begin() + static_cast<std::ptrdiff_t>(upto));
    if (install_) install_(follower, leader, upto);
  }

 private:
  SimNet net_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::vector<std::vector<Command>> applied_;
  ApplyFn apply_;
  InstallFn install_;

  friend class RaftNode;
};

}  // namespace prog::consensus
