// Symbolic expressions — the vocabulary of transaction profiles.
//
// During symbolic execution every DSL value is an Expr over:
//   - transaction inputs  (kInput / kInputElem)      -> "direct" dependence
//   - values read from the data store (kPivotField)  -> "indirect" dependence
// following the paper's terminology (Section III-B): an expression that is a
// function of the inputs only is *direct*; one that depends on a pivot item
// read from the database is *indirect*.
//
// Expressions are immutable and hash-consed inside an ExprPool: structurally
// equal expressions are the same pointer, so read/write-set comparison during
// profile-tree pruning is a pointer comparison, and every expression carries a
// stable creation id used for canonical ordering.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace prog::expr {

enum class Op : std::uint8_t {
  kConst,       // literal value
  kInput,       // scalar procedure parameter (slot)
  kInputElem,   // array procedure parameter element (slot, index expr)
  kPivotField,  // field of a row returned by a GET site (site id, field)
  kAdd,
  kSub,
  kMul,
  kDiv,  // total: x / 0 == 0
  kMod,  // total: x % 0 == 0
  kNeg,
  kMin,
  kMax,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

/// True for comparison / boolean operators (result is 0 or 1).
bool is_boolean_op(Op op) noexcept;

/// Immutable expression node. Create only through ExprPool.
struct Expr {
  Op op = Op::kConst;
  Value cval = 0;          // kConst
  std::uint32_t slot = 0;  // kInput/kInputElem: param index; kPivotField: site
  FieldId field = 0;       // kPivotField
  const Expr* lhs = nullptr;
  const Expr* rhs = nullptr;
  std::uint32_t id = 0;  // creation index within the pool; canonical order
  bool direct = true;    // false iff some kPivotField occurs in the subtree

  bool is_const() const noexcept { return op == Op::kConst; }
};

/// Supplies concrete values when evaluating an expression.
class EvalContext {
 public:
  virtual ~EvalContext() = default;
  virtual Value input(std::uint32_t slot) const = 0;
  virtual Value input_elem(std::uint32_t slot, Value index) const = 0;
  /// Value of `field` of the row fetched by GET site `site`.
  virtual Value pivot(std::uint32_t site, FieldId field) const = 0;
};

/// Evaluates `e` to a concrete value under `ctx`. Division/modulo by zero
/// yield 0 (total semantics shared with the solver).
Value eval(const Expr* e, const EvalContext& ctx);

/// Collects the GET-site ids of every pivot occurring in `e`.
void collect_pivot_sites(const Expr* e, std::unordered_set<std::uint32_t>& out);

/// Human-readable rendering, e.g. "(in0 * 10 + in1)".
std::string to_string(const Expr* e);

/// Owning, hash-consing factory for Expr nodes. Not thread-safe: one pool is
/// used per offline profile build, and at runtime profiles are read-only.
class ExprPool {
 public:
  ExprPool() = default;
  ExprPool(const ExprPool&) = delete;
  ExprPool& operator=(const ExprPool&) = delete;

  const Expr* constant(Value v);
  const Expr* input(std::uint32_t slot);
  const Expr* input_elem(std::uint32_t slot, const Expr* index);
  const Expr* pivot_field(std::uint32_t site, FieldId field);

  const Expr* add(const Expr* a, const Expr* b);
  const Expr* sub(const Expr* a, const Expr* b);
  const Expr* mul(const Expr* a, const Expr* b);
  const Expr* div(const Expr* a, const Expr* b);
  const Expr* mod(const Expr* a, const Expr* b);
  const Expr* neg(const Expr* a);
  const Expr* min(const Expr* a, const Expr* b);
  const Expr* max(const Expr* a, const Expr* b);

  const Expr* cmp(Op op, const Expr* a, const Expr* b);
  const Expr* logical_and(const Expr* a, const Expr* b);
  const Expr* logical_or(const Expr* a, const Expr* b);
  const Expr* logical_not(const Expr* a);

  std::size_t size() const noexcept { return nodes_.size(); }

  /// Approximate resident bytes, reported in the Table I "memory" column.
  std::size_t memory_bytes() const noexcept;

 private:
  struct NodeKey {
    Op op;
    Value cval;
    std::uint32_t slot;
    FieldId field;
    const Expr* lhs;
    const Expr* rhs;
    friend bool operator==(const NodeKey&, const NodeKey&) = default;
  };
  struct NodeKeyHash {
    std::size_t operator()(const NodeKey& k) const noexcept;
  };

  const Expr* intern(NodeKey key);
  const Expr* binary(Op op, const Expr* a, const Expr* b);

  std::deque<Expr> nodes_;  // stable addresses
  std::unordered_map<NodeKey, const Expr*, NodeKeyHash> dedup_;
};

}  // namespace prog::expr
