#include "expr/expr.hpp"

#include <sstream>

namespace prog::expr {

namespace {

constexpr bool is_commutative(Op op) noexcept {
  switch (op) {
    case Op::kAdd:
    case Op::kMul:
    case Op::kMin:
    case Op::kMax:
    case Op::kEq:
    case Op::kNe:
    case Op::kAnd:
    case Op::kOr:
      return true;
    default:
      return false;
  }
}

constexpr Value apply_binary(Op op, Value a, Value b) {
  switch (op) {
    case Op::kAdd:
      return static_cast<Value>(static_cast<std::uint64_t>(a) +
                                static_cast<std::uint64_t>(b));
    case Op::kSub:
      return static_cast<Value>(static_cast<std::uint64_t>(a) -
                                static_cast<std::uint64_t>(b));
    case Op::kMul:
      return static_cast<Value>(static_cast<std::uint64_t>(a) *
                                static_cast<std::uint64_t>(b));
    case Op::kDiv:
      return b == 0 ? 0 : a / b;
    case Op::kMod:
      return b == 0 ? 0 : a % b;
    case Op::kMin:
      return a < b ? a : b;
    case Op::kMax:
      return a > b ? a : b;
    case Op::kEq:
      return a == b;
    case Op::kNe:
      return a != b;
    case Op::kLt:
      return a < b;
    case Op::kLe:
      return a <= b;
    case Op::kGt:
      return a > b;
    case Op::kGe:
      return a >= b;
    case Op::kAnd:
      return (a != 0 && b != 0) ? 1 : 0;
    case Op::kOr:
      return (a != 0 || b != 0) ? 1 : 0;
    default:
      throw InvariantError("apply_binary: not a binary op");
  }
}

constexpr Op negate_cmp(Op op) noexcept {
  switch (op) {
    case Op::kEq:
      return Op::kNe;
    case Op::kNe:
      return Op::kEq;
    case Op::kLt:
      return Op::kGe;
    case Op::kLe:
      return Op::kGt;
    case Op::kGt:
      return Op::kLe;
    case Op::kGe:
      return Op::kLt;
    default:
      return op;
  }
}

constexpr bool is_cmp(Op op) noexcept {
  switch (op) {
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe:
      return true;
    default:
      return false;
  }
}

}  // namespace

bool is_boolean_op(Op op) noexcept {
  return is_cmp(op) || op == Op::kAnd || op == Op::kOr || op == Op::kNot;
}

std::size_t ExprPool::NodeKeyHash::operator()(const NodeKey& k) const noexcept {
  std::uint64_t h = mix64(static_cast<std::uint64_t>(k.op));
  h = mix64(h ^ static_cast<std::uint64_t>(k.cval));
  h = mix64(h ^ (static_cast<std::uint64_t>(k.slot) << 16 ^ k.field));
  h = mix64(h ^ reinterpret_cast<std::uintptr_t>(k.lhs));
  h = mix64(h ^ reinterpret_cast<std::uintptr_t>(k.rhs));
  return static_cast<std::size_t>(h);
}

const Expr* ExprPool::intern(NodeKey key) {
  if (auto it = dedup_.find(key); it != dedup_.end()) return it->second;
  Expr node;
  node.op = key.op;
  node.cval = key.cval;
  node.slot = key.slot;
  node.field = key.field;
  node.lhs = key.lhs;
  node.rhs = key.rhs;
  node.id = static_cast<std::uint32_t>(nodes_.size());
  node.direct = key.op != Op::kPivotField &&
                (key.lhs == nullptr || key.lhs->direct) &&
                (key.rhs == nullptr || key.rhs->direct);
  nodes_.push_back(node);
  const Expr* p = &nodes_.back();
  dedup_.emplace(key, p);
  return p;
}

const Expr* ExprPool::constant(Value v) {
  return intern({Op::kConst, v, 0, 0, nullptr, nullptr});
}

const Expr* ExprPool::input(std::uint32_t slot) {
  return intern({Op::kInput, 0, slot, 0, nullptr, nullptr});
}

const Expr* ExprPool::input_elem(std::uint32_t slot, const Expr* index) {
  PROG_CHECK(index != nullptr);
  return intern({Op::kInputElem, 0, slot, 0, index, nullptr});
}

const Expr* ExprPool::pivot_field(std::uint32_t site, FieldId field) {
  return intern({Op::kPivotField, 0, site, field, nullptr, nullptr});
}

const Expr* ExprPool::binary(Op op, const Expr* a, const Expr* b) {
  PROG_CHECK(a != nullptr && b != nullptr);
  // Constant folding.
  if (a->is_const() && b->is_const()) {
    return constant(apply_binary(op, a->cval, b->cval));
  }
  // Cheap algebraic identities that keep profiles small and canonical.
  switch (op) {
    case Op::kAdd:
      if (a->is_const() && a->cval == 0) return b;
      if (b->is_const() && b->cval == 0) return a;
      break;
    case Op::kSub:
      if (b->is_const() && b->cval == 0) return a;
      if (a == b) return constant(0);
      break;
    case Op::kMul:
      if (a->is_const() && a->cval == 1) return b;
      if (b->is_const() && b->cval == 1) return a;
      if ((a->is_const() && a->cval == 0) || (b->is_const() && b->cval == 0)) {
        return constant(0);
      }
      break;
    case Op::kAnd:
      if (a->is_const()) return a->cval != 0 ? b : constant(0);
      if (b->is_const()) return b->cval != 0 ? a : constant(0);
      if (a == b) return a;
      break;
    case Op::kOr:
      if (a->is_const()) return a->cval != 0 ? constant(1) : b;
      if (b->is_const()) return b->cval != 0 ? constant(1) : a;
      if (a == b) return a;
      break;
    case Op::kMin:
    case Op::kMax:
      if (a == b) return a;
      break;
    case Op::kEq:
      if (a == b) return constant(1);
      break;
    case Op::kNe:
    case Op::kLt:
    case Op::kGt:
      if (a == b) return constant(0);
      break;
    case Op::kLe:
    case Op::kGe:
      if (a == b) return constant(1);
      break;
    default:
      break;
  }
  // Canonicalize commutative operand order by creation id.
  if (is_commutative(op) && b->id < a->id) std::swap(a, b);
  return intern({op, 0, 0, 0, a, b, });
}

const Expr* ExprPool::add(const Expr* a, const Expr* b) {
  return binary(Op::kAdd, a, b);
}
const Expr* ExprPool::sub(const Expr* a, const Expr* b) {
  return binary(Op::kSub, a, b);
}
const Expr* ExprPool::mul(const Expr* a, const Expr* b) {
  return binary(Op::kMul, a, b);
}
const Expr* ExprPool::div(const Expr* a, const Expr* b) {
  return binary(Op::kDiv, a, b);
}
const Expr* ExprPool::mod(const Expr* a, const Expr* b) {
  return binary(Op::kMod, a, b);
}
const Expr* ExprPool::min(const Expr* a, const Expr* b) {
  return binary(Op::kMin, a, b);
}
const Expr* ExprPool::max(const Expr* a, const Expr* b) {
  return binary(Op::kMax, a, b);
}

const Expr* ExprPool::neg(const Expr* a) {
  PROG_CHECK(a != nullptr);
  if (a->is_const()) {
    return constant(static_cast<Value>(0 - static_cast<std::uint64_t>(a->cval)));
  }
  return sub(constant(0), a);
}

namespace {

/// Linear form over opaque leaves: sum(coeff_i * leaf_i) + constant.
/// Non-linear subexpressions become opaque leaves with coefficient 1.
struct LinearForm {
  std::unordered_map<const Expr*, Value> coeffs;
  Value constant = 0;

  void add_term(const Expr* leaf, Value c) {
    if (c == 0) return;
    auto [it, inserted] = coeffs.try_emplace(leaf, c);
    if (!inserted) {
      it->second += c;
      if (it->second == 0) coeffs.erase(it);
    }
  }
};

void linearize(const Expr* e, Value scale, LinearForm& lf) {
  if (scale == 0) return;
  switch (e->op) {
    case Op::kConst:
      lf.constant += scale * e->cval;
      return;
    case Op::kAdd:
      linearize(e->lhs, scale, lf);
      linearize(e->rhs, scale, lf);
      return;
    case Op::kSub:
      linearize(e->lhs, scale, lf);
      linearize(e->rhs, -scale, lf);
      return;
    case Op::kMul:
      if (e->lhs->is_const()) {
        linearize(e->rhs, scale * e->lhs->cval, lf);
        return;
      }
      if (e->rhs->is_const()) {
        linearize(e->lhs, scale * e->rhs->cval, lf);
        return;
      }
      lf.add_term(e, scale);
      return;
    default:
      lf.add_term(e, scale);
      return;
  }
}

}  // namespace

const Expr* ExprPool::cmp(Op op, const Expr* a, const Expr* b) {
  PROG_CHECK_MSG(is_cmp(op), "ExprPool::cmp requires a comparison op");
  // Canonicalize `a <op> b` as `(a - b) <op> 0` over linear forms; if every
  // symbolic term cancels the comparison folds to a constant. This is what
  // collapses unrolled-loop guards like (next - 20 + k) < next.
  LinearForm lf;
  linearize(a, 1, lf);
  linearize(b, -1, lf);
  if (lf.coeffs.empty()) {
    return constant(apply_binary(op, lf.constant, 0));
  }
  return binary(op, a, b);
}

const Expr* ExprPool::logical_and(const Expr* a, const Expr* b) {
  return binary(Op::kAnd, a, b);
}

const Expr* ExprPool::logical_or(const Expr* a, const Expr* b) {
  return binary(Op::kOr, a, b);
}

const Expr* ExprPool::logical_not(const Expr* a) {
  PROG_CHECK(a != nullptr);
  if (a->is_const()) return constant(a->cval == 0 ? 1 : 0);
  if (a->op == Op::kNot) return a->lhs;
  if (is_cmp(a->op)) return binary(negate_cmp(a->op), a->lhs, a->rhs);
  return intern({Op::kNot, 0, 0, 0, a, nullptr});
}

std::size_t ExprPool::memory_bytes() const noexcept {
  return nodes_.size() * sizeof(Expr) +
         dedup_.size() * (sizeof(NodeKey) + sizeof(void*) * 2);
}

Value eval(const Expr* e, const EvalContext& ctx) {
  PROG_CHECK(e != nullptr);
  switch (e->op) {
    case Op::kConst:
      return e->cval;
    case Op::kInput:
      return ctx.input(e->slot);
    case Op::kInputElem:
      return ctx.input_elem(e->slot, eval(e->lhs, ctx));
    case Op::kPivotField:
      return ctx.pivot(e->slot, e->field);
    case Op::kNeg:
      return -eval(e->lhs, ctx);
    case Op::kNot:
      return eval(e->lhs, ctx) == 0 ? 1 : 0;
    default:
      return apply_binary(e->op, eval(e->lhs, ctx), eval(e->rhs, ctx));
  }
}

void collect_pivot_sites(const Expr* e,
                         std::unordered_set<std::uint32_t>& out) {
  if (e == nullptr || e->direct) return;
  if (e->op == Op::kPivotField) out.insert(e->slot);
  collect_pivot_sites(e->lhs, out);
  collect_pivot_sites(e->rhs, out);
}

namespace {

const char* op_symbol(Op op) {
  switch (op) {
    case Op::kAdd:
      return "+";
    case Op::kSub:
      return "-";
    case Op::kMul:
      return "*";
    case Op::kDiv:
      return "/";
    case Op::kMod:
      return "%";
    case Op::kEq:
      return "==";
    case Op::kNe:
      return "!=";
    case Op::kLt:
      return "<";
    case Op::kLe:
      return "<=";
    case Op::kGt:
      return ">";
    case Op::kGe:
      return ">=";
    case Op::kAnd:
      return "&&";
    case Op::kOr:
      return "||";
    case Op::kMin:
      return "min";
    case Op::kMax:
      return "max";
    default:
      return "?";
  }
}

void render(const Expr* e, std::ostringstream& os) {
  switch (e->op) {
    case Op::kConst:
      os << e->cval;
      return;
    case Op::kInput:
      os << "in" << e->slot;
      return;
    case Op::kInputElem:
      os << "in" << e->slot << '[';
      render(e->lhs, os);
      os << ']';
      return;
    case Op::kPivotField:
      os << "pivot" << e->slot << ".f" << e->field;
      return;
    case Op::kNeg:
      os << "-(";
      render(e->lhs, os);
      os << ')';
      return;
    case Op::kNot:
      os << "!(";
      render(e->lhs, os);
      os << ')';
      return;
    case Op::kMin:
    case Op::kMax:
      os << op_symbol(e->op) << '(';
      render(e->lhs, os);
      os << ", ";
      render(e->rhs, os);
      os << ')';
      return;
    default:
      os << '(';
      render(e->lhs, os);
      os << ' ' << op_symbol(e->op) << ' ';
      render(e->rhs, os);
      os << ')';
      return;
  }
}

}  // namespace

std::string to_string(const Expr* e) {
  if (e == nullptr) return "<null>";
  std::ostringstream os;
  render(e, os);
  return os.str();
}

}  // namespace prog::expr
