#include "sched/lock_table.hpp"

#include <bit>

#include "common/check.hpp"

namespace prog::sched {

namespace {

std::size_t round_pow2(std::size_t n) {
  if (n == 0) return 1;
  return std::bit_ceil(n);
}

}  // namespace

LockTable::LockTable(Options opts) : opts_(opts) {
  const std::size_t shards = round_pow2(opts.shards == 0 ? 1 : opts.shards);
  const std::size_t slots =
      round_pow2(opts.initial_slots == 0 ? 16 : opts.initial_slots);
  // Invariant: masking requires power-of-two shard and slot counts.
  PROG_CHECK_MSG((shards & (shards - 1)) == 0, "shard count must be 2^k");
  PROG_CHECK_MSG((slots & (slots - 1)) == 0, "slot count must be 2^k");
  shards_ = std::vector<Shard>(shards);
  shard_mask_ = shards - 1;
  for (Shard& sh : shards_) {
    sh.slots.resize(slots);
    sh.arena.resize(64);
  }
}

LockTable::Slot& LockTable::find_or_claim(Shard& sh, TKey key) {
  // Keep load factor under 3/4 so a dead slot always terminates the probe.
  if ((sh.live + 1) * 4 > sh.slots.size() * 3) rehash(sh);
  const std::size_t mask = sh.slots.size() - 1;
  std::size_t i = TKeyHash{}(key) & mask;
  for (;;) {
    Slot& s = sh.slots[i];
    if (s.epoch != sh.epoch) {
      // Dead (previous epoch or never used): claim it for this key.
      s.key = key;
      s.epoch = sh.epoch;
      s.head = kNull;
      s.tail = kNull;
      ++sh.live;
      return s;
    }
    if (s.key == key) return s;
    i = (i + 1) & mask;
  }
}

LockTable::Slot* LockTable::find(Shard& sh, TKey key) noexcept {
  const std::size_t mask = sh.slots.size() - 1;
  std::size_t i = TKeyHash{}(key) & mask;
  for (;;) {
    Slot& s = sh.slots[i];
    if (s.epoch != sh.epoch) return nullptr;
    if (s.key == key) return &s;
    i = (i + 1) & mask;
  }
}

void LockTable::rehash(Shard& sh) {
  rehashes_.fetch_add(1, std::memory_order_relaxed);
  std::vector<Slot> fresh(sh.slots.size() * 2);
  const std::size_t mask = fresh.size() - 1;
  for (const Slot& s : sh.slots) {
    if (s.epoch != sh.epoch) continue;  // dead slots are not migrated
    std::size_t i = TKeyHash{}(s.key) & mask;
    while (fresh[i].epoch == sh.epoch) i = (i + 1) & mask;
    fresh[i] = s;
  }
  sh.slots = std::move(fresh);
}

std::uint32_t LockTable::alloc_entry(Shard& sh) {
  if (sh.arena_used == sh.arena.size()) {
    arena_grows_.fetch_add(1, std::memory_order_relaxed);
    sh.arena.resize(sh.arena.size() * 2);
  }
  return sh.arena_used++;
}

void LockTable::grant_prefix(Shard& sh, Slot& slot,
                             std::vector<TxIdx>& granted) const {
  // Head is always eligible.
  Entry& head = sh.arena[slot.head];
  if (!head.granted) {
    head.granted = true;
    granted.push_back(head.tx);
  }
  if (!opts_.shared_reads || head.write) return;
  // Extend the granted prefix across consecutive readers.
  for (std::uint32_t e = head.next; e != kNull; e = sh.arena[e].next) {
    Entry& en = sh.arena[e];
    if (en.write) break;
    if (!en.granted) {
      en.granted = true;
      granted.push_back(en.tx);
    }
  }
}

bool LockTable::enqueue(TxIdx tx, TKey key, bool write, TxIdx* pred_out) {
  Shard& sh = shard_for(key);
  std::scoped_lock lock(sh.mu);
  Slot& s = find_or_claim(sh, key);
  bool granted = false;
  if (s.head == kNull) {
    granted = true;
  } else if (opts_.shared_reads && !write) {
    // Granted iff every entry ahead is a granted reader.
    granted = true;
    for (std::uint32_t e = s.head; e != kNull; e = sh.arena[e].next) {
      const Entry& en = sh.arena[e];
      if (en.write || !en.granted) {
        granted = false;
        break;
      }
    }
  }
  if (pred_out != nullptr && !granted) *pred_out = sh.arena[s.tail].tx;
  const std::uint32_t e = alloc_entry(sh);
  sh.arena[e] = {tx, kNull, write, granted};
  if (s.head == kNull) {
    s.head = e;
  } else {
    sh.arena[s.tail].next = e;
  }
  s.tail = e;
  entries_.fetch_add(1, std::memory_order_release);
  return granted;
}

void LockTable::release(TxIdx tx, TKey key, std::vector<TxIdx>& granted) {
  Shard& sh = shard_for(key);
  std::scoped_lock lock(sh.mu);
  Slot* s = find(sh, key);
  PROG_CHECK_MSG(s != nullptr, "release on unknown key");
  std::uint32_t prev = kNull;
  std::uint32_t e = s->head;
  while (e != kNull && sh.arena[e].tx != tx) {
    prev = e;
    e = sh.arena[e].next;
  }
  PROG_CHECK_MSG(e != kNull,
                 "release of a lock entry that was never enqueued");
  PROG_CHECK_MSG(sh.arena[e].granted, "release of an ungranted lock entry");
  const std::uint32_t next = sh.arena[e].next;
  if (prev == kNull) {
    s->head = next;
  } else {
    sh.arena[prev].next = next;
  }
  if (s->tail == e) s->tail = prev;
  entries_.fetch_sub(1, std::memory_order_release);
  if (s->head == kNull) return;  // slot stays live with an empty queue
  grant_prefix(sh, *s, granted);
}

void LockTable::begin_batch() {
  PROG_CHECK_MSG(empty(), "begin_batch on a non-drained lock table");
  for (Shard& sh : shards_) {
    std::scoped_lock lock(sh.mu);
    ++sh.epoch;  // retires every slot of the previous epoch in O(1)
    sh.live = 0;
    sh.arena_used = 0;  // resets the bump arena in O(1); no per-entry free
  }
}

void LockTable::clear() {
  for (Shard& sh : shards_) {
    std::scoped_lock lock(sh.mu);
    ++sh.epoch;
    sh.live = 0;
    sh.arena_used = 0;
  }
  entries_.store(0, std::memory_order_release);
}

std::size_t LockTable::verify_drained() const {
  scans_.fetch_add(1, std::memory_order_relaxed);
  std::size_t n = 0;
  for (const Shard& sh : shards_) {
    std::scoped_lock lock(sh.mu);
    for (const Slot& s : sh.slots) {
      if (s.epoch != sh.epoch) continue;
      for (std::uint32_t e = s.head; e != kNull; e = sh.arena[e].next) ++n;
    }
  }
  PROG_CHECK_MSG(n == entry_count(),
                 "lock-table O(1) counter diverged from the slow recount");
  return n;
}

}  // namespace prog::sched
