#include "sched/lock_table_legacy.hpp"

#include "common/check.hpp"

namespace prog::sched {

LegacyLockTable::LegacyLockTable(Options opts)
    : opts_(opts), shards_(opts.shards == 0 ? 1 : opts.shards) {}

void LegacyLockTable::grant_prefix(std::deque<Entry>& q,
                                   std::vector<TxIdx>& granted) const {
  if (q.empty()) return;
  // Head is always eligible.
  if (!q.front().granted) {
    q.front().granted = true;
    granted.push_back(q.front().tx);
  }
  if (!opts_.shared_reads || q.front().write) return;
  // Extend the granted prefix across consecutive readers.
  for (std::size_t i = 1; i < q.size(); ++i) {
    Entry& e = q[i];
    if (e.write) break;
    if (!e.granted) {
      e.granted = true;
      granted.push_back(e.tx);
    }
  }
}

bool LegacyLockTable::enqueue(TxIdx tx, TKey key, bool write,
                              TxIdx* pred_out) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  std::deque<Entry>& q = shard.queues[key];
  bool granted = false;
  if (q.empty()) {
    granted = true;
  } else if (opts_.shared_reads && !write) {
    // Granted iff every entry ahead is a granted reader.
    granted = true;
    for (const Entry& e : q) {
      if (e.write || !e.granted) {
        granted = false;
        break;
      }
    }
  }
  if (pred_out != nullptr && !granted) *pred_out = q.back().tx;
  q.push_back({tx, write, granted});
  return granted;
}

void LegacyLockTable::release(TxIdx tx, TKey key,
                              std::vector<TxIdx>& granted) {
  Shard& shard = shard_for(key);
  std::scoped_lock lock(shard.mu);
  auto it = shard.queues.find(key);
  PROG_CHECK_MSG(it != shard.queues.end(), "release on unknown key");
  std::deque<Entry>& q = it->second;
  bool found = false;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].tx == tx) {
      PROG_CHECK_MSG(q[i].granted, "release of an ungranted lock entry");
      q.erase(q.begin() + static_cast<std::ptrdiff_t>(i));
      found = true;
      break;
    }
  }
  PROG_CHECK_MSG(found, "release of a lock entry that was never enqueued");
  if (q.empty()) {
    shard.queues.erase(it);
    return;
  }
  grant_prefix(q, granted);
}

std::size_t LegacyLockTable::entry_count() const {
  scans_.fetch_add(1, std::memory_order_relaxed);
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    for (const auto& [key, q] : shard.queues) n += q.size();
  }
  return n;
}

void LegacyLockTable::clear() {
  scans_.fetch_add(1, std::memory_order_relaxed);
  for (Shard& shard : shards_) {
    std::scoped_lock lock(shard.mu);
    shard.queues.clear();
  }
}

}  // namespace prog::sched
