// The pre-hot-path-overhaul lock table, kept verbatim for one release as the
// ablation baseline behind EngineConfig::legacy_hot_path (bench_hotpath
// measures the arena table in lock_table.hpp against this).
//
// Shape: one std::deque<Entry> per (table, key) inside per-shard
// std::unordered_map buckets. Every enqueue may allocate (map node + deque
// block), every release erases from the middle of a deque, and entry_count()
// is a full scan of every shard under its spin lock — exactly the malloc and
// cache traffic the overhaul removes. Do not use in new code.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace prog::sched {

/// Index of a transaction within the executing batch.
using TxIdx = std::uint32_t;

class LegacyLockTable {
 public:
  struct Options {
    bool shared_reads = false;
    unsigned shards = 64;
  };

  LegacyLockTable() : LegacyLockTable(Options{}) {}
  explicit LegacyLockTable(Options opts);

  LegacyLockTable(const LegacyLockTable&) = delete;
  LegacyLockTable& operator=(const LegacyLockTable&) = delete;

  bool enqueue(TxIdx tx, TKey key, bool write, TxIdx* pred_out = nullptr);
  void release(TxIdx tx, TKey key, std::vector<TxIdx>& granted);

  /// Total entries currently queued. O(keys): scans every shard under its
  /// lock — the telemetry-gauge cost the overhaul's O(1) counter fixes.
  std::size_t entry_count() const;
  bool empty() const { return entry_count() == 0; }
  void clear();

  /// Full-shard scans performed so far (entry_count/empty/clear). The
  /// regression test for the telemetry gauge asserts the arena table's
  /// equivalent counter stays at zero on the sampling path.
  std::uint64_t shard_scans() const noexcept {
    return scans_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    TxIdx tx;
    bool write;
    bool granted;
  };
  struct Shard {
    mutable SpinLock mu;
    std::unordered_map<TKey, std::deque<Entry>, TKeyHash> queues;
  };

  Shard& shard_for(TKey key) {
    return shards_[TKeyHash{}(key) % shards_.size()];
  }
  const Shard& shard_for(TKey key) const {
    return shards_[TKeyHash{}(key) % shards_.size()];
  }

  void grant_prefix(std::deque<Entry>& q, std::vector<TxIdx>& granted) const;

  Options opts_;
  std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> scans_{0};
};

}  // namespace prog::sched
