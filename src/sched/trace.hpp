// Execution traces for throughput modeling.
//
// On a many-core host the harness measures wall-clock batch times directly.
// To keep the paper's figures reproducible on small machines, the engine can
// also record everything a scheduling model needs: per-attempt service
// times, the lock-table dependency edges (per-key FIFO predecessors), phase
// structure, and the serial queuer work. benchutil::modeled_makespan() then
// computes the batch duration for any worker count by list-scheduling the
// recorded DAG — deterministic and machine-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/lock_table.hpp"

namespace prog::sched {

/// One execution attempt of one transaction (a failed DT validation and its
/// later re-execution are separate attempts).
struct TraceAttempt {
  TxIdx tx = 0;
  std::uint16_t round = 0;  // 0 = main round; 1.. = MF re-execution rounds
  bool rot = false;
  bool failed = false;  // validation abort (service = validation cost)
  std::int64_t service_us = 0;
  /// Immediate lock-table predecessors within the same round.
  std::vector<TxIdx> preds;
};

struct BatchTrace {
  std::vector<TraceAttempt> attempts;
  /// All key-set preparation work (SE prediction or reconnaissance), summed.
  std::int64_t prepare_total_us = 0;
  /// Serial queuer work: lock-table enqueueing across all rounds.
  std::int64_t enqueue_us = 0;
  /// SF tail: failed transactions re-executed serially by one thread.
  std::int64_t sf_serial_us = 0;
  std::uint16_t rounds = 0;

  void clear() {
    attempts.clear();
    prepare_total_us = 0;
    enqueue_us = 0;
    sf_serial_us = 0;
    rounds = 0;
  }
};

}  // namespace prog::sched
