// The lock table (paper, Figure 2): one FIFO queue per (table, key).
//
// The Queuer Thread enqueues every transaction into the queues of all keys in
// its predicted key-set, following the order agreed by consensus. A
// transaction whose entries are all at the head of their queues cannot
// conflict with any other such transaction, so it is safe to execute them in
// parallel. Workers release entries after commit/abort, which grants the
// next entries in each queue.
//
// Two grant disciplines:
//   - exclusive (paper default): only the head entry of a queue is granted;
//   - shared reads (ablation): a maximal prefix of read entries is granted,
//     matching Calvin's reader/writer lock manager.
//
// Hot-path memory layout (DESIGN.md §10). The table is sharded by key hash
// into a power-of-two number of shards (mask, not modulo). Each shard is an
// open-addressing flat table of per-key queue heads plus a bump arena of
// queue entries:
//
//   - Slots are epoch-tagged: a slot belongs to the current batch iff its
//     epoch stamp matches the shard's. begin_batch() bumps the epoch, which
//     retires every slot and every arena entry in O(1) — no per-entry free,
//     no rehash, no destructor walk. Within an epoch slots are never deleted
//     (a drained queue keeps its slot with an empty list), so linear probe
//     chains only grow and need no tombstones.
//   - Queue entries are carved from a per-shard bump arena and linked into
//     per-key intrusive singly-linked lists by 32-bit index. Enqueue is an
//     arena bump + tail link; release unlinks (queues are short) and the
//     entry's storage is reclaimed wholesale at the next epoch.
//   - A maintained atomic counter makes entry_count()/empty() O(1) — the
//     telemetry lock-depth gauge and the end-of-batch invariant read it
//     without touching any shard.
//
// Thread-safety: enqueue is called by the single queuer (or by partitioned
// helpers under parallel_enqueue — each key still sees agreed order);
// release by any worker. Each shard is guarded by a spin lock held for a
// handful of instructions. begin_batch()/clear() require quiescence (the
// engine calls them strictly between rounds, when the table is drained).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace prog::sched {

/// Index of a transaction within the executing batch.
using TxIdx = std::uint32_t;

class LockTable {
 public:
  struct Options {
    bool shared_reads = false;
    /// Rounded up to the next power of two by the constructor.
    unsigned shards = 64;
    /// Initial flat-table capacity per shard (power of two).
    unsigned initial_slots = 64;
  };

  LockTable() : LockTable(Options{}) {}
  explicit LockTable(Options opts);

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Appends `tx` to `key`'s queue. Returns true when the entry is granted
  /// immediately (queue head, or shared-read prefix). When `pred_out` is
  /// non-null and the entry was not granted, it receives the immediately
  /// preceding entry's transaction (the dependency edge used by the
  /// scheduling model).
  bool enqueue(TxIdx tx, TKey key, bool write, TxIdx* pred_out = nullptr);

  /// Removes `tx`'s (granted) entry from `key`'s queue and appends any
  /// newly granted transactions to `granted`. Any thread.
  void release(TxIdx tx, TKey key, std::vector<TxIdx>& granted);

  /// Total entries currently queued. O(1): reads the maintained atomic
  /// counter — safe to sample from the telemetry path at any frequency.
  std::size_t entry_count() const noexcept {
    return entries_.load(std::memory_order_acquire);
  }

  /// True when every queue is empty — the end-of-batch invariant. O(1).
  bool empty() const noexcept { return entry_count() == 0; }

  /// Retires every slot and arena entry of the previous batch in O(shards):
  /// bumps each shard's epoch and resets its bump arena. Requires the table
  /// to be drained (checked) and quiesced.
  void begin_batch();

  /// Drops all queues regardless of content (tests; a correct batch drains
  /// naturally). Quiesced callers only.
  void clear();

  /// Number of shards after power-of-two rounding.
  std::size_t shard_count() const noexcept { return shards_.size(); }

  // --- diagnostics ---------------------------------------------------------
  struct Stats {
    std::uint64_t rehashes = 0;     ///< per-shard flat-table growths
    std::uint64_t arena_grows = 0;  ///< per-shard entry-arena growths
    std::uint64_t shard_scans = 0;  ///< full-table walks (verify_drained)
  };
  Stats stats() const noexcept {
    return {rehashes_.load(std::memory_order_relaxed),
            arena_grows_.load(std::memory_order_relaxed),
            scans_.load(std::memory_order_relaxed)};
  }

  /// Full-shard scans performed so far. The steady-state paths — enqueue,
  /// release, entry_count, empty, begin_batch — never scan; the telemetry
  /// regression test asserts this stays 0 across instrumented batches.
  std::uint64_t shard_scans() const noexcept {
    return scans_.load(std::memory_order_relaxed);
  }

  /// Debug walk: recounts every live queue the slow way and checks the
  /// result against the O(1) counter. Returns the recount. Counted in
  /// Stats::shard_scans — production paths must never call it.
  std::size_t verify_drained() const;

 private:
  static constexpr std::uint32_t kNull = 0xffffffffu;

  struct Entry {
    TxIdx tx = 0;
    std::uint32_t next = kNull;
    bool write = false;
    bool granted = false;
  };

  struct Slot {
    TKey key{};
    std::uint64_t epoch = 0;  ///< live iff equal to the shard's epoch
    std::uint32_t head = kNull;
    std::uint32_t tail = kNull;
  };

  struct Shard {
    mutable SpinLock mu;
    std::uint64_t epoch = 1;  ///< starts at 1: fresh slots (epoch 0) are dead
    std::size_t live = 0;     ///< live slots this epoch (load-factor input)
    std::vector<Slot> slots;  ///< open addressing, power-of-two capacity
    std::vector<Entry> arena;  ///< bump arena of queue entries
    std::uint32_t arena_used = 0;
  };

  Shard& shard_for(TKey key) noexcept {
    return shards_[TKeyHash{}(key) & shard_mask_];
  }
  const Shard& shard_for(TKey key) const noexcept {
    return shards_[TKeyHash{}(key) & shard_mask_];
  }

  /// Probes for `key`'s live slot; claims a dead slot (growing at 3/4 load)
  /// when absent. Shard lock held.
  Slot& find_or_claim(Shard& sh, TKey key);
  /// Probes for `key`'s live slot; nullptr when absent. Shard lock held.
  Slot* find(Shard& sh, TKey key) noexcept;
  /// Doubles the shard's flat table and reinserts its live slots.
  void rehash(Shard& sh);
  /// Bump-allocates one arena entry (growing geometrically).
  std::uint32_t alloc_entry(Shard& sh);
  /// Grants the maximal eligible prefix of `slot`'s queue.
  void grant_prefix(Shard& sh, Slot& slot, std::vector<TxIdx>& granted) const;

  Options opts_;
  std::vector<Shard> shards_;
  std::size_t shard_mask_ = 0;
  std::atomic<std::size_t> entries_{0};
  mutable std::atomic<std::uint64_t> rehashes_{0};
  mutable std::atomic<std::uint64_t> arena_grows_{0};
  mutable std::atomic<std::uint64_t> scans_{0};
};

}  // namespace prog::sched
