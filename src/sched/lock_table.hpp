// The lock table (paper, Figure 2): one FIFO queue per (table, key).
//
// The Queuer Thread enqueues every transaction into the queues of all keys in
// its predicted key-set, following the order agreed by consensus. A
// transaction whose entries are all at the head of their queues cannot
// conflict with any other such transaction, so it is safe to execute them in
// parallel. Workers release entries after commit/abort, which grants the
// next entries in each queue.
//
// Two grant disciplines:
//   - exclusive (paper default): only the head entry of a queue is granted;
//   - shared reads (ablation): a maximal prefix of read entries is granted,
//     matching Calvin's reader/writer lock manager.
//
// Thread-safety: enqueue is called by the single queuer; release by any
// worker. Queues are sharded; each shard is guarded by a spin lock held for
// a handful of instructions.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "common/types.hpp"

namespace prog::sched {

/// Index of a transaction within the executing batch.
using TxIdx = std::uint32_t;

class LockTable {
 public:
  struct Options {
    bool shared_reads = false;
    unsigned shards = 64;
  };

  LockTable() : LockTable(Options{}) {}
  explicit LockTable(Options opts);

  LockTable(const LockTable&) = delete;
  LockTable& operator=(const LockTable&) = delete;

  /// Appends `tx` to `key`'s queue. Returns true when the entry is granted
  /// immediately (queue head, or shared-read prefix). Queuer thread only.
  /// When `pred_out` is non-null and the entry was not granted, it receives
  /// the immediately preceding entry's transaction (the dependency edge used
  /// by the scheduling model).
  bool enqueue(TxIdx tx, TKey key, bool write, TxIdx* pred_out = nullptr);

  /// Removes `tx`'s (granted) entry from `key`'s queue and appends any
  /// newly granted transactions to `granted`. Any thread.
  void release(TxIdx tx, TKey key, std::vector<TxIdx>& granted);

  /// Total entries currently queued (diagnostics).
  std::size_t entry_count() const;

  /// True when every queue is empty — the end-of-batch invariant.
  bool empty() const;

  /// Drops all queues (used by tests; a correct batch drains naturally).
  void clear();

 private:
  struct Entry {
    TxIdx tx;
    bool write;
    bool granted;
  };
  struct Shard {
    mutable SpinLock mu;
    std::unordered_map<TKey, std::deque<Entry>, TKeyHash> queues;
  };

  Shard& shard_for(TKey key) {
    return shards_[TKeyHash{}(key) % shards_.size()];
  }
  const Shard& shard_for(TKey key) const {
    return shards_[TKeyHash{}(key) % shards_.size()];
  }

  /// Grants the maximal eligible prefix; appends newly granted to `granted`.
  void grant_prefix(std::deque<Entry>& q, std::vector<TxIdx>& granted) const;

  Options opts_;
  std::vector<Shard> shards_;
};

}  // namespace prog::sched
