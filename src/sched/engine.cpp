#include "sched/engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "common/stopwatch.hpp"

namespace prog::sched {

const char* to_string(System s) noexcept {
  switch (s) {
    case System::kPrognosticator:
      return "prognosticator";
    case System::kCalvin:
      return "calvin";
    case System::kNodo:
      return "nodo";
    case System::kSeq:
      return "seq";
  }
  return "?";
}

namespace {

/// NODO's conflict classes: one sentinel key per accessed table. Fills the
/// slot's prediction arena in place (no allocation in steady state).
void nodo_prediction(const sym::TxProfile& profile, sym::Prediction& pred) {
  pred.clear();
  for (TableId t : profile.tables_touched()) {
    pred.keys.push_back({t, 0});
    pred.write_keys.push_back({t, 0});
  }
}

/// Reconnaissance prediction (Calvin's OLLP): execute the full transaction
/// logic against the prepare snapshot to estimate the key-set. Validation
/// happens at execution time by key-set containment — the transaction aborts
/// iff it tries to access a key outside the locked set, exactly OLLP's rule
/// (value changes that do not alter the key-set are harmless).
/// Per-thread reusable execution result (DESIGN.md §10): each engine thread
/// runs at most one transaction at a time, so a thread-local scratch keeps
/// steady-state execution off the allocator entirely (paired with the
/// interpreter's own thread-local frame scratch in lang::Interp::run_into).
lang::ExecResult& exec_scratch() {
  static thread_local lang::ExecResult r;
  return r;
}

void recon_prediction(const lang::Interp& interp, const lang::Proc& proc,
                      const lang::TxInput& input,
                      const store::VersionedStore& store, BatchId snapshot,
                      sym::Prediction& pred) {
  store::SnapshotView view(store, snapshot);
  lang::ExecResult& r = exec_scratch();
  interp.run_into(proc, input, view, r);
  pred.clear();
  pred.keys.assign(r.reads.begin(), r.reads.end());
  pred.keys.append(r.writes.begin(), r.writes.end());
  std::sort(pred.keys.begin(), pred.keys.end());
  pred.keys.erase(std::unique(pred.keys.begin(), pred.keys.end()),
                  pred.keys.end());
  pred.write_keys.assign(r.writes.begin(), r.writes.end());
  std::sort(pred.write_keys.begin(), pred.write_keys.end());
}

/// Works over both std::vector<TKey> and the small-buffer key-sets.
template <typename Keys>
bool sorted_contains(const Keys& sorted, TKey key) {
  return std::binary_search(sorted.begin(), sorted.end(), key);
}

}  // namespace

Engine::Engine(store::VersionedStore& store, std::vector<ProcEntry> procs,
               EngineConfig config)
    : store_(store),
      procs_(std::move(procs)),
      config_([&config] {
        if (config.workers == 0) config.workers = 1;
        return config;
      }()),
      interp_(lang::Interp::Options{
          .tree_walk = config_.tree_walk_ablation}),
      lock_table_(LockTable::Options{config_.shared_read_locks, 64}),
      barrier_(config_.workers + 1) {
  for (const ProcEntry& e : procs_) {
    PROG_CHECK_MSG(e.proc != nullptr && e.profile != nullptr,
                   "ProcEntry must carry both procedure and profile");
  }
  // Static read-only-table elision: a table no registered procedure ever
  // writes cannot be the source of any conflict, so reads of it take no
  // lock-table entries. (Capped profiles might under-report writes; treat
  // every table they touch as written, conservatively.)
  std::unordered_set<TableId> touched, written;
  for (const ProcEntry& e : procs_) {
    for (TableId t : e.profile->tables_touched()) touched.insert(t);
    const auto& w = e.profile->complete() ? e.profile->tables_written()
                                          : e.profile->tables_touched();
    for (TableId t : w) written.insert(t);
  }
  for (TableId t : touched) {
    if (!written.contains(t)) immutable_tables_.insert(t);
  }
  // txlint pass 3: per-type static footprints for the per-round conflict
  // census. Derived from the AST, so they cover every path regardless of
  // profile completeness. Only Prognosticator uses the elision; baselines
  // keep the paper's exact lock behavior.
  {
    std::vector<const lang::Proc*> ps;
    ps.reserve(procs_.size());
    for (const ProcEntry& e : procs_) ps.push_back(e.proc);
    conflict_matrix_ = analysis::ConflictMatrix::from_procs(ps);
  }
  elision_enabled_ = config_.static_conflict_elision &&
                     config_.system == System::kPrognosticator;
  if (config_.telemetry) {
    registry_ = std::make_shared<obs::Registry>();
    metrics_.emplace(obs::EngineMetrics::create(*registry_));
  }
  if (config_.pipeline_depth > 0) {
    // Second per-batch lock-table bank: batches alternate banks so stage P
    // of the pipeline owns a bank the previous batch is not draining.
    lock_table_alt_ = std::make_unique<LockTable>(
        LockTable::Options{config_.shared_read_locks, 64});
  }
  ready_slots_ = config_.workers + 1;  // slot 0 = queuer, i+1 = worker i
  ready_ = std::make_unique<WorkStealingDeque<TxIdx>[]>(ready_slots_);
  if (config_.it_memo) {
    it_memo_.resize(ready_slots_);
    for (auto& bank : it_memo_) bank.resize(kMemoWays);
  }
  skip_tables_.resize(procs_.size());
  rot_queues_.resize(config_.workers);
  workers_.reserve(config_.workers);
  for (unsigned i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Engine::~Engine() {
  phase_.store(Phase::kShutdown);
  barrier_.arrive_and_wait();
  for (std::thread& t : workers_) t.join();
}

void Engine::worker_main(unsigned worker_idx) {
  for (;;) {
    barrier_.arrive_and_wait();  // phase announced
    const Phase p = phase_.load(std::memory_order_acquire);
    if (p == Phase::kShutdown) return;
    if (p == Phase::kRotPrepare) {
      do_rot_prepare(worker_idx);
    } else if (p == Phase::kEnqueue) {
      do_enqueue_partition(worker_idx + 1);
    } else {
      do_exec(worker_idx + 1);
    }
    barrier_.arrive_and_wait();  // phase complete
  }
}

template <typename Fn>
void Engine::run_phase(Phase p, const Fn& own_work) {
  if (config_.serial_measurement) {
    // The queuer performs the workers' share too, single-threaded.
    if (p == Phase::kRotPrepare) {
      for (unsigned w = 0; w < config_.workers; ++w) {
        for (TxIdx t : rot_queues_[w]) execute_rot(t);
      }
      while (auto i = prep_tickets_.claim()) prepare_tx(prep_list_[*i]);
    } else if (p == Phase::kEnqueue) {
      for (unsigned w = 0; w < config_.workers; ++w) {
        do_enqueue_partition(w + 1);
      }
    } else if (p == Phase::kExec) {
      do_exec(0);
    }
    own_work();  // drains whatever the shared claims left over (no-ops)
    return;
  }
  phase_.store(p, std::memory_order_release);
  barrier_.arrive_and_wait();
  own_work();
  barrier_.arrive_and_wait();
}

sym::TxClass Engine::effective_class(const ProcEntry& entry) const {
  const sym::TxClass k = entry.profile->klass();
  if (k == sym::TxClass::kReadOnly) return k;
  if (config_.system == System::kNodo) return sym::TxClass::kIndependent;
  // Reconnaissance validates reads against the snapshot, so every update
  // transaction behaves like a DT under it.
  if (config_.system == System::kCalvin || config_.use_recon ||
      !entry.profile->complete()) {
    return sym::TxClass::kDependent;
  }
  return k;
}

void Engine::prepare_tx(TxIdx idx, unsigned part) {
  TxnSlot& s = slots_[idx];
  Stopwatch sw;
  if (config_.accept_client_predictions && s.req->client_pred != nullptr &&
      s.klass == sym::TxClass::kIndependent &&
      config_.system == System::kPrognosticator && !config_.use_recon) {
    s.pred = *s.req->client_pred;
    return;  // server-side preparation fully offloaded
  }
  if (config_.system == System::kNodo) {
    nodo_prediction(*s.entry->profile, s.pred);
  } else if (config_.system == System::kCalvin || config_.use_recon ||
             !s.entry->profile->complete()) {
    // Calvin resubmissions carry a fresh reconnaissance (recon_fresh).
    const BatchId snap = (config_.system == System::kCalvin &&
                          s.req->recon_fresh)
                             ? batch_ - 1
                             : prep_snapshot_;
    recon_prediction(interp_, *s.entry->proc, s.req->input, store_, snap,
                     s.pred);
  } else {
    store::SnapshotView view(store_, prep_snapshot_);
    if (config_.it_memo && s.klass == sym::TxClass::kIndependent) {
      predict_it_memo(s, view, part);
    } else {
      s.entry->profile->predict_into(s.req->input, view, s.pred,
                                     config_.tree_walk_ablation);
    }
  }
  const std::int64_t us = sw.elapsed_micros();
  ctr_all_prepare_us_.fetch_add(us, std::memory_order_relaxed);
  span(obs::tracing::SpanKind::kPredict, idx, us, current_round_,
       static_cast<std::uint64_t>(s.klass));
  if (s.klass == sym::TxClass::kDependent) {
    s.prepare_us = us;
    ctr_prepare_us_.fetch_add(us, std::memory_order_relaxed);
    ctr_prepared_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Engine::predict_it_memo(TxnSlot& s, const store::ReadView& view,
                             unsigned part) {
  // ITs read no pivots, so the prediction is a pure function of (procedure,
  // input) — the snapshot the view is pinned to cannot matter. That is what
  // makes a cross-batch memo sound; it_memo_check re-proves it per hit.
  static thread_local std::vector<Value> flat;
  flat.clear();
  std::uint64_t h = mix64(0x9e3779b97f4a7c15ull ^ s.req->proc);
  for (const lang::Arg& a : s.req->input.args) {
    if (a.is_array) {
      for (const Value v : a.array) {
        flat.push_back(v);
        h = mix64(h ^ static_cast<std::uint64_t>(v));
      }
    } else {
      flat.push_back(a.scalar);
      h = mix64(h ^ static_cast<std::uint64_t>(a.scalar));
    }
  }
  MemoEntry& e = it_memo_[part][h & (kMemoWays - 1)];
  if (e.valid && e.proc == s.req->proc && e.hash == h && e.flat == flat) {
    s.pred = e.pred;  // copy-assign reuses the slot arena's spill buffers
    it_memo_hits_.fetch_add(1, std::memory_order_relaxed);
    if (metrics_) metrics_->it_memo_hits->inc();
    if (config_.it_memo_check) {
      sym::Prediction fresh;
      s.entry->profile->predict_into(s.req->input, view, fresh,
                                     config_.tree_walk_ablation);
      PROG_CHECK_MSG(fresh.keys == s.pred.keys &&
                         fresh.write_keys == s.pred.write_keys,
                     "IT memo returned a stale prediction");
    }
    return;
  }
  s.entry->profile->predict_into(s.req->input, view, s.pred,
                                 config_.tree_walk_ablation);
  it_memo_misses_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_) metrics_->it_memo_misses->inc();
  e.valid = true;
  e.proc = s.req->proc;
  e.hash = h;
  e.flat = flat;
  e.pred = s.pred;
}

void Engine::capture_output(TxIdx idx, std::vector<Value> emitted) {
  if (!config_.capture_outputs || emitted.empty()) return;
  std::scoped_lock lock(commit_mu_);
  outputs_.emplace_back(idx, std::move(emitted));
}

void Engine::execute_rot(TxIdx idx) {
  const TxnSlot& s = slots_[idx];
  Stopwatch sw;
  store::SnapshotView view(store_, batch_ - 1);
  lang::ExecResult& r = exec_scratch();
  interp_.run_into(*s.entry->proc, s.req->input, view, r);
  capture_output(idx, std::move(r.emitted));
  if (config_.check_containment) {
    // ROT key-sets are not predicted (they take no locks); just confirm the
    // profile's table classes cover the accesses.
    for (const TKey& k : r.reads) {
      const auto& tables = s.entry->profile->tables_touched();
      PROG_CHECK_MSG(std::find(tables.begin(), tables.end(), k.table) !=
                         tables.end(),
                     "ROT read outside its profiled tables");
    }
  }
  ctr_committed_[0].fetch_add(1, std::memory_order_relaxed);
  span(obs::tracing::SpanKind::kExecute, idx, sw.elapsed_micros(), 0,
       /*arg=ROT class*/ 0);
  if (metrics_) {
    metrics_->txn_latency_us[0]->observe(sw.elapsed_micros());
  }
  if (trace_ != nullptr) {
    std::scoped_lock lock(trace_mu_);
    trace_->attempts.push_back(
        {idx, 0, /*rot=*/true, /*failed=*/false, sw.elapsed_micros(), {}});
  }
}

void Engine::do_rot_prepare(unsigned worker_idx) {
  for (TxIdx t : rot_queues_[worker_idx]) execute_rot(t);
  if (config_.multi_queue_prepare) {
    while (auto i = prep_tickets_.claim()) {
      prepare_tx(prep_list_[*i], worker_idx + 1);
    }
  }
}

void Engine::enqueue_tx(TxIdx idx) {
  TxnSlot& s = slots_[idx];
  s.trace_preds.clear();
  int total = 0;
  for (const TKey& key : s.pred.keys) total += needs_lock(key, s) ? 1 : 0;
  s.locks_remaining.store(total, std::memory_order_relaxed);
  if (total == 0) {
    seed_ready(idx);
    return;
  }
  int granted_now = 0;
  for (const TKey& key : s.pred.keys) {
    if (!needs_lock(key, s)) continue;
    const bool write = sorted_contains(s.pred.write_keys, key);
    TxIdx pred = idx;
    if (active_lt_->enqueue(idx, key, write,
                            trace_ != nullptr ? &pred : nullptr)) {
      ++granted_now;
    } else if (trace_ != nullptr && pred != idx) {
      s.trace_preds.push_back(pred);
    }
  }
  if (granted_now > 0 &&
      s.locks_remaining.fetch_sub(granted_now, std::memory_order_acq_rel) ==
          granted_now) {
    seed_ready(idx);
  }
}

void Engine::do_enqueue_partition(unsigned partition) {
  const unsigned parts = config_.workers + 1;
  for (TxIdx idx : *enqueue_order_) {
    TxnSlot& s = slots_[idx];
    for (const TKey& key : s.pred.keys) {
      if (!needs_lock(key, s)) continue;
      if (TKeyHash{}(key) % parts != partition) continue;
      const bool write = sorted_contains(s.pred.write_keys, key);
      TxIdx pred = idx;
      if (active_lt_->enqueue(idx, key, write,
                              trace_ != nullptr ? &pred : nullptr)) {
        if (s.locks_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Each participant owns exactly one deque (its partition index),
          // so this push is an owner push even though the phase is parallel.
          ready_push(idx, partition);
        }
      } else if (trace_ != nullptr && pred != idx) {
        std::scoped_lock lock(trace_mu_);
        s.trace_preds.push_back(pred);
      }
    }
  }
}

void Engine::compute_conflict_census(const std::vector<TxIdx>& order) {
  if (!elision_enabled_) return;
  // Instances per type in this round, then touch/write counts per table.
  // The census is a pure function of the round's transaction multiset, so
  // every replica computes the same elision decisions — the schedule stays
  // deterministic.
  std::vector<std::uint32_t> instances(procs_.size(), 0);
  for (TxIdx i : order) ++instances[slots_[i].req->proc];
  std::unordered_map<TableId, std::pair<std::uint32_t, std::uint32_t>>
      census;  // table -> {touchers, writers}
  for (ProcId p = 0; p < procs_.size(); ++p) {
    if (instances[p] == 0) continue;
    const analysis::TableFootprint& fp = conflict_matrix_.footprint(p);
    for (TableId t : fp.touched) census[t].first += instances[p];
    for (TableId t : fp.written) census[t].second += instances[p];
  }
  for (ProcId p = 0; p < procs_.size(); ++p) {
    auto& skip = skip_tables_[p];
    skip.clear();
    if (instances[p] == 0) continue;
    const analysis::TableFootprint& fp = conflict_matrix_.footprint(p);
    for (TableId t : fp.touched) {
      const auto [touchers, writers] = census[t];
      // My keys in t conflict iff I may write t and anyone else touches it,
      // or I only read t and someone may write it. `touchers > 1` excludes
      // the case where this single instance is the only toucher.
      const bool conflict = fp.writes(t) ? touchers > 1 : writers > 0;
      if (!conflict) skip.insert(t);
    }
  }
}

void Engine::enqueue_all(const std::vector<TxIdx>& order) {
  Stopwatch sw;
  // The lock table is drained here (between rounds): the arena table retires
  // the previous round's slots and resets its bump arena in O(1), and the
  // census may be rebuilt without changing any in-flight decision.
  active_lt_->begin_batch();
  compute_conflict_census(order);
  if (!config_.parallel_enqueue) {
    for (TxIdx i : order) enqueue_tx(i);
  } else {
    // Pre-pass: lock counts must be in place before any partition grants.
    for (TxIdx idx : order) {
      TxnSlot& s = slots_[idx];
      s.trace_preds.clear();
      int total = 0;
      for (const TKey& key : s.pred.keys) {
        total += needs_lock(key, s) ? 1 : 0;
      }
      s.locks_remaining.store(total, std::memory_order_relaxed);
      if (total == 0) seed_ready(idx);
    }
    enqueue_order_ = &order;
    run_phase(Phase::kEnqueue, [&] { do_enqueue_partition(0); });
    enqueue_order_ = nullptr;
  }
  const std::int64_t us = sw.elapsed_micros();
  if (span_live_) {
    span(obs::tracing::SpanKind::kEnqueue, obs::tracing::kBatchSlot, us,
         current_round_, active_lt_->entry_count());
  }
  if (trace_ != nullptr) trace_->enqueue_us += us;
  if (metrics_) {
    // Sampled between phases: workers are parked, so entry_count() sees the
    // full population of this round and the ready deques their initial wave.
    // entry_count() is the O(1) atomic counter — no shard scan (the gauge
    // regression test pins LockTable::Stats::shard_scans at zero here).
    metrics_->phase_enqueue_us->observe(us);
    const auto entries = static_cast<std::int64_t>(active_lt_->entry_count());
    metrics_->lock_table_depth->set(entries);
    metrics_->ready_queue_depth->set(static_cast<std::int64_t>(ready_depth()));
    metrics_->locks_enqueued->observe(entries);
  }
}

void Engine::release_locks(TxIdx idx, unsigned slot) {
  TxnSlot& s = slots_[idx];
  // Per-thread scratch: release is the hottest allocation site of the old
  // path (one vector per committed transaction); the thread-local buffer
  // reaches steady-state capacity after a few transactions.
  static thread_local std::vector<TxIdx> granted;
  granted.clear();
  for (const TKey& key : s.pred.keys) {
    if (!needs_lock(key, s)) continue;
    active_lt_->release(idx, key, granted);
  }
  for (TxIdx g : granted) {
    if (slots_[g].locks_remaining.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
      // Newly unblocked successors go to the releasing participant's own
      // deque (LIFO: their lock entries are cache-warm); idle participants
      // steal from the FIFO end if this one is backed up.
      ready_push(g, slot);
    }
  }
}

void Engine::execute_ready_tx(TxIdx idx, unsigned slot) {
  TxnSlot& s = slots_[idx];
  Stopwatch sw;
  const unsigned cls = static_cast<unsigned>(s.klass);
  const bool recon_style = config_.system == System::kCalvin ||
                           config_.use_recon ||
                           !s.entry->profile->complete();
  auto fail = [&] {
    ctr_validation_aborts_[cls].fetch_add(1, std::memory_order_relaxed);
    span(obs::tracing::SpanKind::kAbort, idx, sw.elapsed_micros(),
         current_round_, cls);
    if (metrics_) {
      metrics_->txn_latency_us[cls]->observe(sw.elapsed_micros());
    }
    {
      std::scoped_lock lock(failed_mu_);
      failed_.push_back(idx);
    }
    if (trace_ != nullptr) {
      std::scoped_lock lock(trace_mu_);
      trace_->attempts.push_back({idx, current_round_, false, /*failed=*/true,
                                  sw.elapsed_micros(),
                                  std::move(s.trace_preds)});
    }
    release_locks(idx, slot);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  };

  if (!recon_style && s.klass == sym::TxClass::kDependent) {
    // Prognosticator: re-read the pivot items; any change invalidates the
    // predicted key-set (paper, Section III-C).
    if (metrics_) {
      Stopwatch vsw;
      const bool ok = sym::TxProfile::validate_pivots(s.pred, store_);
      ctr_validate_us_.fetch_add(vsw.elapsed_micros(),
                                 std::memory_order_relaxed);
      if (!ok) {
        fail();
        return;
      }
    } else if (!sym::TxProfile::validate_pivots(s.pred, store_)) {
      fail();
      return;
    }
  }
  store::LiveView live(store_);
  lang::ExecResult& r = exec_scratch();
  interp_.run_into(*s.entry->proc, s.req->input, live, r);
  if (recon_style && s.klass == sym::TxClass::kDependent) {
    // OLLP rule: abort iff the execution stepped outside the locked set.
    // The commit decision is deterministic: every in-set read is serialized
    // by the lock table, and once an out-of-set access occurs the
    // transaction aborts no matter what it read there.
    auto contained = [&](const std::vector<TKey>& actual,
                         const auto& allowed) {
      return std::all_of(actual.begin(), actual.end(), [&](TKey k) {
        return sorted_contains(allowed, k);
      });
    };
    if (!contained(r.reads, s.pred.keys) ||
        !contained(r.writes, s.pred.write_keys)) {
      fail();
      return;
    }
  }
  if (config_.check_containment) {
    auto check = [&](const std::vector<TKey>& actual, const char* what) {
      for (const TKey& k : actual) {
        const bool ok = config_.system == System::kNodo
                            ? sorted_contains(s.pred.keys, TKey{k.table, 0})
                            : sorted_contains(s.pred.keys, k);
        PROG_CHECK_MSG(
            ok, std::string("actual ") + what +
                    " key escaped the predicted key-set in " +
                    s.entry->proc->name);
      }
    };
    check(r.reads, "read");
    check(r.writes, "write");
  }
  if (r.committed) {
    lang::apply_writes(store_, r, batch_);
    capture_output(idx, std::move(r.emitted));
  } else {
    ctr_rolled_back_[cls].fetch_add(1, std::memory_order_relaxed);
  }
  ctr_committed_[cls].fetch_add(1, std::memory_order_relaxed);
  span(obs::tracing::SpanKind::kExecute, idx, sw.elapsed_micros(),
       current_round_, cls);
  if (metrics_) {
    metrics_->txn_latency_us[cls]->observe(sw.elapsed_micros());
  }
  if (config_.audit_commit_order) {
    std::scoped_lock lock(commit_mu_);
    commit_order_.push_back(idx);
  }
  if (trace_ != nullptr) {
    std::scoped_lock lock(trace_mu_);
    trace_->attempts.push_back({idx, current_round_, false, /*failed=*/false,
                                sw.elapsed_micros(),
                                std::move(s.trace_preds)});
  }
  release_locks(idx, slot);
  remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

void Engine::do_exec(unsigned slot) {
  unsigned idle = 0;
  for (;;) {
    if (auto t = ready_pop(slot)) {
      idle = 0;
      execute_ready_tx(*t, slot);
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    // Idle backoff (DESIGN.md §10): spin-yield briefly so a fresh grant is
    // claimed with minimal latency, then fall back to short bounded naps. A
    // hot spin loop would steal the core from the participant that actually
    // holds work on oversubscribed hosts, and a transaction that executes on
    // its grantor's deque never waits on a sleeper — thieves only add
    // parallelism, so a capped nap delays ramp-up by at most 100us.
    if (++idle < 64) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(
          std::chrono::microseconds(idle < 128 ? 20 : 100));
    }
  }
}

void Engine::run_seq_batch(BatchResult& result) {
  for (TxIdx i = 0; i < requests_.size(); ++i) {
    const TxnSlot& s = slots_[i];
    const unsigned cls = static_cast<unsigned>(s.klass);
    Stopwatch sw;
    if (s.klass == sym::TxClass::kReadOnly) {
      store::SnapshotView view(store_, batch_ - 1);
      lang::ExecResult& r = exec_scratch();
      interp_.run_into(*s.entry->proc, s.req->input, view, r);
      capture_output(i, std::move(r.emitted));
      ctr_committed_[cls].fetch_add(1, std::memory_order_relaxed);
    } else {
      store::LiveView live(store_);
      lang::ExecResult& r = exec_scratch();
      interp_.run_into(*s.entry->proc, s.req->input, live, r);
      if (r.committed) {
        lang::apply_writes(store_, r, batch_);
        capture_output(i, std::move(r.emitted));
      } else {
        ctr_rolled_back_[cls].fetch_add(1, std::memory_order_relaxed);
      }
      ctr_committed_[cls].fetch_add(1, std::memory_order_relaxed);
      if (config_.audit_commit_order) result.commit_order.push_back(i);
    }
    const std::int64_t us = sw.elapsed_micros();
    if (metrics_) metrics_->txn_latency_us[cls]->observe(us);
    if (trace_ != nullptr) {
      // Sequential baseline: everything is one serial chain; the model sees
      // it as SF-tail time so no worker count can parallelize it.
      trace_->sf_serial_us += us;
    }
  }
}

void Engine::handle_failed_sf(const std::vector<TxIdx>& failed,
                              BatchResult& result) {
  // Single-threaded re-execution in the agreed order: prepare and execution
  // are atomic with respect to each other, so nothing can fail again.
  Stopwatch sw;
  for (TxIdx idx : failed) {
    const TxnSlot& s = slots_[idx];
    const unsigned cls = static_cast<unsigned>(s.klass);
    Stopwatch txsw;
    store::LiveView live(store_);
    lang::ExecResult& r = exec_scratch();
    interp_.run_into(*s.entry->proc, s.req->input, live, r);
    if (r.committed) {
      lang::apply_writes(store_, r, batch_);
      capture_output(idx, std::move(r.emitted));
    } else {
      ctr_rolled_back_[cls].fetch_add(1, std::memory_order_relaxed);
    }
    ctr_committed_[cls].fetch_add(1, std::memory_order_relaxed);
    span(obs::tracing::SpanKind::kExecute, idx, txsw.elapsed_micros(),
         static_cast<std::uint16_t>(current_round_ + 1), cls);
    if (metrics_) metrics_->txn_latency_us[cls]->observe(txsw.elapsed_micros());
    if (config_.audit_commit_order) {
      std::scoped_lock lock(commit_mu_);
      commit_order_.push_back(idx);
    }
  }
  const std::int64_t us = sw.elapsed_micros();
  span(obs::tracing::SpanKind::kSfTail, obs::tracing::kBatchSlot, us,
       current_round_, failed.size());
  ctr_sf_us_.fetch_add(us, std::memory_order_relaxed);
  result.reexec_micros += us;
  result.reexecuted += failed.size();
}

void Engine::batch_preamble(std::vector<TxRequest> requests) {
  batch_ = next_batch_++;
  // Bank rotation: with the second bank configured, even-numbered batches
  // use it. A pure function of the agreed sequence — every replica (and
  // every pipeline depth) rotates identically.
  active_lt_ = lock_table_alt_ != nullptr && batch_ % 2 == 0
                   ? lock_table_alt_.get()
                   : &lock_table_;
  requests_ = std::move(requests);
  // Slot-reuse contract (DESIGN.md §10): slots_ grows monotonically and is
  // never destroyed between batches — each TxnSlot's Prediction keeps its
  // spill buffers, so steady-state preparation allocates nothing.
  while (slots_.size() < requests_.size()) slots_.emplace_back();
  for (std::size_t i = 0; i < requests_.size(); ++i) slots_[i].reset();
  for (auto& q : rot_queues_) q.clear();
  prep_list_.clear();
  failed_.clear();
  commit_order_.clear();
  outputs_.clear();
  ready_clear();
  for (unsigned c = 0; c < 3; ++c) {
    ctr_committed_[c].store(0);
    ctr_rolled_back_[c].store(0);
    ctr_validation_aborts_[c].store(0);
  }
  ctr_prepare_us_.store(0);
  ctr_prepared_.store(0);
  ctr_all_prepare_us_.store(0);
  ctr_validate_us_.store(0);
  ctr_sf_us_.store(0);
  phase_us_[0] = phase_us_[1] = phase_us_[2] = 0;
  current_round_ = 0;
  // Explicit per-batch reset — the sink may have been carried over from a
  // previous batch or engine (set_trace_sink's documented contract); without
  // it, rounds/sf_serial_us/attempts would accumulate across runs.
  if (trace_ != nullptr) trace_->clear();

  // Causal tracing (DESIGN.md §11): a replication layer that set a
  // TraceContext owns the batch identity and the sampling decision;
  // standalone batches head-sample every trace_sample_n-th batch under
  // their local id. Decided here, before any worker wakes, so every
  // participant sees a consistent span identity for the whole batch.
  {
    const obs::tracing::TraceContext& tctx = obs::tracing::current();
    if (tctx.batch_seq != 0) {
      span_live_ = tctx.sampled && obs::tracing::enabled();
      span_batch_seq_ = tctx.batch_seq;
      span_replica_ = tctx.replica;
    } else {
      span_live_ = config_.trace_sample_n != 0 && obs::tracing::enabled() &&
                   batch_ % config_.trace_sample_n == 0;
      span_batch_seq_ = batch_;
      span_replica_ = obs::tracing::kNoReplica;
    }
  }

  // Classify and distribute.
  std::size_t rot_rr = 0;
  for (TxIdx i = 0; i < requests_.size(); ++i) {
    const TxRequest& req = requests_[i];
    PROG_CHECK_MSG(req.proc < procs_.size(), "unknown procedure id");
    TxnSlot& s = slots_[i];
    s.req = &requests_[i];
    s.entry = &procs_[req.proc];
    s.klass = effective_class(*s.entry);
    if (config_.system == System::kSeq) continue;
    if (s.klass == sym::TxClass::kReadOnly) {
      rot_queues_[rot_rr++ % rot_queues_.size()].push_back(i);
    } else {
      prep_list_.push_back(i);
    }
  }

}

void Engine::finish_seq_batch(BatchResult& result, const Stopwatch& wall) {
  for (unsigned c = 0; c < 3; ++c) {
    result.committed += ctr_committed_[c].load();
    result.rolled_back += ctr_rolled_back_[c].load();
  }
  result.outputs = std::move(outputs_);
  result.wall_micros = wall.elapsed_micros();
  span(obs::tracing::SpanKind::kBatchDone, obs::tracing::kBatchSlot,
       result.wall_micros, current_round_, result.committed);
  finalize_stats(result);
}

std::vector<TxIdx> Engine::build_update_order() const {
  // DTs ahead of ITs when configured (both in agreed order).
  std::vector<TxIdx> order;
  order.reserve(prep_list_.size());
  if (config_.dt_before_it) {
    for (TxIdx i : prep_list_) {
      if (slots_[i].klass == sym::TxClass::kDependent) order.push_back(i);
    }
    for (TxIdx i : prep_list_) {
      if (slots_[i].klass != sym::TxClass::kDependent) order.push_back(i);
    }
  } else {
    order = prep_list_;
  }
  return order;
}

BatchResult Engine::run_batch(std::vector<TxRequest> requests) {
  Stopwatch wall;
  batch_preamble(std::move(requests));
  BatchResult result;
  result.batch = batch_;

  if (config_.system == System::kSeq) {
    run_seq_batch(result);
    finish_seq_batch(result, wall);
    return result;
  }

  // Phase 1: ROTs + DT/IT preparation against the previous batch's snapshot
  // (Calvin: an older snapshot, emulating client-side reconnaissance lag).
  prep_snapshot_ = batch_ - 1;
  if (config_.system == System::kCalvin) {
    const BatchId lag = config_.calvin_prepare_lag;
    prep_snapshot_ = batch_ - 1 > lag ? batch_ - 1 - lag : 0;
  }
  prep_tickets_.reset(prep_list_.size());
  {
    Stopwatch psw;
    run_phase(Phase::kRotPrepare, [&] {
      while (auto i = prep_tickets_.claim()) prepare_tx(prep_list_[*i]);
    });
    phase_us_[0] = psw.elapsed_micros();
  }

  const std::vector<TxIdx> order = build_update_order();
  remaining_.store(order.size(), std::memory_order_release);
  enqueue_all(order);

  execute_phase2_and_tail(result, wall);
  return result;
}

void Engine::prepare_batch(std::vector<TxRequest> requests) {
  PROG_CHECK_MSG(!staged_,
                 "prepare_batch: a prepared batch is already pending");
  staged_wall_.reset();
  batch_preamble(std::move(requests));
  staged_result_ = BatchResult{};
  staged_result_.batch = batch_;
  staged_ = true;
  // kSeq executes everything in execute_prepared; classification is all the
  // staging there is.
  if (config_.system == System::kSeq) return;

  Stopwatch psw;
  prep_snapshot_ = batch_ - 1;
  if (config_.system == System::kCalvin) {
    const BatchId lag = config_.calvin_prepare_lag;
    prep_snapshot_ = batch_ - 1 > lag ? batch_ - 1 - lag : 0;
  }
  prep_tickets_.reset(prep_list_.size());
  // Staged preparation runs on the calling thread alone: the pipeline driver
  // overlaps this stage with the previous batch's async group-commit, and
  // the workers stay parked until execute_prepared (they run the ROT drain
  // and phase 2 there). Claiming every ticket here is outcome-identical to
  // the worker-parallel claim — the schedule never depends on which thread
  // computed a prediction.
  while (auto i = prep_tickets_.claim()) prepare_tx(prep_list_[*i]);

  staged_order_ = build_update_order();
  remaining_.store(staged_order_.size(), std::memory_order_release);
  enqueue_all(staged_order_);
  phase_us_[0] = psw.elapsed_micros();
  span(obs::tracing::SpanKind::kPrepare, obs::tracing::kBatchSlot,
       phase_us_[0], 0, active_lt_->entry_count());
}

BatchResult Engine::execute_prepared() {
  PROG_CHECK_MSG(staged_, "execute_prepared: no prepared batch is pending");
  staged_ = false;
  const Stopwatch wall = staged_wall_;
  BatchResult result = std::move(staged_result_);

  if (config_.system == System::kSeq) {
    run_seq_batch(result);
    finish_seq_batch(result, wall);
    return result;
  }

  // ROT drain: the prep tickets were exhausted during prepare_batch, so the
  // claim loops no-op and the phase reduces to the per-worker ROT queues —
  // executed against the batch-boundary snapshot exactly as in phase 1 of
  // the combined path.
  {
    Stopwatch psw;
    run_phase(Phase::kRotPrepare, [&] {
      while (auto i = prep_tickets_.claim()) prepare_tx(prep_list_[*i]);
    });
    phase_us_[0] += psw.elapsed_micros();
  }

  execute_phase2_and_tail(result, wall);
  return result;
}

void Engine::execute_phase2_and_tail(BatchResult& result,
                                     const Stopwatch& wall) {
  // Phase 2: parallel execution of update transactions.
  {
    Stopwatch xsw;
    run_phase(Phase::kExec, [&] { do_exec(0); });
    phase_us_[1] = xsw.elapsed_micros();
  }

  // Failed-transaction rounds.
  std::vector<TxIdx> failed;
  {
    std::scoped_lock lock(failed_mu_);
    failed.swap(failed_);
  }
  std::sort(failed.begin(), failed.end());

  while (!failed.empty()) {
    ++result.rounds;
    if (config_.system == System::kCalvin) {
      // Bounce back to the client for re-preparation in a future batch.
      for (TxIdx idx : failed) {
        result.deferred.push_back(*slots_[idx].req);
        result.deferred.back().recon_fresh = true;
      }
      break;
    }
    if (!config_.parallel_failed) {
      handle_failed_sf(failed, result);
      break;
    }
    if (config_.max_mf_rounds > 0 && current_round_ >= config_.max_mf_rounds) {
      // Graceful degradation: the MF budget is spent — finish the stragglers
      // on the SF path, which executes them in agreed order and cannot fail.
      // Deterministic: the round count is a pure function of the batch.
      result.sf_fallbacks += failed.size();
      if (obs::tracing::enabled()) {
        // Anomalies fire regardless of head sampling: the fallback is the
        // event the flight recorder exists to explain.
        obs::tracing::ScopedContext tsc(
            {span_batch_seq_, span_replica_, span_live_});
        obs::tracing::trigger(
            obs::tracing::Anomaly::kSfFallback,
            "mf round cap (" + std::to_string(config_.max_mf_rounds) +
                ") hit in batch " + std::to_string(span_batch_seq_) + ": " +
                std::to_string(failed.size()) + " txns finished serially");
      }
      handle_failed_sf(failed, result);
      break;
    }
    // MF: re-prepare against the current (quiesced) state, re-enqueue, and
    // run another parallel round.
    Stopwatch sw;
    ++current_round_;
    for (auto& q : rot_queues_) q.clear();
    prep_list_ = failed;
    prep_snapshot_ = batch_;  // everything committed so far is visible
    prep_tickets_.reset(prep_list_.size());
    run_phase(Phase::kRotPrepare, [&] {
      while (auto i = prep_tickets_.claim()) prepare_tx(prep_list_[*i]);
    });
    remaining_.store(failed.size(), std::memory_order_release);
    enqueue_all(failed);
    run_phase(Phase::kExec, [&] { do_exec(0); });
    const std::int64_t round_us = sw.elapsed_micros();
    span(obs::tracing::SpanKind::kMfRound, obs::tracing::kBatchSlot, round_us,
         current_round_, failed.size());
    phase_us_[2] += round_us;
    result.reexec_micros += round_us;
    result.reexecuted += failed.size();
    {
      std::scoped_lock lock(failed_mu_);
      failed.clear();
      failed.swap(failed_);
    }
    std::sort(failed.begin(), failed.end());
  }

  PROG_CHECK_MSG(active_lt_->empty(),
                 "lock table must drain by the end of the batch");

  for (unsigned c = 0; c < 3; ++c) {
    result.committed += ctr_committed_[c].load();
    result.rolled_back += ctr_rolled_back_[c].load();
    result.validation_aborts += ctr_validation_aborts_[c].load();
  }
  result.prepare_micros = ctr_prepare_us_.load();
  result.prepared = ctr_prepared_.load();
  result.commit_order = std::move(commit_order_);
  std::sort(outputs_.begin(), outputs_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  result.outputs = std::move(outputs_);
  result.wall_micros = wall.elapsed_micros();
  span(obs::tracing::SpanKind::kBatchDone, obs::tracing::kBatchSlot,
       result.wall_micros, current_round_, result.committed);
  if (trace_ != nullptr) {
    trace_->prepare_total_us = ctr_all_prepare_us_.load();
    // Everything the SF path ran serially: the SF mode's whole tail AND the
    // post-MF-cap fallback stragglers (which used to be mis-reported as 0
    // under parallel_failed=true).
    trace_->sf_serial_us = ctr_sf_us_.load();
    trace_->rounds = current_round_;
  }

  if (config_.gc_horizon > 0) {
    const BatchId horizon =
        std::max<BatchId>(config_.gc_horizon, config_.calvin_prepare_lag + 2);
    if (batch_ > horizon && batch_ % horizon == 0) {
      store_.gc_before(batch_ - horizon);
    }
  }

  finalize_stats(result);
}

void Engine::finalize_stats(const BatchResult& result) {
  ++stats_.batches;
  stats_.committed += result.committed;
  stats_.rolled_back += result.rolled_back;
  stats_.validation_aborts += result.validation_aborts;
  stats_.rounds += result.rounds;
  stats_.mf_fallback_txns += result.sf_fallbacks;
  if (result.sf_fallbacks > 0) ++stats_.mf_fallback_batches;
  for (unsigned c = 0; c < 3; ++c) {
    stats_.committed_by_class[c] += ctr_committed_[c].load();
    stats_.rolled_back_by_class[c] += ctr_rolled_back_[c].load();
    stats_.validation_aborts_by_class[c] += ctr_validation_aborts_[c].load();
  }
  if (!metrics_) return;
  // Cold path, once per batch: deterministic counters fold here so the hot
  // path pays nothing for them, then the timing histograms get their
  // per-batch observations.
  obs::EngineMetrics& m = *metrics_;
  m.batches->inc();
  for (unsigned c = 0; c < 3; ++c) {
    m.committed[c]->inc(ctr_committed_[c].load());
    m.rolled_back[c]->inc(ctr_rolled_back_[c].load());
    m.validation_aborts[c]->inc(ctr_validation_aborts_[c].load());
  }
  m.rounds->inc(result.rounds);
  m.mf_fallback_txns->inc(result.sf_fallbacks);
  if (result.sf_fallbacks > 0) m.mf_fallback_batches->inc();

  m.batch_size_txns->observe(static_cast<std::int64_t>(requests_.size()));
  m.batch_wall_us->observe(result.wall_micros);
  m.phase_prepare_us->observe(phase_us_[0]);
  m.phase_exec_us->observe(phase_us_[1]);
  if (phase_us_[2] > 0) m.phase_mf_us->observe(phase_us_[2]);
  const std::int64_t validate_us = ctr_validate_us_.load();
  if (validate_us > 0) m.phase_validate_us->observe(validate_us);
  const std::int64_t sf_us = ctr_sf_us_.load();
  if (sf_us > 0) m.phase_sf_us->observe(sf_us);
}

}  // namespace prog::sched
