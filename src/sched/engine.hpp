// The deterministic multi-threaded execution engine (paper, Section III-C),
// plus the three baselines evaluated against it — all sharing this code base
// and lock table, mirroring the paper's methodology ("we implemented all
// approaches in the same code base ... the measured differences correspond
// to the design decision of how to leverage the transaction profiles").
//
// Batch lifecycle (Prognosticator):
//   1. classify: ROTs to per-worker queues; DTs and ITs to the update list;
//   2. phase 1 — workers drain their ROT queues against the previous batch's
//      snapshot (lock-free) while DT key-sets are prepared: by the queuer
//      alone (1Q) or by the queuer plus every idle worker (MQ);
//   3. the queuer enqueues update transactions into the lock table in the
//      agreed order, DTs ahead of ITs; fully granted transactions enter the
//      ready queue;
//   4. phase 2 — workers drain the ready queue: DTs first re-validate their
//      pivot observations against the live store and abort deterministically
//      on mismatch; commits apply buffered writes and release lock-table
//      entries, readying successors;
//   5. failed transactions are re-executed: sequentially in agreed order by
//      one thread (SF) or re-prepared and re-enqueued for another parallel
//      round (MF), repeating until none fail.
//
// Baseline mapping:
//   - Calvin-N: DTs are prepared by full reconnaissance execution against a
//     snapshot N/10 batches old (the client prepared them N ms before
//     submission) and failed DTs are *deferred* — handed back for
//     resubmission in a later batch instead of re-executed here;
//   - NODO: key-sets are the accessed tables (coarse conflict classes), so
//     every transaction is independent and nothing ever aborts;
//   - SEQ: single-threaded execution in the agreed order.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>
#include <vector>

#include "analysis/conflict_matrix.hpp"
#include "common/queues.hpp"
#include "common/stopwatch.hpp"
#include "common/sync.hpp"
#include "lang/interp.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/tracing/tracing.hpp"
#include "sched/lock_table.hpp"
#include "sched/trace.hpp"
#include "sym/profile.hpp"
#include "store/store.hpp"

namespace prog::sched {

using ProcId = std::uint32_t;

/// A registered stored procedure with its offline profile.
struct ProcEntry {
  const lang::Proc* proc = nullptr;
  const sym::TxProfile* profile = nullptr;
};

/// One transaction instance submitted for execution.
struct TxRequest {
  ProcId proc = 0;
  lang::TxInput input;
  /// Opaque harness tag (e.g. arrival timestamp) carried through deferral.
  std::uint64_t tag = 0;
  /// Calvin resubmission: OLLP re-ran reconnaissance after the abort, so
  /// this attempt's key-set is prepared against a fresh snapshot instead of
  /// the N-ms-stale one (set automatically on deferred requests).
  bool recon_fresh = false;
  /// Client-supplied key-set prediction (paper, Section III-C: independent
  /// transactions' key-sets depend only on inputs, so the client can compute
  /// them and relieve the server). Honored when EngineConfig::
  /// accept_client_predictions is set and the transaction is an IT.
  std::shared_ptr<const sym::Prediction> client_pred;
};

enum class System : std::uint8_t {
  kPrognosticator,
  kCalvin,
  kNodo,
  kSeq,
};

const char* to_string(System s) noexcept;

struct EngineConfig {
  System system = System::kPrognosticator;
  /// Worker thread count (the queuer is the caller's thread).
  unsigned workers = 4;
  /// MQ (true): workers help prepare DT key-sets; 1Q (false): queuer only.
  bool multi_queue_prepare = true;
  /// MF (true): failed transactions are re-prepared and re-enqueued for
  /// parallel rounds; SF (false): one thread re-executes them in order.
  bool parallel_failed = true;
  /// Graceful degradation: cap the number of MF re-execution rounds per
  /// batch. Once `max_mf_rounds` parallel rounds have run, any still-failed
  /// transactions fall back to the SF path (single-threaded, in agreed
  /// order — cannot fail), so a pathological pivot storm terminates in
  /// bounded rounds. 0 = unbounded (the paper's behavior). The fallback is
  /// deterministic: it depends only on the round count, which is a pure
  /// function of the batch. Fallbacks are counted in EngineStats.
  unsigned max_mf_rounds = 0;
  /// -R variants: predict by reconnaissance (full execution against the
  /// snapshot) instead of consulting the SE profile. Forced for Calvin and
  /// for procedures whose SE analysis was capped.
  bool use_recon = false;
  /// Ablation: reader-sharing lock grants instead of exclusive queues.
  bool shared_read_locks = false;
  /// Paper design point: enqueue DTs ahead of ITs to shrink the window
  /// between preparation and execution.
  bool dt_before_it = true;
  /// Accept client-computed key-sets for independent transactions (the
  /// offload the paper describes as future work). Ignored for Calvin/-R
  /// (reconnaissance must observe a snapshot) and for DTs.
  bool accept_client_predictions = false;
  /// Parallelize lock-table population: the key space is partitioned by
  /// hash across the queuer and all workers; each participant walks the
  /// agreed order and enqueues only its partition's keys, so every queue
  /// still receives transactions in the agreed order (the paper's "workers
  /// can help the Queuer by acquiring locks" optimization, generalized).
  bool parallel_enqueue = false;
  /// Calvin-N: prepare N/batch-interval batches in the past.
  unsigned calvin_prepare_lag = 10;
  /// Record the global commit order (serializability audits; small cost).
  bool audit_commit_order = false;
  /// Capture every transaction's emitted values into BatchResult::outputs —
  /// how clients read query results back (small mutex cost per emitting tx).
  bool capture_outputs = false;
  /// Static conflict-matrix lock elision (txlint pass 3): per enqueue
  /// round, a key takes a lock-table entry only when the transaction's
  /// *type*-level footprint can actually conflict with another transaction
  /// of the round on that table — i.e. it may write a table someone else
  /// touches, or read a table someone else may write. Generalizes the
  /// ROT bypass and the immutable-table elision to per-batch granularity.
  /// Applies to Prognosticator only (baselines keep the paper's behavior);
  /// the resulting schedule is deterministic (the census is a pure function
  /// of the round's transaction multiset) and produces identical commits.
  bool static_conflict_elision = true;
  /// Verify actual accesses ⊆ predicted key-set after every execution.
  bool check_containment = false;
  /// Telemetry (DESIGN.md §9): the engine owns an obs::Registry and keeps
  /// per-class commit/abort counters, per-attempt latency histograms,
  /// per-phase timers and queue-occupancy gauges. Hot-path cost per event
  /// is a relaxed atomic add (plus one steady_clock read for latency
  /// histograms); deterministic counters are folded once per batch. Off by
  /// default: the engine then allocates no registry and every metric site
  /// is a single predictable-false branch.
  bool telemetry = false;
  /// Causal tracing (DESIGN.md §11): head-sample every Nth batch into the
  /// obs::tracing flight recorder (span per phase / per attempt, plus the
  /// consensus and WAL spans emitted by the layers above). 0 = off. When a
  /// replication layer set a trace context for the batch, its sampling
  /// decision wins; this knob drives standalone (engine-only) runs. Cost on
  /// unsampled batches is one branch per site.
  unsigned trace_sample_n = 0;
  /// Drop store versions older than this many batches (0 = never GC).
  unsigned gc_horizon = 64;
  /// Measurement mode for the benchutil scheduling model: the queuer runs
  /// every phase itself and workers stay parked, so per-attempt service
  /// times are uncontended even on a single-core host. Results are
  /// identical (the schedule is deterministic); only timings differ.
  bool serial_measurement = false;
  /// Differential oracle (DESIGN.md §15): run the AST tree-walker and the
  /// PSC-tree walk instead of the compiled bytecode VMs for both execution
  /// and prediction. Commit outcomes, state hashes and deterministic
  /// counters must be byte-identical either way (the bytecode_test
  /// equivalence matrix runs whole workloads under both settings).
  bool tree_walk_ablation = false;
  /// Memoize IT key-set predictions per participant thread: an IT's
  /// prediction is a pure function of its input (no pivot reads), so a
  /// repeated (procedure, input) pair can reuse the previous key-set
  /// instead of re-running the prediction program. Direct-mapped cache,
  /// full-input compare on hit (a hash collision must not poison
  /// determinism). Hit/miss counts are exposed as timing-dependent
  /// telemetry (the distribution depends on thread scheduling); the
  /// predictions themselves are identical either way.
  bool it_memo = false;
  /// Debug assertion: recompute every memo hit and PROG_CHECK the cached
  /// prediction matches. Used by the determinism tests.
  bool it_memo_check = false;
  /// Cross-batch pipelined replica apply (DESIGN.md §14). 0 = legacy serial
  /// apply (the ablation). >0 enables the staged prepare_batch /
  /// execute_prepared entry points with double-buffered lock-table banks,
  /// and bounds the async durability stage's in-flight window (the number
  /// of agreed-but-not-yet-fsynced batches a replica may accumulate before
  /// the apply thread stalls on the group-commit queue). The schedule is
  /// unchanged: prepare consumes only the agreed order and the previous
  /// batch's snapshot boundary, so every deterministic counter and state
  /// hash is byte-identical to depth 0 (the PipelineEquivalence test).
  unsigned pipeline_depth = 0;
};

struct BatchResult {
  BatchId batch = 0;
  std::uint64_t committed = 0;      // includes logical rollbacks
  std::uint64_t rolled_back = 0;    // AbortIf rollbacks (business aborts)
  std::uint64_t validation_aborts = 0;  // failed DT executions (all rounds)
  std::uint64_t rounds = 0;             // failed-transaction rounds run
  /// Calvin only: transactions bounced back for future resubmission.
  std::vector<TxRequest> deferred;
  /// Commit order audit log (batch-local indexes), when enabled.
  std::vector<TxIdx> commit_order;
  /// Emitted values per transaction (batch-local index), when enabled.
  /// Deterministic content; ordering normalized to submission order.
  std::vector<std::pair<TxIdx, std::vector<Value>>> outputs;
  /// Transactions finished through the SF fallback after the MF round cap
  /// (EngineConfig::max_mf_rounds) was reached.
  std::uint64_t sf_fallbacks = 0;
  std::int64_t wall_micros = 0;
  std::int64_t prepare_micros = 0;  // summed across prepared transactions
  std::uint64_t prepared = 0;
  std::int64_t reexec_micros = 0;  // wall time spent in failed rounds
  std::uint64_t reexecuted = 0;
};

/// Cumulative engine counters across every batch executed so far. Unlike
/// BatchResult (per batch) these are resume-safe: the recovery layer folds a
/// crashed replica's stats into its bookkeeping before rebuilding the
/// engine, so counters survive checkpoint/restore cycles.
struct EngineStats {
  std::uint64_t batches = 0;
  std::uint64_t committed = 0;
  std::uint64_t rolled_back = 0;
  std::uint64_t validation_aborts = 0;
  std::uint64_t rounds = 0;
  /// Transactions that fell back to SF after the MF round cap.
  std::uint64_t mf_fallback_txns = 0;
  /// Batches in which the MF cap triggered at least once.
  std::uint64_t mf_fallback_batches = 0;
  /// Per-class breakdowns, indexed by sym::TxClass (0 = ROT, 1 = IT,
  /// 2 = DT). Each aggregate above equals the sum of its breakdown; the
  /// telemetry layer exports these as the deterministic `class`-labeled
  /// counter families (DESIGN.md §9).
  std::array<std::uint64_t, 3> committed_by_class{};
  std::array<std::uint64_t, 3> rolled_back_by_class{};
  std::array<std::uint64_t, 3> validation_aborts_by_class{};

  EngineStats& operator+=(const EngineStats& o) {
    batches += o.batches;
    committed += o.committed;
    rolled_back += o.rolled_back;
    validation_aborts += o.validation_aborts;
    rounds += o.rounds;
    mf_fallback_txns += o.mf_fallback_txns;
    mf_fallback_batches += o.mf_fallback_batches;
    for (std::size_t c = 0; c < committed_by_class.size(); ++c) {
      committed_by_class[c] += o.committed_by_class[c];
      rolled_back_by_class[c] += o.rolled_back_by_class[c];
      validation_aborts_by_class[c] += o.validation_aborts_by_class[c];
    }
    return *this;
  }
};

/// Deterministic batch execution engine. One engine drives one replica.
class Engine {
 public:
  Engine(store::VersionedStore& store, std::vector<ProcEntry> procs,
         EngineConfig config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Executes one totally-ordered batch to completion and returns its
  /// statistics. Called from a single thread (the queuer).
  BatchResult run_batch(std::vector<TxRequest> requests);

  /// Stage P of the pipelined apply path (DESIGN.md §14): classifies the
  /// batch, predicts every update transaction's key-set against the
  /// previous batch's snapshot boundary, and populates this batch's
  /// lock-table bank — all on the calling thread, with the workers parked.
  /// Must be paired with execute_prepared(); at most one batch may be
  /// prepared-but-unexecuted at a time. The commit outcome is byte-identical
  /// to run_batch: preparation consumes only the agreed order and the
  /// batch-boundary snapshot, both pure functions of the batch sequence.
  void prepare_batch(std::vector<TxRequest> requests);

  /// Stage X: runs the prepared batch to completion (ROT drain, parallel
  /// execution, failed-transaction rounds) and returns its statistics.
  BatchResult execute_prepared();

  /// True while a prepared batch awaits execute_prepared().
  bool has_prepared() const noexcept { return staged_; }

  /// The id the next batch will execute under (first batch is 1; loaders
  /// write the initial state as batch 0).
  BatchId next_batch() const noexcept { return next_batch_; }

  /// Records per-attempt service times and lock-table dependency edges of
  /// every subsequent batch into `sink` (cleared per batch; pass nullptr to
  /// stop). Use workers == 1 for uncontended time measurements — the
  /// benchutil scheduling model then projects any worker count.
  void set_trace_sink(BatchTrace* sink) noexcept { trace_ = sink; }

  const EngineConfig& config() const noexcept { return config_; }
  const std::vector<ProcEntry>& procs() const noexcept { return procs_; }

  /// Cumulative counters over every batch this engine has executed.
  const EngineStats& stats() const noexcept { return stats_; }

  /// The telemetry registry, or nullptr when EngineConfig::telemetry is
  /// off. Live for the engine's lifetime; snapshot from any thread.
  const obs::Registry* telemetry() const noexcept { return registry_.get(); }
  obs::Registry* telemetry() noexcept { return registry_.get(); }

  /// Diagnostic accessor (tests): the arena lock table. Its Stats expose
  /// the shard-scan counter the telemetry-gauge regression test pins at 0.
  const LockTable& lock_table() const noexcept { return lock_table_; }
  /// Second lock-table bank, or nullptr at pipeline_depth 0. Tests use it
  /// to assert both banks rotate into service and drain (DESIGN.md §14).
  const LockTable* alt_lock_table() const noexcept {
    return lock_table_alt_.get();
  }

 private:
  enum class Phase : std::uint8_t {
    kRotPrepare,
    kEnqueue,
    kExec,
    kShutdown,
  };

  struct TxnSlot {
    const TxRequest* req = nullptr;
    const ProcEntry* entry = nullptr;
    sym::TxClass klass = sym::TxClass::kIndependent;
    sym::Prediction pred;
    std::atomic<int> locks_remaining{0};
    std::int64_t prepare_us = 0;
    std::vector<TxIdx> trace_preds;  // only filled when tracing

    /// Slot-reuse contract (DESIGN.md §10): slots persist across batches as
    /// the per-transaction prediction arena. reset() drops per-batch state
    /// but keeps pred's spill buffers, so steady state allocates nothing.
    void reset() noexcept {
      req = nullptr;
      entry = nullptr;
      klass = sym::TxClass::kIndependent;
      pred.clear();
      locks_remaining.store(0, std::memory_order_relaxed);
      prepare_us = 0;
      trace_preds.clear();
    }
  };

  void worker_main(unsigned worker_idx);
  /// Queuer-side phase driver: announce `p`, run `own_work`, wait for done.
  template <typename Fn>
  void run_phase(Phase p, const Fn& own_work);

  void do_rot_prepare(unsigned worker_idx);
  /// Drains the ready work. `slot` names the caller's ready-deque slot:
  /// 0 = queuer, 1..W = worker index + 1.
  void do_exec(unsigned slot);
  /// Enqueues the keys of partition `partition` (0 = queuer, 1..W = worker
  /// index + 1) for every transaction in enqueue_order_.
  void do_enqueue_partition(unsigned partition);
  /// Runs the enqueue step: serial on the queuer, or partitioned across all
  /// participants when config_.parallel_enqueue is set.
  void enqueue_all(const std::vector<TxIdx>& order);

  /// Computes klass + key-set prediction for slot `idx` against
  /// `prep_snapshot_`. Thread-safe across distinct slots. `part` names the
  /// calling participant (0 = queuer, 1..W = worker index + 1) and selects
  /// its private IT-memo bank; it never affects the computed prediction.
  void prepare_tx(TxIdx idx, unsigned part = 0);
  /// The EngineConfig::it_memo fast path for independent transactions.
  void predict_it_memo(TxnSlot& s, const store::ReadView& view,
                       unsigned part);
  void execute_ready_tx(TxIdx idx, unsigned slot);
  void execute_rot(TxIdx idx);

  /// Enqueues slot `idx` into the lock table; readies it if fully granted.
  void enqueue_tx(TxIdx idx);

  void run_seq_batch(BatchResult& result);
  void handle_failed_sf(const std::vector<TxIdx>& failed,
                        BatchResult& result);

  /// Shared per-batch preamble (run_batch and prepare_batch): assigns the
  /// batch id, rotates the lock-table bank, resets all per-batch state and
  /// counters, decides the span identity, and classifies the requests.
  void batch_preamble(std::vector<TxRequest> requests);
  /// Builds the enqueue order over prep_list_ (DTs ahead of ITs when
  /// configured; agreed order within each group).
  std::vector<TxIdx> build_update_order() const;
  /// kSeq baseline tail shared by run_batch and the staged path.
  void finish_seq_batch(BatchResult& result, const Stopwatch& wall);
  /// Everything from phase 2 onward (shared by run_batch and
  /// execute_prepared): parallel execution, failed-transaction rounds,
  /// drain check, counter fold, GC and finalize_stats.
  void execute_phase2_and_tail(BatchResult& result, const Stopwatch& wall);

  void release_locks(TxIdx idx, unsigned slot);
  sym::TxClass effective_class(const ProcEntry& entry) const;
  /// A key needs a lock-table entry unless its table is provably immutable
  /// (no registered procedure ever writes it) or the static conflict census
  /// of the current enqueue round shows no cross-transaction conflict on it
  /// (EngineConfig::static_conflict_elision). Must be called with the same
  /// census at enqueue and release time — the census only changes inside
  /// `enqueue_all`, which runs strictly between rounds, when the lock table
  /// is drained.
  bool needs_lock(TKey key, const TxnSlot& s) const {
    if (immutable_tables_.contains(key.table)) return false;
    if (!elision_enabled_) return true;
    return !skip_tables_[s.req->proc].contains(key.table);
  }
  /// Rebuilds `skip_tables_` for the enqueue round `order` (txlint pass 3).
  void compute_conflict_census(const std::vector<TxIdx>& order);

  store::VersionedStore& store_;
  const std::vector<ProcEntry> procs_;
  const EngineConfig config_;
  lang::Interp interp_;
  /// Tables no registered procedure writes: reads take no locks.
  std::unordered_set<TableId> immutable_tables_;
  /// Per-type table footprints derived from the AST by the txlint dataflow
  /// classifier — path-complete, so sound even for capped profiles and
  /// reconnaissance predictions. Row i corresponds to ProcId i.
  analysis::ConflictMatrix conflict_matrix_;
  /// static_conflict_elision resolved against the configured system.
  bool elision_enabled_ = false;
  /// Per ProcId: tables whose keys skip the lock table in the current
  /// enqueue round (rebuilt by compute_conflict_census per round).
  std::vector<std::unordered_set<TableId>> skip_tables_;

  LockTable lock_table_;
  /// Second epoch-arena bank (pipeline_depth > 0 only): batches alternate
  /// between the two banks so a future deeper schedule can populate batch
  /// N+1's bank while batch N's is still live. Even on the current
  /// snapshot-coupled schedule the rotation runs for real — the randomized
  /// bank-rotation stress in hotpath_test covers reset-while-other-live.
  std::unique_ptr<LockTable> lock_table_alt_;
  /// The bank the running batch enqueues into / releases from. Always
  /// &lock_table_ at pipeline_depth 0.
  LockTable* active_lt_ = &lock_table_;

  // --- staged (pipelined) batch state -------------------------------------
  /// True between prepare_batch() and execute_prepared().
  bool staged_ = false;
  BatchResult staged_result_;
  std::vector<TxIdx> staged_order_;
  Stopwatch staged_wall_;

  /// Per-participant ready deques (DESIGN.md §10): slot 0 is the queuer,
  /// slot i+1 is worker i. Owners push/pop LIFO; idle participants steal
  /// FIFO from the others. Determinism never depends on pop/steal order —
  /// the lock table alone serializes conflicts.
  std::unique_ptr<WorkStealingDeque<TxIdx>[]> ready_;
  unsigned ready_slots_ = 1;
  /// Round-robin cursor for quiesced seeding (enqueue phase only).
  unsigned seed_rr_ = 0;

  /// Readies `idx` from participant `slot` (owner-push into its own deque).
  void ready_push(TxIdx idx, unsigned slot) { ready_[slot].push(idx); }
  /// Quiesced seeding during the enqueue phase: distribute initially granted
  /// transactions round-robin so phase 2 starts with balanced deques. Safe
  /// because workers are parked at the barrier (any single thread may act as
  /// a deque's owner while quiesced).
  void seed_ready(TxIdx idx) {
    ready_[seed_rr_].push(idx);
    seed_rr_ = seed_rr_ + 1 == ready_slots_ ? 0 : seed_rr_ + 1;
  }
  /// Claims work for participant `slot`: own deque LIFO first, then steals
  /// FIFO from the other participants.
  std::optional<TxIdx> ready_pop(unsigned slot) {
    if (auto v = ready_[slot].pop()) return v;
    for (unsigned i = 1; i < ready_slots_; ++i) {
      const unsigned victim =
          slot + i >= ready_slots_ ? slot + i - ready_slots_ : slot + i;
      // Relaxed occupancy pre-check: a fenced steal() on an empty deque is
      // the hot instruction of an idle sweep; two relaxed loads skip it.
      if (ready_[victim].size_approx() == 0) continue;
      if (auto v = ready_[victim].steal()) return v;
    }
    return std::nullopt;
  }
  /// Quiesced only (between batches / rounds).
  void ready_clear() {
    for (unsigned i = 0; i < ready_slots_; ++i) ready_[i].clear();
    seed_rr_ = 0;
  }
  /// Telemetry gauge: total ready occupancy (racy estimate).
  std::size_t ready_depth() const {
    std::size_t n = 0;
    for (unsigned i = 0; i < ready_slots_; ++i) n += ready_[i].size_approx();
    return n;
  }

  // --- per-batch shared state (set by the queuer between barriers) --------
  BatchId next_batch_ = 1;
  BatchId batch_ = 0;
  BatchId prep_snapshot_ = 0;
  std::vector<TxRequest> requests_;
  std::deque<TxnSlot> slots_;  // parallel to requests_
  std::vector<std::vector<TxIdx>> rot_queues_;  // per worker
  std::vector<TxIdx> prep_list_;
  TicketDispenser prep_tickets_;
  const std::vector<TxIdx>* enqueue_order_ = nullptr;
  std::atomic<std::uint64_t> remaining_{0};

  std::mutex failed_mu_;
  std::vector<TxIdx> failed_;

  // --- IT prediction memoization (EngineConfig::it_memo) ------------------
  struct MemoEntry {
    bool valid = false;
    ProcId proc = 0;
    std::uint64_t hash = 0;
    std::vector<Value> flat;  // flattened input, compared in full on hit
    sym::Prediction pred;
  };
  static constexpr std::size_t kMemoWays = 128;  // per participant
  /// [participant][way]; each participant owns its bank exclusively, so
  /// lookups and fills are race-free without synchronization.
  std::vector<std::vector<MemoEntry>> it_memo_;
  std::atomic<std::uint64_t> it_memo_hits_{0};
  std::atomic<std::uint64_t> it_memo_misses_{0};

 public:
  /// IT-memo observability (timing-dependent: the hit distribution depends
  /// on which participant claimed which prepare ticket).
  std::uint64_t it_memo_hits() const noexcept {
    return it_memo_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t it_memo_misses() const noexcept {
    return it_memo_misses_.load(std::memory_order_relaxed);
  }

 private:

  std::mutex commit_mu_;
  std::vector<TxIdx> commit_order_;
  std::vector<std::pair<TxIdx, std::vector<Value>>> outputs_;

  void capture_output(TxIdx idx, std::vector<Value> emitted);

  EngineStats stats_;

  BatchTrace* trace_ = nullptr;
  std::mutex trace_mu_;
  std::uint16_t current_round_ = 0;

  // --- causal tracing (DESIGN.md §11; decided once per batch) -------------
  /// True when this batch is sampled into the flight recorder. Written by
  /// the queuer before workers start the batch, read by every participant.
  bool span_live_ = false;
  /// Trace identity of the running batch: the replicated batch sequence and
  /// replica when a consensus layer set a TraceContext, else (batch_,
  /// kNoReplica) for standalone runs.
  std::uint64_t span_batch_seq_ = 0;
  std::uint32_t span_replica_ = obs::tracing::kNoReplica;
  /// Emits one span for the running batch (no-op on unsampled batches).
  void span(obs::tracing::SpanKind kind, std::uint32_t slot,
            std::int64_t dur_us, std::uint16_t round,
            std::uint64_t arg) const noexcept {
    if (!span_live_) return;
    obs::tracing::SpanEvent ev;
    ev.kind = kind;
    ev.batch_seq = span_batch_seq_;
    ev.replica = span_replica_;
    ev.slot = slot;
    ev.dur_us = dur_us;
    ev.round = round;
    ev.arg = arg;
    obs::tracing::emit(ev);
  }
  std::atomic<std::int64_t> ctr_all_prepare_us_{0};

  // --- batch counters (reset per batch, folded into BatchResult and the
  // per-class EngineStats breakdowns; indexed by sym::TxClass) -------------
  std::atomic<std::uint64_t> ctr_committed_[3] = {};
  std::atomic<std::uint64_t> ctr_rolled_back_[3] = {};
  std::atomic<std::uint64_t> ctr_validation_aborts_[3] = {};
  std::atomic<std::int64_t> ctr_prepare_us_{0};
  std::atomic<std::uint64_t> ctr_prepared_{0};
  /// DT pivot re-validation time, summed across the batch (telemetry only).
  std::atomic<std::int64_t> ctr_validate_us_{0};
  /// Serial SF-tail time (SF mode + post-cap fallbacks), per batch.
  std::atomic<std::int64_t> ctr_sf_us_{0};

  // --- telemetry (DESIGN.md §9; null/disengaged when telemetry is off) ----
  std::shared_ptr<obs::Registry> registry_;
  std::optional<obs::EngineMetrics> metrics_;
  /// Per-batch phase durations (µs), captured by run_batch when telemetry
  /// is on: [0]=prepare(phase 1), [1]=execute(main round), [2]=MF rounds.
  std::int64_t phase_us_[3] = {};
  /// Cold path, once per batch: folds the batch counters into EngineStats
  /// (incl. the per-class breakdowns) and, when telemetry is on, into the
  /// deterministic metric families + phase histograms.
  void finalize_stats(const BatchResult& result);

  // --- thread coordination -------------------------------------------------
  PhaseBarrier barrier_;
  std::atomic<Phase> phase_{Phase::kRotPrepare};
  std::vector<std::thread> workers_;
};

}  // namespace prog::sched
