// Fixed-width ASCII table printer for the paper-reproduction benches.
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace prog::benchutil {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t c = 0; c < widths.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : "";
        os << std::left << std::setw(static_cast<int>(widths[c])) << s
           << " | ";
      }
      os << '\n';
    };
    line(headers_);
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::string(widths[c] + 2, '-') << '|';
    }
    os << '\n';
    for (const auto& r : rows_) line(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int prec = 1) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(prec) << v;
  return os.str();
}

inline std::string fmt_si(double v) {
  if (v >= 1e6) return fmt(v / 1e6, 2) + "M";
  if (v >= 1e3) return fmt(v / 1e3, 1) + "k";
  return fmt(v, 0);
}

}  // namespace prog::benchutil
