#include "benchutil/harness.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/check.hpp"

namespace prog::benchutil {

namespace {

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(p * (v.size() - 1));
  return v[idx];
}

}  // namespace

bool fast_mode() { return std::getenv("PROG_BENCH_FAST") != nullptr; }

TrialStats run_trial(const CaseFactory& factory, sched::EngineConfig config,
                     std::size_t batch_size, const TrialOptions& opts) {
  const unsigned target_workers =
      opts.modeled ? opts.modeled_workers : config.workers;
  if (opts.modeled) {
    // Single-threaded measurement: uncontended service times even on a
    // one-core host; the model projects onto target_workers.
    config.workers = 1;
    config.serial_measurement = true;
  }
  auto ctx = factory(config);

  sched::BatchTrace trace;
  // The facade owns the engine; reach it through a batch-level knob.
  // (Database has no trace API; we attach via the config-independent sink.)
  ctx->database();  // ensure constructed

  TrialStats stats;
  std::vector<double> latencies;
  std::vector<sched::TxRequest> deferred;
  double clock_ms = 0;  // virtual completion clock
  std::int64_t prepare_us = 0, reexec_us = 0;
  std::uint64_t prepared = 0, reexecuted = 0;
  const int total_batches = opts.warmup_batches + opts.measured_batches;

  for (int b = 0; b < total_batches; ++b) {
    const double arrival_ms = b * opts.interval_ms;
    // Closed-loop clients: Calvin resubmissions displace fresh load. As in
    // the paper's accounting, a resubmission counts as a new attempt — the
    // failed attempt shows up in the abort rate, not as latency.
    const std::size_t fresh =
        deferred.size() >= batch_size ? 0 : batch_size - deferred.size();
    std::vector<sched::TxRequest> reqs = ctx->make_batch(fresh);
    for (auto& d : deferred) reqs.push_back(std::move(d));
    deferred.clear();
    for (auto& r : reqs) {
      r.tag = static_cast<std::uint64_t>(arrival_ms * 1000.0);
    }

    std::vector<std::uint64_t> tags;
    tags.reserve(reqs.size());
    for (const auto& r : reqs) tags.push_back(r.tag);

    sched::BatchResult result =
        ctx->database().execute_traced(std::move(reqs), &trace);

    ModelParams mp;
    mp.workers =
        config.system == sched::System::kSeq ? 1 : target_workers;
    mp.multi_queue_prepare = config.multi_queue_prepare;
    mp.include_prepare = config.system != sched::System::kCalvin;
    mp.enqueue_ways = config.parallel_enqueue ? target_workers + 1 : 1;
    const double duration_ms =
        opts.modeled
            ? static_cast<double>(modeled_makespan_us(trace, mp)) / 1000.0
            : static_cast<double>(result.wall_micros) / 1000.0;
    const double start_ms = std::max(arrival_ms, clock_ms);
    const double finish_ms = start_ms + duration_ms;
    clock_ms = finish_ms;

    // Deferred transactions have not completed; drop one tag instance each.
    for (const auto& d : result.deferred) {
      auto it = std::find(tags.begin(), tags.end(), d.tag);
      if (it != tags.end()) tags.erase(it);
    }

    if (b >= opts.warmup_batches) {
      for (std::uint64_t tag : tags) {
        latencies.push_back(finish_ms - static_cast<double>(tag) / 1000.0);
      }
      stats.committed += result.committed;
      stats.aborts += result.validation_aborts;
      prepare_us += result.prepare_micros;
      prepared += result.prepared;
      reexec_us += result.reexec_micros;
      reexecuted += result.reexecuted;
    }
    deferred = std::move(result.deferred);

    // Early exit: hopeless backlog.
    if (finish_ms - arrival_ms > 50.0 * opts.interval_ms) {
      stats.sustainable = false;
      stats.p99_ms = finish_ms - arrival_ms;
      return stats;
    }
  }

  // Transactions still deferred at trial end never committed; the closed
  // loop already charges them by displacing fresh load (lower committed
  // throughput). Report p99 over commits.
  stats.p99_ms = percentile(latencies, 0.99);
  stats.sustainable = stats.p99_ms <= opts.p99_limit_ms;
  const double measured_ms = opts.measured_batches * opts.interval_ms;
  stats.throughput_tps =
      static_cast<double>(stats.committed) / (measured_ms / 1000.0);
  stats.abort_pct = stats.committed == 0
                        ? 0
                        : 100.0 * static_cast<double>(stats.aborts) /
                              static_cast<double>(stats.committed);
  stats.prepare_us_per_dt =
      prepared == 0 ? 0
                    : static_cast<double>(prepare_us) /
                          static_cast<double>(prepared);
  stats.reexec_us_per_failed =
      reexecuted == 0 ? 0
                      : static_cast<double>(reexec_us) /
                            static_cast<double>(reexecuted);
  return stats;
}

SustainableResult max_sustainable(const CaseFactory& factory,
                                  const sched::EngineConfig& config,
                                  const TrialOptions& opts,
                                  std::size_t max_batch) {
  // A single trial can spike (an unlucky mix draw puts several heavy ROT
  // scans in one batch), so an unsustainable verdict is only accepted after
  // a confirming retry — otherwise one outlier truncates the whole ladder.
  auto probe = [&](std::size_t n) {
    TrialStats s = run_trial(factory, config, n, opts);
    if (!s.sustainable) {
      const TrialStats retry = run_trial(factory, config, n, opts);
      if (retry.sustainable) return retry;
    }
    return s;
  };

  SustainableResult best;
  std::size_t lo = 0, hi = 0;
  for (std::size_t n = 4; n <= max_batch; n *= 2) {
    const TrialStats s = probe(n);
    if (s.sustainable) {
      best = {n, s};
      lo = n;
    } else {
      hi = n;
      break;
    }
  }
  if (lo == 0) {
    // Even the smallest probe failed: try the floor sizes.
    for (std::size_t n : {2u, 1u}) {
      const TrialStats s = probe(n);
      if (s.sustainable) return {n, s};
    }
    return best;  // batch_size 0: nothing sustainable
  }
  if (hi == 0) return best;  // sustained everything up to max_batch
  // Binary refinement between lo (good) and hi (bad).
  for (int iter = 0; iter < 3 && hi - lo > std::max<std::size_t>(1, lo / 8);
       ++iter) {
    const std::size_t mid = (lo + hi) / 2;
    const TrialStats s = probe(mid);
    if (s.sustainable) {
      best = {mid, s};
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace prog::benchutil
