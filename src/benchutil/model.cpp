#include "benchutil/model.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"

namespace prog::benchutil {

namespace {

using sched::TraceAttempt;
using sched::TxIdx;

/// Greedy multiprocessor makespan for independent tasks.
std::int64_t independent_makespan(const std::vector<std::int64_t>& tasks,
                                  unsigned workers) {
  if (tasks.empty()) return 0;
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<>>
      free_at;
  for (unsigned w = 0; w < workers; ++w) free_at.push(0);
  for (std::int64_t t : tasks) {
    const std::int64_t start = free_at.top();
    free_at.pop();
    free_at.push(start + t);
  }
  std::int64_t makespan = 0;
  while (!free_at.empty()) {
    makespan = free_at.top();
    free_at.pop();
  }
  return makespan;
}

/// List scheduling of one round's attempts under lock-table precedence.
std::int64_t dag_makespan(const std::vector<const TraceAttempt*>& attempts,
                          unsigned workers) {
  if (attempts.empty()) return 0;
  std::unordered_map<TxIdx, std::size_t> index;
  index.reserve(attempts.size());
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    index[attempts[i]->tx] = i;
  }
  const std::size_t n = attempts.size();
  std::vector<std::vector<std::size_t>> succs(n);
  std::vector<unsigned> indeg(n, 0);
  std::vector<std::int64_t> ready_at(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (TxIdx p : attempts[i]->preds) {
      auto it = index.find(p);
      if (it == index.end() || it->second == i) continue;
      succs[it->second].push_back(i);
      ++indeg[i];
    }
  }

  // Event-driven list schedule: tasks become available when their last
  // predecessor finishes; the earliest-available task runs on the earliest
  // free worker (ties broken by enqueue order for determinism).
  using Avail = std::pair<std::int64_t, std::size_t>;  // (ready time, index)
  std::priority_queue<Avail, std::vector<Avail>, std::greater<>> avail;
  for (std::size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) avail.push({0, i});
  }
  std::priority_queue<std::int64_t, std::vector<std::int64_t>,
                      std::greater<>>
      free_at;
  for (unsigned w = 0; w < workers; ++w) free_at.push(0);

  std::int64_t makespan = 0;
  std::size_t scheduled = 0;
  while (!avail.empty()) {
    const auto [ready, i] = avail.top();
    avail.pop();
    const std::int64_t worker_free = free_at.top();
    free_at.pop();
    const std::int64_t start = std::max(ready, worker_free);
    const std::int64_t finish = start + attempts[i]->service_us;
    free_at.push(finish);
    makespan = std::max(makespan, finish);
    ++scheduled;
    for (std::size_t s : succs[i]) {
      ready_at[s] = std::max(ready_at[s], finish);
      if (--indeg[s] == 0) avail.push({ready_at[s], s});
    }
  }
  PROG_CHECK_MSG(scheduled == n,
                 "dependency cycle in trace (lock table order violated?)");
  return makespan;
}

}  // namespace

std::int64_t modeled_makespan_us(const sched::BatchTrace& trace,
                                 const ModelParams& params,
                                 ModelBreakdown* breakdown) {
  const unsigned w = params.workers == 0 ? 1 : params.workers;

  // Phase 1: ROTs on the workers, preparation shared (MQ) or queuer-only.
  std::vector<std::int64_t> rot_tasks;
  std::int64_t rot_total = 0;
  std::int64_t rot_max = 0;
  for (const TraceAttempt& a : trace.attempts) {
    if (a.rot) {
      rot_tasks.push_back(a.service_us);
      rot_total += a.service_us;
      rot_max = std::max(rot_max, a.service_us);
    }
  }
  const std::int64_t prepare_us =
      params.include_prepare ? trace.prepare_total_us : 0;
  std::int64_t phase1 = 0;
  if (params.multi_queue_prepare) {
    // Workers and queuer drain the combined ROT + preparation pool.
    const std::int64_t pool = rot_total + prepare_us;
    phase1 = std::max<std::int64_t>(rot_max, pool / (w + 1));
  } else {
    // The queuer prepares alone while workers run ROTs.
    phase1 = std::max(independent_makespan(rot_tasks, w), prepare_us);
  }

  // Rounds of update execution under lock-table precedence.
  std::int64_t rounds_us = 0;
  for (std::uint16_t r = 0; r <= trace.rounds; ++r) {
    std::vector<const TraceAttempt*> round;
    for (const TraceAttempt& a : trace.attempts) {
      if (!a.rot && a.round == r) round.push_back(&a);
    }
    rounds_us += dag_makespan(round, w);
  }

  const std::int64_t enqueue_us =
      trace.enqueue_us /
      static_cast<std::int64_t>(std::max(1u, params.enqueue_ways));
  if (breakdown != nullptr) {
    *breakdown = {phase1, enqueue_us, rounds_us, trace.sf_serial_us};
  }
  return phase1 + enqueue_us + rounds_us + trace.sf_serial_us;
}

}  // namespace prog::benchutil
