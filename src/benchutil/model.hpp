// Scheduling model: projects a recorded batch trace onto W workers.
//
// The engine (run with one worker so service times are uncontended) records
// per-attempt service times and the lock-table dependency DAG. The model
// replays the engine's phase structure analytically:
//   phase 1: ROT execution + key-set preparation (MQ shares the preparation
//            pool across workers + queuer; 1Q leaves it on the queuer);
//   serial lock-table enqueueing by the queuer;
//   one list-scheduled DAG execution per round (main + MF re-executions);
//   the SF tail, which is serial by definition.
// This makes the paper's throughput figures machine-independent: on a
// many-core box the harness can also measure wall-clock directly and the two
// agree in shape.
#pragma once

#include <cstdint>

#include "sched/trace.hpp"

namespace prog::benchutil {

struct ModelParams {
  unsigned workers = 20;
  bool multi_queue_prepare = true;
  /// Calvin prepares at the *client* (the reconnaissance phase), so its
  /// preparation cost is off the server's critical path.
  bool include_prepare = true;
  /// How many participants populate the lock table (1 = the paper's single
  /// queuer; workers+1 under EngineConfig::parallel_enqueue).
  unsigned enqueue_ways = 1;
};

/// Optional per-phase decomposition of the modeled duration.
struct ModelBreakdown {
  std::int64_t phase1_us = 0;   // ROT execution + preparation
  std::int64_t enqueue_us = 0;  // serial queuer work
  std::int64_t rounds_us = 0;   // update-phase DAG rounds
  std::int64_t sf_us = 0;       // serial failed-transaction tail
};

/// Modeled duration (µs) of the traced batch on `params.workers` workers.
std::int64_t modeled_makespan_us(const sched::BatchTrace& trace,
                                 const ModelParams& params,
                                 ModelBreakdown* breakdown = nullptr);

}  // namespace prog::benchutil
