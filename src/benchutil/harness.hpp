// Maximum-sustainable-throughput harness (paper, Section IV-B setup):
// batches arrive every 10 ms; the per-batch transaction count is raised
// until the 99th-percentile transaction latency exceeds 10 ms; the reported
// throughput is the largest sustainable rate.
//
// Latency of a transaction = completion time of its batch - its arrival
// time. Calvin-deferred transactions keep their original arrival tag across
// resubmissions, so their latency correctly spans multiple batches.
//
// Two timing modes:
//   - modeled (default): the engine runs with 1 worker recording a trace;
//     batch duration = benchutil::modeled_makespan_us(trace, W). Fully
//     deterministic and machine-independent.
//   - wall-clock: batch duration is the engine's measured wall time with
//     real worker threads (use on a many-core host).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "benchutil/model.hpp"
#include "sched/engine.hpp"

namespace prog::benchutil {

/// A freshly-initialized database + workload generator for one trial.
class CaseContext {
 public:
  virtual ~CaseContext() = default;
  virtual db::Database& database() = 0;
  virtual std::vector<sched::TxRequest> make_batch(std::size_t n) = 0;
};

/// Builds a fresh CaseContext for `config` (trials never share state).
using CaseFactory =
    std::function<std::unique_ptr<CaseContext>(const sched::EngineConfig&)>;

struct TrialOptions {
  int warmup_batches = 3;
  int measured_batches = 12;
  double interval_ms = 10.0;
  double p99_limit_ms = 10.0;
  bool modeled = true;
  unsigned modeled_workers = 20;
};

struct TrialStats {
  bool sustainable = false;
  double p99_ms = 0;
  double throughput_tps = 0;  // committed transactions per second
  double abort_pct = 0;       // validation aborts / committed * 100
  double prepare_us_per_dt = 0;
  double reexec_us_per_failed = 0;
  std::uint64_t committed = 0;
  std::uint64_t aborts = 0;
};

/// Runs one trial at a fixed batch size.
TrialStats run_trial(const CaseFactory& factory, sched::EngineConfig config,
                     std::size_t batch_size, const TrialOptions& opts);

struct SustainableResult {
  std::size_t batch_size = 0;  // largest sustainable
  TrialStats stats;            // stats at that size
};

/// Doubles the batch size until the p99 limit breaks, then binary-refines.
SustainableResult max_sustainable(const CaseFactory& factory,
                                  const sched::EngineConfig& config,
                                  const TrialOptions& opts,
                                  std::size_t max_batch = 4096);

/// True when PROG_BENCH_FAST is set: benches shrink their sweeps so the
/// whole suite stays in CI-friendly time.
bool fast_mode();

}  // namespace prog::benchutil
