// Path-constraint satisfiability checker.
//
// The symbolic executor asks one question: "is this conjunction of branch
// conditions satisfiable for some assignment of the symbolic leaves?" Leaves
// are procedure inputs (with declared benchmark bounds, e.g. olCnt in [5,15])
// and pivot reads (unbounded). The solver answers with interval constraint
// propagation (HC4-style forward/backward narrowing) refined by bounded
// domain splitting. It is sound for pruning: kUnsat is only returned when the
// path is genuinely infeasible; when the budget runs out it reports kUnknown
// and the executor conservatively keeps the path.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "expr/expr.hpp"
#include "solver/interval.hpp"

namespace prog::solver {

enum class Sat : std::uint8_t { kSat, kUnsat, kUnknown };

/// Declared domains for symbolic leaves, keyed by the hash-consed leaf node.
/// Leaves without an entry default to Interval::all().
class DomainMap {
 public:
  void declare(const expr::Expr* leaf, Interval domain) {
    domains_[leaf] = domain;
  }

  Interval lookup(const expr::Expr* leaf) const {
    auto it = domains_.find(leaf);
    return it == domains_.end() ? Interval::all() : it->second;
  }

  std::size_t size() const noexcept { return domains_.size(); }

 private:
  std::unordered_map<const expr::Expr*, Interval> domains_;
};

struct SolverStats {
  std::uint64_t queries = 0;
  std::uint64_t unsat = 0;
  std::uint64_t unknown = 0;
  std::uint64_t splits = 0;
  std::uint64_t propagation_rounds = 0;
};

class Solver {
 public:
  struct Options {
    /// Maximum domain-splitting nodes explored per query.
    std::uint32_t split_budget = 256;
    /// Maximum fixpoint rounds per propagation.
    std::uint32_t max_propagation_rounds = 32;
    /// Domains wider than this are never enumerated, only bisected.
    std::uint64_t enumerate_limit = 16;
  };

  Solver() : Solver(Options{}) {}
  explicit Solver(Options opts) : opts_(opts) {}

  /// Checks satisfiability of the conjunction of `constraints` (each must be
  /// truthy, i.e. != 0) under `domains`.
  Sat check(std::span<const expr::Expr* const> constraints,
            const DomainMap& domains);

  const SolverStats& stats() const noexcept { return stats_; }

 private:
  using Env = std::unordered_map<const expr::Expr*, Interval>;

  /// Forward interval evaluation under the current environment.
  Interval ieval(const expr::Expr* e, const Env& env) const;

  /// Backward narrowing: refine leaf domains given that `e` evaluates into
  /// `target`. Returns false if a domain becomes empty (contradiction).
  bool narrow(const expr::Expr* e, Interval target, Env& env) const;

  /// Narrowing for "lhs <op> rhs must hold" with op a comparison.
  bool narrow_cmp_true(expr::Op op, const expr::Expr* e, Env& env) const;

  /// One full propagation pass over all constraints; returns the tri-state
  /// after narrowing to fixpoint.
  Sat propagate(std::span<const expr::Expr* const> constraints, Env& env);

  Sat search(std::span<const expr::Expr* const> constraints, Env env,
             std::uint32_t& budget);

  /// Collects the symbolic leaves of `e` into env with their declared
  /// domains (idempotent).
  void seed_leaves(const expr::Expr* e, const DomainMap& domains,
                   Env& env) const;

  static bool is_leaf(const expr::Expr* e) noexcept;

  Options opts_;
  SolverStats stats_;
  /// Set by narrow() when a leaf domain actually shrinks (fixpoint check).
  mutable bool narrow_changed_ = false;
};

}  // namespace prog::solver
