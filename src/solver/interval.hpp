// Saturating integer intervals — the abstract domain of the path-constraint
// solver. Bounds are clamped to +/- kInf so arithmetic never overflows.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "common/types.hpp"

namespace prog::solver {

/// Closed interval [lo, hi] over int64 with saturation at +/- kInf.
/// An interval with lo > hi is empty (bottom).
struct Interval {
  static constexpr Value kInf = INT64_C(1) << 60;

  Value lo = -kInf;
  Value hi = kInf;

  static Interval all() noexcept { return {-kInf, kInf}; }
  static Interval empty() noexcept { return {1, 0}; }
  static Interval point(Value v) noexcept { return {v, v}; }
  static Interval boolean() noexcept { return {0, 1}; }

  bool is_empty() const noexcept { return lo > hi; }
  bool is_point() const noexcept { return lo == hi; }
  bool contains(Value v) const noexcept { return lo <= v && v <= hi; }
  /// Width as unsigned count of values; saturates.
  std::uint64_t count() const noexcept {
    if (is_empty()) return 0;
    return static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  }

  Interval intersect(Interval o) const noexcept {
    return {std::max(lo, o.lo), std::min(hi, o.hi)};
  }

  Interval hull(Interval o) const noexcept {
    if (is_empty()) return o;
    if (o.is_empty()) return *this;
    return {std::min(lo, o.lo), std::max(hi, o.hi)};
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// Clamp helper keeping values inside the representable band.
constexpr Value sat(__int128 v) noexcept {
  if (v > Interval::kInf) return Interval::kInf;
  if (v < -Interval::kInf) return -Interval::kInf;
  return static_cast<Value>(v);
}

inline Interval iadd(Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {sat(static_cast<__int128>(a.lo) + b.lo),
          sat(static_cast<__int128>(a.hi) + b.hi)};
}

inline Interval isub(Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {sat(static_cast<__int128>(a.lo) - b.hi),
          sat(static_cast<__int128>(a.hi) - b.lo)};
}

inline Interval ineg(Interval a) noexcept {
  if (a.is_empty()) return Interval::empty();
  return {sat(-static_cast<__int128>(a.hi)), sat(-static_cast<__int128>(a.lo))};
}

inline Interval imul(Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  const __int128 c[4] = {static_cast<__int128>(a.lo) * b.lo,
                         static_cast<__int128>(a.lo) * b.hi,
                         static_cast<__int128>(a.hi) * b.lo,
                         static_cast<__int128>(a.hi) * b.hi};
  __int128 mn = c[0], mx = c[0];
  for (int i = 1; i < 4; ++i) {
    mn = std::min(mn, c[i]);
    mx = std::max(mx, c[i]);
  }
  return {sat(mn), sat(mx)};
}

/// Interval over-approximation of total division (x / 0 == 0).
Interval idiv(Interval a, Interval b) noexcept;

/// Interval over-approximation of total modulo (x % 0 == 0).
Interval imod(Interval a, Interval b) noexcept;

inline Interval imin(Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

inline Interval imax(Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

std::string to_string(Interval iv);

}  // namespace prog::solver
