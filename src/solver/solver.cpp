#include "solver/solver.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <sstream>

namespace prog::solver {

using expr::Expr;
using expr::Op;

Interval idiv(Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  // Total semantics: division by zero yields 0, so if 0 is in b the result
  // hull must include 0. For the nonzero part, sample the candidate extremes.
  Interval out = Interval::empty();
  if (b.contains(0)) out = out.hull(Interval::point(0));
  const Value bl = b.lo == 0 ? 1 : b.lo;
  const Value bh = b.hi == 0 ? -1 : b.hi;
  const Value candidates_b[4] = {bl, bh, b.contains(1) ? 1 : bl,
                                 b.contains(-1) ? -1 : bh};
  for (Value bb : candidates_b) {
    if (bb == 0 || !b.contains(bb)) continue;
    const Value q1 = a.lo / bb;
    const Value q2 = a.hi / bb;
    out = out.hull({std::min(q1, q2), std::max(q1, q2)});
  }
  if (out.is_empty()) out = Interval::point(0);
  return out;
}

Interval imod(Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  if (b.is_point() && a.is_point()) {
    return Interval::point(b.lo == 0 ? 0 : a.lo % b.lo);
  }
  // C++ remainder has the sign of the dividend; |r| < max(|b|).
  const Value mag =
      std::max(std::abs(b.lo), std::abs(b.hi));
  const Value bound = mag == 0 ? 0 : mag - 1;
  Interval out{-bound, bound};
  if (a.lo >= 0) out.lo = 0;
  if (a.hi <= 0) out.hi = 0;
  // The remainder can never exceed the dividend's own magnitude range.
  out.lo = std::max(out.lo, std::min<Value>(a.lo, 0));
  out.hi = std::min(out.hi, std::max<Value>(a.hi, 0));
  return out;
}

std::string to_string(Interval iv) {
  if (iv.is_empty()) return "[empty]";
  std::ostringstream os;
  os << '[' << iv.lo << ", " << iv.hi << ']';
  return os.str();
}

namespace {

/// True if every value in `iv` is nonzero (definitely truthy).
bool definitely_true(Interval iv) noexcept {
  return !iv.is_empty() && !iv.contains(0);
}

/// True if `iv` is exactly {0} (definitely falsy).
bool definitely_false(Interval iv) noexcept {
  return iv == Interval::point(0);
}

/// Narrow `f` to its truthy (nonzero) subset if that subset is an interval.
std::optional<Interval> truthy_subset(Interval f) noexcept {
  if (f.is_empty()) return std::nullopt;
  if (!f.contains(0)) return f;  // already all-truthy
  if (f.lo == 0 && f.hi == 0) return std::nullopt;
  if (f.lo == 0) return Interval{1, f.hi};
  if (f.hi == 0) return Interval{f.lo, -1};
  return std::nullopt;  // zero strictly inside; not representable
}

Interval forward_cmp(Op op, Interval a, Interval b) noexcept {
  if (a.is_empty() || b.is_empty()) return Interval::empty();
  switch (op) {
    case Op::kEq:
      if (a.is_point() && b.is_point()) return Interval::point(a.lo == b.lo);
      if (a.intersect(b).is_empty()) return Interval::point(0);
      return Interval::boolean();
    case Op::kNe:
      if (a.is_point() && b.is_point()) return Interval::point(a.lo != b.lo);
      if (a.intersect(b).is_empty()) return Interval::point(1);
      return Interval::boolean();
    case Op::kLt:
      if (a.hi < b.lo) return Interval::point(1);
      if (a.lo >= b.hi) return Interval::point(0);
      return Interval::boolean();
    case Op::kLe:
      if (a.hi <= b.lo) return Interval::point(1);
      if (a.lo > b.hi) return Interval::point(0);
      return Interval::boolean();
    case Op::kGt:
      return forward_cmp(Op::kLt, b, a);
    case Op::kGe:
      return forward_cmp(Op::kLe, b, a);
    default:
      return Interval::boolean();
  }
}

}  // namespace

bool Solver::is_leaf(const Expr* e) noexcept {
  return e->op == Op::kInput || e->op == Op::kInputElem ||
         e->op == Op::kPivotField;
}

void Solver::seed_leaves(const Expr* e, const DomainMap& domains,
                         Env& env) const {
  if (e == nullptr) return;
  if (is_leaf(e)) {
    env.try_emplace(e, domains.lookup(e));
    return;  // InputElem index is opaque: the whole node is one variable
  }
  seed_leaves(e->lhs, domains, env);
  seed_leaves(e->rhs, domains, env);
}

Interval Solver::ieval(const Expr* e, const Env& env) const {
  PROG_CHECK(e != nullptr);
  if (is_leaf(e)) {
    auto it = env.find(e);
    return it == env.end() ? Interval::all() : it->second;
  }
  switch (e->op) {
    case Op::kConst:
      return Interval::point(e->cval);
    case Op::kAdd:
      return iadd(ieval(e->lhs, env), ieval(e->rhs, env));
    case Op::kSub:
      return isub(ieval(e->lhs, env), ieval(e->rhs, env));
    case Op::kMul:
      return imul(ieval(e->lhs, env), ieval(e->rhs, env));
    case Op::kDiv:
      return idiv(ieval(e->lhs, env), ieval(e->rhs, env));
    case Op::kMod:
      return imod(ieval(e->lhs, env), ieval(e->rhs, env));
    case Op::kMin:
      return imin(ieval(e->lhs, env), ieval(e->rhs, env));
    case Op::kMax:
      return imax(ieval(e->lhs, env), ieval(e->rhs, env));
    case Op::kNeg:
      return ineg(ieval(e->lhs, env));
    case Op::kNot: {
      const Interval f = ieval(e->lhs, env);
      if (definitely_true(f)) return Interval::point(0);
      if (definitely_false(f)) return Interval::point(1);
      return Interval::boolean();
    }
    case Op::kAnd: {
      const Interval a = ieval(e->lhs, env);
      const Interval b = ieval(e->rhs, env);
      if (definitely_false(a) || definitely_false(b)) {
        return Interval::point(0);
      }
      if (definitely_true(a) && definitely_true(b)) {
        return Interval::point(1);
      }
      return Interval::boolean();
    }
    case Op::kOr: {
      const Interval a = ieval(e->lhs, env);
      const Interval b = ieval(e->rhs, env);
      if (definitely_true(a) || definitely_true(b)) return Interval::point(1);
      if (definitely_false(a) && definitely_false(b)) {
        return Interval::point(0);
      }
      return Interval::boolean();
    }
    default:
      return forward_cmp(e->op, ieval(e->lhs, env), ieval(e->rhs, env));
  }
}

bool Solver::narrow(const Expr* e, Interval target, Env& env) const {
  PROG_CHECK(e != nullptr);
  if (target.is_empty()) return false;
  if (is_leaf(e)) {
    auto it = env.find(e);
    if (it == env.end()) return true;  // unseeded leaf: nothing to refine
    const Interval next = it->second.intersect(target);
    if (!(next == it->second)) {
      it->second = next;
      narrow_changed_ = true;
    }
    return !it->second.is_empty();
  }
  switch (e->op) {
    case Op::kConst:
      return target.contains(e->cval);
    case Op::kAdd: {
      const Interval a = ieval(e->lhs, env);
      const Interval b = ieval(e->rhs, env);
      if (!narrow(e->lhs, isub(target, b), env)) return false;
      return narrow(e->rhs, isub(target, a), env);
    }
    case Op::kSub: {
      const Interval a = ieval(e->lhs, env);
      const Interval b = ieval(e->rhs, env);
      if (!narrow(e->lhs, iadd(target, b), env)) return false;
      return narrow(e->rhs, isub(a, target), env);
    }
    case Op::kNeg:
      return narrow(e->lhs, ineg(target), env);
    case Op::kMul: {
      // Only narrow through multiplication by a nonzero constant; the general
      // case falls back to the forward consistency check in propagate().
      const Expr* ce = e->lhs->is_const() ? e->lhs : e->rhs;
      const Expr* ve = e->lhs->is_const() ? e->rhs : e->lhs;
      if (!ce->is_const() || ce->cval == 0) return true;
      const Value c = ce->cval;
      // v*c in [target.lo, target.hi]  =>  v in [ceil(lo/c), floor(hi/c)]
      auto floor_div = [](Value x, Value d) {
        Value q = x / d;
        if ((x % d != 0) && ((x < 0) != (d < 0))) --q;
        return q;
      };
      auto ceil_div = [&](Value x, Value d) { return -floor_div(-x, d); };
      Interval vt = c > 0 ? Interval{ceil_div(target.lo, c),
                                     floor_div(target.hi, c)}
                          : Interval{ceil_div(target.hi, c),
                                     floor_div(target.lo, c)};
      return narrow(ve, vt, env);
    }
    case Op::kMin: {
      // min(a,b) >= t.lo  =>  a >= t.lo and b >= t.lo
      if (!narrow(e->lhs, {target.lo, Interval::kInf}, env)) return false;
      if (!narrow(e->rhs, {target.lo, Interval::kInf}, env)) return false;
      // If one side is certainly above t.hi the other must be <= t.hi.
      if (ieval(e->lhs, env).lo > target.hi) {
        return narrow(e->rhs, {-Interval::kInf, target.hi}, env);
      }
      if (ieval(e->rhs, env).lo > target.hi) {
        return narrow(e->lhs, {-Interval::kInf, target.hi}, env);
      }
      return true;
    }
    case Op::kMax: {
      if (!narrow(e->lhs, {-Interval::kInf, target.hi}, env)) return false;
      if (!narrow(e->rhs, {-Interval::kInf, target.hi}, env)) return false;
      if (ieval(e->lhs, env).hi < target.lo) {
        return narrow(e->rhs, {target.lo, Interval::kInf}, env);
      }
      if (ieval(e->rhs, env).hi < target.lo) {
        return narrow(e->lhs, {target.lo, Interval::kInf}, env);
      }
      return true;
    }
    case Op::kNot: {
      const Interval f = ieval(e->lhs, env);
      if (definitely_true(target)) return narrow(e->lhs, Interval::point(0), env);
      if (definitely_false(target)) {
        if (auto t = truthy_subset(f)) return narrow(e->lhs, *t, env);
        return !definitely_false(f) || false;
      }
      return true;
    }
    case Op::kAnd: {
      if (definitely_true(target)) {
        if (auto t = truthy_subset(ieval(e->lhs, env))) {
          if (!narrow(e->lhs, *t, env)) return false;
        } else if (definitely_false(ieval(e->lhs, env))) {
          return false;
        }
        if (auto t = truthy_subset(ieval(e->rhs, env))) {
          if (!narrow(e->rhs, *t, env)) return false;
        } else if (definitely_false(ieval(e->rhs, env))) {
          return false;
        }
        return true;
      }
      if (definitely_false(target)) {
        const Interval a = ieval(e->lhs, env);
        const Interval b = ieval(e->rhs, env);
        if (definitely_true(a)) return narrow(e->rhs, Interval::point(0), env);
        if (definitely_true(b)) return narrow(e->lhs, Interval::point(0), env);
      }
      return true;
    }
    case Op::kOr: {
      if (definitely_false(target)) {
        if (!narrow(e->lhs, Interval::point(0), env)) return false;
        return narrow(e->rhs, Interval::point(0), env);
      }
      if (definitely_true(target)) {
        const Interval a = ieval(e->lhs, env);
        const Interval b = ieval(e->rhs, env);
        if (definitely_false(a)) {
          if (auto t = truthy_subset(b)) return narrow(e->rhs, *t, env);
          return !definitely_false(b);
        }
        if (definitely_false(b)) {
          if (auto t = truthy_subset(a)) return narrow(e->lhs, *t, env);
          return !definitely_false(a);
        }
      }
      return true;
    }
    case Op::kEq: {
      if (definitely_true(target)) {
        const Interval meet =
            ieval(e->lhs, env).intersect(ieval(e->rhs, env));
        if (!narrow(e->lhs, meet, env)) return false;
        return narrow(e->rhs, meet, env);
      }
      if (definitely_false(target)) {
        return narrow_cmp_true(Op::kNe, e, env);
      }
      return true;
    }
    case Op::kNe:
      if (definitely_true(target)) return narrow_cmp_true(Op::kNe, e, env);
      if (definitely_false(target)) {
        const Interval meet =
            ieval(e->lhs, env).intersect(ieval(e->rhs, env));
        if (!narrow(e->lhs, meet, env)) return false;
        return narrow(e->rhs, meet, env);
      }
      return true;
    case Op::kLt:
    case Op::kLe:
    case Op::kGt:
    case Op::kGe: {
      if (definitely_true(target)) return narrow_cmp_true(e->op, e, env);
      if (definitely_false(target)) {
        Op inv;
        switch (e->op) {
          case Op::kLt: inv = Op::kGe; break;
          case Op::kLe: inv = Op::kGt; break;
          case Op::kGt: inv = Op::kLe; break;
          default:      inv = Op::kLt; break;
        }
        return narrow_cmp_true(inv, e, env);
      }
      return true;
    }
    default:
      return true;  // Div/Mod and friends: forward check only
  }
}

bool Solver::narrow_cmp_true(Op op, const Expr* e, Env& env) const {
  const Interval a = ieval(e->lhs, env);
  const Interval b = ieval(e->rhs, env);
  switch (op) {
    case Op::kLt:
      if (!narrow(e->lhs, {-Interval::kInf, sat(static_cast<__int128>(b.hi) - 1)},
                  env)) {
        return false;
      }
      return narrow(e->rhs, {sat(static_cast<__int128>(a.lo) + 1), Interval::kInf},
                    env);
    case Op::kLe:
      if (!narrow(e->lhs, {-Interval::kInf, b.hi}, env)) return false;
      return narrow(e->rhs, {a.lo, Interval::kInf}, env);
    case Op::kGt:
      if (!narrow(e->lhs, {sat(static_cast<__int128>(b.lo) + 1), Interval::kInf},
                  env)) {
        return false;
      }
      return narrow(e->rhs, {-Interval::kInf, sat(static_cast<__int128>(a.hi) - 1)},
                    env);
    case Op::kGe:
      if (!narrow(e->lhs, {b.lo, Interval::kInf}, env)) return false;
      return narrow(e->rhs, {-Interval::kInf, a.hi}, env);
    case Op::kNe: {
      // Endpoint shaving when the other side is a point.
      if (b.is_point()) {
        Interval na = a;
        if (na.lo == b.lo) ++na.lo;
        if (na.hi == b.lo) --na.hi;
        if (!narrow(e->lhs, na, env)) return false;
      }
      if (a.is_point()) {
        Interval nb = b;
        if (nb.lo == a.lo) ++nb.lo;
        if (nb.hi == a.lo) --nb.hi;
        return narrow(e->rhs, nb, env);
      }
      if (a.is_point() && b.is_point() && a.lo == b.lo) return false;
      return true;
    }
    default:
      return true;
  }
}

Sat Solver::propagate(std::span<const expr::Expr* const> constraints,
                      Env& env) {
  for (std::uint32_t round = 0; round < opts_.max_propagation_rounds;
       ++round) {
    ++stats_.propagation_rounds;
    narrow_changed_ = false;
    bool all_definite = true;
    for (const Expr* c : constraints) {
      const Interval f = ieval(c, env);
      if (f.is_empty() || definitely_false(f)) return Sat::kUnsat;
      if (!definitely_true(f)) all_definite = false;
      if (auto t = truthy_subset(f)) {
        if (!narrow(c, *t, env)) return Sat::kUnsat;
      }
    }
    if (all_definite) return Sat::kSat;
    if (!narrow_changed_) return Sat::kUnknown;  // fixpoint, still ambiguous
  }
  return Sat::kUnknown;
}

Sat Solver::search(std::span<const expr::Expr* const> constraints, Env env,
                   std::uint32_t& budget) {
  const Sat p = propagate(constraints, env);
  if (p != Sat::kUnknown) return p;
  if (budget == 0) return Sat::kUnknown;

  // Pick the undecided variable with the smallest domain.
  const Expr* pick = nullptr;
  std::uint64_t best = UINT64_MAX;
  for (const auto& [leaf, dom] : env) {
    const std::uint64_t n = dom.count();
    if (n > 1 && n < best) {
      best = n;
      pick = leaf;
    }
  }
  if (pick == nullptr) {
    // All variables fixed yet propagation was inconclusive (nonlinear ops):
    // evaluate concretely via intervals, which are now points.
    for (const Expr* c : constraints) {
      const Interval f = ieval(c, env);
      if (!definitely_true(f)) return Sat::kUnsat;
    }
    return Sat::kSat;
  }

  const Interval dom = env.at(pick);
  bool saw_unknown = false;
  if (dom.count() <= opts_.enumerate_limit) {
    for (Value v = dom.lo; v <= dom.hi; ++v) {
      if (budget == 0) return Sat::kUnknown;
      --budget;
      ++stats_.splits;
      Env child = env;
      child[pick] = Interval::point(v);
      const Sat r = search(constraints, std::move(child), budget);
      if (r == Sat::kSat) return Sat::kSat;
      if (r == Sat::kUnknown) saw_unknown = true;
    }
  } else {
    const Value mid = dom.lo + static_cast<Value>(dom.count() / 2);
    const Interval halves[2] = {{dom.lo, mid - 1}, {mid, dom.hi}};
    for (const Interval& h : halves) {
      if (h.is_empty()) continue;
      if (budget == 0) return Sat::kUnknown;
      --budget;
      ++stats_.splits;
      Env child = env;
      child[pick] = h;
      const Sat r = search(constraints, std::move(child), budget);
      if (r == Sat::kSat) return Sat::kSat;
      if (r == Sat::kUnknown) saw_unknown = true;
    }
  }
  return saw_unknown ? Sat::kUnknown : Sat::kUnsat;
}

Sat Solver::check(std::span<const expr::Expr* const> constraints,
                  const DomainMap& domains) {
  ++stats_.queries;
  Env env;
  for (const Expr* c : constraints) seed_leaves(c, domains, env);
  std::uint32_t budget = opts_.split_budget;
  const Sat r = search(constraints, std::move(env), budget);
  if (r == Sat::kUnsat) ++stats_.unsat;
  if (r == Sat::kUnknown) ++stats_.unknown;
  return r;
}

}  // namespace prog::solver
