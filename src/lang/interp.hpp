// Concrete interpreter: runtime execution of DSL procedures.
//
// Reads go through a transaction-private write buffer layered over a
// ReadView (snapshot or live head); writes are buffered and only published by
// the caller after the transaction logic commits, which gives AbortIf
// rollback semantics for free. The interpreter also records the *actual*
// read/write key trace — used by the RECON predictor variants, by the
// profile-soundness property tests, and by the runtime guard asserting that
// every access was covered by the predicted key-set.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "lang/ast.hpp"
#include "store/store.hpp"

namespace prog::lang {

/// Buffered effect of a committed transaction, in final (deduplicated) form.
struct WriteOp {
  TKey key;
  std::optional<store::Row> row;  // nullopt == delete
};

struct ExecResult {
  bool committed = false;
  std::vector<Value> emitted;
  std::vector<TKey> reads;    // first-access order, deduplicated
  std::vector<TKey> writes;   // first-access order, deduplicated
  std::vector<WriteOp> ops;   // buffered effects to publish on commit
};

class Interp {
 public:
  struct Options {
    /// Hard cap on interpreted statements — catches runaway loops.
    std::uint64_t max_steps = 1u << 22;
    /// Differential oracle (DESIGN.md §15): walk the AST even when the
    /// procedure carries compiled bytecode. Wired to
    /// EngineConfig::tree_walk_ablation.
    bool tree_walk = false;
  };

  Interp() : Interp(Options{}) {}
  explicit Interp(Options opts) : opts_(opts) {}

  /// Executes `proc` with `input` against `base`. Never mutates the store;
  /// the caller publishes `ops` if and only if `committed` is true.
  ExecResult run(const Proc& proc, const TxInput& input,
                 const store::ReadView& base) const;

  /// Allocation-free variant (DESIGN.md §10): executes into `out`, reusing
  /// its vector capacities, and keeps the interpreter working state
  /// (variable frame, row handles, write buffer) in thread-local scratch
  /// that persists across calls. Steady-state execution performs no heap
  /// allocation beyond row-payload copies. `out` is fully overwritten.
  void run_into(const Proc& proc, const TxInput& input,
                const store::ReadView& base, ExecResult& out) const;

 private:
  Options opts_;
};

/// Publishes the buffered effects of a committed execution into `store`
/// tagged with `batch`.
void apply_writes(store::VersionedStore& store, const ExecResult& result,
                  BatchId batch);

}  // namespace prog::lang
