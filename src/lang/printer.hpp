// Human-readable rendering of DSL procedures — debugging/tooling aid used
// by the profile explorer and tests.
#pragma once

#include <string>

#include "lang/ast.hpp"

namespace prog::lang {

/// Renders an expression of `proc` in infix form, e.g. "(w_id * 10 + d_id)".
std::string expr_to_string(const Proc& proc, ExprId id);

/// Renders the whole procedure, e.g.:
///   proc payment(w_id in [0,99], amount in [1,5000]) {
///     h0 = GET(t1, w_id)
///     PUT(t1, w_id, {f0: (h0.f0 + amount)})
///   }
std::string to_string(const Proc& proc);

}  // namespace prog::lang
