#include "lang/printer.hpp"

#include <sstream>

#include "common/check.hpp"

namespace prog::lang {

namespace {

const char* binop_symbol(EKind k) {
  switch (k) {
    case EKind::kAdd: return " + ";
    case EKind::kSub: return " - ";
    case EKind::kMul: return " * ";
    case EKind::kDiv: return " / ";
    case EKind::kMod: return " % ";
    case EKind::kEq: return " == ";
    case EKind::kNe: return " != ";
    case EKind::kLt: return " < ";
    case EKind::kLe: return " <= ";
    case EKind::kGt: return " > ";
    case EKind::kGe: return " >= ";
    case EKind::kAnd: return " && ";
    case EKind::kOr: return " || ";
    default: return " ? ";
  }
}

class Printer {
 public:
  explicit Printer(const Proc& proc) : proc_(proc) {}

  void render_expr(ExprId id, std::ostringstream& os) const {
    const SExpr& e = proc_.expr(id);
    switch (e.kind) {
      case EKind::kConst:
        os << e.cval;
        return;
      case EKind::kParam:
        os << proc_.params[e.param].name;
        return;
      case EKind::kParamElem:
        os << proc_.params[e.param].name << '[';
        render_expr(e.a, os);
        os << ']';
        return;
      case EKind::kVar:
        os << var_name(e.var);
        return;
      case EKind::kField:
        os << var_name(e.var);
        if (e.field == kExistsField) {
          os << ".exists";
        } else {
          os << ".f" << e.field;
        }
        return;
      case EKind::kNot:
        os << "!(";
        render_expr(e.a, os);
        os << ')';
        return;
      case EKind::kMin:
      case EKind::kMax:
        os << (e.kind == EKind::kMin ? "min(" : "max(");
        render_expr(e.a, os);
        os << ", ";
        render_expr(e.b, os);
        os << ')';
        return;
      default:
        os << '(';
        render_expr(e.a, os);
        os << binop_symbol(e.kind);
        render_expr(e.b, os);
        os << ')';
        return;
    }
  }

  void render_block(const std::vector<Stmt>& block, int depth,
                    std::ostringstream& os) const {
    const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
    for (const Stmt& s : block) {
      os << pad;
      switch (s.kind) {
        case SKind::kAssign:
          os << var_name(s.var) << " = ";
          render_expr(s.a, os);
          os << '\n';
          break;
        case SKind::kGet:
          os << var_name(s.var) << " = GET(t" << s.table << ", ";
          render_expr(s.a, os);
          os << ")\n";
          break;
        case SKind::kPut: {
          os << "PUT(t" << s.table << ", ";
          render_expr(s.a, os);
          os << ", {";
          bool first = true;
          for (const auto& [f, eid] : s.fields) {
            if (!first) os << ", ";
            first = false;
            os << 'f' << f << ": ";
            render_expr(eid, os);
          }
          os << "})\n";
          break;
        }
        case SKind::kDel:
          os << "DEL(t" << s.table << ", ";
          render_expr(s.a, os);
          os << ")\n";
          break;
        case SKind::kIf:
          os << "if ";
          render_expr(s.a, os);
          os << " {\n";
          render_block(s.body, depth + 1, os);
          if (!s.else_body.empty()) {
            os << pad << "} else {\n";
            render_block(s.else_body, depth + 1, os);
          }
          os << pad << "}\n";
          break;
        case SKind::kFor:
          os << "for " << var_name(s.var) << " in [";
          render_expr(s.a, os);
          os << ", ";
          render_expr(s.b, os);
          os << ") max " << s.max_iters << " {\n";
          render_block(s.body, depth + 1, os);
          os << pad << "}\n";
          break;
        case SKind::kAbortIf:
          os << "abort_if ";
          render_expr(s.a, os);
          os << '\n';
          break;
        case SKind::kEmit:
          os << "emit ";
          render_expr(s.a, os);
          os << '\n';
          break;
      }
    }
  }

 private:
  std::string var_name(VarId v) const {
    if (v < proc_.var_names.size() && !proc_.var_names[v].empty()) {
      return proc_.var_names[v];
    }
    return "v" + std::to_string(v);
  }

  const Proc& proc_;
};

}  // namespace

std::string expr_to_string(const Proc& proc, ExprId id) {
  std::ostringstream os;
  Printer(proc).render_expr(id, os);
  return os.str();
}

std::string to_string(const Proc& proc) {
  std::ostringstream os;
  os << "proc " << proc.name << '(';
  bool first = true;
  for (const Param& p : proc.params) {
    if (!first) os << ", ";
    first = false;
    os << p.name;
    if (p.is_array) os << '[' << p.max_len << ']';
    os << " in [" << p.lo << ", " << p.hi << ']';
  }
  os << ") {\n";
  Printer(proc).render_block(proc.body, 1, os);
  os << "}\n";
  return os.str();
}

}  // namespace prog::lang
