// Fluent builder for DSL procedures.
//
//   ProcBuilder b("payment");
//   auto w = b.param("w_id", 1, W);
//   auto amt = b.param("amount", 1, 5000);
//   auto wh = b.get(WAREHOUSE, w);
//   b.put(WAREHOUSE, w, {{W_YTD, b.field(wh, W_YTD) + amt}});
//   Proc proc = std::move(b).build();
//
// Val carries natural operator overloads; blocks are built with lambdas:
//   b.if_(cond, [&](ProcBuilder& t) { ... }, [&](ProcBuilder& e) { ... });
//   b.for_(lo, hi, kMax, [&](ProcBuilder& body, Val i) { ... });
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "lang/ast.hpp"

namespace prog::lang {

class ProcBuilder;

/// A scalar expression under construction. Cheap to copy.
class Val {
 public:
  Val() = default;
  Val(ProcBuilder* b, ExprId id) : b_(b), id_(id) {}

  ExprId id() const { return id_; }
  ProcBuilder* builder() const { return b_; }

  Val operator+(Val o) const;
  Val operator-(Val o) const;
  Val operator*(Val o) const;
  Val operator/(Val o) const;
  Val operator%(Val o) const;
  Val operator==(Val o) const;
  Val operator!=(Val o) const;
  Val operator<(Val o) const;
  Val operator<=(Val o) const;
  Val operator>(Val o) const;
  Val operator>=(Val o) const;
  Val operator&&(Val o) const;
  Val operator||(Val o) const;
  Val operator!() const;

  Val operator+(Value c) const;
  Val operator-(Value c) const;
  Val operator*(Value c) const;
  Val operator/(Value c) const;
  Val operator%(Value c) const;
  Val operator==(Value c) const;
  Val operator!=(Value c) const;
  Val operator<(Value c) const;
  Val operator<=(Value c) const;
  Val operator>(Value c) const;
  Val operator>=(Value c) const;

 private:
  ProcBuilder* b_ = nullptr;
  ExprId id_ = kNoExpr;
};

/// An array parameter; index with any Val or constant.
class ArrParam {
 public:
  ArrParam() = default;
  ArrParam(ProcBuilder* b, std::uint32_t param) : b_(b), param_(param) {}
  Val operator[](Val idx) const;
  Val operator[](Value idx) const;
  std::uint32_t index() const { return param_; }

 private:
  ProcBuilder* b_ = nullptr;
  std::uint32_t param_ = 0;
};

/// A row handle produced by GET.
class Handle {
 public:
  Handle() = default;
  Handle(ProcBuilder* b, VarId var) : b_(b), var_(var) {}
  /// Field accessor (0 when the row or the field is absent).
  Val field(FieldId f) const;
  /// 1 iff the row exists at the read snapshot.
  Val exists() const;
  VarId var() const { return var_; }

 private:
  ProcBuilder* b_ = nullptr;
  VarId var_ = 0;
};

class ProcBuilder {
 public:
  explicit ProcBuilder(std::string name);

  ProcBuilder(const ProcBuilder&) = delete;
  ProcBuilder& operator=(const ProcBuilder&) = delete;

  // --- declarations -------------------------------------------------------
  /// Scalar parameter with declared (inclusive) bounds.
  Val param(std::string name, Value lo, Value hi);
  /// Array parameter of at most `max_len` elements within [lo, hi] each.
  ArrParam param_array(std::string name, std::uint32_t max_len, Value lo,
                       Value hi);

  // --- expressions --------------------------------------------------------
  Val lit(Value v);
  Val field(Handle h, FieldId f);
  Val exists(Handle h);
  Val min(Val a, Val b);
  Val max(Val a, Val b);

  // --- statements ---------------------------------------------------------
  /// Names and materializes an expression as a local variable.
  Val let(std::string name, Val e);
  /// Reassigns an existing local variable (for accumulators).
  void assign(Val var_ref, Val e);
  Handle get(TableId table, Val key);
  void put(TableId table, Val key,
           std::vector<std::pair<FieldId, Val>> fields);
  void del(TableId table, Val key);
  void abort_if(Val cond);
  void emit(Val e);

  void if_(Val cond, const std::function<void(ProcBuilder&)>& then_fn);
  void if_(Val cond, const std::function<void(ProcBuilder&)>& then_fn,
           const std::function<void(ProcBuilder&)>& else_fn);
  /// for (i = lo; i < hi; ++i), statically bounded by max_iters.
  void for_(Val lo, Val hi, std::int64_t max_iters,
            const std::function<void(ProcBuilder&, Val)>& body_fn);

  /// Finalizes the procedure; the builder is consumed.
  Proc build() &&;

  // --- internal (used by Val/Handle/ArrParam) -----------------------------
  ExprId add_expr(SExpr e);
  Val wrap(ExprId id) { return Val(this, id); }

 private:
  friend class Val;

  Val binary(EKind k, Val a, Val b);
  void push(Stmt s);
  VarId new_var(std::string name, VarType type);

  Proc proc_;
  std::vector<std::vector<Stmt>*> blocks_;  // innermost last
  bool built_ = false;
};

}  // namespace prog::lang
