// The stored-procedure DSL.
//
// Transactions are written against a key/value GET/PUT interface, exactly the
// model the paper assumes (Section III-B): integer-typed expressions compute
// key identities; rows are field->int64 records. The same AST is consumed by
//   - the concrete interpreter (runtime execution, lang/interp.hpp),
//   - the relevance (taint) analysis (lang/relevance.hpp), and
//   - the symbolic executor (sym/symexec.hpp) that builds transaction
//     profiles offline.
//
// Expressions live in a per-procedure arena (`Proc::exprs`) addressed by
// ExprId; statements form a nested tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

namespace prog::bytecode {
struct Program;  // lang/bytecode/bytecode.hpp
}

namespace prog::lang {

using ExprId = std::int32_t;
constexpr ExprId kNoExpr = -1;

/// Reserved pseudo-field: `exists(handle)` is modeled as reading this field
/// (1 if the row exists, 0 otherwise) so existence checks flow through the
/// same pivot machinery as ordinary field reads.
constexpr FieldId kExistsField = 0xFFFF;

enum class EKind : std::uint8_t {
  kConst,      // cval
  kParam,      // scalar parameter (param index)
  kParamElem,  // array parameter element (param index, index expr in a)
  kVar,        // scalar variable
  kField,      // field of a row handle (var = handle, field)
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kMin,
  kMax,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kNot,
};

struct SExpr {
  EKind kind = EKind::kConst;
  Value cval = 0;
  std::uint32_t param = 0;  // kParam / kParamElem
  VarId var = 0;            // kVar / kField (handle)
  FieldId field = 0;        // kField
  ExprId a = kNoExpr;       // left operand / array index
  ExprId b = kNoExpr;       // right operand
};

enum class SKind : std::uint8_t {
  kAssign,   // var = expr(a)
  kGet,      // handle_var = GET(table, key=a)
  kPut,      // PUT(table, key=a, fields)
  kDel,      // DEL(table, key=a)
  kIf,       // if expr(a) then body else else_body
  kFor,      // for var in [a, b) with max_iters, run body
  kAbortIf,  // roll the transaction back when expr(a) is truthy
  kEmit,     // append expr(a) to the transaction's result tuple
};

struct Stmt {
  SKind kind = SKind::kAssign;
  VarId var = 0;
  TableId table = 0;
  ExprId a = kNoExpr;
  ExprId b = kNoExpr;
  std::int64_t max_iters = 0;  // kFor: static unroll bound for SE
  std::vector<std::pair<FieldId, ExprId>> fields;  // kPut
  std::vector<Stmt> body;
  std::vector<Stmt> else_body;
};

enum class VarType : std::uint8_t { kScalar, kHandle };

struct Param {
  std::string name;
  Value lo = 0;  // declared benchmark bounds (used by the solver)
  Value hi = 0;
  bool is_array = false;
  std::uint32_t max_len = 0;  // arrays only
};

/// A compiled stored procedure.
struct Proc {
  std::string name;
  std::vector<Param> params;
  std::vector<SExpr> exprs;
  std::vector<VarType> var_types;
  std::vector<std::string> var_names;
  std::vector<Stmt> body;
  /// Compiled bytecode (lang/bytecode). Attached by ProcBuilder::build() /
  /// bytecode::ensure_compiled(); nullptr means the interpreter tree-walks.
  std::shared_ptr<const bytecode::Program> code;

  const SExpr& expr(ExprId id) const {
    PROG_CHECK(id >= 0 && static_cast<std::size_t>(id) < exprs.size());
    return exprs[static_cast<std::size_t>(id)];
  }
};

/// One argument of a transaction invocation.
struct Arg {
  Value scalar = 0;
  std::vector<Value> array;
  bool is_array = false;

  static Arg of(Value v) { return {v, {}, false}; }
  static Arg of_array(std::vector<Value> vs) { return {0, std::move(vs), true}; }
};

/// Concrete inputs for one transaction instance.
struct TxInput {
  std::vector<Arg> args;

  TxInput& add(Value v) {
    args.push_back(Arg::of(v));
    return *this;
  }
  TxInput& add_array(std::vector<Value> vs) {
    args.push_back(Arg::of_array(std::move(vs)));
    return *this;
  }

  Value scalar(std::size_t i) const {
    PROG_CHECK(i < args.size() && !args[i].is_array);
    return args[i].scalar;
  }
  Value elem(std::size_t i, Value idx) const {
    PROG_CHECK(i < args.size() && args[i].is_array);
    PROG_CHECK_MSG(idx >= 0 &&
                       static_cast<std::size_t>(idx) < args[i].array.size(),
                   "array parameter index out of range");
    return args[i].array[static_cast<std::size_t>(idx)];
  }
};

/// Checks `input` against `proc`'s declared parameter shapes and bounds.
/// Transaction profiles are only valid for in-bounds inputs (the symbolic
/// analysis prunes paths using the declared domains), so front ends should
/// validate before submission. Throws UsageError on violation.
void validate_input(const Proc& proc, const TxInput& input);

}  // namespace prog::lang
