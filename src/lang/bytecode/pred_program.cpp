// TxProfile -> prediction bytecode lowering, and the VM that runs it.
//
// Compiled into prog_sym (not prog_lang): the compiler reads sym::TxProfile
// and expr::Expr, and making prog_lang depend on prog_sym would be a cycle.
// The instruction encoding and disassembly core are shared with the exec
// bytecode (lang/bytecode/bytecode.hpp).
#include "lang/bytecode/pred_program.hpp"

#include <algorithm>
#include <map>

#include "common/check.hpp"
#include "expr/expr.hpp"
#include "sym/profile.hpp"

namespace prog::bytecode {

namespace {

using expr::Expr;
using sym::GetSite;
using sym::ProfileNode;
using sym::TxProfile;
using sym::WriteRef;

class PredCompiler {
 public:
  explicit PredCompiler(const TxProfile& profile) : profile_(profile) {
    prog_.name = profile.proc().name;
    prog_.num_params =
        static_cast<std::uint32_t>(profile.proc().params.size());
  }

  std::shared_ptr<const PredProgram> compile() && {
    compile_node(&profile_.root());
    PROG_CHECK_MSG(pivot_slot_.size() <= 0xFFFF,
                   "pred bytecode: too many pivot sites");
    prog_.num_pivots = static_cast<std::uint16_t>(pivot_slot_.size());
    prog_.num_regs = max_regs_;
    return std::make_shared<const PredProgram>(std::move(prog_));
  }

 private:
  std::int32_t here() const {
    return static_cast<std::int32_t>(prog_.code.size());
  }

  Insn& emit(Op op, std::uint16_t a = 0, std::uint16_t b = 0,
             std::uint16_t c = 0, std::uint16_t d = 0, std::int32_t imm = 0,
             std::int32_t imm2 = 0) {
    prog_.code.push_back(Insn{op, a, b, c, d, imm, imm2});
    return prog_.code.back();
  }

  std::int32_t pool_index(Value v) {
    auto [it, inserted] = pool_dedup_.try_emplace(
        v, static_cast<std::int32_t>(prog_.pool.size()));
    if (inserted) prog_.pool.push_back(v);
    return it->second;
  }

  std::uint16_t alloc() {
    PROG_CHECK_MSG(top_ < 0xFFFF, "pred bytecode: register file overflow");
    const std::uint16_t r = top_++;
    if (top_ > max_regs_) max_regs_ = top_;
    return r;
  }

  // --- expression lowering -------------------------------------------------
  /// Compiles `e` into a fresh stack-allocated register. Evaluation order
  /// matches expr::eval exactly: both operands of every binary operator are
  /// evaluated (no short-circuit — kAndV/kOrV), division and modulo are
  /// total (the VM's bare kDiv/kMod map 0 divisors to 0, like apply_binary).
  std::uint16_t compile_expr(const Expr* e) {
    PROG_CHECK(e != nullptr);
    switch (e->op) {
      case expr::Op::kConst: {
        const std::uint16_t r = alloc();
        emit(Op::kLoadC, r, 0, 0, 0, pool_index(e->cval));
        return r;
      }
      case expr::Op::kInput: {
        const std::uint16_t r = alloc();
        emit(Op::kLoadP, r, 0, 0, 0, static_cast<std::int32_t>(e->slot));
        return r;
      }
      case expr::Op::kInputElem: {
        const std::uint16_t r = compile_expr(e->lhs);
        emit(Op::kLoadE, r, r, 0, 0, static_cast<std::int32_t>(e->slot));
        return r;
      }
      case expr::Op::kPivotField: {
        // The tree walker PROG_CHECKs this at run time ("prediction
        // referenced an unresolved pivot site"); here the same invariant is
        // verified per path at compile time, so the VM needs no check.
        PROG_CHECK_MSG(
            std::find(resolved_.begin(), resolved_.end(), e->slot) !=
                resolved_.end(),
            "pred bytecode: pivot site used before resolution on a path");
        const std::uint16_t slot = pivot_slot_.at(e->slot);
        const std::uint16_t r = alloc();
        if (e->field == lang::kExistsField) {
          emit(Op::kPivEx, r, slot);
        } else {
          emit(Op::kPivF, r, slot, 0, 0,
               static_cast<std::int32_t>(e->field));
        }
        return r;
      }
      case expr::Op::kNeg: {
        const std::uint16_t r = compile_expr(e->lhs);
        emit(Op::kNeg, r, r);
        return r;
      }
      case expr::Op::kNot: {
        const std::uint16_t r = compile_expr(e->lhs);
        emit(Op::kNot, r, r);
        return r;
      }
      default: {
        const std::uint16_t ra = compile_expr(e->lhs);
        const std::uint16_t rb = compile_expr(e->rhs);
        emit(binary_op(e->op), ra, ra, rb);
        top_ = static_cast<std::uint16_t>(ra + 1);  // pop rb
        return ra;
      }
    }
  }

  static Op binary_op(expr::Op op) {
    switch (op) {
      case expr::Op::kAdd: return Op::kAdd;
      case expr::Op::kSub: return Op::kSub;
      case expr::Op::kMul: return Op::kMul;
      case expr::Op::kDiv: return Op::kDiv;
      case expr::Op::kMod: return Op::kMod;
      case expr::Op::kMin: return Op::kMin;
      case expr::Op::kMax: return Op::kMax;
      case expr::Op::kEq: return Op::kEq;
      case expr::Op::kNe: return Op::kNe;
      case expr::Op::kLt: return Op::kLt;
      case expr::Op::kLe: return Op::kLe;
      case expr::Op::kGt: return Op::kGt;
      case expr::Op::kGe: return Op::kGe;
      case expr::Op::kAnd: return Op::kAndV;
      case expr::Op::kOr: return Op::kOrV;
      default:
        throw InvariantError("pred bytecode: not a binary operator");
    }
  }

  // --- key-expression fusion -----------------------------------------------
  /// Key operand of a kPKey*/kPWr*: constants and scalar parameters fuse
  /// into the instruction (imm2); anything else evaluates into a register.
  struct KeyOperand {
    Op op;
    std::uint16_t b = 0;    // R: key register
    std::int32_t imm2 = 0;  // C: pool index; P: parameter slot
  };

  KeyOperand key_operand(const Expr* e, Op r, Op c, Op p) {
    if (e->is_const()) return {c, 0, pool_index(e->cval)};
    if (e->op == expr::Op::kInput) {
      return {p, 0, static_cast<std::int32_t>(e->slot)};
    }
    const std::uint16_t reg = compile_expr(e);
    top_ = reg;  // released: the emitting instruction is its only reader
    return {r, reg, 0};
  }

  // --- tree lowering -------------------------------------------------------
  /// DFS over the PSC tree in exactly the order the tree walk visits it.
  /// Every root-to-leaf path becomes a straight-line run ending in kHalt; a
  /// missing child (the walk's `node == nullptr` exit) is an empty leaf.
  void compile_node(const ProfileNode* node) {
    if (node == nullptr) {
      emit(Op::kHalt);
      return;
    }
    for (const GetSite& g : node->seg.gets) {
      std::uint16_t pivot1 = 0;  // c operand: slot + 1; 0 = not a pivot
      if (profile_.used_sites().contains(g.id)) {
        auto [it, inserted] = pivot_slot_.try_emplace(
            g.id, static_cast<std::uint16_t>(pivot_slot_.size()));
        pivot1 = static_cast<std::uint16_t>(it->second + 1);
        resolved_.push_back(g.id);
      }
      const KeyOperand k =
          key_operand(g.key, Op::kPKeyR, Op::kPKeyC, Op::kPKeyP);
      emit(k.op, 0, k.b, pivot1, 0, static_cast<std::int32_t>(g.table),
           k.imm2);
    }
    for (const WriteRef& w : node->seg.writes) {
      const KeyOperand k =
          key_operand(w.key, Op::kPWrR, Op::kPWrC, Op::kPWrP);
      emit(k.op, 0, k.b, 0, 0, static_cast<std::int32_t>(w.table), k.imm2);
    }
    if (node->is_leaf()) {
      emit(Op::kHalt);
      return;
    }
    const std::uint16_t cond = compile_expr(node->cond);
    top_ = cond;  // released
    Insn& jz = emit(Op::kJz, 0, cond, 0, 0, /*imm=*/-1);
    const std::int32_t jz_at = here() - 1;
    (void)jz;
    const std::size_t resolved_mark = resolved_.size();
    compile_node(node->then_child.get());
    resolved_.resize(resolved_mark);
    prog_.code[static_cast<std::size_t>(jz_at)].imm = here();
    compile_node(node->else_child.get());
    resolved_.resize(resolved_mark);
  }

  const TxProfile& profile_;
  PredProgram prog_;
  std::map<Value, std::int32_t> pool_dedup_;
  std::map<std::uint32_t, std::uint16_t> pivot_slot_;  // site id -> slot
  std::vector<std::uint32_t> resolved_;  // sites resolved on the current path
  std::uint16_t top_ = 0;
  std::uint16_t max_regs_ = 0;
};

// --- the prediction VM -----------------------------------------------------

struct PredScratch {
  std::vector<Value> regs;
  std::vector<const store::Row*> rows;  // pivot slots
  std::vector<store::RowPtr> keep;      // pins from non-borrowing views
};

PredScratch& scratch() {
  static thread_local PredScratch s;
  return s;
}

}  // namespace

std::shared_ptr<const PredProgram> compile_prediction(
    const sym::TxProfile& profile) {
  return PredCompiler(profile).compile();
}

bool ensure_pred_compiled(sym::TxProfile& profile) noexcept {
  if (profile.pred_code_ != nullptr) return true;
  try {
    profile.pred_code_ = compile_prediction(profile);
    return true;
  } catch (...) {
    profile.pred_code_ = nullptr;  // tree-walk fallback; the differential
    return false;                  // tests would catch real-workload failures
  }
}

void predict_run(const PredProgram& p, const lang::TxInput& input,
                 const store::ReadView& view, sym::Prediction& out) {
  out.clear();
  PredScratch& sc = scratch();
  // Grow-only: registers and pivot slots are never zeroed between runs. The
  // compiler emits every definition before any use along each path (pivot
  // slots are guarded by the compile-time resolution check), so a stale
  // value from the previous prediction is unreachable — reusing the buffers
  // saves two fills per prediction, which is measurable at IT scale.
  if (sc.regs.size() < p.num_regs) sc.regs.resize(p.num_regs);
  if (sc.rows.size() < p.num_pivots) sc.rows.resize(p.num_pivots);
  sc.keep.clear();
  Value* const regs = sc.regs.data();
  const Value* const pool = p.pool.data();
  const Insn* ip = p.code.data();

  const auto pkey = [&](const Insn& in, Value kv) {
    const TKey key{static_cast<TableId>(in.imm), static_cast<Key>(kv)};
    out.keys.push_back(key);
    if (in.c != 0) {
      store::RowPtr keepalive;
      const store::Row* row = view.get_raw(key, keepalive);
      if (keepalive != nullptr) sc.keep.push_back(std::move(keepalive));
      out.pivots.push_back({key, row != nullptr ? (row->hash() | 1) : 0});
      sc.rows[in.c - 1] = row;
    }
  };
  const auto pwr = [&](const Insn& in, Value kv) {
    const TKey key{static_cast<TableId>(in.imm), static_cast<Key>(kv)};
    out.keys.push_back(key);
    out.write_keys.push_back(key);
  };

  // Prediction programs are loop-free (the PSC tree is finite), so the run
  // is bounded by the code size — no step budget needed. Dispatch mirrors
  // the exec VM (vm.cpp): computed-goto under GCC/Clang so each opcode site
  // gets its own predictable indirect branch, portable switch fallback
  // elsewhere or under PROG_BYTECODE_SWITCH_DISPATCH.
  const Insn* const code = p.code.data();
  const Insn* in;

#if defined(__GNUC__) && !defined(PROG_BYTECODE_SWITCH_DISPATCH)
  // Label order must match the Op enumerator order exactly.
  static const void* const jt[] = {
      &&L_kLoadC, &&L_kLoadP, &&L_kLoadE, &&L_kMov,   &&L_kAdd,   &&L_kSub,
      &&L_kMul,   &&L_kDiv,   &&L_kMod,   &&L_kMin,   &&L_kMax,   &&L_kEq,
      &&L_kNe,    &&L_kLt,    &&L_kLe,    &&L_kGt,    &&L_kGe,    &&L_kAndV,
      &&L_kOrV,   &&L_kNeg,   &&L_kNot,   &&L_kBool,  &&L_kField, &&L_kExists,
      &&L_kJmp,   &&L_kJz,    &&L_kJnz,   &&L_kForHead, &&L_kForNext,
      &&L_kGetR,  &&L_kGetC,  &&L_kGetP,  &&L_kPutR,  &&L_kPutC,  &&L_kPutP,
      &&L_kDelR,  &&L_kDelC,  &&L_kDelP,  &&L_kEmit,  &&L_kAbortIf,
      &&L_kHalt,  &&L_kPivF,  &&L_kPivEx, &&L_kPKeyR, &&L_kPKeyC, &&L_kPKeyP,
      &&L_kPWrR,  &&L_kPWrC,  &&L_kPWrP,
  };
#define VM_CASE(name) L_##name:
#define VM_NEXT()                                  \
  do {                                             \
    in = ip++;                                     \
    goto* jt[static_cast<std::size_t>(in->op)];    \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(name) case Op::name:
#define VM_NEXT() break
  for (;;) {
    in = ip++;
    switch (in->op) {
#endif

  VM_CASE(kLoadC) { regs[in->a] = pool[in->imm]; }
  VM_NEXT();
  VM_CASE(kLoadP) { regs[in->a] = input.scalar(static_cast<std::size_t>(in->imm)); }
  VM_NEXT();
  VM_CASE(kLoadE) {
    const Value idx = regs[in->b];
    regs[in->a] = input.elem(static_cast<std::size_t>(in->imm), idx);
  }
  VM_NEXT();
  VM_CASE(kAdd) {
    regs[in->a] = static_cast<Value>(static_cast<std::uint64_t>(regs[in->b]) +
                                     static_cast<std::uint64_t>(regs[in->c]));
  }
  VM_NEXT();
  VM_CASE(kSub) {
    regs[in->a] = static_cast<Value>(static_cast<std::uint64_t>(regs[in->b]) -
                                     static_cast<std::uint64_t>(regs[in->c]));
  }
  VM_NEXT();
  VM_CASE(kMul) {
    regs[in->a] = static_cast<Value>(static_cast<std::uint64_t>(regs[in->b]) *
                                     static_cast<std::uint64_t>(regs[in->c]));
  }
  VM_NEXT();
  VM_CASE(kDiv) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = c == 0 ? 0 : b / c;
  }
  VM_NEXT();
  VM_CASE(kMod) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = c == 0 ? 0 : b % c;
  }
  VM_NEXT();
  VM_CASE(kMin) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = b < c ? b : c;
  }
  VM_NEXT();
  VM_CASE(kMax) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = b > c ? b : c;
  }
  VM_NEXT();
  VM_CASE(kEq) { regs[in->a] = regs[in->b] == regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kNe) { regs[in->a] = regs[in->b] != regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kLt) { regs[in->a] = regs[in->b] < regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kLe) { regs[in->a] = regs[in->b] <= regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kGt) { regs[in->a] = regs[in->b] > regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kGe) { regs[in->a] = regs[in->b] >= regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kAndV) { regs[in->a] = (regs[in->b] != 0 && regs[in->c] != 0) ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kOrV) { regs[in->a] = (regs[in->b] != 0 || regs[in->c] != 0) ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kNeg) { regs[in->a] = -regs[in->b]; }
  VM_NEXT();
  VM_CASE(kNot) { regs[in->a] = regs[in->b] == 0 ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kPivF) {
    const store::Row* row = sc.rows[in->b];
    regs[in->a] =
        row != nullptr ? row->get_or(static_cast<FieldId>(in->imm), 0) : 0;
  }
  VM_NEXT();
  VM_CASE(kPivEx) { regs[in->a] = sc.rows[in->b] != nullptr ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kJz) {
    if (regs[in->b] == 0) ip = code + in->imm;
  }
  VM_NEXT();
  VM_CASE(kPKeyR) { pkey(*in, regs[in->b]); }
  VM_NEXT();
  VM_CASE(kPKeyC) { pkey(*in, pool[in->imm2]); }
  VM_NEXT();
  VM_CASE(kPKeyP) { pkey(*in, input.scalar(static_cast<std::size_t>(in->imm2))); }
  VM_NEXT();
  VM_CASE(kPWrR) { pwr(*in, regs[in->b]); }
  VM_NEXT();
  VM_CASE(kPWrC) { pwr(*in, pool[in->imm2]); }
  VM_NEXT();
  VM_CASE(kPWrP) { pwr(*in, input.scalar(static_cast<std::size_t>(in->imm2))); }
  VM_NEXT();
  VM_CASE(kHalt) {
    // Identical normalization to the tree walk's dedup lambda, with a
    // sortedness fast path: many profiles emit keys in non-descending
    // order already (read-modify-write lowers to adjacent read/write
    // probes of the same key), so the sort pass can be skipped and the
    // unique pass alone squeezes the duplicates out. The check bails at
    // the first inversion, so unsorted (TPC-C-sized) key sets pay a few
    // comparisons before the real sort.
    const auto dedup = [](auto& v) {
      bool sorted = true;
      for (std::size_t i = 1; i < v.size(); ++i) {
        if (v[i] < v[i - 1]) {
          sorted = false;
          break;
        }
      }
      if (!sorted) std::sort(v.begin(), v.end());
      v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedup(out.keys);
    dedup(out.write_keys);
    return;
  }

  VM_CASE(kMov)
  VM_CASE(kBool)
  VM_CASE(kField)
  VM_CASE(kExists)
  VM_CASE(kJmp)
  VM_CASE(kJnz)
  VM_CASE(kForHead)
  VM_CASE(kForNext)
  VM_CASE(kGetR)
  VM_CASE(kGetC)
  VM_CASE(kGetP)
  VM_CASE(kPutR)
  VM_CASE(kPutC)
  VM_CASE(kPutP)
  VM_CASE(kDelR)
  VM_CASE(kDelC)
  VM_CASE(kDelP)
  VM_CASE(kEmit)
  VM_CASE(kAbortIf) {
    throw InvariantError("pred bytecode: exec opcode in a prediction program");
  }

#if defined(__GNUC__) && !defined(PROG_BYTECODE_SWITCH_DISPATCH)
#else
    }
  }
#endif
#undef VM_CASE
#undef VM_NEXT
  throw InvariantError("pred bytecode: fell off the end of the program");
}

std::string disassemble_prediction(const PredProgram& p) {
  return detail::disassemble_code(p.name + " (prediction)", p.code, p.pool,
                                  nullptr, 0, p.num_regs);
}

}  // namespace prog::bytecode
