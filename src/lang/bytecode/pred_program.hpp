// Compiled prediction programs — the flat form of sym::TxProfile PSC trees.
//
// predict_into() is on the per-transaction critical path of every batch (the
// queuer runs it for each enqueued invocation; ROT prepare runs it on the
// workers). The tree walk re-dispatches expr::eval over hash-consed Expr
// nodes at every step; here each profile is lowered once — at profiling or
// deserialization time — into straight-line bytecode sharing the instruction
// encoding of lang/bytecode:
//
//   - each root-to-leaf path becomes a jump-free run of instructions ending
//     in kHalt (the PSC tree is a tree, not a DAG, so no joins are needed);
//   - key expressions that are constants or scalar parameters fuse into the
//     kPKey*/kPWr* emitting instruction itself;
//   - pivot GET sites resolve into a dense slot array (kPKey* with c > 0);
//     kPivF/kPivEx read those slots, and the compiler verifies statically
//     that every slot is resolved before use on every path — the tree
//     walker's "unresolved pivot site" runtime check, moved offline.
//
// Output contract: byte-identical sym::Prediction (keys, write_keys, pivots,
// including pivot observation order) to TxProfile::predict_into's tree walk.
// Enforced by the bytecode_test equivalence matrix; the tree walk stays
// selectable via EngineConfig::tree_walk_ablation (DESIGN.md §15).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "lang/ast.hpp"
#include "lang/bytecode/bytecode.hpp"
#include "store/store.hpp"

namespace prog::sym {
class TxProfile;
struct Prediction;
}  // namespace prog::sym

namespace prog::bytecode {

/// A compiled prediction program. Immutable; shared by every thread.
struct PredProgram {
  std::string name;            // procedure name (errors, disassembly)
  std::vector<Insn> code;
  std::vector<Value> pool;     // deduplicated constants
  std::uint16_t num_regs = 0;  // expression temporaries only (no variables)
  std::uint16_t num_pivots = 0;  // pivot slot array size
  std::uint32_t num_params = 0;
};

/// Lowers `profile`'s PSC tree. Deterministic; throws InvariantError on an
/// internal inconsistency (callers treat that as "keep tree-walking").
std::shared_ptr<const PredProgram> compile_prediction(
    const sym::TxProfile& profile);

/// Compiles `profile.pred_code_` in place when absent. Returns false when
/// compilation failed and the profile will be tree-walked (never throws).
bool ensure_pred_compiled(sym::TxProfile& profile) noexcept;

/// Runs `p` exactly like TxProfile::predict_into walks the tree: clears and
/// fills `out` in place, reads only pivot items from `view`.
void predict_run(const PredProgram& p, const lang::TxInput& input,
                 const store::ReadView& view, sym::Prediction& out);

/// Multi-line listing (tools/progmon --dump-bytecode).
std::string disassemble_prediction(const PredProgram& p);

}  // namespace prog::bytecode
