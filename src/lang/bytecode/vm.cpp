// The threaded-dispatch VM executing compiled procedures.
//
// Semantics contract: byte-identical to lang::Interp (interp.cpp) — same
// ExecResult content and ordering, same exceptions, same buffered-read
// freeze-at-GET behavior. Any divergence is a bug; the bytecode_test
// differential fuzzer and the engine equivalence matrix are the enforcement.
//
// Dispatch is computed-goto under GCC/Clang (one indirect branch per
// instruction, which the BTB predicts per-site) with a portable switch
// fallback. Scratch state is thread-local and reused across transactions,
// like the tree-walker's Frame scratch (DESIGN.md §10).
//
// Row handles are borrowed `const Row*` instead of shared_ptr copies
// (DESIGN.md §15): reads against a batch-boundary snapshot resolve through
// ReadView::get_raw, which SnapshotView serves without touching the
// refcount — versions visible at a batch boundary are only freed by
// gc_before(), which runs with every worker quiesced. Views that cannot
// guarantee pinning fall back to the keep-alive default, collected in
// scratch until the transaction ends.
#include "lang/bytecode/bytecode.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <optional>

#include "common/check.hpp"

namespace prog::bytecode {

namespace {

/// Per-transaction-key bookkeeping, one slot per distinct key touched. The
/// tree-walker answers "seen this key before?" four different ways — reads
/// dedup, writes dedup, write-buffer lookup, and the commit-time buffer walk
/// — each with a linear scan, which is O(keys²) per transaction (TPC-C
/// new-order touches ~30 distinct keys). The VM folds all four into one
/// open-addressed, generation-stamped table: a slot is live iff its `gen`
/// matches the current transaction, so "clearing" the table between
/// transactions is a single counter bump. Results are byte-identical: the
/// read/write lists still record first-occurrence order, and the buffer
/// still holds exactly one entry per key, exactly as the linear scans do.
struct KeySlot {
  TKey key{};
  std::uint32_t gen = 0;
  std::int32_t buf_idx = -1;  // index into VmScratch::buffer, -1 = none
  /// Base-snapshot read already performed for this key (kBaseProbed).
  /// Within one execution the snapshot is immutable, so a re-probe (the PUT
  /// half of every read-modify-write re-reads the row its GET just fetched)
  /// returns the identical row — serve it from here instead of paying the
  /// store's shard lock + hash probe again. Absence (nullptr) caches too.
  const store::Row* base_row = nullptr;
  std::uint8_t flags = 0;
};

enum : std::uint8_t {
  kReadNoted = 1,   // key already appended to out.reads
  kWriteNoted = 2,  // key already appended to out.writes
  kBaseProbed = 4,  // base_row is valid (possibly nullptr = absent)
};

struct VmScratch {
  std::vector<Value> regs;
  std::vector<const store::Row*> handles;
  /// Keep-alive pins for rows obtained from non-borrowing views.
  std::vector<store::RowPtr> keep;
  /// Read-after-write freezes: the tree-walker hands out a copy of the
  /// buffered row at GET time (later PUTs must not show through the old
  /// handle); a deque gives those copies stable addresses.
  std::deque<store::Row> frozen;
  std::vector<std::pair<TKey, std::optional<store::Row>>> buffer;
  /// Open-addressed KeySlot table; size is always a power of two, grown at
  /// 50% load so probe chains stay short.
  std::vector<KeySlot> key_table = std::vector<KeySlot>(256);
  std::uint32_t key_gen = 0;
  std::uint32_t key_count = 0;  // live slots this transaction
};

VmScratch& scratch() {
  static thread_local VmScratch s;
  return s;
}

/// Returns the slot holding `key` this transaction, or the empty slot where
/// it belongs. Linear probing; the caller maintains the <=50% load factor
/// that guarantees an empty slot exists.
KeySlot* probe(std::vector<KeySlot>& table, TKey key, std::uint32_t gen) {
  const std::size_t mask = table.size() - 1;
  std::size_t i = TKeyHash{}(key) & mask;
  for (;; i = (i + 1) & mask) {
    KeySlot& s = table[i];
    if (s.gen != gen || s.key == key) return &s;
  }
}

void grow_key_table(VmScratch& sc) {
  std::vector<KeySlot> next(sc.key_table.size() * 2);
  for (const KeySlot& s : sc.key_table) {
    if (s.gen != sc.key_gen) continue;  // dead slot from an older transaction
    KeySlot* dst = probe(next, s.key, sc.key_gen);
    *dst = s;
  }
  sc.key_table = std::move(next);
}

[[noreturn]] void throw_step_limit() {
  throw InvariantError("Interp: step limit exceeded (runaway loop?)");
}

/// Mirrors Frame::finish: ops are built by walking the deduplicated write
/// list and moving the matching buffer entries (every written key has a
/// buffer entry, found through its KeySlot instead of a linear scan).
void finish(lang::ExecResult& out, VmScratch& sc, bool committed) {
  out.committed = committed;
  if (!committed) return;
  out.ops.reserve(sc.buffer.size());
  for (const TKey& k : out.writes) {
    KeySlot* s = probe(sc.key_table, k, sc.key_gen);
    PROG_CHECK(s->gen == sc.key_gen && s->buf_idx >= 0);
    out.ops.push_back(
        {k, std::move(sc.buffer[static_cast<std::size_t>(s->buf_idx)].second)});
  }
}

/// Runs the instruction loop. Returns the committed flag (AbortIf is a
/// plain return here — no unwind needed, unlike the recursive tree-walker).
bool exec_loop(const Program& p, const lang::TxInput& input,
               const store::ReadView& base, std::uint64_t max_steps,
               lang::ExecResult& out, VmScratch& sc, bool borrow_rows) {
  const Insn* const code = p.code.data();
  const Value* const pool = p.pool.data();
  const PutField* const put_fields = p.put_fields.data();
  Value* const regs = sc.regs.data();
  const store::Row** const handles = sc.handles.data();

  // Statement budget -> instruction budget: statements lower to a handful
  // of instructions, so x8 keeps the runaway-loop net at the same order of
  // magnitude without per-statement bookkeeping.
  std::uint64_t budget = max_steps >= (~std::uint64_t{0} >> 3)
                             ? ~std::uint64_t{0}
                             : max_steps * 8 + 16;

  const auto slot_of = [&](TKey key) -> KeySlot& {
    if ((sc.key_count + 1) * 2 > sc.key_table.size()) grow_key_table(sc);
    KeySlot& s = *probe(sc.key_table, key, sc.key_gen);
    if (s.gen != sc.key_gen) {  // first touch of this key: claim the slot
      s = KeySlot{key, sc.key_gen, -1, nullptr, 0};
      ++sc.key_count;
    }
    return s;
  };

  const auto base_read = [&](TKey key, KeySlot& s) -> const store::Row* {
    if (s.flags & kBaseProbed) return s.base_row;
    store::RowPtr keepalive;
    const store::Row* row = borrow_rows ? base.get_raw(key, keepalive)
                                        : (keepalive = base.get(key)).get();
    if (keepalive != nullptr) sc.keep.push_back(std::move(keepalive));
    s.flags |= kBaseProbed;
    s.base_row = row;
    return row;
  };

  const auto do_get = [&](TKey key, std::uint16_t var) {
    KeySlot& s = slot_of(key);
    if (!(s.flags & kReadNoted)) {
      s.flags |= kReadNoted;
      out.reads.push_back(key);
    }
    if (s.buf_idx >= 0) {
      std::optional<store::Row>& buf =
          sc.buffer[static_cast<std::size_t>(s.buf_idx)].second;
      handles[var] = buf.has_value() ? &sc.frozen.emplace_back(*buf) : nullptr;
      return;
    }
    handles[var] = base_read(key, s);
  };

  const auto note_write = [&](TKey key, KeySlot& s) {
    if (!(s.flags & kWriteNoted)) {
      s.flags |= kWriteNoted;
      out.writes.push_back(key);
    }
  };

  const auto do_put = [&](TKey key, const Insn& in) {
    const PutField* f = put_fields + in.imm2;
    KeySlot& s = slot_of(key);
    if (s.buf_idx >= 0) {
      std::optional<store::Row>& buf =
          sc.buffer[static_cast<std::size_t>(s.buf_idx)].second;
      if (!buf.has_value()) buf.emplace();
      for (std::uint16_t i = 0; i < in.a; ++i) {
        buf->set(f[i].field, regs[f[i].reg]);
      }
    } else {
      store::Row next;
      if (const store::Row* cur = base_read(key, s)) next = *cur;
      for (std::uint16_t i = 0; i < in.a; ++i) {
        next.set(f[i].field, regs[f[i].reg]);
      }
      s.buf_idx = static_cast<std::int32_t>(sc.buffer.size());
      sc.buffer.emplace_back(key, std::move(next));
    }
    note_write(key, s);
  };

  const auto do_del = [&](TKey key) {
    KeySlot& s = slot_of(key);
    if (s.buf_idx >= 0) {
      sc.buffer[static_cast<std::size_t>(s.buf_idx)].second.reset();
    } else {
      s.buf_idx = static_cast<std::int32_t>(sc.buffer.size());
      sc.buffer.emplace_back(key, std::nullopt);
    }
    note_write(key, s);
  };

  const auto key_of = [&](TableId table, Value v) {
    return TKey{table, static_cast<Key>(v)};
  };

  const Insn* ip = code;
  const Insn* in;

#if defined(__GNUC__) && !defined(PROG_BYTECODE_SWITCH_DISPATCH)
  // Label order must match the Op enumerator order exactly.
  static const void* const jt[] = {
      &&L_kLoadC, &&L_kLoadP, &&L_kLoadE, &&L_kMov,   &&L_kAdd,   &&L_kSub,
      &&L_kMul,   &&L_kDiv,   &&L_kMod,   &&L_kMin,   &&L_kMax,   &&L_kEq,
      &&L_kNe,    &&L_kLt,    &&L_kLe,    &&L_kGt,    &&L_kGe,    &&L_kAndV,
      &&L_kOrV,   &&L_kNeg,   &&L_kNot,   &&L_kBool,  &&L_kField, &&L_kExists,
      &&L_kJmp,   &&L_kJz,    &&L_kJnz,   &&L_kForHead, &&L_kForNext,
      &&L_kGetR,  &&L_kGetC,  &&L_kGetP,  &&L_kPutR,  &&L_kPutC,  &&L_kPutP,
      &&L_kDelR,  &&L_kDelC,  &&L_kDelP,  &&L_kEmit,  &&L_kAbortIf,
      &&L_kHalt,  &&L_kPivF,  &&L_kPivEx, &&L_kPKeyR, &&L_kPKeyC, &&L_kPKeyP,
      &&L_kPWrR,  &&L_kPWrC,  &&L_kPWrP,
  };
#define VM_CASE(name) L_##name:
#define VM_NEXT()                                               \
  do {                                                          \
    if (--budget == 0) throw_step_limit();                      \
    in = ip++;                                                  \
    goto* jt[static_cast<std::size_t>(in->op)];                 \
  } while (0)
  VM_NEXT();
#else
#define VM_CASE(name) case Op::name:
#define VM_NEXT() break
  for (;;) {
    if (--budget == 0) throw_step_limit();
    in = ip++;
    switch (in->op) {
#endif

  VM_CASE(kLoadC) { regs[in->a] = pool[in->imm]; }
  VM_NEXT();
  VM_CASE(kLoadP) {
    regs[in->a] = input.scalar(static_cast<std::size_t>(in->imm));
  }
  VM_NEXT();
  VM_CASE(kLoadE) {
    const Value idx = regs[in->b];
    regs[in->a] = input.elem(static_cast<std::size_t>(in->imm), idx);
  }
  VM_NEXT();
  VM_CASE(kMov) { regs[in->a] = regs[in->b]; }
  VM_NEXT();
  VM_CASE(kAdd) {
    regs[in->a] = static_cast<Value>(static_cast<std::uint64_t>(regs[in->b]) +
                                     static_cast<std::uint64_t>(regs[in->c]));
  }
  VM_NEXT();
  VM_CASE(kSub) {
    regs[in->a] = static_cast<Value>(static_cast<std::uint64_t>(regs[in->b]) -
                                     static_cast<std::uint64_t>(regs[in->c]));
  }
  VM_NEXT();
  VM_CASE(kMul) {
    regs[in->a] = static_cast<Value>(static_cast<std::uint64_t>(regs[in->b]) *
                                     static_cast<std::uint64_t>(regs[in->c]));
  }
  VM_NEXT();
  VM_CASE(kDiv) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = c == 0 ? 0 : b / c;
  }
  VM_NEXT();
  VM_CASE(kMod) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = c == 0 ? 0 : b % c;
  }
  VM_NEXT();
  VM_CASE(kMin) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = b < c ? b : c;
  }
  VM_NEXT();
  VM_CASE(kMax) {
    const Value b = regs[in->b], c = regs[in->c];
    regs[in->a] = b > c ? b : c;
  }
  VM_NEXT();
  VM_CASE(kEq) { regs[in->a] = regs[in->b] == regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kNe) { regs[in->a] = regs[in->b] != regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kLt) { regs[in->a] = regs[in->b] < regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kLe) { regs[in->a] = regs[in->b] <= regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kGt) { regs[in->a] = regs[in->b] > regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kGe) { regs[in->a] = regs[in->b] >= regs[in->c] ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kAndV) {
    regs[in->a] = (regs[in->b] != 0 && regs[in->c] != 0) ? 1 : 0;
  }
  VM_NEXT();
  VM_CASE(kOrV) {
    regs[in->a] = (regs[in->b] != 0 || regs[in->c] != 0) ? 1 : 0;
  }
  VM_NEXT();
  VM_CASE(kNeg) { regs[in->a] = -regs[in->b]; }
  VM_NEXT();
  VM_CASE(kNot) { regs[in->a] = regs[in->b] == 0 ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kBool) { regs[in->a] = regs[in->b] != 0 ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kField) {
    const store::Row* row = handles[in->b];
    regs[in->a] =
        row != nullptr ? row->get_or(static_cast<FieldId>(in->imm), 0) : 0;
  }
  VM_NEXT();
  VM_CASE(kExists) { regs[in->a] = handles[in->b] != nullptr ? 1 : 0; }
  VM_NEXT();
  VM_CASE(kJmp) { ip = code + in->imm; }
  VM_NEXT();
  VM_CASE(kJz) {
    if (regs[in->b] == 0) ip = code + in->imm;
  }
  VM_NEXT();
  VM_CASE(kJnz) {
    if (regs[in->b] != 0) ip = code + in->imm;
  }
  VM_NEXT();
  VM_CASE(kForHead) {
    if (regs[in->b] >= regs[in->c]) {
      ip = code + in->imm;
    } else {
      if (++regs[in->d] > pool[in->imm2]) {
        throw InvariantError(
            "for loop exceeded its declared static bound in " + p.name);
      }
      regs[in->a] = regs[in->b];
    }
  }
  VM_NEXT();
  VM_CASE(kForNext) {
    ++regs[in->b];
    ip = code + in->imm;
  }
  VM_NEXT();
  VM_CASE(kGetR) {
    do_get(key_of(static_cast<TableId>(in->imm), regs[in->b]), in->a);
  }
  VM_NEXT();
  VM_CASE(kGetC) {
    do_get(key_of(static_cast<TableId>(in->imm), pool[in->c]), in->a);
  }
  VM_NEXT();
  VM_CASE(kGetP) {
    do_get(key_of(static_cast<TableId>(in->imm), input.scalar(in->c)), in->a);
  }
  VM_NEXT();
  VM_CASE(kPutR) {
    do_put(key_of(static_cast<TableId>(in->imm), regs[in->b]), *in);
  }
  VM_NEXT();
  VM_CASE(kPutC) {
    do_put(key_of(static_cast<TableId>(in->imm), pool[in->c]), *in);
  }
  VM_NEXT();
  VM_CASE(kPutP) {
    do_put(key_of(static_cast<TableId>(in->imm), input.scalar(in->c)), *in);
  }
  VM_NEXT();
  VM_CASE(kDelR) {
    do_del(key_of(static_cast<TableId>(in->imm), regs[in->b]));
  }
  VM_NEXT();
  VM_CASE(kDelC) {
    do_del(key_of(static_cast<TableId>(in->imm), pool[in->c]));
  }
  VM_NEXT();
  VM_CASE(kDelP) {
    do_del(key_of(static_cast<TableId>(in->imm), input.scalar(in->c)));
  }
  VM_NEXT();
  VM_CASE(kEmit) { out.emitted.push_back(regs[in->b]); }
  VM_NEXT();
  VM_CASE(kAbortIf) {
    if (regs[in->b] != 0) return false;
  }
  VM_NEXT();
  VM_CASE(kHalt) { return true; }
  VM_CASE(kPivF)
  VM_CASE(kPivEx)
  VM_CASE(kPKeyR)
  VM_CASE(kPKeyC)
  VM_CASE(kPKeyP)
  VM_CASE(kPWrR)
  VM_CASE(kPWrC)
  VM_CASE(kPWrP) {
    throw InvariantError("bytecode: prediction opcode in an exec program");
  }

#if defined(__GNUC__) && !defined(PROG_BYTECODE_SWITCH_DISPATCH)
#else
    }
  }
#endif
#undef VM_CASE
#undef VM_NEXT
  throw InvariantError("bytecode: fell off the end of the program");
}

}  // namespace

void run(const Program& p, const lang::TxInput& input,
         const store::ReadView& base, std::uint64_t max_steps,
         lang::ExecResult& out, bool borrow_rows) {
  if (input.args.size() != p.num_params) {
    throw UsageError("argument count mismatch for procedure " + p.name);
  }
  VmScratch& sc = scratch();
  // Grow-only: registers and handle slots are never zeroed between runs.
  // The compiler emits every definition before any use along each path (a
  // handle register only exists once its GET has executed), so stale values
  // from the previous transaction are unreachable and the two fills per
  // execution can be skipped.
  if (sc.regs.size() < p.num_regs) sc.regs.resize(p.num_regs);
  if (sc.handles.size() < p.num_vars) sc.handles.resize(p.num_vars);
  sc.keep.clear();
  sc.frozen.clear();
  sc.buffer.clear();
  if (++sc.key_gen == 0) {  // generation wrapped: stale stamps could collide
    for (KeySlot& s : sc.key_table) s.gen = 0;
    sc.key_gen = 1;
  }
  sc.key_count = 0;
  out.committed = false;
  out.emitted.clear();
  out.reads.clear();
  out.writes.clear();
  out.ops.clear();
  const bool committed =
      exec_loop(p, input, base, max_steps, out, sc, borrow_rows);
  finish(out, sc, committed);
}

}  // namespace prog::bytecode
