// Proc -> bytecode lowering. Offline (registration time), so clarity wins
// over compile speed; the output must make the VM reproduce the tree-walker
// byte for byte, including evaluation order, wrap-around arithmetic, the
// zero-divisor short circuit and &&/|| short-circuiting (see interp.cpp).
#include "lang/bytecode/bytecode.hpp"

#include <limits>
#include <map>
#include <optional>
#include <sstream>

#include "common/check.hpp"
#include "lang/ast.hpp"

namespace prog::bytecode {

namespace {

using lang::EKind;
using lang::ExprId;
using lang::Proc;
using lang::SExpr;
using lang::SKind;
using lang::Stmt;

/// Exact interpreter arithmetic (interp.cpp wrap_* helpers).
Value wrap_add(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) +
                            static_cast<std::uint64_t>(b));
}
Value wrap_sub(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) -
                            static_cast<std::uint64_t>(b));
}
Value wrap_mul(Value a, Value b) {
  return static_cast<Value>(static_cast<std::uint64_t>(a) *
                            static_cast<std::uint64_t>(b));
}

class Compiler {
 public:
  explicit Compiler(const Proc& proc) : proc_(proc) {
    PROG_CHECK_MSG(proc.var_types.size() <= 0xFFFF,
                   "bytecode: too many variables");
    prog_.name = proc.name;
    prog_.num_vars = static_cast<std::uint16_t>(proc.var_types.size());
    prog_.num_params = static_cast<std::uint32_t>(proc.params.size());
    top_ = prog_.num_vars;
    max_regs_ = top_;
  }

  std::shared_ptr<const Program> compile() && {
    compile_block(proc_.body);
    emit(Op::kHalt);
    prog_.num_regs = max_regs_;
    return std::make_shared<const Program>(std::move(prog_));
  }

 private:
  // --- emission helpers ----------------------------------------------------
  std::int32_t here() const {
    return static_cast<std::int32_t>(prog_.code.size());
  }

  Insn& emit(Op op, std::uint16_t a = 0, std::uint16_t b = 0,
             std::uint16_t c = 0, std::uint16_t d = 0, std::int32_t imm = 0,
             std::int32_t imm2 = 0) {
    prog_.code.push_back(Insn{op, a, b, c, d, imm, imm2});
    return prog_.code.back();
  }

  /// Emits a jump whose target is patched later; returns its code index.
  std::int32_t emit_jump(Op op, std::uint16_t src = 0) {
    emit(op, 0, src, 0, 0, /*imm=*/-1);
    return here() - 1;
  }

  void patch(std::int32_t jump_at, std::int32_t target) {
    prog_.code[static_cast<std::size_t>(jump_at)].imm = target;
  }

  std::int32_t pool_index(Value v) {
    auto [it, inserted] = pool_dedup_.try_emplace(
        v, static_cast<std::int32_t>(prog_.pool.size()));
    if (inserted) prog_.pool.push_back(v);
    return it->second;
  }

  /// Pool index narrowed to the 16-bit `c` operand (fused key modes).
  std::uint16_t pool_index16(Value v) {
    const std::int32_t idx = pool_index(v);
    PROG_CHECK_MSG(idx <= 0xFFFF, "bytecode: constant pool overflow");
    return static_cast<std::uint16_t>(idx);
  }

  // --- register allocation (stack discipline above the variables) ----------
  std::uint16_t alloc() {
    PROG_CHECK_MSG(top_ < 0xFFFF, "bytecode: register file overflow");
    const std::uint16_t r = top_++;
    if (top_ > max_regs_) max_regs_ = top_;
    return r;
  }
  std::uint16_t mark() const { return top_; }
  void release(std::uint16_t m) { top_ = m; }

  // --- constant folding ----------------------------------------------------
  /// Mirrors Frame::eval over constant subtrees. Division/modulo folding
  /// skips the INT64_MIN / -1 case (hardware trap) — the runtime tree-walker
  /// would trap there too, but a compiler must not.
  std::optional<Value> fold(ExprId id) const {
    const SExpr& e = proc_.expr(id);
    switch (e.kind) {
      case EKind::kConst:
        return e.cval;
      case EKind::kParam:
      case EKind::kParamElem:
      case EKind::kVar:
      case EKind::kField:
        return std::nullopt;
      case EKind::kNot: {
        const auto a = fold(e.a);
        if (!a) return std::nullopt;
        return *a == 0 ? 1 : 0;
      }
      default:
        break;
    }
    const auto a = fold(e.a);
    const auto b = fold(e.b);
    if (!a || !b) return std::nullopt;
    switch (e.kind) {
      case EKind::kAdd:
        return wrap_add(*a, *b);
      case EKind::kSub:
        return wrap_sub(*a, *b);
      case EKind::kMul:
        return wrap_mul(*a, *b);
      case EKind::kDiv:
        if (*b == 0) return 0;
        if (*a == std::numeric_limits<Value>::min() && *b == -1) {
          return std::nullopt;
        }
        return *a / *b;
      case EKind::kMod:
        if (*b == 0) return 0;
        if (*a == std::numeric_limits<Value>::min() && *b == -1) {
          return std::nullopt;
        }
        return *a % *b;
      case EKind::kMin:
        return *a < *b ? *a : *b;
      case EKind::kMax:
        return *a > *b ? *a : *b;
      case EKind::kEq:
        return *a == *b ? 1 : 0;
      case EKind::kNe:
        return *a != *b ? 1 : 0;
      case EKind::kLt:
        return *a < *b ? 1 : 0;
      case EKind::kLe:
        return *a <= *b ? 1 : 0;
      case EKind::kGt:
        return *a > *b ? 1 : 0;
      case EKind::kGe:
        return *a >= *b ? 1 : 0;
      case EKind::kAnd:
        return (*a != 0 && *b != 0) ? 1 : 0;
      case EKind::kOr:
        return (*a != 0 || *b != 0) ? 1 : 0;
      default:
        return std::nullopt;
    }
  }

  // --- expression lowering -------------------------------------------------
  /// Compiles `id`; the result lives in the returned register. Variable
  /// references compile to their home register (no move); everything else
  /// lands in `prefer` when given, else a fresh temporary. `prefer` (a
  /// variable's home register during kAssign) is only ever written after
  /// every operand read, so `x = f(x)` stays correct.
  std::uint16_t compile_expr(ExprId id,
                             std::optional<std::uint16_t> prefer = {}) {
    if (const auto c = fold(id)) {
      const std::uint16_t dst = prefer ? *prefer : alloc();
      emit(Op::kLoadC, dst, 0, 0, 0, pool_index(*c));
      return dst;
    }
    const SExpr& e = proc_.expr(id);
    switch (e.kind) {
      case EKind::kConst: {
        const std::uint16_t dst = prefer ? *prefer : alloc();
        emit(Op::kLoadC, dst, 0, 0, 0, pool_index(e.cval));
        return dst;
      }
      case EKind::kParam: {
        const std::uint16_t dst = prefer ? *prefer : alloc();
        emit(Op::kLoadP, dst, 0, 0, 0,
             static_cast<std::int32_t>(e.param));
        return dst;
      }
      case EKind::kParamElem: {
        const std::uint16_t m = mark();
        const std::uint16_t idx = compile_expr(e.a);
        release(m);
        const std::uint16_t dst = prefer ? *prefer : alloc();
        emit(Op::kLoadE, dst, idx, 0, 0,
             static_cast<std::int32_t>(e.param));
        return dst;
      }
      case EKind::kVar:
        return static_cast<std::uint16_t>(e.var);
      case EKind::kField: {
        const std::uint16_t dst = prefer ? *prefer : alloc();
        if (e.field == lang::kExistsField) {
          emit(Op::kExists, dst, static_cast<std::uint16_t>(e.var));
        } else {
          emit(Op::kField, dst, static_cast<std::uint16_t>(e.var), 0, 0,
               static_cast<std::int32_t>(e.field));
        }
        return dst;
      }
      case EKind::kNot: {
        const std::uint16_t m = mark();
        const std::uint16_t src = compile_expr(e.a);
        release(m);
        const std::uint16_t dst = prefer ? *prefer : alloc();
        emit(Op::kNot, dst, src);
        return dst;
      }
      case EKind::kDiv:
      case EKind::kMod:
        return compile_div(e, prefer);
      case EKind::kAnd:
      case EKind::kOr:
        return compile_logical(e, prefer);
      default:
        break;
    }
    // Plain binary operator: left, then right, exactly like the tree.
    const std::uint16_t m = mark();
    const std::uint16_t lhs = compile_expr(e.a);
    const std::uint16_t rhs = compile_expr(e.b);
    release(m);
    const std::uint16_t dst = prefer ? *prefer : alloc();
    emit(binary_op(e.kind), dst, lhs, rhs);
    return dst;
  }

  static Op binary_op(EKind k) {
    switch (k) {
      case EKind::kAdd:
        return Op::kAdd;
      case EKind::kSub:
        return Op::kSub;
      case EKind::kMul:
        return Op::kMul;
      case EKind::kMin:
        return Op::kMin;
      case EKind::kMax:
        return Op::kMax;
      case EKind::kEq:
        return Op::kEq;
      case EKind::kNe:
        return Op::kNe;
      case EKind::kLt:
        return Op::kLt;
      case EKind::kLe:
        return Op::kLe;
      case EKind::kGt:
        return Op::kGt;
      case EKind::kGe:
        return Op::kGe;
      default:
        throw InvariantError("bytecode: not a plain binary operator");
    }
  }

  /// kDiv/kMod evaluate the divisor first and never evaluate the dividend
  /// when it is zero (interp.cpp). Jump scheme preserves that order, so an
  /// exception-throwing dividend (array index out of range) surfaces — or
  /// doesn't — exactly like the tree.
  std::uint16_t compile_div(const SExpr& e,
                            std::optional<std::uint16_t> prefer) {
    const std::uint16_t m = mark();
    const std::uint16_t rhs = compile_expr(e.b);
    const std::int32_t jz = emit_jump(Op::kJz, rhs);
    const std::uint16_t lhs = compile_expr(e.a);
    release(m);
    const std::uint16_t dst = prefer ? *prefer : alloc();
    emit(e.kind == EKind::kDiv ? Op::kDiv : Op::kMod, dst, lhs, rhs);
    const std::int32_t done = emit_jump(Op::kJmp);
    patch(jz, here());
    emit(Op::kLoadC, dst, 0, 0, 0, pool_index(0));
    patch(done, here());
    return dst;
  }

  /// Short-circuit &&/|| (the tree uses C++ && / ||).
  std::uint16_t compile_logical(const SExpr& e,
                                std::optional<std::uint16_t> prefer) {
    const bool is_and = e.kind == EKind::kAnd;
    const std::uint16_t m = mark();
    const std::uint16_t lhs = compile_expr(e.a);
    const std::int32_t skip =
        emit_jump(is_and ? Op::kJz : Op::kJnz, lhs);
    const std::uint16_t rhs = compile_expr(e.b);
    release(m);
    const std::uint16_t dst = prefer ? *prefer : alloc();
    emit(Op::kBool, dst, rhs);
    const std::int32_t done = emit_jump(Op::kJmp);
    patch(skip, here());
    emit(Op::kLoadC, dst, 0, 0, 0, pool_index(is_and ? 0 : 1));
    patch(done, here());
    return dst;
  }

  // --- key-expression fusion -----------------------------------------------
  /// GET/PUT/DEL key operands compile into the access instruction itself
  /// when they are constants (post-folding), scalar parameters, or variables
  /// (already registers). `ops[0..2]` are the R/C/P opcode variants.
  struct KeyOperand {
    Op op;
    std::uint16_t b = 0;  // R: key register
    std::uint16_t c = 0;  // C: pool index; P: parameter slot
  };

  KeyOperand key_operand(ExprId id, Op r, Op c, Op p) {
    if (const auto v = fold(id)) return {c, 0, pool_index16(*v)};
    const SExpr& e = proc_.expr(id);
    if (e.kind == EKind::kParam) {
      PROG_CHECK(e.param <= 0xFFFF);
      return {p, 0, static_cast<std::uint16_t>(e.param)};
    }
    if (e.kind == EKind::kVar) {
      return {r, static_cast<std::uint16_t>(e.var), 0};
    }
    return {r, compile_expr(id), 0};
  }

  // --- statement lowering --------------------------------------------------
  void compile_block(const std::vector<Stmt>& block) {
    for (const Stmt& s : block) compile_stmt(s);
  }

  void compile_stmt(const Stmt& s) {
    const std::uint16_t m = mark();
    switch (s.kind) {
      case SKind::kAssign: {
        const std::uint16_t var = static_cast<std::uint16_t>(s.var);
        const std::uint16_t r = compile_expr(s.a, var);
        if (r != var) emit(Op::kMov, var, r);
        break;
      }
      case SKind::kGet: {
        const KeyOperand k = key_operand(s.a, Op::kGetR, Op::kGetC, Op::kGetP);
        emit(k.op, static_cast<std::uint16_t>(s.var), k.b, k.c, 0,
             static_cast<std::int32_t>(s.table));
        break;
      }
      case SKind::kPut: {
        // Key first (tree evaluation order), then every field value into
        // live temporaries, then one kPut referencing the side table.
        const KeyOperand k = key_operand(s.a, Op::kPutR, Op::kPutC, Op::kPutP);
        const std::int32_t fields_at =
            static_cast<std::int32_t>(prog_.put_fields.size());
        PROG_CHECK_MSG(s.fields.size() <= 0xFFFF,
                       "bytecode: PUT field list overflow");
        for (const auto& [field, eid] : s.fields) {
          prog_.put_fields.push_back({field, compile_expr(eid)});
        }
        emit(k.op, static_cast<std::uint16_t>(s.fields.size()), k.b, k.c, 0,
             static_cast<std::int32_t>(s.table), fields_at);
        break;
      }
      case SKind::kDel: {
        const KeyOperand k = key_operand(s.a, Op::kDelR, Op::kDelC, Op::kDelP);
        emit(k.op, 0, k.b, k.c, 0, static_cast<std::int32_t>(s.table));
        break;
      }
      case SKind::kIf: {
        const std::uint16_t cond = compile_expr(s.a);
        release(m);
        const std::int32_t jz = emit_jump(Op::kJz, cond);
        compile_block(s.body);
        if (s.else_body.empty()) {
          patch(jz, here());
        } else {
          const std::int32_t done = emit_jump(Op::kJmp);
          patch(jz, here());
          compile_block(s.else_body);
          patch(done, here());
        }
        break;
      }
      case SKind::kFor: {
        // cur/end/iters live across the body; the loop variable's home
        // register is refreshed from cur at each head (tree semantics:
        // the body may clobber the variable, iteration still advances).
        const std::uint16_t cur = alloc();
        const std::uint16_t end = alloc();
        const std::uint16_t iters = alloc();
        const std::uint16_t rlo = compile_expr(s.a, cur);
        if (rlo != cur) emit(Op::kMov, cur, rlo);
        const std::uint16_t rhi = compile_expr(s.b, end);
        if (rhi != end) emit(Op::kMov, end, rhi);
        emit(Op::kLoadC, iters, 0, 0, 0, pool_index(0));
        const std::int32_t head = here();
        emit(Op::kForHead, static_cast<std::uint16_t>(s.var), cur, end, iters,
             /*imm=*/-1, pool_index(s.max_iters));
        compile_block(s.body);
        emit(Op::kForNext, 0, cur, 0, 0, head);
        patch(head, here());
        break;
      }
      case SKind::kAbortIf: {
        const std::uint16_t cond = compile_expr(s.a);
        emit(Op::kAbortIf, 0, cond);
        break;
      }
      case SKind::kEmit: {
        const std::uint16_t r = compile_expr(s.a);
        emit(Op::kEmit, 0, r);
        break;
      }
    }
    release(m);
  }

  const Proc& proc_;
  Program prog_;
  std::map<Value, std::int32_t> pool_dedup_;
  std::uint16_t top_ = 0;
  std::uint16_t max_regs_ = 0;
};

}  // namespace

std::shared_ptr<const Program> compile(const lang::Proc& proc) {
  return Compiler(proc).compile();
}

bool ensure_compiled(lang::Proc& proc) noexcept {
  if (proc.code != nullptr) return true;
  try {
    proc.code = compile(proc);
    return true;
  } catch (...) {
    proc.code = nullptr;  // tree-walk fallback; differential tests would
    return false;         // catch a compiler that fails on real workloads
  }
}

const char* to_string(Op op) noexcept {
  switch (op) {
    case Op::kLoadC: return "loadc";
    case Op::kLoadP: return "loadp";
    case Op::kLoadE: return "loade";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kMin: return "min";
    case Op::kMax: return "max";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kAndV: return "andv";
    case Op::kOrV: return "orv";
    case Op::kNeg: return "neg";
    case Op::kNot: return "not";
    case Op::kBool: return "bool";
    case Op::kField: return "field";
    case Op::kExists: return "exists";
    case Op::kJmp: return "jmp";
    case Op::kJz: return "jz";
    case Op::kJnz: return "jnz";
    case Op::kForHead: return "forhead";
    case Op::kForNext: return "fornext";
    case Op::kGetR: return "get.r";
    case Op::kGetC: return "get.c";
    case Op::kGetP: return "get.p";
    case Op::kPutR: return "put.r";
    case Op::kPutC: return "put.c";
    case Op::kPutP: return "put.p";
    case Op::kDelR: return "del.r";
    case Op::kDelC: return "del.c";
    case Op::kDelP: return "del.p";
    case Op::kEmit: return "emit";
    case Op::kAbortIf: return "abortif";
    case Op::kHalt: return "halt";
    case Op::kPivF: return "pivf";
    case Op::kPivEx: return "pivex";
    case Op::kPKeyR: return "pkey.r";
    case Op::kPKeyC: return "pkey.c";
    case Op::kPKeyP: return "pkey.p";
    case Op::kPWrR: return "pwr.r";
    case Op::kPWrC: return "pwr.c";
    case Op::kPWrP: return "pwr.p";
  }
  return "?";
}

namespace detail {

/// Shared listing core: exec and prediction programs use the same encoding.
std::string disassemble_code(const std::string& name,
                             const std::vector<Insn>& code,
                             const std::vector<Value>& pool,
                             const std::vector<PutField>* put_fields,
                             std::uint16_t num_vars, std::uint16_t num_regs) {
  std::ostringstream os;
  os << name << ": " << code.size() << " insns, " << pool.size()
     << " consts, " << num_regs << " regs (" << num_vars << " vars)\n";
  for (std::size_t pc = 0; pc < code.size(); ++pc) {
    const Insn& i = code[pc];
    os << "  " << pc << ":\t" << to_string(i.op);
    switch (i.op) {
      case Op::kLoadC:
        os << " r" << i.a << ", " << pool[static_cast<std::size_t>(i.imm)];
        break;
      case Op::kLoadP:
        os << " r" << i.a << ", in" << i.imm;
        break;
      case Op::kLoadE:
        os << " r" << i.a << ", in" << i.imm << "[r" << i.b << "]";
        break;
      case Op::kMov:
      case Op::kNeg:
      case Op::kNot:
      case Op::kBool:
        os << " r" << i.a << ", r" << i.b;
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kDiv:
      case Op::kMod:
      case Op::kMin:
      case Op::kMax:
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kLe:
      case Op::kGt:
      case Op::kGe:
      case Op::kAndV:
      case Op::kOrV:
        os << " r" << i.a << ", r" << i.b << ", r" << i.c;
        break;
      case Op::kField:
        os << " r" << i.a << ", h" << i.b << ".f" << i.imm;
        break;
      case Op::kExists:
        os << " r" << i.a << ", h" << i.b;
        break;
      case Op::kPivF:
        os << " r" << i.a << ", piv" << i.b << ".f" << i.imm;
        break;
      case Op::kPivEx:
        os << " r" << i.a << ", piv" << i.b;
        break;
      case Op::kJmp:
        os << " -> " << i.imm;
        break;
      case Op::kJz:
      case Op::kJnz:
      case Op::kAbortIf:
      case Op::kEmit:
        os << " r" << i.b;
        if (i.op == Op::kJz || i.op == Op::kJnz) os << " -> " << i.imm;
        break;
      case Op::kForHead:
        os << " var=r" << i.a << " cur=r" << i.b << " end=r" << i.c
           << " max=" << pool[static_cast<std::size_t>(i.imm2)] << " -> "
           << i.imm;
        break;
      case Op::kForNext:
        os << " r" << i.b << " -> " << i.imm;
        break;
      case Op::kGetR:
      case Op::kPKeyR:
      case Op::kPWrR:
        os << (i.op == Op::kGetR ? " h" : " ")
           << (i.op == Op::kGetR ? std::to_string(i.a) : "") << " t" << i.imm
           << "[r" << i.b << "]";
        break;
      case Op::kGetC:
      case Op::kGetP: {
        os << " h" << i.a << ", t" << i.imm;
        if (i.op == Op::kGetC) {
          os << "[" << pool[i.c] << "]";
        } else {
          os << "[in" << i.c << "]";
        }
        break;
      }
      case Op::kPKeyC:
      case Op::kPWrC:
        os << " t" << i.imm << "[" << pool[static_cast<std::size_t>(i.imm2)]
           << "]";
        break;
      case Op::kPKeyP:
      case Op::kPWrP:
        os << " t" << i.imm << "[in" << i.imm2 << "]";
        break;
      case Op::kPutR:
      case Op::kPutC:
      case Op::kPutP:
      case Op::kDelR:
      case Op::kDelC:
      case Op::kDelP: {
        os << " t" << i.imm;
        if (i.op == Op::kPutR || i.op == Op::kDelR) {
          os << "[r" << i.b << "]";
        } else if (i.op == Op::kPutC || i.op == Op::kDelC) {
          os << "[" << pool[i.c] << "]";
        } else {
          os << "[in" << i.c << "]";
        }
        if (put_fields != nullptr &&
            (i.op == Op::kPutR || i.op == Op::kPutC || i.op == Op::kPutP)) {
          os << " {";
          for (std::uint16_t f = 0; f < i.a; ++f) {
            const PutField& pf =
                (*put_fields)[static_cast<std::size_t>(i.imm2) + f];
            os << (f == 0 ? "" : ", ") << "f" << pf.field << "=r" << pf.reg;
          }
          os << "}";
        }
        break;
      }
      case Op::kHalt:
        break;
    }
    if (i.op == Op::kPKeyR || i.op == Op::kPKeyC || i.op == Op::kPKeyP) {
      if (i.c > 0) os << " pivot=" << (i.c - 1);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace detail

std::string disassemble(const Program& p) {
  return detail::disassemble_code(p.name, p.code, p.pool, &p.put_fields,
                                  p.num_vars, p.num_regs);
}

}  // namespace prog::bytecode
