// Flat bytecode for stored procedures — the compiled form of lang::Proc.
//
// The tree-walking interpreter (lang/interp.cpp) chases AST pointers and
// re-dispatches on every node; on the evaluated workloads that indirection is
// the dominant per-transaction cost now that the scheduler hot path is
// allocation-free (DESIGN.md §10) and the replica apply is pipelined (§14).
// Procedures are registered offline, so we lower each Proc once into a linear
// register-based program and execute that with a threaded-dispatch VM:
//
//   - one flat instruction array (no pointer chasing, predictable fetch);
//   - a register file: registers [0, num_vars) are the procedure's scalar
//     variables, the rest hold expression temporaries (stack-disciplined,
//     sized at compile time — no runtime growth);
//   - constants folded at compile time into a deduplicated pool;
//   - key-expression fusion: GET/PUT/DEL whose key is a constant, a scalar
//     parameter or a variable compile to a single instruction instead of an
//     eval sequence (the common case in every evaluated workload).
//
// The VM reproduces the tree-walker byte for byte: identical ExecResult
// (committed flag, emitted values, first-access read/write order, buffered
// ops) and identical wrap-around/division/short-circuit semantics. The
// bytecode_test differential fuzzer and the engine-level equivalence matrix
// enforce this; EngineConfig::tree_walk_ablation keeps the tree-walker
// selectable as the oracle for one release (DESIGN.md §15).
//
// The same instruction encoding doubles as the substrate for compiled
// *prediction programs* (lang/bytecode/pred_program.hpp) that replace the
// sym::TxProfile PSC-tree walk.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "lang/interp.hpp"

namespace prog::bytecode {

enum class Op : std::uint8_t {
  // --- value movement ------------------------------------------------------
  kLoadC,   // regs[a] = pool[imm]
  kLoadP,   // regs[a] = input.scalar(imm)
  kLoadE,   // regs[a] = input.elem(imm, regs[b])
  kMov,     // regs[a] = regs[b]
  // --- arithmetic / comparison (regs[a] = regs[b] op regs[c]) --------------
  kAdd,     // two's-complement wrap-around, like the tree-walker
  kSub,
  kMul,
  kDiv,     // total: regs[c] == 0 -> 0 (exec code guards evaluation order
  kMod,     //        with explicit jumps; prediction code uses these bare)
  kMin,
  kMax,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndV,    // non-short-circuit and/or (prediction programs only: expr::eval
  kOrV,     // evaluates both operands unconditionally)
  // --- unary (regs[a] = op regs[b]) ----------------------------------------
  kNeg,
  kNot,     // regs[a] = regs[b] == 0
  kBool,    // regs[a] = regs[b] != 0
  // --- row handles ---------------------------------------------------------
  kField,   // regs[a] = handles[b] ? handles[b]->get_or(imm, 0) : 0
  kExists,  // regs[a] = handles[b] != nullptr
  // --- control flow --------------------------------------------------------
  kJmp,     // pc = imm
  kJz,      // if regs[b] == 0: pc = imm
  kJnz,     // if regs[b] != 0: pc = imm
  kForHead, // if regs[b] >= regs[c]: pc = imm; else bound-check against
            // pool[imm2] via iteration counter regs[d], then regs[a]=regs[b]
  kForNext, // ++regs[b]; pc = imm
  // --- data access (key modes: R = regs[b], C = pool[c], P = scalar(c)) ----
  kGetR,    // handles[a] = buffered read of {imm, key}
  kGetC,
  kGetP,
  kPutR,    // upsert-merge {imm, key}; fields = put_fields[imm2, imm2+a)
  kPutC,
  kPutP,
  kDelR,    // buffer a tombstone for {imm, key}
  kDelC,
  kDelP,
  // --- effects / termination ----------------------------------------------
  kEmit,    // out.emitted.push_back(regs[b])
  kAbortIf, // if regs[b] != 0: finish(committed=false)
  kHalt,    // finish(committed=true)
  // --- prediction programs only (pred_program.hpp) -------------------------
  kPivF,    // regs[a] = pivot_row[b] ? pivot_row[b]->get_or(imm, 0) : 0
  kPivEx,   // regs[a] = pivot_row[b] != nullptr
  kPKeyR,   // predicted read of {imm, key}; c > 0: resolve pivot slot c-1
  kPKeyC,   //   (key modes: R = regs[b], C = pool[imm2], P = scalar(imm2))
  kPKeyP,
  kPWrR,    // predicted write of {imm, key} (same key modes)
  kPWrC,
  kPWrP,
};

const char* to_string(Op op) noexcept;

/// One instruction. 16 bytes; operand meaning per opcode above. `imm` holds
/// jump targets, table ids and field ids; `imm2` holds pool/side-table
/// indices and secondary immediates.
struct Insn {
  Op op = Op::kHalt;
  std::uint16_t a = 0;
  std::uint16_t b = 0;
  std::uint16_t c = 0;
  std::uint16_t d = 0;
  std::int32_t imm = 0;
  std::int32_t imm2 = 0;
};

/// One field assignment of a compiled PUT: the value was pre-evaluated into
/// `reg` by the instructions preceding the kPut*.
struct PutField {
  FieldId field = 0;
  std::uint16_t reg = 0;
};

/// A compiled procedure. Immutable after compile(); shared by every thread.
struct Program {
  std::string name;               // procedure name (errors, disassembly)
  std::vector<Insn> code;
  std::vector<Value> pool;        // deduplicated constants
  std::vector<PutField> put_fields;
  std::uint16_t num_vars = 0;     // registers [0, num_vars) are variables
  std::uint16_t num_regs = 0;     // total register file size
  std::uint32_t num_params = 0;   // arity check mirrors Interp::run_into
};

/// Lowers `proc` to bytecode. Deterministic; throws InvariantError on an
/// internal inconsistency (callers treat that as "keep tree-walking").
std::shared_ptr<const Program> compile(const lang::Proc& proc);

/// Compiles `proc.code` in place when absent. Returns false when compilation
/// failed and the procedure will be tree-walked (never throws).
bool ensure_compiled(lang::Proc& proc) noexcept;

/// Executes `p` exactly like lang::Interp::run_into runs the AST: `out` is
/// fully overwritten, scratch state is thread-local and reused across calls.
/// `max_steps` maps the interpreter's statement budget onto an instruction
/// budget (x8 — statements lower to a handful of instructions).
/// `borrow_rows` enables the borrowed-pointer read path (ReadView::get_raw);
/// disabling it forces the legacy shared_ptr copy per access (bench_interp
/// measures the delta).
void run(const Program& p, const lang::TxInput& input,
         const store::ReadView& base, std::uint64_t max_steps,
         lang::ExecResult& out, bool borrow_rows = true);

/// Multi-line listing, one instruction per line (tools/progmon
/// --dump-bytecode).
std::string disassemble(const Program& p);

namespace detail {
/// Shared listing core — exec and prediction programs use the same encoding.
std::string disassemble_code(const std::string& name,
                             const std::vector<Insn>& code,
                             const std::vector<Value>& pool,
                             const std::vector<PutField>* put_fields,
                             std::uint16_t num_vars, std::uint16_t num_regs);
}  // namespace detail

}  // namespace prog::bytecode
