#include "lang/relevance.hpp"

#include "common/check.hpp"

namespace prog::lang {

namespace {

/// Visits every variable / parameter mention in an expression.
template <typename VarFn, typename ParamFn>
void visit_symbols(const Proc& proc, ExprId id, const VarFn& on_var,
                   const ParamFn& on_param) {
  if (id == kNoExpr) return;
  const SExpr& e = proc.expr(id);
  switch (e.kind) {
    case EKind::kConst:
      return;
    case EKind::kParam:
      on_param(e.param);
      return;
    case EKind::kParamElem:
      on_param(e.param);
      visit_symbols(proc, e.a, on_var, on_param);
      return;
    case EKind::kVar:
      on_var(e.var);
      return;
    case EKind::kField:
      on_var(e.var);  // the row handle
      return;
    default:
      visit_symbols(proc, e.a, on_var, on_param);
      visit_symbols(proc, e.b, on_var, on_param);
      return;
  }
}

/// True if the subtree rooted at `block` contains a data access whose
/// presence/identity the RWS depends on.
bool contains_access(const std::vector<Stmt>& block) {
  for (const Stmt& s : block) {
    switch (s.kind) {
      case SKind::kGet:
      case SKind::kPut:
      case SKind::kDel:
        return true;
      case SKind::kIf:
        if (contains_access(s.body) || contains_access(s.else_body)) {
          return true;
        }
        break;
      case SKind::kFor:
        if (contains_access(s.body)) return true;
        break;
      default:
        break;
    }
  }
  return false;
}

class Analyzer {
 public:
  explicit Analyzer(const Proc& proc) : proc_(proc) {
    rel_.var_relevant.assign(proc.var_types.size(), false);
    rel_.param_relevant.assign(proc.params.size(), false);
  }

  Relevance run() {
    // Fixpoint: each round propagates explicit and implicit flows backward.
    do {
      changed_ = false;
      walk(proc_.body);
      PROG_CHECK(control_.empty());
    } while (changed_);

    // Final forking decision per If/For.
    collect_forking(proc_.body);
    rel_.analyzed_proc = &proc_;
    return std::move(rel_);
  }

 private:
  void mark_var(VarId v) {
    if (!rel_.var_relevant[v]) {
      rel_.var_relevant[v] = true;
      changed_ = true;
    }
  }
  void mark_param(std::uint32_t p) {
    if (!rel_.param_relevant[p]) {
      rel_.param_relevant[p] = true;
      changed_ = true;
    }
  }

  void mark_expr(ExprId e) {
    visit_symbols(
        proc_, e, [&](VarId v) { mark_var(v); },
        [&](std::uint32_t p) { mark_param(p); });
  }

  /// Marks every condition currently on the control stack: information flows
  /// implicitly from those predicates into whatever we just marked.
  void mark_control() {
    for (ExprId c : control_) mark_expr(c);
  }

  void walk(const std::vector<Stmt>& block) {
    for (const Stmt& s : block) {
      switch (s.kind) {
        case SKind::kAssign:
          if (rel_.var_relevant[s.var]) {
            mark_expr(s.a);
            mark_control();
          }
          break;
        case SKind::kGet:
          // The key identifies a read item: always RWS-determining. The
          // access is also control-dependent on the enclosing predicates.
          mark_expr(s.a);
          mark_control();
          break;
        case SKind::kPut:
        case SKind::kDel:
          mark_expr(s.a);
          mark_control();
          break;
        case SKind::kIf:
          control_.push_back(s.a);
          walk(s.body);
          walk(s.else_body);
          control_.pop_back();
          break;
        case SKind::kFor:
          // The loop variable is assigned implicitly; bounds control how
          // many body iterations (and hence accesses) happen.
          if (rel_.var_relevant[s.var] || contains_access(s.body)) {
            mark_expr(s.a);
            mark_expr(s.b);
            mark_control();
          }
          control_.push_back(s.b);
          walk(s.body);
          control_.pop_back();
          break;
        case SKind::kAbortIf:
          // Aborts shrink the actual RWS; profiles over-approximate instead
          // of forking, so abort predicates carry no relevance (Section
          // "Known deviations" in DESIGN.md).
          break;
        case SKind::kEmit:
          break;
      }
    }
  }

  bool assigns_relevant(const std::vector<Stmt>& block) const {
    for (const Stmt& s : block) {
      switch (s.kind) {
        case SKind::kAssign:
          if (rel_.var_relevant[s.var]) return true;
          break;
        case SKind::kGet:
          if (rel_.var_relevant[s.var]) return true;
          break;
        case SKind::kIf:
          if (assigns_relevant(s.body) || assigns_relevant(s.else_body)) {
            return true;
          }
          break;
        case SKind::kFor:
          if (rel_.var_relevant[s.var] || assigns_relevant(s.body)) {
            return true;
          }
          break;
        default:
          break;
      }
    }
    return false;
  }

  void collect_forking(const std::vector<Stmt>& block) {
    for (const Stmt& s : block) {
      switch (s.kind) {
        case SKind::kIf:
          if (contains_access(s.body) || contains_access(s.else_body) ||
              assigns_relevant(s.body) || assigns_relevant(s.else_body)) {
            rel_.forking.insert(&s);
          }
          collect_forking(s.body);
          collect_forking(s.else_body);
          break;
        case SKind::kFor:
          if (contains_access(s.body) || assigns_relevant(s.body) ||
              rel_.var_relevant[s.var]) {
            rel_.forking.insert(&s);
          }
          collect_forking(s.body);
          break;
        default:
          break;
      }
    }
  }

  const Proc& proc_;
  Relevance rel_;
  std::vector<ExprId> control_;
  bool changed_ = false;
};

}  // namespace

Relevance analyze_relevance(const Proc& proc) { return Analyzer(proc).run(); }

bool expr_irrelevant(const Proc& proc, ExprId e, const Relevance& rel) {
  bool relevant = false;
  visit_symbols(
      proc, e,
      [&](VarId v) { relevant = relevant || rel.var_relevant[v]; },
      [&](std::uint32_t p) { relevant = relevant || rel.param_relevant[p]; });
  return !relevant;
}

}  // namespace prog::lang
