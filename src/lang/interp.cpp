#include "lang/interp.hpp"

#include <algorithm>
#include <utility>

#include "common/check.hpp"
#include "lang/bytecode/bytecode.hpp"

namespace prog::lang {

namespace {

/// Exception used to unwind the interpreter on AbortIf. Internal only.
struct TxAborted {};

/// Reused interpreter working state (DESIGN.md §10). One per thread: the
/// variable frame, the row handles, and the transaction-private write buffer
/// keep their capacity across transactions, so steady-state execution does
/// not touch the allocator. The buffer is a flat vector with linear lookup —
/// transactions buffer a handful of writes (TPC-C NewOrder tops out around
/// two dozen), where a cache-resident linear scan beats a node-based hash
/// map and its per-insert allocation.
struct Scratch {
  std::vector<Value> vars;
  std::vector<store::RowPtr> handles;
  std::vector<std::pair<TKey, std::optional<store::Row>>> buffer;
};

Scratch& scratch() {
  static thread_local Scratch s;
  return s;
}

bool contains(const std::vector<TKey>& v, TKey key) {
  return std::find(v.begin(), v.end(), key) != v.end();
}

class Frame {
 public:
  Frame(const Proc& proc, const TxInput& input, const store::ReadView& base,
        std::uint64_t max_steps, ExecResult& out, Scratch& sc)
      : proc_(proc), input_(input), base_(base), steps_left_(max_steps),
        out_(out), sc_(sc) {
    sc_.vars.assign(proc.var_types.size(), 0);
    sc_.handles.assign(proc.var_types.size(), nullptr);
    sc_.buffer.clear();
    out_.committed = false;
    out_.emitted.clear();
    out_.reads.clear();
    out_.writes.clear();
    out_.ops.clear();
  }

  void exec_block(const std::vector<Stmt>& block) {
    for (const Stmt& s : block) exec_stmt(s);
  }

  void finish(bool committed) {
    out_.committed = committed;
    if (committed) {
      out_.ops.reserve(sc_.buffer.size());
      for (const TKey& k : out_.writes) {
        auto it = std::find_if(sc_.buffer.begin(), sc_.buffer.end(),
                               [&](const auto& e) { return e.first == k; });
        PROG_CHECK(it != sc_.buffer.end());
        out_.ops.push_back({k, std::move(it->second)});
      }
    }
  }

 private:
  void step() {
    if (steps_left_-- == 0) {
      throw InvariantError("Interp: step limit exceeded (runaway loop?)");
    }
  }

  Value eval(ExprId id) {
    const SExpr& e = proc_.expr(id);
    switch (e.kind) {
      case EKind::kConst:
        return e.cval;
      case EKind::kParam:
        return input_.scalar(e.param);
      case EKind::kParamElem:
        return input_.elem(e.param, eval(e.a));
      case EKind::kVar:
        return sc_.vars[e.var];
      case EKind::kField: {
        const store::RowPtr& row = sc_.handles[e.var];
        if (e.field == kExistsField) return row != nullptr ? 1 : 0;
        return row != nullptr ? row->get_or(e.field, 0) : 0;
      }
      case EKind::kAdd:
        return wrap_add(eval(e.a), eval(e.b));
      case EKind::kSub:
        return wrap_sub(eval(e.a), eval(e.b));
      case EKind::kMul:
        return wrap_mul(eval(e.a), eval(e.b));
      case EKind::kDiv: {
        const Value d = eval(e.b);
        return d == 0 ? 0 : eval_again(e.a) / d;
      }
      case EKind::kMod: {
        const Value d = eval(e.b);
        return d == 0 ? 0 : eval_again(e.a) % d;
      }
      case EKind::kMin: {
        const Value a = eval(e.a);
        const Value b = eval(e.b);
        return a < b ? a : b;
      }
      case EKind::kMax: {
        const Value a = eval(e.a);
        const Value b = eval(e.b);
        return a > b ? a : b;
      }
      case EKind::kEq:
        return eval(e.a) == eval(e.b);
      case EKind::kNe:
        return eval(e.a) != eval(e.b);
      case EKind::kLt:
        return eval(e.a) < eval(e.b);
      case EKind::kLe:
        return eval(e.a) <= eval(e.b);
      case EKind::kGt:
        return eval(e.a) > eval(e.b);
      case EKind::kGe:
        return eval(e.a) >= eval(e.b);
      case EKind::kAnd:
        return (eval(e.a) != 0 && eval(e.b) != 0) ? 1 : 0;
      case EKind::kOr:
        return (eval(e.a) != 0 || eval(e.b) != 0) ? 1 : 0;
      case EKind::kNot:
        return eval(e.a) == 0 ? 1 : 0;
    }
    throw InvariantError("Interp: unknown expression kind");
  }

  // Division operands: evaluate left after the divisor check; the DSL has no
  // side effects in expressions so re-evaluation is safe and keeps the
  // zero-divisor short-circuit simple.
  Value eval_again(ExprId id) { return eval(id); }

  static Value wrap_add(Value a, Value b) {
    return static_cast<Value>(static_cast<std::uint64_t>(a) +
                              static_cast<std::uint64_t>(b));
  }
  static Value wrap_sub(Value a, Value b) {
    return static_cast<Value>(static_cast<std::uint64_t>(a) -
                              static_cast<std::uint64_t>(b));
  }
  static Value wrap_mul(Value a, Value b) {
    return static_cast<Value>(static_cast<std::uint64_t>(a) *
                              static_cast<std::uint64_t>(b));
  }

  std::optional<store::Row>* buffer_find(TKey key) {
    // Scan from the back: read-after-write hits the freshest entry first.
    for (auto it = sc_.buffer.rbegin(); it != sc_.buffer.rend(); ++it) {
      if (it->first == key) return &it->second;
    }
    return nullptr;
  }

  /// Buffered read: the transaction sees its own writes. First-access
  /// dedup is a linear scan over the (short) recorded key list — the
  /// pre-overhaul per-frame hash sets allocated a node per key.
  store::RowPtr read(TKey key) {
    if (!contains(out_.reads, key)) out_.reads.push_back(key);
    if (std::optional<store::Row>* buf = buffer_find(key)) {
      return buf->has_value() ? store::make_row(**buf) : nullptr;
    }
    return base_.get(key);
  }

  void note_write(TKey key) {
    if (!contains(out_.writes, key)) out_.writes.push_back(key);
  }

  void exec_stmt(const Stmt& s) {
    step();
    switch (s.kind) {
      case SKind::kAssign:
        sc_.vars[s.var] = eval(s.a);
        return;
      case SKind::kGet: {
        const TKey key{s.table, static_cast<Key>(eval(s.a))};
        sc_.handles[s.var] = read(key);
        return;
      }
      case SKind::kPut: {
        const TKey key{s.table, static_cast<Key>(eval(s.a))};
        // Upsert-merge: start from the currently visible row (buffer first).
        if (std::optional<store::Row>* buf = buffer_find(key)) {
          // In-place merge into the existing buffered entry.
          if (!buf->has_value()) buf->emplace();
          for (const auto& [f, eid] : s.fields) (*buf)->set(f, eval(eid));
        } else {
          store::Row next;
          if (store::RowPtr cur = base_.get(key); cur != nullptr) next = *cur;
          for (const auto& [f, eid] : s.fields) next.set(f, eval(eid));
          sc_.buffer.emplace_back(key, std::move(next));
        }
        note_write(key);
        return;
      }
      case SKind::kDel: {
        const TKey key{s.table, static_cast<Key>(eval(s.a))};
        if (std::optional<store::Row>* buf = buffer_find(key)) {
          buf->reset();
        } else {
          sc_.buffer.emplace_back(key, std::nullopt);
        }
        note_write(key);
        return;
      }
      case SKind::kIf:
        exec_block(eval(s.a) != 0 ? s.body : s.else_body);
        return;
      case SKind::kFor: {
        const Value lo = eval(s.a);
        const Value hi = eval(s.b);
        std::int64_t iters = 0;
        for (Value i = lo; i < hi; ++i) {
          PROG_CHECK_MSG(++iters <= s.max_iters,
                         "for loop exceeded its declared static bound in " +
                             proc_.name);
          sc_.vars[s.var] = i;
          exec_block(s.body);
        }
        return;
      }
      case SKind::kAbortIf:
        if (eval(s.a) != 0) throw TxAborted{};
        return;
      case SKind::kEmit:
        out_.emitted.push_back(eval(s.a));
        return;
    }
    throw InvariantError("Interp: unknown statement kind");
  }

  const Proc& proc_;
  const TxInput& input_;
  const store::ReadView& base_;
  std::uint64_t steps_left_;
  ExecResult& out_;
  Scratch& sc_;
};

}  // namespace

ExecResult Interp::run(const Proc& proc, const TxInput& input,
                       const store::ReadView& base) const {
  ExecResult r;
  run_into(proc, input, base, r);
  return r;
}

void Interp::run_into(const Proc& proc, const TxInput& input,
                      const store::ReadView& base, ExecResult& out) const {
  if (proc.code != nullptr && !opts_.tree_walk) {
    bytecode::run(*proc.code, input, base, opts_.max_steps, out);
    return;
  }
  if (input.args.size() != proc.params.size()) {
    throw UsageError("argument count mismatch for procedure " + proc.name);
  }
  Frame frame(proc, input, base, opts_.max_steps, out, scratch());
  try {
    frame.exec_block(proc.body);
  } catch (const TxAborted&) {
    frame.finish(/*committed=*/false);
    return;
  }
  frame.finish(/*committed=*/true);
}

void validate_input(const Proc& proc, const TxInput& input) {
  if (input.args.size() != proc.params.size()) {
    throw UsageError("argument count mismatch for procedure " + proc.name);
  }
  for (std::size_t i = 0; i < proc.params.size(); ++i) {
    const Param& p = proc.params[i];
    const Arg& a = input.args[i];
    if (p.is_array != a.is_array) {
      throw UsageError("parameter '" + p.name + "' of " + proc.name +
                       (p.is_array ? " expects an array" : " expects a scalar"));
    }
    if (p.is_array) {
      if (a.array.size() != p.max_len) {
        throw UsageError("parameter '" + p.name + "' of " + proc.name +
                         " expects exactly " + std::to_string(p.max_len) +
                         " elements");
      }
      for (Value v : a.array) {
        if (v < p.lo || v > p.hi) {
          throw UsageError("element of parameter '" + p.name + "' of " +
                           proc.name + " out of declared bounds");
        }
      }
    } else if (a.scalar < p.lo || a.scalar > p.hi) {
      throw UsageError("parameter '" + p.name + "' of " + proc.name + " = " +
                       std::to_string(a.scalar) + " out of declared bounds [" +
                       std::to_string(p.lo) + ", " + std::to_string(p.hi) +
                       "]");
    }
  }
}

void apply_writes(store::VersionedStore& store, const ExecResult& result,
                  BatchId batch) {
  PROG_CHECK_MSG(result.committed, "apply_writes on an aborted transaction");
  for (const WriteOp& op : result.ops) {
    if (op.row.has_value()) {
      store.put(op.key, *op.row, batch);
    } else {
      store.del(op.key, batch);
    }
  }
}

}  // namespace prog::lang
