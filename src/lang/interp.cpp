#include "lang/interp.hpp"

#include <unordered_set>

#include "common/check.hpp"

namespace prog::lang {

namespace {

/// Exception used to unwind the interpreter on AbortIf. Internal only.
struct TxAborted {};

class Frame {
 public:
  Frame(const Proc& proc, const TxInput& input, const store::ReadView& base,
        std::uint64_t max_steps)
      : proc_(proc), input_(input), base_(base), steps_left_(max_steps) {
    vars_.resize(proc.var_types.size(), 0);
    handles_.resize(proc.var_types.size());
  }

  void exec_block(const std::vector<Stmt>& block) {
    for (const Stmt& s : block) exec_stmt(s);
  }

  ExecResult finish(bool committed) {
    ExecResult r;
    r.committed = committed;
    r.emitted = std::move(emitted_);
    r.reads = std::move(read_order_);
    r.writes = std::move(write_order_);
    if (committed) {
      r.ops.reserve(buffer_.size());
      for (const TKey& k : r.writes) {
        auto it = buffer_.find(k);
        PROG_CHECK(it != buffer_.end());
        r.ops.push_back({k, it->second});
      }
    }
    return r;
  }

 private:
  void step() {
    if (steps_left_-- == 0) {
      throw InvariantError("Interp: step limit exceeded (runaway loop?)");
    }
  }

  Value eval(ExprId id) {
    const SExpr& e = proc_.expr(id);
    switch (e.kind) {
      case EKind::kConst:
        return e.cval;
      case EKind::kParam:
        return input_.scalar(e.param);
      case EKind::kParamElem:
        return input_.elem(e.param, eval(e.a));
      case EKind::kVar:
        return vars_[e.var];
      case EKind::kField: {
        const store::RowPtr& row = handles_[e.var];
        if (e.field == kExistsField) return row != nullptr ? 1 : 0;
        return row != nullptr ? row->get_or(e.field, 0) : 0;
      }
      case EKind::kAdd:
        return wrap_add(eval(e.a), eval(e.b));
      case EKind::kSub:
        return wrap_sub(eval(e.a), eval(e.b));
      case EKind::kMul:
        return wrap_mul(eval(e.a), eval(e.b));
      case EKind::kDiv: {
        const Value d = eval(e.b);
        return d == 0 ? 0 : eval_again(e.a) / d;
      }
      case EKind::kMod: {
        const Value d = eval(e.b);
        return d == 0 ? 0 : eval_again(e.a) % d;
      }
      case EKind::kMin: {
        const Value a = eval(e.a);
        const Value b = eval(e.b);
        return a < b ? a : b;
      }
      case EKind::kMax: {
        const Value a = eval(e.a);
        const Value b = eval(e.b);
        return a > b ? a : b;
      }
      case EKind::kEq:
        return eval(e.a) == eval(e.b);
      case EKind::kNe:
        return eval(e.a) != eval(e.b);
      case EKind::kLt:
        return eval(e.a) < eval(e.b);
      case EKind::kLe:
        return eval(e.a) <= eval(e.b);
      case EKind::kGt:
        return eval(e.a) > eval(e.b);
      case EKind::kGe:
        return eval(e.a) >= eval(e.b);
      case EKind::kAnd:
        return (eval(e.a) != 0 && eval(e.b) != 0) ? 1 : 0;
      case EKind::kOr:
        return (eval(e.a) != 0 || eval(e.b) != 0) ? 1 : 0;
      case EKind::kNot:
        return eval(e.a) == 0 ? 1 : 0;
    }
    throw InvariantError("Interp: unknown expression kind");
  }

  // Division operands: evaluate left after the divisor check; the DSL has no
  // side effects in expressions so re-evaluation is safe and keeps the
  // zero-divisor short-circuit simple.
  Value eval_again(ExprId id) { return eval(id); }

  static Value wrap_add(Value a, Value b) {
    return static_cast<Value>(static_cast<std::uint64_t>(a) +
                              static_cast<std::uint64_t>(b));
  }
  static Value wrap_sub(Value a, Value b) {
    return static_cast<Value>(static_cast<std::uint64_t>(a) -
                              static_cast<std::uint64_t>(b));
  }
  static Value wrap_mul(Value a, Value b) {
    return static_cast<Value>(static_cast<std::uint64_t>(a) *
                              static_cast<std::uint64_t>(b));
  }

  /// Buffered read: the transaction sees its own writes.
  store::RowPtr read(TKey key) {
    if (auto it = buffer_.find(key); it != buffer_.end()) {
      if (read_seen_.insert(key).second) read_order_.push_back(key);
      return it->second.has_value()
                 ? store::make_row(*it->second)
                 : nullptr;
    }
    if (read_seen_.insert(key).second) read_order_.push_back(key);
    return base_.get(key);
  }

  void note_write(TKey key) {
    if (write_seen_.insert(key).second) write_order_.push_back(key);
  }

  void exec_stmt(const Stmt& s) {
    step();
    switch (s.kind) {
      case SKind::kAssign:
        vars_[s.var] = eval(s.a);
        return;
      case SKind::kGet: {
        const TKey key{s.table, static_cast<Key>(eval(s.a))};
        handles_[s.var] = read(key);
        return;
      }
      case SKind::kPut: {
        const TKey key{s.table, static_cast<Key>(eval(s.a))};
        // Upsert-merge: start from the currently visible row (buffer first).
        store::Row next;
        if (auto it = buffer_.find(key); it != buffer_.end()) {
          if (it->second.has_value()) next = *it->second;
        } else if (store::RowPtr cur = base_.get(key); cur != nullptr) {
          next = *cur;
        }
        for (const auto& [f, eid] : s.fields) next.set(f, eval(eid));
        buffer_[key] = std::move(next);
        note_write(key);
        return;
      }
      case SKind::kDel: {
        const TKey key{s.table, static_cast<Key>(eval(s.a))};
        buffer_[key] = std::nullopt;
        note_write(key);
        return;
      }
      case SKind::kIf:
        exec_block(eval(s.a) != 0 ? s.body : s.else_body);
        return;
      case SKind::kFor: {
        const Value lo = eval(s.a);
        const Value hi = eval(s.b);
        std::int64_t iters = 0;
        for (Value i = lo; i < hi; ++i) {
          PROG_CHECK_MSG(++iters <= s.max_iters,
                         "for loop exceeded its declared static bound in " +
                             proc_.name);
          vars_[s.var] = i;
          exec_block(s.body);
        }
        return;
      }
      case SKind::kAbortIf:
        if (eval(s.a) != 0) throw TxAborted{};
        return;
      case SKind::kEmit:
        emitted_.push_back(eval(s.a));
        return;
    }
    throw InvariantError("Interp: unknown statement kind");
  }

  const Proc& proc_;
  const TxInput& input_;
  const store::ReadView& base_;
  std::uint64_t steps_left_;

  std::vector<Value> vars_;
  std::vector<store::RowPtr> handles_;
  std::unordered_map<TKey, std::optional<store::Row>, TKeyHash> buffer_;
  std::unordered_set<TKey, TKeyHash> read_seen_;
  std::unordered_set<TKey, TKeyHash> write_seen_;
  std::vector<TKey> read_order_;
  std::vector<TKey> write_order_;
  std::vector<Value> emitted_;
};

}  // namespace

ExecResult Interp::run(const Proc& proc, const TxInput& input,
                       const store::ReadView& base) const {
  if (input.args.size() != proc.params.size()) {
    throw UsageError("argument count mismatch for procedure " + proc.name);
  }
  Frame frame(proc, input, base, opts_.max_steps);
  try {
    frame.exec_block(proc.body);
  } catch (const TxAborted&) {
    return frame.finish(/*committed=*/false);
  }
  return frame.finish(/*committed=*/true);
}

void validate_input(const Proc& proc, const TxInput& input) {
  if (input.args.size() != proc.params.size()) {
    throw UsageError("argument count mismatch for procedure " + proc.name);
  }
  for (std::size_t i = 0; i < proc.params.size(); ++i) {
    const Param& p = proc.params[i];
    const Arg& a = input.args[i];
    if (p.is_array != a.is_array) {
      throw UsageError("parameter '" + p.name + "' of " + proc.name +
                       (p.is_array ? " expects an array" : " expects a scalar"));
    }
    if (p.is_array) {
      if (a.array.size() != p.max_len) {
        throw UsageError("parameter '" + p.name + "' of " + proc.name +
                         " expects exactly " + std::to_string(p.max_len) +
                         " elements");
      }
      for (Value v : a.array) {
        if (v < p.lo || v > p.hi) {
          throw UsageError("element of parameter '" + p.name + "' of " +
                           proc.name + " out of declared bounds");
        }
      }
    } else if (a.scalar < p.lo || a.scalar > p.hi) {
      throw UsageError("parameter '" + p.name + "' of " + proc.name + " = " +
                       std::to_string(a.scalar) + " out of declared bounds [" +
                       std::to_string(p.lo) + ", " + std::to_string(p.hi) +
                       "]");
    }
  }
}

void apply_writes(store::VersionedStore& store, const ExecResult& result,
                  BatchId batch) {
  PROG_CHECK_MSG(result.committed, "apply_writes on an aborted transaction");
  for (const WriteOp& op : result.ops) {
    if (op.row.has_value()) {
      store.put(op.key, *op.row, batch);
    } else {
      store.del(op.key, batch);
    }
  }
}

}  // namespace prog::lang
