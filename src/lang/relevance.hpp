// Static "irrelevant variable" analysis (the paper's Soot-based step).
//
// A variable is *relevant* when there is an explicit (assignment) or implicit
// (control-flow) information flow from it to something that determines the
// read/write-set: a GET/PUT/DEL key expression or the trip count of a loop
// containing accesses. Everything else is irrelevant and may be treated as
// concrete during symbolic execution — a conditional whose branch subtrees
// contain no accesses and no assignments to relevant variables is followed
// concolically on a single path (the paper's critical optimization that
// collapses newOrder from 2^olCnt paths to 1).
#pragma once

#include <unordered_set>
#include <vector>

#include "common/check.hpp"
#include "lang/ast.hpp"

namespace prog::lang {

struct Relevance {
  std::vector<bool> var_relevant;    // indexed by VarId
  std::vector<bool> param_relevant;  // indexed by parameter index
  /// If/For statements the symbolic executor must fork on (identified by
  /// address — valid for the lifetime of the analyzed Proc instance).
  std::unordered_set<const Stmt*> forking;
  /// The Proc instance `forking` was computed for. Statement addresses are
  /// only meaningful against this exact object: a moved/copied/destroyed
  /// Proc invalidates every entry, silently, because the set would simply
  /// answer "not forking" for the new addresses. `is_forking` therefore
  /// requires the caller to present the Proc it is walking and trips a
  /// PROG_CHECK on mismatch instead of misforking.
  const Proc* analyzed_proc = nullptr;

  bool is_forking(const Proc& proc, const Stmt& s) const {
    PROG_CHECK_MSG(&proc == analyzed_proc,
                   "Relevance::is_forking: queried against a different Proc "
                   "instance than the one analyzed (stale statement "
                   "addresses)");
    return forking.contains(&s);
  }
};

/// Runs the flow analysis to fixpoint. O(statements * fixpoint rounds).
Relevance analyze_relevance(const Proc& proc);

/// True when `e` mentions no relevant variable or parameter (its value can
/// safely be concretized during symbolic execution).
bool expr_irrelevant(const Proc& proc, ExprId e, const Relevance& rel);

}  // namespace prog::lang
