#include "lang/builder.hpp"

#include "lang/bytecode/bytecode.hpp"

namespace prog::lang {

// --- Val operators ---------------------------------------------------------

Val Val::operator+(Val o) const { return b_->binary(EKind::kAdd, *this, o); }
Val Val::operator-(Val o) const { return b_->binary(EKind::kSub, *this, o); }
Val Val::operator*(Val o) const { return b_->binary(EKind::kMul, *this, o); }
Val Val::operator/(Val o) const { return b_->binary(EKind::kDiv, *this, o); }
Val Val::operator%(Val o) const { return b_->binary(EKind::kMod, *this, o); }
Val Val::operator==(Val o) const { return b_->binary(EKind::kEq, *this, o); }
Val Val::operator!=(Val o) const { return b_->binary(EKind::kNe, *this, o); }
Val Val::operator<(Val o) const { return b_->binary(EKind::kLt, *this, o); }
Val Val::operator<=(Val o) const { return b_->binary(EKind::kLe, *this, o); }
Val Val::operator>(Val o) const { return b_->binary(EKind::kGt, *this, o); }
Val Val::operator>=(Val o) const { return b_->binary(EKind::kGe, *this, o); }
Val Val::operator&&(Val o) const { return b_->binary(EKind::kAnd, *this, o); }
Val Val::operator||(Val o) const { return b_->binary(EKind::kOr, *this, o); }

Val Val::operator!() const {
  SExpr e;
  e.kind = EKind::kNot;
  e.a = id_;
  return Val(b_, b_->add_expr(e));
}

Val Val::operator+(Value c) const { return *this + b_->lit(c); }
Val Val::operator-(Value c) const { return *this - b_->lit(c); }
Val Val::operator*(Value c) const { return *this * b_->lit(c); }
Val Val::operator/(Value c) const { return *this / b_->lit(c); }
Val Val::operator%(Value c) const { return *this % b_->lit(c); }
Val Val::operator==(Value c) const { return *this == b_->lit(c); }
Val Val::operator!=(Value c) const { return *this != b_->lit(c); }
Val Val::operator<(Value c) const { return *this < b_->lit(c); }
Val Val::operator<=(Value c) const { return *this <= b_->lit(c); }
Val Val::operator>(Value c) const { return *this > b_->lit(c); }
Val Val::operator>=(Value c) const { return *this >= b_->lit(c); }

Val ArrParam::operator[](Val idx) const {
  SExpr e;
  e.kind = EKind::kParamElem;
  e.param = param_;
  e.a = idx.id();
  return Val(b_, b_->add_expr(e));
}

Val ArrParam::operator[](Value idx) const { return (*this)[b_->lit(idx)]; }

Val Handle::field(FieldId f) const {
  SExpr e;
  e.kind = EKind::kField;
  e.var = var_;
  e.field = f;
  return Val(b_, b_->add_expr(e));
}

Val Handle::exists() const { return field(kExistsField); }

// --- ProcBuilder -----------------------------------------------------------

ProcBuilder::ProcBuilder(std::string name) {
  proc_.name = std::move(name);
  blocks_.push_back(&proc_.body);
}

ExprId ProcBuilder::add_expr(SExpr e) {
  proc_.exprs.push_back(e);
  return static_cast<ExprId>(proc_.exprs.size() - 1);
}

Val ProcBuilder::binary(EKind k, Val a, Val b) {
  PROG_CHECK_MSG(a.builder() == this && b.builder() == this,
                 "mixing Vals from different builders");
  SExpr e;
  e.kind = k;
  e.a = a.id();
  e.b = b.id();
  return wrap(add_expr(e));
}

Val ProcBuilder::param(std::string name, Value lo, Value hi) {
  PROG_CHECK_MSG(lo <= hi, "parameter bounds must satisfy lo <= hi");
  PROG_CHECK_MSG(!built_, "builder already consumed");
  proc_.params.push_back({std::move(name), lo, hi, false, 0});
  SExpr e;
  e.kind = EKind::kParam;
  e.param = static_cast<std::uint32_t>(proc_.params.size() - 1);
  return wrap(add_expr(e));
}

ArrParam ProcBuilder::param_array(std::string name, std::uint32_t max_len,
                                  Value lo, Value hi) {
  PROG_CHECK_MSG(lo <= hi, "parameter bounds must satisfy lo <= hi");
  PROG_CHECK_MSG(max_len > 0, "array parameter needs max_len > 0");
  proc_.params.push_back({std::move(name), lo, hi, true, max_len});
  return ArrParam(this, static_cast<std::uint32_t>(proc_.params.size() - 1));
}

Val ProcBuilder::lit(Value v) {
  SExpr e;
  e.kind = EKind::kConst;
  e.cval = v;
  return wrap(add_expr(e));
}

Val ProcBuilder::field(Handle h, FieldId f) { return h.field(f); }
Val ProcBuilder::exists(Handle h) { return h.exists(); }

Val ProcBuilder::min(Val a, Val b) { return binary(EKind::kMin, a, b); }
Val ProcBuilder::max(Val a, Val b) { return binary(EKind::kMax, a, b); }

VarId ProcBuilder::new_var(std::string name, VarType type) {
  proc_.var_types.push_back(type);
  proc_.var_names.push_back(std::move(name));
  return static_cast<VarId>(proc_.var_types.size() - 1);
}

void ProcBuilder::push(Stmt s) {
  PROG_CHECK_MSG(!built_, "builder already consumed");
  blocks_.back()->push_back(std::move(s));
}

Val ProcBuilder::let(std::string name, Val e) {
  const VarId v = new_var(std::move(name), VarType::kScalar);
  Stmt s;
  s.kind = SKind::kAssign;
  s.var = v;
  s.a = e.id();
  push(std::move(s));
  SExpr ref;
  ref.kind = EKind::kVar;
  ref.var = v;
  return wrap(add_expr(ref));
}

void ProcBuilder::assign(Val var_ref, Val e) {
  const SExpr& ref = proc_.expr(var_ref.id());
  PROG_CHECK_MSG(ref.kind == EKind::kVar,
                 "assign target must be a variable created by let()");
  Stmt s;
  s.kind = SKind::kAssign;
  s.var = ref.var;
  s.a = e.id();
  push(std::move(s));
}

Handle ProcBuilder::get(TableId table, Val key) {
  const VarId v = new_var("h" + std::to_string(proc_.var_types.size()),
                          VarType::kHandle);
  Stmt s;
  s.kind = SKind::kGet;
  s.var = v;
  s.table = table;
  s.a = key.id();
  push(std::move(s));
  return Handle(this, v);
}

void ProcBuilder::put(TableId table, Val key,
                      std::vector<std::pair<FieldId, Val>> fields) {
  Stmt s;
  s.kind = SKind::kPut;
  s.table = table;
  s.a = key.id();
  s.fields.reserve(fields.size());
  for (const auto& [f, v] : fields) s.fields.emplace_back(f, v.id());
  push(std::move(s));
}

void ProcBuilder::del(TableId table, Val key) {
  Stmt s;
  s.kind = SKind::kDel;
  s.table = table;
  s.a = key.id();
  push(std::move(s));
}

void ProcBuilder::abort_if(Val cond) {
  Stmt s;
  s.kind = SKind::kAbortIf;
  s.a = cond.id();
  push(std::move(s));
}

void ProcBuilder::emit(Val e) {
  Stmt s;
  s.kind = SKind::kEmit;
  s.a = e.id();
  push(std::move(s));
}

void ProcBuilder::if_(Val cond,
                      const std::function<void(ProcBuilder&)>& then_fn) {
  if_(cond, then_fn, [](ProcBuilder&) {});
}

void ProcBuilder::if_(Val cond,
                      const std::function<void(ProcBuilder&)>& then_fn,
                      const std::function<void(ProcBuilder&)>& else_fn) {
  Stmt s;
  s.kind = SKind::kIf;
  s.a = cond.id();
  push(std::move(s));
  Stmt& slot = blocks_.back()->back();
  blocks_.push_back(&slot.body);
  then_fn(*this);
  blocks_.pop_back();
  blocks_.push_back(&slot.else_body);
  else_fn(*this);
  blocks_.pop_back();
}

void ProcBuilder::for_(Val lo, Val hi, std::int64_t max_iters,
                       const std::function<void(ProcBuilder&, Val)>& body_fn) {
  PROG_CHECK_MSG(max_iters > 0, "for_ requires a positive static bound");
  const VarId v = new_var("i" + std::to_string(proc_.var_types.size()),
                          VarType::kScalar);
  Stmt s;
  s.kind = SKind::kFor;
  s.var = v;
  s.a = lo.id();
  s.b = hi.id();
  s.max_iters = max_iters;
  push(std::move(s));
  Stmt& slot = blocks_.back()->back();
  SExpr ref;
  ref.kind = EKind::kVar;
  ref.var = v;
  const Val iv = wrap(add_expr(ref));
  blocks_.push_back(&slot.body);
  body_fn(*this, iv);
  blocks_.pop_back();
}

Proc ProcBuilder::build() && {
  PROG_CHECK_MSG(!built_, "builder already consumed");
  PROG_CHECK_MSG(blocks_.size() == 1, "unbalanced blocks at build()");
  built_ = true;
  // Compile to bytecode here so every construction path (workload templates,
  // Database::register_procedure, tests) executes through the VM; failure
  // degrades to tree-walking, never breaks registration.
  bytecode::ensure_compiled(proc_);
  return std::move(proc_);
}

}  // namespace prog::lang
