#include "baselines/variants.hpp"

namespace prog::baselines {

using sched::EngineConfig;
using sched::System;

Variant prognosticator(bool multi_queue, bool parallel_failed, bool recon,
                       unsigned workers) {
  EngineConfig c;
  c.system = System::kPrognosticator;
  c.workers = workers;
  c.multi_queue_prepare = multi_queue;
  c.parallel_failed = parallel_failed;
  c.use_recon = recon;
  std::string name = multi_queue ? "MQ" : "1Q";
  name += parallel_failed ? "-MF" : "-SF";
  if (recon) name += "-R";
  return {std::move(name), c};
}

Variant calvin(unsigned n_ms, unsigned workers) {
  EngineConfig c;
  c.system = System::kCalvin;
  c.workers = workers;
  c.calvin_prepare_lag = n_ms / 10;  // 10 ms batch interval
  return {"Calvin-" + std::to_string(n_ms), c};
}

Variant nodo(unsigned workers) {
  EngineConfig c;
  c.system = System::kNodo;
  c.workers = workers;
  return {"NODO", c};
}

Variant seq() {
  EngineConfig c;
  c.system = System::kSeq;
  c.workers = 1;
  return {"SEQ", c};
}

std::vector<Variant> figure3_systems(unsigned workers) {
  return {
      prognosticator(true, true, false, workers),   // MQ-MF
      prognosticator(true, false, false, workers),  // MQ-SF
      calvin(100, workers),
      calvin(200, workers),
      nodo(workers),
      seq(),
  };
}

std::vector<Variant> figure5_variants(unsigned workers) {
  std::vector<Variant> out;
  for (bool mq : {true, false}) {
    for (bool mf : {true, false}) {
      for (bool recon : {false, true}) {
        out.push_back(prognosticator(mq, mf, recon, workers));
      }
    }
  }
  return out;
}

}  // namespace prog::baselines
