// Named engine configurations — the systems and Prognosticator variants the
// paper evaluates (Sections IV-B and IV-C).
//
//   MQ-MF / MQ-SF / 1Q-MF / 1Q-SF and their -R (reconnaissance) twins,
//   Calvin-N (N ms of client-side prepare lag), NODO, SEQ.
#pragma once

#include <string>
#include <vector>

#include "sched/engine.hpp"

namespace prog::baselines {

/// A named configuration, as labeled in the paper's figures.
struct Variant {
  std::string name;
  sched::EngineConfig config;
};

/// Prognosticator variant from the paper's axes. multi_queue => "MQ",
/// parallel_failed => "MF", recon => "-R" suffix.
Variant prognosticator(bool multi_queue, bool parallel_failed, bool recon,
                       unsigned workers);

/// Calvin with client-side preparation `n_ms` ahead of execution
/// (batch interval is 10 ms, matching the paper's setup).
Variant calvin(unsigned n_ms, unsigned workers);

Variant nodo(unsigned workers);
Variant seq();

/// The six systems of Figure 3/4: MQ-MF, MQ-SF, Calvin-100, Calvin-200,
/// NODO, SEQ.
std::vector<Variant> figure3_systems(unsigned workers);

/// The eight Prognosticator variants of Figure 5.
std::vector<Variant> figure5_variants(unsigned workers);

}  // namespace prog::baselines
