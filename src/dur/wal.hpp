// CRC32C-framed append-only batch WAL.
//
// One record per *agreed batch*: the group-commit unit of a deterministic
// database is the batch the consensus layer ordered, so a single
// append+fsync amortizes durability over every transaction in it. Each
// record carries everything a replica needs to re-execute the batch without
// the cluster — the log position and term, the command id, the full request
// payloads, and the state hash the deterministic engine must reproduce when
// it replays them (the replay-time divergence check).
//
// Frame layout (little-endian):
//
//   u32 magic  'PWL1'            — resync sentinel / version tag
//   u32 len                      — payload byte count
//   u32 crc32c(payload)
//   len bytes of payload
//
// Recovery contract (scan_wal):
//   - a frame whose header or payload extends past EOF is a *torn tail* —
//     the write in flight at the power failure; it is truncated away and
//     the scan ends cleanly;
//   - a complete frame with a bad magic, an insane length, a CRC mismatch,
//     or an undecodable payload is a *corrupt record* — the bytes from the
//     bad frame to EOF are moved to a quarantine file (forensics) and the
//     file is truncated at the last good record. Everything after a corrupt
//     frame is untrusted: length framing no longer resynchronizes.
//
// Either way the WAL ends as a clean prefix of agreed batches; whatever was
// lost is re-fetched from the leader (checkpoint + suffix catch-up).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dur/vfs.hpp"
#include "sched/engine.hpp"

namespace prog::dur {

/// One agreed batch, as persisted.
struct WalRecord {
  std::uint64_t seq = 0;         ///< log index of the batch (1-based)
  std::uint64_t term = 0;        ///< raft term of the entry
  std::uint64_t command = 0;     ///< consensus command id
  std::uint64_t state_hash = 0;  ///< replica state hash *after* applying
  std::vector<sched::TxRequest> batch;
};

/// Serializes one record payload (no frame). Deterministic bytes.
std::string encode_wal_payload(const WalRecord& rec);

/// Parses a payload produced by encode_wal_payload. Throws IoError on
/// malformed input (recovery treats that as a corrupt record).
WalRecord decode_wal_payload(std::string_view payload);

/// Wraps `payload` in the magic/len/crc frame.
std::string frame_wal_record(std::string_view payload);

/// Appends records to one WAL segment file. sync() is the group-commit
/// barrier — the storage layer calls it once per agreed batch.
class WalWriter {
 public:
  WalWriter(Vfs& vfs, std::string path)
      : path_(std::move(path)), file_(vfs.open_append(path_)) {}

  /// Returns the framed byte count appended.
  std::size_t append(const WalRecord& rec) {
    const std::string framed = frame_wal_record(encode_wal_payload(rec));
    file_->append(framed);
    return framed.size();
  }

  void sync() { file_->sync(); }

  std::uint64_t size() const { return file_->size(); }

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::unique_ptr<VfsFile> file_;
};

struct WalScanStats {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  /// 1 when a torn tail was truncated away.
  std::uint64_t torn_tail_truncated = 0;
  /// Complete-but-corrupt frames moved to the quarantine file.
  std::uint64_t records_quarantined = 0;
};

/// Scans segment `path`, repairing it in place per the recovery contract
/// above (truncation; corrupt suffix copied to `quarantine_path` when
/// non-empty). Returns the clean prefix of records.
std::vector<WalRecord> scan_wal(Vfs& vfs, const std::string& path,
                                const std::string& quarantine_path,
                                WalScanStats* stats);

}  // namespace prog::dur
