#include "dur/wal.hpp"

#include <cstring>
#include <limits>

#include "dur/crc32c.hpp"

namespace prog::dur {

namespace {

constexpr std::uint32_t kMagic = 0x314C5750u;  // "PWL1", little-endian
constexpr std::size_t kFrameHeader = 12;       // magic + len + crc
/// Upper bound on a single payload — far above any real batch, low enough
/// that a garbage length field cannot masquerade as a torn tail.
constexpr std::uint32_t kMaxPayload = 64u << 20;

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::uint8_t u8() { return read<std::uint8_t>(); }

  bool done() const noexcept { return pos_ == data_.size(); }

 private:
  template <typename T>
  T read() {
    if (data_.size() - pos_ < sizeof(T)) {
      throw IoError("wal payload: truncated field");
    }
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string encode_wal_payload(const WalRecord& rec) {
  std::string out;
  put_u64(out, rec.seq);
  put_u64(out, rec.term);
  put_u64(out, rec.command);
  put_u64(out, rec.state_hash);
  put_u32(out, static_cast<std::uint32_t>(rec.batch.size()));
  for (const sched::TxRequest& r : rec.batch) {
    put_u32(out, r.proc);
    put_u64(out, r.tag);
    put_u32(out, static_cast<std::uint32_t>(r.input.args.size()));
    for (const lang::Arg& a : r.input.args) {
      out.push_back(a.is_array ? '\1' : '\0');
      if (a.is_array) {
        put_u32(out, static_cast<std::uint32_t>(a.array.size()));
        for (const Value v : a.array) put_i64(out, v);
      } else {
        put_i64(out, a.scalar);
      }
    }
    // client_pred and recon_fresh are deliberately not persisted: both are
    // execution-time hints the engine can recompute; neither affects the
    // deterministic outcome of the batch.
  }
  return out;
}

WalRecord decode_wal_payload(std::string_view payload) {
  Cursor c(payload);
  WalRecord rec;
  rec.seq = c.u64();
  rec.term = c.u64();
  rec.command = c.u64();
  rec.state_hash = c.u64();
  const std::uint32_t n = c.u32();
  if (n > kMaxPayload / 8) throw IoError("wal payload: absurd batch size");
  rec.batch.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    sched::TxRequest r;
    r.proc = c.u32();
    r.tag = c.u64();
    const std::uint32_t nargs = c.u32();
    if (nargs > kMaxPayload / 8) throw IoError("wal payload: absurd arg count");
    for (std::uint32_t a = 0; a < nargs; ++a) {
      const std::uint8_t is_array = c.u8();
      if (is_array != 0) {
        const std::uint32_t len = c.u32();
        if (len > kMaxPayload / 8) {
          throw IoError("wal payload: absurd array length");
        }
        std::vector<Value> vs;
        vs.reserve(len);
        for (std::uint32_t k = 0; k < len; ++k) vs.push_back(c.i64());
        r.input.add_array(std::move(vs));
      } else {
        r.input.add(c.i64());
      }
    }
    rec.batch.push_back(std::move(r));
  }
  if (!c.done()) throw IoError("wal payload: trailing bytes");
  return rec;
}

std::string frame_wal_record(std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeader + payload.size());
  put_u32(out, kMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32c(payload));
  out.append(payload);
  return out;
}

std::vector<WalRecord> scan_wal(Vfs& vfs, const std::string& path,
                                const std::string& quarantine_path,
                                WalScanStats* stats) {
  WalScanStats local;
  WalScanStats& st = stats != nullptr ? *stats : local;
  std::vector<WalRecord> out;
  if (!vfs.exists(path)) return out;
  const std::string data = vfs.read_all(path);

  std::size_t pos = 0;
  bool torn = false;
  bool corrupt = false;
  while (pos < data.size()) {
    if (data.size() - pos < kFrameHeader) {
      torn = true;  // header itself in flight at the crash
      break;
    }
    std::uint32_t magic = 0, len = 0, crc = 0;
    std::memcpy(&magic, data.data() + pos, 4);
    std::memcpy(&len, data.data() + pos + 4, 4);
    std::memcpy(&crc, data.data() + pos + 8, 4);
    if (magic != kMagic || len > kMaxPayload) {
      corrupt = true;  // framing lost — not a clean tail
      break;
    }
    if (data.size() - pos - kFrameHeader < len) {
      torn = true;  // payload cut off by the crash
      break;
    }
    const std::string_view payload(data.data() + pos + kFrameHeader, len);
    if (crc32c(payload) != crc) {
      corrupt = true;
      break;
    }
    WalRecord rec;
    try {
      rec = decode_wal_payload(payload);
    } catch (const IoError&) {
      corrupt = true;  // CRC collision / writer bug: same quarantine path
      break;
    }
    out.push_back(std::move(rec));
    pos += kFrameHeader + len;
    ++st.records;
    st.bytes += kFrameHeader + len;
  }

  if (pos < data.size()) {
    if (corrupt && !quarantine_path.empty()) {
      // Keep the bad suffix for forensics before chopping it off.
      auto q = vfs.open_append(quarantine_path);
      q->append(std::string_view(data).substr(pos));
      q->sync();
      ++st.records_quarantined;
    }
    if (torn) ++st.torn_tail_truncated;
    vfs.truncate(path, pos);
  }
  return out;
}

}  // namespace prog::dur
