// Deterministic in-memory VFS with a power-fail model and seeded faults.
//
// Every file carries two byte strings: `data`, what the process sees, and
// `synced`, what the (simulated) platter holds — append() extends only
// `data`; sync() promotes the tail to `synced`. A *power failure*
// (power_fail) discards everything that never reached the platter, which is
// exactly the contract fsync-based recovery code must be correct against.
//
// Fault injection is armed per directory prefix (one replica's storage) and
// is a pure function of the construction seed:
//
//   - kill-at-syscall: after the k-th counted mutation syscall under the
//     armed prefix, the VFS freezes its notion of the platter. The process
//     keeps "running" (subsequent writes and fsyncs appear to succeed) but
//     nothing after the freeze is durable — the moment of death was syscall
//     k, and power_fail restores the platter as of that moment;
//   - kTornTail: the unsynced tail in flight at death partially reaches the
//     platter — a random-length byte prefix survives, typically cutting a
//     WAL frame in half (recovery must truncate it);
//   - kPartialWrite: the tail's full length reaches the platter but a
//     random suffix of it is zero-filled — the sector header landed, the
//     payload did not (recovery must quarantine the corrupt frame);
//   - kBitFlip: the whole tail lands but one random bit is inverted
//     (recovery's CRC must catch it and quarantine the record);
//   - kFsyncNoop: from arming onward the drive acknowledges fsync without
//     persisting — even records the application believes durable are gone
//     (recovery falls back to an older checkpoint + leader catch-up).
//
// Without arming, FaultVfs is just a deterministic in-memory file system
// (process crashes keep `data`; only power_fail drops to `synced`).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "dur/vfs.hpp"

namespace prog::dur {

enum class FaultMode : std::uint8_t {
  kNone,          ///< clean power fail: unsynced tail fully lost
  kTornTail,      ///< random prefix of the unsynced tail survives
  kPartialWrite,  ///< tail survives full-length with a zeroed suffix
  kBitFlip,       ///< tail survives with one bit inverted
  kFsyncNoop,     ///< fsyncs acknowledged but ignored from arm() onward
};

const char* to_string(FaultMode m) noexcept;

struct FaultPlan {
  FaultMode mode = FaultMode::kNone;
  /// Counted mutation syscalls (append/sync/rename/truncate/remove under
  /// the armed prefix) before the freeze point. 0 = freeze at power_fail.
  std::uint64_t crash_after_syscalls = 0;
};

class FaultFile;

class FaultVfs final : public Vfs {
 public:
  explicit FaultVfs(std::uint64_t seed) : rng_(seed) {}

  // --- Vfs -----------------------------------------------------------------
  std::unique_ptr<VfsFile> open_append(const std::string& path) override;
  std::string read_all(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  void remove(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void mkdirs(const std::string& /*dir*/) override {}  // flat namespace
  void sync_dir(const std::string& dir) override { count_syscall(dir); }

  // --- fault injection ------------------------------------------------------
  /// Arms `plan` for every path under `prefix`. Replaces any previous plan.
  void arm(const std::string& prefix, FaultPlan plan);

  /// Simulates pulling the plug on the storage under `prefix`: every file
  /// reverts to its platter image as of the freeze point (or as of now if
  /// the syscall budget never ran out), with the armed fault mode applied
  /// to the in-flight tail. Disarms.
  void power_fail(const std::string& prefix);

  /// XORs `mask` into the byte at `offset` of `path`, platter and process
  /// view both — a directed corruption for tests (a latent media error, not
  /// a crash artifact). Throws IoError if out of range.
  void corrupt(const std::string& path, std::uint64_t offset,
               std::uint8_t mask);

  /// True once the armed syscall budget has run out (the process is dead
  /// storage-wise; only power_fail + recovery brings the prefix back).
  bool crash_triggered() const {
    std::lock_guard<std::mutex> lk(mu_);
    return frozen_;
  }
  std::uint64_t syscalls() const {
    std::lock_guard<std::mutex> lk(mu_);
    return syscalls_;
  }

  /// Simulated fsync latency: every file sync() sleeps this long before
  /// acknowledging (0 = instant, the default). Models a real drive's
  /// flush-barrier cost so the pipeline bench can sweep fsync latency
  /// deterministically on the in-memory VFS. Thread-safe (relaxed atomic):
  /// the async commit queue syncs from its own thread.
  void set_sync_delay(std::uint64_t micros) noexcept {
    sync_delay_us_.store(micros, std::memory_order_relaxed);
  }
  std::uint64_t sync_delay() const noexcept {
    return sync_delay_us_.load(std::memory_order_relaxed);
  }

 private:
  struct FileState {
    std::string data;    ///< what the process reads back
    std::string synced;  ///< what survives a power failure
  };

  friend class FaultFile;

  // All private helpers assume mu_ is held. The async commit queues
  // (DESIGN.md §14) write through the Vfs from their own threads while the
  // sim thread persists metadata and checkpoints, so every public entry
  // point locks.
  void count_syscall(const std::string& path);
  bool under_armed(const std::string& path) const {
    return armed_.has_value() && path.rfind(armed_->first, 0) == 0;
  }
  FileState& state_of(const std::string& path);

  mutable std::mutex mu_;
  Rng rng_;
  std::map<std::string, FileState> files_;
  /// (prefix, plan) while armed.
  std::optional<std::pair<std::string, FaultPlan>> armed_;
  std::uint64_t syscalls_ = 0;     ///< counted since the last arm()
  bool frozen_ = false;            ///< syscall budget exhausted
  std::atomic<std::uint64_t> sync_delay_us_{0};
  /// Platter images captured at the freeze point (path -> state).
  std::map<std::string, FileState> death_image_;
};

}  // namespace prog::dur
