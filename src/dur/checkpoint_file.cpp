#include "dur/checkpoint_file.hpp"

#include <array>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "dur/crc32c.hpp"

namespace prog::dur {

namespace {

constexpr const char* kHeader = "progckpt v1";

[[noreturn]] void malformed(const std::string& why) {
  throw IoError("checkpoint file: " + why);
}

/// The 16 deterministic engine counters in their fixed v1 order. Appending
/// new fields requires a format bump — the golden-file test locks this.
std::array<std::uint64_t, 16> stats_fields(const sched::EngineStats& s) {
  return {s.batches,
          s.committed,
          s.rolled_back,
          s.validation_aborts,
          s.rounds,
          s.mf_fallback_txns,
          s.mf_fallback_batches,
          s.committed_by_class[0],
          s.committed_by_class[1],
          s.committed_by_class[2],
          s.rolled_back_by_class[0],
          s.rolled_back_by_class[1],
          s.rolled_back_by_class[2],
          s.validation_aborts_by_class[0],
          s.validation_aborts_by_class[1],
          s.validation_aborts_by_class[2]};
}

sched::EngineStats stats_from_fields(const std::array<std::uint64_t, 16>& f) {
  sched::EngineStats s;
  s.batches = f[0];
  s.committed = f[1];
  s.rolled_back = f[2];
  s.validation_aborts = f[3];
  s.rounds = f[4];
  s.mf_fallback_txns = f[5];
  s.mf_fallback_batches = f[6];
  for (std::size_t c = 0; c < 3; ++c) {
    s.committed_by_class[c] = f[7 + c];
    s.rolled_back_by_class[c] = f[10 + c];
    s.validation_aborts_by_class[c] = f[13 + c];
  }
  return s;
}

}  // namespace

std::string encode_checkpoint(const CheckpointImage& cp) {
  std::ostringstream os;
  os << kHeader << '\n';
  os << "seq " << cp.seq << " term " << cp.term << " hash " << cp.state_hash
     << '\n';
  os << "stats";
  for (const std::uint64_t v : stats_fields(cp.engine_stats)) os << ' ' << v;
  os << '\n';
  os << "prefix " << cp.command_prefix.size();
  for (const std::uint64_t c : cp.command_prefix) os << ' ' << c;
  os << '\n';
  os << "image " << cp.image.size() << '\n';
  os << cp.image;
  std::string out = os.str();
  char crc[16];
  std::snprintf(crc, sizeof crc, "crc %08x\n", crc32c(out));
  out += crc;
  return out;
}

CheckpointImage decode_checkpoint(const std::string& bytes) {
  // Footer first: the CRC covers everything before the "crc " line, so a
  // flipped bit anywhere — headers or image — fails here.
  constexpr std::size_t kFooter = 13;  // "crc xxxxxxxx\n"
  if (bytes.size() < kFooter) malformed("too short");
  const std::string_view footer(bytes.data() + bytes.size() - kFooter,
                                kFooter);
  if (footer.substr(0, 4) != "crc " || footer.back() != '\n') {
    malformed("missing crc footer");
  }
  std::uint32_t want = 0;
  const auto [ptr, ec] = std::from_chars(
      footer.data() + 4, footer.data() + 12, want, 16);
  if (ec != std::errc() || ptr != footer.data() + 12) {
    malformed("bad crc footer");
  }
  const std::string_view body(bytes.data(), bytes.size() - kFooter);
  if (crc32c(body) != want) malformed("crc mismatch");

  std::istringstream is{std::string(body)};
  std::string line;
  if (!std::getline(is, line) || line != kHeader) malformed("bad header");

  CheckpointImage cp;
  std::string word;
  if (!(is >> word >> cp.seq) || word != "seq") malformed("bad seq");
  if (!(is >> word >> cp.term) || word != "term") malformed("bad term");
  if (!(is >> word >> cp.state_hash) || word != "hash") malformed("bad hash");

  if (!(is >> word) || word != "stats") malformed("bad stats");
  std::array<std::uint64_t, 16> fields{};
  for (std::uint64_t& f : fields) {
    if (!(is >> f)) malformed("truncated stats");
  }
  cp.engine_stats = stats_from_fields(fields);

  std::size_t prefix_count = 0;
  if (!(is >> word >> prefix_count) || word != "prefix") {
    malformed("bad prefix");
  }
  cp.command_prefix.reserve(prefix_count);
  for (std::size_t i = 0; i < prefix_count; ++i) {
    std::uint64_t c = 0;
    if (!(is >> c)) malformed("truncated prefix");
    cp.command_prefix.push_back(c);
  }

  std::size_t image_bytes = 0;
  if (!(is >> word >> image_bytes) || word != "image") malformed("bad image");
  if (!std::getline(is, line)) malformed("missing image body");  // eat '\n'
  const std::size_t image_off = static_cast<std::size_t>(is.tellg());
  if (image_off + image_bytes != body.size()) {
    malformed("image length disagrees with file size");
  }
  cp.image.assign(body.substr(image_off, image_bytes));
  return cp;
}

std::size_t write_checkpoint_file(Vfs& vfs, const std::string& dir,
                                  const std::string& path,
                                  const CheckpointImage& cp) {
  const std::string bytes = encode_checkpoint(cp);
  const std::string tmp = path + ".tmp";
  if (vfs.exists(tmp)) vfs.remove(tmp);
  {
    auto f = vfs.open_append(tmp);
    f->append(bytes);
    f->sync();
  }
  vfs.rename(tmp, path);
  vfs.sync_dir(dir);
  return bytes.size();
}

}  // namespace prog::dur
