// Virtual file system — the durability subsystem's only OS boundary.
//
// Everything the WAL and checkpoint code does to "disk" goes through this
// narrow interface: append-only writes, explicit fsync, atomic rename
// publication, directory listing and directory fsync. Two implementations:
//
//   - PosixVfs (vfs.cpp): the real thing — open/write/fsync/rename against
//     the host file system. Used by benches and any out-of-simulation
//     deployment of the durable replica storage.
//   - FaultVfs (fault_vfs.hpp): a deterministic in-memory file system with a
//     power-fail model (data survives only as far as the last acknowledged
//     fsync) and seeded fault injection — torn tails, partial sector writes,
//     bit flips, lying fsyncs, crash-at-the-k-th-syscall. The chaos /
//     crash-recovery fuzzing layer runs entirely on it.
//
// The interface is deliberately smaller than POSIX: no positional writes
// (the WAL is append-only; checkpoints are write-temp-then-rename), reads
// materialize the whole file (recovery scans everything it reads anyway),
// and paths are plain '/'-separated strings with no cwd semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace prog::dur {

/// Thrown when the underlying (real or simulated) file system fails an
/// operation: short write, failed fsync, missing file. The durable storage
/// layer treats these as survivable — a record that did not make it to disk
/// is simply not durable; recovery falls back to the checkpoint chain and
/// the leader.
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// An open file handle. Append-only writing plus whole-file reads — see the
/// header comment for why the interface is this small.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Appends `data` at the end of the file. Throws IoError on failure; a
  /// partial-write failure may leave a prefix of `data` in place (exactly
  /// like a real crash mid-write) — callers that need atomicity must frame
  /// and checksum their records.
  virtual void append(std::string_view data) = 0;

  /// Durability barrier: on return, every previously appended byte survives
  /// a power failure — unless the (simulated) drive lies, which is one of
  /// the injected fault modes recovery must tolerate. Throws IoError.
  virtual void sync() = 0;

  virtual std::uint64_t size() const = 0;
};

class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` for appending, creating it if absent.
  virtual std::unique_ptr<VfsFile> open_append(const std::string& path) = 0;

  /// Reads the entire file. Throws IoError if it does not exist.
  virtual std::string read_all(const std::string& path) = 0;

  virtual bool exists(const std::string& path) = 0;

  /// Names (not paths) of the entries directly under `dir`, sorted — the
  /// deterministic recovery scan depends on the ordering.
  virtual std::vector<std::string> list(const std::string& dir) = 0;

  virtual void remove(const std::string& path) = 0;

  /// Atomic publication: `to` either keeps its old content or has `from`'s,
  /// never a mixture. The checkpoint write protocol is write-temp + sync +
  /// rename + sync_dir.
  virtual void rename(const std::string& from, const std::string& to) = 0;

  /// Truncates `path` to `size` bytes (recovery chops torn WAL tails).
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;

  /// Makes `dir` (and parents) exist.
  virtual void mkdirs(const std::string& dir) = 0;

  /// Durability barrier for the directory entry metadata (created/renamed/
  /// removed names) of `dir`.
  virtual void sync_dir(const std::string& dir) = 0;
};

/// The real file system. Stateless; construct freely.
class PosixVfs final : public Vfs {
 public:
  std::unique_ptr<VfsFile> open_append(const std::string& path) override;
  std::string read_all(const std::string& path) override;
  bool exists(const std::string& path) override;
  std::vector<std::string> list(const std::string& dir) override;
  void remove(const std::string& path) override;
  void rename(const std::string& from, const std::string& to) override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void mkdirs(const std::string& dir) override;
  void sync_dir(const std::string& dir) override;
};

}  // namespace prog::dur
