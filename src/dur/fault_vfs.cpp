#include "dur/fault_vfs.hpp"

#include <chrono>
#include <mutex>
#include <set>
#include <thread>

namespace prog::dur {

const char* to_string(FaultMode m) noexcept {
  switch (m) {
    case FaultMode::kNone:
      return "none";
    case FaultMode::kTornTail:
      return "torn_tail";
    case FaultMode::kPartialWrite:
      return "partial_write";
    case FaultMode::kBitFlip:
      return "bit_flip";
    case FaultMode::kFsyncNoop:
      return "fsync_noop";
  }
  return "?";
}

class FaultFile final : public VfsFile {
 public:
  FaultFile(FaultVfs& vfs, std::string path)
      : vfs_(vfs), path_(std::move(path)) {}

  void append(std::string_view data) override;
  void sync() override;
  std::uint64_t size() const override;

 private:
  FaultVfs& vfs_;
  std::string path_;
};

FaultVfs::FileState& FaultVfs::state_of(const std::string& path) {
  return files_[path];
}

void FaultVfs::count_syscall(const std::string& path) {
  if (frozen_ || !under_armed(path)) return;
  ++syscalls_;
  const FaultPlan& plan = armed_->second;
  if (plan.crash_after_syscalls > 0 && syscalls_ >= plan.crash_after_syscalls) {
    // Moment of death: capture the platter (and the in-flight process view,
    // whose unsynced tail the fault mode will operate on) for every file
    // under the armed prefix. Everything the process does afterwards is
    // volatile by construction.
    frozen_ = true;
    death_image_.clear();
    const std::string& prefix = armed_->first;
    for (const auto& [p, st] : files_) {
      if (p.rfind(prefix, 0) == 0) death_image_.emplace(p, st);
    }
  }
}

std::unique_ptr<VfsFile> FaultVfs::open_append(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  if (files_.find(path) == files_.end()) {
    files_.emplace(path, FileState{});
    count_syscall(path);  // creation mutates the directory
  }
  return std::make_unique<FaultFile>(*this, path);
}

std::string FaultVfs::read_all(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) throw IoError("read_all: no such file: " + path);
  return it->second.data;
}

bool FaultVfs::exists(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  return files_.find(path) != files_.end();
}

std::vector<std::string> FaultVfs::list(const std::string& dir) {
  std::lock_guard<std::mutex> lk(mu_);
  const std::string prefix = dir.empty() || dir.back() == '/' ? dir : dir + "/";
  std::set<std::string> names;
  for (const auto& [p, st] : files_) {
    if (p.rfind(prefix, 0) != 0) continue;
    const std::string rest = p.substr(prefix.size());
    const std::size_t slash = rest.find('/');
    names.insert(slash == std::string::npos ? rest : rest.substr(0, slash));
  }
  return {names.begin(), names.end()};
}

void FaultVfs::remove(const std::string& path) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) throw IoError("remove: no such file: " + path);
  files_.erase(it);
  count_syscall(path);
}

void FaultVfs::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(from);
  if (it == files_.end()) throw IoError("rename: no such file: " + from);
  FileState st = std::move(it->second);
  files_.erase(it);
  files_[to] = std::move(st);
  count_syscall(to);
}

void FaultVfs::truncate(const std::string& path, std::uint64_t size) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) throw IoError("truncate: no such file: " + path);
  FileState& st = it->second;
  if (size < st.data.size()) st.data.resize(static_cast<std::size_t>(size));
  if (size < st.synced.size()) {
    st.synced.resize(static_cast<std::size_t>(size));
  }
  count_syscall(path);
}

void FaultVfs::arm(const std::string& prefix, FaultPlan plan) {
  std::lock_guard<std::mutex> lk(mu_);
  armed_.emplace(prefix, plan);
  syscalls_ = 0;
  frozen_ = false;
  death_image_.clear();
}

void FaultVfs::power_fail(const std::string& prefix) {
  std::lock_guard<std::mutex> lk(mu_);
  // Death snapshot: the freeze-point capture, or the current state when the
  // syscall budget never ran out (death is "now").
  std::map<std::string, FileState> dead;
  if (frozen_) {
    dead = std::move(death_image_);
  } else {
    for (const auto& [p, st] : files_) {
      if (p.rfind(prefix, 0) == 0) dead.emplace(p, st);
    }
  }
  const FaultMode mode =
      armed_.has_value() ? armed_->second.mode : FaultMode::kNone;

  // Drop every live file under the prefix (files created after the freeze
  // point never existed on the platter), then reconstruct the survivors.
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      it = files_.erase(it);
    } else {
      ++it;
    }
  }

  for (auto& [path, st] : dead) {
    std::string durable = st.synced;
    // The unsynced tail in flight at the moment of death.
    std::string tail = st.data.size() > st.synced.size()
                           ? st.data.substr(st.synced.size())
                           : std::string();
    switch (mode) {
      case FaultMode::kNone:
      case FaultMode::kFsyncNoop:
        break;  // tail fully lost
      case FaultMode::kTornTail: {
        const std::size_t keep =
            static_cast<std::size_t>(rng_.bounded(tail.size() + 1));
        durable += tail.substr(0, keep);
        break;
      }
      case FaultMode::kPartialWrite: {
        if (!tail.empty()) {
          const std::size_t cut =
              static_cast<std::size_t>(rng_.bounded(tail.size()));
          for (std::size_t i = cut; i < tail.size(); ++i) tail[i] = '\0';
          durable += tail;
        }
        break;
      }
      case FaultMode::kBitFlip: {
        if (!tail.empty()) {
          const std::size_t pos =
              static_cast<std::size_t>(rng_.bounded(tail.size()));
          tail[pos] = static_cast<char>(
              tail[pos] ^ static_cast<char>(1u << rng_.bounded(8)));
        }
        durable += tail;
        break;
      }
    }
    FileState fresh;
    fresh.data = durable;
    fresh.synced = std::move(durable);
    files_[path] = std::move(fresh);
  }

  armed_.reset();
  frozen_ = false;
  syscalls_ = 0;
  death_image_.clear();
}

void FaultVfs::corrupt(const std::string& path, std::uint64_t offset,
                       std::uint8_t mask) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) throw IoError("corrupt: no such file: " + path);
  FileState& st = it->second;
  if (offset >= st.data.size()) {
    throw IoError("corrupt: offset out of range: " + path);
  }
  st.data[static_cast<std::size_t>(offset)] = static_cast<char>(
      st.data[static_cast<std::size_t>(offset)] ^ static_cast<char>(mask));
  if (offset < st.synced.size()) {
    st.synced[static_cast<std::size_t>(offset)] = static_cast<char>(
        st.synced[static_cast<std::size_t>(offset)] ^
        static_cast<char>(mask));
  }
}

// --- FaultFile ---------------------------------------------------------------

void FaultFile::append(std::string_view data) {
  std::lock_guard<std::mutex> lk(vfs_.mu_);
  FaultVfs::FileState& st = vfs_.state_of(path_);
  st.data.append(data.data(), data.size());
  vfs_.count_syscall(path_);
}

void FaultFile::sync() {
  // The simulated flush-barrier latency sleeps OUTSIDE the lock: each
  // replica's commit-queue thread models its own drive, so concurrent
  // fsyncs must overlap instead of serializing behind one another.
  const std::uint64_t delay = vfs_.sync_delay();
  if (delay > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay));
  }
  std::lock_guard<std::mutex> lk(vfs_.mu_);
  FaultVfs::FileState& st = vfs_.state_of(path_);
  const bool lying = vfs_.armed_.has_value() &&
                     vfs_.under_armed(path_) &&
                     vfs_.armed_->second.mode == FaultMode::kFsyncNoop;
  if (!vfs_.frozen_ && !lying) st.synced = st.data;
  vfs_.count_syscall(path_);
}

std::uint64_t FaultFile::size() const {
  std::lock_guard<std::mutex> lk(vfs_.mu_);
  return vfs_.state_of(path_).data.size();
}

}  // namespace prog::dur
