// Async group-commit queue: stage D of the pipelined replica apply
// (DESIGN.md §14).
//
// The apply thread hands each agreed batch's WalRecord to push(), which
// returns as soon as the record is enqueued — the fsync barrier no longer
// sits on the apply critical path. A dedicated durability thread drains the
// queue: it swaps out *everything* pending, appends each record without a
// barrier (DurableReplicaStorage::append_batch_nosync), then issues ONE
// sync_wal() for the whole group — the classic group-commit coalescing, now
// across batches instead of across transactions. After the barrier it emits
// one kWalFsync span per traced record (stamped before the watermark moves:
// the span validator's fsync ≤ ack rule leans on that order) and advances
// the durable watermark to the last drained sequence. Client acks and
// checkpoint publication gate on the watermark, never on raw queue state.
//
// Backpressure: push() blocks while `window` records are pending (the
// bounded in-flight window == EngineConfig::pipeline_depth), counting each
// blocked entry in queue_full_waits — the pipeline stall telemetry reads it.
//
// Failure semantics: a failed sync_wal() still advances the watermark. The
// alternative (holding the watermark back) deadlocks every flush() and ack
// behind an unrecoverable barrier; treating it as a lying drive — records
// possibly not durable, recovery's checkpoint chain + leader catch-up covers
// the loss — matches what the fault-injection model (kFsyncNoop) already
// forces recovery to survive.
//
// Lifecycle: the destructor drains gracefully (clean shutdown keeps the
// cold-start contract: everything acked is on the platter). stop_discard()
// is the crash path — pending unsynced records are dropped on the floor,
// exactly what process death does to an OS write-back queue. pause()/
// resume() freeze the drain for tests that need a replica alive but not
// fsyncing (the ack-semantics chaos test kills it in that window).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "dur/storage.hpp"

namespace prog::dur {

class DurableCommitQueue {
 public:
  /// `window` bounds the pending records before push() blocks (>= 1).
  /// `initial_watermark` seeds the durable watermark — the recovered final
  /// sequence on restart, 0 on a blank directory. `storage` must outlive
  /// the queue and is touched only from the queue's own thread after
  /// construction (callers must flush() before using it directly, e.g. for
  /// persist_checkpoint, which rotates the WAL tail under the queue).
  DurableCommitQueue(DurableReplicaStorage& storage, std::uint32_t replica,
                     std::size_t window, std::uint64_t initial_watermark);
  ~DurableCommitQueue();

  DurableCommitQueue(const DurableCommitQueue&) = delete;
  DurableCommitQueue& operator=(const DurableCommitQueue&) = delete;

  /// Enqueues one agreed batch for async append+fsync. Blocks while the
  /// in-flight window is full. `traced` requests a kWalFsync span for this
  /// record after its group's barrier.
  void push(WalRecord rec, bool traced);

  /// Highest batch sequence the durability thread has pushed through a
  /// group-commit barrier (monotone; see the header note on failed syncs).
  std::uint64_t watermark() const noexcept {
    return watermark_.load(std::memory_order_acquire);
  }

  /// Highest batch sequence ever handed to push() (== the watermark once
  /// the queue drains). The ack path uses it to tell "still replicating in
  /// virtual time" from "applied, only the fsync barrier outstanding" — the
  /// latter is the only state worth blocking wall-clock time on.
  std::uint64_t pushed_mark() const noexcept {
    return pushed_mark_.load(std::memory_order_acquire);
  }

  /// Blocks until watermark() >= seq, the queue stops, or `timeout`
  /// elapses; returns watermark() >= seq. Event-driven (condition variable,
  /// not polling): the durable-ack wait parks here for exactly the fsync
  /// latency instead of burning sleep quanta. A paused queue simply times
  /// out — callers bound their total wait.
  bool wait_watermark(std::uint64_t seq, std::chrono::microseconds timeout);

  /// Blocks until every record pushed so far has gone through its barrier.
  /// Required before any direct storage access that moves the WAL tail
  /// (persist_checkpoint). Deadlocks if called while paused — resume first.
  void flush();

  /// Test hooks: freeze / unfreeze the drain. Paused, records accumulate
  /// (push() still blocks at the window) and the watermark stands still —
  /// the agree-but-not-durable window the ack-semantics chaos test targets.
  void pause();
  void resume();

  /// Crash semantics: stops the thread and discards pending (never-synced)
  /// records. The queue is dead afterwards; destroy it.
  void stop_discard();

  /// Times push() found the window full and had to block (stall telemetry).
  std::uint64_t queue_full_waits() const noexcept {
    return queue_full_waits_.load(std::memory_order_relaxed);
  }

 private:
  struct Item {
    WalRecord rec;
    bool traced = false;
  };

  void run();

  DurableReplicaStorage& storage_;
  const std::uint32_t replica_;
  const std::size_t window_;

  std::mutex mu_;
  std::condition_variable cv_worker_;  ///< wakes the durability thread
  std::condition_variable cv_caller_; ///< wakes push()/flush() waiters
  std::vector<Item> pending_;
  bool stop_ = false;
  bool discard_ = false;
  bool paused_ = false;
  bool draining_ = false;  ///< worker is mid-group (swapped out, not synced)

  std::atomic<std::uint64_t> watermark_;
  std::atomic<std::uint64_t> pushed_mark_;
  std::atomic<std::uint64_t> queue_full_waits_{0};

  std::thread thread_;  ///< last: joins against everything above
};

}  // namespace prog::dur
