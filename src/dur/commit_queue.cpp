#include "dur/commit_queue.hpp"

#include <utility>

#include "common/stopwatch.hpp"
#include "obs/tracing/tracing.hpp"

namespace prog::dur {

DurableCommitQueue::DurableCommitQueue(DurableReplicaStorage& storage,
                                       std::uint32_t replica,
                                       std::size_t window,
                                       std::uint64_t initial_watermark)
    : storage_(storage),
      replica_(replica),
      window_(window == 0 ? 1 : window),
      watermark_(initial_watermark),
      pushed_mark_(initial_watermark),
      thread_([this] { run(); }) {}

DurableCommitQueue::~DurableCommitQueue() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;       // graceful: run() drains what is pending first
    paused_ = false;
    cv_worker_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void DurableCommitQueue::push(WalRecord rec, bool traced) {
  std::unique_lock<std::mutex> lk(mu_);
  if (stop_) return;  // shutting down: the record can no longer become durable
  if (pending_.size() >= window_) {
    queue_full_waits_.fetch_add(1, std::memory_order_relaxed);
    cv_caller_.wait(lk, [this] { return pending_.size() < window_ || stop_; });
    if (stop_) return;
  }
  pushed_mark_.store(rec.seq, std::memory_order_release);
  pending_.push_back(Item{std::move(rec), traced});
  cv_worker_.notify_one();
}

bool DurableCommitQueue::wait_watermark(std::uint64_t seq,
                                        std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lk(mu_);
  cv_caller_.wait_for(lk, timeout, [this, seq] {
    return watermark_.load(std::memory_order_acquire) >= seq || stop_;
  });
  return watermark_.load(std::memory_order_acquire) >= seq;
}

void DurableCommitQueue::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_caller_.wait(lk, [this] {
    return (pending_.empty() && !draining_) || stop_;
  });
}

void DurableCommitQueue::pause() {
  std::unique_lock<std::mutex> lk(mu_);
  paused_ = true;
}

void DurableCommitQueue::resume() {
  std::unique_lock<std::mutex> lk(mu_);
  paused_ = false;
  cv_worker_.notify_all();
}

void DurableCommitQueue::stop_discard() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stop_ = true;
    discard_ = true;
    paused_ = false;
    pending_.clear();  // never-synced records die with the "process"
    cv_worker_.notify_all();
    cv_caller_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
}

void DurableCommitQueue::run() {
  for (;;) {
    std::vector<Item> group;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_worker_.wait(lk, [this] {
        return (!pending_.empty() && !paused_) || stop_;
      });
      if (stop_ && (discard_ || pending_.empty())) return;
      if (paused_ && !stop_) continue;
      group.swap(pending_);
      draining_ = true;
      cv_caller_.notify_all();  // the window just emptied
    }

    // One barrier for the whole group — the group-commit coalescing.
    std::vector<std::size_t> bytes(group.size(), 0);
    for (std::size_t i = 0; i < group.size(); ++i) {
      bytes[i] = storage_.append_batch_nosync(group[i].rec);
    }
    Stopwatch sw;
    storage_.sync_wal();  // false ≡ lying drive; see header
    const std::int64_t sync_us = sw.elapsed_micros();

    // Spans BEFORE the watermark moves: the ack path emits kAckDurable only
    // after it observes the watermark, so every fsync stamp precedes every
    // ack stamp — the validator's rule 7.
    for (std::size_t i = 0; i < group.size(); ++i) {
      if (!group[i].traced || !obs::tracing::enabled()) continue;
      obs::tracing::ScopedContext tsc(
          {group[i].rec.seq, replica_, true});
      obs::tracing::SpanEvent ev;
      ev.kind = obs::tracing::SpanKind::kWalFsync;
      ev.batch_seq = group[i].rec.seq;
      ev.replica = replica_;
      ev.dur_us = sync_us;
      ev.arg = bytes[i];
      obs::tracing::emit(ev);
    }
    watermark_.store(group.back().rec.seq, std::memory_order_release);

    {
      std::unique_lock<std::mutex> lk(mu_);
      draining_ = false;
      cv_caller_.notify_all();  // flush()ers and blocked push()ers
    }
  }
}

}  // namespace prog::dur
