// Per-replica durable storage: raft metadata + batch WAL + checkpoint slots.
//
// Directory layout (one directory per replica, on any Vfs):
//
//   meta                      — raft term/vote, CRC'd, atomic rewrite
//   wal-<%016x seq>.wal       — WAL segment holding batches with seq > <seq>
//   ckpt-<%016x seq>-<%016x hash>.ckpt — checkpoint slots (newest K kept)
//   quarantine-<n>.bad        — corrupt WAL suffixes kept for forensics
//
// Write path: every agreed batch is appended to the tail WAL segment and
// fsynced (group commit — one barrier per batch, amortized over all its
// transactions). Every checkpoint is published atomically, opens a fresh
// WAL segment at its boundary, and prunes segments and slots the retention
// policy no longer needs (dual-slot default: the newest two checkpoints
// plus every segment reachable from the older one, so a corrupt newest
// slot still leaves a recoverable chain).
//
// Recovery path (recover()): load meta, decode every checkpoint slot
// (corrupt slots skipped), scan WAL segments with torn-tail truncation and
// corrupt-record quarantine, then stitch the longest contiguous batch
// suffix on top of the newest decodable checkpoint. The caller replays the
// suffix and re-verifies state hashes; anything this layer could not
// salvage is re-fetched from the leader.
//
// All metrics are cold-path and aggregated cluster-wide.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dur/checkpoint_file.hpp"
#include "dur/wal.hpp"
#include "obs/metrics.hpp"

namespace prog::dur {

/// Pre-resolved handles for the durability metric families.
struct DurMetrics {
  obs::Counter* wal_bytes = nullptr;
  obs::Counter* wal_fsyncs = nullptr;
  obs::Counter* wal_records = nullptr;
  obs::Counter* torn_tails_truncated = nullptr;
  obs::Counter* records_quarantined = nullptr;
  obs::Counter* io_errors = nullptr;
  obs::Counter* checkpoints_persisted = nullptr;
  obs::Counter* checkpoint_bytes = nullptr;
  obs::Counter* checkpoint_decode_failures = nullptr;
  obs::Counter* wal_records_replayed = nullptr;
  obs::Counter* replay_hash_mismatches = nullptr;
  /// dur_recovery_total{source=...}: which substrate a restart recovered
  /// from — "checkpoint_wal", "checkpoint", "wal", or "none" (leader).
  obs::Counter* recovery_checkpoint_wal = nullptr;
  obs::Counter* recovery_checkpoint = nullptr;
  obs::Counter* recovery_wal = nullptr;
  obs::Counter* recovery_none = nullptr;

  static DurMetrics create(obs::Registry& reg);
};

struct StorageOptions {
  /// Checkpoint slots retained on disk (>= 1). Two slots survive one
  /// corrupt/torn newest image.
  std::size_t checkpoint_slots = 2;
  /// fsync the WAL after every appended batch (group commit). Off trades
  /// durability of the last batches for speed — recovery still works, it
  /// just finds a shorter WAL.
  bool wal_fsync = true;
};

class DurableReplicaStorage {
 public:
  /// `dir` is created if missing. `metrics` may be nullptr (benches).
  DurableReplicaStorage(Vfs& vfs, std::string dir, StorageOptions opts = {},
                        DurMetrics* metrics = nullptr);

  // --- write path ----------------------------------------------------------
  /// Appends one agreed batch and (optionally) fsyncs — the group-commit
  /// barrier. IoError from the Vfs is absorbed: the record is rolled back
  /// (truncated) so the WAL stays frame-aligned, the io_errors counter
  /// ticks, and the batch is simply not durable here.
  void append_batch(const WalRecord& rec);

  /// Appends one agreed batch WITHOUT the group-commit barrier — the async
  /// commit queue's write half (DESIGN.md §14). Several appends may share
  /// one sync_wal() barrier, which is the whole point of group-commit
  /// coalescing. Emits no tracing span (the queue emits one per record
  /// after the shared sync). IoError is absorbed with the same
  /// truncate-to-frame-boundary rollback as append_batch. Returns the
  /// framed byte count (0 when the append failed and was rolled back).
  std::size_t append_batch_nosync(const WalRecord& rec);

  /// The group-commit barrier for records appended via append_batch_nosync.
  /// Returns false when the file system refused the fsync — for the
  /// caller's durable watermark that is equivalent to a lying drive (one of
  /// the injected fault modes): the records may not be durable, and
  /// recovery's checkpoint chain plus leader catch-up covers the loss.
  bool sync_wal();

  /// Publishes `cp` atomically, rotates the WAL to a fresh segment at the
  /// checkpoint boundary, and prunes slots/segments per retention.
  void persist_checkpoint(const CheckpointImage& cp);

  /// Atomically rewrites the raft term/vote metadata.
  void persist_meta(std::uint64_t term, std::int64_t voted_for);

  // --- recovery ------------------------------------------------------------
  struct Recovered {
    /// All decodable checkpoint slots, oldest first.
    std::vector<CheckpointImage> checkpoints;
    /// Contiguous batch suffix starting right after the newest checkpoint
    /// (or at seq 1 when there is none).
    std::vector<WalRecord> wal;
    std::uint64_t term = 0;
    std::int64_t voted_for = -1;
    bool meta_ok = false;

    const CheckpointImage* newest_checkpoint() const {
      return checkpoints.empty() ? nullptr : &checkpoints.back();
    }
  };

  /// Scans the directory, repairing the WAL in place (truncation +
  /// quarantine). Also re-opens the tail segment for writing, so the
  /// storage object is ready for append_batch immediately after.
  Recovered recover();

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::string wal_path(std::uint64_t start_seq) const;
  std::string ckpt_path(std::uint64_t seq, std::uint64_t hash) const;
  void open_tail(std::uint64_t start_seq);
  void prune(std::uint64_t newest_ckpt_seq);
  void count_io_error();

  Vfs& vfs_;
  std::string dir_;
  StorageOptions opts_;
  DurMetrics* m_;
  std::unique_ptr<WalWriter> tail_;
  std::uint64_t tail_start_ = 0;  ///< segment boundary of the open tail
  std::uint64_t quarantine_n_ = 0;
};

}  // namespace prog::dur
