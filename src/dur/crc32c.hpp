// CRC32C (Castagnoli) — the durability layer's record checksum.
//
// Software slice-by-1 table implementation (reflected polynomial
// 0x82F63B78), table built at static-init time. The WAL frames and
// checkpoint files are read in full at recovery only, so per-byte table
// lookups are nowhere near a hot path; what matters is that the polynomial
// matches the hardware-accelerated CRC32C everything else in the storage
// world uses, so images written here stay verifiable elsewhere.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace prog::dur {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32c_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC32C of `data`, optionally chained from a previous value.
inline std::uint32_t crc32c(std::string_view data, std::uint32_t seed = 0) {
  const auto& table = detail::crc32c_table();
  std::uint32_t crc = ~seed;
  for (const char c : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(c)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace prog::dur
