#include "dur/vfs.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <dirent.h>

namespace prog::dur {

namespace {

[[noreturn]] void fail(const std::string& what, const std::string& path) {
  throw IoError(what + " " + path + ": " + std::strerror(errno));
}

class PosixFile final : public VfsFile {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  void append(std::string_view data) override {
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ::ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        fail("write", path_);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
  }

  void sync() override {
    if (::fsync(fd_) != 0) fail("fsync", path_);
  }

  std::uint64_t size() const override {
    struct ::stat st{};
    if (::fstat(fd_, &st) != 0) fail("fstat", path_);
    return static_cast<std::uint64_t>(st.st_size);
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

std::unique_ptr<VfsFile> PosixVfs::open_append(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) fail("open", path);
  return std::make_unique<PosixFile>(fd, path);
}

std::string PosixVfs::read_all(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    const ::ssize_t n = ::read(fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      fail("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

bool PosixVfs::exists(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::string> PosixVfs::list(const std::string& dir) {
  ::DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) fail("opendir", dir);
  std::vector<std::string> names;
  while (struct ::dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

void PosixVfs::remove(const std::string& path) {
  if (::unlink(path.c_str()) != 0) fail("unlink", path);
}

void PosixVfs::rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) fail("rename", from);
}

void PosixVfs::truncate(const std::string& path, std::uint64_t size) {
  if (::truncate(path.c_str(), static_cast<::off_t>(size)) != 0) {
    fail("truncate", path);
  }
}

void PosixVfs::mkdirs(const std::string& dir) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    const std::size_t end = slash == std::string::npos ? dir.size() : slash;
    prefix = dir.substr(0, end);
    pos = end + 1;
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      fail("mkdir", prefix);
    }
    if (slash == std::string::npos) break;
  }
}

void PosixVfs::sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) fail("open dir", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync dir", dir);
  }
  ::close(fd);
}

}  // namespace prog::dur
