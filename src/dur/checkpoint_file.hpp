// Atomic, self-verifying checkpoint files.
//
// A checkpoint file is one replica state image published atomically:
// write to `<name>.tmp`, sync the bytes, rename into place, sync the
// directory. A reader therefore sees either the complete previous slot or
// the complete new one — never a torn image. Content corruption (bit rot,
// injected faults) is caught by a whole-file CRC32C footer; a checkpoint
// that fails to decode is simply skipped and recovery falls back to the
// next-older slot or to the leader.
//
// On-disk format v1 — text headers, raw image bytes, CRC footer:
//
//   progckpt v1
//   seq <u64> term <u64> hash <u64>
//   stats <16 u64 engine counters, DESIGN.md §12 order>
//   prefix <count> <command>*
//   image <byte-count>
//   <raw canonical state image (store::serialize_visible)>
//   crc <8 lowercase hex digits of crc32c over everything above>
//
// The header fields mirror consensus::Checkpoint exactly; the decoupled
// CheckpointImage struct exists so the durability layer does not depend on
// the consensus module (which sits above it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dur/vfs.hpp"
#include "sched/engine.hpp"

namespace prog::dur {

/// consensus::Checkpoint, flattened for persistence.
struct CheckpointImage {
  std::uint64_t seq = 0;
  std::uint64_t term = 0;
  std::uint64_t state_hash = 0;
  /// Commands (batch ids) applied to reach this state, in order.
  std::vector<std::uint64_t> command_prefix;
  /// Cumulative deterministic engine counters at this boundary.
  sched::EngineStats engine_stats{};
  /// Canonical serialized visible state (store::serialize_visible).
  std::string image;
};

/// Encodes `cp` into the v1 on-disk byte string.
std::string encode_checkpoint(const CheckpointImage& cp);

/// Decodes a v1 checkpoint file. Throws IoError on any malformation or CRC
/// mismatch — recovery treats the slot as unusable and moves on.
CheckpointImage decode_checkpoint(const std::string& bytes);

/// Publishes `cp` atomically as `path` (write `path`.tmp + sync + rename +
/// sync_dir of `dir`). Returns the encoded byte count.
std::size_t write_checkpoint_file(Vfs& vfs, const std::string& dir,
                                  const std::string& path,
                                  const CheckpointImage& cp);

}  // namespace prog::dur
