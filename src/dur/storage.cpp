#include "dur/storage.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <map>
#include <sstream>

#include "common/stopwatch.hpp"
#include "dur/crc32c.hpp"
#include "obs/tracing/tracing.hpp"

namespace prog::dur {

namespace {

constexpr const char* kMetaHeader = "progmeta v1";

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Parses the 16-hex-digit field at `pos` of `name`; nullopt on garbage.
std::optional<std::uint64_t> parse_hex16(const std::string& name,
                                         std::size_t pos) {
  if (name.size() < pos + 16) return std::nullopt;
  std::uint64_t v = 0;
  const char* first = name.data() + pos;
  const auto [ptr, ec] = std::from_chars(first, first + 16, v, 16);
  if (ec != std::errc() || ptr != first + 16) return std::nullopt;
  return v;
}

bool has_prefix(const std::string& s, std::string_view p) {
  return s.rfind(p, 0) == 0;
}

bool has_suffix(const std::string& s, std::string_view p) {
  return s.size() >= p.size() &&
         s.compare(s.size() - p.size(), p.size(), p) == 0;
}

}  // namespace

DurMetrics DurMetrics::create(obs::Registry& reg) {
  // All timing-dependent: what lands on disk (and what recovery salvages)
  // depends on the fault schedule, not on the batch sequence alone.
  DurMetrics m;
  auto c = [&](const char* name, const char* help) {
    return &reg.counter(name, help);
  };
  m.wal_bytes = c("dur_wal_bytes_total", "Framed WAL bytes appended");
  m.wal_fsyncs = c("dur_wal_fsyncs_total", "WAL group-commit fsync barriers");
  m.wal_records = c("dur_wal_records_total", "Batch records appended to WALs");
  m.torn_tails_truncated = c("dur_wal_torn_tails_total",
                             "Torn WAL tails truncated during recovery");
  m.records_quarantined =
      c("dur_wal_records_quarantined_total",
        "Corrupt WAL suffixes moved to quarantine files");
  m.io_errors =
      c("dur_io_errors_total", "Vfs failures absorbed by the write path");
  m.checkpoints_persisted =
      c("dur_checkpoints_persisted_total", "Checkpoint files published");
  m.checkpoint_bytes =
      c("dur_checkpoint_bytes_total", "Encoded checkpoint bytes published");
  m.checkpoint_decode_failures =
      c("dur_checkpoint_decode_failures_total",
        "Checkpoint slots skipped at recovery (CRC/format)");
  m.wal_records_replayed = c("dur_wal_records_replayed_total",
                             "WAL batches re-executed during recovery");
  m.replay_hash_mismatches =
      c("dur_replay_hash_mismatches_total",
        "WAL replays whose state hash disagreed with the record");
  auto src = [&](const char* which) {
    return &reg.counter("dur_recovery_total",
                        "Replica recoveries by durable substrate used",
                        obs::Determinism::kTimingDependent,
                        {{"source", which}});
  };
  m.recovery_checkpoint_wal = src("checkpoint_wal");
  m.recovery_checkpoint = src("checkpoint");
  m.recovery_wal = src("wal");
  m.recovery_none = src("none");
  return m;
}

DurableReplicaStorage::DurableReplicaStorage(Vfs& vfs, std::string dir,
                                             StorageOptions opts,
                                             DurMetrics* metrics)
    : vfs_(vfs), dir_(std::move(dir)), opts_(opts), m_(metrics) {
  vfs_.mkdirs(dir_);
}

std::string DurableReplicaStorage::wal_path(std::uint64_t start_seq) const {
  return dir_ + "/wal-" + hex16(start_seq) + ".wal";
}

std::string DurableReplicaStorage::ckpt_path(std::uint64_t seq,
                                             std::uint64_t hash) const {
  return dir_ + "/ckpt-" + hex16(seq) + "-" + hex16(hash) + ".ckpt";
}

void DurableReplicaStorage::count_io_error() {
  if (m_ != nullptr) m_->io_errors->inc();
}

void DurableReplicaStorage::open_tail(std::uint64_t start_seq) {
  tail_ = std::make_unique<WalWriter>(vfs_, wal_path(start_seq));
  tail_start_ = start_seq;
}

void DurableReplicaStorage::append_batch(const WalRecord& rec) {
  if (tail_ == nullptr) open_tail(tail_start_);
  const std::string& path = tail_->path();
  std::uint64_t pre = 0;
  try {
    // Causal tracing: one kWalFsync span per group-commit barrier, under
    // whatever context the apply path installed (the batch being persisted).
    const bool traced = obs::tracing::enabled() &&
                        obs::tracing::current().sampled;
    Stopwatch sw;
    pre = tail_->size();
    const std::size_t n = tail_->append(rec);
    if (opts_.wal_fsync) {
      tail_->sync();
      if (m_ != nullptr) m_->wal_fsyncs->inc();
    }
    if (traced) {
      const obs::tracing::TraceContext& tctx = obs::tracing::current();
      obs::tracing::SpanEvent ev;
      ev.kind = obs::tracing::SpanKind::kWalFsync;
      ev.batch_seq = tctx.batch_seq;
      ev.replica = tctx.replica;
      ev.dur_us = sw.elapsed_micros();
      ev.arg = n;
      obs::tracing::emit(ev);
    }
    if (m_ != nullptr) {
      m_->wal_bytes->inc(n);
      m_->wal_records->inc();
    }
  } catch (const IoError&) {
    count_io_error();
    // Roll the segment back to the last frame boundary so a half-written
    // record does not poison every later append (recovery would truncate
    // at the first bad frame, losing good records behind it).
    try {
      vfs_.truncate(path, pre);
      open_tail(tail_start_);  // the old handle's state is unknown
    } catch (const IoError&) {
      count_io_error();
      tail_.reset();  // degraded: next append retries the open
    }
  }
}

std::size_t DurableReplicaStorage::append_batch_nosync(const WalRecord& rec) {
  if (tail_ == nullptr) open_tail(tail_start_);
  const std::string& path = tail_->path();
  std::uint64_t pre = 0;
  try {
    pre = tail_->size();
    const std::size_t n = tail_->append(rec);
    if (m_ != nullptr) {
      m_->wal_bytes->inc(n);
      m_->wal_records->inc();
    }
    return n;
  } catch (const IoError&) {
    count_io_error();
    // Same frame-boundary rollback as append_batch: a half-written record
    // must not poison the appends that follow it.
    try {
      vfs_.truncate(path, pre);
      open_tail(tail_start_);
    } catch (const IoError&) {
      count_io_error();
      tail_.reset();
    }
    return 0;
  }
}

bool DurableReplicaStorage::sync_wal() {
  if (tail_ == nullptr) return true;  // degraded tail: nothing to sync
  try {
    tail_->sync();
    if (m_ != nullptr) m_->wal_fsyncs->inc();
    return true;
  } catch (const IoError&) {
    count_io_error();
    return false;
  }
}

void DurableReplicaStorage::persist_checkpoint(const CheckpointImage& cp) {
  try {
    const std::size_t n =
        write_checkpoint_file(vfs_, dir_, ckpt_path(cp.seq, cp.state_hash), cp);
    if (m_ != nullptr) {
      m_->checkpoints_persisted->inc();
      m_->checkpoint_bytes->inc(n);
    }
    // New WAL epoch at the boundary: records <= cp.seq live only in older
    // segments, which pruning may now discard.
    open_tail(cp.seq);
    prune(cp.seq);
  } catch (const IoError&) {
    count_io_error();  // checkpoint not durable; the WAL chain still is
  }
}

void DurableReplicaStorage::persist_meta(std::uint64_t term,
                                         std::int64_t voted_for) {
  try {
    std::ostringstream os;
    os << kMetaHeader << '\n'
       << "term " << term << " vote " << voted_for << '\n';
    std::string bytes = os.str();
    char crc[16];
    std::snprintf(crc, sizeof crc, "crc %08x\n", crc32c(bytes));
    bytes += crc;
    const std::string tmp = dir_ + "/meta.tmp";
    if (vfs_.exists(tmp)) vfs_.remove(tmp);
    {
      auto f = vfs_.open_append(tmp);
      f->append(bytes);
      f->sync();
    }
    vfs_.rename(tmp, dir_ + "/meta");
    vfs_.sync_dir(dir_);
  } catch (const IoError&) {
    count_io_error();  // stale meta: recovery falls back to defaults
  }
}

void DurableReplicaStorage::prune(std::uint64_t newest_ckpt_seq) {
  std::vector<std::string> names = vfs_.list(dir_);

  // Checkpoint slots, oldest first (name order == seq order).
  std::vector<std::pair<std::uint64_t, std::string>> slots;
  std::vector<std::uint64_t> wal_starts;
  for (const std::string& name : names) {
    if (has_prefix(name, "ckpt-") && has_suffix(name, ".ckpt")) {
      if (const auto seq = parse_hex16(name, 5)) {
        slots.emplace_back(*seq, name);
      }
    } else if (has_prefix(name, "wal-") && has_suffix(name, ".wal")) {
      if (const auto start = parse_hex16(name, 4)) {
        wal_starts.push_back(*start);
      }
    }
  }
  std::sort(slots.begin(), slots.end());
  std::sort(wal_starts.begin(), wal_starts.end());

  const std::size_t keep = std::max<std::size_t>(opts_.checkpoint_slots, 1);
  std::uint64_t oldest_kept = newest_ckpt_seq;
  if (slots.size() > keep) {
    for (std::size_t i = 0; i < slots.size() - keep; ++i) {
      vfs_.remove(dir_ + "/" + slots[i].second);
    }
    oldest_kept = slots[slots.size() - keep].first;
  } else if (!slots.empty()) {
    oldest_kept = slots.front().first;
  }

  // A segment wal-<s> holds records s+1 .. <next segment start>. It is dead
  // only when everything it holds is at or below the oldest retained
  // checkpoint — i.e. its successor's boundary is <= oldest_kept. The open
  // tail always survives.
  for (std::size_t i = 0; i + 1 < wal_starts.size(); ++i) {
    if (wal_starts[i + 1] <= oldest_kept && wal_starts[i] != tail_start_) {
      const std::string path = wal_path(wal_starts[i]);
      if (vfs_.exists(path)) vfs_.remove(path);
    }
  }
  vfs_.sync_dir(dir_);
}

DurableReplicaStorage::Recovered DurableReplicaStorage::recover() {
  Recovered out;
  vfs_.mkdirs(dir_);
  std::vector<std::string> names = vfs_.list(dir_);

  // --- raft meta -----------------------------------------------------------
  if (vfs_.exists(dir_ + "/meta")) {
    try {
      const std::string bytes = vfs_.read_all(dir_ + "/meta");
      constexpr std::size_t kFooter = 13;  // "crc xxxxxxxx\n"
      if (bytes.size() < kFooter) throw IoError("meta too short");
      std::uint32_t want = 0;
      const char* f = bytes.data() + bytes.size() - kFooter;
      if (std::string_view(f, 4) != "crc " ||
          std::from_chars(f + 4, f + 12, want, 16).ec != std::errc()) {
        throw IoError("meta footer");
      }
      const std::string_view body(bytes.data(), bytes.size() - kFooter);
      if (crc32c(body) != want) throw IoError("meta crc");
      std::istringstream is{std::string(body)};
      std::string line, word;
      if (!std::getline(is, line) || line != kMetaHeader) {
        throw IoError("meta header");
      }
      if (!(is >> word >> out.term) || word != "term") throw IoError("meta");
      if (!(is >> word >> out.voted_for) || word != "vote") {
        throw IoError("meta");
      }
      out.meta_ok = true;
    } catch (const IoError&) {
      count_io_error();  // unusable meta: rejoin with defaults
      out = Recovered{};
    }
  }

  // --- checkpoint slots ----------------------------------------------------
  quarantine_n_ = 0;
  std::vector<std::uint64_t> wal_starts;
  for (const std::string& name : names) {
    if (has_prefix(name, "ckpt-") && has_suffix(name, ".ckpt")) {
      try {
        out.checkpoints.push_back(
            decode_checkpoint(vfs_.read_all(dir_ + "/" + name)));
      } catch (const IoError&) {
        if (m_ != nullptr) m_->checkpoint_decode_failures->inc();
      }
    } else if (has_prefix(name, "wal-") && has_suffix(name, ".wal")) {
      if (const auto start = parse_hex16(name, 4)) {
        wal_starts.push_back(*start);
      }
    } else if (has_prefix(name, "quarantine-")) {
      ++quarantine_n_;
    }
  }
  std::sort(out.checkpoints.begin(), out.checkpoints.end(),
            [](const CheckpointImage& a, const CheckpointImage& b) {
              return a.seq < b.seq;
            });
  std::sort(wal_starts.begin(), wal_starts.end());

  // --- WAL segments --------------------------------------------------------
  std::map<std::uint64_t, WalRecord> by_seq;
  for (const std::uint64_t start : wal_starts) {
    WalScanStats st;
    const std::string qpath =
        dir_ + "/quarantine-" + std::to_string(quarantine_n_) + ".bad";
    std::vector<WalRecord> recs = scan_wal(vfs_, wal_path(start), qpath, &st);
    if (st.records_quarantined > 0) {
      ++quarantine_n_;
      if (obs::tracing::enabled()) {
        obs::tracing::trigger(
            obs::tracing::Anomaly::kWalQuarantine,
            std::to_string(st.records_quarantined) +
                " corrupt WAL record(s) quarantined to " + qpath +
                " during recovery of " + dir_);
      }
    }
    if (m_ != nullptr) {
      m_->torn_tails_truncated->inc(st.torn_tail_truncated);
      m_->records_quarantined->inc(st.records_quarantined);
    }
    for (WalRecord& r : recs) by_seq.insert_or_assign(r.seq, std::move(r));
  }

  // Longest contiguous suffix on top of the newest decodable checkpoint.
  const std::uint64_t base =
      out.checkpoints.empty() ? 0 : out.checkpoints.back().seq;
  for (std::uint64_t s = base + 1;; ++s) {
    auto it = by_seq.find(s);
    if (it == by_seq.end()) break;
    out.wal.push_back(std::move(it->second));
  }

  // Ready the tail for post-recovery appends: continue the newest segment.
  open_tail(wal_starts.empty() ? base : wal_starts.back());
  return out;
}

}  // namespace prog::dur
