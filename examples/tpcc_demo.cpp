// TPC-C on Prognosticator: loads the benchmark, runs the standard mix for a
// few hundred batches under MQ-MF, and verifies the TPC-C consistency
// conditions afterwards.
//
// Usage: tpcc_demo [warehouses] [batches] [batch_size]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "common/stopwatch.hpp"
#include "db/database.hpp"
#include "workloads/tpcc.hpp"

int main(int argc, char** argv) {
  using namespace prog;
  const int warehouses = argc > 1 ? std::atoi(argv[1]) : 4;
  const int batches = argc > 2 ? std::atoi(argv[2]) : 100;
  const std::size_t batch_size =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 100;

  sched::EngineConfig cfg;
  cfg.workers = 4;
  cfg.check_containment = true;  // assert profile soundness while running
  db::Database db(cfg);
  workloads::tpcc::Workload wl(db,
                               workloads::tpcc::Scale::small(warehouses));

  std::cout << "TPC-C with " << warehouses << " warehouse(s), " << batches
            << " batches x " << batch_size << " transactions\n";
  for (sched::ProcId id = 0; id < db.procedure_count(); ++id) {
    const auto& prof = db.profile(id);
    std::cout << "  " << db.procedure(id).name << ": "
              << sym::to_string(prof.klass()) << ", "
              << prof.metrics().unique_key_sets << " key-set(s), "
              << prof.pivot_site_count() << " pivot(s)\n";
  }

  Rng rng(7);
  Stopwatch wall;
  std::uint64_t committed = 0, aborts = 0, rolled_back = 0;
  for (int b = 0; b < batches; ++b) {
    const auto r = db.execute(wl.batch(batch_size, rng));
    committed += r.committed;
    aborts += r.validation_aborts;
    rolled_back += r.rolled_back;
  }
  const double secs = wall.elapsed_seconds();
  std::cout << "committed " << committed << " tx in " << secs << "s ("
            << static_cast<std::uint64_t>(committed / secs) << " tx/s), "
            << aborts << " validation aborts, " << rolled_back
            << " business rollbacks\n";

  const auto bad = workloads::tpcc::check_invariants(db.store(), wl.scale());
  if (bad.empty()) {
    std::cout << "TPC-C consistency conditions hold.\n";
    return 0;
  }
  std::cout << bad.size() << " invariant violations, first: " << bad.front()
            << "\n";
  return 1;
}
