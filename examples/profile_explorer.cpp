// Profile explorer: prints the symbolic-execution artifacts for every
// TPC-C and RUBiS transaction — the PSC tree, classification, metrics —
// and walks one concrete prediction end to end.
//
// Usage: profile_explorer [proc_name]   (default: dump summaries + new_order)
#include <iostream>
#include <string>

#include "db/database.hpp"
#include "lang/printer.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

int main(int argc, char** argv) {
  using namespace prog;
  const std::string pick = argc > 1 ? argv[1] : "";

  db::Database db;
  workloads::tpcc::Workload tpcc(db, workloads::tpcc::Scale::small(2));
  // (RUBiS procs registered on a second database to keep ids separate.)
  db::Database rdb;
  workloads::rubis::Workload rubis(rdb, workloads::rubis::Scale::small());

  auto summarize = [&](db::Database& d) {
    for (sched::ProcId id = 0; id < d.procedure_count(); ++id) {
      const auto& prof = d.profile(id);
      const auto& m = prof.metrics();
      std::cout << "  " << d.procedure(id).name << ": "
                << sym::to_string(prof.klass()) << " | states "
                << m.states_explored << " | depth " << m.depth
                << " | key-sets " << m.unique_key_sets << " | pivots "
                << m.pivot_sites << " | merged " << m.merged_branches
                << " | concolic skips " << m.concolic_skips << "\n";
    }
  };
  std::cout << "TPC-C profiles:\n";
  summarize(db);
  std::cout << "RUBiS profiles:\n";
  summarize(rdb);

  if (!pick.empty()) {
    for (db::Database* d : {&db, &rdb}) {
      for (sched::ProcId id = 0; id < d->procedure_count(); ++id) {
        if (d->procedure(id).name == pick) {
          std::cout << "\n--- source ---\n"
                    << lang::to_string(d->procedure(id))
                    << "\n--- profile ---\n"
                    << d->profile(id).dump() << "\n";
          return 0;
        }
      }
    }
    std::cout << "unknown procedure: " << pick << "\n";
    return 1;
  }

  // Walk a concrete new_order prediction (ol_cnt must respect the declared
  // [5,15] bound — profiles are only valid for in-bounds inputs).
  std::cout << "\nconcrete prediction for new_order(w=0, d=3, c=7, "
               "ol_cnt=5, items=[11, 42, 77, 91, 113]):\n";
  lang::TxInput in;
  in.add(0).add(3).add(7).add(5);
  in.add_array({11, 42, 77, 91, 113, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0});
  in.add_array(std::vector<Value>(15, 0));
  in.add_array(std::vector<Value>(15, 5));
  store::SnapshotView snap(db.store(), 0);
  const sym::Prediction pred =
      db.profile(tpcc.new_order()).predict(in, snap);
  std::cout << "  keys (" << pred.keys.size() << "):";
  for (const TKey& k : pred.keys) {
    std::cout << " t" << k.table << ":" << k.key;
  }
  std::cout << "\n  writes: " << pred.write_keys.size()
            << ", pivots validated at execution: " << pred.pivots.size()
            << "\n";
  std::cout << "\n(tip: run `profile_explorer delivery` to see the 2^10 "
               "path-set tree)\n";
  return 0;
}
