// End-to-end replicated deployment: three full replicas behind the Raft
// sequencer, fed TPC-C batches, with a follower crash and catch-up in the
// middle. Demonstrates the paper's system picture: consensus fixes the batch
// order, the deterministic engine guarantees replicas never diverge.
#include <iostream>
#include <memory>

#include "consensus/replicated_db.hpp"
#include "workloads/tpcc.hpp"

int main() {
  using namespace prog;
  sched::EngineConfig cfg;
  cfg.workers = 2;

  std::vector<std::unique_ptr<workloads::tpcc::Workload>> wls;
  consensus::ReplicatedDb cluster(
      3, /*seed=*/2026,
      [&](db::Database& d) {
        wls.push_back(std::make_unique<workloads::tpcc::Workload>(
            d, workloads::tpcc::Scale::small(2)));
      },
      cfg);

  cluster.run_ms(1000);  // leader election
  std::cout << "leader elected: node " << cluster.raft().leader() << "\n";

  Rng rng(3);
  auto pump = [&](int batches) {
    int ok = 0;
    for (int i = 0; i < batches; ++i) {
      if (cluster.submit_batch(wls[0]->batch(25, rng))) ++ok;
      cluster.run_ms(100);
    }
    return ok;
  };

  std::cout << "submitting 5 batches...\n";
  pump(5);

  const int leader = cluster.raft().leader();
  const consensus::NodeId victim = leader == 0 ? 1 : 0;
  std::cout << "crashing follower " << victim << " and submitting 5 more\n";
  cluster.raft().crash(victim);
  pump(5);

  std::cout << "restarting follower " << victim << " (log catch-up)\n";
  cluster.raft().restart(victim);
  cluster.run_ms(3000);

  if (!cluster.converged()) {
    std::cout << "replicas did not converge!\n";
    return 1;
  }
  const auto hashes = cluster.state_hashes();
  std::cout << "replica state hashes:";
  for (auto h : hashes) std::cout << " " << std::hex << h << std::dec;
  std::cout << "\n";
  if (hashes[0] == hashes[1] && hashes[1] == hashes[2]) {
    std::cout << "all three replicas hold byte-identical state.\n";
    const auto bad =
        workloads::tpcc::check_invariants(cluster.replica(0).store(),
                                          wls[0]->scale());
    std::cout << (bad.empty() ? "TPC-C invariants hold on the replicated state.\n"
                              : "invariant violations found!\n");
    return bad.empty() ? 0 : 1;
  }
  std::cout << "replica divergence!\n";
  return 1;
}
