// Quickstart: a tiny banking application on Prognosticator.
//
// Shows the full lifecycle on ~100 lines:
//   1. write stored procedures in the DSL;
//   2. register them — the offline symbolic execution derives each
//      transaction's profile (read/write-set as a function of inputs);
//   3. load initial state, execute totally-ordered batches concurrently;
//   4. verify determinism by running a second replica and comparing hashes.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "lang/builder.hpp"

using namespace prog;

namespace {

constexpr TableId kAccounts = 1;
constexpr TableId kAuditLog = 2;
constexpr FieldId kBalance = 0;
constexpr FieldId kAmount = 0;

// transfer(from, to, amount): move money, abort on overdraft.
lang::Proc make_transfer() {
  lang::ProcBuilder b("transfer");
  auto from = b.param("from", 0, 99);
  auto to = b.param("to", 0, 99);
  auto amount = b.param("amount", 1, 1000);
  auto src = b.get(kAccounts, from);
  auto dst = b.get(kAccounts, to);
  b.abort_if(src.field(kBalance) < amount);  // overdraft protection
  b.put(kAccounts, from, {{kBalance, src.field(kBalance) - amount}});
  b.put(kAccounts, to, {{kBalance, dst.field(kBalance) + amount}});
  return std::move(b).build();
}

// audit(account, slot): a *dependent* transaction — it reads the account
// balance and files a report under a key derived from that balance bucket.
lang::Proc make_audit() {
  lang::ProcBuilder b("audit");
  auto acct = b.param("acct", 0, 99);
  auto slot = b.param("slot", 0, 9);
  auto h = b.get(kAccounts, acct);
  auto bucket = b.let("bucket", h.field(kBalance) / 100);
  b.put(kAuditLog, bucket * 10 + slot, {{kAmount, h.field(kBalance)}});
  return std::move(b).build();
}

// total(a, b): read-only — executes lock-free against the batch snapshot.
lang::Proc make_total() {
  lang::ProcBuilder b("total");
  auto a = b.param("a", 0, 99);
  auto c = b.param("b", 0, 99);
  auto ha = b.get(kAccounts, a);
  auto hb = b.get(kAccounts, c);
  b.emit(ha.field(kBalance) + hb.field(kBalance));
  return std::move(b).build();
}

std::uint64_t run_replica(unsigned workers) {
  sched::EngineConfig cfg;
  cfg.workers = workers;
  db::Database db(cfg);
  const auto transfer = db.register_procedure(make_transfer());
  const auto audit = db.register_procedure(make_audit());
  const auto total = db.register_procedure(make_total());

  for (Key a = 0; a < 100; ++a) {
    db.store().put({kAccounts, a}, store::Row{{kBalance, 500}}, 0);
  }
  db.finalize();

  std::cout << "  transfer is classified "
            << sym::to_string(db.profile(transfer).klass()) << ", audit is "
            << sym::to_string(db.profile(audit).klass()) << ", total is "
            << sym::to_string(db.profile(total).klass()) << "\n";

  // Every replica must feed the engine the same batch sequence — normally
  // that order comes from consensus (see examples/replicated_cluster.cpp).
  Rng rng(2024);
  std::uint64_t committed = 0;
  for (int batch = 0; batch < 20; ++batch) {
    std::vector<sched::TxRequest> reqs;
    for (int i = 0; i < 50; ++i) {
      sched::TxRequest r;
      switch (rng.bounded(3)) {
        case 0:
          r.proc = transfer;
          r.input.add(rng.uniform(0, 99)).add(rng.uniform(0, 99)).add(
              rng.uniform(1, 200));
          break;
        case 1:
          r.proc = audit;
          r.input.add(rng.uniform(0, 99)).add(rng.uniform(0, 9));
          break;
        default:
          r.proc = total;
          r.input.add(rng.uniform(0, 99)).add(rng.uniform(0, 99));
          break;
      }
      reqs.push_back(std::move(r));
    }
    committed += db.execute(std::move(reqs)).committed;
  }
  std::cout << "  committed " << committed << " transactions, state hash "
            << std::hex << db.state_hash() << std::dec << "\n";
  return db.state_hash();
}

}  // namespace

int main() {
  std::cout << "replica A (8 workers):\n";
  const auto a = run_replica(8);
  std::cout << "replica B (2 workers):\n";
  const auto b = run_replica(2);
  if (a == b) {
    std::cout << "deterministic: replicas converged to identical state.\n";
    return 0;
  }
  std::cout << "ERROR: replica states diverged!\n";
  return 1;
}
