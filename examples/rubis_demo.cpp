// RUBiS-C on Prognosticator: every update transaction is dependent (its
// insert key comes from a sequence read from the store), which makes this
// the high-contention showcase for the failed-transaction strategies.
// Runs the same workload under MF and SF and compares abort rates.
//
// Usage: rubis_demo [batches] [batch_size]
#include <cstdlib>
#include <iostream>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "workloads/rubis.hpp"

namespace {

struct RunResult {
  std::uint64_t committed = 0;
  std::uint64_t aborts = 0;
  std::uint64_t hash = 0;
};

RunResult run(bool parallel_failed, int batches, std::size_t batch_size) {
  using namespace prog;
  sched::EngineConfig cfg;
  cfg.workers = 4;
  cfg.parallel_failed = parallel_failed;
  cfg.check_containment = true;
  db::Database db(cfg);
  workloads::rubis::Workload wl(db, workloads::rubis::Scale::small());
  Rng rng(99);
  RunResult out;
  for (int b = 0; b < batches; ++b) {
    const auto r = db.execute(wl.batch(batch_size, rng));
    out.committed += r.committed;
    out.aborts += r.validation_aborts;
  }
  const auto bad = workloads::rubis::check_invariants(db.store(), wl.scale());
  if (!bad.empty()) {
    std::cerr << "invariant violation: " << bad.front() << "\n";
    std::exit(1);
  }
  out.hash = db.state_hash();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int batches = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::size_t batch_size =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 60;

  std::cout << "RUBiS-C, " << batches << " batches x " << batch_size
            << " update transactions\n";
  const RunResult mf = run(true, batches, batch_size);
  std::cout << "MQ-MF: " << mf.committed << " committed, " << mf.aborts
            << " aborts (failed DT executions)\n";
  const RunResult sf = run(false, batches, batch_size);
  std::cout << "MQ-SF: " << sf.committed << " committed, " << sf.aborts
            << " aborts\n";
  std::cout << "(the paper's RUBiS finding: sequential re-execution of "
               "failed transactions\n aborts far less on id-generation "
               "hotspots — here MF/SF = "
            << (sf.aborts == 0 ? 0.0
                               : static_cast<double>(mf.aborts) /
                                     static_cast<double>(sf.aborts))
            << "x)\n";
  if (mf.hash != sf.hash) {
    std::cout << "note: MF and SF diverged — this must never happen!\n";
    return 1;
  }
  std::cout << "MF and SF converged to the same final state.\n";
  return 0;
}
