// txlint as a library: run the static passes over your own procedures
// before shipping them to a database.
//
//   1. pass 1 — classify: predict the transaction class (ROT/IT/DT) and the
//      table footprint from the AST alone, then cross-check against the
//      symbolic-execution profile (the differential oracle the offline
//      pipeline runs on every registration);
//   2. pass 2 — lint: determinism/performance diagnostics with fix hints;
//   3. pass 3 — conflict matrix: which transaction *types* can ever
//      conflict, the artifact the engine's per-round lock elision consumes.
//
// Build & run:  ./build/examples/lint_demo
// The same passes run from the command line: ./build/tools/txlint --help
#include <iostream>

#include "analysis/conflict_matrix.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/lint.hpp"
#include "lang/builder.hpp"
#include "sym/symexec.hpp"

using namespace prog;

namespace {

constexpr TableId kAccounts = 1;
constexpr TableId kRates = 2;

// deposit(acct, amount): clean independent transaction.
lang::Proc make_deposit() {
  lang::ProcBuilder b("deposit");
  auto acct = b.param("acct", 0, 99);
  auto amount = b.param("amount", 1, 1000);
  auto h = b.get(kAccounts, acct);
  b.put(kAccounts, acct, {{0, h.field(0) + amount}});
  return std::move(b).build();
}

// sweep(first): data-dependent loop — the trip count comes from a store
// read, which the linter flags as a path-set blowup (every possible count
// is a separate profile subtree).
lang::Proc make_sweep() {
  lang::ProcBuilder b("sweep");
  auto first = b.param("first", 0, 9);
  auto rate = b.get(kRates, b.lit(0));
  // Clamped so symbolic execution can bound the unrolling; the trip count
  // still *depends* on the store read, which is what the linter reports.
  b.for_(b.lit(0), b.min(rate.field(0), b.lit(8)), /*max_iters=*/8,
         [&](lang::ProcBuilder& l, lang::Val i) {
           auto h = l.get(kAccounts, first + i);
           l.put(kAccounts, first + i, {{0, h.field(0) * 2}});
         });
  return std::move(b).build();
}

// audit(acct): read-only, touches only the rates table via a balance bucket.
lang::Proc make_audit() {
  lang::ProcBuilder b("audit");
  auto acct = b.param("acct", 0, 99);
  auto h = b.get(kAccounts, acct);
  b.emit(h.field(0));
  return std::move(b).build();
}

}  // namespace

int main() {
  const lang::Proc deposit = make_deposit();
  const lang::Proc sweep = make_sweep();
  const lang::Proc audit = make_audit();

  std::cout << "--- pass 1: classify + differential cross-check ---\n";
  for (const lang::Proc* p : {&deposit, &sweep, &audit}) {
    const auto profile = sym::Profiler::profile(*p);
    // Throws if the static summary and the SE profile disagree unsoundly.
    const analysis::StaticSummary s = analysis::classify_checked(*p, *profile);
    std::cout << p->name << ": static " << sym::to_string(s.klass)
              << ", SE " << sym::to_string(profile->klass()) << ", touches "
              << s.tables_touched.size() << " table(s), writes "
              << s.tables_written.size() << "\n";
  }

  std::cout << "\n--- pass 2: lint ---\n";
  for (const lang::Proc* p : {&deposit, &sweep, &audit}) {
    std::cout << analysis::render(*p, analysis::lint(*p));
  }

  std::cout << "\n--- pass 3: conflict matrix ---\n";
  const auto matrix =
      analysis::ConflictMatrix::from_procs({&deposit, &sweep, &audit});
  std::cout << matrix.to_string();
  std::cout << "\nserialized form (ships next to the profiles):\n"
            << matrix.serialize();
  return 0;
}
