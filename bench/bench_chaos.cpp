// Chaos bench: recovery-layer behavior under seeded fault schedules.
//
// Runs the chaos harness over a grid of (workload, cluster size, fault
// intensity) cells and reports, per cell, how much the fault schedule cost
// in committed batches, how often each recovery path fired (checkpoint
// restores, InstallSnapshot transfers, full rebuilds, resyncs), and whether
// the cluster ended converged with byte-identical state. Every row is
// reproducible from the printed seed.
//
//   PROG_BENCH_FAST=1  — fewer seeds and rounds (CI smoke).
#include <iostream>
#include <string>

#include "benchutil/harness.hpp"
#include "benchutil/table.hpp"
#include "consensus/chaos.hpp"
#include "workloads/microbench.hpp"
#include "workloads/tpcc.hpp"

using namespace prog;
using consensus::ChaosOptions;
using consensus::ChaosReport;
using consensus::RecoveryOptions;
using consensus::ReplicatedDb;

namespace {

struct Cell {
  const char* name;
  unsigned replicas;
  unsigned crash_pct;
  unsigned partition_pct;
  unsigned burst_pct;
};

sched::EngineConfig engine_cfg() {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  return cfg;
}

ChaosReport run_tpcc_cell(const Cell& cell, std::uint64_t seed,
                          unsigned rounds) {
  db::Database gen_db(engine_cfg());
  workloads::tpcc::Workload gen(gen_db, workloads::tpcc::Scale::tiny(1));
  RecoveryOptions rec;
  rec.checkpoint_interval = 3;
  ReplicatedDb rdb(
      cell.replicas, seed,
      [](db::Database& d) {
        workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
      },
      engine_cfg(), {}, rec);
  ChaosOptions copts;
  copts.rounds = rounds;
  copts.batch_size = 8;
  copts.crash_pct = cell.crash_pct;
  copts.partition_pct = cell.partition_pct;
  copts.burst_pct = cell.burst_pct;
  return consensus::run_chaos(
      rdb, [&](std::size_t n, Rng& rng) { return gen.batch(n, rng); }, copts,
      seed * 7919 + 13);
}

}  // namespace

int main() {
  const bool fast = benchutil::fast_mode();
  const unsigned rounds = fast ? 20 : 50;
  const std::uint64_t seeds = fast ? 2 : 5;

  const Cell cells[] = {
      {"calm (no faults)", 3, 0, 0, 0},
      {"crashes only", 3, 16, 0, 0},
      {"partitions only", 3, 0, 16, 0},
      {"full storm 3x", 3, 8, 8, 8},
      {"full storm 5x", 5, 8, 8, 8},
  };

  benchutil::Table table({"cell", "seed", "applied/submitted", "crashes",
                          "cp taken", "cp restores", "snap installs",
                          "rebuilds", "ok"});
  bool all_ok = true;
  for (const Cell& cell : cells) {
    for (std::uint64_t s = 1; s <= seeds; ++s) {
      const ChaosReport rep = run_tpcc_cell(cell, s * 101, rounds);
      all_ok = all_ok && rep.ok();
      table.row({cell.name, std::to_string(s * 101),
                 std::to_string(rep.batches_applied) + "/" +
                     std::to_string(rep.batches_submitted),
                 std::to_string(rep.events.crashes),
                 std::to_string(rep.recovery.checkpoints_taken),
                 std::to_string(rep.recovery.checkpoint_restores),
                 std::to_string(rep.recovery.snapshot_installs),
                 std::to_string(rep.recovery.full_rebuilds),
                 rep.ok() ? "yes" : "NO"});
    }
  }
  std::cout << "=== Chaos: recovery paths under seeded fault schedules "
               "(TPC-C tiny, "
            << rounds << " rounds/run) ===\n";
  table.print();
  if (!all_ok) {
    std::cout << "DIVERGENCE OR NON-CONVERGENCE DETECTED\n";
    return 1;
  }
  std::cout << "all runs converged with byte-identical replica state.\n";
  return 0;
}
