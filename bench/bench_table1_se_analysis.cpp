// Table I — profiling of the symbolic-execution analysis of every update
// transaction in TPC-C and RUBiS, with and without the optimizations
// (irrelevant-variable concolic execution + DFS subtree merging).
//
// Matches the paper's columns: states explored/total, depth optimized/max,
// unique key-sets, indirect keys (pivot reads per execution), memory
// optimized/unoptimized, execution time optimized/unoptimized.
#include <iostream>

#include "benchutil/table.hpp"
#include "lang/builder.hpp"
#include "sym/symexec.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace {

using prog::benchutil::fmt;
using prog::benchutil::Table;
using prog::sym::Profiler;

struct RowInput {
  std::string name;
  prog::lang::Proc proc;
};

void profile_row(Table& table, const RowInput& in) {
  Profiler::Options opt;  // all optimizations on
  auto optimized = Profiler::profile(in.proc, opt);

  Profiler::Options unopt;
  unopt.use_relevance = false;
  unopt.merge_subtrees = false;
  unopt.max_states = 1u << 20;  // cap the unoptimized exploration
  auto unoptimized = Profiler::profile(in.proc, unopt);

  const auto& m = optimized->metrics();
  const auto& mu = unoptimized->metrics();
  const std::string total_states =
      unoptimized->complete()
          ? std::to_string(mu.states_explored)
          : ">" + std::to_string(mu.states_explored) + " (capped; est " +
                prog::benchutil::fmt_si(
                    static_cast<double>(m.states_total_est)) +
                ")";
  table.row({
      in.name,
      std::to_string(m.states_explored) + " / " + total_states,
      std::to_string(m.depth) + " / " + std::to_string(mu.depth_max),
      std::to_string(m.unique_key_sets),
      std::to_string(m.pivot_sites),
      fmt(static_cast<double>(m.memory_bytes) / 1024.0, 0) + " / " +
          fmt(static_cast<double>(mu.memory_bytes) / 1024.0, 0),
      fmt(m.analysis_seconds * 1000, 1) + " / " +
          fmt(mu.analysis_seconds * 1000, 1) +
          (unoptimized->complete() ? "" : " (capped)"),
  });
}

}  // namespace

int main() {
  using prog::workloads::tpcc::Scale;
  std::cout << "=== Table I: Symbolic-execution analysis of update "
               "transactions ===\n"
            << "(states explored with optimizations / without; depth "
               "optimized / max;\n memory and time optimized / unoptimized; "
               "KB and ms on this host)\n\n";

  Table table({"transaction", "states expl/total", "depth opt/max",
               "key-sets", "indirect keys", "memory KB opt/unopt",
               "time ms opt/unopt"});

  const Scale sc = Scale::small(4);
  const prog::workloads::rubis::Scale rsc = prog::workloads::rubis::Scale::small();

  // The paper instantiates new_order at fixed iteration counts.
  for (int iters : {5, 10, 15}) {
    profile_row(table,
                {"TPC-C: new order (" + std::to_string(iters) + " iters.)",
                 prog::workloads::tpcc::build_new_order(sc, iters, iters)});
  }
  profile_row(table, {"TPC-C: new order (5-15 iters.)",
                      prog::workloads::tpcc::build_new_order(sc)});
  profile_row(table, {"TPC-C: payment",
                      prog::workloads::tpcc::build_payment(sc)});
  profile_row(table, {"TPC-C: delivery",
                      prog::workloads::tpcc::build_delivery(sc)});
  profile_row(table, {"RUBiS: store bid",
                      prog::workloads::rubis::build_store_bid(rsc)});
  profile_row(table, {"RUBiS: store buy now",
                      prog::workloads::rubis::build_store_buy_now(rsc)});
  profile_row(table, {"RUBiS: store comment",
                      prog::workloads::rubis::build_store_comment(rsc)});
  profile_row(table, {"RUBiS: register user",
                      prog::workloads::rubis::build_register_user(rsc)});
  profile_row(table, {"RUBiS: register item",
                      prog::workloads::rubis::build_register_item(rsc)});

  table.print();
  std::cout << "\nPaper shape check: new_order collapses to 1 key-set with 1 "
               "pivot at fixed\niterations; delivery explodes to 1024 "
               "key-sets (2^10 districts) with 20-30 pivot\nreads; every "
               "RUBiS update transaction is a DT with >=1 pivot; analysis "
               "stays\nwithin seconds and megabytes.\n";
  return 0;
}
