// Figure 3 — maximum sustainable throughput (3a) and normalized abort rate
// (3b) for TPC-C at three contention levels (100 / 10 / 1 warehouses),
// comparing MQ-MF, MQ-SF, Calvin-100, Calvin-200, NODO and SEQ.
//
// Batches arrive every 10 ms; a configuration is sustainable while the p99
// transaction latency stays below 10 ms (paper, Section IV-B). Durations are
// modeled onto 20 workers from single-worker traces (see benchutil/model.hpp)
// so the figure reproduces on any host; set PROG_BENCH_WALLCLOCK=1 on a
// many-core machine to measure wall-clock instead.
#include <cstdlib>
#include <iostream>

#include "baselines/variants.hpp"
#include "benchutil/table.hpp"
#include "cases.hpp"

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  const bool wallclock = std::getenv("PROG_BENCH_WALLCLOCK") != nullptr;

  benchutil::TrialOptions opts;
  opts.modeled = !wallclock;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 6 : 12;
  const std::size_t max_batch = fast ? 2048 : 8192;

  const std::vector<int> warehouses = fast ? std::vector<int>{10, 1}
                                           : std::vector<int>{100, 10, 1};
  const auto systems = baselines::figure3_systems(20);

  benchutil::Table tput({"system", "warehouses", "batch size",
                         "throughput tx/s", "p99 ms"});
  benchutil::Table aborts({"system", "warehouses", "abort rate %"});

  for (int w : warehouses) {
    std::cout << "--- contention level: " << w << " warehouse(s) ---\n";
    for (const auto& variant : systems) {
      const auto r = benchutil::max_sustainable(
          bench::tpcc_factory(w), variant.config, opts, max_batch);
      tput.row({variant.name, std::to_string(w),
                std::to_string(r.batch_size),
                benchutil::fmt_si(r.stats.throughput_tps),
                benchutil::fmt(r.stats.p99_ms, 2)});
      aborts.row({variant.name, std::to_string(w),
                  benchutil::fmt(r.stats.abort_pct, 2)});
      std::cout << "  " << variant.name << ": "
                << benchutil::fmt_si(r.stats.throughput_tps) << " tx/s, "
                << benchutil::fmt(r.stats.abort_pct, 2) << "% aborts\n";
    }
  }

  std::cout << "\n=== Figure 3a: TPC-C maximum sustainable throughput ===\n";
  tput.print();
  std::cout << "\n=== Figure 3b: TPC-C normalized abort rates ===\n";
  aborts.print();
  std::cout << "\nPaper shape check: Prognosticator (MQ-*) leads at 100 and "
               "10 warehouses\n(paper: 5x and 2.3x over the runner-up); NODO "
               "never aborts and edges ahead at\n1 warehouse; Calvin-200 "
               "aborts more than Calvin-100; MF beats SF at low\ncontention, "
               "SF beats MF at 1 warehouse; SEQ trails.\n";
  return 0;
}
