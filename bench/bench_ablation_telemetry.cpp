// Ablation — telemetry zero-overhead guard (DESIGN.md §9), plus the causal
// tracing overhead guard (DESIGN.md §11).
//
// EngineConfig::telemetry promises a hot path of relaxed atomic adds: the
// per-attempt work is one histogram observe (two relaxed fetch_adds) and the
// per-batch work is a fixed handful of counter adds at finalize_stats().
// This bench measures the promise and *fails* (non-zero exit) when the
// wall-clock overhead of telemetry=on exceeds kMaxOverheadPct on either
// workload, so CI catches an accidentally-hot instrument (e.g. a mutex or a
// per-attempt label canonicalization sneaking into run_batch).
//
// The second arm adds causal tracing at the CI sampling rate (telemetry on +
// trace_sample_n=64 + the flight recorder recording) and holds the combined
// overhead against the telemetry-off baseline under kMaxTracingOverheadPct:
// unsampled batches must cost one predictable branch per site, and the
// sampled 1/64th a bounded handful of ring stores.
//
// The third arm runs the same gate over the *pipelined* apply path
// (DESIGN.md §14): pipeline_depth=2, each batch staged through
// prepare_batch()/execute_prepared() with the double-buffered lock-table
// banks rotating. Telemetry must stay under kMaxPipelinedOverheadPct there
// too — the staged path has its own instrument sites (per-stage spans, bank
// stats) and this arm catches one of them going hot.
//
// Methodology: identical request streams (same seed, fresh context per run)
// executed with real worker threads, timed in *process CPU time*
// (CLOCK_PROCESS_CPUTIME_ID, all threads): instrument cost is CPU work, and
// CPU time — unlike wall time — is not inflated when a loaded CI host
// preempts the bench. Because batch i of every repeat is byte-identical
// work, the per-config cost is the sum over batches of the *element-wise
// minimum* batch time across interleaved repeats: each batch's floor is the
// repeat where the host disturbed it least, which damps residual noise
// (cache pollution, frequency steps) far better than min-of-totals or the
// mean, while telemetry overhead — a fixed per-attempt cost — survives
// every minimum. A determinism cross-check asserts telemetry never changes
// execution: committed/rounds must be identical on vs off.
#include <ctime>

#include <cstdint>
#include <iostream>
#include <string>
#include <tuple>
#include <vector>

#include "benchutil/table.hpp"
#include "cases.hpp"
#include "obs/metrics.hpp"
#include "obs/tracing/tracing.hpp"

namespace {

constexpr double kMaxOverheadPct = 3.0;
constexpr double kMaxTracingOverheadPct = 5.0;
constexpr double kMaxPipelinedOverheadPct = 5.0;
/// CI sampling rate for the tracing arm (EXPERIMENTS.md tracing runbook).
constexpr unsigned kTraceSampleN = 64;

/// CPU time consumed by all threads of this process, in microseconds.
double process_cpu_us() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

struct RunCost {
  std::vector<double> batch_us;  // wall time per measured batch
  std::uint64_t committed = 0;   // determinism witness
  std::uint64_t rounds = 0;
  std::size_t series = 0;  // registry size (telemetry on only)
};

/// Element-wise minimum accumulator: batch i's floor across repeats.
void fold_min(std::vector<double>& acc, const std::vector<double>& run) {
  if (acc.empty()) {
    acc = run;
    return;
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    if (run[i] < acc[i]) acc[i] = run[i];
  }
}

double sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

/// Executes warmup+measured batches on a fresh context and times the
/// measured ones. The request stream depends only on the factory seed, so
/// on/off runs execute byte-identical work.
RunCost run_once(const prog::benchutil::CaseFactory& factory,
                 prog::sched::EngineConfig cfg, std::size_t batch_size,
                 int warmup, int measured) {
  auto ctx = factory(cfg);
  RunCost out;
  const bool staged = cfg.pipeline_depth > 0;
  auto run_one = [&](std::vector<prog::sched::TxRequest> batch) {
    if (!staged) return ctx->database().execute(std::move(batch));
    ctx->database().prepare_batch(std::move(batch));
    return ctx->database().execute_prepared();
  };
  for (int i = 0; i < warmup; ++i) {
    run_one(ctx->make_batch(batch_size));
  }
  for (int i = 0; i < measured; ++i) {
    auto batch = ctx->make_batch(batch_size);
    const double t0 = process_cpu_us();
    const auto r = run_one(std::move(batch));
    out.batch_us.push_back(process_cpu_us() - t0);
    out.committed += r.committed;
    out.rounds += r.rounds;
  }
  if (const prog::obs::Registry* reg = ctx->database().telemetry()) {
    out.series = reg->snapshot().size();
  }
  return out;
}

}  // namespace

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  const int repeats = fast ? 5 : 7;
  const int warmup = 2;
  const int measured = fast ? 10 : 20;

  struct Case {
    std::string name;
    benchutil::CaseFactory factory;
    std::size_t batch_size;
  };
  const Case cases[] = {
      {"tpcc-4wh", bench::tpcc_factory(4), fast ? 256u : 512u},
      {"catalog-mix/p8", bench::catalog_factory(8), fast ? 512u : 1024u},
  };

  // Two workers exercise the cross-thread instrument path (relaxed atomics
  // from concurrent workers) without oversubscribing small CI hosts, where
  // scheduler noise would drown the signal the gate is after.
  sched::EngineConfig base;
  base.workers = 2;

  // The two instrumented arms, both measured against the same
  // telemetry-off baseline: telemetry alone, and telemetry + causal tracing
  // at the CI sampling rate with the flight recorder recording.
  struct Arm {
    const char* label;
    bool tracing;
    unsigned pipeline_depth;
    double budget;
  };
  const Arm arms[] = {
      {"telemetry", false, 0, kMaxOverheadPct},
      {"telemetry+tracing/64", true, 0, kMaxTracingOverheadPct},
      {"telemetry, pipelined/2", false, 2, kMaxPipelinedOverheadPct},
  };

  benchutil::Table table({"workload", "config", "batch size",
                          "cpu us/batch off", "cpu us/batch on", "overhead %",
                          "series"});
  int failures = 0;
  for (const Case& c : cases) {
    for (const Arm& arm : arms) {
      struct Outcome {
        double off_us = 0, on_us = 0, overhead = 0;
        std::size_t series = 0;
        bool determinism_broken = false;
      };
      // One full interleaved measurement: off/on repeats with alternating
      // order so slow drifts (thermal, host load, allocator growth) hit both
      // configs symmetrically; per-config cost is the element-wise batch
      // floor. The tracing arm toggles the recorder around the "on" run
      // only, so the baseline truly runs with every site at its disabled
      // single-branch cost.
      auto measure = [&]() -> Outcome {
        Outcome out;
        std::vector<double> floor_off, floor_on;
        auto run_off = [&]() {
          sched::EngineConfig off = base;
          off.telemetry = false;
          off.pipeline_depth = arm.pipeline_depth;
          return run_once(c.factory, off, c.batch_size, warmup, measured);
        };
        auto run_on = [&]() {
          sched::EngineConfig on = base;
          on.telemetry = true;
          on.pipeline_depth = arm.pipeline_depth;
          if (arm.tracing) {
            on.trace_sample_n = kTraceSampleN;
            obs::tracing::FlightRecorder::instance().enable();
          }
          RunCost r = run_once(c.factory, on, c.batch_size, warmup, measured);
          if (arm.tracing) {
            obs::tracing::FlightRecorder::instance().disable();
          }
          return r;
        };
        for (int r = 0; r < repeats; ++r) {
          RunCost ro, rn;
          if (r % 2 == 0) {
            ro = run_off();
            rn = run_on();
          } else {
            rn = run_on();
            ro = run_off();
          }
          // Instruments must be observers: identical logical outcomes.
          if (std::tie(ro.committed, ro.rounds) !=
              std::tie(rn.committed, rn.rounds)) {
            std::cerr << "FAIL: " << c.name << " [" << arm.label
                      << "]: instrumentation changed execution (committed "
                      << ro.committed << " vs " << rn.committed << ", rounds "
                      << ro.rounds << " vs " << rn.rounds << ")\n";
            out.determinism_broken = true;
            return out;
          }
          fold_min(floor_off, ro.batch_us);
          fold_min(floor_on, rn.batch_us);
          out.series = rn.series;
        }
        out.off_us = sum(floor_off) / measured;
        out.on_us = sum(floor_on) / measured;
        out.overhead = (out.on_us - out.off_us) / out.off_us * 100.0;
        return out;
      };
      Outcome best = measure();
      // A breach is re-measured before it fails the gate: a real per-attempt
      // cost repeats on every attempt, while a burst of host load does not.
      // Keep the *minimum* observed overhead — the measurement least
      // disturbed by the environment.
      for (int attempt = 0;
           attempt < 2 && !best.determinism_broken &&
           best.overhead > arm.budget;
           ++attempt) {
        const Outcome retry = measure();
        if (retry.determinism_broken) {
          best = retry;
          break;
        }
        if (retry.overhead < best.overhead) best = retry;
      }
      if (best.determinism_broken) return 1;
      const double overhead = best.overhead;
      table.row({c.name, arm.label, std::to_string(c.batch_size),
                 benchutil::fmt(best.off_us, 1), benchutil::fmt(best.on_us, 1),
                 benchutil::fmt(overhead, 2), std::to_string(best.series)});
      if (overhead > arm.budget) {
        std::cerr << "FAIL: " << c.name << " [" << arm.label << "]: overhead "
                  << benchutil::fmt(overhead, 2) << "% exceeds the "
                  << benchutil::fmt(arm.budget, 1) << "% budget\n";
        ++failures;
      }
    }
  }
  std::cout << "=== Ablation: instrumentation overhead guard (telemetry "
            << benchutil::fmt(kMaxOverheadPct, 1) << "%, tracing "
            << benchutil::fmt(kMaxTracingOverheadPct, 1) << "%, pipelined "
            << benchutil::fmt(kMaxPipelinedOverheadPct, 1) << "%) ===\n";
  table.print();
  if (failures != 0) return 1;
  std::cout << "instrumentation overhead within budget\n";
  return 0;
}
