// Pipelined replica apply bench (DESIGN.md §14): agreed-batches/sec of a
// 3-replica durable cluster, sweeping the simulated fsync latency
// (FaultVfs::set_sync_delay: 0, 100us, 1ms) against the pipeline depth
// (0 = legacy serial apply with inline per-replica group commit, 2 = the
// async commit-queue pipeline) on the hot catalog and TPC-C.
//
// The serial path pays every replica's flush barrier inline on the apply
// thread — 3 x delay per batch folded into the apply critical path. The
// pipelined path fsyncs all replicas concurrently on their commit-queue
// threads and overlaps batch N+1's prepare/execute with batch N's barrier,
// so the steady-state cost per batch approaches pure execution, with the
// bounded in-flight window (== pipeline_depth) backpressuring the apply
// thread when the drive cannot keep up (visible as queue-full stalls).
//
// Methodology: open-loop submission — the client streams all batches
// without per-batch durable acks (the durable-ack path and its watermark
// gating are covered by pipeline_test; an ack-gated client serializes on
// the quorum barrier and measures latency, not pipeline throughput), then
// the run drains to convergence AND full durability on every replica
// before the clock stops. Trials are interleaved (cell A trial 1, cell B
// trial 1, ..., cell A trial 2, ...) and each cell keeps its best trial
// (min wall time), so one noisy scheduling quantum cannot poison a cell.
//
// The headline gate: at 1 ms fsync latency, depth 2 must clear >= 1.3x the
// depth-0 agreed-batches/sec on both workloads, or the bench exits 1
// (wired into CI perf-smoke). Determinism is cross-checked in-binary: both
// depths must land on identical final state hashes for the same stream.
//
//   PROG_BENCH_FAST=1 / --short  — fewer batches + trials (CI smoke).
//   --out <path>                 — write BENCH_pipeline.json (gate field
//                                  "batches_per_s", higher is better) for
//                                  tools/perf_gate.py.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "benchutil/harness.hpp"
#include "benchutil/table.hpp"
#include "consensus/replicated_db.hpp"
#include "dur/fault_vfs.hpp"
#include "workloads/microbench.hpp"
#include "workloads/tpcc.hpp"

using namespace prog;

namespace {

struct CellSpec {
  std::string workload;  // "catalog" | "tpcc"
  std::uint64_t fsync_us = 0;
  unsigned depth = 0;
};

struct CellResult {
  double best_ms = 0;  // min over trials
  double batches_per_s = 0;
  std::uint64_t final_hash = 0;
  std::uint64_t fsync_stalls = 0;   // checkpoint publications that waited
  std::uint64_t window_stalls = 0;  // apply-thread queue-full waits
};

workloads::micro::CatalogOptions catalog_opts() {
  workloads::micro::CatalogOptions o;
  o.catalog_keys = 100;
  o.accounts = 500;
  o.reads_per_tx = 4;
  o.zipf_theta = 1.1;
  return o;
}

/// One timed trial of a cell: fresh cluster, `batches` open-loop
/// submissions, wall time from first submit until every replica has
/// applied AND fsynced everything.
CellResult run_trial(const CellSpec& spec, int batches) {
  const auto wopts = catalog_opts();
  db::Database gen_db{sched::EngineConfig{}};
  std::unique_ptr<workloads::micro::CatalogWorkload> cat_gen;
  std::unique_ptr<workloads::tpcc::Workload> tpcc_gen;
  consensus::ReplicatedDb::SetupFn setup;
  if (spec.workload == "catalog") {
    cat_gen = std::make_unique<workloads::micro::CatalogWorkload>(gen_db,
                                                                  wopts);
    setup = [wopts](db::Database& d) {
      workloads::micro::CatalogWorkload wl(d, wopts);
    };
  } else {
    tpcc_gen = std::make_unique<workloads::tpcc::Workload>(
        gen_db, workloads::tpcc::Scale::tiny(1));
    setup = [](db::Database& d) {
      workloads::tpcc::Workload wl(d, workloads::tpcc::Scale::tiny(1));
    };
  }

  dur::FaultVfs vfs(17);
  vfs.set_sync_delay(spec.fsync_us);
  consensus::RecoveryOptions rec;
  rec.checkpoint_interval = 16;
  rec.vfs = &vfs;
  rec.dur_dir = "dur";
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.pipeline_depth = spec.depth;
  consensus::ReplicatedDb rdb(3, 4242, setup, cfg, {}, rec);
  rdb.run_ms(1000);

  Rng rng(9001);  // identical stream across depths: the hash cross-check
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < batches; ++i) {
    const bool ok = rdb.submit_batch(cat_gen != nullptr
                                         ? cat_gen->batch(32, 8, rng)
                                         : tpcc_gen->batch(8, rng));
    if (!ok) {
      std::cerr << "submit failed (" << spec.workload << ")\n";
      std::exit(1);
    }
    rdb.run_ms(5);
  }
  // Drain: everything applied everywhere, then every commit queue empty —
  // the clock covers full durability, not just agreement.
  bool converged = false;
  for (int d = 0; d < 400; ++d) {
    if ((converged = rdb.converged())) break;
    rdb.run_ms(50);
  }
  if (!converged) {
    std::cerr << "cluster failed to converge (" << spec.workload << ")\n";
    std::exit(1);
  }
  for (unsigned i = 0; i < 3; ++i) {
    if (auto* q = rdb.commit_queue(i)) q->flush();
  }
  CellResult r;
  r.best_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  const auto hashes = rdb.state_hashes();
  if (hashes[0] != hashes[1] || hashes[1] != hashes[2]) {
    std::cerr << "replica divergence (" << spec.workload << ")\n";
    std::exit(1);
  }
  r.final_hash = hashes[0];
  r.fsync_stalls = rdb.recovery_stats().pipeline_fsync_stalls;
  r.window_stalls = rdb.replica_metrics().pipeline_stall_queue_full->value();
  return r;
}

std::string cell_name(const CellSpec& s) {
  std::string f = s.fsync_us == 0      ? "fsync0"
                  : s.fsync_us < 1000  ? "fsync" + std::to_string(s.fsync_us) +
                                            "us"
                                       : "fsync" +
                                            std::to_string(s.fsync_us / 1000) +
                                            "ms";
  return s.workload + "/" + f + "/depth" + std::to_string(s.depth);
}

}  // namespace

int main(int argc, char** argv) {
  bool fast = benchutil::fast_mode();
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--short") == 0) {
      fast = true;
    }
  }
  const int batches = fast ? 12 : 40;
  const int trials = fast ? 2 : 3;

  std::vector<CellSpec> cells;
  for (const std::string& wl : {std::string("catalog"), std::string("tpcc")}) {
    for (const std::uint64_t us : {std::uint64_t{0}, std::uint64_t{100},
                                   std::uint64_t{1000}}) {
      for (const unsigned depth : {0u, 2u}) {
        cells.push_back({wl, us, depth});
      }
    }
  }

  // Interleaved min-fold: every cell sees every phase of the host equally.
  std::vector<CellResult> best(cells.size());
  for (int t = 0; t < trials; ++t) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const CellResult r = run_trial(cells[c], batches);
      if (t == 0 || r.best_ms < best[c].best_ms) {
        const std::uint64_t prev_hash = best[c].final_hash;
        best[c] = r;
        if (t > 0 && prev_hash != r.final_hash) {
          std::cerr << "nondeterministic final hash across trials: "
                    << cell_name(cells[c]) << "\n";
          return 1;
        }
      } else if (best[c].final_hash != r.final_hash) {
        std::cerr << "nondeterministic final hash across trials: "
                  << cell_name(cells[c]) << "\n";
        return 1;
      }
    }
  }
  for (std::size_t c = 0; c < cells.size(); ++c) {
    best[c].batches_per_s =
        best[c].best_ms > 0 ? batches / best[c].best_ms * 1000.0 : 0;
  }

  // Determinism cross-check: depth 0 and depth 2 of the same (workload,
  // fsync) pair consumed the same stream and must agree byte-for-byte.
  for (std::size_t c = 0; c + 1 < cells.size(); c += 2) {
    if (best[c].final_hash != best[c + 1].final_hash) {
      std::cerr << "PIPELINE DIVERGENCE: " << cell_name(cells[c]) << " vs "
                << cell_name(cells[c + 1]) << "\n";
      return 1;
    }
  }

  benchutil::Table table({"workload", "fsync", "depth", "batches", "wall ms",
                          "agreed-batches/s", "window stalls", "fsync stalls",
                          "speedup"});
  std::map<std::string, double> json_cases;
  bool gate_ok = true;
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const CellSpec& s = cells[c];
    double speedup = 0;
    if (s.depth != 0) {
      const double base = best[c - 1].batches_per_s;  // depth 0 is previous
      speedup = base > 0 ? best[c].batches_per_s / base : 0;
      if (s.fsync_us == 1000 && speedup < 1.3) gate_ok = false;
    }
    table.row({s.workload,
               s.fsync_us == 0 ? "0" : std::to_string(s.fsync_us) + "us",
               std::to_string(s.depth), std::to_string(batches),
               std::to_string(best[c].best_ms).substr(0, 7),
               std::to_string(static_cast<std::uint64_t>(
                   best[c].batches_per_s)),
               std::to_string(best[c].window_stalls),
               std::to_string(best[c].fsync_stalls),
               s.depth == 0 ? "-" : std::to_string(speedup).substr(0, 5)});
    json_cases[cell_name(s)] = best[c].batches_per_s;
  }
  std::cout << "=== Pipelined replica apply: agreed-batches/sec, "
            << "fsync-latency sweep (best of " << trials << " trials) ===\n";
  table.print();

  if (!out_path.empty()) {
    std::ofstream js(out_path);
    js << "{\n  \"bench\": \"pipeline\",\n  \"mode\": \""
       << (fast ? "fast" : "full")
       << "\",\n  \"metric\": \"agreed-batches/sec (3-replica durable "
          "cluster)\",\n"
       << "  \"gate\": {\"field\": \"batches_per_s\", \"direction\": "
          "\"higher\"},\n  \"cases\": {\n";
    for (auto it = json_cases.begin(); it != json_cases.end(); ++it) {
      js << "    \"" << it->first << "\": {\"batches_per_s\": "
         << static_cast<std::uint64_t>(it->second) << "}";
      js << (std::next(it) == json_cases.end() ? "\n" : ",\n");
    }
    js << "  }\n}\n";
    js.close();
    std::cout << "wrote " << out_path << "\n";
  }

  if (!gate_ok) {
    std::cout << "PIPELINE GATE FAILED: depth 2 under 1.3x depth 0 at 1ms "
                 "fsync latency\n";
    return 1;
  }
  std::cout << "pipeline gate ok: depth 2 >= 1.3x depth 0 at 1ms fsync on "
               "both workloads; all depth pairs hash-identical.\n";
  return 0;
}
