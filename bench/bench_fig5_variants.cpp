// Figure 5 — the eight Prognosticator variants across the three design axes
// (Section IV-C): reconnaissance vs symbolic execution (-R suffix), multi-
// vs single-threaded preparation (MQ vs 1Q), and parallel vs sequential
// re-execution of failed transactions (MF vs SF).
//
// 5a: maximum sustainable TPC-C throughput per variant and contention level.
// 5b: per-transaction time split — DT preparation and failed re-execution.
#include <cstdlib>
#include <iostream>

#include "baselines/variants.hpp"
#include "benchutil/table.hpp"
#include "cases.hpp"

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  const bool wallclock = std::getenv("PROG_BENCH_WALLCLOCK") != nullptr;

  benchutil::TrialOptions opts;
  opts.modeled = !wallclock;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;
  const std::size_t max_batch = fast ? 2048 : 8192;

  const std::vector<int> warehouses = fast ? std::vector<int>{10, 1}
                                           : std::vector<int>{100, 10, 1};

  benchutil::Table tput({"variant", "warehouses", "batch size",
                         "throughput tx/s"});
  benchutil::Table times({"variant", "warehouses", "prepare us/DT",
                          "re-exec us/failed", "abort rate %"});

  for (int w : warehouses) {
    std::cout << "--- contention level: " << w << " warehouse(s) ---\n";
    for (const auto& variant : baselines::figure5_variants(20)) {
      const auto r = benchutil::max_sustainable(
          bench::tpcc_factory(w), variant.config, opts, max_batch);
      tput.row({variant.name, std::to_string(w),
                std::to_string(r.batch_size),
                benchutil::fmt_si(r.stats.throughput_tps)});
      times.row({variant.name, std::to_string(w),
                 benchutil::fmt(r.stats.prepare_us_per_dt, 1),
                 benchutil::fmt(r.stats.reexec_us_per_failed, 1),
                 benchutil::fmt(r.stats.abort_pct, 2)});
      std::cout << "  " << variant.name << ": "
                << benchutil::fmt_si(r.stats.throughput_tps)
                << " tx/s (prepare "
                << benchutil::fmt(r.stats.prepare_us_per_dt, 1) << " us/DT)\n";
    }
  }

  std::cout << "\n=== Figure 5a: throughput of the Prognosticator variants "
               "===\n";
  tput.print();
  std::cout << "\n=== Figure 5b: per-transaction execution time split ===\n";
  times.print();
  std::cout << "\nPaper shape check: SE variants beat their -R twins "
               "everywhere (reconnaissance\nruns the whole transaction to "
               "find the key-set, so prepare us/DT is larger);\nMQ beats 1Q "
               "on preparation time; MF wins at 100 warehouses while SF wins "
               "at 1.\n";
  return 0;
}
