// Figure 4 — RUBiS-C maximum sustainable throughput (4a) and normalized
// abort rates (4b). The mix is 50% store_bid plus the remaining four update
// transactions in equal shares; every transaction is a DT whose id
// generation contends on per-entity counters, making this the paper's
// high-contention case.
#include <cstdlib>
#include <iostream>

#include "baselines/variants.hpp"
#include "benchutil/table.hpp"
#include "cases.hpp"

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  const bool wallclock = std::getenv("PROG_BENCH_WALLCLOCK") != nullptr;

  benchutil::TrialOptions opts;
  opts.modeled = !wallclock;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 6 : 12;
  const std::size_t max_batch = fast ? 8192 : 32768;

  benchutil::Table tput(
      {"system", "batch size", "throughput tx/s", "p99 ms"});
  benchutil::Table aborts({"system", "abort rate %"});

  for (const auto& variant : baselines::figure3_systems(20)) {
    const auto r = benchutil::max_sustainable(bench::rubis_factory(),
                                              variant.config, opts, max_batch);
    tput.row({variant.name, std::to_string(r.batch_size),
              benchutil::fmt_si(r.stats.throughput_tps),
              benchutil::fmt(r.stats.p99_ms, 2)});
    aborts.row({variant.name, benchutil::fmt(r.stats.abort_pct, 2)});
    std::cout << variant.name << ": "
              << benchutil::fmt_si(r.stats.throughput_tps) << " tx/s, "
              << benchutil::fmt(r.stats.abort_pct, 2) << "% aborts\n";
  }

  std::cout << "\n=== Figure 4a: RUBiS maximum sustainable throughput ===\n";
  tput.print();
  std::cout << "\n=== Figure 4b: RUBiS normalized abort rates ===\n";
  aborts.print();
  std::cout << "\nPaper shape check: both Prognosticator variants beat every "
               "baseline (paper:\nMQ-SF 35% over NODO); Calvin suffers the "
               "highest abort rates; SF aborts less\nthan MF (paper: 3x) "
               "because failed id-generation txs tend to fail again when\n"
               "re-run in parallel.\n";
  return 0;
}
