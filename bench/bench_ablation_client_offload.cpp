// Ablation — client-side prediction offload for independent transactions
// (the optimization the paper describes in Section III-C but left
// unimplemented): the client ships payment's key-set with the request, so
// the server-side preparation pool shrinks. Measures the preparation load
// and sustainable throughput with and without the offload.
#include <iostream>

#include "benchutil/table.hpp"
#include "cases.hpp"

namespace {

/// TPC-C case that attaches client predictions to every IT request.
class OffloadCase final : public prog::benchutil::CaseContext {
 public:
  OffloadCase(const prog::sched::EngineConfig& cfg, int warehouses)
      : inner_(cfg, warehouses, 42) {}
  prog::db::Database& database() override { return inner_.database(); }
  std::vector<prog::sched::TxRequest> make_batch(std::size_t n) override {
    auto reqs = inner_.make_batch(n);
    for (auto& r : reqs) {
      r.client_pred = inner_.database().predict_client(r.proc, r.input);
    }
    return reqs;
  }

 private:
  prog::bench::TpccCase inner_;
};

}  // namespace

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  benchutil::TrialOptions opts;
  opts.modeled = true;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;

  benchutil::Table table({"mode", "warehouses", "throughput tx/s",
                          "prepare us/DT"});
  for (int w : {100, 10}) {
    for (bool offload : {false, true}) {
      sched::EngineConfig cfg;
      cfg.workers = 20;
      cfg.accept_client_predictions = offload;
      benchutil::CaseFactory factory =
          offload ? benchutil::CaseFactory([w](const sched::EngineConfig& c) {
              return std::unique_ptr<benchutil::CaseContext>(
                  new OffloadCase(c, w));
            })
                  : bench::tpcc_factory(w);
      const auto r = benchutil::max_sustainable(factory, cfg, opts,
                                                fast ? 2048 : 8192);
      table.row({offload ? "client offload" : "server prepare",
                 std::to_string(w),
                 benchutil::fmt_si(r.stats.throughput_tps),
                 benchutil::fmt(r.stats.prepare_us_per_dt, 1)});
    }
  }
  std::cout << "=== Ablation: client-side IT prediction offload (TPC-C) "
               "===\n";
  table.print();
  std::cout << "\n(The offload moves IT key-set computation to clients; DTs "
               "still prepare\nserver-side, so the prepare-us/DT column is "
               "unchanged while the shared\npreparation pool shrinks.)\n";
  return 0;
}
