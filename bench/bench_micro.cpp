// Micro-benchmarks (google-benchmark) for the building blocks: lock table,
// versioned store, constraint solver, profile prediction, interpreter.
#include <benchmark/benchmark.h>

#include "lang/builder.hpp"
#include "lang/interp.hpp"
#include "sched/lock_table.hpp"
#include "solver/solver.hpp"
#include "store/store.hpp"
#include "sym/symexec.hpp"
#include "workloads/tpcc.hpp"

namespace {

using namespace prog;

void BM_LockTableEnqueueRelease(benchmark::State& state) {
  const int keys_per_tx = static_cast<int>(state.range(0));
  sched::LockTable lt;
  std::vector<sched::TxIdx> granted;
  std::uint64_t tx = 0;
  for (auto _ : state) {
    const sched::TxIdx id = static_cast<sched::TxIdx>(tx++);
    for (int k = 0; k < keys_per_tx; ++k) {
      lt.enqueue(id, {1, static_cast<Key>((tx * 7 + k) % 1024)}, true);
    }
    for (int k = 0; k < keys_per_tx; ++k) {
      lt.release(id, {1, static_cast<Key>((tx * 7 + k) % 1024)}, granted);
    }
    granted.clear();
    // Model the engine's per-batch arena reset (the table is drained here);
    // without it the bump arena would grow for the whole benchmark run.
    if ((tx & 1023) == 0) lt.begin_batch();
  }
  state.SetItemsProcessed(state.iterations() * keys_per_tx);
}
BENCHMARK(BM_LockTableEnqueueRelease)->Arg(4)->Arg(16)->Arg(32);

void BM_StoreGet(benchmark::State& state) {
  store::VersionedStore s;
  for (Key k = 0; k < 100000; ++k) {
    s.put({1, k}, store::Row{{0, static_cast<Value>(k)}}, 0);
  }
  Key k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.get({1, (k++ * 2654435761u) % 100000}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreGet);

void BM_StorePut(benchmark::State& state) {
  store::VersionedStore s;
  Key k = 0;
  BatchId b = 1;
  for (auto _ : state) {
    s.put({1, k++ % 65536}, store::Row{{0, 1}, {1, 2}}, b);
    if (k % 65536 == 0) ++b;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StorePut);

void BM_SolverFeasibility(benchmark::State& state) {
  expr::ExprPool pool;
  solver::DomainMap domains;
  const expr::Expr* x = pool.input(0);
  const expr::Expr* y = pool.input(1);
  domains.declare(x, {0, 100});
  domains.declare(y, {0, 100});
  std::vector<const expr::Expr*> cs{
      pool.cmp(expr::Op::kLt, x, y),
      pool.cmp(expr::Op::kGe, pool.add(x, y), pool.constant(50)),
      pool.cmp(expr::Op::kLe, y, pool.constant(80)),
  };
  for (auto _ : state) {
    solver::Solver s;
    benchmark::DoNotOptimize(s.check(cs, domains));
  }
}
BENCHMARK(BM_SolverFeasibility);

void BM_ProfileBuildNewOrder(benchmark::State& state) {
  const auto sc = workloads::tpcc::Scale::small(4);
  const lang::Proc proc = workloads::tpcc::build_new_order(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sym::Profiler::profile(proc));
  }
}
BENCHMARK(BM_ProfileBuildNewOrder);

void BM_ProfilePredictNewOrder(benchmark::State& state) {
  const auto sc = workloads::tpcc::Scale::small(4);
  const lang::Proc proc = workloads::tpcc::build_new_order(sc);
  auto profile = sym::Profiler::profile(proc);
  store::VersionedStore s;
  workloads::tpcc::load(s, sc);
  store::SnapshotView view(s, 0);
  lang::TxInput in;
  in.add(0).add(3).add(7).add(10);
  in.add_array({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  in.add_array(std::vector<Value>(15, 0));
  in.add_array(std::vector<Value>(15, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile->predict(in, view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfilePredictNewOrder);

void BM_InterpNewOrder(benchmark::State& state) {
  const auto sc = workloads::tpcc::Scale::small(4);
  const lang::Proc proc = workloads::tpcc::build_new_order(sc);
  store::VersionedStore s;
  workloads::tpcc::load(s, sc);
  store::SnapshotView view(s, 0);
  lang::Interp interp;
  lang::TxInput in;
  in.add(0).add(3).add(7).add(10);
  in.add_array({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15});
  in.add_array(std::vector<Value>(15, 0));
  in.add_array(std::vector<Value>(15, 5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(interp.run(proc, in, view));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpNewOrder);

}  // namespace

BENCHMARK_MAIN();
