// Ablation — exclusive per-key queues (the paper's Figure-2 lock table) vs
// reader-sharing grants (Calvin-style reader/writer locks). Answers the
// DESIGN.md question: how much parallelism does exclusive-only locking give
// up on TPC-C, where update transactions also read hot rows?
#include <iostream>

#include "benchutil/table.hpp"
#include "cases.hpp"

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  benchutil::TrialOptions opts;
  opts.modeled = true;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;

  benchutil::Table table({"lock mode", "warehouses", "batch size",
                          "throughput tx/s", "abort rate %"});
  for (int w : {10, 1}) {
    for (bool shared : {false, true}) {
      sched::EngineConfig cfg;
      cfg.workers = 20;
      cfg.shared_read_locks = shared;
      const auto r = benchutil::max_sustainable(
          bench::tpcc_factory(w), cfg, opts, fast ? 2048 : 8192);
      table.row({shared ? "shared-read" : "exclusive", std::to_string(w),
                 std::to_string(r.batch_size),
                 benchutil::fmt_si(r.stats.throughput_tps),
                 benchutil::fmt(r.stats.abort_pct, 2)});
    }
  }
  std::cout << "=== Ablation: exclusive vs shared-read lock-table grants "
               "(TPC-C) ===\n";
  table.print();
  return 0;
}
