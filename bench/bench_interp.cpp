// Bytecode VM vs tree-walking interpreter (DESIGN.md §15).
//
// Three arms, all process-CPU time (CLOCK_PROCESS_CPUTIME_ID, element-wise
// minimum across repeats — the noise floor):
//
//   execute-only   a pre-generated transaction stream run straight through
//                  lang::Interp over a fixed store snapshot; VM vs the
//                  tree-walker, per-1000-transaction cost. Also measures the
//                  borrowed-row read path (ReadView::get_raw) against the
//                  legacy shared_ptr-copy-per-GET path.
//   predict-only   sym::TxProfile::predict_into over the same stream;
//                  compiled prediction programs vs the PSC-tree walk.
//   end-to-end     whole batches through db::Database::execute with
//                  EngineConfig::tree_walk_ablation off vs on.
//
// Before any timing, each arm replays both engines over the full stream and
// folds every observable (commit flags, emitted values, read/write sets,
// buffered ops, predicted key-sets, pivot hashes) into a witness hash; a
// mismatch fails the bench — speed without byte-identical semantics is a
// bug, not a result.
//
// The execute-only and predict-only speedups carry an IN-BINARY HARD GATE:
// below kHardGate the bench exits nonzero regardless of the checked-in
// baseline. CI additionally soft-gates BENCH_interp.json via
// tools/perf_gate.py (field "speedup", higher is better — a host-portable
// ratio, so the CI thresholds can stay tight).
// Flags: --short (CI smoke: fewer repeats, smaller streams), --out <path>.
#include <ctime>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "benchutil/harness.hpp"
#include "benchutil/table.hpp"
#include "cases.hpp"
#include "lang/bytecode/bytecode.hpp"
#include "lang/bytecode/pred_program.hpp"
#include "workloads/microbench.hpp"

namespace {

using namespace prog;

constexpr double kHardGate = 1.30;

double process_cpu_us() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

// --- workload streams -------------------------------------------------------

/// A database holding procedures + loaded state, plus a fixed pre-generated
/// request stream. Execute/predict arms replay the stream against the
/// batch-0 snapshot, so every pass sees identical data.
struct Stream {
  std::unique_ptr<db::Database> db;
  std::vector<sched::TxRequest> reqs;
};

workloads::micro::CatalogOptions hc_opts() {
  workloads::micro::CatalogOptions o;  // = bench_hotpath's hc-catalog scale
  o.catalog_keys = 64;
  o.accounts = 32768;
  o.reads_per_tx = 2;
  o.zipf_theta = 1.25;
  o.settle_accounts = 4;
  return o;
}

struct HcCatalogTemplate {
  std::vector<std::shared_ptr<const lang::Proc>> procs;
  std::vector<std::shared_ptr<const sym::TxProfile>> profiles;
  store::VersionedStore initial;

  HcCatalogTemplate() {
    const auto opts = hc_opts();
    auto add = [&](lang::Proc p) {
      procs.push_back(std::make_shared<const lang::Proc>(std::move(p)));
      profiles.emplace_back(sym::Profiler::profile(*procs.back()));
    };
    add(workloads::micro::build_order(opts));
    add(workloads::micro::build_reprice(opts));
    workloads::micro::load_catalog(initial, opts);
  }

  static const HcCatalogTemplate& get() {
    static HcCatalogTemplate tpl;
    return tpl;
  }
};

Stream make_catalog_stream(std::size_t n) {
  Stream s;
  s.db = std::make_unique<db::Database>(sched::EngineConfig{});
  const HcCatalogTemplate& tpl = HcCatalogTemplate::get();
  for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
    s.db->register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
  }
  tpl.initial.clone_visible_into(s.db->store());
  s.db->store().set_access_delay_ns(0);
  workloads::micro::CatalogWorkload wl(
      *s.db, hc_opts(), workloads::micro::CatalogWorkload::AttachOnly{});
  Rng rng(42);
  while (s.reqs.size() < n) {
    auto batch = wl.batch(256, /*reprice_count=*/64, rng);
    s.reqs.insert(s.reqs.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }
  s.reqs.resize(n);
  return s;
}

Stream make_tpcc_stream(std::size_t n) {
  Stream s;
  s.db = std::make_unique<db::Database>(sched::EngineConfig{});
  const bench::TpccTemplate& tpl = bench::TpccTemplate::get(4);
  for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
    s.db->register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
  }
  tpl.initial.clone_visible_into(s.db->store());
  s.db->store().set_access_delay_ns(0);
  workloads::tpcc::Workload wl(*s.db, workloads::tpcc::Scale::small(4),
                               workloads::tpcc::Workload::AttachOnly{});
  Rng rng(42);
  while (s.reqs.size() < n) {
    auto batch = wl.batch(256, rng);
    s.reqs.insert(s.reqs.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }
  s.reqs.resize(n);
  return s;
}

Stream make_rubis_stream(std::size_t n) {
  Stream s;
  s.db = std::make_unique<db::Database>(sched::EngineConfig{});
  const bench::RubisTemplate& tpl = bench::RubisTemplate::get();
  for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
    s.db->register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
  }
  tpl.initial.clone_visible_into(s.db->store());
  s.db->store().set_access_delay_ns(0);
  workloads::rubis::Workload wl(*s.db, tpl.scale,
                                workloads::rubis::Workload::AttachOnly{});
  Rng rng(42);
  while (s.reqs.size() < n) {
    auto batch = wl.batch(256, rng);
    s.reqs.insert(s.reqs.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  }
  s.reqs.resize(n);
  return s;
}

// --- witnesses --------------------------------------------------------------

std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ v);
}

std::uint64_t exec_witness(const Stream& s, const lang::Interp& interp) {
  store::SnapshotView view(s.db->store(), 0);
  lang::ExecResult r;
  std::uint64_t h = 0x5eed;
  for (const sched::TxRequest& req : s.reqs) {
    interp.run_into(s.db->procedure(req.proc), req.input, view, r);
    h = fold(h, r.committed ? 1 : 0);
    for (Value v : r.emitted) h = fold(h, static_cast<std::uint64_t>(v));
    for (const TKey& k : r.reads) h = fold(fold(h, k.table), k.key);
    for (const TKey& k : r.writes) h = fold(fold(h, k.table), k.key);
    for (const lang::WriteOp& op : r.ops) {
      h = fold(fold(h, op.key.table), op.key.key);
      h = fold(h, op.row.has_value() ? op.row->hash() : 0);
    }
  }
  return h;
}

std::uint64_t predict_witness(const Stream& s, bool tree_walk) {
  store::SnapshotView view(s.db->store(), 0);
  sym::Prediction p;
  std::uint64_t h = 0x5eed;
  for (const sched::TxRequest& req : s.reqs) {
    s.db->profile(req.proc).predict_into(req.input, view, p, tree_walk);
    for (const TKey& k : p.keys) h = fold(fold(h, k.table), k.key);
    for (const TKey& k : p.write_keys) h = fold(fold(h, k.table), k.key);
    for (const sym::PivotObservation& obs : p.pivots) {
      h = fold(fold(fold(h, obs.key.table), obs.key.key), obs.version_hash);
    }
  }
  return h;
}

// --- timed passes -----------------------------------------------------------

double exec_pass_us(const Stream& s, const lang::Interp& interp) {
  store::SnapshotView view(s.db->store(), 0);
  lang::ExecResult r;
  const double t0 = process_cpu_us();
  for (const sched::TxRequest& req : s.reqs) {
    interp.run_into(s.db->procedure(req.proc), req.input, view, r);
  }
  return process_cpu_us() - t0;
}

double exec_owned_pass_us(const Stream& s) {
  store::SnapshotView view(s.db->store(), 0);
  lang::ExecResult r;
  const double t0 = process_cpu_us();
  for (const sched::TxRequest& req : s.reqs) {
    bytecode::run(*s.db->procedure(req.proc).code, req.input, view, 1u << 22,
                  r, /*borrow_rows=*/false);
  }
  return process_cpu_us() - t0;
}

double predict_pass_us(const Stream& s, bool tree_walk) {
  store::SnapshotView view(s.db->store(), 0);
  sym::Prediction p;
  const double t0 = process_cpu_us();
  for (const sched::TxRequest& req : s.reqs) {
    s.db->profile(req.proc).predict_into(req.input, view, p, tree_walk);
  }
  return process_cpu_us() - t0;
}


// --- end-to-end arm ---------------------------------------------------------

struct E2eCost {
  double cpu_us_per_batch = 0;
  std::uint64_t state_hash = 0;
};

E2eCost run_e2e(bool tree_walk, std::size_t batch_size, int warmup,
                int measured, int repeats) {
  std::vector<double> floor_us;
  std::uint64_t hash = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    sched::EngineConfig cfg;
    cfg.workers = 8;
    cfg.tree_walk_ablation = tree_walk;
    db::Database db(cfg);
    const HcCatalogTemplate& tpl = HcCatalogTemplate::get();
    for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
      db.register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
    }
    tpl.initial.clone_visible_into(db.store());
    db.store().set_access_delay_ns(0);
    workloads::micro::CatalogWorkload wl(
        db, hc_opts(), workloads::micro::CatalogWorkload::AttachOnly{});
    Rng rng(42);
    for (int i = 0; i < warmup; ++i) {
      db.execute(wl.batch(batch_size, batch_size / 4, rng));
    }
    std::vector<double> batch_us;
    for (int i = 0; i < measured; ++i) {
      auto batch = wl.batch(batch_size, batch_size / 4, rng);
      const double t0 = process_cpu_us();
      db.execute(std::move(batch));
      batch_us.push_back(process_cpu_us() - t0);
    }
    if (floor_us.empty()) {
      floor_us = batch_us;
    } else {
      for (std::size_t i = 0; i < floor_us.size(); ++i) {
        floor_us[i] = std::min(floor_us[i], batch_us[i]);
      }
    }
    hash = db.state_hash();  // identical streams -> identical every repeat
  }
  double total = 0;
  for (double us : floor_us) total += us;
  return {total / measured, hash};
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = benchutil::fast_mode();
  std::string out_path = "BENCH_interp.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int repeats = short_mode ? 5 : 9;
  const std::size_t stream_len = short_mode ? 8192 : 32768;

  const lang::Interp vm;  // bytecode by default
  const lang::Interp tree(lang::Interp::Options{.tree_walk = true});

  struct CaseResult {
    double base_us_per_ktx = 0;  // tree-walk (or owned-row) cost
    double vm_us_per_ktx = 0;
    double speedup = 0;
    bool hard_gated = false;
  };
  std::map<std::string, CaseResult> results;
  bool witnesses_ok = true;

  // The hard gate rides TPC-C, whose multi-statement loops carry real
  // interpretation work per transaction: the VM clears 1.3x there with wide
  // margin (~1.6-1.9x) on every run. The small-transaction workloads (RUBiS
  // ~2-4 statements, hot-key catalog ~3) spend most of each transaction in
  // store probes both engines pay identically, which floors their achievable
  // ratio right at the gate line (~1.2-1.4x run to run) — they stay in the
  // report (and under the CI soft gate) as regression tripwires, but a hard
  // gate on them would flake on machine noise rather than catch regressions.
  struct NamedStream {
    std::string name;
    Stream stream;
    bool hard_gated;
  };
  std::vector<NamedStream> streams;
  streams.push_back({"tpcc-4wh", make_tpcc_stream(stream_len), true});
  streams.push_back({"rubis", make_rubis_stream(stream_len), false});
  streams.push_back({"hc-catalog", make_catalog_stream(stream_len), false});

  for (const NamedStream& ns : streams) {
    const Stream& s = ns.stream;
    const double ktx = static_cast<double>(s.reqs.size()) / 1000.0;

    // Semantics first: both engines replay the stream to the same witness.
    if (exec_witness(s, vm) != exec_witness(s, tree)) {
      std::cerr << "FAIL: " << ns.name
                << ": execute witness diverged (VM vs tree-walker)\n";
      witnesses_ok = false;
    }
    if (predict_witness(s, false) != predict_witness(s, true)) {
      std::cerr << "FAIL: " << ns.name
                << ": prediction witness diverged (VM vs PSC tree)\n";
      witnesses_ok = false;
    }

    // One repeat = all five passes back-to-back, so both engines see the
    // same thermal/frequency conditions; each side then min-folds across
    // repeats. Folding whole blocks of repeats per engine instead lets
    // machine drift between the blocks masquerade as a speedup change.
    double tree_exec = 1e300, vm_exec = 1e300, owned_exec = 1e300;
    double tree_pred = 1e300, vm_pred = 1e300;
    for (int r = 0; r < repeats; ++r) {
      tree_exec = std::min(tree_exec, exec_pass_us(s, tree));
      vm_exec = std::min(vm_exec, exec_pass_us(s, vm));
      owned_exec = std::min(owned_exec, exec_owned_pass_us(s));
      tree_pred = std::min(tree_pred, predict_pass_us(s, true));
      vm_pred = std::min(vm_pred, predict_pass_us(s, false));
    }

    results["exec/" + ns.name] = {tree_exec / ktx, vm_exec / ktx,
                                  tree_exec / vm_exec, ns.hard_gated};
    results["predict/" + ns.name] = {tree_pred / ktx, vm_pred / ktx,
                                     tree_pred / vm_pred, ns.hard_gated};
    // Borrowed-row delta: same VM, shared_ptr copy per GET vs const Row*.
    results["rowptr-borrow/" + ns.name] = {owned_exec / ktx, vm_exec / ktx,
                                           owned_exec / vm_exec,
                                           /*hard_gated=*/false};
  }

  {
    const std::size_t batch = short_mode ? 512 : 1024;
    const int warmup = 2;
    const int measured = short_mode ? 6 : 12;
    const int e2e_repeats = short_mode ? 3 : 5;
    const E2eCost with_tree =
        run_e2e(true, batch, warmup, measured, e2e_repeats);
    const E2eCost with_vm =
        run_e2e(false, batch, warmup, measured, e2e_repeats);
    if (with_tree.state_hash != with_vm.state_hash) {
      std::cerr << "FAIL: e2e/hc-catalog-8w: final state diverged between "
                   "tree_walk_ablation on and off\n";
      witnesses_ok = false;
    }
    results["e2e/hc-catalog-8w"] = {
        with_tree.cpu_us_per_batch / (static_cast<double>(batch) / 1000.0),
        with_vm.cpu_us_per_batch / (static_cast<double>(batch) / 1000.0),
        with_tree.cpu_us_per_batch / with_vm.cpu_us_per_batch,
        /*hard_gated=*/false};
  }

  benchutil::Table table({"case", "tree us/ktx", "vm us/ktx", "speedup"});
  bool hard_gate_ok = true;
  for (const auto& [name, r] : results) {
    table.row({name, benchutil::fmt(r.base_us_per_ktx, 1),
               benchutil::fmt(r.vm_us_per_ktx, 1),
               benchutil::fmt(r.speedup, 2) +
                   (r.hard_gated && r.speedup < kHardGate ? "  << GATE" : "")});
    if (r.hard_gated && r.speedup < kHardGate) hard_gate_ok = false;
  }
  std::cout << "=== Bytecode VM vs tree-walking interpreter (CPU time) ===\n";
  table.print();
  if (!hard_gate_ok) {
    std::cerr << "FAIL: hard gate: execute/predict speedup below "
              << kHardGate << "x\n";
  }
  if (!witnesses_ok) {
    std::cerr << "FAIL: witness divergence (see above)\n";
  }

  std::ofstream js(out_path);
  js << "{\n  \"bench\": \"interp\",\n  \"mode\": \""
     << (short_mode ? "short" : "full")
     << "\",\n  \"metric\": \"speedup_vs_tree_walk\",\n"
     << "  \"hard_gate\": " << benchutil::fmt(kHardGate, 2) << ",\n"
     << "  \"gate\": {\"field\": \"speedup\", \"direction\": \"higher\"},\n"
     << "  \"cases\": {\n";
  for (auto it = results.begin(); it != results.end(); ++it) {
    const CaseResult& r = it->second;
    js << "    \"" << it->first
       << "\": {\"tree_us_per_ktx\": " << benchutil::fmt(r.base_us_per_ktx, 1)
       << ", \"vm_us_per_ktx\": " << benchutil::fmt(r.vm_us_per_ktx, 1)
       << ", \"speedup\": " << benchutil::fmt(r.speedup, 3) << "}"
       << (std::next(it) == results.end() ? "\n" : ",\n");
  }
  js << "  }\n}\n";
  js.close();
  std::cout << "wrote " << out_path << "\n";

  return witnesses_ok && hard_gate_ok ? 0 : 1;
}
