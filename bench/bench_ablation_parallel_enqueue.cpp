// Ablation — parallel lock-table population. The single Queuer Thread is
// the structural bottleneck the paper repeatedly worries about ("whenever a
// worker thread ... becomes idle, it can help the Queuer Thread by acquiring
// locks"); this generalizes that idea: the key space is hash-partitioned
// across queuer + workers, each walking the agreed order for its own keys,
// so per-queue order (and hence determinism) is preserved.
#include <iostream>

#include "benchutil/table.hpp"
#include "cases.hpp"

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  benchutil::TrialOptions opts;
  opts.modeled = true;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;

  benchutil::Table table({"enqueue", "warehouses", "batch size",
                          "throughput tx/s"});
  for (int w : {100, 10}) {
    for (bool parallel : {false, true}) {
      sched::EngineConfig cfg;
      cfg.workers = 20;
      cfg.parallel_enqueue = parallel;
      const auto r = benchutil::max_sustainable(
          bench::tpcc_factory(w), cfg, opts, fast ? 2048 : 8192);
      table.row({parallel ? "partitioned (21 ways)" : "single queuer",
                 std::to_string(w), std::to_string(r.batch_size),
                 benchutil::fmt_si(r.stats.throughput_tps)});
    }
  }
  std::cout << "=== Ablation: single-queuer vs partitioned lock-table "
               "population (TPC-C) ===\n";
  table.print();
  return 0;
}
