// Ablation — throughput and p99 latency as a function of batch size: the
// knob behind the paper's "maximum sustainable throughput" methodology
// (batch interval 10 ms, p99 limit 10 ms). Prints the full curve for MQ-MF
// so the sustainability cliff is visible.
#include <iostream>

#include "benchutil/table.hpp"
#include "cases.hpp"

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  benchutil::TrialOptions opts;
  opts.modeled = true;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;

  sched::EngineConfig cfg;
  cfg.workers = 20;

  benchutil::Table table({"batch size", "throughput tx/s", "p99 ms",
                          "abort rate %", "sustainable"});
  for (std::size_t n = 8; n <= (fast ? 2048u : 8192u); n *= 2) {
    const auto s = benchutil::run_trial(bench::tpcc_factory(10), cfg, n, opts);
    table.row({std::to_string(n), benchutil::fmt_si(s.throughput_tps),
               benchutil::fmt(s.p99_ms, 2), benchutil::fmt(s.abort_pct, 2),
               s.sustainable ? "yes" : "no"});
    if (!s.sustainable) break;
  }
  std::cout << "=== Ablation: throughput/latency vs batch size (TPC-C, 10 "
               "warehouses, MQ-MF) ===\n";
  table.print();
  return 0;
}
