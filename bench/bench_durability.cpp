// Durability bench: the write path and the recovery path of the durable
// replica storage.
//
// Three tables:
//   1. WAL group commit — append+fsync throughput per batch size, on the
//      real file system (PosixVfs, a temp directory) and on the in-memory
//      FaultVfs (the simulator's disk, i.e. the cost ceiling the fuzzing
//      layer pays);
//   2. checkpoint publish — encode + atomic write (tmp + fsync + rename +
//      dir fsync) latency across image sizes;
//   3. crash-recovery fuzz cells — one seeded end-to-end scenario per fault
//      mode, reporting which recovery paths fired and the wall cost of the
//      whole scenario. Every row reproduces from the printed seed.
//
//   PROG_BENCH_FAST=1  — fewer records / smaller images (CI smoke).
//   --out <path>       — also write a BENCH_durability.json result: the WAL
//                        and checkpoint throughput cases, gate field
//                        "throughput" (records/s for WAL rows, MB/s for
//                        checkpoint rows), higher is better. CI soft-gates it
//                        against the checked-in baseline via
//                        tools/perf_gate.py with loose thresholds (absolute
//                        I/O throughput is host-dependent). Only the cases
//                        present in every mode are emitted, so a fast-mode
//                        run gates cleanly against a full-mode baseline.
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "benchutil/harness.hpp"
#include "benchutil/table.hpp"
#include "consensus/recovery_fuzz.hpp"
#include "dur/fault_vfs.hpp"
#include "dur/storage.hpp"
#include "lang/builder.hpp"

using namespace prog;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

dur::WalRecord make_record(std::uint64_t seq, std::size_t batch_size) {
  dur::WalRecord rec;
  rec.seq = seq;
  rec.term = 1;
  rec.command = seq - 1;
  rec.state_hash = seq * 0x9E3779B97F4A7C15ull;
  rec.batch.reserve(batch_size);
  for (std::size_t i = 0; i < batch_size; ++i) {
    sched::TxRequest r;
    r.proc = static_cast<std::uint32_t>(i % 7);
    r.tag = seq * 1000 + i;
    r.input.add(static_cast<Value>(i * 31));
    r.input.add(static_cast<Value>(i));
    rec.batch.push_back(std::move(r));
  }
  return rec;
}

struct WalRow {
  double recs_per_s = 0;
  double mb_per_s = 0;
};

WalRow wal_throughput(dur::Vfs& vfs, const std::string& dir,
                      std::size_t batch_size, std::uint64_t records) {
  dur::StorageOptions opts;
  dur::DurableReplicaStorage st(vfs, dir, opts);
  std::uint64_t bytes = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t s = 1; s <= records; ++s) {
    const dur::WalRecord rec = make_record(s, batch_size);
    bytes += dur::frame_wal_record(dur::encode_wal_payload(rec)).size();
    st.append_batch(rec);
  }
  const double ms = ms_since(t0);
  WalRow row;
  row.recs_per_s = ms > 0 ? records / ms * 1000.0 : 0;
  row.mb_per_s = ms > 0 ? bytes / ms / 1048.576 : 0;
  return row;
}

std::string posix_scratch_dir() {
  return "/tmp/prog_bench_dur_" + std::to_string(::getpid());
}

void posix_cleanup(dur::PosixVfs& vfs, const std::string& root) {
  if (!vfs.exists(root) && vfs.list(root).empty()) return;
  for (const std::string& sub : vfs.list(root)) {
    const std::string subdir = root + "/" + sub;
    for (const std::string& name : vfs.list(subdir)) {
      vfs.remove(subdir + "/" + name);
    }
  }
}

// Tiny counter workload for the fuzz cells (same shape as the test suite).
constexpr TableId kT = 1;
constexpr Value kKeys = 64;

consensus::ReplicatedDb::SetupFn bump_setup() {
  return [](db::Database& d) {
    lang::ProcBuilder b("bump");
    auto k = b.param("k", 0, kKeys - 1);
    auto amt = b.param("amt", 1, 9);
    auto row = b.get(kT, k);
    b.put(kT, k, {{0, row.field(0) + amt}});
    d.register_procedure(std::move(b).build());
    for (Key key = 0; key < static_cast<Key>(kKeys); ++key) {
      d.store().put({kT, key}, store::Row{{0, 100}}, 0);
    }
    d.finalize();
  };
}

std::vector<sched::TxRequest> bump_batch(std::size_t n, Rng& rng) {
  std::vector<sched::TxRequest> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sched::TxRequest r;
    r.proc = 0;
    r.input.add(rng.uniform(0, kKeys - 1));
    r.input.add(rng.uniform(1, 9));
    out.push_back(std::move(r));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool fast = benchutil::fast_mode();
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  // case name -> throughput (records/s for WAL, MB/s for checkpoints).
  std::map<std::string, double> json_cases;

  // --- 1. WAL group commit ---------------------------------------------------
  {
    const std::uint64_t posix_records = fast ? 200 : 2000;
    const std::uint64_t mem_records = fast ? 2000 : 20000;
    dur::PosixVfs posix;
    const std::string root = posix_scratch_dir();
    benchutil::Table table(
        {"vfs", "txns/record", "records", "records/s", "MB/s"});
    int run = 0;
    for (const std::size_t bs : {std::size_t{1}, std::size_t{8},
                                 std::size_t{32}}) {
      const WalRow p = wal_throughput(
          posix, root + "/p" + std::to_string(run), bs, posix_records);
      table.row({"posix (fsync/record)", std::to_string(bs),
                 std::to_string(posix_records),
                 std::to_string(static_cast<std::uint64_t>(p.recs_per_s)),
                 std::to_string(p.mb_per_s).substr(0, 6)});
      json_cases["wal-posix/bs" + std::to_string(bs)] = p.recs_per_s;
      dur::FaultVfs mem(1);
      const WalRow m = wal_throughput(mem, "m", bs, mem_records);
      table.row({"faultvfs (in-memory)", std::to_string(bs),
                 std::to_string(mem_records),
                 std::to_string(static_cast<std::uint64_t>(m.recs_per_s)),
                 std::to_string(m.mb_per_s).substr(0, 6)});
      json_cases["wal-mem/bs" + std::to_string(bs)] = m.recs_per_s;
      ++run;
    }
    std::cout << "=== Durability: WAL append + group-commit fsync ===\n";
    table.print();
    posix_cleanup(posix, root);
  }

  // --- 2. checkpoint publish -------------------------------------------------
  {
    // 64 KiB and 256 KiB run in every mode (they are the gated JSON cases);
    // the 4 MiB image is full-mode-only color for the table.
    std::vector<std::size_t> sizes = {std::size_t{64} << 10,
                                      std::size_t{256} << 10};
    if (!fast) sizes.push_back(std::size_t{4} << 20);
    dur::PosixVfs posix;
    const std::string root = posix_scratch_dir() + "/ckpt";
    benchutil::Table table({"vfs", "image bytes", "publish ms", "MB/s"});
    dur::FaultVfs mem(2);
    auto publish = [&table](dur::Vfs& vfs, const char* name,
                            const std::string& dir,
                            const dur::CheckpointImage& cp) {
      vfs.mkdirs(dir);
      const auto t0 = std::chrono::steady_clock::now();
      dur::write_checkpoint_file(vfs, dir, dir + "/ckpt-bench", cp);
      const double ms = ms_since(t0);
      const double mb_s = ms > 0 ? cp.image.size() / ms / 1048.576 : 0;
      table.row({name, std::to_string(cp.image.size()),
                 std::to_string(ms).substr(0, 6),
                 std::to_string(mb_s).substr(0, 7)});
      vfs.remove(dir + "/ckpt-bench");
      return mb_s;
    };
    for (const std::size_t sz : sizes) {
      dur::CheckpointImage cp;
      cp.seq = 42;
      cp.term = 2;
      cp.state_hash = 0xFEEDFACEull;
      cp.image.assign(sz, 'x');
      const double p = publish(posix, "posix", root, cp);
      const double m = publish(mem, "faultvfs", "c", cp);
      if (sz <= (std::size_t{256} << 10)) {
        const std::string kib = std::to_string(sz >> 10) + "KiB";
        json_cases["ckpt-posix/" + kib] = p;
        json_cases["ckpt-mem/" + kib] = m;
      }
    }
    std::cout << "\n=== Durability: atomic checkpoint publish "
                 "(encode + tmp + fsync + rename) ===\n";
    table.print();
  }

  // --- 3. crash-recovery fuzz cells ------------------------------------------
  {
    const std::uint64_t seeds = fast ? 1 : 2;
    const dur::FaultMode modes[] = {
        dur::FaultMode::kTornTail, dur::FaultMode::kPartialWrite,
        dur::FaultMode::kBitFlip, dur::FaultMode::kFsyncNoop};
    benchutil::Table table({"mode", "seed", "batches", "durable recov",
                            "wal replayed", "torn", "quarantined",
                            "snap installs", "wall ms", "ok"});
    bool all_ok = true;
    for (const dur::FaultMode mode : modes) {
      for (std::uint64_t s = 1; s <= seeds; ++s) {
        consensus::RecoveryFuzzOptions opts;
        opts.mode = mode;
        opts.warmup_rounds = fast ? 5 : 8;
        opts.armed_rounds = fast ? 5 : 8;
        opts.post_rounds = 3;
        opts.batch_size = 8;
        opts.recovery.checkpoint_interval = 3;
        const std::uint64_t seed = s * 101;
        const auto t0 = std::chrono::steady_clock::now();
        const consensus::RecoveryFuzzReport rep =
            consensus::run_recovery_fuzz(bump_setup(), bump_batch, opts, seed);
        const double ms = ms_since(t0);
        all_ok = all_ok && rep.ok();
        table.row({dur::to_string(mode), std::to_string(seed),
                   std::to_string(rep.batches_submitted),
                   std::to_string(rep.recovery.durable_recoveries),
                   std::to_string(rep.recovery.wal_records_replayed),
                   std::to_string(rep.torn_tails_truncated),
                   std::to_string(rep.records_quarantined),
                   std::to_string(rep.recovery.snapshot_installs),
                   std::to_string(static_cast<std::uint64_t>(ms)),
                   rep.ok() ? "yes" : "NO"});
      }
    }
    std::cout << "\n=== Durability: crash-recovery fuzz scenarios "
                 "(kill-at-syscall x fault mode) ===\n";
    table.print();
    if (!all_ok) {
      std::cout << "RECOVERY FAILURE DETECTED\n";
      return 1;
    }
    std::cout << "all scenarios recovered byte-identical to the witness.\n";
  }

  if (!out_path.empty()) {
    std::ofstream js(out_path);
    js << "{\n  \"bench\": \"durability\",\n  \"mode\": \""
       << (fast ? "fast" : "full")
       << "\",\n  \"metric\": \"throughput (records/s WAL, MB/s ckpt)\",\n"
       << "  \"gate\": {\"field\": \"throughput\", \"direction\": "
          "\"higher\"},\n  \"cases\": {\n";
    for (auto it = json_cases.begin(); it != json_cases.end(); ++it) {
      js << "    \"" << it->first << "\": {\"throughput\": "
         << static_cast<std::uint64_t>(it->second) << "}";
      js << (std::next(it) == json_cases.end() ? "\n" : ",\n");
    }
    js << "  }\n}\n";
    js.close();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}
