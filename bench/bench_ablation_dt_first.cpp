// Ablation — the paper's design decision of enqueueing DTs ahead of ITs
// ("so that they get executed earlier to further reduce the likelihood of
// abort", Section III-C). Compares abort rates and throughput with the
// decision inverted (pure agreed order).
#include <iostream>

#include "benchutil/table.hpp"
#include "cases.hpp"

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  benchutil::TrialOptions opts;
  opts.modeled = true;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;

  benchutil::Table table({"enqueue order", "warehouses", "throughput tx/s",
                          "abort rate %"});
  for (int w : {10, 1}) {
    for (bool dt_first : {true, false}) {
      sched::EngineConfig cfg;
      cfg.workers = 20;
      cfg.dt_before_it = dt_first;
      const auto r = benchutil::max_sustainable(
          bench::tpcc_factory(w), cfg, opts, fast ? 2048 : 8192);
      table.row({dt_first ? "DTs first (paper)" : "agreed order",
                 std::to_string(w),
                 benchutil::fmt_si(r.stats.throughput_tps),
                 benchutil::fmt(r.stats.abort_pct, 2)});
    }
  }
  std::cout << "=== Ablation: DT-before-IT enqueue order (TPC-C) ===\n";
  table.print();
  return 0;
}
