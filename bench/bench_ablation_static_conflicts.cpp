// Ablation — txlint pass 3: static conflict-matrix lock elision.
//
// The engine's per-round conflict census (EngineConfig::
// static_conflict_elision) skips lock-table entries for keys whose tables
// provably cannot be the source of a cross-transaction conflict in the
// round. Two questions:
//
//   1. TPC-C: the five transaction types all conflict pairwise on at least
//      one table (see `txlint --matrix-only`), so the census should elide
//      almost nothing — the ablation must show *parity*, i.e. the census
//      costs nothing when it cannot help.
//   2. Catalog mix: order transactions read a catalog table that only a
//      rare reprice transaction writes. Whole-schema reasoning (the
//      immutable-table elision) can never skip those read locks; the
//      per-round census elides them in every reprice-free batch. The
//      ablation should show a throughput win.
//
// The "dep edges/batch" column is the *deterministic* witness: the mean
// lock-table dependency-DAG edge count over a fixed request stream. Unlike
// the throughput column (which inherits service-time measurement noise on a
// loaded host, wobbling the sustainable-batch search by a step), the edge
// count is a pure function of the agreed order and the census — identical
// values for TPC-C on/off prove structural parity exactly.
#include <cstdint>
#include <iostream>

#include "benchutil/table.hpp"
#include "cases.hpp"

namespace {

/// Mean lock-table dependency edges per batch over a fresh context running
/// `batches` batches of `batch_size`. Deterministic: edges derive from the
/// agreed order and the census alone (worker count does not matter; use 1
/// so the probe stays cheap on small hosts).
double mean_dep_edges(const prog::benchutil::CaseFactory& factory,
                      prog::sched::EngineConfig cfg, std::size_t batch_size,
                      int batches) {
  cfg.workers = 1;
  auto ctx = factory(cfg);
  prog::sched::BatchTrace trace;
  std::uint64_t edges = 0;
  for (int i = 0; i < batches; ++i) {
    ctx->database().execute_traced(ctx->make_batch(batch_size), &trace);
    for (const auto& a : trace.attempts) edges += a.preds.size();
  }
  return static_cast<double>(edges) / batches;
}

}  // namespace

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  benchutil::TrialOptions opts;
  opts.modeled = true;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;
  const int edge_batches = 8;

  benchutil::Table table({"workload", "conflict elision", "batch size",
                          "throughput tx/s", "abort rate %",
                          "dep edges/batch"});
  for (bool elide : {false, true}) {
    sched::EngineConfig cfg;
    cfg.workers = 20;
    cfg.static_conflict_elision = elide;
    const auto factory = bench::tpcc_factory(10);
    const auto r =
        benchutil::max_sustainable(factory, cfg, opts, fast ? 2048 : 8192);
    table.row({"tpcc-10wh", elide ? "on" : "off",
               std::to_string(r.batch_size),
               benchutil::fmt_si(r.stats.throughput_tps),
               benchutil::fmt(r.stats.abort_pct, 2),
               benchutil::fmt(
                   mean_dep_edges(factory, cfg, fast ? 512 : 2048,
                                  edge_batches),
                   1)});
  }
  // Low-conflict mix at two reprice cadences. The census is batch-granular:
  // a batch that contains even one reprice keeps all its catalog locks, so
  // with frequent reprice batches (period 4) the p99-gating batch is the
  // same under both configs and the ablation shows throughput parity even
  // though the edge column records the elision thinning the other batches.
  // When reprices land out-of-band in rare maintenance batches (period 128
  // — none inside the measured window), every measured round is provably
  // catalog-read-only and the elision's win is fully visible. Schema-level
  // reasoning (the immutable-table elision) can never skip these locks in
  // either case, because micro_reprice *exists*.
  for (unsigned period : {4u, 128u}) {
    for (bool elide : {false, true}) {
      sched::EngineConfig cfg;
      cfg.workers = 20;
      cfg.static_conflict_elision = elide;
      const auto factory = bench::catalog_factory(period);
      const auto r =
          benchutil::max_sustainable(factory, cfg, opts, fast ? 4096 : 16384);
      table.row({"catalog-mix/p" + std::to_string(period),
                 elide ? "on" : "off", std::to_string(r.batch_size),
                 benchutil::fmt_si(r.stats.throughput_tps),
                 benchutil::fmt(r.stats.abort_pct, 2),
                 benchutil::fmt(
                     mean_dep_edges(factory, cfg, fast ? 2048 : 4096,
                                    edge_batches),
                     1)});
    }
  }
  std::cout << "=== Ablation: static conflict-matrix lock elision "
               "(txlint pass 3) ===\n";
  table.print();
  return 0;
}
