// Ablation — contention sweep on the YCSB-style micro-workload: how the
// deterministic engine's advantage over NODO and SEQ degrades as Zipf skew
// concentrates the writes on a handful of hot keys. Complements the paper's
// warehouse-count axis with a continuous contention knob.
#include <iostream>
#include <memory>

#include "baselines/variants.hpp"
#include "benchutil/table.hpp"
#include "benchutil/harness.hpp"
#include "workloads/microbench.hpp"

namespace {

class MicroCase final : public prog::benchutil::CaseContext {
 public:
  MicroCase(const prog::sched::EngineConfig& cfg,
            prog::workloads::micro::Options opts)
      : db_(cfg), rng_(42) {
    wl_ = std::make_unique<prog::workloads::micro::Workload>(db_, opts);
    db_.store().set_access_delay_ns(1000);
  }
  prog::db::Database& database() override { return db_; }
  std::vector<prog::sched::TxRequest> make_batch(std::size_t n) override {
    return wl_->batch(n, rng_);
  }

 private:
  prog::db::Database db_;
  std::unique_ptr<prog::workloads::micro::Workload> wl_;
  prog::Rng rng_;
};

}  // namespace

int main() {
  using namespace prog;
  const bool fast = benchutil::fast_mode();
  benchutil::TrialOptions opts;
  opts.modeled = true;
  opts.modeled_workers = 20;
  opts.warmup_batches = 2;
  opts.measured_batches = fast ? 5 : 10;

  benchutil::Table table({"zipf theta", "system", "throughput tx/s"});
  for (double theta : {0.0, 0.8, 0.99, 1.2}) {
    workloads::micro::Options mopts;
    mopts.keys = 50000;
    mopts.zipf_theta = theta;
    auto factory = [mopts](const sched::EngineConfig& cfg) {
      return std::unique_ptr<benchutil::CaseContext>(
          new MicroCase(cfg, mopts));
    };
    for (const auto& variant :
         {baselines::prognosticator(true, true, false, 20),
          baselines::nodo(20), baselines::seq()}) {
      const auto r = benchutil::max_sustainable(factory, variant.config,
                                                opts, fast ? 2048 : 8192);
      table.row({benchutil::fmt(theta, 2), variant.name,
                 benchutil::fmt_si(r.stats.throughput_tps)});
    }
  }
  std::cout << "=== Ablation: contention sweep (YCSB-style RMW, Zipf keys) "
               "===\n";
  table.print();
  std::cout << "\n(All RMW transactions here are ITs — keys come from "
               "inputs — so Prognosticator\nnever aborts; its advantage "
               "shrinks as hot keys serialize the DAG.)\n";
  return 0;
}
