// Scheduler hot-path cost bench (DESIGN.md §10).
//
// Measures the absolute per-batch process-CPU cost of the scheduling hot
// path — the epoch-arena flat lock table, the per-worker work-stealing ready
// deques, the allocation-free prediction/result arenas, and bounded idle
// backoff. (The legacy pre-overhaul path this bench originally ablated
// against was removed after its one-release grace period; the 1.3x speedup
// it demonstrated is recorded in BENCH_hotpath history and DESIGN.md §10.)
//
// Workloads (store access delay 0 — scheduling cost must not hide behind an
// emulated storage stall):
//   hc-catalog   high-contention catalog mix: 64 hot Zipf(1.25) catalog keys,
//                1/4 of each batch repricing them — long lock queues, grant
//                cascades (update-transaction throughput is the paper-facing
//                number);
//   tpcc-4wh     the paper's TPC-C mix (NewOrder/Payment/...), 4 warehouses;
//   micro-rmw    uniform-ish YCSB RMW (Zipf 0.9), the low-conflict floor.
//
// Methodology (= bench_ablation_telemetry): repeated runs over
// byte-identical request streams, per-batch *process CPU time*
// (CLOCK_PROCESS_CPUTIME_ID — robust against preemption on loaded or
// single-core hosts), cost = sum over batches of the element-wise minimum
// across repeats (the noise floor). Every repeat must produce identical
// (committed, rounds) — the schedule is deterministic by construction.
//
// Output: a table on stdout and BENCH_hotpath.json (see tools/perf_gate.py;
// CI soft-gates cpu_us_per_batch against the checked-in baseline — absolute
// CPU time varies with host clocks, so the CI thresholds are loose and the
// gate is advisory off a quiet reference host).
// Flags: --short (CI smoke: fewer repeats/batches), --out <path>.
#include <ctime>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "benchutil/harness.hpp"
#include "benchutil/table.hpp"
#include "cases.hpp"
#include "workloads/microbench.hpp"

namespace {

using namespace prog;

double process_cpu_us() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) * 1e6 +
         static_cast<double>(ts.tv_nsec) * 1e-3;
}

void fold_min(std::vector<double>& acc, const std::vector<double>& run) {
  if (acc.empty()) {
    acc = run;
    return;
  }
  for (std::size_t i = 0; i < acc.size(); ++i) {
    if (run[i] < acc[i]) acc[i] = run[i];
  }
}

double sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

// --- high-contention catalog case (not in cases.hpp: custom scale) ---------

workloads::micro::CatalogOptions hc_opts() {
  workloads::micro::CatalogOptions o;
  o.catalog_keys = 64;  // few hot items → long lock queues
  // Small enough that the store index stays cache-resident (store probes
  // would otherwise drown the scheduler cost in shared LLC misses), large
  // enough that settle draws rarely collide.
  o.accounts = 32768;
  // Short transactions keep the scheduler share of the batch high (the
  // point of this bench) while the 64-key Zipf catalog still produces
  // hundreds-deep lock queues and writer-triggered grant cascades.
  o.reads_per_tx = 2;
  o.zipf_theta = 1.25;
  // Marketplace settlement: each order read-modify-writes 4 distinct
  // account rows out of the 32k, so update transactions churn fresh
  // lock-table keys every batch (the access pattern the epoch arena is
  // built for) without growing the store.
  o.settle_accounts = 4;
  return o;
}

struct HcCatalogTemplate {
  std::vector<std::shared_ptr<const lang::Proc>> procs;
  std::vector<std::shared_ptr<const sym::TxProfile>> profiles;
  store::VersionedStore initial;

  HcCatalogTemplate() {
    const auto opts = hc_opts();
    auto add = [&](lang::Proc p) {
      procs.push_back(std::make_shared<const lang::Proc>(std::move(p)));
      profiles.emplace_back(sym::Profiler::profile(*procs.back()));
    };
    add(workloads::micro::build_order(opts));
    add(workloads::micro::build_reprice(opts));
    workloads::micro::load_catalog(initial, opts);
  }

  static const HcCatalogTemplate& get() {
    static HcCatalogTemplate tpl;
    return tpl;
  }
};

class HcCatalogCase final : public benchutil::CaseContext {
 public:
  HcCatalogCase(const sched::EngineConfig& cfg, std::uint64_t seed)
      : db_(cfg), rng_(seed) {
    const HcCatalogTemplate& tpl = HcCatalogTemplate::get();
    for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
      db_.register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
    }
    tpl.initial.clone_visible_into(db_.store());
    wl_ = std::make_unique<workloads::micro::CatalogWorkload>(
        db_, hc_opts(), workloads::micro::CatalogWorkload::AttachOnly{});
  }
  db::Database& database() override { return db_; }
  std::vector<sched::TxRequest> make_batch(std::size_t n) override {
    return wl_->batch(n, /*reprice_count=*/n / 4, rng_);
  }

 private:
  db::Database db_;
  std::unique_ptr<workloads::micro::CatalogWorkload> wl_;
  Rng rng_;
};

class MicroCase final : public benchutil::CaseContext {
 public:
  MicroCase(const sched::EngineConfig& cfg, std::uint64_t seed)
      : db_(cfg), rng_(seed) {
    workloads::micro::Options opts;
    opts.keys = 20000;
    opts.ops_per_tx = 4;
    opts.zipf_theta = 0.9;
    opts.read_only_pct = 20;
    // The micro workload registers + loads itself (no shared template); the
    // load is warmup-side, never inside the timed region.
    wl_ = std::make_unique<workloads::micro::Workload>(db_, opts);
  }
  db::Database& database() override { return db_; }
  std::vector<sched::TxRequest> make_batch(std::size_t n) override {
    return wl_->batch(n, rng_);
  }

 private:
  db::Database db_;
  std::unique_ptr<workloads::micro::Workload> wl_;
  Rng rng_;
};

// ---------------------------------------------------------------------------

struct RunCost {
  std::vector<double> batch_us;
  std::uint64_t committed = 0;
  std::uint64_t rounds = 0;
};

RunCost run_once(const benchutil::CaseFactory& factory,
                 sched::EngineConfig cfg, std::size_t batch_size, int warmup,
                 int measured) {
  auto ctx = factory(cfg);
  ctx->database().store().set_access_delay_ns(0);  // scheduler cost only
  RunCost out;
  for (int i = 0; i < warmup; ++i) {
    ctx->database().execute(ctx->make_batch(batch_size));
  }
  for (int i = 0; i < measured; ++i) {
    auto batch = ctx->make_batch(batch_size);
    const double t0 = process_cpu_us();
    const auto r = ctx->database().execute(std::move(batch));
    out.batch_us.push_back(process_cpu_us() - t0);
    out.committed += r.committed;
    out.rounds += r.rounds;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool short_mode = benchutil::fast_mode();
  std::string out_path = "BENCH_hotpath.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--short") == 0) short_mode = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const int repeats = short_mode ? 5 : 9;
  const int warmup = 2;
  const int measured = short_mode ? 8 : 16;
  const unsigned workers = 8;

  struct Case {
    std::string name;
    benchutil::CaseFactory factory;
    std::size_t batch_size;
  };
  const std::vector<Case> cases = {
      {"hc-catalog/8w",
       [](const sched::EngineConfig& cfg) -> std::unique_ptr<benchutil::CaseContext> {
         return std::make_unique<HcCatalogCase>(cfg, 42);
       },
       short_mode ? 1024u : 2048u},
      {"tpcc-4wh/8w", bench::tpcc_factory(4), short_mode ? 256u : 512u},
      {"micro-rmw/8w",
       [](const sched::EngineConfig& cfg) -> std::unique_ptr<benchutil::CaseContext> {
         return std::make_unique<MicroCase>(cfg, 42);
       },
       short_mode ? 512u : 1024u},
  };

  sched::EngineConfig base;
  base.workers = workers;

  benchutil::Table table(
      {"workload", "batch", "cpu us/batch", "update ktps (cpu)"});
  std::map<std::string, std::pair<double, double>> results;
  bool determinism_ok = true;

  for (const Case& c : cases) {
    std::vector<double> floor_us;
    std::uint64_t ref_committed = 0, ref_rounds = 0;
    for (int r = 0; r < repeats; ++r) {
      const RunCost rc =
          run_once(c.factory, base, c.batch_size, warmup, measured);
      if (r == 0) {
        ref_committed = rc.committed;
        ref_rounds = rc.rounds;
      } else if (std::tie(rc.committed, rc.rounds) !=
                 std::tie(ref_committed, ref_rounds)) {
        // Identical request streams must replay to identical schedules.
        std::cerr << "FAIL: " << c.name << ": repeat " << r
                  << " diverged (committed " << rc.committed << " vs "
                  << ref_committed << ", rounds " << rc.rounds << " vs "
                  << ref_rounds << ")\n";
        determinism_ok = false;
      }
      fold_min(floor_us, rc.batch_us);
    }
    const double cpu_us = sum(floor_us) / measured;
    const double ktps = static_cast<double>(c.batch_size) / cpu_us * 1e6 / 1e3;
    results[c.name] = {cpu_us, ktps};
    table.row({c.name, std::to_string(c.batch_size), benchutil::fmt(cpu_us, 1),
               benchutil::fmt(ktps, 1)});
  }

  std::cout << "=== Scheduler hot path: epoch-arena lock table + "
               "work-stealing deques (CPU time, "
            << workers << " workers) ===\n";
  table.print();

  std::ofstream js(out_path);
  js << "{\n  \"bench\": \"hotpath\",\n  \"workers\": " << workers
     << ",\n  \"mode\": \"" << (short_mode ? "short" : "full")
     << "\",\n  \"metric\": \"process_cpu_us_per_batch\",\n"
     << "  \"gate\": {\"field\": \"cpu_us_per_batch\", "
        "\"direction\": \"lower\"},\n  \"cases\": {\n";
  for (auto it = results.begin(); it != results.end(); ++it) {
    const auto& [cpu_us, ktps] = it->second;
    js << "    \"" << it->first
       << "\": {\"cpu_us_per_batch\": " << benchutil::fmt(cpu_us, 1)
       << ", \"update_ktps_cpu\": " << benchutil::fmt(ktps, 1) << "}";
    js << (std::next(it) == results.end() ? "\n" : ",\n");
  }
  js << "  }\n}\n";
  js.close();
  std::cout << "wrote " << out_path << "\n";

  return determinism_ok ? 0 : 1;
}
