// Shared workload cases for the paper-reproduction benches.
//
// Trials are stamped from cached templates: the offline SE profiles are
// analyzed once per scale and shared (they are immutable), and the loaded
// initial store is cloned per trial (rows are immutable and shared), so a
// sweep of dozens of trials does not re-run the loader dozens of times.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "benchutil/harness.hpp"
#include "common/rng.hpp"
#include "db/database.hpp"
#include "workloads/microbench.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace prog::bench {

struct TpccTemplate {
  std::vector<std::shared_ptr<const lang::Proc>> procs;
  std::vector<std::shared_ptr<const sym::TxProfile>> profiles;
  store::VersionedStore initial;

  explicit TpccTemplate(const workloads::tpcc::Scale& sc) {
    auto add = [&](lang::Proc p) {
      procs.push_back(std::make_shared<const lang::Proc>(std::move(p)));
      profiles.emplace_back(sym::Profiler::profile(*procs.back()));
    };
    add(workloads::tpcc::build_new_order(sc));
    add(workloads::tpcc::build_payment(sc));
    add(workloads::tpcc::build_delivery(sc));
    add(workloads::tpcc::build_order_status(sc));
    add(workloads::tpcc::build_stock_level(sc));
    workloads::tpcc::load(initial, sc);
  }

  static const TpccTemplate& get(int warehouses) {
    static std::mutex mu;
    static std::map<int, std::unique_ptr<TpccTemplate>> cache;
    std::scoped_lock lock(mu);
    auto& slot = cache[warehouses];
    if (slot == nullptr) {
      slot = std::make_unique<TpccTemplate>(
          workloads::tpcc::Scale::small(warehouses));
    }
    return *slot;
  }
};

class TpccCase final : public benchutil::CaseContext {
 public:
  TpccCase(const sched::EngineConfig& cfg, int warehouses, std::uint64_t seed)
      : db_(cfg), rng_(seed) {
    const TpccTemplate& tpl = TpccTemplate::get(warehouses);
    for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
      db_.register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
    }
    tpl.initial.clone_visible_into(db_.store());
    wl_ = std::make_unique<workloads::tpcc::Workload>(
        db_, workloads::tpcc::Scale::small(warehouses),
        workloads::tpcc::Workload::AttachOnly{});
    // Emulate the paper's RocksDB(-over-JNI) access cost; loading above ran
    // at memory speed. See DESIGN.md "Substitutions".
    db_.store().set_access_delay_ns(1000);
  }
  db::Database& database() override { return db_; }
  std::vector<sched::TxRequest> make_batch(std::size_t n) override {
    return wl_->batch(n, rng_);
  }

 private:
  db::Database db_;
  std::unique_ptr<workloads::tpcc::Workload> wl_;
  Rng rng_;
};

struct RubisTemplate {
  std::vector<std::shared_ptr<const lang::Proc>> procs;
  std::vector<std::shared_ptr<const sym::TxProfile>> profiles;
  store::VersionedStore initial;
  workloads::rubis::Scale scale{2000, 2000};

  RubisTemplate() {
    auto add = [&](lang::Proc p) {
      procs.push_back(std::make_shared<const lang::Proc>(std::move(p)));
      profiles.emplace_back(sym::Profiler::profile(*procs.back()));
    };
    add(workloads::rubis::build_store_bid(scale));
    add(workloads::rubis::build_store_buy_now(scale));
    add(workloads::rubis::build_store_comment(scale));
    add(workloads::rubis::build_register_user(scale));
    add(workloads::rubis::build_register_item(scale));
    workloads::rubis::load(initial, scale);
  }

  static const RubisTemplate& get() {
    static RubisTemplate tpl;
    return tpl;
  }
};

class RubisCase final : public benchutil::CaseContext {
 public:
  RubisCase(const sched::EngineConfig& cfg, std::uint64_t seed)
      : db_(cfg), rng_(seed) {
    const RubisTemplate& tpl = RubisTemplate::get();
    for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
      db_.register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
    }
    tpl.initial.clone_visible_into(db_.store());
    wl_ = std::make_unique<workloads::rubis::Workload>(
        db_, tpl.scale, workloads::rubis::Workload::AttachOnly{});
    db_.store().set_access_delay_ns(2000);
  }
  db::Database& database() override { return db_; }
  std::vector<sched::TxRequest> make_batch(std::size_t n) override {
    return wl_->batch(n, rng_);
  }

 private:
  db::Database db_;
  std::unique_ptr<workloads::rubis::Workload> wl_;
  Rng rng_;
};

struct CatalogTemplate {
  std::vector<std::shared_ptr<const lang::Proc>> procs;
  std::vector<std::shared_ptr<const sym::TxProfile>> profiles;
  store::VersionedStore initial;
  workloads::micro::CatalogOptions opts;

  CatalogTemplate() {
    auto add = [&](lang::Proc p) {
      procs.push_back(std::make_shared<const lang::Proc>(std::move(p)));
      profiles.emplace_back(sym::Profiler::profile(*procs.back()));
    };
    add(workloads::micro::build_order(opts));
    add(workloads::micro::build_reprice(opts));
    workloads::micro::load_catalog(initial, opts);
  }

  static const CatalogTemplate& get() {
    static CatalogTemplate tpl;
    return tpl;
  }
};

/// Low-conflict catalog mix (see microbench.hpp): mostly catalog-reading
/// order transactions; every `reprice_period`-th batch additionally carries
/// a few catalog repricings (0 = never). Batches without a reprice are
/// provably catalog-read-only, which is what the static-conflict-matrix
/// lock elision exploits.
class CatalogCase final : public benchutil::CaseContext {
 public:
  CatalogCase(const sched::EngineConfig& cfg, unsigned reprice_period,
              std::uint64_t seed)
      : db_(cfg), reprice_period_(reprice_period), rng_(seed) {
    const CatalogTemplate& tpl = CatalogTemplate::get();
    for (std::size_t i = 0; i < tpl.procs.size(); ++i) {
      db_.register_procedure_shared(tpl.procs[i], tpl.profiles[i]);
    }
    tpl.initial.clone_visible_into(db_.store());
    wl_ = std::make_unique<workloads::micro::CatalogWorkload>(
        db_, tpl.opts, workloads::micro::CatalogWorkload::AttachOnly{});
    db_.store().set_access_delay_ns(1000);
  }
  db::Database& database() override { return db_; }
  std::vector<sched::TxRequest> make_batch(std::size_t n) override {
    ++batch_no_;
    const bool reprice =
        reprice_period_ != 0 && batch_no_ % reprice_period_ == 0;
    return wl_->batch(n, reprice ? n / 64 + 1 : 0, rng_);
  }

 private:
  db::Database db_;
  std::unique_ptr<workloads::micro::CatalogWorkload> wl_;
  unsigned reprice_period_ = 0;
  std::uint64_t batch_no_ = 0;
  Rng rng_;
};

inline benchutil::CaseFactory catalog_factory(unsigned reprice_period,
                                              std::uint64_t seed = 42) {
  return [reprice_period, seed](const sched::EngineConfig& cfg) {
    return std::make_unique<CatalogCase>(cfg, reprice_period, seed);
  };
}

inline benchutil::CaseFactory tpcc_factory(int warehouses,
                                           std::uint64_t seed = 42) {
  return [warehouses, seed](const sched::EngineConfig& cfg) {
    return std::make_unique<TpccCase>(cfg, warehouses, seed);
  };
}

inline benchutil::CaseFactory rubis_factory(std::uint64_t seed = 42) {
  return [seed](const sched::EngineConfig& cfg) {
    return std::make_unique<RubisCase>(cfg, seed);
  };
}

}  // namespace prog::bench
