// Durability subsystem unit suite: CRC32C vectors, the fault-injecting VFS
// power-fail model, WAL framing + recovery-scan repair (torn tails vs
// quarantined corruption), checkpoint-file round-trips (engine stats
// included), the golden-file lock on the v1 on-disk format, and the
// DurableReplicaStorage write/recover cycle with retention pruning.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "dur/checkpoint_file.hpp"
#include "dur/crc32c.hpp"
#include "dur/fault_vfs.hpp"
#include "dur/storage.hpp"
#include "dur/wal.hpp"

namespace prog::dur {
namespace {

// --- crc32c ------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / Castagnoli reference vectors.
  EXPECT_EQ(crc32c(""), 0x00000000u);
  EXPECT_EQ(crc32c("123456789"), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32cTest, SeedChaining) {
  const std::string all = "hello, durable world";
  const std::uint32_t whole = crc32c(all);
  const std::uint32_t chained =
      crc32c(all.substr(7), crc32c(all.substr(0, 7)));
  EXPECT_EQ(whole, chained);
}

// --- FaultVfs power-fail model -----------------------------------------------

TEST(FaultVfsTest, SyncedBytesSurvivePowerFailUnsyncedDoNot) {
  FaultVfs vfs(1);
  {
    auto f = vfs.open_append("d/a");
    f->append("durable");
    f->sync();
    f->append("volatile");
  }
  EXPECT_EQ(vfs.read_all("d/a"), "durablevolatile");  // process view
  vfs.power_fail("d/");
  EXPECT_EQ(vfs.read_all("d/a"), "durable");  // platter view
}

TEST(FaultVfsTest, FilesCreatedAfterFreezeNeverExistedOnThePlatter) {
  FaultVfs vfs(2);
  auto f = vfs.open_append("d/a");
  f->append("x");
  f->sync();
  vfs.arm("d/", {FaultMode::kNone, 1});
  f->append("y");  // 1st counted syscall: the moment of death
  EXPECT_TRUE(vfs.crash_triggered());
  auto g = vfs.open_append("d/b");  // created by a process already dead
  g->append("ghost");
  g->sync();  // appears to succeed, but nothing is durable anymore
  vfs.power_fail("d/");
  EXPECT_TRUE(vfs.exists("d/a"));
  EXPECT_EQ(vfs.read_all("d/a"), "x");  // the unsynced "y" died with it
  EXPECT_FALSE(vfs.exists("d/b"));
}

TEST(FaultVfsTest, TornTailKeepsAPrefixOfTheUnsyncedTail) {
  FaultVfs vfs(3);
  {
    auto f = vfs.open_append("d/a");
    f->append("SYNCED");
    f->sync();
    f->append("TAILTAILTAIL");
  }
  vfs.arm("d/", {FaultMode::kTornTail, 0});
  vfs.power_fail("d/");
  const std::string after = vfs.read_all("d/a");
  ASSERT_GE(after.size(), 6u);
  EXPECT_EQ(after.substr(0, 6), "SYNCED");
  EXPECT_LE(after.size(), 18u);
  // Whatever survived of the tail is a byte prefix, never a rearrangement.
  EXPECT_EQ(after, std::string("SYNCEDTAILTAILTAIL").substr(0, after.size()));
}

TEST(FaultVfsTest, FsyncNoopLosesAcknowledgedWrites) {
  FaultVfs vfs(4);
  auto f = vfs.open_append("d/a");
  f->append("early");
  f->sync();
  vfs.arm("d/", {FaultMode::kFsyncNoop, 0});
  f->append("lied-about");
  f->sync();  // acknowledged, not persisted
  vfs.power_fail("d/");
  EXPECT_EQ(vfs.read_all("d/a"), "early");
}

TEST(FaultVfsTest, DeterministicAcrossIdenticalSeeds) {
  auto run = [](std::uint64_t seed) {
    FaultVfs vfs(seed);
    auto f = vfs.open_append("d/a");
    f->append("base");
    f->sync();
    f->append("0123456789abcdef");
    vfs.arm("d/", {FaultMode::kTornTail, 0});
    vfs.power_fail("d/");
    return vfs.read_all("d/a");
  };
  EXPECT_EQ(run(99), run(99));
}

// --- WAL ---------------------------------------------------------------------

WalRecord sample_record(std::uint64_t seq) {
  WalRecord rec;
  rec.seq = seq;
  rec.term = 3;
  rec.command = seq - 1;
  rec.state_hash = 0xFEEDC0DEu + seq;
  sched::TxRequest a;
  a.proc = 2;
  a.tag = 77;
  a.input.add(-5);
  a.input.add(123456789);
  sched::TxRequest b;
  b.proc = 0;
  b.tag = 0;
  b.input.add_array({1, 2, 3, -4});
  b.input.add(9);
  rec.batch = {std::move(a), std::move(b)};
  return rec;
}

TEST(WalTest, PayloadRoundTripPreservesRequests) {
  const WalRecord rec = sample_record(7);
  const WalRecord back = decode_wal_payload(encode_wal_payload(rec));
  EXPECT_EQ(back.seq, rec.seq);
  EXPECT_EQ(back.term, rec.term);
  EXPECT_EQ(back.command, rec.command);
  EXPECT_EQ(back.state_hash, rec.state_hash);
  ASSERT_EQ(back.batch.size(), 2u);
  EXPECT_EQ(back.batch[0].proc, 2u);
  EXPECT_EQ(back.batch[0].tag, 77u);
  ASSERT_EQ(back.batch[0].input.args.size(), 2u);
  EXPECT_EQ(back.batch[0].input.args[0].scalar, -5);
  ASSERT_TRUE(back.batch[1].input.args[0].is_array);
  EXPECT_EQ(back.batch[1].input.args[0].array,
            (std::vector<Value>{1, 2, 3, -4}));
}

TEST(WalTest, ScanRecoversCleanRecords) {
  FaultVfs vfs(10);
  WalWriter w(vfs, "d/wal");
  for (std::uint64_t s = 1; s <= 5; ++s) w.append(sample_record(s));
  w.sync();
  WalScanStats st;
  const auto recs = scan_wal(vfs, "d/wal", "d/q", &st);
  ASSERT_EQ(recs.size(), 5u);
  EXPECT_EQ(recs[0].seq, 1u);
  EXPECT_EQ(recs[4].seq, 5u);
  EXPECT_EQ(st.torn_tail_truncated, 0u);
  EXPECT_EQ(st.records_quarantined, 0u);
  EXPECT_FALSE(vfs.exists("d/q"));
}

TEST(WalTest, TornTailIsTruncatedNotQuarantined) {
  FaultVfs vfs(11);
  WalWriter w(vfs, "d/wal");
  for (std::uint64_t s = 1; s <= 3; ++s) w.append(sample_record(s));
  w.sync();
  // Simulate a frame cut off mid-payload by a power failure.
  const std::uint64_t clean = vfs.read_all("d/wal").size();
  w.append(sample_record(4));
  vfs.truncate("d/wal", clean + 20);  // header + a sliver of payload
  WalScanStats st;
  const auto recs = scan_wal(vfs, "d/wal", "d/q", &st);
  EXPECT_EQ(recs.size(), 3u);
  EXPECT_EQ(st.torn_tail_truncated, 1u);
  EXPECT_EQ(st.records_quarantined, 0u);
  EXPECT_EQ(vfs.read_all("d/wal").size(), clean);  // repaired in place
  EXPECT_FALSE(vfs.exists("d/q"));                 // a torn tail is not forensic
}

TEST(WalTest, CorruptRecordIsQuarantinedAndSuffixDropped) {
  FaultVfs vfs(12);
  WalWriter w(vfs, "d/wal");
  std::uint64_t off_record2 = 0;
  for (std::uint64_t s = 1; s <= 4; ++s) {
    if (s == 2) off_record2 = vfs.read_all("d/wal").size();
    w.append(sample_record(s));
  }
  w.sync();
  // Flip one payload bit inside record 2: its CRC must fail, and records 3-4
  // (bytes after the corruption) are untrusted.
  vfs.corrupt("d/wal", off_record2 + 16, 0x10);
  WalScanStats st;
  const auto recs = scan_wal(vfs, "d/wal", "d/q", &st);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].seq, 1u);
  EXPECT_EQ(st.records_quarantined, 1u);
  EXPECT_EQ(st.torn_tail_truncated, 0u);
  EXPECT_TRUE(vfs.exists("d/q"));  // the bad suffix is kept for forensics
  EXPECT_EQ(vfs.read_all("d/wal").size(), off_record2);
  // A second scan of the repaired file is clean and idempotent.
  WalScanStats st2;
  EXPECT_EQ(scan_wal(vfs, "d/wal", "d/q2", &st2).size(), 1u);
  EXPECT_EQ(st2.records_quarantined, 0u);
}

// --- checkpoint files --------------------------------------------------------

CheckpointImage sample_checkpoint() {
  CheckpointImage cp;
  cp.seq = 12;
  cp.term = 4;
  cp.state_hash = 0xABCDEF0123456789ull;
  cp.command_prefix = {0, 1, 2, 5, 6, 7, 8, 9, 10, 11, 12, 13};
  cp.engine_stats.batches = 12;
  cp.engine_stats.committed = 96;
  cp.engine_stats.rolled_back = 3;
  cp.engine_stats.validation_aborts = 2;
  cp.engine_stats.rounds = 14;
  cp.engine_stats.mf_fallback_txns = 1;
  cp.engine_stats.mf_fallback_batches = 1;
  for (std::size_t c = 0; c < 3; ++c) {
    cp.engine_stats.committed_by_class[c] = 30 + c;
    cp.engine_stats.rolled_back_by_class[c] = c;
    cp.engine_stats.validation_aborts_by_class[c] = 2 - c;
  }
  cp.image = "state v1 1 42\nr 1 0 7 1 0=42\nend\n";
  return cp;
}

TEST(CheckpointFileTest, RoundTripIncludingEngineStats) {
  const CheckpointImage cp = sample_checkpoint();
  const CheckpointImage back = decode_checkpoint(encode_checkpoint(cp));
  EXPECT_EQ(back.seq, cp.seq);
  EXPECT_EQ(back.term, cp.term);
  EXPECT_EQ(back.state_hash, cp.state_hash);
  EXPECT_EQ(back.command_prefix, cp.command_prefix);
  EXPECT_EQ(back.image, cp.image);
  // Every one of the 16 deterministic engine counters survives.
  EXPECT_EQ(back.engine_stats.batches, cp.engine_stats.batches);
  EXPECT_EQ(back.engine_stats.committed, cp.engine_stats.committed);
  EXPECT_EQ(back.engine_stats.rolled_back, cp.engine_stats.rolled_back);
  EXPECT_EQ(back.engine_stats.validation_aborts,
            cp.engine_stats.validation_aborts);
  EXPECT_EQ(back.engine_stats.rounds, cp.engine_stats.rounds);
  EXPECT_EQ(back.engine_stats.mf_fallback_txns,
            cp.engine_stats.mf_fallback_txns);
  EXPECT_EQ(back.engine_stats.mf_fallback_batches,
            cp.engine_stats.mf_fallback_batches);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(back.engine_stats.committed_by_class[c],
              cp.engine_stats.committed_by_class[c]);
    EXPECT_EQ(back.engine_stats.rolled_back_by_class[c],
              cp.engine_stats.rolled_back_by_class[c]);
    EXPECT_EQ(back.engine_stats.validation_aborts_by_class[c],
              cp.engine_stats.validation_aborts_by_class[c]);
  }
}

TEST(CheckpointFileTest, AnySingleBitFlipFailsTheCrc) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  // Sample a spread of positions (exhaustive is slow under sanitizers).
  for (std::size_t pos = 0; pos + 13 < bytes.size();
       pos += 1 + bytes.size() / 23) {
    std::string bad = bytes;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x04);
    EXPECT_THROW(decode_checkpoint(bad), IoError) << "at byte " << pos;
  }
}

TEST(CheckpointFileTest, TruncatedFileIsRejected) {
  const std::string bytes = encode_checkpoint(sample_checkpoint());
  EXPECT_THROW(decode_checkpoint(bytes.substr(0, bytes.size() - 1)), IoError);
  EXPECT_THROW(decode_checkpoint(bytes.substr(0, 10)), IoError);
  EXPECT_THROW(decode_checkpoint(""), IoError);
}

TEST(CheckpointFileTest, GoldenV1FileDecodesExactly) {
  // The checked-in golden locks the v1 on-disk format: field order, the
  // 16-counter stats line, the image framing, the CRC footer. Breaking this
  // test means a format bump (progckpt v2 + migration), not a golden update.
  std::ifstream in(std::string(PROG_GOLDEN_DIR) + "/checkpoint_v1.ckpt",
                   std::ios::binary);
  ASSERT_TRUE(in.good()) << "tests/golden/checkpoint_v1.ckpt missing";
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  const CheckpointImage cp = decode_checkpoint(bytes);
  EXPECT_EQ(cp.seq, 12u);
  EXPECT_EQ(cp.term, 4u);
  EXPECT_EQ(cp.state_hash, 0xABCDEF0123456789ull);
  ASSERT_EQ(cp.command_prefix.size(), 12u);
  EXPECT_EQ(cp.command_prefix.front(), 0u);
  EXPECT_EQ(cp.command_prefix[3], 5u);
  EXPECT_EQ(cp.engine_stats.batches, 12u);
  EXPECT_EQ(cp.engine_stats.committed, 96u);
  EXPECT_EQ(cp.engine_stats.validation_aborts_by_class[0], 2u);
  EXPECT_EQ(cp.image, "state v1 1 42\nr 1 0 7 1 0=42\nend\n");
  // And the current encoder still produces byte-identical v1 output.
  EXPECT_EQ(encode_checkpoint(cp), bytes);
}

TEST(CheckpointFileTest, AtomicPublishLeavesNoTmpBehind) {
  FaultVfs vfs(20);
  const CheckpointImage cp = sample_checkpoint();
  write_checkpoint_file(vfs, "d", "d/ckpt-1", cp);
  EXPECT_TRUE(vfs.exists("d/ckpt-1"));
  EXPECT_FALSE(vfs.exists("d/ckpt-1.tmp"));
  EXPECT_EQ(decode_checkpoint(vfs.read_all("d/ckpt-1")).seq, cp.seq);
}

// --- PosixVfs smoke test -----------------------------------------------------

TEST(PosixVfsTest, AppendSyncListRenameRoundTrip) {
  PosixVfs vfs;
  const std::string dir =
      ::testing::TempDir() + "prog_dur_posix_" +
      std::to_string(static_cast<unsigned>(::getpid()));
  vfs.mkdirs(dir);
  {
    auto f = vfs.open_append(dir + "/a.tmp");
    f->append("hello ");
    f->append("disk");
    f->sync();
    EXPECT_EQ(f->size(), 10u);
  }
  vfs.rename(dir + "/a.tmp", dir + "/a");
  vfs.sync_dir(dir);
  EXPECT_TRUE(vfs.exists(dir + "/a"));
  EXPECT_FALSE(vfs.exists(dir + "/a.tmp"));
  EXPECT_EQ(vfs.read_all(dir + "/a"), "hello disk");
  const auto names = vfs.list(dir);
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "a");
  vfs.truncate(dir + "/a", 5);
  EXPECT_EQ(vfs.read_all(dir + "/a"), "hello");
  vfs.remove(dir + "/a");
  EXPECT_FALSE(vfs.exists(dir + "/a"));
}

// --- DurableReplicaStorage ---------------------------------------------------

CheckpointImage storage_checkpoint(std::uint64_t seq) {
  CheckpointImage cp;
  cp.seq = seq;
  cp.term = 1;
  cp.state_hash = 1000 + seq;
  for (std::uint64_t c = 0; c < seq; ++c) cp.command_prefix.push_back(c);
  cp.image = "img@" + std::to_string(seq);
  return cp;
}

TEST(StorageTest, WriteRecoverRoundTrip) {
  FaultVfs vfs(30);
  {
    DurableReplicaStorage st(vfs, "r0");
    st.persist_meta(5, 2);
    for (std::uint64_t s = 1; s <= 3; ++s) st.append_batch(sample_record(s));
    st.persist_checkpoint(storage_checkpoint(3));
    for (std::uint64_t s = 4; s <= 5; ++s) st.append_batch(sample_record(s));
  }
  DurableReplicaStorage st2(vfs, "r0");
  const auto rec = st2.recover();
  EXPECT_TRUE(rec.meta_ok);
  EXPECT_EQ(rec.term, 5u);
  EXPECT_EQ(rec.voted_for, 2);
  ASSERT_NE(rec.newest_checkpoint(), nullptr);
  EXPECT_EQ(rec.newest_checkpoint()->seq, 3u);
  ASSERT_EQ(rec.wal.size(), 2u);  // the contiguous suffix above the checkpoint
  EXPECT_EQ(rec.wal[0].seq, 4u);
  EXPECT_EQ(rec.wal[1].seq, 5u);
  // recover() leaves the tail open: appends continue the chain.
  st2.append_batch(sample_record(6));
  const auto rec2 = DurableReplicaStorage(vfs, "r0").recover();
  ASSERT_EQ(rec2.wal.size(), 3u);
  EXPECT_EQ(rec2.wal.back().seq, 6u);
}

TEST(StorageTest, RetentionKeepsSlotsAndCoveringSegments) {
  FaultVfs vfs(31);
  DurableReplicaStorage st(vfs, "r0", {/*checkpoint_slots=*/2});
  std::uint64_t s = 1;
  for (std::uint64_t ck = 2; ck <= 8; ck += 2) {
    for (; s <= ck; ++s) st.append_batch(sample_record(s));
    st.persist_checkpoint(storage_checkpoint(ck));
  }
  const auto rec = DurableReplicaStorage(vfs, "r0").recover();
  // Dual-slot retention: exactly the two newest checkpoints survive.
  ASSERT_EQ(rec.checkpoints.size(), 2u);
  EXPECT_EQ(rec.checkpoints[0].seq, 6u);
  EXPECT_EQ(rec.checkpoints[1].seq, 8u);
  // Every surviving WAL segment must be above the oldest kept slot: no dead
  // segment below seq 6 (pruned), and the chain from 6 on is intact.
  for (const std::string& name : vfs.list("r0")) {
    if (name.rfind("wal-", 0) == 0) {
      EXPECT_GE(std::stoull(name.substr(4, 16), nullptr, 16), 4u) << name;
    }
  }
}

TEST(StorageTest, MetaCorruptionFallsBackToDefaults) {
  FaultVfs vfs(32);
  {
    DurableReplicaStorage st(vfs, "r0");
    st.persist_meta(9, 1);
  }
  vfs.corrupt("r0/meta", 3, 0x20);
  const auto rec = DurableReplicaStorage(vfs, "r0").recover();
  EXPECT_FALSE(rec.meta_ok);
  EXPECT_EQ(rec.term, 0u);
  EXPECT_EQ(rec.voted_for, -1);
}

TEST(StorageTest, CorruptNewestCheckpointFallsBackToOlderSlot) {
  FaultVfs vfs(33);
  {
    DurableReplicaStorage st(vfs, "r0");
    for (std::uint64_t s = 1; s <= 2; ++s) st.append_batch(sample_record(s));
    st.persist_checkpoint(storage_checkpoint(2));
    for (std::uint64_t s = 3; s <= 4; ++s) st.append_batch(sample_record(s));
    st.persist_checkpoint(storage_checkpoint(4));
  }
  // Rot a byte in the newest slot: CRC must reject it, recovery lands on
  // the older slot — the reason the default retention keeps two.
  for (const std::string& name : vfs.list("r0")) {
    if (name.rfind("ckpt-0000000000000004-", 0) == 0) {
      vfs.corrupt("r0/" + name, 20, 0x08);
    }
  }
  const auto rec = DurableReplicaStorage(vfs, "r0").recover();
  ASSERT_NE(rec.newest_checkpoint(), nullptr);
  EXPECT_EQ(rec.newest_checkpoint()->seq, 2u);
}

}  // namespace
}  // namespace prog::dur
