// Canonical state-image tests: serialize_visible / restore_visible are the
// foundation of replica checkpoints, so the properties the recovery layer
// leans on are pinned here: canonical bytes (identical images regardless of
// write order or dead versions), hash round-trips, and reconciling restores
// (stale rows overwritten, extra rows tombstoned).
#include <gtest/gtest.h>

#include <string>

#include "store/snapshot.hpp"
#include "store/store.hpp"

namespace prog::store {
namespace {

constexpr TableId kA = 1;
constexpr TableId kB = 2;
constexpr FieldId kF = 0;
constexpr FieldId kG = 1;

TEST(StateImageTest, RoundTripsIntoEmptyStore) {
  VersionedStore src;
  src.put({kA, 1}, Row{{kF, 10}, {kG, 20}}, 0);
  src.put({kA, 2}, Row{{kF, -5}}, 1);
  src.put({kB, 7}, Row{{kF, 42}}, 2);

  const std::string image = serialize_visible(src);
  EXPECT_EQ(image_state_hash(image), src.state_hash());

  VersionedStore dst;
  restore_visible(dst, image, 0);
  EXPECT_EQ(dst.state_hash(), src.state_hash());
  ASSERT_NE(dst.get({kA, 1}), nullptr);
  EXPECT_EQ(dst.get({kA, 1})->at(kG), 20);
  EXPECT_EQ(dst.get({kB, 7})->at(kF), 42);
}

TEST(StateImageTest, CanonicalBytesIgnoreWriteOrderAndDeadVersions) {
  VersionedStore a;
  a.put({kA, 1}, Row{{kF, 1}}, 0);
  a.put({kA, 2}, Row{{kF, 2}}, 0);
  a.put({kA, 1}, Row{{kF, 9}}, 1);  // overwrites; old version is dead

  VersionedStore b;
  b.put({kA, 2}, Row{{kF, 2}}, 0);  // different write order, same visible state
  b.put({kA, 1}, Row{{kF, 9}}, 0);

  EXPECT_EQ(serialize_visible(a), serialize_visible(b));
}

TEST(StateImageTest, TombstonesAreInvisibleInImages) {
  VersionedStore src;
  src.put({kA, 1}, Row{{kF, 1}}, 0);
  src.put({kA, 2}, Row{{kF, 2}}, 0);
  src.del({kA, 2}, 1);

  VersionedStore dst;
  restore_visible(dst, serialize_visible(src), 0);
  EXPECT_EQ(dst.get({kA, 2}), nullptr);
  EXPECT_EQ(dst.state_hash(), src.state_hash());
}

TEST(StateImageTest, RestoreReconcilesDivergedState) {
  VersionedStore truth;
  truth.put({kA, 1}, Row{{kF, 10}}, 0);
  truth.put({kA, 2}, Row{{kF, 20}}, 0);
  const std::string image = serialize_visible(truth);

  // A diverged replica: one stale row, one corrupt row, one extra row.
  VersionedStore bad;
  bad.put({kA, 1}, Row{{kF, 10}}, 0);   // matches (left untouched)
  bad.put({kA, 2}, Row{{kF, 999}}, 1);  // corrupt (overwritten)
  bad.put({kB, 3}, Row{{kF, 7}}, 2);    // extra (tombstoned)

  restore_visible(bad, image, 3);
  EXPECT_EQ(bad.state_hash(), truth.state_hash());
  EXPECT_EQ(bad.get({kA, 2})->at(kF), 20);
  EXPECT_EQ(bad.get({kB, 3}), nullptr);
}

TEST(StateImageTest, SnapshotSelectsHistoricalState) {
  VersionedStore src;
  src.put({kA, 1}, Row{{kF, 1}}, 1);
  src.put({kA, 1}, Row{{kF, 2}}, 2);

  const std::string at1 = serialize_visible(src, 1);
  const std::string at2 = serialize_visible(src, 2);
  EXPECT_NE(at1, at2);

  VersionedStore dst;
  restore_visible(dst, at1, 0);
  EXPECT_EQ(dst.get({kA, 1})->at(kF), 1);
}

TEST(StateImageTest, EmptyStoreRoundTrips) {
  VersionedStore src;
  VersionedStore dst;
  dst.put({kA, 5}, Row{{kF, 3}}, 0);  // must be tombstoned by the restore
  restore_visible(dst, serialize_visible(src), 1);
  EXPECT_EQ(dst.get({kA, 5}), nullptr);
  EXPECT_EQ(dst.state_hash(), src.state_hash());
}

}  // namespace
}  // namespace prog::store
