// Tests for the Database facade.
#include <gtest/gtest.h>

#include "db/database.hpp"
#include "lang/builder.hpp"

namespace prog::db {
namespace {

constexpr TableId kT = 1;
constexpr FieldId kF = 0;

lang::Proc make_bump() {
  lang::ProcBuilder b("bump");
  auto k = b.param("k", 0, 100);
  auto h = b.get(kT, k);
  b.put(kT, k, {{kF, h.field(kF) + 1}});
  return std::move(b).build();
}

lang::Proc make_probe() {
  lang::ProcBuilder b("probe");
  auto k = b.param("k", 0, 100);
  auto h = b.get(kT, k);
  b.emit(h.field(kF));
  return std::move(b).build();
}

TEST(DatabaseTest, RegisterExecuteRoundTrip) {
  Database db;
  const auto bump = db.register_procedure(make_bump());
  db.store().put({kT, 5}, store::Row{{kF, 10}}, 0);
  db.finalize();

  sched::TxRequest r;
  r.proc = bump;
  r.input.add(5);
  const auto result = db.execute({r});
  EXPECT_EQ(result.committed, 1u);
  EXPECT_EQ(db.store().get({kT, 5})->at(kF), 11);
}

TEST(DatabaseTest, LookupByNameAndMetadata) {
  Database db;
  db.register_procedure(make_bump());
  db.register_procedure(make_probe());
  EXPECT_EQ(db.find_procedure("bump"), 0u);
  EXPECT_EQ(db.find_procedure("probe"), 1u);
  EXPECT_THROW(db.find_procedure("nope"), UsageError);
  EXPECT_EQ(db.procedure(0).name, "bump");
  EXPECT_EQ(db.profile(1).klass(), sym::TxClass::kReadOnly);
  EXPECT_EQ(db.procedure_count(), 2u);
}

TEST(DatabaseTest, DuplicateNamesRejected) {
  Database db;
  db.register_procedure(make_bump());
  EXPECT_THROW(db.register_procedure(make_bump()), UsageError);
}

TEST(DatabaseTest, LifecycleMisuseDetected) {
  Database db;
  sched::TxRequest r;
  r.proc = 0;
  EXPECT_THROW(db.execute({r}), InvariantError);  // not finalized
  db.register_procedure(make_bump());
  db.finalize();
  EXPECT_THROW(db.finalize(), InvariantError);  // double finalize
  EXPECT_THROW(db.register_procedure(make_probe()), InvariantError);
}

TEST(DatabaseTest, StateHashTracksStore) {
  Database a, b;
  a.register_procedure(make_bump());
  b.register_procedure(make_bump());
  a.store().put({kT, 1}, store::Row{{kF, 1}}, 0);
  b.store().put({kT, 1}, store::Row{{kF, 1}}, 0);
  EXPECT_EQ(a.state_hash(), b.state_hash());
  b.store().put({kT, 2}, store::Row{{kF, 2}}, 0);
  EXPECT_NE(a.state_hash(), b.state_hash());
}

}  // namespace
}  // namespace prog::db
