// Exporter tests: Prometheus text-exposition golden + strict validator
// (good and bad inputs — the CI schema test), JSON snapshot shape, and the
// Chrome trace_event writer (DESIGN.md §9).
#include <gtest/gtest.h>

#include <string>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "sched/trace.hpp"

namespace prog::obs {
namespace {

void fill_sample_registry(Registry& reg) {
  reg.counter("txn_total", "Committed transactions",
              Determinism::kDeterministic, {{"class", "rot"}})
      .inc(5);
  Histogram& h = reg.histogram("lat_us", "Latency");
  h.observe(1);    // bucket 1, bound 1
  h.observe(100);  // bucket 7, bound 127
}

TEST(PrometheusExportTest, Golden) {
  Registry reg;
  fill_sample_registry(reg);
  const std::string text = to_prometheus(reg.snapshot());
  EXPECT_EQ(text,
            "# HELP prog_lat_us Latency\n"
            "# TYPE prog_lat_us histogram\n"
            "prog_lat_us_bucket{le=\"1\"} 1\n"
            "prog_lat_us_bucket{le=\"127\"} 2\n"
            "prog_lat_us_bucket{le=\"+Inf\"} 2\n"
            "prog_lat_us_sum 101\n"
            "prog_lat_us_count 2\n"
            "# HELP prog_txn_total Committed transactions\n"
            "# TYPE prog_txn_total counter\n"
            "prog_txn_total{class=\"rot\"} 5\n");
}

TEST(PrometheusExportTest, GoldenIsByteStableAcrossRegistries) {
  // Same values, independently built registries: identical exposition.
  Registry a, b;
  fill_sample_registry(a);
  fill_sample_registry(b);
  EXPECT_EQ(to_prometheus(a.snapshot()), to_prometheus(b.snapshot()));
}

TEST(PrometheusValidatorTest, AcceptsOwnOutput) {
  Registry reg;
  fill_sample_registry(reg);
  reg.gauge("depth", "Queue depth").set(-3);
  std::string err;
  EXPECT_TRUE(validate_prometheus(to_prometheus(reg.snapshot()), &err))
      << err;
  EXPECT_TRUE(err.empty());
}

TEST(PrometheusValidatorTest, AcceptsCommentsAndTimestamps) {
  const std::string text =
      "# a free-form comment\n"
      "# TYPE x counter\n"
      "x 3 1700000000\n";
  std::string err;
  EXPECT_TRUE(validate_prometheus(text, &err)) << err;
}

TEST(PrometheusValidatorTest, RejectsMalformedInput) {
  std::string err;
  // Sample without a preceding TYPE.
  EXPECT_FALSE(validate_prometheus("foo 1\n", &err));
  EXPECT_NE(err.find("no preceding TYPE"), std::string::npos) << err;
  // Invalid metric name.
  EXPECT_FALSE(validate_prometheus("# TYPE 9bad counter\n9bad 1\n", &err));
  // Invalid value.
  EXPECT_FALSE(
      validate_prometheus("# TYPE x counter\nx notanumber\n", &err));
  // Unterminated label set.
  EXPECT_FALSE(
      validate_prometheus("# TYPE x counter\nx{a=\"1\" 2\n", &err));
  // Bare sample for a histogram family.
  EXPECT_FALSE(validate_prometheus("# TYPE h histogram\nh 1\n", &err));
  EXPECT_NE(err.find("bare sample"), std::string::npos) << err;
  // Unknown TYPE.
  EXPECT_FALSE(validate_prometheus("# TYPE x flurble\nx 1\n", &err));
  // Duplicate TYPE.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE x counter\n# TYPE x counter\nx 1\n", &err));
  // Empty exposition.
  EXPECT_FALSE(validate_prometheus("", &err));
}

TEST(PrometheusValidatorTest, EnforcesHistogramShape) {
  std::string err;
  // Non-monotone cumulative buckets.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"2\"} 3\n"
      "h_bucket{le=\"+Inf\"} 5\n",
      &err));
  EXPECT_NE(err.find("non-monotone"), std::string::npos) << err;
  // Missing le label.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\nh_bucket 5\n", &err));
  // Missing +Inf bucket.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_sum 5\nh_count 5\n",
      &err));
  EXPECT_NE(err.find("+Inf"), std::string::npos) << err;
  // +Inf below the cumulative count.
  EXPECT_FALSE(validate_prometheus(
      "# TYPE h histogram\n"
      "h_bucket{le=\"1\"} 5\n"
      "h_bucket{le=\"+Inf\"} 4\n",
      &err));
}

TEST(JsonExportTest, ShapeAndEscaping) {
  Registry reg;
  reg.counter("c_total", "h", Determinism::kDeterministic).inc(3);
  reg.histogram("h_us", "h", {{"phase", "a\"b"}}).observe(4);
  const std::string j = to_json(reg.snapshot());
  EXPECT_NE(j.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(j.find("\"deterministic\":true"), std::string::npos);
  EXPECT_NE(j.find("\"value\":3"), std::string::npos);
  EXPECT_NE(j.find("\"count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"buckets\":[[7,1]]"), std::string::npos);
  EXPECT_NE(j.find("\"phase\":\"a\\\"b\""), std::string::npos);
  // Balanced outer array.
  EXPECT_EQ(j.front(), '[');
  EXPECT_EQ(j[j.size() - 2], ']');
}

TEST(JsonEscapeTest, ControlCharacters) {
  EXPECT_EQ(json_escape("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
}

sched::BatchTrace make_trace() {
  sched::BatchTrace t;
  t.prepare_total_us = 40;
  t.enqueue_us = 10;
  t.sf_serial_us = 25;
  t.rounds = 2;
  // ROT, then a chain a -> b in round 0, then a round-1 retry of b.
  sched::TraceAttempt rot;
  rot.tx = 0;
  rot.rot = true;
  rot.service_us = 12;
  t.attempts.push_back(rot);
  sched::TraceAttempt a;
  a.tx = 1;
  a.service_us = 20;
  t.attempts.push_back(a);
  sched::TraceAttempt b;
  b.tx = 2;
  b.service_us = 30;
  b.failed = true;
  b.preds = {1};
  t.attempts.push_back(b);
  sched::TraceAttempt b2;
  b2.tx = 2;
  b2.round = 1;
  b2.service_us = 15;
  t.attempts.push_back(b2);
  return t;
}

TEST(ChromeTraceTest, EmitsCompleteEventsAndMetadata) {
  ChromeTraceWriter w(2);
  w.add_batch(make_trace(), 7);
  w.add_batch(make_trace(), 8);
  EXPECT_EQ(w.batches(), 2u);
  const std::string j = w.json();
  EXPECT_NE(j.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(j.find("\"ph\":\"X\""), std::string::npos);  // complete events
  EXPECT_NE(j.find("\"ph\":\"M\""), std::string::npos);  // metadata
  EXPECT_NE(j.find("thread_name"), std::string::npos);
  EXPECT_NE(j.find("prepare"), std::string::npos);
  EXPECT_NE(j.find("enqueue"), std::string::npos);
  EXPECT_NE(j.find("batch 7"), std::string::npos);
  EXPECT_NE(j.find("batch 8"), std::string::npos);
  // Braces balance (cheap well-formedness proxy).
  int depth = 0;
  bool in_str = false;
  char prev = 0;
  for (char c : j) {
    if (in_str) {
      if (c == '"' && prev != '\\') in_str = false;
    } else if (c == '"') {
      in_str = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}') {
      --depth;
      EXPECT_GE(depth, 0);
    }
    prev = c;
  }
  EXPECT_EQ(depth, 0);
}

TEST(ChromeTraceTest, TimeCursorAdvancesBetweenBatches) {
  ChromeTraceWriter w(2);
  w.add_batch(make_trace(), 0);
  const std::string one = w.json();
  w.add_batch(make_trace(), 1);
  const std::string two = w.json();
  EXPECT_GT(two.size(), one.size());
}

}  // namespace
}  // namespace prog::obs
