// Tests for the YCSB-style micro-workload.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "workloads/microbench.hpp"

namespace prog::workloads::micro {
namespace {

TEST(ZipfTest, UniformWhenThetaZero) {
  Zipf z(100, 0.0);
  Rng rng(1);
  std::map<std::int64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[z.next(rng)];
  EXPECT_EQ(counts.size(), 100u);
  for (const auto& [k, c] : counts) {
    EXPECT_GT(c, 100) << k;  // ~200 expected
    EXPECT_LT(c, 350) << k;
  }
}

TEST(ZipfTest, SkewConcentratesOnSmallKeys) {
  Zipf z(100000, 0.99);
  Rng rng(2);
  int hot = 0;
  for (int i = 0; i < 20000; ++i) {
    if (z.next(rng) < 100) ++hot;  // top 0.1% of keys
  }
  // Zipf(0.99): a large fraction of draws land on the hottest keys.
  EXPECT_GT(hot, 4000);
}

TEST(ZipfTest, StaysInRange) {
  for (double theta : {0.0, 0.5, 0.99, 1.3}) {
    Zipf z(1000, theta);
    Rng rng(3);
    for (int i = 0; i < 5000; ++i) {
      const auto v = z.next(rng);
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 1000);
    }
  }
}

TEST(MicroWorkloadTest, RmwIsItScanIsRot) {
  db::Database db;
  Options opts;
  opts.keys = 1000;
  Workload wl(db, opts);
  EXPECT_EQ(db.profile(wl.rmw()).klass(), sym::TxClass::kIndependent);
  EXPECT_EQ(db.profile(wl.scan()).klass(), sym::TxClass::kReadOnly);
}

TEST(MicroWorkloadTest, ValueConservation) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  cfg.check_containment = true;
  db::Database db(cfg);
  Options opts;
  opts.keys = 500;
  opts.zipf_theta = 0.99;  // hot keys -> real conflicts
  Workload wl(db, opts);
  Rng rng(7);
  std::uint64_t committed_rmw = 0;
  for (int b = 0; b < 10; ++b) {
    auto reqs = wl.batch(50, rng);
    for (const auto& r : reqs) {
      if (r.proc == wl.rmw()) ++committed_rmw;
    }
    const auto result = db.execute(std::move(reqs));
    EXPECT_EQ(result.validation_aborts, 0u);  // all ITs
  }
  EXPECT_EQ(total_value(db.store(), opts),
            static_cast<std::int64_t>(committed_rmw) * opts.ops_per_tx);
}

TEST(MicroWorkloadTest, DeterministicAcrossWorkerCounts) {
  auto run = [](unsigned workers) {
    sched::EngineConfig cfg;
    cfg.workers = workers;
    db::Database db(cfg);
    Options opts;
    opts.keys = 300;
    opts.zipf_theta = 1.1;
    Workload wl(db, opts);
    Rng rng(11);
    for (int b = 0; b < 8; ++b) db.execute(wl.batch(40, rng));
    return db.state_hash();
  };
  EXPECT_EQ(run(1), run(8));
}

}  // namespace
}  // namespace prog::workloads::micro
