// TPC-C and RUBiS workload tests: profile shapes (vs. the paper's Table I),
// end-to-end execution under the engine, consistency invariants, and
// cross-variant determinism.
#include <gtest/gtest.h>

#include "baselines/variants.hpp"
#include "common/rng.hpp"
#include "db/database.hpp"
#include "workloads/rubis.hpp"
#include "workloads/tpcc.hpp"

namespace prog::workloads {
namespace {

using sym::TxClass;

// --- TPC-C profile shapes -----------------------------------------------------

class TpccProfiles : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new db::Database();
    wl_ = new tpcc::Workload(*db_, tpcc::Scale::small(4));
  }
  static void TearDownTestSuite() {
    delete wl_;
    delete db_;
    wl_ = nullptr;
    db_ = nullptr;
  }
  static db::Database* db_;
  static tpcc::Workload* wl_;
};

db::Database* TpccProfiles::db_ = nullptr;
tpcc::Workload* TpccProfiles::wl_ = nullptr;

TEST_F(TpccProfiles, ClassificationMatchesPaper) {
  // Paper, Section IV-B: two ROT, two DT and one IT.
  EXPECT_EQ(db_->profile(wl_->new_order()).klass(), TxClass::kDependent);
  EXPECT_EQ(db_->profile(wl_->payment()).klass(), TxClass::kIndependent);
  EXPECT_EQ(db_->profile(wl_->delivery()).klass(), TxClass::kDependent);
  EXPECT_EQ(db_->profile(wl_->order_status()).klass(), TxClass::kReadOnly);
  EXPECT_EQ(db_->profile(wl_->stock_level()).klass(), TxClass::kReadOnly);
}

TEST_F(TpccProfiles, NewOrderHasOnePivotAndElevenKeySets) {
  const sym::TxProfile& p = db_->profile(wl_->new_order());
  // One pivot (the district row), as in Table I's "indirect keys = 1".
  EXPECT_EQ(p.pivot_site_count(), 1u);
  // One key-set per ol_cnt in [5, 15].
  EXPECT_EQ(p.metrics().unique_key_sets, 11u);
  // The per-line quantity branch is concolically skipped, not forked.
  EXPECT_GE(p.metrics().concolic_skips, 1u);
}

TEST_F(TpccProfiles, NewOrderPinnedIterationsCollapseToOneKeySet) {
  // Table I profiles new_order at fixed 5/10/15 iterations: a single
  // key-set and no materialized forks.
  for (int iters : {5, 10, 15}) {
    const lang::Proc p =
        tpcc::build_new_order(tpcc::Scale::small(4), iters, iters);
    auto prof = sym::Profiler::profile(p);
    EXPECT_EQ(prof->metrics().unique_key_sets, 1u) << iters;
    EXPECT_EQ(prof->metrics().depth, 0u) << iters;
    EXPECT_EQ(prof->pivot_site_count(), 1u) << iters;
  }
}

TEST_F(TpccProfiles, DeliveryHas1024KeySets) {
  const sym::TxProfile& p = db_->profile(wl_->delivery());
  EXPECT_EQ(p.metrics().unique_key_sets, 1024u);  // 2^10 districts
  EXPECT_EQ(p.metrics().depth, 10u);
  EXPECT_EQ(p.pivot_site_count(), 30u);  // 3 pivot reads per district
}

TEST_F(TpccProfiles, ReadOnlyScansStayOnOnePath) {
  EXPECT_EQ(db_->profile(wl_->order_status()).metrics().unique_key_sets, 1u);
  EXPECT_EQ(db_->profile(wl_->stock_level()).metrics().unique_key_sets, 1u);
}

TEST_F(TpccProfiles, AnalysisIsFastAndSmall) {
  // Paper: "the SE analysis finished in less than 2 seconds and 1211MB".
  for (sched::ProcId id = 0; id < db_->procedure_count(); ++id) {
    const sym::SeMetrics& m = db_->profile(id).metrics();
    EXPECT_LT(m.analysis_seconds, 2.0) << db_->procedure(id).name;
    EXPECT_LT(m.memory_bytes, std::size_t{1211} << 20)
        << db_->procedure(id).name;
  }
}

// --- TPC-C end to end ----------------------------------------------------------

std::uint64_t run_tpcc(sched::EngineConfig cfg, int warehouses, int batches,
                       int batch_size, std::uint64_t* aborts = nullptr,
                       bool check_inv = true) {
  cfg.check_containment = true;
  db::Database db(cfg);
  tpcc::Workload wl(db, tpcc::Scale::small(warehouses));
  Rng rng(42);
  std::uint64_t total_aborts = 0;
  std::vector<sched::TxRequest> pending;
  for (int i = 0; i < batches; ++i) {
    auto reqs = wl.batch(static_cast<std::size_t>(batch_size), rng);
    // Feed back Calvin-deferred transactions, as the paper's client does.
    for (auto& d : pending) reqs.push_back(std::move(d));
    pending.clear();
    sched::BatchResult r = db.execute(std::move(reqs));
    total_aborts += r.validation_aborts;
    pending = std::move(r.deferred);
  }
  if (aborts != nullptr) *aborts = total_aborts;
  if (check_inv) {
    const auto bad = tpcc::check_invariants(db.store(), wl.scale());
    EXPECT_TRUE(bad.empty()) << bad.size() << " violations, first: "
                             << (bad.empty() ? "" : bad.front());
  }
  return db.state_hash();
}

TEST(TpccRunTest, MixedWorkloadKeepsInvariants) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  run_tpcc(cfg, 2, 10, 50);
}

TEST(TpccRunTest, HighContentionSingleWarehouse) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  std::uint64_t aborts = 0;
  run_tpcc(cfg, 1, 10, 40, &aborts);
  // Same-district new_orders must collide sometimes.
  EXPECT_GT(aborts, 0u);
}

TEST(TpccRunTest, DeterministicAcrossVariants) {
  auto config = [](bool mq, bool mf, unsigned workers) {
    sched::EngineConfig c;
    c.workers = workers;
    c.multi_queue_prepare = mq;
    c.parallel_failed = mf;
    return c;
  };
  const std::uint64_t ref = run_tpcc(config(true, true, 1), 2, 6, 40);
  EXPECT_EQ(ref, run_tpcc(config(true, true, 8), 2, 6, 40));
  EXPECT_EQ(ref, run_tpcc(config(true, false, 4), 2, 6, 40));
  EXPECT_EQ(ref, run_tpcc(config(false, true, 4), 2, 6, 40));
  EXPECT_EQ(ref, run_tpcc(config(false, false, 4), 2, 6, 40));
}

TEST(TpccRunTest, ReconVariantMatchesSeState) {
  sched::EngineConfig se;
  se.workers = 4;
  sched::EngineConfig recon = se;
  recon.use_recon = true;
  EXPECT_EQ(run_tpcc(se, 2, 6, 40), run_tpcc(recon, 2, 6, 40));
}

TEST(TpccRunTest, NodoAndSeqProduceSameState) {
  EXPECT_EQ(run_tpcc(baselines::nodo(4).config, 2, 6, 40),
            run_tpcc(baselines::seq().config, 2, 6, 40));
}

TEST(TpccRunTest, CalvinConvergesWithDeferrals) {
  // Calvin defers aborted DTs; with resubmission the data stays consistent.
  std::uint64_t aborts = 0;
  sched::EngineConfig cfg = baselines::calvin(100, 4).config;
  // Note: deferred txs are resubmitted, so invariants hold at quiescence.
  run_tpcc(cfg, 1, 30, 20, &aborts, /*check_inv=*/false);
  EXPECT_GT(aborts, 0u);
}

TEST(TpccRunTest, SharedReadLocksKeepDeterminism) {
  sched::EngineConfig a;
  a.workers = 4;
  sched::EngineConfig b = a;
  b.shared_read_locks = true;
  EXPECT_EQ(run_tpcc(a, 2, 6, 40), run_tpcc(b, 2, 6, 40));
}

// --- RUBiS ---------------------------------------------------------------------

TEST(RubisTest, AllUpdateTransactionsAreDependent) {
  db::Database db;
  rubis::Workload wl(db, rubis::Scale::small());
  for (sched::ProcId id = 0; id < db.procedure_count(); ++id) {
    EXPECT_EQ(db.profile(id).klass(), TxClass::kDependent)
        << db.procedure(id).name;
    EXPECT_GE(db.profile(id).pivot_site_count(), 1u)
        << db.procedure(id).name;
  }
}

std::uint64_t run_rubis(sched::EngineConfig cfg, int batches, int batch_size,
                        std::uint64_t* aborts = nullptr) {
  cfg.check_containment = true;
  db::Database db(cfg);
  rubis::Workload wl(db, rubis::Scale::small());
  Rng rng(7);
  std::uint64_t total = 0;
  std::vector<sched::TxRequest> pending;
  for (int i = 0; i < batches; ++i) {
    auto reqs = wl.batch(static_cast<std::size_t>(batch_size), rng);
    for (auto& d : pending) reqs.push_back(std::move(d));
    pending.clear();
    sched::BatchResult r = db.execute(std::move(reqs));
    total += r.validation_aborts;
    pending = std::move(r.deferred);
  }
  if (aborts != nullptr) *aborts = total;
  const auto bad = rubis::check_invariants(db.store(), wl.scale());
  EXPECT_TRUE(bad.empty()) << bad.size() << " violations, first: "
                           << (bad.empty() ? "" : bad.front());
  return db.state_hash();
}

TEST(RubisTest, MixedWorkloadKeepsInvariants) {
  sched::EngineConfig cfg;
  cfg.workers = 4;
  std::uint64_t aborts = 0;
  run_rubis(cfg, 10, 40, &aborts);
  // Id-generation hotspots make RUBiS-C high-contention: aborts expected.
  EXPECT_GT(aborts, 0u);
}

TEST(RubisTest, DeterministicAcrossVariants) {
  auto config = [](bool mf, unsigned workers) {
    sched::EngineConfig c;
    c.workers = workers;
    c.parallel_failed = mf;
    return c;
  };
  const std::uint64_t ref = run_rubis(config(true, 1), 6, 30);
  EXPECT_EQ(ref, run_rubis(config(true, 8), 6, 30));
  EXPECT_EQ(ref, run_rubis(config(false, 4), 6, 30));
}

TEST(RubisTest, SfAbortsNoMoreThanMf) {
  // The paper's RUBiS finding: SF achieves ~3x fewer aborts than MF under
  // the id-generation hotspot (failed txs failing again in MF rounds).
  sched::EngineConfig mf;
  mf.workers = 4;
  sched::EngineConfig sf = mf;
  sf.parallel_failed = false;
  std::uint64_t mf_aborts = 0, sf_aborts = 0;
  run_rubis(mf, 10, 40, &mf_aborts);
  run_rubis(sf, 10, 40, &sf_aborts);
  EXPECT_LE(sf_aborts, mf_aborts);
}

}  // namespace
}  // namespace prog::workloads
