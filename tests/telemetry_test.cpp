// Engine telemetry tests (DESIGN.md §9): the EngineConfig::telemetry toggle,
// registry counters vs BatchResult ground truth, per-class EngineStats
// breakdowns, determinism of counter serialization across engines, the
// telemetry-on/off state parity guarantee, and the BatchTrace reuse
// regression (the engine must clear a carried-over sink at batch start).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "db/database.hpp"
#include "lang/builder.hpp"
#include "obs/engine_metrics.hpp"
#include "obs/metrics.hpp"
#include "sched/trace.hpp"

namespace prog {
namespace {

constexpr TableId kData = 1;
constexpr TableId kHot = 2;
constexpr TableId kLog = 3;
constexpr FieldId kV = 0;

lang::Proc make_scan() {  // ROT: pure reads
  lang::ProcBuilder b("scan");
  auto k = b.param("k", 0, 1000);
  b.get(kData, k);
  b.get(kData, k + 1);
  return std::move(b).build();
}

lang::Proc make_bump() {  // IT: key-set is a pure function of the input
  lang::ProcBuilder b("bump");
  auto k = b.param("k", 0, 1000);
  auto row = b.get(kData, k);
  b.put(kData, k, {{kV, row.field(kV) + 1}});
  return std::move(b).build();
}

lang::Proc make_chain() {  // DT: write key depends on read data (pivot)
  lang::ProcBuilder b("chain");
  auto payload = b.param("payload", 0, 1 << 20);
  auto h = b.get(kHot, b.lit(0));
  auto seq = b.let("seq", h.field(kV));
  b.put(kLog, seq, {{kV, payload}});
  b.put(kHot, b.lit(0), {{kV, seq + 1}});
  return std::move(b).build();
}

struct Procs {
  sched::ProcId scan, bump, chain;
};

Procs setup(db::Database& db) {
  Procs p;
  p.scan = db.register_procedure(make_scan());
  p.bump = db.register_procedure(make_bump());
  p.chain = db.register_procedure(make_chain());
  for (Key k = 0; k <= 1001; ++k) {
    db.store().put({kData, k}, store::Row{{kV, 0}}, 0);
  }
  db.store().put({kHot, 0}, store::Row{{kV, 0}}, 0);
  db.finalize();
  return p;
}

/// A mixed batch: `n_rot` scans, `n_it` bumps, `n_dt` conflicting chains.
std::vector<sched::TxRequest> mixed_batch(const Procs& p, unsigned n_rot,
                                          unsigned n_it, unsigned n_dt,
                                          Rng& rng) {
  std::vector<sched::TxRequest> batch;
  auto add = [&](sched::ProcId proc, Value v) {
    sched::TxRequest r;
    r.proc = proc;
    r.input.add(v);
    batch.push_back(std::move(r));
  };
  for (unsigned i = 0; i < n_rot; ++i) {
    add(p.scan, static_cast<Value>(rng.bounded(1000)));
  }
  for (unsigned i = 0; i < n_it; ++i) {
    add(p.bump, static_cast<Value>(rng.bounded(1000)));
  }
  for (unsigned i = 0; i < n_dt; ++i) {
    add(p.chain, static_cast<Value>(i));
  }
  return batch;
}

std::int64_t find_counter(const std::vector<obs::MetricSnapshot>& snap,
                          const std::string& name,
                          const std::string& labels = "") {
  for (const auto& s : snap) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  ADD_FAILURE() << "metric not found: " << name << "{" << labels << "}";
  return -1;
}

const obs::MetricSnapshot* find_metric(
    const std::vector<obs::MetricSnapshot>& snap, const std::string& name,
    const std::string& labels = "") {
  for (const auto& s : snap) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

TEST(TelemetryTest, RegistryPresentOnlyWhenEnabled) {
  sched::EngineConfig off;
  db::Database db_off(off);
  setup(db_off);
  EXPECT_EQ(db_off.telemetry(), nullptr);

  sched::EngineConfig on;
  on.telemetry = true;
  db::Database db_on(on);
  setup(db_on);
  ASSERT_NE(db_on.telemetry(), nullptr);
  EXPECT_GT(db_on.telemetry()->families(), 0u);
}

TEST(TelemetryTest, CountersMatchBatchResults) {
  sched::EngineConfig cfg;
  cfg.workers = 3;
  cfg.telemetry = true;
  db::Database db(cfg);
  const Procs p = setup(db);
  Rng rng(7);

  std::uint64_t committed = 0, aborts = 0, rounds = 0, batches = 0;
  std::uint64_t txns = 0;
  for (int i = 0; i < 6; ++i) {
    auto batch = mixed_batch(p, 8, 12, 6, rng);
    txns += batch.size();
    const auto r = db.execute(std::move(batch));
    committed += r.committed;
    aborts += r.validation_aborts;
    rounds += r.rounds;
    ++batches;
  }
  ASSERT_GT(aborts, 0u);  // the chain mix must actually conflict

  const auto snap = db.telemetry()->snapshot();
  EXPECT_EQ(find_counter(snap, "engine_batches_total"),
            static_cast<std::int64_t>(batches));
  std::int64_t c = 0, a = 0;
  for (const char* cls : {"rot", "it", "dt"}) {
    const std::string l = std::string("class=\"") + cls + '"';
    c += find_counter(snap, "engine_txn_committed_total", l);
    a += find_counter(snap, "engine_txn_validation_aborts_total", l);
  }
  EXPECT_EQ(c, static_cast<std::int64_t>(committed));
  EXPECT_EQ(a, static_cast<std::int64_t>(aborts));
  EXPECT_EQ(find_counter(snap, "engine_rounds_total"),
            static_cast<std::int64_t>(rounds));
  // Classes land in their own buckets: every scan is a ROT commit, every
  // abort is a DT (the chain procs are the only conflicting ones).
  EXPECT_EQ(find_counter(snap, "engine_txn_committed_total", "class=\"rot\""),
            6 * 8);
  EXPECT_EQ(find_counter(snap, "engine_txn_committed_total", "class=\"it\""),
            6 * 12);
  EXPECT_EQ(find_counter(snap, "engine_txn_committed_total", "class=\"dt\""),
            6 * 6);
  EXPECT_EQ(
      find_counter(snap, "engine_txn_validation_aborts_total", "class=\"it\""),
      0);

  // Timing families observed the right event counts.
  const auto* wall = find_metric(snap, "engine_batch_wall_us");
  ASSERT_NE(wall, nullptr);
  EXPECT_EQ(wall->count, batches);
  std::uint64_t lat = 0;
  for (const char* cls : {"rot", "it", "dt"}) {
    const auto* h = find_metric(snap, "engine_txn_service_us",
                                std::string("class=\"") + cls + '"');
    ASSERT_NE(h, nullptr);
    lat += h->count;
  }
  // One observation per attempt: commits plus failed attempts.
  EXPECT_EQ(lat, committed + aborts);
  const auto* size = find_metric(snap, "engine_batch_size_txns");
  ASSERT_NE(size, nullptr);
  EXPECT_EQ(size->count, batches);
  EXPECT_EQ(static_cast<std::uint64_t>(size->sum), txns);
  const auto* prep = find_metric(snap, "engine_phase_us", "phase=\"prepare\"");
  ASSERT_NE(prep, nullptr);
  EXPECT_EQ(prep->count, batches);
}

TEST(TelemetryTest, PerClassStatsFoldIntoAggregates) {
  sched::EngineConfig cfg;
  cfg.telemetry = true;  // breakdowns are maintained regardless; spot-check
  db::Database db(cfg);
  const Procs p = setup(db);
  Rng rng(11);
  for (int i = 0; i < 4; ++i) {
    db.execute(mixed_batch(p, 5, 10, 4, rng));
  }
  const sched::EngineStats s = db.engine_stats();
  EXPECT_EQ(s.committed, s.committed_by_class[0] + s.committed_by_class[1] +
                             s.committed_by_class[2]);
  EXPECT_EQ(s.rolled_back, s.rolled_back_by_class[0] +
                               s.rolled_back_by_class[1] +
                               s.rolled_back_by_class[2]);
  EXPECT_EQ(s.validation_aborts, s.validation_aborts_by_class[0] +
                                     s.validation_aborts_by_class[1] +
                                     s.validation_aborts_by_class[2]);
  EXPECT_EQ(s.committed_by_class[0], 4u * 5u);
  EXPECT_EQ(s.committed_by_class[1], 4u * 10u);
  EXPECT_EQ(s.committed_by_class[2], 4u * 4u);

  // operator+= folds the breakdowns too (recovery-layer carry-over).
  sched::EngineStats sum = s;
  sum += s;
  EXPECT_EQ(sum.committed_by_class[1], 2 * s.committed_by_class[1]);
  EXPECT_EQ(sum.validation_aborts_by_class[2],
            2 * s.validation_aborts_by_class[2]);
}

TEST(TelemetryTest, DeterministicSerializationAcrossEngines) {
  // Two independent engines, same batch sequence: the deterministic subset
  // must serialize byte-identically even though timing histograms differ.
  auto run = [](std::uint64_t /*noise*/) {
    sched::EngineConfig cfg;
    cfg.workers = 2;
    cfg.telemetry = true;
    auto db = std::make_unique<db::Database>(cfg);
    const Procs p = setup(*db);
    Rng rng(3);
    for (int i = 0; i < 5; ++i) db->execute(mixed_batch(p, 6, 9, 5, rng));
    return db;
  };
  auto a = run(1);
  auto b = run(2);
  const std::string sa = a->telemetry()->serialize_deterministic();
  const std::string sb = b->telemetry()->serialize_deterministic();
  EXPECT_FALSE(sa.empty());
  EXPECT_EQ(sa, sb);
  // And the deterministic subset contains no timing families.
  for (const auto& m : a->telemetry()->deterministic_snapshot()) {
    EXPECT_EQ(m.kind, obs::MetricKind::kCounter) << m.name;
    EXPECT_EQ(m.name.find("_us"), std::string::npos) << m.name;
  }
}

TEST(TelemetryTest, ToggleDoesNotChangeExecution) {
  // telemetry on vs off: same commits, same rounds, same final state hash.
  auto run = [](bool telemetry) {
    sched::EngineConfig cfg;
    cfg.workers = 3;
    cfg.telemetry = telemetry;
    db::Database db(cfg);
    const Procs p = setup(db);
    Rng rng(19);
    std::uint64_t committed = 0, rounds = 0;
    for (int i = 0; i < 5; ++i) {
      const auto r = db.execute(mixed_batch(p, 7, 11, 6, rng));
      committed += r.committed;
      rounds += r.rounds;
    }
    return std::tuple{committed, rounds, db.state_hash()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(BatchTraceTest, ReusedSinkIsClearedAtBatchStart) {
  // Regression: a BatchTrace carried across execute_traced calls used to
  // accumulate attempts/rounds/sf_serial_us across batches, silently
  // corrupting the throughput model's input. The engine now clears the sink
  // at batch start.
  sched::EngineConfig cfg;
  cfg.workers = 2;
  db::Database db(cfg);
  const Procs p = setup(db);
  Rng rng(5);

  sched::BatchTrace trace;
  db.execute_traced(mixed_batch(p, 4, 6, 5, rng), &trace);
  const std::size_t attempts_one = trace.attempts.size();
  const std::uint16_t rounds_one = trace.rounds;
  ASSERT_GT(attempts_one, 0u);
  ASSERT_GT(rounds_one, 0u);  // the chain mix forces failed rounds

  // Same-shaped second batch into the SAME trace object, no manual clear().
  Rng rng2(5);
  db.execute_traced(mixed_batch(p, 4, 6, 5, rng2), &trace);
  EXPECT_EQ(trace.attempts.size(), attempts_one) << "attempts accumulated";
  EXPECT_EQ(trace.rounds, rounds_one) << "rounds accumulated";

  // Per-attempt totals are batch-local too: prepare work recorded once.
  sched::BatchTrace fresh;
  Rng rng3(5);
  db::Database db2(cfg);
  const Procs p2 = setup(db2);
  db2.execute_traced(mixed_batch(p2, 4, 6, 5, rng3), &fresh);
  EXPECT_EQ(trace.attempts.size(), fresh.attempts.size());
  EXPECT_EQ(trace.rounds, fresh.rounds);
}

TEST(BatchTraceTest, SfTailRecordedUnderSerialFallback) {
  // sf_serial_us must reflect the serial tail in SF mode (and not be zeroed
  // by the parallel_failed flag logic — regression for the old
  // `parallel_failed ? 0 : reexec` expression).
  sched::EngineConfig cfg;
  cfg.workers = 2;
  cfg.parallel_failed = false;  // all failed work runs on the serial path
  db::Database db(cfg);
  const Procs p = setup(db);
  db.store().set_access_delay_ns(20000);  // make per-tx service time visible
  Rng rng(23);
  sched::BatchTrace trace;
  const auto r = db.execute_traced(mixed_batch(p, 0, 0, 8, rng), &trace);
  EXPECT_EQ(r.committed, 8u);
  EXPECT_GT(trace.sf_serial_us, 0);
}

}  // namespace
}  // namespace prog
