// Consensus substrate tests: Raft safety/liveness under faults, and
// end-to-end replica equivalence through the replicated database.
#include <gtest/gtest.h>

#include "consensus/replicated_db.hpp"
#include "lang/builder.hpp"
#include "workloads/tpcc.hpp"

namespace prog::consensus {
namespace {

TEST(SimNetTest, DeterministicDelivery) {
  auto run = [](std::uint64_t seed) {
    SimNet net(seed);
    std::vector<int> order;
    for (int i = 0; i < 20; ++i) {
      net.send(0, 1, [&order, i] { order.push_back(i); });
    }
    net.run_for(100);
    return order;
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_EQ(run(1).size(), 20u);
}

TEST(SimNetTest, DropsLoseMessages) {
  SimNet net(3, SimNet::Options{1, 5, 50});
  int delivered = 0;
  for (int i = 0; i < 200; ++i) net.send(0, 1, [&] { ++delivered; });
  net.run_for(100);
  EXPECT_GT(delivered, 40);
  EXPECT_LT(delivered, 160);
}

TEST(SimNetTest, CrashBlocksDelivery) {
  SimNet net(1);
  int delivered = 0;
  net.crash(1);
  net.send(0, 1, [&] { ++delivered; });
  net.run_for(100);
  EXPECT_EQ(delivered, 0);
  net.restart(1);
  net.send(0, 1, [&] { ++delivered; });
  net.run_for(100);
  EXPECT_EQ(delivered, 1);
}

TEST(SimNetTest, PartitionSeparatesGroups) {
  SimNet net(1);
  int ab = 0, ac = 0;
  net.partition({0, 1});
  net.send(0, 1, [&] { ++ab; });
  net.send(0, 2, [&] { ++ac; });
  net.run_for(100);
  EXPECT_EQ(ab, 1);
  EXPECT_EQ(ac, 0);
  net.heal();
  net.send(0, 2, [&] { ++ac; });
  net.run_for(100);
  EXPECT_EQ(ac, 1);
}

TEST(RaftTest, ElectsExactlyOneLeader) {
  RaftCluster cluster(3, 17);
  cluster.run_ms(1000);
  ASSERT_GE(cluster.leader(), 0);
  int leaders = 0;
  for (NodeId i = 0; i < cluster.size(); ++i) {
    if (cluster.node(i).role() == RaftNode::Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftTest, ReplicatesCommandsInOrder) {
  RaftCluster cluster(3, 5);
  cluster.run_ms(1000);
  for (Command c = 100; c < 110; ++c) {
    ASSERT_TRUE(cluster.submit(c));
    cluster.run_ms(50);
  }
  cluster.run_ms(500);
  const std::vector<Command> want{100, 101, 102, 103, 104,
                                  105, 106, 107, 108, 109};
  for (NodeId i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.applied(i), want) << "node " << i;
  }
}

TEST(RaftTest, LeaderCrashElectsNewLeaderWithoutLosingEntries) {
  RaftCluster cluster(3, 23);
  cluster.run_ms(1000);
  const int first = cluster.leader();
  ASSERT_GE(first, 0);
  for (Command c = 1; c <= 5; ++c) {
    ASSERT_TRUE(cluster.submit(c));
    cluster.run_ms(100);
  }
  cluster.crash(static_cast<NodeId>(first));
  cluster.run_ms(2000);
  const int second = cluster.leader();
  ASSERT_GE(second, 0);
  EXPECT_NE(second, first);
  for (Command c = 6; c <= 8; ++c) {
    ASSERT_TRUE(cluster.submit(c));
    cluster.run_ms(100);
  }
  cluster.restart(static_cast<NodeId>(first));
  cluster.run_ms(2000);
  // Every node converges to the same committed prefix 1..8.
  const std::vector<Command> want{1, 2, 3, 4, 5, 6, 7, 8};
  for (NodeId i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.applied(i), want) << "node " << i;
  }
}

TEST(RaftTest, MinorityPartitionCannotCommit) {
  RaftCluster cluster(5, 31);
  cluster.run_ms(1000);
  const int leader = cluster.leader();
  ASSERT_GE(leader, 0);
  // Isolate the leader with one follower (a minority).
  const NodeId buddy = leader == 0 ? 1 : 0;
  cluster.net().partition({static_cast<NodeId>(leader), buddy});
  const std::size_t before = cluster.applied(static_cast<NodeId>(leader)).size();
  cluster.node(static_cast<NodeId>(leader)).submit(999);
  cluster.run_ms(2000);
  EXPECT_EQ(cluster.applied(static_cast<NodeId>(leader)).size(), before);
  // Heal: the majority side elected a higher-term leader; 999 is eventually
  // either discarded (leader stepped down before replicating) — in any case
  // all nodes agree afterwards.
  cluster.net().heal();
  cluster.run_ms(3000);
  const auto& ref = cluster.applied(0);
  for (NodeId i = 1; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.applied(i), ref) << "node " << i;
  }
}

TEST(RaftTest, UncommittedSuffixIsOverwritten) {
  RaftCluster cluster(3, 41);
  cluster.run_ms(1000);
  const int old_leader = cluster.leader();
  ASSERT_GE(old_leader, 0);
  ASSERT_TRUE(cluster.submit(1));
  cluster.run_ms(300);

  // Isolate the leader; it appends entries it can never commit.
  cluster.net().partition({static_cast<NodeId>(old_leader)});
  cluster.node(static_cast<NodeId>(old_leader)).submit(111);
  cluster.node(static_cast<NodeId>(old_leader)).submit(112);
  cluster.run_ms(2000);  // majority elects a new, higher-term leader

  const int new_leader = cluster.leader();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, old_leader);
  ASSERT_TRUE(cluster.submit(200));
  cluster.run_ms(500);

  cluster.net().heal();
  cluster.run_ms(3000);

  // The orphaned suffix {111, 112} must be gone everywhere; every node
  // applied exactly {1, 200}.
  const std::vector<Command> want{1, 200};
  for (NodeId i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.applied(i), want) << "node " << i;
  }
}

TEST(RaftTest, StableLeaderWithoutFaults) {
  RaftCluster cluster(5, 67);
  cluster.run_ms(1000);
  const int leader = cluster.leader();
  ASSERT_GE(leader, 0);
  const Term term = cluster.node(static_cast<NodeId>(leader)).term();
  cluster.run_ms(10000);  // heartbeats must suppress new elections
  EXPECT_EQ(cluster.leader(), leader);
  EXPECT_EQ(cluster.node(static_cast<NodeId>(leader)).term(), term);
}

class RaftPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RaftPropertyTest, AgreementUnderLossySeededNetwork) {
  // 20% message loss: committed prefixes must still agree on every node.
  RaftCluster cluster(3, static_cast<std::uint64_t>(GetParam()),
                      SimNet::Options{1, 10, 20});
  cluster.run_ms(3000);
  Command next = 1;
  for (int round = 0; round < 30; ++round) {
    if (cluster.leader() >= 0 && cluster.submit(next)) ++next;
    cluster.run_ms(100);
  }
  cluster.run_ms(3000);
  // Prefix agreement.
  std::vector<Command> shortest = cluster.applied(0);
  for (NodeId i = 1; i < cluster.size(); ++i) {
    if (cluster.applied(i).size() < shortest.size()) {
      shortest = cluster.applied(i);
    }
  }
  for (NodeId i = 0; i < cluster.size(); ++i) {
    const auto& a = cluster.applied(i);
    for (std::size_t k = 0; k < shortest.size(); ++k) {
      ASSERT_EQ(a[k], shortest[k]) << "node " << i << " index " << k;
    }
  }
  // With 20% loss over 30 rounds, something must have committed.
  EXPECT_GT(shortest.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftPropertyTest, ::testing::Range(1, 9));

// --- replicated database --------------------------------------------------------

TEST(ReplicatedDbTest, ReplicasConvergeToIdenticalState) {
  using workloads::tpcc::Scale;
  sched::EngineConfig cfg;
  cfg.workers = 2;
  std::vector<std::unique_ptr<workloads::tpcc::Workload>> wls;
  ReplicatedDb rdb(
      3, 77,
      [&](db::Database& d) {
        wls.push_back(
            std::make_unique<workloads::tpcc::Workload>(d, Scale::small(1)));
      },
      cfg);
  rdb.run_ms(1000);  // elect a leader

  Rng rng(5);
  int submitted = 0;
  for (int i = 0; i < 10; ++i) {
    auto batch = wls[0]->batch(15, rng);
    if (rdb.submit_batch(std::move(batch))) ++submitted;
    rdb.run_ms(100);
  }
  rdb.run_ms(2000);
  EXPECT_GT(submitted, 0);
  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
  // And the replicas actually processed work.
  EXPECT_NE(hashes[0], 0u);
}

TEST(ReplicatedDbTest, ReplicaCatchesUpAfterCrash) {
  using workloads::tpcc::Scale;
  sched::EngineConfig cfg;
  cfg.workers = 2;
  std::vector<std::unique_ptr<workloads::tpcc::Workload>> wls;
  ReplicatedDb rdb(
      3, 13,
      [&](db::Database& d) {
        wls.push_back(
            std::make_unique<workloads::tpcc::Workload>(d, Scale::small(1)));
      },
      cfg);
  rdb.run_ms(1000);
  const int leader = rdb.raft().leader();
  ASSERT_GE(leader, 0);
  const NodeId victim = leader == 0 ? 1 : 0;  // crash a follower
  rdb.raft().crash(victim);

  Rng rng(6);
  for (int i = 0; i < 5; ++i) {
    rdb.submit_batch(wls[0]->batch(10, rng));
    rdb.run_ms(100);
  }
  rdb.raft().restart(victim);
  rdb.run_ms(3000);
  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[0], hashes[2]);
}

// --- delivery-time drops and bursts ----------------------------------------------

TEST(SimNetTest, DropBurstDropsOnlyInsideWindow) {
  SimNet net(7, SimNet::Options{1, 1, 0});  // fixed 1ms delay
  net.drop_burst(10, 20, 100);
  int delivered = 0;
  net.send(0, 1, [&] { ++delivered; });  // delivered t=1: before the window
  net.schedule(14, [&] {                 // delivered t=15: inside, dropped
    net.send(0, 1, [&] { ++delivered; });
  });
  net.schedule(25, [&] {  // delivered t=26: window expired
    net.send(0, 1, [&] { ++delivered; });
  });
  net.run_for(100);
  EXPECT_EQ(delivered, 2);
}

TEST(SimNetTest, DropsApplyAtDeliveryTime) {
  // The burst covers the send instant but not the delivery instant: the
  // message must survive (loss is attributed to the regime in force when
  // the message would have arrived).
  SimNet net(9, SimNet::Options{10, 10, 0});
  net.drop_burst(0, 5, 100);
  int delivered = 0;
  net.send(0, 1, [&] { ++delivered; });  // sent t=0, delivered t=10
  net.run_for(50);
  EXPECT_EQ(delivered, 1);
}

// --- recovery-layer scenarios ----------------------------------------------------

constexpr TableId kCtr = 1;
constexpr FieldId kVal = 0;
constexpr Value kCtrKeys = 16;

lang::Proc make_counter() {
  lang::ProcBuilder b("counter");
  auto k = b.param("k", 0, kCtrKeys - 1);
  auto amt = b.param("amt", 1, 5);
  auto row = b.get(kCtr, k);
  b.put(kCtr, k, {{kVal, row.field(kVal) + amt}});
  return std::move(b).build();
}

ReplicatedDb::SetupFn counter_setup() {
  return [](db::Database& d) {
    d.register_procedure(make_counter());
    for (Key k = 0; k < static_cast<Key>(kCtrKeys); ++k) {
      d.store().put({kCtr, k}, store::Row{{kVal, 10}}, 0);
    }
    d.finalize();
  };
}

std::vector<sched::TxRequest> counter_batch(std::size_t n, Rng& rng) {
  std::vector<sched::TxRequest> out;
  for (std::size_t i = 0; i < n; ++i) {
    sched::TxRequest r;
    r.proc = 0;
    r.input.add(rng.uniform(0, kCtrKeys - 1));
    r.input.add(rng.uniform(1, 5));
    out.push_back(std::move(r));
  }
  return out;
}

TEST(ReplicatedDbTest, SubmitWithRetryWaitsOutElection) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  ReplicatedDb rdb(3, 321, counter_setup(), cfg);
  Rng rng(2);
  // No run_ms first: there is no leader yet, so a plain submit fails and
  // the retrying variant must wait out the first election.
  EXPECT_FALSE(rdb.submit_batch(counter_batch(4, rng)));
  ASSERT_TRUE(rdb.submit_with_retry(counter_batch(4, rng), 3000));
  EXPECT_GE(rdb.recovery_stats().submit_retries, 1u);
  rdb.run_ms(2000);
  ASSERT_TRUE(rdb.converged());
  EXPECT_EQ(rdb.raft().applied(0).size(), 1u);
}

/// Satellite scenario: a 5-node cluster loses its leader to a minority
/// partition mid-batch. The majority side re-elects and keeps committing;
/// after the heal the deposed leader truncates its orphaned suffix and all
/// five replicas converge to identical state.
TEST(ReplicatedDbTest, LeaderMinorityPartitionReElectsAndConverges) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  ReplicatedDb rdb(5, 2024, counter_setup(), cfg);
  rdb.run_ms(1000);
  const int old_leader = rdb.raft().leader();
  ASSERT_GE(old_leader, 0);
  const Term old_term = rdb.raft().node(static_cast<NodeId>(old_leader)).term();

  Rng rng(9);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(rdb.submit_with_retry(counter_batch(6, rng)));
    rdb.run_ms(100);
  }

  // Mid-batch partition: the leader accepts one more batch, then is cut off
  // with one follower before it can replicate (in-flight AppendEntries die
  // at delivery time, inside the partition).
  ASSERT_TRUE(rdb.submit_batch(counter_batch(6, rng)));
  const NodeId buddy = old_leader == 0 ? 1 : 0;
  rdb.raft().net().partition({static_cast<NodeId>(old_leader), buddy});
  rdb.run_ms(2000);  // majority side re-elects

  const int new_leader = rdb.raft().leader();
  ASSERT_GE(new_leader, 0);
  EXPECT_NE(new_leader, old_leader);
  EXPECT_GT(rdb.raft().node(static_cast<NodeId>(new_leader)).term(), old_term);

  for (int i = 0; i < 3; ++i) {  // the new regime keeps committing
    ASSERT_TRUE(rdb.submit_with_retry(counter_batch(6, rng)));
    rdb.run_ms(100);
  }

  rdb.raft().net().heal();
  rdb.run_ms(3000);
  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  for (std::size_t i = 1; i < hashes.size(); ++i) {
    EXPECT_EQ(hashes[0], hashes[i]) << "replica " << i;
  }
  EXPECT_GE(rdb.raft().applied(0).size(), 6u);
}

TEST(ReplicatedDbTest, ReclaimSupersededDropsOrphanedBatches) {
  sched::EngineConfig cfg;
  cfg.workers = 2;
  ReplicatedDb rdb(3, 777, counter_setup(), cfg);
  rdb.run_ms(1000);
  const int old_leader = rdb.raft().leader();
  ASSERT_GE(old_leader, 0);

  Rng rng(4);
  ASSERT_TRUE(rdb.submit_with_retry(counter_batch(4, rng)));
  rdb.run_ms(300);

  // Isolate the leader, then hand it a batch it can never commit: the
  // majority side elects a new leader whose log overwrites the orphan.
  rdb.raft().net().partition({static_cast<NodeId>(old_leader)});
  ASSERT_TRUE(rdb.submit_batch(counter_batch(4, rng)));  // appended, doomed
  const std::size_t submitted = rdb.batches_submitted();
  rdb.run_ms(2000);  // re-election on the majority side
  ASSERT_GE(rdb.raft().leader(), 0);
  ASSERT_NE(rdb.raft().leader(), old_leader);
  ASSERT_TRUE(rdb.submit_with_retry(counter_batch(4, rng)));
  rdb.run_ms(500);

  // While the orphan still sits in the deposed leader's log it must NOT be
  // reclaimed (conservative liveness scan).
  EXPECT_EQ(rdb.reclaim_superseded(), 0u);

  rdb.raft().net().heal();
  rdb.run_ms(3000);  // deposed leader truncates to the new regime's log
  ASSERT_TRUE(rdb.converged());

  EXPECT_EQ(rdb.reclaim_superseded(), 1u);
  EXPECT_EQ(rdb.recovery_stats().pool_reclaimed, 1u);
  EXPECT_EQ(rdb.batches_submitted(), submitted + 1);

  // The cluster keeps working after the reclaim.
  ASSERT_TRUE(rdb.submit_with_retry(counter_batch(4, rng)));
  rdb.run_ms(1000);
  ASSERT_TRUE(rdb.converged());
  const auto hashes = rdb.state_hashes();
  EXPECT_EQ(hashes[0], hashes[1]);
  EXPECT_EQ(hashes[1], hashes[2]);
}

}  // namespace
}  // namespace prog::consensus
