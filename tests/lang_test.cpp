// Tests for the DSL: builder shape, interpreter semantics, relevance analysis.
#include <gtest/gtest.h>

#include "lang/builder.hpp"
#include "lang/interp.hpp"
#include "lang/relevance.hpp"
#include "store/store.hpp"

namespace prog::lang {
namespace {

constexpr TableId kAcct = 1;
constexpr TableId kLog = 2;
constexpr FieldId kBal = 0;
constexpr FieldId kPtr = 1;

/// transfer(from, to, amount): classic two-account money movement.
Proc make_transfer() {
  ProcBuilder b("transfer");
  auto from = b.param("from", 0, 100);
  auto to = b.param("to", 0, 100);
  auto amount = b.param("amount", 1, 50);
  auto src = b.get(kAcct, from);
  auto dst = b.get(kAcct, to);
  b.put(kAcct, from, {{kBal, src.field(kBal) - amount}});
  b.put(kAcct, to, {{kBal, dst.field(kBal) + amount}});
  return std::move(b).build();
}

void make_accounts(store::VersionedStore& s, Value n, Value balance) {
  for (Value i = 0; i < n; ++i) {
    s.put({kAcct, static_cast<Key>(i)}, store::Row{{kBal, balance}}, 0);
  }
}

TEST(BuilderTest, ProcShape) {
  const Proc p = make_transfer();
  EXPECT_EQ(p.name, "transfer");
  EXPECT_EQ(p.params.size(), 3u);
  EXPECT_EQ(p.body.size(), 4u);  // 2 gets + 2 puts
  EXPECT_EQ(p.var_types.size(), 2u);  // 2 handles
}

TEST(BuilderTest, ParamBoundsValidated) {
  ProcBuilder b("bad");
  EXPECT_THROW(b.param("x", 10, 5), InvariantError);
}

TEST(BuilderTest, AssignRequiresVariable) {
  ProcBuilder b("bad");
  auto x = b.param("x", 0, 10);
  EXPECT_THROW(b.assign(x + 1, x), InvariantError);
  auto v = b.let("v", x);
  EXPECT_NO_THROW(b.assign(v, x + 1));
}

TEST(InterpTest, TransferMovesMoney) {
  const Proc p = make_transfer();
  store::VersionedStore s;
  make_accounts(s, 3, 100);
  Interp interp;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(0).add(1).add(25);
  const ExecResult r = interp.run(p, in, view);
  ASSERT_TRUE(r.committed);
  apply_writes(s, r, 1);
  EXPECT_EQ(s.get({kAcct, 0})->at(kBal), 75);
  EXPECT_EQ(s.get({kAcct, 1})->at(kBal), 125);
  EXPECT_EQ(s.get({kAcct, 2})->at(kBal), 100);
}

TEST(InterpTest, TraceRecordsAccesses) {
  const Proc p = make_transfer();
  store::VersionedStore s;
  make_accounts(s, 3, 100);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(0).add(1).add(25);
  const ExecResult r = Interp().run(p, in, view);
  EXPECT_EQ(r.reads, (std::vector<TKey>{{kAcct, 0}, {kAcct, 1}}));
  EXPECT_EQ(r.writes, (std::vector<TKey>{{kAcct, 0}, {kAcct, 1}}));
}

TEST(InterpTest, SelfTransferReadsOwnWrite) {
  const Proc p = make_transfer();
  store::VersionedStore s;
  make_accounts(s, 1, 100);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(0).add(0).add(25);
  const ExecResult r = Interp().run(p, in, view);
  ASSERT_TRUE(r.committed);
  apply_writes(s, r, 1);
  // Handles snapshot the row at GET time (both GETs ran before any PUT), so
  // the second PUT computes 100 + 25 and overwrites the first: 125.
  EXPECT_EQ(s.get({kAcct, 0})->at(kBal), 125);
}

TEST(InterpTest, AbortRollsBackBufferedWrites) {
  ProcBuilder b("guarded");
  auto acct = b.param("acct", 0, 10);
  auto amount = b.param("amount", 0, 1000);
  auto h = b.get(kAcct, acct);
  b.put(kAcct, acct, {{kBal, h.field(kBal) - amount}});
  b.abort_if(h.field(kBal) - amount < 0);
  const Proc p = std::move(b).build();

  store::VersionedStore s;
  make_accounts(s, 1, 100);
  store::SnapshotView view(s, 0);
  TxInput ok;
  ok.add(0).add(60);
  TxInput overdraft;
  overdraft.add(0).add(200);

  const ExecResult r1 = Interp().run(p, overdraft, view);
  EXPECT_FALSE(r1.committed);
  EXPECT_TRUE(r1.ops.empty());

  const ExecResult r2 = Interp().run(p, ok, view);
  ASSERT_TRUE(r2.committed);
  apply_writes(s, r2, 1);
  EXPECT_EQ(s.get({kAcct, 0})->at(kBal), 40);
}

TEST(InterpTest, IfElseBranches) {
  ProcBuilder b("branchy");
  auto x = b.param("x", 0, 100);
  b.if_(
      x > 50, [&](ProcBuilder& t) { t.put(kLog, t.lit(1), {{kBal, x}}); },
      [&](ProcBuilder& e) { e.put(kLog, e.lit(2), {{kBal, x}}); });
  const Proc p = std::move(b).build();
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput big;
  big.add(80);
  TxInput small;
  small.add(20);
  EXPECT_EQ(Interp().run(p, big, view).writes,
            (std::vector<TKey>{{kLog, 1}}));
  EXPECT_EQ(Interp().run(p, small, view).writes,
            (std::vector<TKey>{{kLog, 2}}));
}

TEST(InterpTest, ForLoopBoundsAndEmit) {
  ProcBuilder b("looper");
  auto n = b.param("n", 0, 10);
  auto acc = b.let("acc", b.lit(0));
  b.for_(b.lit(0), n, 10, [&](ProcBuilder& body, Val i) {
    body.assign(acc, acc + i);
  });
  b.emit(acc);
  const Proc p = std::move(b).build();
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(5);
  const ExecResult r = Interp().run(p, in, view);
  ASSERT_EQ(r.emitted.size(), 1u);
  EXPECT_EQ(r.emitted[0], 0 + 1 + 2 + 3 + 4);
}

TEST(InterpTest, LoopBoundViolationThrows) {
  ProcBuilder b("runaway");
  auto n = b.param("n", 0, 100);
  b.for_(b.lit(0), n, 5, [&](ProcBuilder&, Val) {});
  const Proc p = std::move(b).build();
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(50);
  EXPECT_THROW(Interp().run(p, in, view), InvariantError);
}

TEST(InterpTest, DeleteHidesRow) {
  ProcBuilder b("deleter");
  auto k = b.param("k", 0, 10);
  b.del(kAcct, k);
  const Proc p = std::move(b).build();
  store::VersionedStore s;
  make_accounts(s, 2, 50);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(1);
  const ExecResult r = Interp().run(p, in, view);
  apply_writes(s, r, 1);
  EXPECT_EQ(s.get({kAcct, 1}), nullptr);
  EXPECT_NE(s.get({kAcct, 0}), nullptr);
}

TEST(InterpTest, GetAfterDelInSameTx) {
  ProcBuilder b("del_then_get");
  auto k = b.param("k", 0, 10);
  b.del(kAcct, k);
  auto h = b.get(kAcct, k);
  b.emit(h.exists());
  b.emit(h.field(kBal));
  const Proc p = std::move(b).build();
  store::VersionedStore s;
  make_accounts(s, 2, 50);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(0);
  const ExecResult r = Interp().run(p, in, view);
  EXPECT_EQ(r.emitted, (std::vector<Value>{0, 0}));
}

TEST(InterpTest, ExistsOnMissingRow) {
  ProcBuilder b("prober");
  auto k = b.param("k", 0, 100);
  auto h = b.get(kAcct, k);
  b.emit(h.exists());
  const Proc p = std::move(b).build();
  store::VersionedStore s;
  make_accounts(s, 1, 10);
  store::SnapshotView view(s, 0);
  TxInput hit;
  hit.add(0);
  TxInput miss;
  miss.add(55);
  EXPECT_EQ(Interp().run(p, hit, view).emitted[0], 1);
  EXPECT_EQ(Interp().run(p, miss, view).emitted[0], 0);
}

TEST(InterpTest, ArgCountMismatchThrows) {
  const Proc p = make_transfer();
  store::VersionedStore s;
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(1);
  EXPECT_THROW(Interp().run(p, in, view), UsageError);
}

TEST(InterpTest, PartialPutMergesFields) {
  ProcBuilder b("merger");
  auto k = b.param("k", 0, 10);
  b.put(kAcct, k, {{kPtr, b.lit(7)}});
  const Proc p = std::move(b).build();
  store::VersionedStore s;
  make_accounts(s, 1, 100);
  store::SnapshotView view(s, 0);
  TxInput in;
  in.add(0);
  const ExecResult r = Interp().run(p, in, view);
  apply_writes(s, r, 1);
  EXPECT_EQ(s.get({kAcct, 0})->at(kBal), 100);  // preserved
  EXPECT_EQ(s.get({kAcct, 0})->at(kPtr), 7);    // added
}

// --- relevance ---------------------------------------------------------------

TEST(RelevanceTest, ValueOnlyBranchIsNotForking) {
  // if (x > 10) write value A else value B — same key either way.
  ProcBuilder b("valbranch");
  auto k = b.param("k", 0, 10);
  auto x = b.param("x", 0, 100);
  auto v = b.let("v", b.lit(0));
  b.if_(
      x > 10, [&](ProcBuilder& t) { t.assign(v, x + 1); },
      [&](ProcBuilder& e) { e.assign(v, x + 2); });
  b.put(kAcct, k, {{kBal, v}});
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_FALSE(rel.param_relevant[1]);  // x only feeds the written value
  EXPECT_TRUE(rel.param_relevant[0]);   // k identifies the key
  ASSERT_EQ(p.body.size(), 3u);
  EXPECT_FALSE(rel.is_forking(p, p.body[1]));  // the if
}

TEST(RelevanceTest, KeyAffectingBranchForks) {
  ProcBuilder b("keybranch");
  auto x = b.param("x", 0, 100);
  auto k = b.let("k", b.lit(0));
  b.if_(
      x > 10, [&](ProcBuilder& t) { t.assign(k, t.lit(1)); },
      [&](ProcBuilder& e) { e.assign(k, e.lit(2)); });
  b.put(kAcct, k, {{kBal, x}});
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_TRUE(rel.param_relevant[0]);  // x decides which key is written
  EXPECT_TRUE(rel.is_forking(p, p.body[1]));
}

TEST(RelevanceTest, AccessInsideBranchForcesForking) {
  ProcBuilder b("guardaccess");
  auto x = b.param("x", 0, 100);
  b.if_(x > 10, [&](ProcBuilder& t) {
    t.put(kLog, t.lit(1), {{kBal, t.lit(0)}});
  });
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_TRUE(rel.param_relevant[0]);
  EXPECT_TRUE(rel.is_forking(p, p.body[0]));
}

TEST(RelevanceTest, LoopOverAccessesMarksBoundRelevant) {
  ProcBuilder b("loopaccess");
  auto n = b.param("n", 1, 15);
  auto ids = b.param_array("ids", 15, 0, 1000);
  b.for_(b.lit(0), n, 15, [&](ProcBuilder& body, Val i) {
    body.put(kAcct, ids[i], {{kBal, body.lit(0)}});
  });
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_TRUE(rel.param_relevant[0]);  // n (trip count)
  EXPECT_TRUE(rel.param_relevant[1]);  // ids (key identities)
  EXPECT_TRUE(rel.is_forking(p, p.body[0]));
}

TEST(RelevanceTest, PureValueLoopIsNotForking) {
  ProcBuilder b("valloop");
  auto k = b.param("k", 0, 10);
  auto n = b.param("n", 1, 10);
  auto acc = b.let("acc", b.lit(0));
  b.for_(b.lit(0), n, 10, [&](ProcBuilder& body, Val i) {
    body.assign(acc, acc + i);
  });
  b.put(kAcct, k, {{kBal, acc}});
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_FALSE(rel.param_relevant[1]);  // n only shapes the written value
  ASSERT_GE(p.body.size(), 2u);
  EXPECT_FALSE(rel.is_forking(p, p.body[1]));  // the for
}

TEST(RelevanceTest, TransitiveExplicitFlow) {
  ProcBuilder b("chain");
  auto x = b.param("x", 0, 100);
  auto a = b.let("a", x + 1);
  auto c = b.let("c", a * 2);
  b.get(kAcct, c);
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_TRUE(rel.param_relevant[0]);  // x -> a -> c -> key
}

TEST(RelevanceTest, ImplicitFlowThroughControl) {
  ProcBuilder b("implicit");
  auto x = b.param("x", 0, 100);
  auto k = b.let("k", b.lit(0));
  // k is assigned under a condition on x: implicit flow x -> k.
  b.if_(x > 10, [&](ProcBuilder& t) { t.assign(k, t.lit(5)); });
  b.get(kAcct, k);
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_TRUE(rel.param_relevant[0]);
}

TEST(RelevanceTest, EmitDoesNotCreateRelevance) {
  ProcBuilder b("emitter");
  auto x = b.param("x", 0, 100);
  b.emit(x * 2);
  b.get(kAcct, b.lit(1));
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_FALSE(rel.param_relevant[0]);
}

TEST(RelevanceTest, ExprIrrelevantHelper) {
  ProcBuilder b("helper");
  auto k = b.param("k", 0, 10);
  auto x = b.param("x", 0, 10);
  auto cond = x > 5;
  auto keyish = k + 1;
  b.get(kAcct, keyish);
  b.emit(cond);
  const Proc p = std::move(b).build();
  const Relevance rel = analyze_relevance(p);
  EXPECT_TRUE(expr_irrelevant(p, cond.id(), rel));
  EXPECT_FALSE(expr_irrelevant(p, keyish.id(), rel));
}

}  // namespace
}  // namespace prog::lang
